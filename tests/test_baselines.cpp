#include <gtest/gtest.h>

#include "src/baselines/bnn.hpp"
#include "src/baselines/conv.hpp"
#include "src/baselines/gemm.hpp"
#include "src/tcsim/cost_model.hpp"
#include "test_util.hpp"

namespace apnn::baselines {
namespace {

using tcsim::Precision;

TEST(BaselineGemm, Int8MatchesNaive) {
  Rng rng(1);
  Tensor<std::int8_t> a({33, 50}), b({21, 50});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b[i] = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  const Tensor<std::int32_t> y = gemm_int8(a, b);
  for (std::int64_t m = 0; m < 33; ++m) {
    for (std::int64_t n = 0; n < 21; ++n) {
      std::int32_t expect = 0;
      for (std::int64_t k = 0; k < 50; ++k) expect += a(m, k) * b(n, k);
      ASSERT_EQ(y(m, n), expect);
    }
  }
}

TEST(BaselineGemm, Int4MatchesNaive) {
  Rng rng(2);
  Tensor<std::int8_t> a({17, 40}), b({19, 40});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<std::int8_t>(rng.uniform_int(-8, 7));
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b[i] = static_cast<std::int8_t>(rng.uniform_int(-8, 7));
  }
  const Tensor<std::int32_t> y = gemm_int4(a, b);
  for (std::int64_t m = 0; m < 17; ++m) {
    for (std::int64_t n = 0; n < 19; ++n) {
      std::int32_t expect = 0;
      for (std::int64_t k = 0; k < 40; ++k) expect += a(m, k) * b(n, k);
      ASSERT_EQ(y(m, n), expect);
    }
  }
}

TEST(BaselineGemm, Fp16CloseToFp32) {
  Rng rng(3);
  Tensor<float> af({20, 30}), bf({20, 30});
  af.randomize(rng, -1.f, 1.f);
  bf.randomize(rng, -1.f, 1.f);
  Tensor<tcsim::half_t> a({20, 30}), b({20, 30});
  for (std::int64_t i = 0; i < af.numel(); ++i) {
    a[i] = tcsim::float_to_half(af[i]);
    b[i] = tcsim::float_to_half(bf[i]);
  }
  const Tensor<float> yh = gemm_fp16(a, b);
  const Tensor<float> yf = gemm_fp32(af, bf);
  for (std::int64_t i = 0; i < yh.numel(); ++i) {
    EXPECT_NEAR(yh[i], yf[i], 0.1f);
  }
}

TEST(BaselineConv, Int8MatchesFp32Reference) {
  Rng rng(4);
  layout::ConvGeometry g;
  g.batch = 2;
  g.in_c = 5;
  g.in_h = g.in_w = 7;
  g.out_c = 6;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  Tensor<std::int8_t> x({2, 7, 7, 5}), w({6, 3, 3, 5});
  Tensor<float> xf({2, 7, 7, 5}), wf({6, 3, 3, 5});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<std::int8_t>(rng.uniform_int(-10, 10));
    xf[i] = static_cast<float>(x[i]);
  }
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<std::int8_t>(rng.uniform_int(-10, 10));
    wf[i] = static_cast<float>(w[i]);
  }
  const Tensor<std::int32_t> yi = conv_int8(x, w, g);
  const Tensor<float> yf = conv_fp32(xf, wf, g);
  ASSERT_EQ(yi.numel(), yf.numel());
  for (std::int64_t i = 0; i < yi.numel(); ++i) {
    EXPECT_EQ(static_cast<float>(yi[i]), yf[i]);
  }
}

TEST(Bnn, GemmMatchesSignedDot) {
  Rng rng(5);
  const auto wl =
      apnn::testing::random_logical(rng, 10, 70, core::Encoding::kSignedPM1, 1);
  const auto xl =
      apnn::testing::random_logical(rng, 12, 70, core::Encoding::kSignedPM1, 1);
  bitops::BitMatrix wb(10, 70), xb(12, 70);
  for (std::int64_t r = 0; r < 10; ++r) {
    for (std::int64_t c = 0; c < 70; ++c) wb.set(r, c, wl(r, c) == 1);
  }
  for (std::int64_t r = 0; r < 12; ++r) {
    for (std::int64_t c = 0; c < 70; ++c) xb.set(r, c, xl(r, c) == 1);
  }
  EXPECT_EQ(bnn_gemm(wb, xb), apnn::testing::naive_gemm(wl, xl));
}

// --- profile structure ---------------------------------------------------------

TEST(BaselineProfiles, TileShapesPerPrecision) {
  EXPECT_EQ(baseline_tile(Precision::kInt1).tk, 512);
  EXPECT_EQ(baseline_tile(Precision::kInt4).tk, 128);
  EXPECT_EQ(baseline_tile(Precision::kInt8).tk, 64);
  EXPECT_EQ(baseline_tile(Precision::kFp16).tk, 32);
}

TEST(BaselineProfiles, GemmOpCountsExact) {
  // 128x128x512 int4: one block, 4 ktiles of 128.
  const auto p = cutlass_gemm_profile(Precision::kInt4, 128, 128, 512);
  EXPECT_EQ(p.grid_blocks, 1);
  // ops = 2*M*N*K over all mma tiles.
  EXPECT_EQ(p.counters.ops_i4(), 2LL * 128 * 128 * 512);
}

TEST(BaselineProfiles, FamiliesDiffer) {
  const auto cutlass = cutlass_gemm_profile(Precision::kInt8, 256, 256, 256);
  const auto cublas = cublas_gemm_int8_profile(256, 256, 256);
  EXPECT_EQ(cutlass.family, "cutlass-gemm");
  EXPECT_EQ(cublas.family, "cublas-gemm");
  EXPECT_EQ(cutlass_gemm_profile(Precision::kInt1, 256, 256, 256).family,
            "cutlass-gemm-int1");
}

TEST(BaselineProfiles, ConvUsesImplicitGemmExtent) {
  layout::ConvGeometry g;
  g.batch = 1;
  g.in_c = 128;
  g.in_h = g.in_w = 16;
  g.out_c = 128;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  const auto p = cutlass_conv_profile(Precision::kInt8, g);
  EXPECT_EQ(p.counters.ops_i8(),
            2 * g.gemm_m() * ((g.gemm_n() + 127) / 128 * 128) *
                ((g.gemm_k() + 63) / 64 * 64));
}

TEST(BaselineProfiles, BnnUsesSmallTilesNoShmem) {
  const auto p = bnn_gemm_profile(512, 512, 512);
  EXPECT_EQ(p.family, "bnn");
  EXPECT_EQ(p.grid_blocks, 16 * 16);  // 32x32 tiles
  EXPECT_EQ(p.shmem_per_block, 0);
  EXPECT_EQ(p.counters.total_shared_bytes(), 0);
  EXPECT_DOUBLE_EQ(p.ci, 32.0);
}

TEST(BaselineProfiles, CalibrationAnchorInt1OverInt8) {
  // The §6.1.1 anchor: effective cutlass-int1 / cublas-int8 ~ 5.9x on the
  // RTX 3090 at saturating sizes.
  const tcsim::CostModel cm(tcsim::rtx3090());
  const std::int64_t m = 8192, n = 8192, k = 8192;
  const double t1 =
      cm.estimate(cutlass_gemm_profile(Precision::kInt1, m, n, k)).total_us;
  const double t8 = cm.estimate(cublas_gemm_int8_profile(m, n, k)).total_us;
  EXPECT_NEAR(t8 / t1, 5.9, 1.2);
}

TEST(BaselineProfiles, PrecisionLatencyOrdering) {
  // At saturating sizes: int1 < int4 < int8 < fp16 < fp32.
  const tcsim::CostModel cm(tcsim::rtx3090());
  const std::int64_t m = 4096, n = 4096, k = 4096;
  double prev = 0;
  for (Precision prec : {Precision::kInt1, Precision::kInt4, Precision::kInt8,
                         Precision::kFp16, Precision::kFp32}) {
    const double t = cm.estimate(cutlass_gemm_profile(prec, m, n, k)).total_us;
    EXPECT_GT(t, prev) << precision_name(prec);
    prev = t;
  }
}

}  // namespace
}  // namespace apnn::baselines

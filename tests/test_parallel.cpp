#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsRange) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10, 20, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, GrainBatchesWork) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_for(0, 256, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; }, 32);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::int64_t i) {
                          if (i == 42) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, SingleThreadedFallback) {
  ThreadPool pool(1);
  std::int64_t sum = 0;  // safe: no workers, caller runs everything
  pool.parallel_for(0, 100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 50, [&](std::int64_t) { ++count; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 64, [&](std::int64_t i) { sum += i * i; });
  std::int64_t expect = 0;
  for (int i = 0; i < 64; ++i) expect += i * i;
  EXPECT_EQ(sum.load(), expect);
}

// --- pool slices (per-replica topology) -------------------------------------

// Two independent pools must own disjoint worker threads: a slice never
// executes on a sibling slice's cores unless a WorkStealGroup says so.
TEST(ThreadPoolSlices, WorkerSetsAreDisjoint) {
  ThreadPool a(3), b(3);
  const std::thread::id caller = std::this_thread::get_id();
  std::mutex mu;
  std::set<std::thread::id> ids_a, ids_b;
  // Enough slow chunks that every worker of the owning pool executes some.
  auto collect = [&](ThreadPool& pool, std::set<std::thread::id>& ids) {
    pool.parallel_for(0, 64, [&](std::int64_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  };
  collect(a, ids_a);
  collect(b, ids_b);
  for (const std::thread::id& id : ids_a) {
    if (id == caller) continue;  // the caller participates in both loops
    EXPECT_EQ(ids_b.count(id), 0u) << "worker thread executed on both pools";
  }
}

// Loops on distinct slices running concurrently (one per client thread) each
// see exactly their own indices — the serving pattern of N replicas running
// batches at once, minus the sessions.
TEST(ThreadPoolSlices, ConcurrentLoopsOnDistinctSlicesAreIndependent) {
  ThreadPool a(2), b(2);
  std::atomic<std::int64_t> sum_a{0}, sum_b{0};
  std::thread ta([&] {
    for (int round = 0; round < 20; ++round) {
      a.parallel_for(0, 100, [&](std::int64_t i) { sum_a += i; });
    }
  });
  std::thread tb([&] {
    for (int round = 0; round < 20; ++round) {
      b.parallel_for(0, 100, [&](std::int64_t i) { sum_b += i; });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(sum_a.load(), 20 * 4950);
  EXPECT_EQ(sum_b.load(), 20 * 4950);
}

// current_key() names the pool whose loop the thread is executing, through
// nesting across slices and back — ScratchArena::tls() keys arenas on it.
TEST(ThreadPoolSlices, CurrentKeyTracksExecutingPool) {
  EXPECT_EQ(ThreadPool::current_key(), nullptr);
  ThreadPool a(2), b(2);
  std::atomic<int> bad{0};
  a.parallel_for(0, 8, [&](std::int64_t) {
    if (ThreadPool::current_key() != static_cast<const void*>(&a)) ++bad;
    b.parallel_for(0, 4, [&](std::int64_t) {
      if (ThreadPool::current_key() != static_cast<const void*>(&b)) ++bad;
    });
    if (ThreadPool::current_key() != static_cast<const void*>(&a)) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(ThreadPool::current_key(), nullptr);
}

// A latency-bounded slice (help_foreign = false, the replica configuration)
// still runs loops, nested loops included, to completion.
TEST(ThreadPoolSlices, BoundedWaitSliceRunsNestedLoops) {
  ThreadPoolOptions o;
  o.num_threads = 3;
  o.help_foreign = false;
  ThreadPool pool(o);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(0, 16, [&](std::int64_t i) {
    std::atomic<std::int64_t> inner{0};
    pool.parallel_for(0, 8, [&](std::int64_t j) { inner += j; });
    EXPECT_EQ(inner.load(), 28);
    sum += i;
  });
  EXPECT_EQ(sum.load(), 120);
}

// Pinning is best-effort and must never change results. cpus = {0, 0} keeps
// the test valid on a 1-core container.
TEST(ThreadPoolSlices, PinnedPoolComputesCorrectly) {
  ThreadPoolOptions o;
  o.num_threads = 2;
  o.pin_threads = true;
  o.cpus = {0, 0};
  ThreadPool pool(o);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(0, 256, [&](std::int64_t i) { sum += i; }, 16);
  EXPECT_EQ(sum.load(), 255 * 256 / 2);
#ifdef __linux__
  EXPECT_TRUE(ThreadPool::pin_current_thread(0));
#endif
  EXPECT_FALSE(ThreadPool::pin_current_thread(-1));
}

// --- work stealing between slices -------------------------------------------

TEST(WorkStealGroup, TracksMembership) {
  WorkStealGroup group;
  EXPECT_EQ(group.pools(), 0);
  ThreadPoolOptions o;
  o.num_threads = 2;
  o.steal_group = &group;
  {
    ThreadPool a(o);
    EXPECT_EQ(group.pools(), 1);
    {
      ThreadPool b(o);
      EXPECT_EQ(group.pools(), 2);
    }
    EXPECT_EQ(group.pools(), 1);
  }
  EXPECT_EQ(group.pools(), 0);
  EXPECT_EQ(group.steals(), 0);
}

// Synthetic imbalance: slice A runs a long loop while slice B sits idle in
// the same group. B's worker must steal A's queued helper task and absorb
// chunks; the loop's results stay exact (every index exactly once).
TEST(WorkStealGroup, IdleSiblingStealsUnderImbalance) {
  WorkStealGroup group;
  ThreadPoolOptions o;
  o.num_threads = 2;  // 1 worker each
  o.help_foreign = false;  // the caller never dequeues its own helpers
  o.steal_group = &group;
  ThreadPool a(o), b(o);
  // Retry: stealing is a race the idle sibling should win within a ~60 ms
  // loop, but nothing forces it on a loaded host — keep trying briefly.
  for (int round = 0; round < 20 && group.steals() == 0; ++round) {
    std::vector<std::atomic<int>> hits(32);
    a.parallel_for(0, 32, [&](std::int64_t i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      hits[static_cast<std::size_t>(i)]++;
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
    EXPECT_EQ(a.queued_tasks(), 0u);
    EXPECT_EQ(b.queued_tasks(), 0u);
  }
  EXPECT_GT(group.steals(), 0)
      << "idle sibling never stole from the loaded slice";
}

// A grouped 1-wide slice (slice_threads = 1: the dispatcher is the whole
// slice) still fans out — its helper budget comes from sibling workers.
TEST(WorkStealGroup, OneWideSliceFansOutViaSiblings) {
  WorkStealGroup group;
  ThreadPoolOptions narrow;
  narrow.num_threads = 1;
  narrow.help_foreign = false;
  narrow.steal_group = &group;
  ThreadPoolOptions wide = narrow;
  wide.num_threads = 3;
  ThreadPool a(narrow), helpers(wide);
  for (int round = 0; round < 20 && group.steals() == 0; ++round) {
    std::vector<std::atomic<int>> hits(24);
    a.parallel_for(0, 24, [&](std::int64_t i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      hits[static_cast<std::size_t>(i)]++;
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
  EXPECT_GT(group.steals(), 0);
}

// --- stale-helper / dangling-capture regression ------------------------------

// The queued helper tasks used to capture the parallel_for frame (&fn) by
// reference: a helper dequeued after the loop returned dereferenced a dead
// stack frame. Tasks are now self-contained and the loop erases its own
// stale helpers on return — pin both.
TEST(ThreadPool, StaleHelpersAreErasedNotDangled) {
  ThreadPool pool(2);  // one worker
  std::atomic<bool> gate{false};
  std::atomic<int> blockers{0};
  // Occupy the worker (and the helper thread's caller slot) with a loop
  // whose chunks spin on `gate`.
  std::thread blocked([&] {
    pool.parallel_for(0, 2, [&](std::int64_t) {
      ++blockers;
      while (!gate.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  });
  // Both chunks claimed (caller + worker) before proceeding: otherwise the
  // fast loop's caller could absorb a blocked chunk via its help loop and
  // spin on the gate this thread is supposed to open.
  while (blockers.load() < 2) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // With the worker busy, this loop's caller drains every chunk itself;
  // its queued helper task must be gone by the time parallel_for returns —
  // erased (stale) or absorbed, never left to fire against a dead frame.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::int64_t) { ++count; });
    ASSERT_EQ(count.load(), 64);
  }
  EXPECT_EQ(pool.queued_tasks(), 0u);
  gate = true;
  blocked.join();
  // The worker must come back healthy after the blocked loop drains.
  std::atomic<int> after{0};
  pool.parallel_for(0, 128, [&](std::int64_t) { ++after; });
  EXPECT_EQ(after.load(), 128);
  EXPECT_EQ(pool.queued_tasks(), 0u);
}

}  // namespace
}  // namespace apnn

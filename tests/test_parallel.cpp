#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/common/check.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsRange) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10, 20, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, GrainBatchesWork) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_for(0, 256, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; }, 32);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::int64_t i) {
                          if (i == 42) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, SingleThreadedFallback) {
  ThreadPool pool(1);
  std::int64_t sum = 0;  // safe: no workers, caller runs everything
  pool.parallel_for(0, 100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 50, [&](std::int64_t) { ++count; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 64, [&](std::int64_t i) { sum += i * i; });
  std::int64_t expect = 0;
  for (int i = 0; i < 64; ++i) expect += i * i;
  EXPECT_EQ(sum.load(), expect);
}

}  // namespace
}  // namespace apnn

#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/core/perf_model.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn::core {
namespace {

TEST(PerfModel, TlpFormulaEq3) {
  TileConfig t;
  t.bm = 64;
  t.bn = 64;
  // TLP = pM * qN / (bm * bn)
  EXPECT_DOUBLE_EQ(tlp(64, 1024, 1, 2, t), 64.0 * 2048 / 4096);
  EXPECT_DOUBLE_EQ(tlp(128, 128, 2, 2, t), 256.0 * 256 / 4096);
}

TEST(PerfModel, CiFormulaEq4) {
  TileConfig t;
  t.bm = 64;
  t.bn = 64;
  EXPECT_DOUBLE_EQ(compute_intensity(t), 64.0);
  t.bm = 128;
  t.bn = 128;
  EXPECT_DOUBLE_EQ(compute_intensity(t), 128.0);
  t.bm = 16;
  t.bn = 128;
  EXPECT_DOUBLE_EQ(compute_intensity(t), 2.0 * 16 * 128 / 144);
}

TEST(PerfModel, CiIndependentOfBk) {
  TileConfig a, b;
  a.bm = b.bm = 64;
  a.bn = b.bn = 32;
  a.bk = 128;
  b.bk = 512;
  EXPECT_DOUBLE_EQ(compute_intensity(a), compute_intensity(b));
}

TEST(PerfModel, WarpGridPrefers4x2) {
  TileConfig t;
  t.bm = 64;
  t.bn = 64;
  assign_warp_grid(t);
  EXPECT_EQ(t.warp_rows, 4);
  EXPECT_EQ(t.warp_cols, 2);
  EXPECT_EQ(t.wm(), 16);
  EXPECT_EQ(t.wn(), 32);
}

TEST(PerfModel, WarpGridAdaptsToNarrowTiles) {
  TileConfig t;
  t.bm = 16;
  t.bn = 128;
  assign_warp_grid(t);
  // 4x2 needs bm % 32 == 0; must fall back while keeping 8x8 granularity.
  EXPECT_EQ(t.bm % (t.warp_rows * 8), 0);
  EXPECT_EQ(t.bn % (t.warp_cols * 8), 0);
}

TEST(PerfModel, ShmemAccounting) {
  TileConfig t;
  t.bm = 64;
  t.bn = 64;
  t.bk = 128;
  // double-buffered tiles: 2*(64+64)*128/8 = 4096 B; staging 64*64*4 = 16 KiB
  EXPECT_EQ(t.shmem_bytes(), 4096 + 16384);
}

TEST(Autotune, SmallProblemPicksSmallTiles) {
  // M=64, N=128, p=q=1: large tiles would leave almost no blocks.
  const TuneResult r = autotune_tile(64, 128, 512, 1, 1, tcsim::rtx3090());
  EXPECT_LE(r.tile.bm, 32);
  EXPECT_GT(r.tlp, 0);
}

TEST(Autotune, LargeProblemPicksLargeCiTiles) {
  const TuneResult r =
      autotune_tile(4096, 4096, 1024, 2, 8, tcsim::rtx3090());
  // TLP is huge for every candidate; the CI-maximizing 128x128 tile wins.
  EXPECT_EQ(r.tile.bm, 128);
  EXPECT_EQ(r.tile.bn, 128);
}

TEST(Autotune, ThresholdRuleRespected) {
  // Engineered so max TLP is just below the threshold: the tuner sticks
  // with the max-TLP config instead of trading for CI.
  const std::int64_t m = 32, n = 32;  // pM*qN = 1024; min tile 16x16 -> TLP 4
  const TuneResult r = autotune_tile(m, n, 128, 1, 1, tcsim::rtx3090());
  EXPECT_DOUBLE_EQ(r.tlp, 1024.0 / (r.tile.bm * r.tile.bn));
  EXPECT_EQ(r.tile.bm, 16);
  EXPECT_EQ(r.tile.bn, 16);
}

TEST(Autotune, PlaneCountRaisesTlp) {
  // The virtual batching enlarges the grid: with more planes the tuner can
  // afford bigger tiles.
  const TuneResult r11 = autotune_tile(64, 512, 512, 1, 1, tcsim::rtx3090());
  const TuneResult r28 = autotune_tile(64, 512, 512, 2, 8, tcsim::rtx3090());
  EXPECT_GE(r28.tile.bm * r28.tile.bn, r11.tile.bm * r11.tile.bn);
}

TEST(Autotune, RespectsSharedMemoryCap) {
  tcsim::DeviceSpec tiny = tcsim::rtx3090();
  tiny.shmem_per_sm = 8 * 1024;  // exclude large tiles
  const TuneResult r = autotune_tile(4096, 4096, 1024, 1, 1, tiny);
  EXPECT_LE(r.tile.shmem_bytes(), tiny.shmem_per_sm);
}

TEST(Autotune, DeterministicForSameInputs) {
  const TuneResult a = autotune_tile(300, 700, 900, 2, 3, tcsim::a100());
  const TuneResult b = autotune_tile(300, 700, 900, 2, 3, tcsim::a100());
  EXPECT_EQ(a.tile.bm, b.tile.bm);
  EXPECT_EQ(a.tile.bn, b.tile.bn);
}

TEST(Autotune, RejectsDegenerateProblem) {
  EXPECT_THROW(autotune_tile(0, 10, 10, 1, 1, tcsim::rtx3090()),
               apnn::Error);
}

}  // namespace
}  // namespace apnn::core

// InferenceSession gates:
//   * session forward bit-exact vs forward_reference (residual dataflow,
//     standalone-quantize path, multi-bit, binary, varying batch);
//   * steady-state memory discipline: the slab footprint settles at its
//     high-water mark and per-run heap allocation counts stop changing.
// The serving front-end (replicated InferenceServer) is gated separately in
// tests/test_server.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/nn/apnn_network.hpp"
#include "src/nn/model.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

// --- global allocation counter ----------------------------------------------
// Counts every operator-new in the binary. The steady-state test pins that
// the number of allocations a run() performs stops changing once the slab
// and the scratch arenas have reached their high-water marks (the remaining
// per-run count is the constant std::function / kernel-internal churn, not
// growth). Overriding new/delete is per-binary, so this affects only
// test_session.
namespace {
std::atomic<std::int64_t> g_allocs{0};
}

// noinline: if GCC inlines both sides of the pair it "sees" a new
// expression freed by free() and raises -Wmismatched-new-delete (a false
// positive for a counting allocator that is malloc/free on both sides).
#if defined(__GNUC__)
#define APNN_TEST_NOINLINE __attribute__((noinline))
#else
#define APNN_TEST_NOINLINE
#endif

APNN_TEST_NOINLINE void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
APNN_TEST_NOINLINE void* operator new[](std::size_t sz) {
  return ::operator new(sz);
}
APNN_TEST_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
APNN_TEST_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
APNN_TEST_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
APNN_TEST_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace apnn::nn {
namespace {

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

Tensor<std::int32_t> random_input(std::int64_t b, const ModelSpec& m,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Tensor<std::int32_t> in({b, m.input.h, m.input.w, m.input.c});
  in.randomize(rng, 0, 255);
  return in;
}

// --- bit-exactness ----------------------------------------------------------

TEST(Session, MatchesReferenceMiniResNet) {
  // Residual dataflow: packed + dense residual adds, standalone ReLU and
  // quantize after the adds, final average pool, linear head.
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 301);
  const auto input = random_input(2, m, 302);
  net.calibrate(input);
  InferenceSession session(net, dev());
  const auto ref = net.forward_reference(input);
  EXPECT_EQ(session.run(input), ref);
  EXPECT_EQ(session.run(input), ref);  // slab reuse changes nothing
}

TEST(Session, MatchesReferenceMiniResNetMultiBit) {
  const ModelSpec m = mini_resnet(3, 8, 4);
  ApnnNetwork net = ApnnNetwork::random(m, 2, 3, 303);
  const auto input = random_input(2, m, 304);
  net.calibrate(input);
  InferenceSession session(net, dev());
  EXPECT_EQ(session.run(input), net.forward_reference(input));
}

TEST(Session, MatchesReferenceVggLite) {
  // Conv stack with fully fused tails, then the two-linear head: fc1's
  // quantized feature planes feed fc2 without any dense round trip.
  const ModelSpec m = vgg_lite(16, 6);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 305);
  const auto input = random_input(2, m, 306);
  net.calibrate(input);
  InferenceSession session(net, dev());
  EXPECT_EQ(session.run(input), net.forward_reference(input));
}

TEST(Session, MatchesReferenceBinaryVggLite) {
  // ±1 activations: the linear stage consumes packed codes through the
  // word-granular gather with kSignedPM1 encoding.
  const ModelSpec m = vgg_lite(16, 5);
  ApnnNetwork net = ApnnNetwork::random_binary(m, 307);
  const auto input = random_input(1, m, 308);
  net.calibrate(input);
  InferenceSession session(net, dev());
  EXPECT_EQ(session.run(input), net.forward_reference(input));
}

TEST(Session, VaryingBatchReusesPlan) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 309);
  net.calibrate(random_input(2, m, 310));
  InferenceSession session(net, dev());
  for (std::int64_t b : {1, 3, 2, 3}) {
    const auto input = random_input(b, m, 311 + static_cast<unsigned>(b));
    EXPECT_EQ(session.run(input), net.forward_reference(input))
        << "batch " << b;
  }
}

TEST(Session, CollectsProfilesLikeForward) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 312);
  const auto input = random_input(1, m, 313);
  net.calibrate(input);
  InferenceSession session(net, dev());
  tcsim::SequenceProfile prof;
  Tensor<std::int32_t> logits;
  session.run(input, &logits, &prof);
  // decompose + 2 convs + 1 linear at least, with real MMA counters.
  EXPECT_GE(prof.kernels.size(), 4u);
  EXPECT_GT(prof.total_counters().bmma_b1, 0);
}

TEST(Session, LivenessSharesSlots) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 314);
  net.calibrate(random_input(1, m, 315));
  InferenceSession session(net, dev());
  EXPECT_GT(session.step_count(), 0u);
  // Liveness-based reuse keeps the slab far smaller than one-slot-per-step.
  EXPECT_LT(session.slot_count(), session.step_count());
}

TEST(Session, RequiresCalibration) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 316);
  EXPECT_THROW(InferenceSession(net, dev()), apnn::Error);
}

// --- standalone BatchNorm is a hard error -----------------------------------

TEST(Session, StandaloneBatchNormHardErrors) {
  // A BN separated from its conv (here by the quantize: tails fuse at most
  // BN -> ReLU -> pool -> quantize, quantize last) has no parameters to
  // apply; it must fail loudly instead of silently acting as identity.
  ModelSpec m;
  m.name = "bn-after-quant";
  m.input = {4, 8, 8};
  LayerSpec conv;
  conv.kind = LayerKind::kConv;
  conv.name = "conv";
  conv.conv = {8, 3, 1, 1};
  m.layers.push_back(conv);
  LayerSpec q;
  q.kind = LayerKind::kQuantize;
  q.name = "conv.quant";
  m.layers.push_back(q);
  LayerSpec bn;
  bn.kind = LayerKind::kBatchNorm;
  bn.name = "stray.bn";
  m.layers.push_back(bn);
  LayerSpec fc;
  fc.kind = LayerKind::kLinear;
  fc.name = "fc";
  fc.out_features = 3;
  m.layers.push_back(fc);

  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 317);
  const auto input = random_input(1, m, 318);
  // The reference walker (calibration) refuses the spec outright.
  EXPECT_THROW(net.calibrate(input), apnn::Error);
}

// --- steady-state memory discipline -----------------------------------------

TEST(Session, SteadyStateFootprintAndAllocationsStable) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 320);
  const auto input = random_input(4, m, 321);
  net.calibrate(input);
  InferenceSession session(net, dev());
  Tensor<std::int32_t> logits;

  // Warm up: slab buffers, scratch arenas, and worker threads reach their
  // high-water marks.
  for (int i = 0; i < 3; ++i) session.run(input, &logits);

  const std::size_t settled_capacity = session.slab().capacity_bytes();
  const std::size_t settled_high_water = session.slab().high_water_bytes();
  EXPECT_GT(settled_capacity, 0u);
  EXPECT_EQ(settled_capacity, settled_high_water);

  auto allocs_of_one_run = [&] {
    const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
    session.run(input, &logits);
    return g_allocs.load(std::memory_order_relaxed) - before;
  };
  const std::int64_t run_a = allocs_of_one_run();
  const std::int64_t run_b = allocs_of_one_run();

  // The slab stopped growing: the pass runs entirely out of recycled slots
  // (every kernel writes into caller-provided storage), and the per-run
  // allocation count is flat — no buffer churn, no accumulation.
  EXPECT_EQ(session.slab().capacity_bytes(), settled_capacity);
  EXPECT_EQ(session.slab().high_water_bytes(), settled_high_water);
  EXPECT_EQ(run_a, run_b);
}

TEST(Session, SlabGrowsOnlyForLargerBatches) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 322);
  net.calibrate(random_input(1, m, 323));
  InferenceSession session(net, dev());
  Tensor<std::int32_t> logits;

  session.run(random_input(4, m, 324), &logits);
  session.run(random_input(4, m, 325), &logits);
  const std::size_t cap4 = session.slab().capacity_bytes();
  // Smaller batches live inside the batch-4 footprint.
  session.run(random_input(2, m, 326), &logits);
  session.run(random_input(1, m, 327), &logits);
  EXPECT_EQ(session.slab().capacity_bytes(), cap4);
  // A larger batch may grow it — once.
  session.run(random_input(6, m, 328), &logits);
  const std::size_t cap6 = session.slab().capacity_bytes();
  EXPECT_GE(cap6, cap4);
  session.run(random_input(6, m, 329), &logits);
  EXPECT_EQ(session.slab().capacity_bytes(), cap6);
}

TEST(Session, AlternatingSeenBatchesStayAllocationFlat) {
  // The serving pattern: micro-batch sizes vary run to run. Batch-resolved
  // state (geometries, tiles) is cached per size, so alternating between
  // already-seen sizes must not re-run autotune or grow anything.
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 350);
  net.calibrate(random_input(1, m, 351));
  InferenceSession session(net, dev());
  Tensor<std::int32_t> logits;
  const auto in4 = random_input(4, m, 352);
  const auto in2 = random_input(2, m, 353);
  for (int i = 0; i < 2; ++i) {  // warm both sizes
    session.run(in4, &logits);
    session.run(in2, &logits);
  }
  const std::size_t cap = session.slab().capacity_bytes();
  auto allocs_of = [&](const Tensor<std::int32_t>& in) {
    const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
    session.run(in, &logits);
    return g_allocs.load(std::memory_order_relaxed) - before;
  };
  const std::int64_t a4 = allocs_of(in4);
  const std::int64_t a2 = allocs_of(in2);
  EXPECT_EQ(a4, allocs_of(in4));  // alternation changed nothing
  EXPECT_EQ(a2, allocs_of(in2));
  EXPECT_EQ(session.slab().capacity_bytes(), cap);
}


// --- compiled attention: dynamic-shape plan families ------------------------

Tensor<std::int32_t> random_tokens(std::int64_t b, std::int64_t seq,
                                   std::int64_t d_model, std::uint64_t seed) {
  Rng rng(seed);
  Tensor<std::int32_t> in({b, seq, 1, d_model});
  in.randomize(rng, 0, 255);
  return in;
}

TEST(Session, AttentionMatchesReferenceEveryBucketAndScheme) {
  // The compiled attention plan family must be bit-exact against the dense
  // integer reference for every sequence bucket under every w/a scheme the
  // bit-GEMM lowering distinguishes (±1 weights, multi-bit weights, wider
  // activations).
  const ModelSpec m = tiny_transformer();
  const struct { int w, a; } schemes[] = {{1, 2}, {2, 2}, {1, 3}};
  for (const auto& sc : schemes) {
    ApnnNetwork net = ApnnNetwork::random(m, sc.w, sc.a, 401);
    net.calibrate(random_tokens(2, m.input.h, m.input.c, 402));
    InferenceSession session(net, dev());
    EXPECT_EQ(session.plan_count(), m.seq_buckets.size());
    for (const std::int64_t seq : m.seq_buckets) {
      const auto input = random_tokens(1, seq, m.input.c,
                                       403 + static_cast<unsigned>(seq));
      EXPECT_EQ(session.run(input), net.forward_reference(input))
          << "w" << sc.w << "a" << sc.a << " seq " << seq;
    }
    // Batched run through one bucket as well.
    const auto batched = random_tokens(3, m.seq_buckets.front(), m.input.c,
                                       404);
    EXPECT_EQ(session.run(batched), net.forward_reference(batched))
        << "w" << sc.w << "a" << sc.a << " batched";
  }
}

TEST(Session, AttentionPadsOffBucketLengthsUp) {
  // A request whose token count is not itself a bucket runs on the smallest
  // covering bucket with a zero-padded tail — bit-exact vs the reference on
  // the same padded input.
  const ModelSpec m = tiny_transformer();
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 405);
  net.calibrate(random_tokens(2, m.input.h, m.input.c, 406));
  InferenceSession session(net, dev());
  for (const std::int64_t seq : {std::int64_t{1}, std::int64_t{20},
                                 std::int64_t{100}, std::int64_t{300}}) {
    const auto input = random_tokens(1, seq, m.input.c,
                                     407 + static_cast<unsigned>(seq));
    std::int64_t bucket = m.seq_buckets.back();
    for (const std::int64_t b : m.seq_buckets) {
      if (b >= seq) {
        bucket = b;
        break;
      }
    }
    Tensor<std::int32_t> padded({1, bucket, 1, m.input.c});
    padded.fill(0);
    for (std::int64_t i = 0; i < input.numel(); ++i) padded[i] = input[i];
    EXPECT_EQ(session.run(input), net.forward_reference(padded))
        << "seq " << seq << " bucket " << bucket;
  }
}

TEST(Session, AttentionSteadyStateAcrossBucketsStaysFlat) {
  // One plan family serving mixed sequence lengths: after a warm pass over
  // every bucket, further traffic (any bucket order, padded lengths
  // included) must not grow the slab and must hold the per-run allocation
  // count flat — serving mixed lengths allocates nothing in steady state.
  const ModelSpec m = tiny_transformer();
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 410);
  net.calibrate(random_tokens(2, m.input.h, m.input.c, 411));
  InferenceSession session(net, dev());
  Tensor<std::int32_t> logits;
  std::vector<Tensor<std::int32_t>> inputs;
  for (const std::int64_t seq : m.seq_buckets) {
    inputs.push_back(random_tokens(1, seq, m.input.c,
                                   412 + static_cast<unsigned>(seq)));
  }
  inputs.push_back(random_tokens(1, 50, m.input.c, 413));  // pads to 64
  for (int warm = 0; warm < 2; ++warm) {
    for (const auto& in : inputs) session.run(in, &logits);
  }
  const std::size_t cap = session.slab().capacity_bytes();
  EXPECT_EQ(cap, session.slab().high_water_bytes());
  auto allocs_of = [&](const Tensor<std::int32_t>& in) {
    const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
    session.run(in, &logits);
    return g_allocs.load(std::memory_order_relaxed) - before;
  };
  for (const auto& in : inputs) {
    const std::int64_t first = allocs_of(in);
    EXPECT_EQ(first, allocs_of(in));
  }
  EXPECT_EQ(session.slab().capacity_bytes(), cap);
  EXPECT_EQ(session.slab().high_water_bytes(), cap);
}

TEST(Session, BucketedValidateSampleRejectsBadShapes) {
  const ModelSpec m = tiny_transformer();
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 420);
  net.calibrate(random_tokens(1, m.input.h, m.input.c, 421));
  InferenceSession session(net, dev());
  // Longer than the largest bucket: no plan can serve it.
  EXPECT_THROW(session.run(random_tokens(
                   1, m.seq_buckets.back() + 1, m.input.c, 422)),
               Error);
  // Wrong feature width.
  EXPECT_THROW(session.run(Tensor<std::int32_t>({1, 32, 1, m.input.c + 1})),
               Error);
}

}  // namespace
}  // namespace apnn::nn


#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"
#include "src/quant/qem.hpp"
#include "src/quant/quantizer.hpp"

namespace apnn::quant {
namespace {

TEST(Quantizer, FloorSemantics) {
  QuantParams p{2.0, 1.0, 4};
  // code = floor((x - 1) / 2)
  EXPECT_EQ(quantize_value(1.0f, p), 0);
  EXPECT_EQ(quantize_value(2.9f, p), 0);
  EXPECT_EQ(quantize_value(3.1f, p), 1);
  EXPECT_EQ(quantize_value(9.0f, p), 4);
}

TEST(Quantizer, ClampsToRange) {
  QuantParams p{1.0, 0.0, 2};
  EXPECT_EQ(quantize_value(-5.f, p), 0);
  EXPECT_EQ(quantize_value(100.f, p), 3);
}

TEST(Quantizer, UniformParamsCoverData) {
  Rng rng(1);
  std::vector<float> xs(1000);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-3, 7));
  const QuantParams p = choose_uniform_params(xs, 4);
  for (float x : xs) {
    const std::int32_t c = quantize_value(x, p);
    EXPECT_GE(c, 0);
    EXPECT_LE(c, p.qmax());
  }
  // Extremes map to extreme codes.
  EXPECT_EQ(quantize_value(*std::min_element(xs.begin(), xs.end()), p), 0);
  EXPECT_EQ(quantize_value(*std::max_element(xs.begin(), xs.end()), p),
            p.qmax());
}

TEST(Quantizer, DegenerateConstantInput) {
  std::vector<float> xs(10, 3.5f);
  const QuantParams p = choose_uniform_params(xs, 3);
  EXPECT_EQ(quantize_value(3.5f, p), 0);
  EXPECT_NO_THROW(dequantize_value(0, p));
}

TEST(Quantizer, SymmetricParamsCenterZero) {
  Rng rng(2);
  std::vector<float> xs(500);
  for (auto& x : xs) x = static_cast<float>(rng.normal(0, 1));
  const QuantParams p = choose_symmetric_params(xs, 4);
  // Zero should land near the middle of the code range.
  const std::int32_t zero_code = quantize_value(0.f, p);
  EXPECT_NEAR(zero_code, 8, 1);
}

TEST(Quantizer, RoundTripErrorBounded) {
  Rng rng(3);
  std::vector<float> xs(2000);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(0, 10));
  for (int bits : {2, 4, 8}) {
    const QuantParams p = choose_uniform_params(xs, bits);
    for (float x : xs) {
      const float r = dequantize_value(quantize_value(x, p), p);
      EXPECT_LE(std::abs(x - r), p.scale) << "bits=" << bits;
    }
  }
}

TEST(Quantizer, MseDecreasesWithBits) {
  Rng rng(4);
  std::vector<float> xs(3000);
  for (auto& x : xs) x = static_cast<float>(rng.normal(0, 2));
  double prev = 1e18;
  for (int bits : {1, 2, 3, 4, 6, 8}) {
    const double mse = quantization_mse(xs, choose_uniform_params(xs, bits));
    EXPECT_LT(mse, prev) << "bits=" << bits;
    prev = mse;
  }
}

TEST(Quantizer, TensorRoundTrip) {
  Rng rng(5);
  Tensor<float> x({4, 5});
  x.randomize(rng, 0.f, 1.f);
  std::vector<float> flat(x.data(), x.data() + x.numel());
  const QuantParams p = choose_uniform_params(flat, 4);
  const auto q = quantize_tensor(x, p);
  const auto r = dequantize_tensor(q, p);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(r[i], x[i], static_cast<float>(p.scale));
  }
}

// --- QEM --------------------------------------------------------------------

TEST(Qem, BinaryBasisApproximatesMeanAbs) {
  Rng rng(6);
  std::vector<float> xs(4000);
  for (auto& x : xs) x = static_cast<float>(rng.normal(0, 1));
  const QemResult r = qem_quantize(xs, 1);
  ASSERT_EQ(r.basis.size(), 1u);
  // For a symmetric distribution the optimal 1-bit basis is E|w| (BWN).
  double mean_abs = 0;
  for (float x : xs) mean_abs += std::abs(x);
  mean_abs /= xs.size();
  EXPECT_NEAR(r.basis[0], mean_abs, 0.05);
}

TEST(Qem, ReconstructionUsesCodes) {
  const std::vector<double> basis = {0.5, 1.0};
  EXPECT_DOUBLE_EQ(qem_reconstruct(0b00, basis), -1.5);
  EXPECT_DOUBLE_EQ(qem_reconstruct(0b01, basis), -0.5);
  EXPECT_DOUBLE_EQ(qem_reconstruct(0b10, basis), 0.5);
  EXPECT_DOUBLE_EQ(qem_reconstruct(0b11, basis), 1.5);
}

TEST(Qem, MseImprovesWithBits) {
  Rng rng(7);
  std::vector<float> xs(3000);
  for (auto& x : xs) x = static_cast<float>(rng.normal(0, 1));
  double prev = 1e18;
  for (int bits : {1, 2, 3, 4}) {
    const QemResult r = qem_quantize(xs, bits);
    EXPECT_LT(r.mse, prev) << "bits=" << bits;
    prev = r.mse;
  }
}

TEST(Qem, BeatsNaiveUniformSymmetric) {
  // The QEM claim (LQ-Nets): learned basis MSE <= naive uniform symmetric
  // quantization MSE on gaussian weights.
  Rng rng(8);
  std::vector<float> xs(5000);
  for (auto& x : xs) x = static_cast<float>(rng.normal(0, 1.3));
  for (int bits : {2, 3, 4}) {
    const QemResult r = qem_quantize(xs, bits);
    const QuantParams naive = choose_symmetric_params(xs, bits);
    EXPECT_LT(r.mse, quantization_mse(xs, naive)) << "bits=" << bits;
  }
}

TEST(Qem, ConvergesAndMonotone) {
  Rng rng(9);
  std::vector<float> xs(1000);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-2, 2));
  const QemResult r = qem_quantize(xs, 3, 50);
  EXPECT_LE(r.iterations, 50);
  // Re-running from the returned basis should not move (fixed point).
  const auto recon = qem_reconstruct_all(r);
  double se = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    se += (xs[i] - recon[i]) * (xs[i] - recon[i]);
  }
  EXPECT_NEAR(se / xs.size(), r.mse, 1e-9);
}

TEST(Qem, HandlesConstantInput) {
  std::vector<float> xs(100, 2.0f);
  const QemResult r = qem_quantize(xs, 2);
  const auto recon = qem_reconstruct_all(r);
  EXPECT_NEAR(recon[0], 2.0f, 0.2f);
}

}  // namespace
}  // namespace apnn::quant

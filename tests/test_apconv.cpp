#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "src/baselines/conv.hpp"
#include "src/core/apconv.hpp"
#include "src/layout/im2col.hpp"
#include "src/tcsim/cost_model.hpp"
#include "test_util.hpp"

namespace apnn::core {
namespace {

using apnn::testing::random_logical;

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

layout::ConvGeometry geom(std::int64_t batch, std::int64_t cin,
                          std::int64_t hw, std::int64_t cout, int kernel,
                          int stride, int pad) {
  layout::ConvGeometry g;
  g.batch = batch;
  g.in_c = cin;
  g.in_h = hw;
  g.in_w = hw;
  g.out_c = cout;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  return g;
}

struct ConvSetup {
  Tensor<std::int32_t> x_logical;  // NHWC
  Tensor<std::int32_t> w_ohwi;
  ApOperand w;
  layout::PackedActivations x;
  Encoding x_enc;
};

ConvSetup make_setup(const layout::ConvGeometry& g, Encoding w_enc, int p,
                     Encoding x_enc, int q, std::uint64_t seed) {
  Rng rng(seed);
  ConvSetup s;
  s.x_enc = x_enc;
  Tensor<std::int32_t> x({g.batch, g.in_h, g.in_w, g.in_c});
  if (x_enc == Encoding::kSignedPM1) {
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x[i] = rng.bernoulli(0.5) ? 1 : -1;
    }
  } else {
    x.randomize(rng, 0, (1 << q) - 1);
  }
  s.x_logical = x;
  // Pack the *codes* (±1 encoded as 0/1) channel-major.
  Tensor<std::int32_t> codes(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    codes[i] = encode_value(x_enc, q, x[i]);
  }
  s.x = layout::pack_activations(codes, layout::DenseLayout::kNHWC, q);

  s.w_ohwi = Tensor<std::int32_t>({g.out_c, g.kernel, g.kernel, g.in_c});
  const ValueRange r = encoding_range(w_enc, p);
  for (std::int64_t i = 0; i < s.w_ohwi.numel(); ++i) {
    s.w_ohwi[i] = w_enc == Encoding::kSignedPM1
                      ? (rng.bernoulli(0.5) ? 1 : -1)
                      : static_cast<std::int32_t>(rng.uniform_int(r.lo, r.hi));
  }
  s.w = make_conv_weights(s.w_ohwi, w_enc, p);
  return s;
}

struct ConvCase {
  Encoding w_enc;
  int p;
  Encoding x_enc;
  int q;
  std::int64_t batch, cin, hw, cout;
  int kernel, stride, pad;
};

class ApconvCorrectness : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ApconvCorrectness, MatchesDirectConvolution) {
  const ConvCase c = GetParam();
  const layout::ConvGeometry g =
      geom(c.batch, c.cin, c.hw, c.cout, c.kernel, c.stride, c.pad);
  const ConvSetup s =
      make_setup(g, c.w_enc, c.p, c.x_enc, c.q,
                 static_cast<std::uint64_t>(c.p * 100 + c.q * 10 + c.hw));
  const ApconvResult r = apconv(s.w, s.x, c.x_enc, g, dev());
  const Tensor<std::int32_t> ref =
      conv2d_reference(s.x_logical, s.w_ohwi, g);
  EXPECT_EQ(r.y, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ApconvCorrectness,
    ::testing::Values(
        // Case III (w1aX) across kernel geometries.
        ConvCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 2, 2, 8, 8,
                 12, 3, 1, 1},
        ConvCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 2, 1, 16,
                 10, 8, 5, 1, 2},
        ConvCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 3, 2, 4, 9,
                 6, 3, 2, 1},
        ConvCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 2, 1, 8, 6,
                 4, 1, 1, 0},
        // Case I multi-bit.
        ConvCase{Encoding::kUnsigned01, 2, Encoding::kUnsigned01, 2, 2, 8, 8,
                 8, 3, 1, 1},
        ConvCase{Encoding::kUnsigned01, 3, Encoding::kUnsigned01, 4, 1, 8, 7,
                 5, 3, 1, 1},
        // Case II (BNN conv) — exercises pad-1 + counter amendment.
        ConvCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 2, 8, 8,
                 8, 3, 1, 1},
        ConvCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 1, 16, 9,
                 4, 5, 1, 2},
        ConvCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 1, 4, 6,
                 4, 3, 2, 1},
        // Two's complement weights.
        ConvCase{Encoding::kTwosComplement, 3, Encoding::kUnsigned01, 2, 1,
                 8, 8, 6, 3, 1, 1},
        // Wide activations (q > 8): regression for the fused-tail
        // multiplier table bound.
        ConvCase{Encoding::kUnsigned01, 2, Encoding::kUnsigned01, 9, 1, 4,
                 6, 5, 3, 1, 1},
        // No padding at all (padding logic must be a no-op).
        ConvCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 1, 8, 8,
                 4, 3, 1, 0}));

// --- fused (im2col-free) lowering vs materialized goldens ------------------
//
// The fused path window-gathers patch-row k-strips straight from the packed
// feature map; these tests pin it, across every emulation case x stride x
// pad x pool on deliberately non-tile-aligned oh*ow, against two
// independently materialized goldens: the direct convolution and the
// im2col_dense patch-matrix GEMM (plus the int8 implicit-GEMM baseline
// where the value range allows).

using apnn::testing::conv_via_im2col_dense;

/// Reference max pooling of an NHWC tensor (window == stride == size).
Tensor<std::int32_t> maxpool_nhwc(const Tensor<std::int32_t>& x, int size) {
  const std::int64_t b = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  Tensor<std::int32_t> y({b, h / size, w / size, c});
  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t py = 0; py < h / size; ++py) {
      for (std::int64_t px = 0; px < w / size; ++px) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
          std::int32_t agg = INT32_MIN;
          for (int dy = 0; dy < size; ++dy) {
            for (int dx = 0; dx < size; ++dx) {
              agg = std::max(agg,
                             x(n, py * size + dy, px * size + dx, ch));
            }
          }
          y(n, py, px, ch) = agg;
        }
      }
    }
  }
  return y;
}

struct FusedCase {
  Encoding w_enc;
  int p;
  Encoding x_enc;
  int q;
  int stride;
  int pad;
  bool pool;
};

class ApconvFusedLowering : public ::testing::TestWithParam<FusedCase> {};

TEST_P(ApconvFusedLowering, MatchesMaterializedGoldens) {
  const FusedCase c = GetParam();
  // hw chosen per (stride, pad) so oh = ow is even (poolable) while
  // batch*oh*ow stays off every tile boundary.
  std::int64_t hw = 0;
  if (c.stride == 1) {
    hw = c.pad == 1 ? 10 : 12;  // oh = 10
  } else {
    hw = c.pad == 1 ? 11 : 13;  // oh = 6
  }
  const layout::ConvGeometry g = geom(2, 5, hw, 9, 3, c.stride, c.pad);
  ASSERT_EQ(g.out_h() % 2, 0);
  const ConvSetup s = make_setup(
      g, c.w_enc, c.p, c.x_enc, c.q,
      static_cast<std::uint64_t>(c.p * 1000 + c.q * 100 + c.stride * 10 +
                                 c.pad + (c.pool ? 7 : 0)));

  // Two independent materialized goldens must agree with each other.
  const Tensor<std::int32_t> ref = conv2d_reference(s.x_logical, s.w_ohwi, g);
  ASSERT_EQ(conv_via_im2col_dense(s.x_logical, s.w_ohwi, g), ref);
  if (c.p <= 7 && c.q <= 7) {
    // Third, fully independent pin: the int8 implicit-GEMM baseline.
    Tensor<std::int8_t> x8({g.batch, g.in_h, g.in_w, g.in_c});
    Tensor<std::int8_t> w8({g.out_c, g.kernel, g.kernel, g.in_c});
    for (std::int64_t i = 0; i < x8.numel(); ++i) {
      x8[i] = static_cast<std::int8_t>(s.x_logical[i]);
    }
    for (std::int64_t i = 0; i < w8.numel(); ++i) {
      w8[i] = static_cast<std::int8_t>(s.w_ohwi[i]);
    }
    ASSERT_EQ(baselines::conv_int8(x8, w8, g), ref);
  }

  PoolSpec pool;
  if (c.pool) {
    pool.kind = PoolSpec::Kind::kMax;
    pool.size = 2;
  }

  // Plain fused conv vs the (optionally pooled) golden.
  {
    const ApconvResult r =
        apconv(s.w, s.x, c.x_enc, g, dev(), {}, {}, pool);
    const Tensor<std::int32_t> want = c.pool ? maxpool_nhwc(ref, 2) : ref;
    ASSERT_EQ(r.y, want)
        << "stride=" << c.stride << " pad=" << c.pad << " pool=" << c.pool;
  }

  // Fused BN -> ReLU tail (applied before pooling, §5.2 composition order).
  {
    Epilogue epi;
    epi.has_bn = true;
    epi.bn.scale.assign(static_cast<std::size_t>(g.out_c), 0.5f);
    epi.bn.bias.assign(static_cast<std::size_t>(g.out_c), -1.0f);
    epi.has_relu = true;
    const ApconvResult r =
        apconv(s.w, s.x, c.x_enc, g, dev(), {}, epi, pool);
    Tensor<std::int32_t> want = ref;
    for (std::int64_t i = 0; i < want.numel(); ++i) {
      const float v = static_cast<float>(want[i]) * 0.5f - 1.0f;
      want[i] = static_cast<std::int32_t>(std::max(v, 0.0f));
    }
    if (c.pool) want = maxpool_nhwc(want, 2);
    ASSERT_EQ(r.y, want)
        << "stride=" << c.stride << " pad=" << c.pad << " pool=" << c.pool;
  }
}

std::vector<FusedCase> fused_cases() {
  const std::tuple<Encoding, int, Encoding, int> encodings[] = {
      {Encoding::kUnsigned01, 2, Encoding::kUnsigned01, 2},      // Case I
      {Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1},        // Case II
      {Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 3},       // Case III
      {Encoding::kTwosComplement, 3, Encoding::kUnsigned01, 2},  // 2's comp
  };
  std::vector<FusedCase> cases;
  for (const auto& [we, p, xe, q] : encodings) {
    for (int stride : {1, 2}) {
      for (int pad : {0, 1}) {
        for (bool pool : {false, true}) {
          cases.push_back({we, p, xe, q, stride, pad, pool});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCases, ApconvFusedLowering,
                         ::testing::ValuesIn(fused_cases()));

// The Case-II padding amendment is the trickiest §4.2b path: verify border
// vs interior positions explicitly.
TEST(ApconvPadding, CaseTwoAmendmentExactOnBorders) {
  const layout::ConvGeometry g = geom(1, 8, 6, 4, 3, 1, 1);
  const ConvSetup s = make_setup(g, Encoding::kSignedPM1, 1,
                                 Encoding::kSignedPM1, 1, 99);
  const ApconvResult r = apconv(s.w, s.x, Encoding::kSignedPM1, g, dev());
  const Tensor<std::int32_t> ref =
      conv2d_reference(s.x_logical, s.w_ohwi, g);
  // All positions — including the four corners where 5 of 9 taps pad.
  for (std::int64_t oy = 0; oy < g.out_h(); ++oy) {
    for (std::int64_t ox = 0; ox < g.out_w(); ++ox) {
      for (std::int64_t m = 0; m < g.out_c; ++m) {
        ASSERT_EQ(r.y(0, oy, ox, m), ref(0, oy, ox, m))
            << "pos " << oy << "," << ox << " ch " << m;
      }
    }
  }
}

TEST(ApconvPadding, CaseOnePadsZeroTrivially) {
  const layout::ConvGeometry g = geom(1, 4, 5, 3, 3, 1, 1);
  const ConvSetup s = make_setup(g, Encoding::kUnsigned01, 2,
                                 Encoding::kUnsigned01, 2, 100);
  EXPECT_EQ(apconv(s.w, s.x, Encoding::kUnsigned01, g, dev()).y,
            conv2d_reference(s.x_logical, s.w_ohwi, g));
}

// --- fused epilogue + pooling ----------------------------------------------------

TEST(ApconvEpilogue, FusedBnReluMatchesPostProcessing) {
  const layout::ConvGeometry g = geom(1, 8, 8, 6, 3, 1, 1);
  const ConvSetup s = make_setup(g, Encoding::kSignedPM1, 1,
                                 Encoding::kUnsigned01, 2, 101);
  Epilogue epi;
  epi.has_bn = true;
  epi.bn.scale.assign(6, 0.5f);
  epi.bn.bias.assign(6, -3.0f);
  epi.has_relu = true;
  const ApconvResult r =
      apconv(s.w, s.x, Encoding::kUnsigned01, g, dev(), {}, epi);
  const Tensor<std::int32_t> ref =
      conv2d_reference(s.x_logical, s.w_ohwi, g);
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    const float v = static_cast<float>(ref[i]) * 0.5f - 3.0f;
    EXPECT_EQ(r.y[i], static_cast<std::int32_t>(std::max(v, 0.f)));
  }
}

TEST(ApconvEpilogue, MaxPoolingMatchesReference) {
  const layout::ConvGeometry g = geom(2, 8, 8, 4, 3, 1, 1);
  const ConvSetup s = make_setup(g, Encoding::kSignedPM1, 1,
                                 Encoding::kUnsigned01, 2, 102);
  PoolSpec pool;
  pool.kind = PoolSpec::Kind::kMax;
  pool.size = 2;
  const ApconvResult r =
      apconv(s.w, s.x, Encoding::kUnsigned01, g, dev(), {}, {}, pool);
  const Tensor<std::int32_t> ref =
      conv2d_reference(s.x_logical, s.w_ohwi, g);
  ASSERT_EQ(r.y.shape(), (std::vector<std::int64_t>{2, 4, 4, 4}));
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t py = 0; py < 4; ++py) {
      for (std::int64_t px = 0; px < 4; ++px) {
        for (std::int64_t c = 0; c < 4; ++c) {
          std::int32_t expect = INT32_MIN;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              expect = std::max(expect,
                                ref(n, py * 2 + dy, px * 2 + dx, c));
            }
          }
          ASSERT_EQ(r.y(n, py, px, c), expect);
        }
      }
    }
  }
}

TEST(ApconvEpilogue, AvgPoolingTruncates) {
  const layout::ConvGeometry g = geom(1, 4, 4, 2, 3, 1, 1);
  const ConvSetup s = make_setup(g, Encoding::kUnsigned01, 2,
                                 Encoding::kUnsigned01, 2, 103);
  PoolSpec pool;
  pool.kind = PoolSpec::Kind::kAvg;
  pool.size = 2;
  const ApconvResult r =
      apconv(s.w, s.x, Encoding::kUnsigned01, g, dev(), {}, {}, pool);
  const Tensor<std::int32_t> ref =
      conv2d_reference(s.x_logical, s.w_ohwi, g);
  for (std::int64_t py = 0; py < 2; ++py) {
    for (std::int64_t px = 0; px < 2; ++px) {
      for (std::int64_t c = 0; c < 2; ++c) {
        std::int64_t sum = 0;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            sum += ref(0, py * 2 + dy, px * 2 + dx, c);
          }
        }
        ASSERT_EQ(r.y(0, py, px, c), static_cast<std::int32_t>(sum / 4));
      }
    }
  }
}

TEST(ApconvEpilogue, QuantizedPackedOutputFeedsNextLayer) {
  const layout::ConvGeometry g = geom(2, 8, 8, 8, 3, 1, 1);
  const ConvSetup s = make_setup(g, Encoding::kSignedPM1, 1,
                                 Encoding::kUnsigned01, 2, 104);
  Epilogue epi;
  epi.has_relu = true;
  epi.has_quant = true;
  epi.quant.bits = 2;
  epi.quant.scale = 8.0;
  PoolSpec pool;
  pool.kind = PoolSpec::Kind::kMax;
  pool.size = 2;
  const ApconvResult r =
      apconv(s.w, s.x, Encoding::kUnsigned01, g, dev(), {}, epi, pool);
  EXPECT_EQ(r.packed.n, 2);
  EXPECT_EQ(r.packed.h, 4);
  EXPECT_EQ(r.packed.w, 4);
  EXPECT_EQ(r.packed.c, 8);
  EXPECT_EQ(r.packed.bits, 2);
  // Validate codes against the dense reference pipeline.
  const Tensor<std::int32_t> ref =
      conv2d_reference(s.x_logical, s.w_ohwi, g);
  const Tensor<std::int32_t> codes = layout::unpack_activations(r.packed);
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t py = 0; py < 4; ++py) {
      for (std::int64_t px = 0; px < 4; ++px) {
        for (std::int64_t c = 0; c < 8; ++c) {
          std::int32_t pooled = INT32_MIN;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              pooled = std::max(
                  pooled,
                  std::max(ref(n, py * 2 + dy, px * 2 + dx, c), 0));
            }
          }
          ASSERT_EQ(codes(n, py, px, c),
                    quant::quantize_value(static_cast<float>(pooled),
                                          epi.quant));
        }
      }
    }
  }
}

// --- fusion and layout traffic properties ----------------------------------------

TEST(ApconvTraffic, FusionRemovesKernelLaunchesAndGlobalRoundTrips) {
  const layout::ConvGeometry g = geom(1, 128, 16, 128, 3, 1, 1);
  Epilogue epi;
  epi.has_quant = true;
  epi.quant.bits = 2;
  PoolSpec pool;
  pool.kind = PoolSpec::Kind::kMax;
  pool.size = 2;
  ApconvOptions fused, unfused;
  fused.mode = ExecMode::kProfileOnly;
  unfused.mode = ExecMode::kProfileOnly;
  unfused.fuse_epilogue = false;
  const EncodingConfig enc{Encoding::kSignedPM1, Encoding::kUnsigned01};
  const auto pf = apconv_profile(g, 1, 2, enc, dev(), fused, epi, pool);
  const auto pu = apconv_profile(g, 1, 2, enc, dev(), unfused, epi, pool);
  EXPECT_EQ(pf.kernels.size(), 1u);
  EXPECT_EQ(pu.kernels.size(), 3u);  // conv + pool + quantize
  EXPECT_LT(pf.total_counters().total_global_bytes(),
            pu.total_counters().total_global_bytes());
  const tcsim::CostModel cm(dev());
  EXPECT_LT(cm.estimate(pf).total_us, cm.estimate(pu).total_us);
}

TEST(ApconvTraffic, ProfileOnlyMatchesFullExecution) {
  const layout::ConvGeometry g = geom(1, 16, 8, 12, 3, 1, 1);
  const ConvSetup s = make_setup(g, Encoding::kSignedPM1, 1,
                                 Encoding::kUnsigned01, 2, 105);
  ApconvOptions full, prof;
  prof.mode = ExecMode::kProfileOnly;
  const auto rf = apconv(s.w, s.x, Encoding::kUnsigned01, g, dev(), full);
  const auto rp = apconv(s.w, s.x, Encoding::kUnsigned01, g, dev(), prof);
  EXPECT_EQ(rp.y.numel(), 0);
  const auto cf = rf.profile.total_counters();
  const auto cp = rp.profile.total_counters();
  EXPECT_EQ(cf.total_global_bytes(), cp.total_global_bytes());
  EXPECT_EQ(cf.bmma_b1, cp.bmma_b1);
}

TEST(ApconvTraffic, BitOverheadIsSmallFraction) {
  // Fig 11 property: decomposition+combination ALU work is tiny next to the
  // tensor-core op count.
  const layout::ConvGeometry g = geom(1, 256, 16, 256, 3, 1, 1);
  ApconvOptions opts;
  opts.mode = ExecMode::kProfileOnly;
  Epilogue epi;
  epi.has_quant = true;
  epi.quant.bits = 2;
  const EncodingConfig enc{Encoding::kSignedPM1, Encoding::kUnsigned01};
  const auto prof = apconv_profile(g, 1, 2, enc, dev(), opts, epi);
  const auto c = prof.total_counters();
  EXPECT_LT(static_cast<double>(c.total_alu_ops()),
            0.05 * static_cast<double>(c.ops_b1()) / 2);
}

TEST(Apconv, RejectsGeometryMismatch) {
  const layout::ConvGeometry g = geom(1, 8, 8, 4, 3, 1, 1);
  const ConvSetup s = make_setup(g, Encoding::kSignedPM1, 1,
                                 Encoding::kUnsigned01, 2, 106);
  layout::ConvGeometry bad = g;
  bad.in_c = 16;
  EXPECT_THROW(apconv(s.w, s.x, Encoding::kUnsigned01, bad, dev()),
               apnn::Error);
}

TEST(Apconv, RejectsNonTilingPool) {
  const layout::ConvGeometry g = geom(1, 8, 7, 4, 3, 1, 1);  // 7x7 output
  const ConvSetup s = make_setup(g, Encoding::kSignedPM1, 1,
                                 Encoding::kUnsigned01, 2, 107);
  PoolSpec pool;
  pool.kind = PoolSpec::Kind::kMax;
  pool.size = 2;
  EXPECT_THROW(
      apconv(s.w, s.x, Encoding::kUnsigned01, g, dev(), {}, {}, pool),
      apnn::Error);
}

}  // namespace
}  // namespace apnn::core

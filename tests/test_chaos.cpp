// Fault-injection drills for the deadline-aware request lifecycle and the
// self-healing replica pool (runs in CI under TSan with every site armed):
//   * every faultinject site is driven: session.run, replica.dispatch,
//     server.admission, tuningcache.save;
//   * an injected replica crash fails exactly the requests that replica
//     held (typed kReplicaFailed), the monitor restarts the replica, and
//     every non-injected request before/after is served bit-exact;
//   * repeated crashes quarantine the replica; with no replicas left the
//     server fails fast instead of stranding clients;
//   * a stuck dispatch cycle unblocks its waiting clients long before the
//     stall resolves, then the replica recovers;
//   * deadlines fail fast at every lifecycle stage: admission, blocked on
//     backpressure, and queued behind a stalled replica;
//   * Admission::kDegrade sheds oldest-first instead of blocking and exits
//     degraded mode once the backlog drains;
//   * shutdown racing deadline expiry never strands or double-completes a
//     request;
//   * a TuningCache save that dies mid-persist never clobbers the previous
//     cache file, and a corrupt cache file degrades to cold tuning.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/faultinject.hpp"
#include "src/core/autotune.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/model.hpp"
#include "src/nn/server.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn::nn {
namespace {

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

Tensor<std::int32_t> random_input(std::int64_t b, const ModelSpec& m,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Tensor<std::int32_t> in({b, m.input.h, m.input.w, m.input.c});
  in.randomize(rng, 0, 255);
  return in;
}

void expect_same_logits(const Tensor<std::int32_t>& got,
                        const Tensor<std::int32_t>& want, int which) {
  ASSERT_EQ(got.numel(), want.numel()) << "request " << which;
  for (std::int64_t j = 0; j < got.numel(); ++j) {
    EXPECT_EQ(got[j], want[j]) << "request " << which << " logit " << j;
  }
}

// Every test arms sites; none may leak arming into the next test.
struct ChaosTest : ::testing::Test {
  ~ChaosTest() override { faultinject::disarm_all(); }
};

// Polls `pred` until it holds or `timeout` passes (sanitizer-friendly: no
// fixed sleep long enough to matter when the condition is already true).
bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout =
                    std::chrono::milliseconds(10000)) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

struct Fixture {
  ModelSpec m;
  ApnnNetwork net;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> golden;

  explicit Fixture(int n_samples, std::uint64_t seed = 500)
      : m(mini_cnn(4, 8, 5)), net(ApnnNetwork::random(m, 1, 2, seed)) {
    net.calibrate(random_input(1, m, seed + 1));
    // Goldens run before any site is armed: unarmed sites count no
    // traversals, so fault ordinals below start at the serving work.
    InferenceSession session(net, dev());
    for (int i = 0; i < n_samples; ++i) {
      samples.push_back(random_input(1, m, seed + 2 + static_cast<unsigned>(i)));
      golden.push_back(session.run(samples.back()));
    }
  }
};

ErrorKind infer_error_kind(InferenceServer& server,
                           const Tensor<std::int32_t>& sample,
                           InferenceServer::Deadline deadline =
                               InferenceServer::kNoDeadline) {
  try {
    server.infer(sample, deadline);
  } catch (const ServerError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "infer() unexpectedly succeeded";
  return ErrorKind::kReplicaFailed;
}

// --- replica crash + self-healing -------------------------------------------

TEST_F(ChaosTest, ReplicaCrashFailsItsBatchRestartsAndStaysBitExact) {
  Fixture f(4);
  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 2;
  InferenceServer server(f.net, dev(), opts);

  // First dispatch dies right after dequeue: the request it held fails with
  // the typed replica error, not the raw injected exception.
  faultinject::arm(faultinject::kReplicaDispatch, 1);
  EXPECT_EQ(infer_error_kind(server, f.samples[0]),
            ErrorKind::kReplicaFailed);
  EXPECT_EQ(faultinject::fires(faultinject::kReplicaDispatch), 1);

  // The monitor joins the dead dispatcher and brings a fresh one up.
  ASSERT_TRUE(eventually([&] {
    const auto st = server.stats();
    return st.replica_restarts >= 1 &&
           st.replica_health[0] == ReplicaHealth::kHealthy;
  }));

  // Everything after the crash is served bit-exact by the restarted replica.
  for (std::size_t i = 0; i < f.samples.size(); ++i) {
    expect_same_logits(server.infer(f.samples[i]), f.golden[i],
                       static_cast<int>(i));
  }
  const auto st = server.stats();
  EXPECT_EQ(st.errors(ErrorKind::kReplicaFailed), 1);
  EXPECT_EQ(st.requests, static_cast<std::int64_t>(f.samples.size()));
}

TEST_F(ChaosTest, SessionRunFaultEscalatesToReplicaFailureAndHeals) {
  Fixture f(3);
  ServerOptions opts;
  opts.replicas = 1;
  InferenceServer server(f.net, dev(), opts);

  // The compiled forward pass itself throws: same contract as a dispatch
  // crash — typed failure for the batch, restart, bit-exact afterwards.
  faultinject::arm(faultinject::kSessionRun, 1);
  EXPECT_EQ(infer_error_kind(server, f.samples[0]),
            ErrorKind::kReplicaFailed);
  ASSERT_TRUE(eventually([&] {
    return server.stats().replica_restarts >= 1;
  }));
  for (std::size_t i = 0; i < f.samples.size(); ++i) {
    expect_same_logits(server.infer(f.samples[i]), f.golden[i],
                       static_cast<int>(i));
  }
}

TEST_F(ChaosTest, RepeatedCrashesQuarantineAndThenFailFast) {
  Fixture f(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.max_replica_restarts = 0;  // first crash is one too many
  InferenceServer server(f.net, dev(), opts);

  faultinject::arm(faultinject::kReplicaDispatch, 1, /*repeat=*/-1);
  EXPECT_EQ(infer_error_kind(server, f.samples[0]),
            ErrorKind::kReplicaFailed);

  // The monitor quarantines instead of restarting; with no replica left the
  // server must fail admissions immediately, not strand them.
  ASSERT_TRUE(eventually([&] {
    return server.stats().replica_health[0] == ReplicaHealth::kQuarantined;
  }));
  EXPECT_EQ(infer_error_kind(server, f.samples[0]),
            ErrorKind::kReplicaFailed);
  const auto st = server.stats();
  EXPECT_EQ(st.replica_restarts, 0);
  EXPECT_EQ(st.requests, 0);
}

TEST_F(ChaosTest, StuckReplicaUnblocksClientsPromptlyThenRecovers) {
  Fixture f(2);
  ServerOptions opts;
  opts.replicas = 1;
  opts.stuck_threshold = std::chrono::milliseconds(50);
  InferenceServer server(f.net, dev(), opts);

  // The first dispatch stalls for 600 ms — far past the 50 ms watchdog. The
  // waiting client must be failed by the monitor mid-stall, not ride out
  // the sleep.
  faultinject::arm(faultinject::kReplicaDispatch, 1, /*repeat=*/1,
                   std::chrono::milliseconds(600));
  const auto before = std::chrono::steady_clock::now();
  EXPECT_EQ(infer_error_kind(server, f.samples[0]),
            ErrorKind::kReplicaFailed);
  const auto waited = std::chrono::steady_clock::now() - before;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            500)
      << "client should unblock at the watchdog, not at the end of the stall";

  // Once the stalled cycle returns the replica retires and is restarted.
  ASSERT_TRUE(eventually([&] {
    const auto st = server.stats();
    return st.replica_restarts >= 1 &&
           st.replica_health[0] == ReplicaHealth::kHealthy;
  }));
  for (std::size_t i = 0; i < f.samples.size(); ++i) {
    expect_same_logits(server.infer(f.samples[i]), f.golden[i],
                       static_cast<int>(i));
  }
}

// --- admission fault ---------------------------------------------------------

TEST_F(ChaosTest, AdmissionFaultHitsOnlyItsCaller) {
  Fixture f(2);
  ServerOptions opts;
  opts.replicas = 1;
  InferenceServer server(f.net, dev(), opts);

  faultinject::arm(faultinject::kAdmission, 1);
  EXPECT_THROW(server.infer(f.samples[0]), faultinject::FaultInjected);
  // The fault fired before the request existed: no replica saw it, and the
  // very next request sails through bit-exact.
  expect_same_logits(server.infer(f.samples[1]), f.golden[1], 1);
  const auto st = server.stats();
  EXPECT_EQ(st.requests, 1);
  EXPECT_EQ(st.replica_restarts, 0);
}

// --- deadlines at every lifecycle stage --------------------------------------

TEST_F(ChaosTest, ExpiredDeadlineFailsAtAdmission) {
  Fixture f(1);
  ServerOptions opts;
  opts.replicas = 1;
  InferenceServer server(f.net, dev(), opts);

  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(infer_error_kind(server, f.samples[0], past),
            ErrorKind::kDeadlineExceeded);
  const auto st = server.stats();
  EXPECT_EQ(st.errors(ErrorKind::kDeadlineExceeded), 1);
  EXPECT_EQ(st.requests, 0);

  // A budget that cannot be met behaves identically via the convenience
  // overload.
  EXPECT_THROW(server.infer(f.samples[0], std::chrono::milliseconds(0)),
               ServerError);
}

TEST_F(ChaosTest, DeadlineExpiresWhileQueuedBehindAStalledReplica) {
  Fixture f(2);
  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 1;  // the urgent request can never join the first batch
  InferenceServer server(f.net, dev(), opts);

  // Request A occupies the lone replica for 400 ms; request B's 50 ms
  // deadline expires while it sits queued. It must fail at dequeue —
  // before occupying a batch slot — and never reach a session run.
  faultinject::arm(faultinject::kReplicaDispatch, 1, /*repeat=*/1,
                   std::chrono::milliseconds(400));
  std::thread a([&] {
    expect_same_logits(server.infer(f.samples[0]), f.golden[0], 0);
  });
  // A is dequeued as soon as the dispatcher sees it; give it a beat.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(infer_error_kind(
                server, f.samples[1],
                std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(50)),
            ErrorKind::kDeadlineExceeded);
  a.join();
  const auto st = server.stats();
  EXPECT_EQ(st.requests, 1);  // only A produced logits
  EXPECT_EQ(st.errors(ErrorKind::kDeadlineExceeded), 1);
}

TEST_F(ChaosTest, DeadlineExpiresWhileBlockedOnBackpressure) {
  Fixture f(3);
  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 1;
  opts.max_queue = 1;
  opts.admission = ServerOptions::Admission::kBlock;
  InferenceServer server(f.net, dev(), opts);

  // A stalls the replica, B fills the one-slot queue, so C blocks on
  // admission. C's deadline must cut the wait short — well before the
  // stall resolves.
  faultinject::arm(faultinject::kReplicaDispatch, 1, /*repeat=*/1,
                   std::chrono::milliseconds(500));
  std::thread a([&] {
    expect_same_logits(server.infer(f.samples[0]), f.golden[0], 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread b([&] {
    expect_same_logits(server.infer(f.samples[1]), f.golden[1], 1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto before = std::chrono::steady_clock::now();
  EXPECT_EQ(infer_error_kind(server, f.samples[2],
                             before + std::chrono::milliseconds(60)),
            ErrorKind::kDeadlineExceeded);
  const auto waited = std::chrono::steady_clock::now() - before;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            350)
      << "backpressure wait must end at the deadline, not at queue space";
  a.join();
  b.join();
  EXPECT_EQ(server.stats().errors(ErrorKind::kDeadlineExceeded), 1);
}

// --- graceful degradation ----------------------------------------------------

TEST_F(ChaosTest, DegradeShedsOldestInsteadOfBlocking) {
  Fixture f(5, /*seed=*/520);
  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 1;
  opts.max_queue = 2;
  opts.admission = ServerOptions::Admission::kDegrade;
  opts.degrade_high_water = 2;
  InferenceServer server(f.net, dev(), opts);

  // One request stalls the replica; the next four arrive in order into a
  // two-slot queue. Each over-admission drop-heads the oldest queued
  // request, so the newest callers win and nobody blocks.
  faultinject::arm(faultinject::kReplicaDispatch, 1, /*repeat=*/1,
                   std::chrono::milliseconds(300));
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 5; ++i) {
    clients.emplace_back([&, i] {
      try {
        expect_same_logits(server.infer(f.samples[static_cast<std::size_t>(i)]),
                           f.golden[static_cast<std::size_t>(i)], i);
        served.fetch_add(1);
      } catch (const ServerError& e) {
        EXPECT_EQ(e.kind(), ErrorKind::kQueueFull) << "client " << i;
        shed.fetch_add(1);
      }
    });
    // Strictly ordered arrivals so "oldest" is well defined.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  for (auto& t : clients) t.join();

  const auto st = server.stats();
  EXPECT_EQ(served.load() + shed.load(), 5);
  EXPECT_GE(shed.load(), 1) << "overload must shed, not block";
  EXPECT_EQ(st.shed, shed.load());
  EXPECT_EQ(st.errors(ErrorKind::kQueueFull), shed.load());
  EXPECT_GE(st.degrade_entries, 1);
  EXPECT_FALSE(st.degraded) << "drained: degraded mode must have exited";
}

// --- shutdown races ----------------------------------------------------------

TEST_F(ChaosTest, ShutdownRacingDeadlineExpiryNeverStrandsAClient) {
  Fixture f(1);
  for (int round = 0; round < 8; ++round) {
    ServerOptions opts;
    opts.replicas = 1;
    opts.max_batch = 4;
    InferenceServer server(f.net, dev(), opts);
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&] {
        try {
          server.infer(f.samples[0], std::chrono::milliseconds(1));
        } catch (const ServerError& e) {
          // Whichever wins the race, the failure is typed; anything else
          // (or a hang, which the join below would become) is a bug.
          EXPECT_TRUE(e.kind() == ErrorKind::kDeadlineExceeded ||
                      e.kind() == ErrorKind::kShuttingDown)
              << error_kind_name(e.kind());
        }
      });
    }
    if (round % 2 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.shutdown();  // drain races the 1 ms deadlines (and late arrivals)
    for (auto& t : clients) t.join();
  }
}

// --- TuningCache persistence -------------------------------------------------

core::StageKey cache_key(std::int64_t n) {
  core::StageKey key;
  key.kind = "mm";
  key.m = 128;
  key.n = n;
  key.k = 512;
  key.p = 1;
  key.q = 2;
  key.ecase = core::EmulationCase::kCaseIII;
  key.has_relu = true;
  key.qbits = 2;
  return key;
}

TEST_F(ChaosTest, CacheSaveFaultNeverClobbersThePreviousFile) {
  const std::string path = ::testing::TempDir() + "apnn_chaos_cache";
  std::remove(path.c_str());
  const std::string tmp = path + ".tmp";

  core::TuningCache cache;
  core::TunedKernel k;
  k.tile.bm = 32;
  k.tile.bn = 128;
  k.measured = true;
  k.measured_ms = 1.0;
  cache.insert(cache_key(8), k);
  ASSERT_TRUE(cache.save_file(path));

  // A save that dies mid-persist must leave the old file byte-for-byte
  // usable and clean up its temp — a truncated cache would silently cost a
  // full cold re-tune on the next load.
  cache.insert(cache_key(16), k);
  faultinject::arm(faultinject::kCacheSave, 1);
  EXPECT_THROW(cache.save_file(path), faultinject::FaultInjected);
  {
    std::ifstream leftover(tmp);
    EXPECT_FALSE(leftover.good()) << "temp file must not survive the fault";
  }
  core::TuningCache reloaded;
  ASSERT_TRUE(reloaded.load_file(path));
  EXPECT_EQ(reloaded.size(), 1u) << "old cache content must be intact";

  // Disarmed, the same save lands atomically.
  faultinject::disarm_all();
  ASSERT_TRUE(cache.save_file(path));
  core::TuningCache after;
  ASSERT_TRUE(after.load_file(path));
  EXPECT_EQ(after.size(), 2u);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, CorruptCacheFileDegradesToColdTuning) {
  const std::string path = ::testing::TempDir() + "apnn_chaos_corrupt_cache";
  {
    std::ofstream f(path);
    f << "apnn-tuning-cache v1\nthis file was truncated mid-w";
  }
  core::TuningCache cache;
  EXPECT_FALSE(cache.load_file(path));
  EXPECT_EQ(cache.size(), 0u);

  // Cold tuning proceeds from the empty cache — degraded startup, not a
  // crash — and the tuned session still serves bit-exact logits.
  Fixture f(1, /*seed=*/540);
  SessionOptions opts;
  opts.autotune = true;
  opts.cache = &cache;
  opts.tuner.reps = 1;
  opts.tune_batch = 1;  // tune eagerly so the cold measurements are visible
  InferenceSession tuned(f.net, dev(), opts);
  EXPECT_GT(tuned.tuning_measurements(), 0)
      << "an unusable cache must fall back to measuring";
  expect_same_logits(tuned.run(f.samples[0]), f.golden[0], 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apnn::nn

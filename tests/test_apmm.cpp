#include <gtest/gtest.h>

#include <tuple>

#include "src/bitops/decompose.hpp"
#include "src/core/apmm.hpp"
#include "src/tcsim/cost_model.hpp"
#include "test_util.hpp"

namespace apnn::core {
namespace {

using apnn::testing::naive_gemm;
using apnn::testing::random_logical;

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

struct MmCase {
  Encoding w_enc;
  int p;
  Encoding x_enc;
  int q;
  std::int64_t m, n, k;
};

class ApmmCorrectness : public ::testing::TestWithParam<MmCase> {};

TEST_P(ApmmCorrectness, MatchesNaiveGemm) {
  const MmCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.m * 31 + c.n * 7 + c.k + c.p + c.q));
  const auto wl = random_logical(rng, c.m, c.k, c.w_enc, c.p);
  const auto xl = random_logical(rng, c.n, c.k, c.x_enc, c.q);
  const ApOperand w = make_operand(wl, c.w_enc, c.p);
  const ApOperand x = make_operand(xl, c.x_enc, c.q);
  const ApmmResult r = apmm(w, x, dev());
  EXPECT_EQ(r.y, naive_gemm(wl, xl));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ApmmCorrectness,
    ::testing::Values(
        // w1a2 — the headline configuration (Case III).
        MmCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 2, 64, 128,
               128},
        // Larger-than-tile shapes, ragged in every dimension.
        MmCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 2, 130, 70,
               300},
        MmCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 3, 65, 129,
               257},
        MmCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 8, 40, 40,
               512},
        // Case I multi-bit weights.
        MmCase{Encoding::kUnsigned01, 2, Encoding::kUnsigned01, 2, 96, 96,
               256},
        MmCase{Encoding::kUnsigned01, 3, Encoding::kUnsigned01, 5, 33, 47,
               129},
        MmCase{Encoding::kUnsigned01, 5, Encoding::kUnsigned01, 1, 64, 64,
               128},
        MmCase{Encoding::kUnsigned01, 6, Encoding::kUnsigned01, 2, 24, 100,
               140},
        MmCase{Encoding::kUnsigned01, 4, Encoding::kUnsigned01, 4, 64, 64,
               1024},
        // Case II (BNN).
        MmCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 100, 90,
               333},
        // Two's complement extension.
        MmCase{Encoding::kTwosComplement, 4, Encoding::kUnsigned01, 4, 50,
               60, 200},
        // Tiny shapes (single tile, single output).
        MmCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 2, 1, 1, 1},
        MmCase{Encoding::kUnsigned01, 2, Encoding::kUnsigned01, 2, 3, 2, 5}));

TEST(Apmm, MatchesReferenceImplementation) {
  Rng rng(77);
  const auto wl = random_logical(rng, 45, 200, Encoding::kSignedPM1, 1);
  const auto xl = random_logical(rng, 61, 200, Encoding::kUnsigned01, 3);
  const ApOperand w = make_operand(wl, Encoding::kSignedPM1, 1);
  const ApOperand x = make_operand(xl, Encoding::kUnsigned01, 3);
  EXPECT_EQ(apmm(w, x, dev()).y, ap_gemm_reference(w, x));
}

// --- option toggles preserve results, change traffic ---------------------------

struct Operands {
  Tensor<std::int32_t> wl, xl;
  ApOperand w, x;
};

Operands sample_operands(std::uint64_t seed, std::int64_t m = 64,
                         std::int64_t n = 256, std::int64_t k = 256,
                         int p = 1, int q = 2) {
  Rng rng(seed);
  Operands o;
  const Encoding we = p == 1 ? Encoding::kSignedPM1 : Encoding::kUnsigned01;
  o.wl = random_logical(rng, m, k, we, p);
  o.xl = random_logical(rng, n, k, Encoding::kUnsigned01, q);
  o.w = make_operand(o.wl, we, p);
  o.x = make_operand(o.xl, Encoding::kUnsigned01, q);
  return o;
}

TEST(ApmmOptions, NoBatchingSameResultMoreLaunches) {
  const Operands o = sample_operands(1, 48, 96, 256, 2, 2);
  ApmmOptions batched, naive;
  naive.batch_planes = false;
  const ApmmResult rb = apmm(o.w, o.x, dev(), batched);
  const ApmmResult rn = apmm(o.w, o.x, dev(), naive);
  EXPECT_EQ(rb.y, rn.y);
  EXPECT_EQ(rb.profile.kernels.size(), 1u);
  EXPECT_EQ(rn.profile.kernels.size(), 5u);  // p*q BMMAs + combine
  EXPECT_GT(rn.profile.total_counters().total_global_bytes(),
            rb.profile.total_counters().total_global_bytes());
}

TEST(ApmmOptions, NoDoubleCachingSameResultMoreGlobalTraffic) {
  const Operands o = sample_operands(2);
  ApmmOptions cached, uncached;
  uncached.double_caching = false;
  const ApmmResult rc = apmm(o.w, o.x, dev(), cached);
  const ApmmResult ru = apmm(o.w, o.x, dev(), uncached);
  EXPECT_EQ(rc.y, ru.y);
  EXPECT_GT(ru.profile.total_counters().global_load_bytes,
            rc.profile.total_counters().global_load_bytes);
}

TEST(ApmmOptions, NoFragmentCachingSameResultMoreSharedTraffic) {
  const Operands o = sample_operands(3);
  ApmmOptions frag, nofrag;
  nofrag.fragment_caching = false;
  const ApmmResult rf = apmm(o.w, o.x, dev(), frag);
  const ApmmResult rn = apmm(o.w, o.x, dev(), nofrag);
  EXPECT_EQ(rf.y, rn.y);
  EXPECT_GT(rn.profile.total_counters().total_shared_bytes(),
            rf.profile.total_counters().total_shared_bytes());
}

TEST(ApmmOptions, NonSemanticAwareSpillsPartialsToGlobal) {
  const Operands o = sample_operands(4);
  ApmmOptions sem, nonsem;
  nonsem.semantic_aware = false;
  const ApmmResult rs = apmm(o.w, o.x, dev(), sem);
  const ApmmResult rn = apmm(o.w, o.x, dev(), nonsem);
  EXPECT_EQ(rs.y, rn.y);
  EXPECT_EQ(rn.profile.kernels.size(), 2u);  // main + combine
  EXPECT_GT(rn.profile.total_counters().global_store_bytes,
            rs.profile.total_counters().global_store_bytes);
}

TEST(ApmmOptions, ProfileOnlyMatchesFullCounters) {
  const Operands o = sample_operands(5, 70, 140, 384, 2, 3);
  ApmmOptions full, prof;
  prof.mode = ExecMode::kProfileOnly;
  for (bool sem : {true, false}) {
    full.semantic_aware = sem;
    prof.semantic_aware = sem;
    const ApmmResult rf = apmm(o.w, o.x, dev(), full);
    const ApmmResult rp = apmm(o.w, o.x, dev(), prof);
    EXPECT_EQ(rp.y.numel(), 0);
    ASSERT_EQ(rf.profile.kernels.size(), rp.profile.kernels.size());
    const auto cf = rf.profile.total_counters();
    const auto cp = rp.profile.total_counters();
    EXPECT_EQ(cf.total_global_bytes(), cp.total_global_bytes());
    EXPECT_EQ(cf.total_shared_bytes(), cp.total_shared_bytes());
    EXPECT_EQ(cf.bmma_b1, cp.bmma_b1);
    EXPECT_EQ(cf.total_alu_ops(), cp.total_alu_ops());
  }
}

TEST(ApmmOptions, FixedTileOverridesAutotune) {
  const Operands o = sample_operands(6);
  ApmmOptions opts;
  opts.autotune = false;
  opts.tile.bm = 32;
  opts.tile.bn = 32;
  const ApmmResult r = apmm(o.w, o.x, dev(), opts);
  EXPECT_EQ(r.tile.bm, 32);
  EXPECT_EQ(r.tile.bn, 32);
  EXPECT_EQ(r.y, naive_gemm(o.wl, o.xl));
}

TEST(Apmm, BmmaCountMatchesEmulationCost) {
  // p*q planes: the bmma issue count must scale with p*q (the paper's
  // "w2a8 needs 16 1-bit matrices" arithmetic, §6.2).
  const Operands o12 = sample_operands(7, 64, 64, 512, 1, 2);
  const Operands o28 = sample_operands(8, 64, 64, 512, 2, 8);
  ApmmOptions opts;
  opts.autotune = false;  // same tile so the grids are comparable
  opts.tile.bm = 32;
  opts.tile.bn = 32;
  const auto c12 = apmm(o12.w, o12.x, dev(), opts).profile.total_counters();
  const auto c28 = apmm(o28.w, o28.x, dev(), opts).profile.total_counters();
  EXPECT_NEAR(static_cast<double>(c28.bmma_b1) / c12.bmma_b1, 8.0, 0.2);
}

// --- fused epilogue -------------------------------------------------------------

TEST(ApmmEpilogue, ReluClampsNegative) {
  const Operands o = sample_operands(9, 32, 32, 128, 1, 2);
  Epilogue epi;
  epi.has_relu = true;
  const ApmmResult r = apmm(o.w, o.x, dev(), {}, epi);
  const Tensor<std::int32_t> ref = naive_gemm(o.wl, o.xl);
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    EXPECT_EQ(r.y[i], std::max(ref[i], 0));
  }
}

TEST(ApmmEpilogue, BatchNormAppliesPerChannel) {
  const Operands o = sample_operands(10, 16, 24, 128, 1, 2);
  Epilogue epi;
  epi.has_bn = true;
  epi.bn.scale.assign(16, 2.0f);
  epi.bn.bias.assign(16, 10.0f);
  epi.bn.scale[3] = -1.0f;
  const ApmmResult r = apmm(o.w, o.x, dev(), {}, epi);
  const Tensor<std::int32_t> ref = naive_gemm(o.wl, o.xl);
  for (std::int64_t m = 0; m < 16; ++m) {
    for (std::int64_t n = 0; n < 24; ++n) {
      const float scale = m == 3 ? -1.f : 2.f;
      EXPECT_EQ(r.y(m, n),
                static_cast<std::int32_t>(ref(m, n) * scale + 10.f));
    }
  }
}

TEST(ApmmEpilogue, QuantizedOutputPacksTransposed) {
  const Operands o = sample_operands(11, 20, 30, 256, 1, 2);
  Epilogue epi;
  epi.has_relu = true;
  epi.has_quant = true;
  epi.quant.bits = 2;
  epi.quant.scale = 16.0;
  epi.quant.zero_point = 0.0;
  const ApmmResult r = apmm(o.w, o.x, dev(), {}, epi);
  EXPECT_EQ(r.y.numel(), 0);
  EXPECT_EQ(r.packed.rows, 30);  // N x M, ready for the next layer
  EXPECT_EQ(r.packed.cols, 20);
  EXPECT_EQ(r.packed.bits, 2);
  const Tensor<std::int32_t> ref = naive_gemm(o.wl, o.xl);
  const std::vector<std::int32_t> codes = bitops::recompose(r.packed);
  for (std::int64_t m = 0; m < 20; ++m) {
    for (std::int64_t n = 0; n < 30; ++n) {
      const std::int32_t expect = quant::quantize_value(
          static_cast<float>(std::max(ref(m, n), 0)), epi.quant);
      EXPECT_EQ(codes[static_cast<std::size_t>(n * 20 + m)], expect)
          << m << "," << n;
    }
  }
}

TEST(ApmmEpilogue, PackedOutputSmallerThanInt32Store) {
  const Operands o = sample_operands(12, 64, 256, 256, 1, 2);
  Epilogue quant_epi;
  quant_epi.has_quant = true;
  quant_epi.quant.bits = 2;
  quant_epi.quant.scale = 64;
  const auto c32 = apmm(o.w, o.x, dev(), {}).profile.total_counters();
  const auto cq =
      apmm(o.w, o.x, dev(), {}, quant_epi).profile.total_counters();
  // Minimal-traffic dataflow: 2-bit stores are 16x smaller than 32-bit.
  EXPECT_LT(cq.global_store_bytes, c32.global_store_bytes / 8);
}

// --- cost-model integration -----------------------------------------------------

TEST(ApmmCost, BatchingImprovesModeledLatencyOnSmallGemm) {
  // The §4.1a claim: batching many small BMMAs into one launch beats
  // independent launches (launch overhead + utilization).
  const Operands o = sample_operands(13, 64, 256, 256, 2, 2);
  ApmmOptions batched, naive;
  naive.batch_planes = false;
  const tcsim::CostModel cm(dev());
  const double tb = cm.estimate(apmm(o.w, o.x, dev(), batched).profile).total_us;
  const double tn = cm.estimate(apmm(o.w, o.x, dev(), naive).profile).total_us;
  EXPECT_LT(tb, tn);
}

TEST(ApmmCost, SemanticAwareCombinationFasterThanSeparateKernel) {
  const Operands o = sample_operands(14, 64, 512, 512, 1, 2);
  ApmmOptions sem, nonsem;
  nonsem.semantic_aware = false;
  const tcsim::CostModel cm(dev());
  const double ts = cm.estimate(apmm(o.w, o.x, dev(), sem).profile).total_us;
  const double tn =
      cm.estimate(apmm(o.w, o.x, dev(), nonsem).profile).total_us;
  EXPECT_LT(ts, tn);
}

TEST(DecomposeProfile, ScalesWithBits) {
  const auto p2 = decompose_profile(1024, 256, 2, 1.0);
  const auto p8 = decompose_profile(1024, 256, 8, 1.0);
  EXPECT_EQ(p8.counters.global_store_bytes, 4 * p2.counters.global_store_bytes);
  EXPECT_EQ(p8.counters.alu_decompose_ops, 4 * p2.counters.alu_decompose_ops);
  EXPECT_EQ(p2.counters.global_load_bytes, 1024 * 256);
}

}  // namespace
}  // namespace apnn::core

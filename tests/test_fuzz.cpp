// Randomized differential testing: many seeded random problem instances
// (shapes, bit widths, encodings, kernel options) run through the
// production kernels and compared against the naive integer references.
// Any mismatch prints the seed for exact reproduction.
#include <gtest/gtest.h>

#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"
#include "test_util.hpp"

namespace apnn {
namespace {

using core::ApconvOptions;
using core::ApmmOptions;
using core::ApOperand;
using core::Encoding;
using testing::naive_gemm;
using testing::random_logical;

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

/// Draws a random encoding pair the kernels support.
core::EncodingConfig random_encodings(Rng& rng, int* p, int* q) {
  switch (rng.uniform_int(0, 3)) {
    case 0:  // Case I
      *p = static_cast<int>(rng.uniform_int(1, 5));
      *q = static_cast<int>(rng.uniform_int(1, 5));
      return {Encoding::kUnsigned01, Encoding::kUnsigned01};
    case 1:  // Case II
      *p = 1;
      *q = 1;
      return {Encoding::kSignedPM1, Encoding::kSignedPM1};
    case 2:  // Case III
      *p = 1;
      *q = static_cast<int>(rng.uniform_int(1, 8));
      return {Encoding::kSignedPM1, Encoding::kUnsigned01};
    default:  // two's complement extension
      *p = static_cast<int>(rng.uniform_int(2, 4));
      *q = static_cast<int>(rng.uniform_int(1, 4));
      return {Encoding::kTwosComplement, Encoding::kUnsigned01};
  }
}

ApmmOptions random_apmm_options(Rng& rng) {
  ApmmOptions o;
  o.batch_planes = rng.bernoulli(0.8);
  o.double_caching = rng.bernoulli(0.8);
  o.fragment_caching = rng.bernoulli(0.8);
  o.semantic_aware = rng.bernoulli(0.8);
  if (rng.bernoulli(0.3)) {
    o.autotune = false;
    static constexpr int kSizes[] = {16, 32, 64, 128};
    o.tile.bm = kSizes[rng.uniform_int(0, 3)];
    o.tile.bn = kSizes[rng.uniform_int(0, 3)];
  }
  return o;
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, ApmmMatchesNaiveGemm) {
  Rng rng(GetParam());
  int p = 1, q = 1;
  const core::EncodingConfig enc = random_encodings(rng, &p, &q);
  const std::int64_t m = rng.uniform_int(1, 96);
  const std::int64_t n = rng.uniform_int(1, 96);
  const std::int64_t k = rng.uniform_int(1, 384);
  const auto wl = random_logical(rng, m, k, enc.w, p);
  const auto xl = random_logical(rng, n, k, enc.x, q);
  const ApOperand w = core::make_operand(wl, enc.w, p);
  const ApOperand x = core::make_operand(xl, enc.x, q);
  const ApmmOptions opts = random_apmm_options(rng);
  const core::ApmmResult r = core::apmm(w, x, dev(), opts);
  ASSERT_EQ(r.y, naive_gemm(wl, xl))
      << "seed " << GetParam() << " m=" << m << " n=" << n << " k=" << k
      << " p=" << p << " q=" << q;
}

TEST_P(FuzzSeed, ApconvMatchesDirectConvolution) {
  Rng rng(GetParam() ^ 0xc0ffee);
  int p = 1, q = 1;
  const core::EncodingConfig enc = random_encodings(rng, &p, &q);
  layout::ConvGeometry g;
  g.batch = rng.uniform_int(1, 2);
  g.in_c = rng.uniform_int(1, 12);
  g.in_h = rng.uniform_int(4, 10);
  g.in_w = rng.uniform_int(4, 10);
  g.out_c = rng.uniform_int(1, 10);
  g.kernel = static_cast<int>(rng.uniform_int(0, 1)) * 2 + 1;  // 1 or 3
  g.stride = static_cast<int>(rng.uniform_int(1, 2));
  g.pad = static_cast<int>(rng.uniform_int(0, g.kernel / 2));
  if (g.out_h() <= 0 || g.out_w() <= 0) GTEST_SKIP();

  // Logical activations and weights.
  Tensor<std::int32_t> x_logical({g.batch, g.in_h, g.in_w, g.in_c});
  Tensor<std::int32_t> codes(x_logical.shape());
  const core::ValueRange xr = core::encoding_range(enc.x, q);
  for (std::int64_t i = 0; i < x_logical.numel(); ++i) {
    if (enc.x == Encoding::kSignedPM1) {
      x_logical[i] = rng.bernoulli(0.5) ? 1 : -1;
    } else {
      x_logical[i] = static_cast<std::int32_t>(rng.uniform_int(xr.lo, xr.hi));
    }
    codes[i] = core::encode_value(enc.x, q, x_logical[i]);
  }
  Tensor<std::int32_t> w_ohwi({g.out_c, g.kernel, g.kernel, g.in_c});
  const core::ValueRange wr = core::encoding_range(enc.w, p);
  for (std::int64_t i = 0; i < w_ohwi.numel(); ++i) {
    w_ohwi[i] = enc.w == Encoding::kSignedPM1
                    ? (rng.bernoulli(0.5) ? 1 : -1)
                    : static_cast<std::int32_t>(rng.uniform_int(wr.lo, wr.hi));
  }

  const ApOperand w = core::make_conv_weights(w_ohwi, enc.w, p);
  const auto x =
      layout::pack_activations(codes, layout::DenseLayout::kNHWC, q);
  ApconvOptions opts;
  opts.double_caching = rng.bernoulli(0.8);
  opts.semantic_aware = rng.bernoulli(0.8);
  const core::ApconvResult r = core::apconv(w, x, enc.x, g, dev(), opts);
  ASSERT_EQ(r.y, core::conv2d_reference(x_logical, w_ohwi, g))
      << "seed " << GetParam() << " cin=" << g.in_c << " cout=" << g.out_c
      << " hw=" << g.in_h << "x" << g.in_w << " k=" << g.kernel << " s="
      << g.stride << " pad=" << g.pad << " p=" << p << " q=" << q;
}

TEST_P(FuzzSeed, PackedOutputRoundTripsThroughNextLayer) {
  // Chain two APMM layers through the packed minimal-traffic interface and
  // check against the dense integer pipeline.
  Rng rng(GetParam() ^ 0xfeedface);
  const int q = static_cast<int>(rng.uniform_int(1, 4));
  const std::int64_t batch = rng.uniform_int(1, 16);
  const std::int64_t f0 = rng.uniform_int(1, 64);
  const std::int64_t f1 = rng.uniform_int(1, 64);
  const std::int64_t f2 = rng.uniform_int(1, 32);

  const auto w1l = random_logical(rng, f1, f0, Encoding::kSignedPM1, 1);
  const auto w2l = random_logical(rng, f2, f1, Encoding::kSignedPM1, 1);
  const auto xl = random_logical(rng, batch, f0, Encoding::kUnsigned01, q);
  const ApOperand w1 = core::make_operand(w1l, Encoding::kSignedPM1, 1);
  const ApOperand w2 = core::make_operand(w2l, Encoding::kSignedPM1, 1);
  const ApOperand x0 = core::make_operand(xl, Encoding::kUnsigned01, q);

  core::Epilogue epi;
  epi.has_relu = true;
  epi.has_quant = true;
  epi.quant.bits = q;
  epi.quant.scale = std::max<std::int64_t>(1, f0);  // keep codes in range

  // Kernel path: layer1 emits packed planes consumed directly by layer2.
  const core::ApmmResult r1 = core::apmm(w1, x0, dev(), {}, epi);
  ApOperand x1;
  x1.planes = r1.packed;
  x1.encoding = Encoding::kUnsigned01;
  const core::ApmmResult r2 = core::apmm(w2, x1, dev());

  // Dense path.
  const Tensor<std::int32_t> y1 = naive_gemm(w1l, xl);
  Tensor<std::int32_t> codes({batch, f1});
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t o = 0; o < f1; ++o) {
      codes(b, o) = quant::quantize_value(
          static_cast<float>(std::max(y1(o, b), 0)), epi.quant);
    }
  }
  ASSERT_EQ(r2.y, naive_gemm(w2l, codes)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Range<std::uint64_t>(1, 33));

// --- fused conv differential fuzzer ----------------------------------------
//
// Each seed draws one random conv problem across the full bit-width space
// (w/a bits in 1..8), random geometry (kernel/stride/pad, non-aligned
// shapes), random fused tail (BN / ReLU / pooling / quantization), and
// asserts a three-way agreement:
//   fused im2col-free apconv == dense im2col patch-GEMM == direct conv,
// plus, when the tail quantizes, that the packed channel-major output feeds
// a second conv layer with results identical to the dense pipeline.

/// Encoding pair with conv-relevant bit widths up to 8.
core::EncodingConfig conv_encodings(Rng& rng, int* p, int* q) {
  switch (rng.uniform_int(0, 3)) {
    case 0:  // Case I
      *p = static_cast<int>(rng.uniform_int(1, 8));
      *q = static_cast<int>(rng.uniform_int(1, 8));
      return {Encoding::kUnsigned01, Encoding::kUnsigned01};
    case 1:  // Case II
      *p = 1;
      *q = 1;
      return {Encoding::kSignedPM1, Encoding::kSignedPM1};
    case 2:  // Case III
      *p = 1;
      *q = static_cast<int>(rng.uniform_int(1, 8));
      return {Encoding::kSignedPM1, Encoding::kUnsigned01};
    default:  // two's complement extension
      *p = static_cast<int>(rng.uniform_int(2, 8));
      *q = static_cast<int>(rng.uniform_int(1, 8));
      return {Encoding::kTwosComplement, Encoding::kUnsigned01};
  }
}

using testing::conv_via_im2col_dense;

class ConvFuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvFuzzSeed, FusedConvMatchesIm2colAndDensePipelines) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 0xabcdef);
  int p = 1, q = 1;
  const core::EncodingConfig enc = conv_encodings(rng, &p, &q);
  layout::ConvGeometry g;
  g.batch = rng.uniform_int(1, 2);
  g.in_c = rng.uniform_int(1, 10);
  g.in_h = rng.uniform_int(4, 9);
  g.in_w = rng.uniform_int(4, 9);
  g.out_c = rng.uniform_int(1, 8);
  g.kernel = static_cast<int>(rng.uniform_int(0, 1)) * 2 + 1;  // 1 or 3
  g.stride = static_cast<int>(rng.uniform_int(1, 2));
  g.pad = static_cast<int>(rng.uniform_int(0, g.kernel / 2));
  if (g.out_h() <= 0 || g.out_w() <= 0) GTEST_SKIP();
  const std::int64_t oh = g.out_h(), ow = g.out_w();

  // Random fused tail.
  core::PoolSpec pool;
  if (oh % 2 == 0 && ow % 2 == 0 && rng.bernoulli(0.5)) {
    pool.kind = rng.bernoulli(0.5) ? core::PoolSpec::Kind::kMax
                                   : core::PoolSpec::Kind::kAvg;
    pool.size = 2;
  }
  core::Epilogue epi;
  if (rng.bernoulli(0.4)) {
    epi.has_bn = true;
    epi.bn.scale.resize(static_cast<std::size_t>(g.out_c));
    epi.bn.bias.resize(static_cast<std::size_t>(g.out_c));
    for (std::int64_t c = 0; c < g.out_c; ++c) {
      epi.bn.scale[static_cast<std::size_t>(c)] =
          static_cast<float>(rng.uniform(0.25, 2.0));
      epi.bn.bias[static_cast<std::size_t>(c)] =
          static_cast<float>(rng.uniform(-8.0, 8.0));
    }
  }
  epi.has_relu = rng.bernoulli(0.4);
  const bool quantize = rng.bernoulli(0.5);
  if (quantize) {
    epi.has_quant = true;
    epi.quant.bits = static_cast<int>(rng.uniform_int(1, 4));
    epi.quant.scale = std::max<double>(
        1.0, static_cast<double>(g.gemm_k()) * ((1 << q) - 1) /
                 ((1 << epi.quant.bits) - 1) / 4.0);
    epi.quant.zero_point = 0.0;
  }

  // Logical operands + packed/decomposed forms.
  Tensor<std::int32_t> x_logical({g.batch, g.in_h, g.in_w, g.in_c});
  Tensor<std::int32_t> codes(x_logical.shape());
  const core::ValueRange xr = core::encoding_range(enc.x, q);
  for (std::int64_t i = 0; i < x_logical.numel(); ++i) {
    x_logical[i] = enc.x == Encoding::kSignedPM1
                       ? (rng.bernoulli(0.5) ? 1 : -1)
                       : static_cast<std::int32_t>(
                             rng.uniform_int(xr.lo, xr.hi));
    codes[i] = core::encode_value(enc.x, q, x_logical[i]);
  }
  Tensor<std::int32_t> w_ohwi({g.out_c, g.kernel, g.kernel, g.in_c});
  const core::ValueRange wr = core::encoding_range(enc.w, p);
  for (std::int64_t i = 0; i < w_ohwi.numel(); ++i) {
    w_ohwi[i] = enc.w == Encoding::kSignedPM1
                    ? (rng.bernoulli(0.5) ? 1 : -1)
                    : static_cast<std::int32_t>(
                          rng.uniform_int(wr.lo, wr.hi));
  }
  const ApOperand w = core::make_conv_weights(w_ohwi, enc.w, p);
  const auto x =
      layout::pack_activations(codes, layout::DenseLayout::kNHWC, q);

  // Dense reference pipeline (direct conv), cross-checked against the
  // materialized im2col lowering.
  Tensor<std::int32_t> ref = core::conv2d_reference(x_logical, w_ohwi, g);
  ASSERT_EQ(conv_via_im2col_dense(x_logical, w_ohwi, g), ref)
      << "im2col lowering diverged, seed " << GetParam();
  if (epi.has_bn || epi.has_relu) {
    core::Epilogue pre = epi;
    pre.has_quant = false;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ref[i] = pre.apply(ref[i], i % g.out_c);
    }
  }
  std::int64_t ph = oh, pw = ow;
  if (pool.active()) {
    ph = oh / 2;
    pw = ow / 2;
    Tensor<std::int32_t> pooled({g.batch, ph, pw, g.out_c});
    for (std::int64_t n = 0; n < g.batch; ++n) {
      for (std::int64_t py = 0; py < ph; ++py) {
        for (std::int64_t px = 0; px < pw; ++px) {
          for (std::int64_t c = 0; c < g.out_c; ++c) {
            std::int64_t agg =
                pool.kind == core::PoolSpec::Kind::kMax ? INT64_MIN : 0;
            for (int dy = 0; dy < 2; ++dy) {
              for (int dx = 0; dx < 2; ++dx) {
                const std::int32_t v = ref(n, py * 2 + dy, px * 2 + dx, c);
                if (pool.kind == core::PoolSpec::Kind::kMax) {
                  agg = std::max<std::int64_t>(agg, v);
                } else {
                  agg += v;
                }
              }
            }
            if (pool.kind == core::PoolSpec::Kind::kAvg) agg /= 4;
            pooled(n, py, px, c) = static_cast<std::int32_t>(agg);
          }
        }
      }
    }
    ref = pooled;
  }

  const core::ApconvResult r = core::apconv(w, x, enc.x, g, dev(), {}, epi,
                                            pool);
  const std::string ctx = "seed " + std::to_string(GetParam());
  if (!quantize) {
    ASSERT_EQ(r.y, ref) << ctx;
    return;
  }

  // Quantized tail: codes must match the dense pipeline...
  Tensor<std::int32_t> ref_codes = ref;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    ref_codes[i] =
        quant::quantize_value(static_cast<float>(ref[i]), epi.quant);
  }
  ASSERT_EQ(layout::unpack_activations(r.packed), ref_codes) << ctx;

  // ...and the packed output must repack correctly for the next layer:
  // run a 1x1 conv over it and over the dense codes and compare.
  layout::ConvGeometry g2;
  g2.batch = g.batch;
  g2.in_c = g.out_c;
  g2.in_h = ph;
  g2.in_w = pw;
  g2.out_c = 3;
  g2.kernel = 1;
  g2.stride = 1;
  g2.pad = 0;
  Tensor<std::int32_t> w2({g2.out_c, 1, 1, g2.in_c});
  for (std::int64_t i = 0; i < w2.numel(); ++i) {
    w2[i] = rng.bernoulli(0.5) ? 1 : -1;
  }
  const ApOperand w2op =
      core::make_conv_weights(w2, Encoding::kSignedPM1, 1);
  const core::ApconvResult r2 = core::apconv(
      w2op, r.packed, Encoding::kUnsigned01, g2, dev());
  ASSERT_EQ(r2.y, core::conv2d_reference(ref_codes, w2, g2)) << ctx;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvFuzzSeed,
                         ::testing::Range<std::uint64_t>(1, 201));

// --- sparsity-stratified differential fuzzer -------------------------------
//
// The microkernel's data-sparsity fast paths (occupancy-map staging,
// skip-zero kernels, bit-plane elision) are gated by
// MicroConfig::sparse_staging and must be bit-exact at every setting. Each
// case below shapes activations into a specific sparsity stratum — fully
// zero inputs, all-zero bit planes, word-aligned zero runs straddling
// k-strip boundaries, realistic ReLU-fed packed sparsity — and asserts that
// kOff (dense baseline), kAuto, and kOn all reproduce the naive integer
// reference exactly.

using Sparse = core::microkernel::MicroConfig::Sparse;

constexpr Sparse kSparseModes[] = {Sparse::kOff, Sparse::kAuto, Sparse::kOn};

const char* sparse_name(Sparse s) {
  switch (s) {
    case Sparse::kAuto: return "kAuto";
    case Sparse::kOn: return "kOn";
    default: return "kOff";
  }
}

class SparsityFuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparsityFuzzSeed, StratifiedSparseApmmMatchesNaiveInEveryMode) {
  Rng rng(GetParam() * 0x2545f4914f6cdd1dULL + 0x5eed);
  int p = 1, q = 1;
  const core::EncodingConfig enc = random_encodings(rng, &p, &q);
  const std::int64_t m = rng.uniform_int(1, 80);
  const std::int64_t n = rng.uniform_int(1, 80);
  // K large enough that a zero run can span several 64-bit plane words and
  // straddle at least one k-strip boundary (kStripWords * 64 logical cols).
  const std::int64_t k = rng.uniform_int(1536, 4608);
  const auto wl = random_logical(rng, m, k, enc.w, p);
  auto xl = random_logical(rng, n, k, enc.x, q);

  // Carve the stratum into the activation rows. ±1 features have no zero
  // code (their planes never produce zero words from zero *values*), so
  // those seeds exercise the sparse kernels' dense fallback instead.
  const int stratum = static_cast<int>(rng.uniform_int(0, 2));
  if (enc.x != Encoding::kSignedPM1) {
    for (std::int64_t j = 0; j < n; ++j) {
      switch (stratum) {
        case 0:  // a random subset of rows fully zero
          if (rng.bernoulli(0.5)) {
            for (std::int64_t kk = 0; kk < k; ++kk) xl(j, kk) = 0;
          }
          break;
        case 1: {  // alternating zero / dense word-aligned runs whose length
                   // is not a strip divisor, so runs straddle strips
          const std::int64_t run = 64 * rng.uniform_int(3, 40);
          const std::int64_t phase = 64 * rng.uniform_int(0, 40);
          for (std::int64_t kk = 0; kk < k; ++kk) {
            if (((kk + phase) / run) % 2 == 0) xl(j, kk) = 0;
          }
          break;
        }
        default:  // high bit planes all zero (plane-elision stratum)
          for (std::int64_t kk = 0; kk < k; ++kk) xl(j, kk) &= 1;
          break;
      }
    }
  }

  const ApOperand w = core::make_operand(wl, enc.w, p);
  const ApOperand x = core::make_operand(xl, enc.x, q);
  const Tensor<std::int32_t> ref = naive_gemm(wl, xl);
  for (const Sparse mode : kSparseModes) {
    ApmmOptions o;
    o.micro.sparse_staging = mode;
    o.collect_profile = false;
    const core::ApmmResult r = core::apmm(w, x, dev(), o);
    ASSERT_EQ(r.y, ref)
        << "seed " << GetParam() << " mode " << sparse_name(mode)
        << " stratum " << stratum << " m=" << m << " n=" << n << " k=" << k
        << " p=" << p << " q=" << q;
  }
}

TEST(SparsityEdge, FullyZeroOperandsMatchInEveryMode) {
  // Fully-zero activations — and, for Case I, fully-zero weights too —
  // drive every strip through the skip path and elide every eligible
  // plane. The reference is trivially the zero matrix; the point is that
  // the sparse kernels and plane elision agree with it bit-exactly.
  struct Cfg {
    Encoding we, xe;
    int p, q;
    bool zero_w;
  };
  const Cfg cfgs[] = {
      {Encoding::kUnsigned01, Encoding::kUnsigned01, 2, 2, false},
      {Encoding::kUnsigned01, Encoding::kUnsigned01, 3, 2, true},
      {Encoding::kSignedPM1, Encoding::kUnsigned01, 1, 2, false},
      {Encoding::kTwosComplement, Encoding::kUnsigned01, 2, 3, false},
  };
  Rng rng(0xdead5eed);
  for (const Cfg& c : cfgs) {
    const std::int64_t m = 33, n = 29, k = 2500;
    auto wl = random_logical(rng, m, k, c.we, c.p);
    if (c.zero_w) {
      for (std::int64_t i = 0; i < wl.numel(); ++i) wl[i] = 0;
    }
    Tensor<std::int32_t> xl({n, k});
    for (std::int64_t i = 0; i < xl.numel(); ++i) xl[i] = 0;
    const ApOperand w = core::make_operand(wl, c.we, c.p);
    const ApOperand x = core::make_operand(xl, c.xe, c.q);
    const Tensor<std::int32_t> ref = naive_gemm(wl, xl);
    for (const Sparse mode : kSparseModes) {
      ApmmOptions o;
      o.micro.sparse_staging = mode;
      o.collect_profile = false;
      const core::ApmmResult r = core::apmm(w, x, dev(), o);
      ASSERT_EQ(r.y, ref) << "p=" << c.p << " q=" << c.q << " zero_w="
                          << c.zero_w << " mode " << sparse_name(mode);
    }
  }
}

TEST_P(SparsityFuzzSeed, ReluFedSecondConvLayerMatchesAcrossModes) {
  // First conv layer with a fused ReLU + quantize tail emits packed
  // channel-major activations whose sparsity is the realistic one (zero
  // runs where ReLU clipped whole regions); the second layer consumes them
  // under each sparse mode and must match the dense integer pipeline.
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 0x0d1f);
  layout::ConvGeometry g;
  g.batch = rng.uniform_int(1, 2);
  g.in_c = rng.uniform_int(4, 16);
  g.in_h = rng.uniform_int(6, 12);
  g.in_w = rng.uniform_int(6, 12);
  g.out_c = rng.uniform_int(8, 24);
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;

  const int q = 2;
  Tensor<std::int32_t> x_logical({g.batch, g.in_h, g.in_w, g.in_c});
  Tensor<std::int32_t> codes(x_logical.shape());
  for (std::int64_t i = 0; i < x_logical.numel(); ++i) {
    x_logical[i] = static_cast<std::int32_t>(rng.uniform_int(0, 3));
    codes[i] = core::encode_value(Encoding::kUnsigned01, q, x_logical[i]);
  }
  Tensor<std::int32_t> w1({g.out_c, g.kernel, g.kernel, g.in_c});
  for (std::int64_t i = 0; i < w1.numel(); ++i) {
    w1[i] = rng.bernoulli(0.5) ? 1 : -1;
  }
  const ApOperand w1op = core::make_conv_weights(w1, Encoding::kSignedPM1, 1);
  const auto x = layout::pack_activations(codes, layout::DenseLayout::kNHWC, q);

  // BN with a strongly negative bias so ReLU zeroes a large share of the
  // map, then quantize back to q bits: realistic second-layer sparsity.
  core::Epilogue epi;
  epi.has_bn = true;
  epi.bn.scale.assign(static_cast<std::size_t>(g.out_c), 1.0f);
  epi.bn.bias.assign(static_cast<std::size_t>(g.out_c), 0.0f);
  for (std::int64_t c = 0; c < g.out_c; ++c) {
    epi.bn.bias[static_cast<std::size_t>(c)] =
        static_cast<float>(rng.uniform(-24.0, 4.0));
  }
  epi.has_relu = true;
  epi.has_quant = true;
  epi.quant.bits = q;
  epi.quant.scale = std::max<double>(
      1.0, static_cast<double>(g.gemm_k()) * 3.0 / ((1 << q) - 1) / 4.0);

  const core::ApconvResult r1 =
      core::apconv(w1op, x, Encoding::kUnsigned01, g, dev(), {}, epi);

  // Dense reference for layer 1's quantized codes.
  Tensor<std::int32_t> ref = core::conv2d_reference(x_logical, w1, g);
  core::Epilogue pre = epi;
  pre.has_quant = false;
  Tensor<std::int32_t> ref_codes = ref;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    ref_codes[i] = quant::quantize_value(
        static_cast<float>(pre.apply(ref[i], i % g.out_c)), epi.quant);
  }
  ASSERT_EQ(layout::unpack_activations(r1.packed), ref_codes)
      << "layer-1 seed " << GetParam();

  layout::ConvGeometry g2;
  g2.batch = g.batch;
  g2.in_c = g.out_c;
  g2.in_h = g.out_h();
  g2.in_w = g.out_w();
  g2.out_c = rng.uniform_int(4, 12);
  g2.kernel = 3;
  g2.stride = 1;
  g2.pad = 1;
  Tensor<std::int32_t> w2({g2.out_c, g2.kernel, g2.kernel, g2.in_c});
  for (std::int64_t i = 0; i < w2.numel(); ++i) {
    w2[i] = rng.bernoulli(0.5) ? 1 : -1;
  }
  const ApOperand w2op = core::make_conv_weights(w2, Encoding::kSignedPM1, 1);
  const Tensor<std::int32_t> ref2 =
      core::conv2d_reference(ref_codes, w2, g2);
  for (const Sparse mode : kSparseModes) {
    ApconvOptions o2;
    o2.micro.sparse_staging = mode;
    o2.collect_profile = false;
    const core::ApconvResult r2 = core::apconv(
        w2op, r1.packed, Encoding::kUnsigned01, g2, dev(), o2);
    ASSERT_EQ(r2.y, ref2)
        << "seed " << GetParam() << " mode " << sparse_name(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Strata, SparsityFuzzSeed,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace apnn

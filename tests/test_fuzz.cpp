// Randomized differential testing: many seeded random problem instances
// (shapes, bit widths, encodings, kernel options) run through the
// production kernels and compared against the naive integer references.
// Any mismatch prints the seed for exact reproduction.
#include <gtest/gtest.h>

#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"
#include "test_util.hpp"

namespace apnn {
namespace {

using core::ApconvOptions;
using core::ApmmOptions;
using core::ApOperand;
using core::Encoding;
using testing::naive_gemm;
using testing::random_logical;

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

/// Draws a random encoding pair the kernels support.
core::EncodingConfig random_encodings(Rng& rng, int* p, int* q) {
  switch (rng.uniform_int(0, 3)) {
    case 0:  // Case I
      *p = static_cast<int>(rng.uniform_int(1, 5));
      *q = static_cast<int>(rng.uniform_int(1, 5));
      return {Encoding::kUnsigned01, Encoding::kUnsigned01};
    case 1:  // Case II
      *p = 1;
      *q = 1;
      return {Encoding::kSignedPM1, Encoding::kSignedPM1};
    case 2:  // Case III
      *p = 1;
      *q = static_cast<int>(rng.uniform_int(1, 8));
      return {Encoding::kSignedPM1, Encoding::kUnsigned01};
    default:  // two's complement extension
      *p = static_cast<int>(rng.uniform_int(2, 4));
      *q = static_cast<int>(rng.uniform_int(1, 4));
      return {Encoding::kTwosComplement, Encoding::kUnsigned01};
  }
}

ApmmOptions random_apmm_options(Rng& rng) {
  ApmmOptions o;
  o.batch_planes = rng.bernoulli(0.8);
  o.double_caching = rng.bernoulli(0.8);
  o.fragment_caching = rng.bernoulli(0.8);
  o.semantic_aware = rng.bernoulli(0.8);
  if (rng.bernoulli(0.3)) {
    o.autotune = false;
    static constexpr int kSizes[] = {16, 32, 64, 128};
    o.tile.bm = kSizes[rng.uniform_int(0, 3)];
    o.tile.bn = kSizes[rng.uniform_int(0, 3)];
  }
  return o;
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, ApmmMatchesNaiveGemm) {
  Rng rng(GetParam());
  int p = 1, q = 1;
  const core::EncodingConfig enc = random_encodings(rng, &p, &q);
  const std::int64_t m = rng.uniform_int(1, 96);
  const std::int64_t n = rng.uniform_int(1, 96);
  const std::int64_t k = rng.uniform_int(1, 384);
  const auto wl = random_logical(rng, m, k, enc.w, p);
  const auto xl = random_logical(rng, n, k, enc.x, q);
  const ApOperand w = core::make_operand(wl, enc.w, p);
  const ApOperand x = core::make_operand(xl, enc.x, q);
  const ApmmOptions opts = random_apmm_options(rng);
  const core::ApmmResult r = core::apmm(w, x, dev(), opts);
  ASSERT_EQ(r.y, naive_gemm(wl, xl))
      << "seed " << GetParam() << " m=" << m << " n=" << n << " k=" << k
      << " p=" << p << " q=" << q;
}

TEST_P(FuzzSeed, ApconvMatchesDirectConvolution) {
  Rng rng(GetParam() ^ 0xc0ffee);
  int p = 1, q = 1;
  const core::EncodingConfig enc = random_encodings(rng, &p, &q);
  layout::ConvGeometry g;
  g.batch = rng.uniform_int(1, 2);
  g.in_c = rng.uniform_int(1, 12);
  g.in_h = rng.uniform_int(4, 10);
  g.in_w = rng.uniform_int(4, 10);
  g.out_c = rng.uniform_int(1, 10);
  g.kernel = static_cast<int>(rng.uniform_int(0, 1)) * 2 + 1;  // 1 or 3
  g.stride = static_cast<int>(rng.uniform_int(1, 2));
  g.pad = static_cast<int>(rng.uniform_int(0, g.kernel / 2));
  if (g.out_h() <= 0 || g.out_w() <= 0) GTEST_SKIP();

  // Logical activations and weights.
  Tensor<std::int32_t> x_logical({g.batch, g.in_h, g.in_w, g.in_c});
  Tensor<std::int32_t> codes(x_logical.shape());
  const core::ValueRange xr = core::encoding_range(enc.x, q);
  for (std::int64_t i = 0; i < x_logical.numel(); ++i) {
    if (enc.x == Encoding::kSignedPM1) {
      x_logical[i] = rng.bernoulli(0.5) ? 1 : -1;
    } else {
      x_logical[i] = static_cast<std::int32_t>(rng.uniform_int(xr.lo, xr.hi));
    }
    codes[i] = core::encode_value(enc.x, q, x_logical[i]);
  }
  Tensor<std::int32_t> w_ohwi({g.out_c, g.kernel, g.kernel, g.in_c});
  const core::ValueRange wr = core::encoding_range(enc.w, p);
  for (std::int64_t i = 0; i < w_ohwi.numel(); ++i) {
    w_ohwi[i] = enc.w == Encoding::kSignedPM1
                    ? (rng.bernoulli(0.5) ? 1 : -1)
                    : static_cast<std::int32_t>(rng.uniform_int(wr.lo, wr.hi));
  }

  const ApOperand w = core::make_conv_weights(w_ohwi, enc.w, p);
  const auto x =
      layout::pack_activations(codes, layout::DenseLayout::kNHWC, q);
  ApconvOptions opts;
  opts.double_caching = rng.bernoulli(0.8);
  opts.semantic_aware = rng.bernoulli(0.8);
  const core::ApconvResult r = core::apconv(w, x, enc.x, g, dev(), opts);
  ASSERT_EQ(r.y, core::conv2d_reference(x_logical, w_ohwi, g))
      << "seed " << GetParam() << " cin=" << g.in_c << " cout=" << g.out_c
      << " hw=" << g.in_h << "x" << g.in_w << " k=" << g.kernel << " s="
      << g.stride << " pad=" << g.pad << " p=" << p << " q=" << q;
}

TEST_P(FuzzSeed, PackedOutputRoundTripsThroughNextLayer) {
  // Chain two APMM layers through the packed minimal-traffic interface and
  // check against the dense integer pipeline.
  Rng rng(GetParam() ^ 0xfeedface);
  const int q = static_cast<int>(rng.uniform_int(1, 4));
  const std::int64_t batch = rng.uniform_int(1, 16);
  const std::int64_t f0 = rng.uniform_int(1, 64);
  const std::int64_t f1 = rng.uniform_int(1, 64);
  const std::int64_t f2 = rng.uniform_int(1, 32);

  const auto w1l = random_logical(rng, f1, f0, Encoding::kSignedPM1, 1);
  const auto w2l = random_logical(rng, f2, f1, Encoding::kSignedPM1, 1);
  const auto xl = random_logical(rng, batch, f0, Encoding::kUnsigned01, q);
  const ApOperand w1 = core::make_operand(w1l, Encoding::kSignedPM1, 1);
  const ApOperand w2 = core::make_operand(w2l, Encoding::kSignedPM1, 1);
  const ApOperand x0 = core::make_operand(xl, Encoding::kUnsigned01, q);

  core::Epilogue epi;
  epi.has_relu = true;
  epi.has_quant = true;
  epi.quant.bits = q;
  epi.quant.scale = std::max<std::int64_t>(1, f0);  // keep codes in range

  // Kernel path: layer1 emits packed planes consumed directly by layer2.
  const core::ApmmResult r1 = core::apmm(w1, x0, dev(), {}, epi);
  ApOperand x1;
  x1.planes = r1.packed;
  x1.encoding = Encoding::kUnsigned01;
  const core::ApmmResult r2 = core::apmm(w2, x1, dev());

  // Dense path.
  const Tensor<std::int32_t> y1 = naive_gemm(w1l, xl);
  Tensor<std::int32_t> codes({batch, f1});
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t o = 0; o < f1; ++o) {
      codes(b, o) = quant::quantize_value(
          static_cast<float>(std::max(y1(o, b), 0)), epi.quant);
    }
  }
  ASSERT_EQ(r2.y, naive_gemm(w2l, codes)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace apnn

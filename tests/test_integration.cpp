// End-to-end integration tests: the paper's headline claims, expressed as
// shape assertions on the full pipeline (kernels + cost model + networks).
#include <gtest/gtest.h>

#include "src/baselines/conv.hpp"
#include "src/baselines/gemm.hpp"
#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/engine.hpp"
#include "src/tcsim/cost_model.hpp"
#include "test_util.hpp"

namespace apnn {
namespace {

using core::Encoding;
using core::EncodingConfig;
using tcsim::CostModel;
using tcsim::Precision;

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

double apmm_us(std::int64_t m, std::int64_t n, std::int64_t k, int p, int q) {
  const EncodingConfig enc{
      p == 1 ? Encoding::kSignedPM1 : Encoding::kUnsigned01,
      Encoding::kUnsigned01};
  const CostModel cm(dev());
  return cm.estimate(core::apmm_profile(m, n, k, p, q, enc, dev())).total_us;
}

double cutlass_us(Precision prec, std::int64_t m, std::int64_t n,
                  std::int64_t k) {
  const CostModel cm(dev());
  return cm.estimate(baselines::cutlass_gemm_profile(prec, m, n, k)).total_us;
}

// --- Figure 5 shape: APMM vs cutlass-int4 / cublas-int8 ------------------------

TEST(PaperShape, ApmmW1A2BeatsCutlassInt4OnNnSizes) {
  // B=64, K=N in {128..1024} (§6.1.1): w1a2 wins everywhere.
  for (std::int64_t n : {128, 256, 512, 768, 1024}) {
    EXPECT_GT(cutlass_us(Precision::kInt4, 64, n, n) / apmm_us(64, n, n, 1, 2),
              1.0)
        << "n=" << n;
  }
}

TEST(PaperShape, ApmmSpeedupOverInt4InPaperBand) {
  // Peak speedup ~2.35x in the paper; accept a generous band around it.
  double best = 0;
  for (std::int64_t n : {128, 256, 384, 512, 640, 768, 896, 1024}) {
    best = std::max(best,
                    cutlass_us(Precision::kInt4, 64, n, n) /
                        apmm_us(64, n, n, 1, 2));
  }
  EXPECT_GT(best, 1.5);
  EXPECT_LT(best, 4.0);
}

TEST(PaperShape, SimilarLatencyAcrossSmallBitCombos) {
  // §6.1.1: w1a2 / w1a3 / w1a4 / w2a2 nearly coincide on small matrices
  // (batching hides the plane count).
  const double t12 = apmm_us(64, 128, 128, 1, 2);
  const double t14 = apmm_us(64, 128, 128, 1, 4);
  const double t22 = apmm_us(64, 128, 128, 2, 2);
  EXPECT_LT(std::abs(t14 - t12) / t12, 0.35);
  EXPECT_LT(std::abs(t22 - t12) / t12, 0.35);
}

TEST(PaperShape, W2A8LosesToInt8AtLargeSizes) {
  // §6.2 Table 3 rationale: 16 emulation planes exceed the 5.9x int1
  // advantage, so w2a8 falls behind int8 at saturating sizes.
  const CostModel cm(dev());
  const std::int64_t m = 4096, n = 4096, k = 4096;
  const double t_w2a8 = apmm_us(m, n, k, 2, 8);
  const double t_int8 =
      cm.estimate(baselines::cublas_gemm_int8_profile(m, n, k)).total_us;
  EXPECT_GT(t_w2a8, t_int8);
  // ... while w1a2 (2 planes) still wins.
  EXPECT_LT(apmm_us(m, n, k, 1, 2), t_int8);
}

// --- Figure 12 shape: same-precision comparison -------------------------------

TEST(PaperShape, ApmmW4A4BeatsCutlassInt4SmallSizes) {
  double total_ratio = 0;
  int count = 0;
  for (std::int64_t n : {128, 256, 384, 512}) {
    total_ratio += cutlass_us(Precision::kInt4, 64, n, n) /
                   apmm_us(64, n, n, 4, 4);
    ++count;
  }
  EXPECT_GT(total_ratio / count, 1.0);  // paper: ~1.3x
}

TEST(PaperShape, ApmmW1A1BeatsCutlassInt1) {
  double total_ratio = 0;
  int count = 0;
  for (std::int64_t n : {128, 256, 384, 512, 1024}) {
    const EncodingConfig enc{Encoding::kSignedPM1, Encoding::kSignedPM1};
    const CostModel cm(dev());
    const double t_ap =
        cm.estimate(core::apmm_profile(64, n, n, 1, 1, enc, dev())).total_us;
    total_ratio += cutlass_us(Precision::kInt1, 64, n, n) / t_ap;
    ++count;
  }
  EXPECT_GT(total_ratio / count, 1.0);  // paper: ~1.35x
}

// --- Table 4 shape: FC layer raw latency ----------------------------------------

TEST(PaperShape, FcLayerLatencyMagnitude) {
  // M=64, K=N=1024: paper reports ~6.7-7.2us for the AP kernels, 15.6us for
  // cutlass-int4, 7.9us for cutlass-int1. Require the right magnitude and
  // ordering.
  const double t_w1a2 = apmm_us(64, 1024, 1024, 1, 2);
  const double t_int4 = cutlass_us(Precision::kInt4, 64, 1024, 1024);
  const double t_int1 = cutlass_us(Precision::kInt1, 64, 1024, 1024);
  EXPECT_GT(t_w1a2, 2.0);
  EXPECT_LT(t_w1a2, 15.0);
  EXPECT_GT(t_int4 / t_w1a2, 1.5);  // paper: 2.27x average
  EXPECT_LT(t_w1a2, t_int1 * 1.1);  // AP even edges out cutlass-int1
}

// --- Figure 7 shape: APConv -----------------------------------------------------

TEST(PaperShape, ApconvBeatsCutlassConvInt4) {
  const CostModel cm(dev());
  for (std::int64_t c : {128, 256, 512}) {
    layout::ConvGeometry g;
    g.batch = 1;
    g.in_c = c;
    g.in_h = g.in_w = 16;
    g.out_c = c;
    g.kernel = 3;
    g.stride = 1;
    g.pad = 1;
    const EncodingConfig enc{Encoding::kSignedPM1, Encoding::kUnsigned01};
    const double t_ap =
        cm.estimate(core::apconv_profile(g, 1, 2, enc, dev())).total_us;
    const double t_i4 =
        cm.estimate(baselines::cutlass_conv_profile(Precision::kInt4, g))
            .total_us;
    EXPECT_GT(t_i4 / t_ap, 1.0) << "channels " << c;
    EXPECT_LT(t_i4 / t_ap, 5.0) << "channels " << c;
  }
}

// --- Figure 10 / 11 shapes ------------------------------------------------------

TEST(PaperShape, FusionBenefitNearPaperMagnitude) {
  // Fig 10: ~1.77x average latency reduction from fusing conv+pool+quant.
  const CostModel cm(dev());
  double total = 0;
  int count = 0;
  for (std::int64_t c : {128, 256, 512, 1024}) {
    layout::ConvGeometry g;
    g.batch = 1;
    g.in_c = c;
    g.in_h = g.in_w = 16;
    g.out_c = c;
    g.kernel = 3;
    g.stride = 1;
    g.pad = 1;
    core::Epilogue epi;
    epi.has_quant = true;
    epi.quant.bits = 2;
    core::PoolSpec pool;
    pool.kind = core::PoolSpec::Kind::kMax;
    pool.size = 2;
    const EncodingConfig enc{Encoding::kSignedPM1, Encoding::kUnsigned01};
    core::ApconvOptions fused, unfused;
    unfused.fuse_epilogue = false;
    const double tf =
        cm.estimate(core::apconv_profile(g, 1, 2, enc, dev(), fused, epi, pool))
            .total_us;
    const double tu = cm.estimate(core::apconv_profile(g, 1, 2, enc, dev(),
                                                       unfused, epi, pool))
                          .total_us;
    total += tu / tf;
    ++count;
  }
  const double avg = total / count;
  EXPECT_GT(avg, 1.2);
  EXPECT_LT(avg, 3.0);
}

TEST(PaperShape, BitOverheadPercentagesSmallAndShrinking) {
  // Fig 11: combination ~1.16%, decomposition ~2.02%, both shrinking with
  // channel count.
  const CostModel cm(dev());
  double prev_comb_pct = 100;
  for (std::int64_t c : {128, 512, 1024}) {
    layout::ConvGeometry g;
    g.batch = 1;
    g.in_c = c;
    g.in_h = g.in_w = 16;
    g.out_c = c;
    g.kernel = 3;
    g.stride = 1;
    g.pad = 1;
    const EncodingConfig enc{Encoding::kSignedPM1, Encoding::kUnsigned01};
    const auto prof = core::apconv_profile(g, 1, 2, enc, dev());
    const auto counters = prof.total_counters();
    // Component times from the model's ALU and MMA rates.
    const auto est = cm.estimate(prof);
    tcsim::KernelProfile comb = prof.kernels[0];
    comb.counters = {};
    comb.counters.alu_combine_ops = counters.alu_combine_ops;
    const double t_comb = cm.estimate(comb).total_us - cm.estimate(comb).launch_us;
    const double pct = 100.0 * t_comb / est.compute_us;
    EXPECT_LT(pct, 8.0) << "channels " << c;
    EXPECT_LE(pct, prev_comb_pct * 1.5) << "channels " << c;
    prev_comb_pct = pct;
  }
}

// --- network-level (Table 2 / Fig 9 shapes) --------------------------------------

TEST(PaperShape, ApnnW1A2Beats4xOverFloatOnVgg) {
  // Table 2: >4x latency reduction vs single precision (paper shows ~15x
  // for VGG; require at least 4x).
  const nn::ModelSpec m = nn::vgg_variant();
  nn::SchemeConfig apnn, f32;
  f32.scheme = nn::Scheme::kFloat32;
  const double t_ap = nn::profile_model(m, 8, apnn, dev()).total_us;
  const double t_f32 = nn::profile_model(m, 8, f32, dev()).total_us;
  EXPECT_GT(t_f32 / t_ap, 4.0);
}

TEST(PaperShape, ApnnThroughputBeats3xOverFloat) {
  const nn::ModelSpec m = nn::vgg_variant();
  nn::SchemeConfig apnn, f32;
  f32.scheme = nn::Scheme::kFloat32;
  const double fps_ap = nn::profile_model(m, 128, apnn, dev()).throughput_fps();
  const double fps_f32 =
      nn::profile_model(m, 128, f32, dev()).throughput_fps();
  EXPECT_GT(fps_ap / fps_f32, 3.0);
}

TEST(PaperShape, W2A8SlowerThanW1A2AtNetworkLevel) {
  // Table 3 ordering: w1a2 < w2a2 < w2a8 latency.
  const nn::ModelSpec m = nn::vgg_variant();
  auto total = [&](int wb, int ab) {
    nn::SchemeConfig cfg;
    cfg.wbits = wb;
    cfg.abits = ab;
    return nn::profile_model(m, 8, cfg, dev()).total_us;
  };
  const double t12 = total(1, 2);
  const double t22 = total(2, 2);
  const double t28 = total(2, 8);
  EXPECT_LT(t12, t22);
  EXPECT_LT(t22, t28);
}

TEST(PaperShape, A100ShowsSameWinners) {
  const CostModel cm(tcsim::a100());
  const EncodingConfig enc{Encoding::kSignedPM1, Encoding::kUnsigned01};
  for (std::int64_t n : {256, 512, 1024}) {
    const double t_ap =
        cm.estimate(core::apmm_profile(64, n, n, 1, 2, enc, tcsim::a100()))
            .total_us;
    const double t_i4 =
        cm.estimate(baselines::cutlass_gemm_profile(Precision::kInt4, 64, n, n))
            .total_us;
    EXPECT_GT(t_i4 / t_ap, 1.0) << "n=" << n;
  }
}

// --- functional end-to-end with packed dataflow ----------------------------------

TEST(EndToEnd, VggLiteApnnMatchesReference) {
  const nn::ModelSpec m = nn::vgg_lite(16, 8);
  nn::ApnnNetwork net = nn::ApnnNetwork::random(m, 1, 2, 7);
  Rng rng(8);
  Tensor<std::int32_t> input({2, 16, 16, 3});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  EXPECT_EQ(net.forward(input, dev()), net.forward_reference(input));
}

TEST(EndToEnd, PackedDataflowMovesFewerBytesThanInt32) {
  // §5.1 claim: 2-bit activations move 16x fewer bytes than 32-bit.
  const nn::ModelSpec m = nn::mini_cnn(8, 16, 10);
  nn::ApnnNetwork net = nn::ApnnNetwork::random(m, 1, 2, 9);
  Rng rng(10);
  Tensor<std::int32_t> input({1, 16, 16, 8});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  tcsim::SequenceProfile prof;
  net.forward(input, dev(), &prof);
  // The first conv kernel stores packed 2-bit activations; compare with the
  // int32 store volume of the same conv without quantization.
  const auto& conv_kernel = prof.kernels[1];
  EXPECT_GT(conv_kernel.counters.global_store_bytes, 0);
  EXPECT_LT(conv_kernel.counters.global_store_bytes,
            16 * 16 * 16 * 4 / 8);  // far below int32 volume
}

}  // namespace
}  // namespace apnn

// Empirical autotuner + TuningCache gates:
//   * cache serialize/deserialize round-trips every field;
//   * a stale hardware fingerprint (or schema) invalidates the whole cache;
//   * a warm cache makes a second InferenceSession compile skip every
//     measurement run and pick geometrically identical kernels;
//   * a tuned session stays bit-exact vs forward_reference on mini_resnet;
//   * perf_model::ranked_tiles fronts the heuristic's own pick, so a tuned
//     plan can always degrade to exactly the heuristic plan.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/autotune.hpp"
#include "src/core/perf_model.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/model.hpp"
#include "src/nn/session.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn {
namespace {

using core::AutotuneOptions;
using core::StageKey;
using core::TunedKernel;
using core::TuningCache;

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

StageKey sample_key(std::int64_t n) {
  StageKey key;
  key.kind = "mm";
  key.m = 128;
  key.n = n;
  key.k = 512;
  key.p = 1;
  key.q = 2;
  key.ecase = core::EmulationCase::kCaseIII;
  key.has_relu = true;
  key.qbits = 2;
  return key;
}

TunedKernel sample_kernel() {
  TunedKernel c;
  c.tile.bm = 32;
  c.tile.bn = 128;
  c.micro.strip_words = 16;
  c.micro.staging = core::microkernel::MicroConfig::Staging::kRowMajor;
  c.micro.sparse_staging = core::microkernel::MicroConfig::Sparse::kOn;
  c.combine_fast = false;
  c.measured_ms = 1.25;
  c.measured = true;
  return c;
}

TEST(StageKey, SeqBucketKeysDistinctCanonicals) {
  // Two plan-family members can lower to identical GEMM dims (batch *
  // bucket collisions); the bucket itself must still split the cache key.
  StageKey a = sample_key(256);
  StageKey b = a;
  b.seq = 128;
  EXPECT_NE(a.canonical(), b.canonical());
  StageKey c = b;
  c.seq = 256;
  EXPECT_NE(b.canonical(), c.canonical());

  TuningCache cache;
  TunedKernel winner_b = sample_kernel();
  TunedKernel winner_c = sample_kernel();
  winner_c.tile.bm = 64;
  cache.insert(b, winner_b);
  cache.insert(c, winner_c);
  ASSERT_EQ(cache.size(), 2u);
  TunedKernel got;
  ASSERT_TRUE(cache.lookup(b, &got));
  EXPECT_TRUE(got.same_config(winner_b));
  ASSERT_TRUE(cache.lookup(c, &got));
  EXPECT_TRUE(got.same_config(winner_c));
  EXPECT_FALSE(cache.lookup(a, &got));  // seq 0 was never inserted

  // And the serialized form round-trips the bucket.
  TuningCache loaded;
  ASSERT_TRUE(loaded.deserialize(cache.serialize()));
  ASSERT_TRUE(loaded.lookup(c, &got));
  EXPECT_TRUE(got.same_config(winner_c));
}

// --- TuningCache ------------------------------------------------------------

TEST(TuningCache, SerializeRoundTrip) {
  TuningCache cache;
  const TunedKernel a = sample_kernel();
  TunedKernel b;  // defaults (heuristic-shaped entry)
  b.tile.bm = 64;
  b.tile.bn = 64;
  b.measured = true;
  b.measured_ms = 0.5;
  cache.insert(sample_key(8), a);
  cache.insert(sample_key(16), b);
  ASSERT_EQ(cache.size(), 2u);

  TuningCache loaded;
  ASSERT_TRUE(loaded.deserialize(cache.serialize()));
  ASSERT_EQ(loaded.size(), 2u);

  TunedKernel got;
  ASSERT_TRUE(loaded.lookup(sample_key(8), &got));
  EXPECT_TRUE(got.same_config(a));
  EXPECT_TRUE(got.measured);
  EXPECT_DOUBLE_EQ(got.measured_ms, 1.25);
  ASSERT_TRUE(loaded.lookup(sample_key(16), &got));
  EXPECT_TRUE(got.same_config(b));
  EXPECT_FALSE(loaded.lookup(sample_key(32), &got));
}

TEST(TuningCache, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "apnn_tuning_cache_test";
  TuningCache cache;
  cache.insert(sample_key(8), sample_kernel());
  ASSERT_TRUE(cache.save_file(path));

  TuningCache loaded;
  ASSERT_TRUE(loaded.load_file(path));
  EXPECT_EQ(loaded.size(), 1u);
  TunedKernel got;
  EXPECT_TRUE(loaded.lookup(sample_key(8), &got));
  std::remove(path.c_str());

  TuningCache missing;
  EXPECT_FALSE(missing.load_file(path));
  EXPECT_EQ(missing.size(), 0u);
}

TEST(TuningCache, StaleFingerprintInvalidates) {
  TuningCache cache;
  cache.insert(sample_key(8), sample_kernel());
  std::string text = cache.serialize();

  // Rewrite the fingerprint line to a foreign machine shape.
  const std::string fp = TuningCache::hardware_fingerprint();
  const auto pos = text.find(fp);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, fp.size(), "v1:neon:t64");

  TuningCache stale;
  EXPECT_FALSE(stale.deserialize(text));
  EXPECT_EQ(stale.size(), 0u);

  // Inspection mode loads it anyway and reports the foreign fingerprint.
  TuningCache inspect;
  EXPECT_TRUE(inspect.deserialize(text, /*any_fingerprint=*/true));
  EXPECT_EQ(inspect.size(), 1u);
  EXPECT_EQ(inspect.fingerprint(), "v1:neon:t64");
}

TEST(TuningCache, SliceWidthKeysFingerprint) {
  // A cache keyed to a per-replica slice width carries t<slice> and refuses
  // measurements recorded at a different width: slice-tuned winners must
  // not replay on the global pool or vice versa.
  const unsigned slice = ThreadPool::global().size() + 3;  // != global width
  const std::string global_fp = TuningCache::hardware_fingerprint();
  const std::string slice_fp = TuningCache::hardware_fingerprint(slice);
  EXPECT_NE(slice_fp, global_fp);
  EXPECT_NE(slice_fp.find(":t" + std::to_string(slice)), std::string::npos);

  TuningCache at_slice(slice);
  EXPECT_EQ(at_slice.fingerprint(), slice_fp);
  at_slice.insert(sample_key(8), sample_kernel());

  TuningCache at_global;
  EXPECT_FALSE(at_global.deserialize(at_slice.serialize()));
  EXPECT_EQ(at_global.size(), 0u);

  TuningCache at_same_slice(slice);
  EXPECT_TRUE(at_same_slice.deserialize(at_slice.serialize()));
  EXPECT_EQ(at_same_slice.size(), 1u);
}

TEST(TuningCache, MalformedInputRejected) {
  TuningCache cache;
  EXPECT_FALSE(cache.deserialize("not-a-cache 1\nfingerprint x\n"));
  EXPECT_FALSE(cache.deserialize(""));
  // Wrong schema version (the current schema is 4: keys grew the
  // sequence-bucket dimension).
  std::string text = TuningCache().serialize();
  const auto pos = text.find(" 4\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, " 999\n");
  EXPECT_FALSE(cache.deserialize(text));
}

TEST(TuningCache, SparseStagingRoundTrips) {
  // A sparse_staging winner survives serialize/load bit-for-bit, and the
  // knob participates in config identity (same_config).
  TuningCache cache;
  TunedKernel on = sample_kernel();  // kOn
  TunedKernel off = sample_kernel();
  off.micro.sparse_staging = core::microkernel::MicroConfig::Sparse::kOff;
  ASSERT_FALSE(on.same_config(off));
  cache.insert(sample_key(8), on);
  cache.insert(sample_key(16), off);

  TuningCache loaded;
  ASSERT_TRUE(loaded.deserialize(cache.serialize()));
  TunedKernel got;
  ASSERT_TRUE(loaded.lookup(sample_key(8), &got));
  EXPECT_EQ(got.micro.sparse_staging,
            core::microkernel::MicroConfig::Sparse::kOn);
  EXPECT_TRUE(got.same_config(on));
  ASSERT_TRUE(loaded.lookup(sample_key(16), &got));
  EXPECT_EQ(got.micro.sparse_staging,
            core::microkernel::MicroConfig::Sparse::kOff);
  EXPECT_TRUE(got.same_config(off));

  // An out-of-range sparse_staging value is rejected as corruption, not
  // clamped: entry fields are "… strip staging sparse fast measured ms" and
  // both sample entries end "<sparse> 0 1 1.25".
  std::string text = cache.serialize();
  const auto tail = text.find(" 0 1 1.25");
  ASSERT_NE(tail, std::string::npos);
  text.replace(tail - 1, 1, "9");
  TuningCache corrupt;
  EXPECT_FALSE(corrupt.deserialize(text));
  EXPECT_EQ(corrupt.size(), 0u);
}

TEST(TuningCache, V2SchemaWholesaleInvalidated) {
  // A pre-sparsity v2 cache (no sparse_staging column, v2 fingerprint) must
  // be dropped wholesale by the v3 schema bump: its winners were measured
  // on a kernel dispatch that no longer exists, and v3's kAuto default
  // changes what the default config runs.
  const unsigned width = ThreadPool::global().size() + 1;
  const std::string v2 =
      "apnn-tuning-cache 2\n"
      "fingerprint v2:" +
      std::string(core::microkernel::kSimdFlavor) + ":t" +
      std::to_string(width) +
      "\n"
      "entry mm|m128|n8|k512|p1|q2|caseIII|bn0|relu1|qb2|pw1 "
      "32 128 128 8 4 16 1 0 1 1.25\n";
  TuningCache stale;
  EXPECT_FALSE(stale.deserialize(v2));
  EXPECT_EQ(stale.size(), 0u);
  // Even inspection mode (any fingerprint) refuses a foreign schema.
  EXPECT_FALSE(stale.deserialize(v2, /*any_fingerprint=*/true));
}

// --- candidate pruner -------------------------------------------------------

TEST(RankedTiles, HeuristicPickLeads) {
  for (const auto& [m, n, k, p, q] :
       {std::tuple<std::int64_t, std::int64_t, std::int64_t, int, int>{
            64, 512, 512, 1, 2},
        {128, 2048, 576, 1, 2},
        {10, 8, 1024, 1, 2},
        {1024, 1024, 1024, 1, 1}}) {
    const core::TileConfig want = core::clamp_tile_rows(
        core::autotune_tile(m, n, k, p, q, dev()).tile, m, p);
    const std::vector<core::TileConfig> tiles =
        core::ranked_tiles(m, n, k, p, q, dev(), 4);
    ASSERT_FALSE(tiles.empty());
    EXPECT_LE(tiles.size(), 4u);
    EXPECT_EQ(tiles.front().bm, want.bm);
    EXPECT_EQ(tiles.front().bn, want.bn);
    // No duplicate geometries survive pruning.
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      for (std::size_t j = i + 1; j < tiles.size(); ++j) {
        EXPECT_FALSE(tiles[i].bm == tiles[j].bm &&
                     tiles[i].bn == tiles[j].bn);
      }
    }
  }
}

// --- session integration ----------------------------------------------------

nn::ApnnNetwork tuned_net(const nn::ModelSpec& m, std::uint64_t seed,
                          Tensor<std::int32_t>* input, std::int64_t batch) {
  nn::ApnnNetwork net = nn::ApnnNetwork::random(m, 1, 2, seed);
  Rng rng(seed + 1);
  input->reset_shape({batch, m.input.h, m.input.w, m.input.c});
  input->randomize(rng, 0, 255);
  net.calibrate(*input);
  return net;
}

AutotuneOptions fast_tuner() {
  AutotuneOptions t;
  t.reps = 1;  // keep the suite quick; determinism comes from the cache
  t.max_tile_candidates = 2;
  return t;
}

TEST(SessionAutotune, WarmCacheSkipsMeasurementAndIsDeterministic) {
  const nn::ModelSpec m = nn::mini_resnet(3, 8, 5);
  const std::int64_t batch = 4;
  Tensor<std::int32_t> input;
  nn::ApnnNetwork net = tuned_net(m, 401, &input, batch);

  TuningCache cache;
  nn::SessionOptions opts;
  opts.autotune = true;
  opts.cache = &cache;
  opts.tune_batch = batch;
  opts.tuner = fast_tuner();

  nn::InferenceSession first(net, dev(), opts);
  EXPECT_GT(first.tuning_measurements(), 0);
  EXPECT_GT(cache.size(), 0u);
  const std::vector<TunedKernel> kern_a = first.stage_kernels(batch);

  // Second compile against the warm cache: zero measurement runs, identical
  // kernel geometry for every step.
  nn::InferenceSession second(net, dev(), opts);
  EXPECT_EQ(second.tuning_measurements(), 0);
  const std::vector<TunedKernel> kern_b = second.stage_kernels(batch);
  EXPECT_EQ(second.tuning_measurements(), 0);

  ASSERT_EQ(kern_a.size(), kern_b.size());
  for (std::size_t i = 0; i < kern_a.size(); ++i) {
    EXPECT_TRUE(kern_a[i].same_config(kern_b[i])) << "step " << i;
  }

  // The warm path also survives a serialize -> deserialize round trip (what
  // the CLI/server cold start does with the cache file).
  TuningCache reloaded;
  ASSERT_TRUE(reloaded.deserialize(cache.serialize()));
  nn::SessionOptions ropts = opts;
  ropts.cache = &reloaded;
  nn::InferenceSession third(net, dev(), ropts);
  EXPECT_EQ(third.tuning_measurements(), 0);
}

TEST(SessionAutotune, TunedSessionBitExact) {
  const nn::ModelSpec m = nn::mini_resnet(3, 8, 5);
  const std::int64_t batch = 3;
  Tensor<std::int32_t> input;
  nn::ApnnNetwork net = tuned_net(m, 402, &input, batch);
  const Tensor<std::int32_t> ref = net.forward_reference(input);

  TuningCache cache;
  nn::SessionOptions opts;
  opts.autotune = true;
  opts.cache = &cache;
  opts.tune_batch = batch;
  opts.tuner = fast_tuner();
  nn::InferenceSession session(net, dev(), opts);

  Tensor<std::int32_t> logits;
  session.run(input, &logits);
  EXPECT_TRUE(logits == ref);
  // Repeat runs (steady state, tuned kernels) stay exact.
  session.run(input, &logits);
  EXPECT_TRUE(logits == ref);

  // A lazily tuned batch size (not the eager tune_batch) is exact too.
  Rng rng(4021);
  Tensor<std::int32_t> one({1, m.input.h, m.input.w, m.input.c});
  one.randomize(rng, 0, 255);
  const Tensor<std::int32_t> ref_one = net.forward_reference(one);
  session.run(one, &logits);
  EXPECT_TRUE(logits == ref_one);
}

TEST(SessionAutotune, PrivateCacheWarmWithinSession) {
  const nn::ModelSpec m = nn::mini_resnet(3, 8, 4);
  const std::int64_t batch = 2;
  Tensor<std::int32_t> input;
  nn::ApnnNetwork net = tuned_net(m, 403, &input, batch);

  nn::SessionOptions opts;
  opts.autotune = true;  // no external cache: session-private
  opts.tuner = fast_tuner();
  nn::InferenceSession session(net, dev(), opts);
  EXPECT_EQ(session.tuning_measurements(), 0);  // lazy: nothing tuned yet

  Tensor<std::int32_t> logits;
  session.run(input, &logits);
  const std::int64_t after_first = session.tuning_measurements();
  EXPECT_GT(after_first, 0);
  // Same batch again: resolved state is cached, no re-measurement.
  session.run(input, &logits);
  EXPECT_EQ(session.tuning_measurements(), after_first);
}

}  // namespace
}  // namespace apnn

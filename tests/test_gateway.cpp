// Multi-model gateway gates (protocol codec, registry, TCP server):
//   * frame codec: every encoder round-trips through its decoder; bad
//     magic, foreign version, nonzero reserved, oversized payloads, and
//     truncated frames fail loudly with the right WireError — never a
//     silent resync;
//   * payload validation: INFER batches outside [1, kMaxFrameSamples],
//     zero dims, short/long sample bytes, and trailing garbage are all
//     malformed frames;
//   * gateway config parsing: ini sections to ModelConfigs, typo'd keys
//     and duplicate ids throw with line numbers instead of becoming
//     defaults;
//   * registry: multi-model routing is bit-exact against direct session
//     runs, unknown ids throw kUnknownModel, reload bumps the generation
//     and drops zero requests on the model that was not reloaded;
//   * gateway over loopback TCP: binary INFER/LIST/PING round trips,
//     typed errors for unknown models and invalid samples, the JSON line
//     protocol (including malformed lines keeping the connection), the
//     HTTP /stats and /healthz endpoints, and clean shutdown with
//     connections open.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"

#include "src/common/net.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/gateway.hpp"
#include "src/nn/model.hpp"
#include "src/nn/protocol.hpp"
#include "src/nn/registry.hpp"
#include "src/nn/serialize.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn::nn {
namespace {

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

// --- frame codec ------------------------------------------------------------

TEST(WireCodec, FrameHeaderRoundTrip) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes =
      wire::encode_frame(wire::MsgType::kInfer, payload);
  ASSERT_EQ(bytes.size(), wire::kHeaderBytes + payload.size());
  wire::MsgType type;
  const std::size_t len =
      wire::decode_header(bytes.data(), &type, wire::kDefaultMaxFrameBytes);
  EXPECT_EQ(type, wire::MsgType::kInfer);
  EXPECT_EQ(len, payload.size());
}

TEST(WireCodec, BadMagicFailsLoudly) {
  std::vector<std::uint8_t> bytes =
      wire::encode_frame(wire::MsgType::kPing, {});
  bytes[0] = 'X';
  wire::MsgType type;
  try {
    wire::decode_header(bytes.data(), &type, wire::kDefaultMaxFrameBytes);
    FAIL() << "bad magic must throw";
  } catch (const wire::WireFormatError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kMalformedFrame);
  }
}

TEST(WireCodec, ForeignVersionFailsLoudly) {
  std::vector<std::uint8_t> bytes =
      wire::encode_frame(wire::MsgType::kPing, {});
  bytes[4] = wire::kProtocolVersion + 7;
  wire::MsgType type;
  try {
    wire::decode_header(bytes.data(), &type, wire::kDefaultMaxFrameBytes);
    FAIL() << "foreign version must throw";
  } catch (const wire::WireFormatError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kUnsupportedVersion);
  }
}

TEST(WireCodec, NonzeroReservedFailsLoudly) {
  std::vector<std::uint8_t> bytes =
      wire::encode_frame(wire::MsgType::kPing, {});
  bytes[6] = 1;
  wire::MsgType type;
  EXPECT_THROW(
      wire::decode_header(bytes.data(), &type, wire::kDefaultMaxFrameBytes),
      wire::WireFormatError);
}

TEST(WireCodec, OversizedPayloadFailsLoudly) {
  std::vector<std::uint8_t> bytes =
      wire::encode_frame(wire::MsgType::kPing, {});
  bytes[8] = 0xff;  // payload_len = 0x000000ff, bound = 16
  wire::MsgType type;
  try {
    wire::decode_header(bytes.data(), &type, /*max_payload_bytes=*/16);
    FAIL() << "oversized payload must throw";
  } catch (const wire::WireFormatError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kFrameTooLarge);
  }
}

TEST(WireCodec, TruncatedFrameOverSocketFailsLoudly) {
  int port = 0;
  net::Socket listener = net::listen_loopback(0, 4, &port);
  std::thread peer([port] {
    net::Socket c = net::connect_loopback(port);
    // A valid header promising 100 payload bytes, then only 3, then EOF.
    std::vector<std::uint8_t> partial =
        wire::encode_frame(wire::MsgType::kInfer,
                           std::vector<std::uint8_t>(100, 0));
    partial.resize(wire::kHeaderBytes + 3);
    c.write_all(partial.data(), partial.size());
  });
  net::Socket server = net::accept_conn(listener);
  wire::Frame f;
  EXPECT_THROW(wire::read_frame(server, &f, wire::kDefaultMaxFrameBytes),
               Error);
  peer.join();
}

TEST(WireCodec, ReaderBoundsChecked) {
  std::vector<std::uint8_t> b;
  wire::put_u16(b, 7);
  wire::Reader r(b);
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u32(), wire::WireFormatError);  // overrun
  std::vector<std::uint8_t> c;
  wire::put_u32(c, 1);
  wire::put_u8(c, 9);  // trailing byte after the last field
  wire::Reader r2(c);
  (void)r2.u32();
  EXPECT_THROW(r2.expect_end(), wire::WireFormatError);
}

TEST(WireCodec, InferPayloadRoundTrip) {
  wire::InferRequest req;
  req.model = "mini";
  req.deadline_ms = 250;
  req.count = 2;
  req.h = 2;
  req.w = 3;
  req.c = 1;
  req.samples.assign(2 * 2 * 3 * 1, 0);
  for (std::size_t i = 0; i < req.samples.size(); ++i) {
    req.samples[i] = static_cast<std::uint8_t>(i * 17);
  }
  const wire::InferRequest back =
      wire::decode_infer_request(wire::encode_infer_request(req));
  EXPECT_EQ(back.model, req.model);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.count, req.count);
  EXPECT_EQ(back.h, req.h);
  EXPECT_EQ(back.w, req.w);
  EXPECT_EQ(back.c, req.c);
  EXPECT_EQ(back.samples, req.samples);

  wire::InferResponse resp;
  resp.count = 2;
  resp.classes = 3;
  resp.logits = {1, -2, 3, 4, 5, -6};
  const wire::InferResponse rback =
      wire::decode_infer_response(wire::encode_infer_response(resp));
  EXPECT_EQ(rback.count, resp.count);
  EXPECT_EQ(rback.classes, resp.classes);
  EXPECT_EQ(rback.logits, resp.logits);
}

TEST(WireCodec, InferPayloadValidation) {
  // The encoder APNN_CHECKs its own invariants, so malformed payloads are
  // hand-built here the way a hostile peer would send them:
  // str(model) u32(deadline) u16(count) u16(h) u16(w) u16(c) u16(seq_len)
  // bytes.
  auto raw = [](std::uint16_t count, std::uint16_t h, std::uint16_t w,
                std::uint16_t c, std::size_t nbytes,
                std::uint16_t seq_len = 0) {
    std::vector<std::uint8_t> b;
    wire::put_str(b, "m");
    wire::put_u32(b, 0);
    wire::put_u16(b, count);
    wire::put_u16(b, h);
    wire::put_u16(b, w);
    wire::put_u16(b, c);
    wire::put_u16(b, seq_len);
    b.insert(b.end(), nbytes, 0);
    return b;
  };
  // Short sample bytes (3 where count*h*w*c = 4).
  EXPECT_THROW(wire::decode_infer_request(raw(1, 2, 2, 1, 3)),
               wire::WireFormatError);
  // Zero dim.
  EXPECT_THROW(wire::decode_infer_request(raw(1, 2, 2, 0, 0)),
               wire::WireFormatError);
  // Zero count and count over the frame bound.
  EXPECT_THROW(wire::decode_infer_request(raw(0, 2, 2, 1, 0)),
               wire::WireFormatError);
  EXPECT_THROW(
      wire::decode_infer_request(raw(
          wire::kMaxFrameSamples + 1, 2, 2, 1,
          static_cast<std::size_t>(wire::kMaxFrameSamples + 1) * 4)),
      wire::WireFormatError);
  // A nonzero seq_len that does not match the sample token count.
  EXPECT_THROW(wire::decode_infer_request(raw(1, 2, 2, 1, 4, /*seq_len=*/3)),
               wire::WireFormatError);
  // seq_len == h is well-formed at the codec layer (model-shape checks
  // happen at admission, not here).
  EXPECT_NO_THROW(wire::decode_infer_request(raw(1, 2, 2, 1, 4,
                                                 /*seq_len=*/2)));
  // Trailing garbage after a well-formed request.
  std::vector<std::uint8_t> bytes = raw(1, 2, 2, 1, 4);
  EXPECT_NO_THROW(wire::decode_infer_request(bytes));
  bytes.push_back(0);
  EXPECT_THROW(wire::decode_infer_request(bytes), wire::WireFormatError);
}

TEST(WireCodec, ErrorAndListRoundTrip) {
  wire::ErrorResponse err;
  err.code = wire::WireError::kUnknownModel;
  err.message = "no model 'x'";
  const wire::ErrorResponse eback =
      wire::decode_error_response(wire::encode_error_response(err));
  EXPECT_EQ(eback.code, err.code);
  EXPECT_EQ(eback.message, err.message);

  std::vector<wire::ModelDescriptor> models(2);
  models[0] = {"mini", 16, 16, 4, 10, 3};
  models[1] = {"vgg", 16, 16, 3, 10, 1};
  const auto mback =
      wire::decode_list_response(wire::encode_list_response(models));
  ASSERT_EQ(mback.size(), 2u);
  EXPECT_EQ(mback[0].id, "mini");
  EXPECT_EQ(mback[0].c, 4);
  EXPECT_EQ(mback[0].generation, 3u);
  EXPECT_EQ(mback[1].id, "vgg");
}

TEST(WireCodec, ErrorTaxonomyMirrorsErrorKind) {
  for (int k = 0; k < kErrorKindCount; ++k) {
    const auto kind = static_cast<ErrorKind>(k);
    EXPECT_EQ(static_cast<std::uint16_t>(wire::wire_error_for(kind)),
              static_cast<std::uint16_t>(k) + 1);
  }
  // The generated doc table covers every enumerator (docs lint depends on
  // this being complete).
  const std::string table = wire::error_table_markdown();
  for (const char* name :
       {"DEADLINE_EXCEEDED", "QUEUE_FULL", "SHUTTING_DOWN", "INVALID_SAMPLE",
        "REPLICA_FAILED", "UNKNOWN_MODEL", "MALFORMED_FRAME",
        "UNSUPPORTED_VERSION", "FRAME_TOO_LARGE", "UNSUPPORTED_TYPE",
        "MODEL_LOAD_FAILED", "INTERNAL"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

// --- latency histogram ------------------------------------------------------

TEST(LatencyHistogram, QuantileWithinBucketBound) {
  gw::LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 99; ++i) h.record(1.0);
  h.record(100.0);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.sum_ms(), 199.0, 1e-9);
  EXPECT_EQ(h.max_ms(), 100.0);
  // p50 lands in 1.0's bucket: >= the sample, overestimates by at most one
  // half-power-of-two bucket width.
  EXPECT_GE(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.5), 1.0 * 1.4143);
  // The top sample is clamped to the observed max, not the bucket bound.
  EXPECT_EQ(h.quantile(1.0), 100.0);
}

// --- config parsing ---------------------------------------------------------

TEST(GatewayConfig, ParsesSectionsAndKeys) {
  const gw::GatewayConfig cfg = gw::parse_gateway_config(
      "# gateway\n"
      "port = 7071\n"
      "max_frame_bytes = 1048576\n"
      "device = a100\n"
      "\n"
      "[model mini]\n"
      "path = models/mini.apnn\n"
      "max_batch = 4\n"
      "replicas = 2\n"
      "slice_threads = 1\n"
      "max_queue = 32\n"
      "admission = degrade\n"
      "batch_window_us = 250\n"
      "autotune = true\n"
      "cache_path = mini.cache\n"
      "\n"
      "; second model rides the defaults\n"
      "[model vgg]\n"
      "path = models/vgg.apnn\n");
  EXPECT_EQ(cfg.port, 7071);
  EXPECT_EQ(cfg.max_frame_bytes, 1048576u);
  EXPECT_EQ(cfg.device, "a100");
  ASSERT_EQ(cfg.models.size(), 2u);
  EXPECT_EQ(cfg.models[0].id, "mini");
  EXPECT_EQ(cfg.models[0].path, "models/mini.apnn");
  EXPECT_EQ(cfg.models[0].max_batch, 4);
  EXPECT_EQ(cfg.models[0].replicas, 2);
  EXPECT_EQ(cfg.models[0].slice_threads, 1);
  EXPECT_EQ(cfg.models[0].max_queue, 32);
  EXPECT_EQ(cfg.models[0].admission, "degrade");
  EXPECT_EQ(cfg.models[0].batch_window_us, 250);
  EXPECT_TRUE(cfg.models[0].autotune);
  EXPECT_EQ(cfg.models[0].cache_path, "mini.cache");
  EXPECT_EQ(cfg.models[1].id, "vgg");
  EXPECT_EQ(cfg.models[1].max_batch, 8);  // default
}

TEST(GatewayConfig, RejectsTyposAndDuplicates) {
  // A typo'd knob must not silently become a default.
  EXPECT_THROW(gw::parse_gateway_config("[model m]\npath = x\nmax_bach = 4\n"),
               Error);
  // Model keys outside a section are gateway-key typos.
  EXPECT_THROW(gw::parse_gateway_config("path = x\n"), Error);
  // Two sections for one id.
  EXPECT_THROW(gw::parse_gateway_config(
                   "[model m]\npath = x\n[model m]\npath = y\n"),
               Error);
  // A model without a path cannot be loaded.
  EXPECT_THROW(gw::parse_gateway_config("[model m]\nmax_batch = 4\n"), Error);
  // Garbage line.
  EXPECT_THROW(gw::parse_gateway_config("not an assignment\n"), Error);
}

// --- registry + gateway end-to-end ------------------------------------------

struct ServedModel {
  std::string id;
  std::string path;
  ModelSpec spec;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> golden;
};

// Builds, calibrates, serializes, and golden-runs a small model zoo entry.
ServedModel make_served(const std::string& id, const ModelSpec& spec,
                        unsigned seed, int n_samples = 4) {
  ServedModel m;
  m.id = id;
  m.path = "test_gateway_" + id + ".apnn";
  m.spec = spec;
  ApnnNetwork net = ApnnNetwork::random(spec, 1, 2, seed);
  Rng rng(seed + 1);
  Tensor<std::int32_t> calib({2, spec.input.h, spec.input.w, spec.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);
  EXPECT_TRUE(save_network(net, m.path));
  InferenceSession session(net, dev());
  for (int i = 0; i < n_samples; ++i) {
    Tensor<std::int32_t> s({1, spec.input.h, spec.input.w, spec.input.c});
    s.randomize(rng, 0, 255);
    m.golden.push_back(session.run(s));
    m.samples.push_back(std::move(s));
  }
  return m;
}

void expect_bit_exact(const Tensor<std::int32_t>& got,
                      const Tensor<std::int32_t>& want) {
  ASSERT_EQ(got.numel(), want.numel());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "logit " << i;
  }
}

gw::ModelConfig config_for(const ServedModel& m) {
  gw::ModelConfig cfg;
  cfg.id = m.id;
  cfg.path = m.path;
  cfg.max_batch = 4;
  cfg.batch_window_us = 100;
  return cfg;
}

class GatewayEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    mini_ = make_served("mini", mini_resnet(4, 8, 10), 11);
    vgg_ = make_served("vgg", vgg_lite(8, 10), 22);
    registry_ = std::make_unique<gw::ModelRegistry>(dev(), 2);
    registry_->load(config_for(mini_));
    registry_->load(config_for(vgg_));
    gateway_ = std::make_unique<gw::Gateway>(*registry_);
  }
  void TearDown() override {
    gateway_.reset();
    registry_.reset();
    std::remove(mini_.path.c_str());
    std::remove(vgg_.path.c_str());
  }

  ServedModel mini_, vgg_;
  std::unique_ptr<gw::ModelRegistry> registry_;
  std::unique_ptr<gw::Gateway> gateway_;
};

TEST_F(GatewayEndToEnd, RoutesByModelIdBitExactly) {
  wire::Client client(gateway_->port());
  for (std::size_t i = 0; i < mini_.samples.size(); ++i) {
    expect_bit_exact(client.infer("mini", mini_.samples[i]), mini_.golden[i]);
    expect_bit_exact(client.infer("vgg", vgg_.samples[i]), vgg_.golden[i]);
  }
  const auto models = client.list();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0].id, "mini");
  EXPECT_EQ(models[0].c, 4);
  EXPECT_EQ(models[0].classes, 10u);
  EXPECT_EQ(models[1].id, "vgg");
  EXPECT_EQ(models[1].c, 3);
  client.ping();
}

TEST_F(GatewayEndToEnd, BatchedInferMatchesPerSample) {
  wire::Client client(gateway_->port());
  wire::InferRequest req;
  req.model = "mini";
  req.count = static_cast<std::uint16_t>(mini_.samples.size());
  req.h = static_cast<std::uint16_t>(mini_.spec.input.h);
  req.w = static_cast<std::uint16_t>(mini_.spec.input.w);
  req.c = static_cast<std::uint16_t>(mini_.spec.input.c);
  for (const auto& s : mini_.samples) {
    const auto bytes = wire::pack_sample_u8(s);
    req.samples.insert(req.samples.end(), bytes.begin(), bytes.end());
  }
  const wire::InferResponse resp = client.infer_batch(req);
  ASSERT_EQ(resp.count, req.count);
  ASSERT_EQ(resp.classes, 10u);
  for (std::size_t i = 0; i < mini_.samples.size(); ++i) {
    for (std::uint32_t j = 0; j < resp.classes; ++j) {
      EXPECT_EQ(resp.logits[i * resp.classes + j], mini_.golden[i][j]);
    }
  }
}

TEST_F(GatewayEndToEnd, TypedErrorsOverTheWire) {
  wire::Client client(gateway_->port());
  try {
    client.infer("nope", mini_.samples[0]);
    FAIL() << "unknown model must fail";
  } catch (const wire::RemoteError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kUnknownModel);
  }
  // Wrong dims for the routed model: the server's admission validation
  // travels the wire as INVALID_SAMPLE.
  Tensor<std::int32_t> wrong({1, 2, 2, 1});
  try {
    client.infer("mini", wrong);
    FAIL() << "wrong dims must fail";
  } catch (const wire::RemoteError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kInvalidSample);
  }
  // The connection survives typed errors.
  expect_bit_exact(client.infer("mini", mini_.samples[0]), mini_.golden[0]);
}

TEST_F(GatewayEndToEnd, MalformedFrameAnswersErrorAndCloses) {
  net::Socket sock = net::connect_loopback(gateway_->port());
  // First byte 'A' routes to the binary server, then the magic goes bad.
  const char garbage[12] = {'A', 'X', 'X', 'X', 0, 0, 0, 0, 0, 0, 0, 0};
  sock.write_all(garbage, sizeof(garbage));
  wire::Frame f;
  ASSERT_TRUE(wire::read_frame(sock, &f, wire::kDefaultMaxFrameBytes));
  ASSERT_EQ(f.type, wire::MsgType::kError);
  const wire::ErrorResponse err = wire::decode_error_response(f.payload);
  EXPECT_EQ(err.code, wire::WireError::kMalformedFrame);
  // ...and the gateway closes: the next read sees EOF.
  EXPECT_FALSE(wire::read_frame(sock, &f, wire::kDefaultMaxFrameBytes));
}

TEST_F(GatewayEndToEnd, ForeignVersionRejectedOverTheWire) {
  net::Socket sock = net::connect_loopback(gateway_->port());
  std::vector<std::uint8_t> frame =
      wire::encode_frame(wire::MsgType::kPing, {});
  frame[4] = 9;  // foreign protocol version
  sock.write_all(frame.data(), frame.size());
  wire::Frame f;
  ASSERT_TRUE(wire::read_frame(sock, &f, wire::kDefaultMaxFrameBytes));
  ASSERT_EQ(f.type, wire::MsgType::kError);
  EXPECT_EQ(wire::decode_error_response(f.payload).code,
            wire::WireError::kUnsupportedVersion);
}

TEST_F(GatewayEndToEnd, JsonLineProtocol) {
  net::Socket sock = net::connect_loopback(gateway_->port());
  auto ask = [&sock](const std::string& line) {
    sock.write_all(line.data(), line.size());
    std::string reply;
    char ch;
    while (sock.read_exact(&ch, 1) && ch != '\n') reply.push_back(ch);
    return reply;
  };
  EXPECT_EQ(ask("{\"op\":\"ping\"}\n"), "{\"ok\":true}");
  EXPECT_NE(ask("{\"op\":\"list\"}\n").find("\"id\":\"mini\""),
            std::string::npos);
  // A malformed line answers an error and keeps the connection.
  EXPECT_NE(ask("{oops\n").find("\"code\":\"MALFORMED_FRAME\""),
            std::string::npos);
  // An unknown op is typed too.
  EXPECT_NE(ask("{\"op\":\"frobnicate\"}\n").find("UNSUPPORTED_TYPE"),
            std::string::npos);
  // A full infer round trip, checked against the golden logits.
  std::string req = "{\"op\":\"infer\",\"model\":\"vgg\",\"h\":8,\"w\":8,"
                    "\"c\":3,\"sample\":[";
  const Tensor<std::int32_t>& s = vgg_.samples[0];
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    req += (i == 0 ? "" : ",") + std::to_string(s[i]);
  }
  req += "]}\n";
  const std::string reply = ask(req);
  std::string want = "\"logits\":[";
  const Tensor<std::int32_t>& g = vgg_.golden[0];
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    want += (i == 0 ? "" : ",") + std::to_string(g[i]);
  }
  want += "]";
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  EXPECT_NE(reply.find(want), std::string::npos) << reply;
}

TEST_F(GatewayEndToEnd, HttpStatsAndHealth) {
  auto get = [this](const std::string& path) {
    net::Socket sock = net::connect_loopback(gateway_->port());
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    sock.write_all(req.data(), req.size());
    std::string resp;
    char chunk[4096];
    for (std::size_t got; (got = sock.read_some(chunk, sizeof(chunk))) > 0;) {
      resp.append(chunk, got);
    }
    return resp;
  };
  // Serve some traffic first so the counters are nonzero.
  wire::Client client(gateway_->port());
  client.infer("mini", mini_.samples[0]);

  const std::string stats = get("/stats");
  EXPECT_NE(stats.find("200 OK"), std::string::npos);
  for (const char* metric :
       {"apnn_gateway_connections_total", "apnn_gateway_models 2",
        "apnn_model_requests_total{model=\"mini\"}",
        "apnn_model_generation{model=\"vgg\"}",
        "apnn_model_latency_ms{model=\"mini\",quantile=\"0.99\"}",
        "apnn_model_replica_health"}) {
    EXPECT_NE(stats.find(metric), std::string::npos) << metric;
  }
  EXPECT_NE(get("/healthz").find("ok"), std::string::npos);
  EXPECT_NE(get("/nope").find("404"), std::string::npos);
}

TEST_F(GatewayEndToEnd, HotReloadDropsNothingOnOtherModel) {
  const std::uint32_t gen_before = registry_->list()[0].generation;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> served{0};
  // Continuous traffic on vgg from two client connections while mini is
  // reloaded underneath them.
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      wire::Client client(gateway_->port());
      for (int i = 0; !stop.load(); ++i) {
        const std::size_t s = static_cast<std::size_t>(i + t) %
                              vgg_.samples.size();
        try {
          const Tensor<std::int32_t> logits =
              client.infer("vgg", vgg_.samples[s]);
          bool match = logits.numel() == vgg_.golden[s].numel();
          for (std::int64_t j = 0; match && j < logits.numel(); ++j) {
            match = logits[j] == vgg_.golden[s][j];
          }
          if (!match) failures.fetch_add(1);
          served.fetch_add(1);
        } catch (const Error&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  wire::Client admin(gateway_->port());
  for (int r = 0; r < 3; ++r) admin.reload("mini");
  stop.store(true);
  for (auto& t : traffic) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(served.load(), 0);
  // The reloads bumped mini's generation (a global counter, so only
  // monotonicity is pinned) and it still answers bit-exactly.
  const auto models = admin.list();
  EXPECT_GT(models[0].generation, gen_before);
  expect_bit_exact(admin.infer("mini", mini_.samples[0]), mini_.golden[0]);
}

TEST_F(GatewayEndToEnd, UnloadRemovesOnlyThatModel) {
  wire::Client client(gateway_->port());
  client.unload("mini");
  EXPECT_EQ(registry_->size(), 1u);
  try {
    client.infer("mini", mini_.samples[0]);
    FAIL() << "unloaded model must be unrouted";
  } catch (const wire::RemoteError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kUnknownModel);
  }
  expect_bit_exact(client.infer("vgg", vgg_.samples[0]), vgg_.golden[0]);
  // load() puts it back under a fresh generation.
  client.load("mini", mini_.path);
  expect_bit_exact(client.infer("mini", mini_.samples[0]), mini_.golden[0]);
}

TEST_F(GatewayEndToEnd, AdminOpsCanBeDisabled) {
  gw::GatewayOptions opts;
  opts.allow_admin = false;
  gw::Gateway locked(*registry_, opts);
  wire::Client client(locked.port());
  try {
    client.reload("mini");
    FAIL() << "admin op must be refused";
  } catch (const wire::RemoteError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kUnsupportedType);
  }
  // Serving is unaffected.
  expect_bit_exact(client.infer("mini", mini_.samples[0]), mini_.golden[0]);
}

TEST_F(GatewayEndToEnd, ShutdownWithConnectionsOpen) {
  wire::Client client(gateway_->port());
  client.ping();
  gateway_->shutdown();   // must not hang on the open connection
  gateway_->shutdown();   // idempotent
  EXPECT_THROW(net::connect_loopback(gateway_->port()), Error);
}


// --- protocol v2: variable-length sequences over the wire --------------------

class BucketedGatewayEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    // One bucketed transformer next to one shape-static conv model, so the
    // tests can probe both sides of the seq_len admission rules.
    attn_spec_ = tiny_transformer();
    attn_net_ = std::make_unique<ApnnNetwork>(
        ApnnNetwork::random(attn_spec_, 1, 2, 33));
    Rng rng(34);
    Tensor<std::int32_t> calib(
        {2, attn_spec_.input.h, attn_spec_.input.w, attn_spec_.input.c});
    calib.randomize(rng, 0, 255);
    attn_net_->calibrate(calib);
    attn_path_ = "test_gateway_attn.apnn";
    ASSERT_TRUE(save_network(*attn_net_, attn_path_));
    // The session borrows the network, so the fixture must outlive it.
    golden_ = std::make_unique<InferenceSession>(*attn_net_, dev());

    mini_ = make_served("mini", mini_resnet(4, 8, 10), 44);
    registry_ = std::make_unique<gw::ModelRegistry>(dev(), 2);
    gw::ModelConfig attn_cfg;
    attn_cfg.id = "attn";
    attn_cfg.path = attn_path_;
    attn_cfg.max_batch = 4;
    attn_cfg.batch_window_us = 100;
    registry_->load(attn_cfg);
    registry_->load(config_for(mini_));
    gateway_ = std::make_unique<gw::Gateway>(*registry_);
  }
  void TearDown() override {
    gateway_.reset();
    registry_.reset();
    golden_.reset();
    attn_net_.reset();
    std::remove(attn_path_.c_str());
    std::remove(mini_.path.c_str());
  }

  ModelSpec attn_spec_;
  std::unique_ptr<ApnnNetwork> attn_net_;
  std::string attn_path_;
  std::unique_ptr<InferenceSession> golden_;
  ServedModel mini_;
  std::unique_ptr<gw::ModelRegistry> registry_;
  std::unique_ptr<gw::Gateway> gateway_;
};

TEST_F(BucketedGatewayEndToEnd, VariableSeqInferBitExact) {
  // seq_len-declared samples of assorted lengths — on-bucket, off-bucket,
  // and the exact calibration shape — all route through the bucketed pool
  // and match a local session on the same tokens.
  wire::Client client(gateway_->port());
  Rng rng(55);
  for (const std::int64_t seq :
       {std::int64_t{20}, std::int64_t{32}, std::int64_t{64},
        std::int64_t{100}, std::int64_t{512}}) {
    Tensor<std::int32_t> tokens({seq, std::int64_t{1}, attn_spec_.input.c});
    tokens.randomize(rng, 0, 255);
    Tensor<std::int32_t> local({1, seq, std::int64_t{1},
                                attn_spec_.input.c});
    for (std::int64_t i = 0; i < tokens.numel(); ++i) local[i] = tokens[i];
    expect_bit_exact(client.infer("attn", tokens, 0, /*variable_seq=*/true),
                     golden_->run(local));
  }
}

TEST_F(BucketedGatewayEndToEnd, SeqLenOnStaticModelRejected) {
  // Declaring seq_len against a shape-static model is a protocol misuse,
  // not a bad sample: the wire answer is MALFORMED_FRAME.
  wire::Client client(gateway_->port());
  try {
    client.infer("mini", mini_.samples[0], 0, /*variable_seq=*/true);
    FAIL() << "seq_len on a static model must fail";
  } catch (const wire::RemoteError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kMalformedFrame);
  }
  // The connection survives and plain inference still works.
  expect_bit_exact(client.infer("mini", mini_.samples[0]), mini_.golden[0]);
}

TEST_F(BucketedGatewayEndToEnd, UndeclaredShortSampleRejected) {
  // Without a seq_len declaration even a bucketed model demands the exact
  // calibration shape — a v1-style client cannot pad wrong silently.
  wire::Client client(gateway_->port());
  Rng rng(66);
  Tensor<std::int32_t> short_sample(
      {std::int64_t{20}, std::int64_t{1}, attn_spec_.input.c});
  short_sample.randomize(rng, 0, 255);
  try {
    client.infer("attn", short_sample);
    FAIL() << "undeclared short sample must fail";
  } catch (const wire::RemoteError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kMalformedFrame);
  }
  // Over-long sequences are bad samples, not framing errors: they clear the
  // wire checks and die in the server's bucket admission.
  Tensor<std::int32_t> too_long(
      {std::int64_t{513}, std::int64_t{1}, attn_spec_.input.c});
  too_long.randomize(rng, 0, 255);
  try {
    client.infer("attn", too_long, 0, /*variable_seq=*/true);
    FAIL() << "seq beyond the largest bucket must fail";
  } catch (const wire::RemoteError& e) {
    EXPECT_EQ(e.code(), wire::WireError::kInvalidSample);
  }
}

}  // namespace
}  // namespace apnn::nn


#include <gtest/gtest.h>

#include <tuple>

#include "src/core/ap_bit.hpp"
#include "test_util.hpp"

namespace apnn::core {
namespace {

using apnn::testing::naive_gemm;
using apnn::testing::random_logical;
using apnn::testing::random_operand;

TEST(Operand, MakeAndRecoverLogical) {
  Rng rng(1);
  for (const auto& [enc, bits] :
       {std::pair{Encoding::kUnsigned01, 3}, {Encoding::kSignedPM1, 1},
        {Encoding::kTwosComplement, 4}}) {
    const Tensor<std::int32_t> logical = random_logical(rng, 6, 40, enc, bits);
    const ApOperand op = make_operand(logical, enc, bits);
    EXPECT_EQ(op.rows(), 6);
    EXPECT_EQ(op.cols(), 40);
    EXPECT_EQ(op.bits(), bits);
    EXPECT_EQ(operand_to_logical(op), logical);
  }
}

TEST(Operand, RejectsWrongArity) {
  Tensor<std::int32_t> bad({2, 2});
  bad.fill(1);
  EXPECT_THROW(make_operand(bad, Encoding::kSignedPM1, 2), apnn::Error);
}

// --- the Figure-2 single-tile template ---------------------------------------

TEST(ApBitTemplate, W1A2MatchesNaive) {
  Rng rng(2);
  const auto wl = random_logical(rng, 8, 128, Encoding::kSignedPM1, 1);
  const auto xl = random_logical(rng, 8, 128, Encoding::kUnsigned01, 2);
  const ApOperand w = make_operand(wl, Encoding::kSignedPM1, 1);
  const ApOperand x = make_operand(xl, Encoding::kUnsigned01, 2);
  EXPECT_EQ(ap_bit_template_tile(w, x), naive_gemm(wl, xl));
}

TEST(ApBitTemplate, RequiresExactTileShape) {
  Rng rng(3);
  const ApOperand w = random_operand(rng, 8, 64, Encoding::kUnsigned01, 1);
  const ApOperand x = random_operand(rng, 8, 64, Encoding::kUnsigned01, 1);
  EXPECT_THROW(ap_bit_template_tile(w, x), apnn::Error);
}

class TemplateBitsTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TemplateBitsTest, UnsignedMatchesNaive) {
  const auto [p, q] = GetParam();
  Rng rng(p * 10 + q);
  const auto wl = random_logical(rng, 8, 128, Encoding::kUnsigned01, p);
  const auto xl = random_logical(rng, 8, 128, Encoding::kUnsigned01, q);
  const ApOperand w = make_operand(wl, Encoding::kUnsigned01, p);
  const ApOperand x = make_operand(xl, Encoding::kUnsigned01, q);
  EXPECT_EQ(ap_bit_template_tile(w, x), naive_gemm(wl, xl));
}

INSTANTIATE_TEST_SUITE_P(PQ, TemplateBitsTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 4, 8)));

// --- the reference GEMM across all encodings and shapes -----------------------

struct RefCase {
  Encoding w_enc;
  int p;
  Encoding x_enc;
  int q;
  std::int64_t m, n, k;
};

class ReferenceGemmTest : public ::testing::TestWithParam<RefCase> {};

TEST_P(ReferenceGemmTest, MatchesNaiveIntegerGemm) {
  const RefCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.m * 1000 + c.n * 100 + c.k + c.p * 7 +
                                     c.q));
  const auto wl = random_logical(rng, c.m, c.k, c.w_enc, c.p);
  const auto xl = random_logical(rng, c.n, c.k, c.x_enc, c.q);
  const ApOperand w = make_operand(wl, c.w_enc, c.p);
  const ApOperand x = make_operand(xl, c.x_enc, c.q);
  EXPECT_EQ(ap_gemm_reference(w, x), naive_gemm(wl, xl));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ReferenceGemmTest,
    ::testing::Values(
        // Case I, assorted bit widths and ragged shapes.
        RefCase{Encoding::kUnsigned01, 1, Encoding::kUnsigned01, 1, 4, 5, 30},
        RefCase{Encoding::kUnsigned01, 2, Encoding::kUnsigned01, 2, 8, 8, 128},
        RefCase{Encoding::kUnsigned01, 3, Encoding::kUnsigned01, 5, 7, 9, 200},
        RefCase{Encoding::kUnsigned01, 4, Encoding::kUnsigned01, 4, 16, 3, 64},
        RefCase{Encoding::kUnsigned01, 8, Encoding::kUnsigned01, 8, 3, 3, 77},
        // Case II (BNN).
        RefCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 9, 6, 130},
        RefCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 5, 5, 1},
        // Case III (the common wXaY networks).
        RefCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 2, 6, 10, 90},
        RefCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 8, 4, 4, 256},
        // Two's-complement extension.
        RefCase{Encoding::kTwosComplement, 4, Encoding::kUnsigned01, 2, 5, 6,
                50},
        RefCase{Encoding::kTwosComplement, 2, Encoding::kUnsigned01, 3, 8, 8,
                128}));

TEST(ReferenceGemm, RejectsKMismatch) {
  Rng rng(5);
  const ApOperand w = random_operand(rng, 4, 32, Encoding::kUnsigned01, 2);
  const ApOperand x = random_operand(rng, 4, 64, Encoding::kUnsigned01, 2);
  EXPECT_THROW(ap_gemm_reference(w, x), apnn::Error);
}

}  // namespace
}  // namespace apnn::core

// Invariants of the batched-kernel geometry (apmm_internal) and a few cost
// model branches the main suites don't reach.
#include <gtest/gtest.h>

#include "src/core/apmm_internal.hpp"
#include "src/tcsim/cost_model.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn::core::internal {
namespace {

class GeometryTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::int64_t, int, int>> {};

TEST_P(GeometryTest, BlocksTileTheOutputExactly) {
  const auto [m, n, k, p, q] = GetParam();
  TileConfig tile;
  assign_warp_grid(tile);
  const BatchedGeometry g = make_geometry(m, n, k, p, q, tile);
  // Every output element belongs to exactly one block.
  EXPECT_GE(g.grid_m * g.om, m);
  EXPECT_GE(g.grid_n * g.on, n);
  EXPECT_LT((g.grid_m - 1) * g.om, m);
  EXPECT_LT((g.grid_n - 1) * g.on, n);
  // Virtual tile covers all plane partials of its output elements.
  EXPECT_EQ(g.vtm, g.om * p);
  EXPECT_EQ(g.vtn, g.on * q);
  EXPECT_EQ(g.vtm8 % 8, 0);
  EXPECT_EQ(g.vtn8 % 8, 0);
  EXPECT_GE(g.vtm8, g.vtm);
  EXPECT_LT(g.vtm8 - g.vtm, 8);
  // K slabs cover K with 128-bit alignment.
  EXPECT_GE(g.ktiles * 128, k);
  EXPECT_LT((g.ktiles - 1) * 128, k);
  EXPECT_EQ(g.row_words, bitops::padded_words(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryTest,
    ::testing::Values(std::make_tuple(64, 64, 128, 1, 2),
                      std::make_tuple(1, 1, 1, 1, 1),
                      std::make_tuple(1000, 3, 77, 3, 5),
                      std::make_tuple(17, 1024, 4096, 8, 8),
                      std::make_tuple(64, 1024, 1024, 2, 8),
                      std::make_tuple(128, 128, 129, 5, 1)));

TEST(Geometry, OmShrinksWithPlaneCount) {
  TileConfig tile;
  tile.bm = 64;
  tile.bn = 64;
  assign_warp_grid(tile);
  const auto g1 = make_geometry(256, 256, 512, 1, 1, tile);
  const auto g8 = make_geometry(256, 256, 512, 8, 8, tile);
  EXPECT_EQ(g1.om, 64);
  EXPECT_EQ(g8.om, 8);  // 64 / 8 planes
  EXPECT_EQ(g8.vtm, 64);
  // More planes -> more blocks for the same output.
  EXPECT_GT(g8.blocks, g1.blocks);
}

TEST(Geometry, ManyPlanesClampToOneOutputPerBlockRow) {
  TileConfig tile;
  tile.bm = 16;
  tile.bn = 16;
  assign_warp_grid(tile);
  // p = 32 > bm: om clamps to 1 and the virtual tile still holds all planes.
  const auto g = make_geometry(8, 8, 128, 8, 8, tile);
  EXPECT_EQ(g.om, 2);  // 16 / 8
  EXPECT_EQ(g.on, 2);
  EXPECT_EQ(g.vtm, 16);
}

TEST(BatchedProfile, LoadBytesScaleWithKtiles) {
  TileConfig tile;
  assign_warp_grid(tile);
  ApmmOptions opts;
  const OpSelection sel =
      select_operator({Encoding::kSignedPM1, Encoding::kUnsigned01});
  const auto g1 = make_geometry(64, 64, 128, 1, 2, tile);
  const auto g4 = make_geometry(64, 64, 512, 1, 2, tile);
  const auto p1 = batched_profile(g1, sel, opts, {}, "a");
  const auto p4 = batched_profile(g4, sel, opts, {}, "b");
  EXPECT_EQ(p4.counters.global_load_bytes, 4 * p1.counters.global_load_bytes);
  EXPECT_EQ(p4.counters.bmma_b1, 4 * p1.counters.bmma_b1);
}

TEST(BatchedProfile, StoreScaleReducesOutputTraffic) {
  TileConfig tile;
  assign_warp_grid(tile);
  ApmmOptions opts;
  const OpSelection sel =
      select_operator({Encoding::kUnsigned01, Encoding::kUnsigned01});
  const auto g = make_geometry(128, 256, 512, 1, 2, tile);
  const auto p1 = batched_profile(g, sel, opts, {}, "x", 1);
  const auto p4 = batched_profile(g, sel, opts, {}, "x", 4);
  EXPECT_GT(p1.counters.global_store_bytes, p4.counters.global_store_bytes);
}

TEST(CostModel, SharedMemoryBoundKernel) {
  // A kernel with huge shared traffic and nothing else must be priced by
  // the shared-memory term.
  tcsim::CostModel cm(tcsim::rtx3090());
  tcsim::KernelProfile k;
  k.family = "apnn";
  k.grid_blocks = 82;
  k.counters.kernel_launches = 1;
  k.counters.shared_load_bytes = std::int64_t{1} << 30;
  const auto est = cm.estimate(k);
  EXPECT_GT(est.shared_mem_us, 0);
  EXPECT_NEAR(est.total_us, est.launch_us + est.shared_mem_us, 1e-9);
}

TEST(CostModel, ElementwiseKernelIsBandwidthBound) {
  tcsim::CostModel cm(tcsim::rtx3090());
  tcsim::KernelProfile k;
  k.family = "apnn";
  k.grid_blocks = 1024;
  k.ci = 0;  // elementwise
  k.counters.kernel_launches = 1;
  k.counters.global_load_bytes = 64 << 20;
  k.counters.global_store_bytes = 64 << 20;
  k.counters.alu_epilogue_ops = 1 << 20;  // negligible next to 128 MiB
  const auto est = cm.estimate(k);
  EXPECT_GT(est.global_mem_us, est.alu_us);
  EXPECT_NEAR(est.total_us, est.launch_us + est.global_mem_us, 1e-9);
}

}  // namespace
}  // namespace apnn::core::internal

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/layout/bit_transpose.hpp"
#include "src/layout/im2col.hpp"
#include "src/layout/packed_activations.hpp"
#include "src/layout/tensor.hpp"

namespace apnn::layout {
namespace {

// --- Tensor ------------------------------------------------------------------

TEST(Tensor, ShapeAndIndexing) {
  Tensor<std::int32_t> t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.rank(), 3);
  t(1, 2, 3) = 42;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 42);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor<std::int32_t> t({2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<std::int32_t>(i);
  const auto r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_EQ(r[i], i);
  EXPECT_THROW(t.reshaped({5, 5}), apnn::Error);
}

TEST(Tensor, RandomizeRanges) {
  apnn::Rng rng(3);
  Tensor<std::int32_t> t({100});
  t.randomize(rng, 0, 7);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], 0);
    EXPECT_LE(t[i], 7);
  }
  Tensor<float> f({100});
  f.randomize(rng, -1.f, 1.f);
  for (std::int64_t i = 0; i < f.numel(); ++i) {
    EXPECT_GE(f[i], -1.f);
    EXPECT_LT(f[i], 1.f);
  }
}

// --- layout transforms ---------------------------------------------------------

TEST(Layouts, NchwNhwcRoundTrip) {
  apnn::Rng rng(4);
  Tensor<std::int32_t> nchw({2, 3, 4, 5});
  nchw.randomize(rng, 0, 100);
  const auto nhwc = nchw_to_nhwc(nchw);
  EXPECT_EQ(nhwc.shape(), (std::vector<std::int64_t>{2, 4, 5, 3}));
  EXPECT_EQ(nhwc_to_nchw(nhwc), nchw);
  EXPECT_EQ(nhwc(1, 2, 3, 0), nchw(1, 0, 2, 3));
}

// --- packed activations ---------------------------------------------------------

class PackedActTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedActTest, PackUnpackRoundTrip) {
  const int bits = GetParam();
  apnn::Rng rng(bits);
  Tensor<std::int32_t> nhwc({2, 5, 6, 7});
  nhwc.randomize(rng, 0, (1 << bits) - 1);
  const PackedActivations p =
      pack_activations(nhwc, DenseLayout::kNHWC, bits);
  EXPECT_EQ(p.bits, bits);
  EXPECT_EQ(static_cast<int>(p.planes.size()), bits);
  EXPECT_EQ(p.spatial_rows(), 2 * 5 * 6);
  EXPECT_EQ(unpack_activations(p), nhwc);
}

INSTANTIATE_TEST_SUITE_P(Bits, PackedActTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(PackedActivations, NchwInputMatchesNhwc) {
  apnn::Rng rng(9);
  Tensor<std::int32_t> nchw({2, 3, 4, 4});
  nchw.randomize(rng, 0, 3);
  const auto from_nchw = pack_activations(nchw, DenseLayout::kNCHW, 2);
  const auto from_nhwc =
      pack_activations(nchw_to_nhwc(nchw), DenseLayout::kNHWC, 2);
  EXPECT_EQ(unpack_activations(from_nchw), unpack_activations(from_nhwc));
}

TEST(PackedActivations, ChannelMajorRowsAreContiguous) {
  // All channels of one spatial position live in one row — the §4.2a
  // coalescing property.
  Tensor<std::int32_t> nhwc({1, 2, 2, 9});
  for (std::int64_t i = 0; i < nhwc.numel(); ++i) {
    nhwc[i] = static_cast<std::int32_t>(i % 2);
  }
  const auto p = pack_activations(nhwc, DenseLayout::kNHWC, 1);
  EXPECT_EQ(p.planes[0].rows(), 4);  // spatial positions
  EXPECT_EQ(p.planes[0].cols(), 9);  // channels within a row
}

TEST(PackedActivations, PayloadBytesMatchBitWidth) {
  Tensor<std::int32_t> nhwc({1, 4, 4, 16});
  const auto p2 = pack_activations(nhwc, DenseLayout::kNHWC, 2);
  const auto p8 = pack_activations(nhwc, DenseLayout::kNHWC, 8);
  EXPECT_EQ(p2.payload_bytes() * 4, p8.payload_bytes());
  EXPECT_EQ(p2.payload_bytes(), 2 * 16 * (16 / 8));  // 2 planes, 16 rows, 2B
}

// --- conv geometry ---------------------------------------------------------------

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g;
  g.batch = 2;
  g.in_c = 3;
  g.in_h = 16;
  g.in_w = 16;
  g.out_c = 8;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  EXPECT_EQ(g.out_h(), 16);
  EXPECT_EQ(g.out_w(), 16);
  EXPECT_EQ(g.gemm_m(), 8);
  EXPECT_EQ(g.gemm_n(), 2 * 16 * 16);
  EXPECT_EQ(g.gemm_k(), 27);
  g.stride = 2;
  EXPECT_EQ(g.out_h(), 8);
  g.stride = 1;
  g.pad = 0;
  EXPECT_EQ(g.out_h(), 14);
}

// --- im2col -----------------------------------------------------------------------

ConvGeometry small_geom(int kernel, int stride, int pad) {
  ConvGeometry g;
  g.batch = 2;
  g.in_c = 5;
  g.in_h = 7;
  g.in_w = 6;
  g.out_c = 4;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  return g;
}

class Im2colTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Im2colTest, BitsMatchDense) {
  const auto [kernel, stride, pad] = GetParam();
  const ConvGeometry g = small_geom(kernel, stride, pad);
  if (g.out_h() <= 0 || g.out_w() <= 0) GTEST_SKIP();
  apnn::Rng rng(kernel * 100 + stride * 10 + pad);
  Tensor<std::int32_t> nhwc({g.batch, g.in_h, g.in_w, g.in_c});
  nhwc.randomize(rng, 0, 1);

  const auto packed = pack_activations(nhwc, DenseLayout::kNHWC, 1);
  const bitops::BitMatrix bits = im2col_bits(packed.planes[0], g, false);
  const Tensor<std::int32_t> dense = im2col_dense<std::int32_t>(nhwc, g, 0);

  ASSERT_EQ(bits.rows(), dense.dim(0));
  ASSERT_EQ(bits.cols(), dense.dim(1));
  for (std::int64_t r = 0; r < bits.rows(); ++r) {
    for (std::int64_t c = 0; c < bits.cols(); ++c) {
      ASSERT_EQ(bits.get(r, c) ? 1 : 0, dense(r, c))
          << "r=" << r << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colTest,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(3, 1, 1),
                      std::make_tuple(3, 2, 1), std::make_tuple(5, 1, 2),
                      std::make_tuple(3, 1, 0), std::make_tuple(5, 2, 2)));

TEST(Im2col, PadOneFillsOutOfFrame) {
  ConvGeometry g = small_geom(3, 1, 1);
  Tensor<std::int32_t> nhwc({g.batch, g.in_h, g.in_w, g.in_c});
  nhwc.fill(0);  // image all zero; only padding can contribute ones
  const auto packed = pack_activations(nhwc, DenseLayout::kNHWC, 1);
  const bitops::BitMatrix bits = im2col_bits(packed.planes[0], g, true);
  // Top-left output position: the (kh=0, *) taps are out of frame.
  std::int64_t ones = 0;
  for (std::int64_t c = 0; c < bits.cols(); ++c) ones += bits.get(0, c);
  // 3 taps of row kh=0 plus tap (1,0) and (2,0): 5 taps * 5 channels.
  EXPECT_EQ(ones, 5 * g.in_c);
}

TEST(Im2col, InteriorIgnoresPadValue) {
  ConvGeometry g = small_geom(3, 1, 1);
  apnn::Rng rng(5);
  Tensor<std::int32_t> nhwc({g.batch, g.in_h, g.in_w, g.in_c});
  nhwc.randomize(rng, 0, 1);
  const auto packed = pack_activations(nhwc, DenseLayout::kNHWC, 1);
  const auto pad0 = im2col_bits(packed.planes[0], g, false);
  const auto pad1 = im2col_bits(packed.planes[0], g, true);
  // An interior output position touches no padding: rows must agree.
  const std::int64_t row = 1 * g.out_w() + 2;  // (oy=1, ox=2) of batch 0
  for (std::int64_t c = 0; c < pad0.cols(); ++c) {
    EXPECT_EQ(pad0.get(row, c), pad1.get(row, c));
  }
}


// --- bit-matrix transpose ----------------------------------------------------

TEST(BitTranspose, PlanesMatchNaiveGetSet) {
  // The word-granular tile kernel against the bit-by-bit loop it replaced,
  // across shapes that hit partial tiles on both axes.
  Rng rng(77);
  for (const auto [rows, cols] :
       {std::pair<std::int64_t, std::int64_t>{64, 64},
        {1, 1},
        {63, 65},
        {128, 37},
        {200, 130}}) {
    for (const int bits : {1, 2, 3}) {
      Tensor<std::int32_t> vals({rows, cols});
      vals.randomize(rng, 0, (1 << bits) - 1);
      const bitops::BitPlanes src =
          bitops::decompose(vals.data(), rows, cols, bits);
      bitops::BitPlanes fast;
      transpose_planes(src, fast);
      ASSERT_EQ(fast.rows, cols);
      ASSERT_EQ(fast.cols, rows);
      ASSERT_EQ(fast.bits, bits);
      for (int t = 0; t < bits; ++t) {
        const bitops::BitMatrix& s = src.planes[static_cast<std::size_t>(t)];
        const bitops::BitMatrix& d = fast.planes[static_cast<std::size_t>(t)];
        for (std::int64_t r = 0; r < rows; ++r) {
          for (std::int64_t c = 0; c < cols; ++c) {
            ASSERT_EQ(d.get(c, r), s.get(r, c))
                << rows << "x" << cols << " bit " << t << " (" << r << ","
                << c << ")";
          }
        }
        // Padding invariant: every bit past the logical columns stays zero.
        for (std::int64_t r = 0; r < cols; ++r) {
          for (std::int64_t c = rows; c < ((rows + 63) / 64) * 64; ++c) {
            ASSERT_FALSE(d.get(r, c)) << "padding bit set at (" << r << ","
                                      << c << ")";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace apnn::layout

// Pins the staged cache-blocked microkernel pipeline bit-exact against the
// scalar dot-product references and the dense golden models, including the
// shapes that provoke the packed-output word race the seed had.
#include <gtest/gtest.h>

#include <vector>

#include "src/baselines/gemm.hpp"
#include "src/bitops/bit_matrix.hpp"
#include "src/core/apmm.hpp"
#include "src/core/apmm_internal.hpp"
#include "src/core/microkernel.hpp"
#include "src/layout/im2col.hpp"
#include "src/layout/packed_activations.hpp"
#include "src/parallel/scratch.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tcsim/device_spec.hpp"
#include "test_util.hpp"

namespace apnn::core {
namespace {

using apnn::testing::naive_gemm;
using apnn::testing::random_logical;
using bitops::BitMatrix;
using internal::make_geometry;

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

std::int64_t scalar_dot(tcsim::BitOp op, const std::uint64_t* a,
                        const std::uint64_t* b, std::int64_t words) {
  return op == tcsim::BitOp::kXor ? bitops::dot_xor_popc(a, b, words)
                                  : bitops::dot_and_popc(a, b, words);
}

// --- block_bitgemm vs scalar popc dot products ----------------------------

struct BlockShape {
  std::int64_t rows8, cols8, k_bits;
};

class BlockBitgemm
    : public ::testing::TestWithParam<std::tuple<tcsim::BitOp, BlockShape>> {};

TEST_P(BlockBitgemm, MatchesScalarDotProducts) {
  const auto [op, shape] = GetParam();
  Rng rng(shape.rows8 * 131 + shape.cols8 * 17 + shape.k_bits);
  BitMatrix a(shape.rows8, shape.k_bits), b(shape.cols8, shape.k_bits);
  a.randomize(rng);
  b.randomize(rng);
  const std::int64_t words = a.row_words();

  // Mark a few rows as virtual padding (nullptr) like the batched kernel
  // does for out-of-range tile rows.
  std::vector<const std::uint64_t*> a_rows(
      static_cast<std::size_t>(shape.rows8));
  std::vector<const std::uint64_t*> b_rows(
      static_cast<std::size_t>(shape.cols8));
  for (std::int64_t i = 0; i < shape.rows8; ++i) {
    a_rows[static_cast<std::size_t>(i)] = i % 7 == 5 ? nullptr : a.row(i);
  }
  for (std::int64_t j = 0; j < shape.cols8; ++j) {
    b_rows[static_cast<std::size_t>(j)] = j % 5 == 3 ? nullptr : b.row(j);
  }

  parallel::ScratchArena arena;
  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(shape.rows8 * shape.cols8), 7);
  microkernel::block_bitgemm(op, a_rows.data(), shape.rows8, b_rows.data(),
                             shape.cols8, words, acc.data(), arena);

  const std::vector<std::uint64_t> zeros(static_cast<std::size_t>(words), 0);
  for (std::int64_t i = 0; i < shape.rows8; ++i) {
    const std::uint64_t* ar = a_rows[static_cast<std::size_t>(i)] != nullptr
                                  ? a_rows[static_cast<std::size_t>(i)]
                                  : zeros.data();
    for (std::int64_t j = 0; j < shape.cols8; ++j) {
      const std::uint64_t* br = b_rows[static_cast<std::size_t>(j)] != nullptr
                                    ? b_rows[static_cast<std::size_t>(j)]
                                    : zeros.data();
      // acc started at 7 — block_bitgemm accumulates, never overwrites.
      EXPECT_EQ(acc[static_cast<std::size_t>(i * shape.cols8 + j)],
                7 + scalar_dot(op, ar, br, words))
          << "(" << i << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockBitgemm,
    ::testing::Combine(
        ::testing::Values(tcsim::BitOp::kXor, tcsim::BitOp::kAnd),
        ::testing::Values(
            BlockShape{8, 8, 128},      // one bmma tile
            BlockShape{8, 8, 64},       // sub-slab K (padded row)
            BlockShape{16, 32, 1024},   // multiple tiles, single strip
            BlockShape{24, 8, 2048},    // exactly one full strip
            BlockShape{32, 16, 2111},   // strip + byte-chunk + scalar tails
            BlockShape{64, 64, 8192}    // several strips
            )));

TEST(TileStrip, Bmma128SlabMatchesScalar) {
  Rng rng(99);
  BitMatrix a(8, 256), b(8, 256);
  a.randomize(rng);
  b.randomize(rng);
  for (const auto op : {tcsim::BitOp::kXor, tcsim::BitOp::kAnd}) {
    std::int32_t acc[64] = {0};
    // Two 128-bit slabs through the public bmma entry point.
    tcsim::bmma_8x8x128(op, a.row(0), a.row_words(), b.row(0), b.row_words(),
                        acc);
    tcsim::bmma_8x8x128(op, a.row(0) + 2, a.row_words(), b.row(0) + 2,
                        b.row_words(), acc);
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_EQ(acc[i * 8 + j], scalar_dot(op, a.row(i), b.row(j), 4));
      }
    }
  }
}

// --- end-to-end equivalence on odd / non-tile-aligned shapes --------------

struct OddCase {
  Encoding w_enc;
  int p;
  Encoding x_enc;
  int q;
  std::int64_t m, n, k;
};

class MicrokernelOddShapes : public ::testing::TestWithParam<OddCase> {};

TEST_P(MicrokernelOddShapes, ApmmMatchesDenseReference) {
  const OddCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.m * 7919 + c.n * 104729 + c.k));
  const auto wl = random_logical(rng, c.m, c.k, c.w_enc, c.p);
  const auto xl = random_logical(rng, c.n, c.k, c.x_enc, c.q);
  const ApmmResult r = apmm(make_operand(wl, c.w_enc, c.p),
                            make_operand(xl, c.x_enc, c.q), dev());
  EXPECT_EQ(r.y, naive_gemm(wl, xl));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MicrokernelOddShapes,
    ::testing::Values(
        // Case I (0/1 x 0/1, AND), deliberately off every tile boundary.
        OddCase{Encoding::kUnsigned01, 2, Encoding::kUnsigned01, 3, 13, 17,
                129},
        OddCase{Encoding::kUnsigned01, 1, Encoding::kUnsigned01, 1, 1, 1, 1},
        OddCase{Encoding::kUnsigned01, 3, Encoding::kUnsigned01, 2, 67, 5,
                257},
        // Case II (±1 x ±1, XOR).
        OddCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 21, 35,
                100},
        OddCase{Encoding::kSignedPM1, 1, Encoding::kSignedPM1, 1, 130, 9,
                2113},
        // Case III (±1 x 0/1, AND on W^).
        OddCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 2, 33, 65,
                127},
        OddCase{Encoding::kSignedPM1, 1, Encoding::kUnsigned01, 4, 7, 129,
                500},
        // Two's-complement extension rides the Case I datapath.
        OddCase{Encoding::kTwosComplement, 4, Encoding::kUnsigned01, 2, 19,
                23, 222}));

TEST(MicrokernelEquivalence, MatchesInt8BaselineGemm) {
  // Cross-check against the independent baselines::gemm_int8 golden model
  // (imma tiles), not just the scalar naive_gemm.
  Rng rng(4242);
  const std::int64_t m = 24, n = 40, k = 160;
  const auto wl = random_logical(rng, m, k, Encoding::kUnsigned01, 2);
  const auto xl = random_logical(rng, n, k, Encoding::kUnsigned01, 2);
  Tensor<std::int8_t> a8({m, k}), b8({n, k});
  for (std::int64_t i = 0; i < wl.numel(); ++i) {
    a8[i] = static_cast<std::int8_t>(wl[i]);
  }
  for (std::int64_t i = 0; i < xl.numel(); ++i) {
    b8[i] = static_cast<std::int8_t>(xl[i]);
  }
  const Tensor<std::int32_t> ref = baselines::gemm_int8(a8, b8);
  const ApmmResult r = apmm(make_operand(wl, Encoding::kUnsigned01, 2),
                            make_operand(xl, Encoding::kUnsigned01, 2), dev());
  EXPECT_EQ(r.y, ref);
}

// --- quantized epilogue + the packed-output word race ---------------------

TEST(PackedOutputRace, NonWordAlignedBlocksMergeExactly) {
  // bm = 64 with p = 3 gives om = 21 output rows per block: packed output
  // words (64 output bits along m) straddle block boundaries, so adjacent
  // blocks read-modify-write the same std::uint64_t. The seed's unsynchronized
  // BitMatrix::set() lost bits here; the merge must be exact on every run.
  const int p = 3, q = 1;
  const std::int64_t m = 210, n = 96, k = 256;  // 10 m-blocks x 2 n-blocks
  Rng rng(777);
  const auto wl = random_logical(rng, m, k, Encoding::kUnsigned01, p);
  const auto xl = random_logical(rng, n, k, Encoding::kUnsigned01, q);
  const ApOperand w = make_operand(wl, Encoding::kUnsigned01, p);
  const ApOperand x = make_operand(xl, Encoding::kUnsigned01, q);

  Epilogue epi;
  epi.has_quant = true;
  epi.quant.bits = 2;
  epi.quant.scale = 64.0;
  epi.quant.zero_point = 0.0;

  ApmmOptions opts;
  opts.autotune = false;
  opts.tile.bm = 64;
  opts.tile.bn = 64;

  const Tensor<std::int32_t> ref = naive_gemm(wl, xl);
  ASSERT_EQ(make_geometry(w, x, opts.tile).om, 21);

  // Repeat: a race would make results flicker run to run.
  for (int rep = 0; rep < 5; ++rep) {
    const ApmmResult r = apmm(w, x, dev(), opts, epi);
    const std::vector<std::int32_t> codes = bitops::recompose(r.packed);
    for (std::int64_t mm = 0; mm < m; ++mm) {
      for (std::int64_t nn = 0; nn < n; ++nn) {
        const std::int32_t expect = quant::quantize_value(
            static_cast<float>(ref(mm, nn)), epi.quant);
        ASSERT_EQ(codes[static_cast<std::size_t>(nn * m + mm)], expect)
            << "rep " << rep << " m=" << mm << " n=" << nn;
      }
    }
  }
}

// --- window-gather staging source (im2col-free conv B panels) -------------

namespace {

layout::ConvGeometry gather_geom() {
  layout::ConvGeometry g;
  g.batch = 2;
  g.in_c = 7;  // deliberately not word-aligned: exercises the shifting copy
  g.in_h = 6;
  g.in_w = 6;
  g.out_c = 4;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  return g;
}

layout::PackedActivations random_packed(Rng& rng,
                                        const layout::ConvGeometry& g,
                                        int q) {
  Tensor<std::int32_t> codes({g.batch, g.in_h, g.in_w, g.in_c});
  codes.randomize(rng, 0, (1 << q) - 1);
  return layout::pack_activations(codes, layout::DenseLayout::kNHWC, q);
}

}  // namespace

TEST(WindowGather, StagesExactlyTheIm2colPatchRows) {
  const layout::ConvGeometry g = gather_geom();
  Rng rng(555);
  const int q = 2;
  const layout::PackedActivations x = random_packed(rng, g, q);
  const std::int64_t words = bitops::padded_words(g.gemm_k());

  for (const bool pad_one : {false, true}) {
    // Materialized golden: the full patch matrix per plane.
    std::vector<bitops::BitMatrix> patches;
    for (int t = 0; t < q; ++t) {
      patches.push_back(layout::im2col_bits(x.planes[t], g, pad_one));
    }
    for (const int win : {1, 2}) {  // natural and pool-window-major orders
      const std::int64_t nvalid = 16 * q;
      const std::int64_t nrows8 = 16 * q;  // multiple of 8 for q in {1,2}
      for (const std::int64_t col0 : {std::int64_t{0}, std::int64_t{32}}) {
        layout::WindowGatherSource src(x, g, pad_one, win, col0, nrows8,
                                       nvalid);
        std::vector<std::uint64_t> panel(
            static_cast<std::size_t>(nrows8 * words));
        // Stage in two k-strips to exercise the strip clipping.
        const std::int64_t w0s[] = {0, words / 2};
        for (int strip = 0; strip < 2; ++strip) {
          const std::int64_t w0 = w0s[strip];
          const std::int64_t wc = strip == 0 ? words / 2 : words - words / 2;
          std::vector<std::uint64_t> part(
              static_cast<std::size_t>(nrows8 * wc));
          src.stage(w0, wc, part.data());
          for (std::int64_t j = 0; j < nrows8; ++j) {
            for (std::int64_t w = 0; w < wc; ++w) {
              panel[static_cast<std::size_t>(j * words + w0 + w)] =
                  part[static_cast<std::size_t>(j * wc + w)];
            }
          }
        }
        for (std::int64_t j = 0; j < nrows8; ++j) {
          const std::int64_t col = col0 + j / q;
          const layout::OutPos pos = layout::conv_col_position(g, col, win);
          const std::int64_t patch_row =
              (pos.n * g.out_h() + pos.oy) * g.out_w() + pos.ox;
          const std::uint64_t* want =
              patches[static_cast<std::size_t>(j % q)].row(patch_row);
          for (std::int64_t w = 0; w < words; ++w) {
            ASSERT_EQ(panel[static_cast<std::size_t>(j * words + w)],
                      want[w])
                << "pad_one=" << pad_one << " win=" << win << " col0="
                << col0 << " row " << j << " word " << w;
          }
        }
      }
    }
  }
}

TEST(WindowGather, TransposedStagingMatchesRowMajor) {
  const layout::ConvGeometry g = gather_geom();
  Rng rng(556);
  const layout::PackedActivations x = random_packed(rng, g, 1);
  const std::int64_t words = bitops::padded_words(g.gemm_k());
  const std::int64_t nrows8 = 24;
  layout::WindowGatherSource src(x, g, false, 1, 5, nrows8, 19);
  std::vector<std::uint64_t> rowmajor(
      static_cast<std::size_t>(nrows8 * words));
  std::vector<std::uint64_t> interleaved(
      static_cast<std::size_t>(nrows8 * words));
  src.stage(0, words, rowmajor.data());
  src.stage_transposed(0, words, interleaved.data(), nullptr);
  for (std::int64_t j = 0; j < nrows8; ++j) {
    for (std::int64_t w = 0; w < words; ++w) {
      ASSERT_EQ(interleaved[static_cast<std::size_t>(w * nrows8 + j)],
                rowmajor[static_cast<std::size_t>(j * words + w)])
          << j << "," << w;
    }
  }
}

// --- steady-state allocation behavior -------------------------------------

TEST(ScratchSteadyState, BlockBitgemmAllocatesOnlyOnFirstUse) {
  Rng rng(31337);
  BitMatrix a(64, 4096), b(64, 4096);
  a.randomize(rng);
  b.randomize(rng);
  std::vector<const std::uint64_t*> a_rows(64), b_rows(64);
  for (int i = 0; i < 64; ++i) {
    a_rows[static_cast<std::size_t>(i)] = a.row(i);
    b_rows[static_cast<std::size_t>(i)] = b.row(i);
  }
  std::vector<std::int32_t> acc(64 * 64, 0);

  parallel::ScratchArena arena;
  arena.reset();
  microkernel::block_bitgemm(tcsim::BitOp::kXor, a_rows.data(), 64,
                             b_rows.data(), 64, a.row_words(), acc.data(),
                             arena);
  arena.reset();  // coalesces if the first pass spilled
  microkernel::block_bitgemm(tcsim::BitOp::kXor, a_rows.data(), 64,
                             b_rows.data(), 64, a.row_words(), acc.data(),
                             arena);
  const std::int64_t settled = arena.heap_alloc_count();
  for (int rep = 0; rep < 10; ++rep) {
    arena.reset();
    microkernel::block_bitgemm(tcsim::BitOp::kXor, a_rows.data(), 64,
                               b_rows.data(), 64, a.row_words(), acc.data(),
                               arena);
  }
  EXPECT_EQ(arena.heap_alloc_count(), settled)
      << "hot path heap-allocated in steady state";
}

TEST(ScratchSteadyState, WindowGatherConvPathAllocatesOnlyOnFirstUse) {
  // The im2col-free conv staging must keep the zero-steady-state-allocation
  // invariant: repeated block sweeps through a WindowGatherSource neither
  // heap-allocate nor move the arena high-water mark after the first pass.
  layout::ConvGeometry g;
  g.batch = 1;
  g.in_c = 64;
  g.in_h = g.in_w = 8;
  g.out_c = 16;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  Rng rng(31338);
  Tensor<std::int32_t> codes({g.batch, g.in_h, g.in_w, g.in_c});
  codes.randomize(rng, 0, 3);
  const layout::PackedActivations x =
      layout::pack_activations(codes, layout::DenseLayout::kNHWC, 2);
  const std::int64_t words = bitops::padded_words(g.gemm_k());

  BitMatrix a(16, g.gemm_k());
  a.randomize(rng);
  std::vector<const std::uint64_t*> a_rows(16);
  for (int i = 0; i < 16; ++i) {
    a_rows[static_cast<std::size_t>(i)] = a.row(i);
  }
  const std::int64_t cols8 = 32;  // 16 columns x q=2 planes
  std::vector<std::int32_t> acc(static_cast<std::size_t>(16 * cols8), 0);
  layout::WindowGatherSource src(x, g, false, 1, 0, cols8, cols8);

  parallel::ScratchArena arena;
  arena.reset();
  microkernel::block_bitgemm(tcsim::BitOp::kAnd, a_rows.data(), 16, src,
                             words, acc.data(), arena);
  arena.reset();  // coalesces if the first pass spilled
  microkernel::block_bitgemm(tcsim::BitOp::kAnd, a_rows.data(), 16, src,
                             words, acc.data(), arena);
  const std::int64_t settled = arena.heap_alloc_count();
  const std::size_t high_water = arena.high_water_bytes();
  for (int rep = 0; rep < 10; ++rep) {
    arena.reset();
    microkernel::block_bitgemm(tcsim::BitOp::kAnd, a_rows.data(), 16, src,
                               words, acc.data(), arena);
  }
  EXPECT_EQ(arena.heap_alloc_count(), settled)
      << "window-gather conv path heap-allocated in steady state";
  EXPECT_EQ(arena.high_water_bytes(), high_water)
      << "window-gather arena footprint crept between cycles";

  // The gathered sweep must also be bit-identical to the same sweep over
  // the materialized patch matrix.
  std::vector<std::int32_t> acc_mat(static_cast<std::size_t>(16 * cols8), 0);
  std::vector<bitops::BitMatrix> patches;
  for (int t = 0; t < 2; ++t) {
    patches.push_back(layout::im2col_bits(x.planes[t], g, false));
  }
  std::vector<const std::uint64_t*> b_rows(static_cast<std::size_t>(cols8));
  for (std::int64_t j = 0; j < cols8; ++j) {
    b_rows[static_cast<std::size_t>(j)] =
        patches[static_cast<std::size_t>(j % 2)].row(j / 2);
  }
  arena.reset();
  microkernel::block_bitgemm(tcsim::BitOp::kAnd, a_rows.data(), 16,
                             b_rows.data(), cols8, words, acc_mat.data(),
                             arena);
  std::vector<std::int32_t> acc_once(static_cast<std::size_t>(16 * cols8),
                                     0);
  arena.reset();
  microkernel::block_bitgemm(tcsim::BitOp::kAnd, a_rows.data(), 16, src,
                             words, acc_once.data(), arena);
  EXPECT_EQ(acc_once, acc_mat);
}

}  // namespace
}  // namespace apnn::core

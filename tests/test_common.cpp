#include <gtest/gtest.h>

#include <set>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/common/strings.hpp"
#include "src/common/timer.hpp"

namespace apnn {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    APNN_CHECK(1 == 2) << "context " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(APNN_CHECK(true) << "never built");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIn01) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Strings, Strf) {
  EXPECT_EQ(strf("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(Strings, TableRowPads) {
  const std::string row = table_row({"a", "bb"}, 4);
  EXPECT_EQ(row, "a    bb   ");
}

TEST(Strings, FormatTime) {
  EXPECT_EQ(format_time_us(12.345), "12.35us");
  EXPECT_EQ(format_time_us(4500.0), "4.50ms");
  EXPECT_EQ(format_time_us(2.5e6), "2.50s");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024), "3.00 MiB");
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.micros(), t.millis());
}

}  // namespace
}  // namespace apnn

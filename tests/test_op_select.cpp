#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/core/op_select.hpp"

namespace apnn::core {
namespace {

TEST(OpSelect, CaseIUsesAnd) {
  const OpSelection s =
      select_operator({Encoding::kUnsigned01, Encoding::kUnsigned01});
  EXPECT_EQ(s.kind, EmulationCase::kCaseI);
  EXPECT_EQ(s.bit_op, tcsim::BitOp::kAnd);
}

TEST(OpSelect, CaseIIUsesXor) {
  const OpSelection s =
      select_operator({Encoding::kSignedPM1, Encoding::kSignedPM1});
  EXPECT_EQ(s.kind, EmulationCase::kCaseII);
  EXPECT_EQ(s.bit_op, tcsim::BitOp::kXor);
}

TEST(OpSelect, CaseIIIUsesAndWithCorrection) {
  const OpSelection s =
      select_operator({Encoding::kSignedPM1, Encoding::kUnsigned01});
  EXPECT_EQ(s.kind, EmulationCase::kCaseIII);
  EXPECT_EQ(s.bit_op, tcsim::BitOp::kAnd);
}

TEST(OpSelect, TwosComplementMapsToCaseI) {
  const OpSelection s =
      select_operator({Encoding::kTwosComplement, Encoding::kUnsigned01});
  EXPECT_EQ(s.kind, EmulationCase::kCaseI);
}

TEST(OpSelect, RejectsSignedActivationsWithUnsignedWeights) {
  EXPECT_THROW(
      select_operator({Encoding::kUnsigned01, Encoding::kSignedPM1}),
      apnn::Error);
}

// --- the paper's three worked examples (§3.2) --------------------------------

TEST(OpSelect, PaperExampleCaseI) {
  // W = [0,1], X = [1,1]: popc(AND) = 1.
  const std::int64_t raw = 1;  // popc(AND([0,1],[1,1]))
  EXPECT_EQ(finalize_partial(EmulationCase::kCaseI, raw, 2, 0), 1);
}

TEST(OpSelect, PaperExampleCaseII) {
  // W = [-1,1] -> [0,1], X = [1,1] -> [1,1]: popc(XOR) = 1; n - 2*popc = 0.
  const std::int64_t raw = 1;
  EXPECT_EQ(finalize_partial(EmulationCase::kCaseII, raw, 2, 0), 0);
}

TEST(OpSelect, PaperExampleCaseIII) {
  // W = [-1,1], X = [1,0]: W^ = [0,1]; popc(AND([0,1],[1,0])) = 0;
  // 2*0 - popc(X)=1 -> -1.
  const std::int64_t raw = 0;
  const std::int64_t x_popc = 1;
  EXPECT_EQ(finalize_partial(EmulationCase::kCaseIII, raw, 2, x_popc), -1);
}

// --- scalar dot property checks over random vectors --------------------------

TEST(OpSelect, CaseIIFinalizeMatchesDotProduct) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 64));
    std::int64_t dot = 0, popc = 0;
    for (int i = 0; i < n; ++i) {
      const int w = rng.bernoulli(0.5) ? 1 : -1;
      const int x = rng.bernoulli(0.5) ? 1 : -1;
      dot += w * x;
      popc += ((w == 1) != (x == 1)) ? 1 : 0;  // XOR of encodings
    }
    EXPECT_EQ(finalize_partial(EmulationCase::kCaseII, popc, n, 0), dot);
  }
}

TEST(OpSelect, CaseIIIFinalizeMatchesDotProduct) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 64));
    std::int64_t dot = 0, raw = 0, xp = 0;
    for (int i = 0; i < n; ++i) {
      const int w = rng.bernoulli(0.5) ? 1 : -1;
      const int x = rng.bernoulli(0.5) ? 1 : 0;
      dot += w * x;
      raw += ((w + 1) / 2) & x;  // AND(W^, X)
      xp += x;
    }
    EXPECT_EQ(finalize_partial(EmulationCase::kCaseIII, raw, n, xp), dot);
  }
}

// --- plane multipliers and encode/decode --------------------------------------

TEST(OpSelect, PlaneMultipliers) {
  EXPECT_EQ(plane_multiplier(Encoding::kUnsigned01, 0, 4), 1);
  EXPECT_EQ(plane_multiplier(Encoding::kUnsigned01, 3, 4), 8);
  EXPECT_EQ(plane_multiplier(Encoding::kSignedPM1, 0, 1), 1);
  EXPECT_EQ(plane_multiplier(Encoding::kTwosComplement, 2, 4), 4);
  EXPECT_EQ(plane_multiplier(Encoding::kTwosComplement, 3, 4), -8);
}

TEST(OpSelect, EncodingRanges) {
  EXPECT_EQ(encoding_range(Encoding::kUnsigned01, 3).hi, 7);
  EXPECT_EQ(encoding_range(Encoding::kSignedPM1, 1).lo, -1);
  EXPECT_EQ(encoding_range(Encoding::kTwosComplement, 4).lo, -8);
  EXPECT_EQ(encoding_range(Encoding::kTwosComplement, 4).hi, 7);
}

TEST(OpSelect, EncodeDecodeRoundTrip) {
  for (int bits : {1, 2, 3, 4, 8}) {
    const auto r = encoding_range(Encoding::kUnsigned01, bits);
    for (std::int64_t v = r.lo; v <= r.hi; ++v) {
      EXPECT_EQ(decode_value(Encoding::kUnsigned01, bits,
                             encode_value(Encoding::kUnsigned01, bits, v)),
                v);
    }
  }
  for (std::int64_t v : {-1, 1}) {
    EXPECT_EQ(decode_value(Encoding::kSignedPM1, 1,
                           encode_value(Encoding::kSignedPM1, 1, v)),
              v);
  }
  for (int bits : {2, 4, 8}) {
    const auto r = encoding_range(Encoding::kTwosComplement, bits);
    for (std::int64_t v = r.lo; v <= r.hi; ++v) {
      EXPECT_EQ(
          decode_value(Encoding::kTwosComplement, bits,
                       encode_value(Encoding::kTwosComplement, bits, v)),
          v);
    }
  }
}

TEST(OpSelect, EncodeRejectsOutOfRange) {
  EXPECT_THROW(encode_value(Encoding::kUnsigned01, 2, 4), apnn::Error);
  EXPECT_THROW(encode_value(Encoding::kSignedPM1, 1, 0), apnn::Error);
  EXPECT_THROW(encode_value(Encoding::kTwosComplement, 4, 8), apnn::Error);
}

}  // namespace
}  // namespace apnn::core

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "src/parallel/scratch.hpp"

namespace apnn::parallel {
namespace {

TEST(ScratchArena, ReturnsAlignedDistinctRegions) {
  ScratchArena arena;
  auto* a = arena.get<std::int32_t>(100);
  auto* b = arena.get<std::uint64_t>(7);
  auto* c = arena.get<char>(1);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_NE(static_cast<void*>(b), static_cast<void*>(c));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % ScratchArena::kAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % ScratchArena::kAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % ScratchArena::kAlignment,
            0u);
  // Regions must not overlap: fill and check.
  for (int i = 0; i < 100; ++i) a[i] = -1;
  for (int i = 0; i < 7; ++i) b[i] = 0xffffffffffffffffULL;
  *c = 'x';
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], -1);
}

TEST(ScratchArena, ResetRecyclesWithoutReallocating) {
  ScratchArena arena;
  auto* first = arena.get<std::byte>(1000);
  const std::int64_t allocs = arena.heap_alloc_count();
  for (int rep = 0; rep < 100; ++rep) {
    arena.reset();
    auto* p = arena.get<std::byte>(1000);
    EXPECT_EQ(p, first);  // same bump position every cycle
  }
  EXPECT_EQ(arena.heap_alloc_count(), allocs);
}

TEST(ScratchArena, GrowsThenCoalescesToSteadyState) {
  ScratchArena arena;
  // Force spills over several chunks.
  for (int i = 0; i < 20; ++i) arena.get<std::byte>(100 * 1024);
  const std::size_t high_water = arena.used_bytes();
  arena.reset();  // coalesce
  EXPECT_GE(arena.capacity_bytes(), high_water);
  const std::int64_t settled = arena.heap_alloc_count();
  for (int rep = 0; rep < 5; ++rep) {
    arena.reset();
    for (int i = 0; i < 20; ++i) arena.get<std::byte>(100 * 1024);
  }
  EXPECT_EQ(arena.heap_alloc_count(), settled);
}

TEST(ScratchArena, HighWaterTracksLifetimePeak) {
  ScratchArena arena;
  arena.get<std::byte>(1000);
  arena.get<std::byte>(2000);
  const std::size_t peak = arena.used_bytes();
  EXPECT_EQ(arena.high_water_bytes(), peak);
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.high_water_bytes(), peak);  // survives reset
  arena.get<std::byte>(100);
  EXPECT_EQ(arena.high_water_bytes(), peak);  // smaller cycles don't move it
  arena.reset();
  arena.get<std::byte>(10000);
  EXPECT_GT(arena.high_water_bytes(), peak);  // bigger cycles do
}

TEST(ScratchArena, UsedBytesTracksRequests) {
  ScratchArena arena;
  arena.get<std::byte>(1);
  EXPECT_EQ(arena.used_bytes(), ScratchArena::kAlignment);  // rounded up
  arena.get<std::byte>(128);
  EXPECT_EQ(arena.used_bytes(), ScratchArena::kAlignment + 128);
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(ScratchArena, TlsArenasAreThreadPrivate) {
  ScratchArena* main_arena = &ScratchArena::tls();
  ScratchArena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &ScratchArena::tls(); });
  t.join();
  EXPECT_NE(main_arena, nullptr);
  EXPECT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena);
}

}  // namespace
}  // namespace apnn::parallel

// Replicated InferenceServer gates:
//   * concurrent requests across any number of client threads and replicas
//     produce logits bit-identical to sequential batch-1 session runs, and
//     micro-batching actually forms batches;
//   * per-sample admission validation: one malformed sample fails in its
//     own infer() call and never poisons the micro-batch it would have
//     joined — co-batched healthy requests still succeed and the
//     dispatchers stay alive;
//   * admission control: the bounded queue rejects (kReject) or
//     backpressures (kBlock) when full, and the stats account for it;
//   * shutdown: queued requests are drained, late callers get the
//     "shutting down" error, destruction never hangs — including with
//     clients still in flight (the done_cv_ thundering-herd path);
//   * a shared TuningCache warms across replicas: only the first replica
//     pays measurement runs, a second server with the same cache pays none;
//   * execution topology: derive_topology never oversubscribes the
//     hardware, and serving across per-replica pool slices — work stealing
//     on or off, pinned or not, autotuned at the slice width — stays
//     bit-exact (the TSan CI leg runs these against the race detector).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/faultinject.hpp"
#include "src/core/autotune.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/model.hpp"
#include "src/nn/server.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn::nn {
namespace {

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

Tensor<std::int32_t> random_input(std::int64_t b, const ModelSpec& m,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Tensor<std::int32_t> in({b, m.input.h, m.input.w, m.input.c});
  in.randomize(rng, 0, 255);
  return in;
}

void expect_same_logits(const Tensor<std::int32_t>& got,
                        const Tensor<std::int32_t>& want, int client) {
  // Server logits are {classes}; the sequential run's are {1, classes}.
  ASSERT_EQ(got.numel(), want.numel()) << "client " << client;
  for (std::int64_t j = 0; j < got.numel(); ++j) {
    EXPECT_EQ(got[j], want[j]) << "client " << client << " logit " << j;
  }
}

// --- batching correctness ---------------------------------------------------

TEST(Server, ConcurrentRequestsMatchSequentialRuns) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 330);
  net.calibrate(random_input(2, m, 331));

  constexpr int kClients = 6;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < kClients; ++i) {
      samples.push_back(random_input(1, m, 332 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }

  ServerOptions opts;
  opts.max_batch = 4;
  opts.replicas = 1;  // a lone replica must still batch correctly
  // Generous window: client threads must only *start* within it for a
  // micro-batch to form, even under sanitizer slowdowns on a loaded runner.
  opts.batch_window = std::chrono::microseconds(1000 * 1000);
  InferenceServer server(net, dev(), opts);
  std::vector<Tensor<std::int32_t>> got(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back(
          [&, i] { got[static_cast<std::size_t>(i)] = server.infer(
                       samples[static_cast<std::size_t>(i)]); });
    }
    for (auto& t : clients) t.join();
  }

  for (int i = 0; i < kClients; ++i) {
    expect_same_logits(got[static_cast<std::size_t>(i)],
                       expected[static_cast<std::size_t>(i)], i);
  }

  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_GE(stats.batches, (kClients + opts.max_batch - 1) / opts.max_batch);
  EXPECT_LE(stats.batches, kClients);
  // With a one-second window and six concurrent clients, at least one
  // micro-batch must have formed.
  EXPECT_GE(stats.max_batch, 2);
}

TEST(Server, ReplicatedPoolServesBitExactAndAccountsPerReplica) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 360);
  net.calibrate(random_input(2, m, 361));

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 3;
  constexpr int kTotal = kClients * kRequestsPerClient;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < kTotal; ++i) {
      samples.push_back(random_input(1, m, 362 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }

  ServerOptions opts;
  opts.replicas = 3;
  opts.max_batch = 4;
  opts.batch_window = std::chrono::microseconds(200);
  InferenceServer server(net, dev(), opts);
  ASSERT_EQ(server.replicas(), 3);

  std::vector<Tensor<std::int32_t>> got(kTotal);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const int i = c * kRequestsPerClient + r;
          got[static_cast<std::size_t>(i)] =
              server.infer(samples[static_cast<std::size_t>(i)]);
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  for (int i = 0; i < kTotal; ++i) {
    expect_same_logits(got[static_cast<std::size_t>(i)],
                       expected[static_cast<std::size_t>(i)], i);
  }

  // Per-replica accounting must tie out with the totals.
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, kTotal);
  ASSERT_EQ(stats.replica_batches.size(), 3u);
  ASSERT_EQ(stats.replica_requests.size(), 3u);
  std::int64_t batches = 0, requests = 0;
  for (int r = 0; r < 3; ++r) {
    batches += stats.replica_batches[static_cast<std::size_t>(r)];
    requests += stats.replica_requests[static_cast<std::size_t>(r)];
  }
  EXPECT_EQ(batches, stats.batches);
  EXPECT_EQ(requests, stats.requests);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_GE(stats.peak_queue_depth, 1);
  EXPECT_GT(stats.total_batch_ms, 0.0);
  EXPECT_GT(stats.total_latency_ms, 0.0);
  EXPECT_GE(stats.max_latency_ms,
            stats.total_latency_ms / static_cast<double>(stats.requests));
}

TEST(Server, SingleRequestServedWithinWindow) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 340);
  net.calibrate(random_input(1, m, 341));
  InferenceServer server(net, dev(), {});
  EXPECT_GE(server.replicas(), 1);  // hardware-width derivation resolved
  const auto sample = random_input(1, m, 342);
  const auto logits = server.infer(sample);
  EXPECT_EQ(logits.numel(), 5);
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.batches, 1);
}

// --- per-sample admission validation ----------------------------------------

TEST(Server, RejectsWrongSampleShape) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 343);
  net.calibrate(random_input(1, m, 344));
  InferenceServer server(net, dev(), {});
  Tensor<std::int32_t> bad({2, 8, 8, 4});  // a batch, not a sample
  EXPECT_THROW(server.infer(bad), apnn::Error);
  Tensor<std::int32_t> wrong_hw({1, 4, 4, 4});
  EXPECT_THROW(server.infer(wrong_hw), apnn::Error);
}

TEST(Server, PoisonSampleDoesNotPoisonItsBatch) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 345);
  net.calibrate(random_input(1, m, 346));

  constexpr int kHealthy = 3;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < kHealthy; ++i) {
      samples.push_back(random_input(1, m, 347 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }
  Tensor<std::int32_t> poisoned = random_input(1, m, 350);
  poisoned[7] = 999;  // not an 8-bit code — used to fail the whole batch
  Tensor<std::int32_t> negative = random_input(1, m, 351);
  negative[3] = -1;

  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 8;
  // A wide-open window co-batches everything below, so a poisoned sample
  // reaching the batch would corrupt every healthy response.
  opts.batch_window = std::chrono::microseconds(1000 * 1000);
  InferenceServer server(net, dev(), opts);

  std::vector<Tensor<std::int32_t>> got(kHealthy);
  std::atomic<int> poison_errors{0};
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kHealthy; ++i) {
      clients.emplace_back([&, i] {
        got[static_cast<std::size_t>(i)] =
            server.infer(samples[static_cast<std::size_t>(i)]);
      });
    }
    clients.emplace_back([&] {
      EXPECT_THROW(server.infer(poisoned), apnn::Error);
      EXPECT_THROW(server.infer(negative), apnn::Error);
      poison_errors.fetch_add(1);
    });
    for (auto& t : clients) t.join();
  }
  EXPECT_EQ(poison_errors.load(), 1);
  for (int i = 0; i < kHealthy; ++i) {
    expect_same_logits(got[static_cast<std::size_t>(i)],
                       expected[static_cast<std::size_t>(i)], i);
  }

  // The dispatcher survived and the server still serves.
  const auto again = server.infer(samples[0]);
  expect_same_logits(again, expected[0], 0);
  EXPECT_EQ(server.stats().requests, kHealthy + 1);  // poison never admitted
}

// --- admission control ------------------------------------------------------

TEST(Server, RejectPolicyShedsLoadWhenQueueIsFull) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 352);
  net.calibrate(random_input(1, m, 353));

  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 2;
  opts.max_queue = 1;
  opts.admission = ServerOptions::Admission::kReject;
  // The first request sits in the queue for the whole window (requests stay
  // queued while a dispatcher holds its batch open), keeping the queue full
  // long enough to observe a deterministic rejection — generous so even a
  // sanitizer-slowed runner cannot blow past it between the depth poll and
  // the rejecting infer(). shutdown() below skips the window's tail, so
  // the test never actually waits this long.
  opts.batch_window = std::chrono::microseconds(10 * 1000 * 1000);
  InferenceServer server(net, dev(), opts);

  const auto sample = random_input(1, m, 354);
  Tensor<std::int32_t> first_logits;
  std::thread first([&] { first_logits = server.infer(sample); });
  while (server.stats().queue_depth < 1) std::this_thread::yield();

  EXPECT_THROW(server.infer(sample), apnn::Error);  // queue full -> shed
  {
    const auto stats = server.stats();
    EXPECT_EQ(stats.rejected, 1);
    EXPECT_EQ(stats.requests, 0);  // the first request is still queued
  }

  // Drain: the queued request is served (the rejection shed load, it did
  // not poison the queue), and the shed caller's slot was never admitted.
  server.shutdown();
  first.join();
  EXPECT_EQ(first_logits.numel(), 5);
  EXPECT_EQ(server.stats().requests, 1);
}

TEST(Server, BlockPolicyAppliesBackpressureAndLosesNothing) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 355);
  net.calibrate(random_input(1, m, 356));

  constexpr int kClients = 6;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < kClients; ++i) {
      samples.push_back(random_input(1, m, 357 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }

  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 2;
  opts.max_queue = 1;  // almost every admission must wait for space
  opts.admission = ServerOptions::Admission::kBlock;
  opts.batch_window = std::chrono::microseconds(100);
  InferenceServer server(net, dev(), opts);

  std::vector<Tensor<std::int32_t>> got(kClients);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        got[static_cast<std::size_t>(i)] =
            server.infer(samples[static_cast<std::size_t>(i)]);
      });
    }
    for (auto& t : clients) t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    expect_same_logits(got[static_cast<std::size_t>(i)],
                       expected[static_cast<std::size_t>(i)], i);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_LE(stats.peak_queue_depth, 1);
}

// --- shutdown ---------------------------------------------------------------

TEST(Server, ShutdownDrainsQueuedRequestsThenRejectsLateCallers) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 370);
  net.calibrate(random_input(1, m, 371));

  constexpr int kClients = 4;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < kClients; ++i) {
      samples.push_back(random_input(1, m, 372 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }

  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 8;
  // A very long window parks the queued requests; only shutdown's drain
  // (which skips the window) releases them — if draining were broken this
  // test would time out rather than pass by luck.
  opts.batch_window = std::chrono::microseconds(60 * 1000 * 1000);
  InferenceServer server(net, dev(), opts);

  std::vector<Tensor<std::int32_t>> got(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      got[static_cast<std::size_t>(i)] =
          server.infer(samples[static_cast<std::size_t>(i)]);
    });
  }
  while (server.stats().queue_depth < kClients) std::this_thread::yield();

  server.shutdown();  // must serve all four queued requests, then return
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    expect_same_logits(got[static_cast<std::size_t>(i)],
                       expected[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(server.stats().requests, kClients);

  // Late callers fail fast with the shutdown error instead of hanging.
  EXPECT_THROW(server.infer(samples[0]), apnn::Error);
  server.shutdown();  // idempotent
}

TEST(Server, DestructionWithConcurrentClientsNeverHangs) {
  // The done_cv_ thundering-herd path: many clients block on the shared
  // completion cv; every batch completion wakes all of them and each
  // re-checks its own request. Destruction overlaps the tail of the herd.
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 380);
  net.calibrate(random_input(1, m, 381));

  constexpr int kClients = 16;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < kClients; ++i) {
      samples.push_back(random_input(1, m, 382 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }

  std::vector<Tensor<std::int32_t>> got(kClients);
  {
    ServerOptions opts;
    opts.replicas = 2;
    opts.max_batch = 4;
    opts.batch_window = std::chrono::microseconds(500);
    InferenceServer server(net, dev(), opts);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        got[static_cast<std::size_t>(i)] =
            server.infer(samples[static_cast<std::size_t>(i)]);
      });
    }
    // Join the herd, then let the server destruct with stats intact.
    for (auto& t : clients) t.join();
    EXPECT_EQ(server.stats().requests, kClients);
  }
  for (int i = 0; i < kClients; ++i) {
    expect_same_logits(got[static_cast<std::size_t>(i)],
                       expected[static_cast<std::size_t>(i)], i);
  }
}

TEST(Server, DestructionDrainsEnqueuedRequests) {
  // infer() racing ~InferenceServer: requests enqueued before destruction
  // begins are served, not dropped, and destruction does not hang.
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 390);
  net.calibrate(random_input(1, m, 391));

  constexpr int kClients = 3;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < kClients; ++i) {
      samples.push_back(random_input(1, m, 392 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }

  std::vector<Tensor<std::int32_t>> got(kClients);
  std::vector<std::thread> clients;
  {
    ServerOptions opts;
    opts.replicas = 1;
    opts.max_batch = 8;
    opts.batch_window = std::chrono::microseconds(60 * 1000 * 1000);
    InferenceServer server(net, dev(), opts);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        got[static_cast<std::size_t>(i)] =
            server.infer(samples[static_cast<std::size_t>(i)]);
      });
    }
    while (server.stats().queue_depth < kClients) std::this_thread::yield();
    // ~InferenceServer runs here with all three requests still queued.
  }
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    expect_same_logits(got[static_cast<std::size_t>(i)],
                       expected[static_cast<std::size_t>(i)], i);
  }
}

// --- dispatcher death must not strand dequeued clients ----------------------

TEST(Server, DispatcherDeathFailsItsDequeuedRequestsInsteadOfStranding) {
  // Regression: an exception escaping the dispatch cycle outside the
  // per-batch handler (injected at replica.dispatch, right after dequeue)
  // used to unwind out of the dispatcher thread with the dequeued requests
  // still waiting on done_cv_ — every one of those clients hung forever.
  // They must instead fail promptly, in their own infer() calls.
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 400);
  net.calibrate(random_input(1, m, 401));

  struct DisarmGuard {
    ~DisarmGuard() { faultinject::disarm_all(); }
  } guard;
  faultinject::arm(faultinject::kReplicaDispatch, 1);

  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 3;
  // The dispatcher holds the batch open until all three clients are
  // co-dequeued, so the injected death strands (or, fixed, fails) all of
  // them at once.
  opts.batch_window = std::chrono::microseconds(1000 * 1000);
  InferenceServer server(net, dev(), opts);

  constexpr int kClients = 3;
  std::vector<Tensor<std::int32_t>> samples;
  for (int i = 0; i < kClients; ++i) {
    samples.push_back(random_input(1, m, 402 + static_cast<unsigned>(i)));
  }
  std::atomic<int> failed{0};
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        try {
          server.infer(samples[static_cast<std::size_t>(i)]);
        } catch (const ServerError& e) {
          // The injected FaultInjected is a replica crash from the client's
          // point of view; the server reports it as a typed kReplicaFailed.
          if (e.kind() == ErrorKind::kReplicaFailed) failed.fetch_add(1);
        }
      });
    }
    for (auto& t : clients) t.join();  // used to hang here
  }
  EXPECT_EQ(failed.load(), kClients);
  EXPECT_EQ(faultinject::fires(faultinject::kReplicaDispatch), 1);
}

// --- shared tuning cache across replicas ------------------------------------

TEST(Server, SharedCacheOnlyFirstReplicaPaysMeasurementRuns) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 395);
  const auto input = random_input(1, m, 396);
  net.calibrate(input);

  core::TuningCache cache;
  ServerOptions opts;
  opts.replicas = 2;
  opts.max_batch = 4;
  opts.session.autotune = true;
  opts.session.cache = &cache;

  InferenceServer cold(net, dev(), opts);
  EXPECT_GT(cold.replica_tuning_measurements(0), 0);
  EXPECT_EQ(cold.replica_tuning_measurements(1), 0)
      << "second replica should compile warm off the shared cache";
  EXPECT_EQ(cold.tuning_measurements(), cold.replica_tuning_measurements(0));

  // Serving still works (and is bit-exact) under a tuned plan.
  InferenceSession ref(net, dev());
  const auto sample = random_input(1, m, 397);
  expect_same_logits(cold.infer(sample), ref.run(sample), 0);

  // A later server sharing the same cache starts fully warm.
  InferenceServer warm(net, dev(), opts);
  EXPECT_EQ(warm.tuning_measurements(), 0);

  // A null cache with autotune on gets a server-owned shared cache with the
  // same only-replica-0-measures behavior.
  ServerOptions own = opts;
  own.session.cache = nullptr;
  InferenceServer owned(net, dev(), own);
  EXPECT_GT(owned.replica_tuning_measurements(0), 0);
  EXPECT_EQ(owned.replica_tuning_measurements(1), 0);
}

// --- execution topology (per-replica pool slices) ---------------------------

TEST(ServerTopology, DeriveTopologyNeverOversubscribes) {
  ServerOptions o;  // both fields 0: full joint derivation
  {
    const auto t = InferenceServer::derive_topology(o, 8);
    EXPECT_EQ(t.replicas, 4);
    EXPECT_EQ(t.slice_threads, 2);
  }
  {
    const auto t = InferenceServer::derive_topology(o, 1);
    EXPECT_EQ(t.replicas, 1);
    EXPECT_EQ(t.slice_threads, 1);
  }
  {
    // 32 hardware threads: replica count clamps at 8, the width spreads.
    const auto t = InferenceServer::derive_topology(o, 32);
    EXPECT_EQ(t.replicas, 8);
    EXPECT_EQ(t.slice_threads, 4);
  }
  {
    ServerOptions r;
    r.replicas = 2;
    const auto t = InferenceServer::derive_topology(r, 8);
    EXPECT_EQ(t.replicas, 2);
    EXPECT_EQ(t.slice_threads, 4);
  }
  {
    ServerOptions s;
    s.slice_threads = 2;
    const auto t = InferenceServer::derive_topology(s, 8);
    EXPECT_EQ(t.replicas, 4);
    EXPECT_EQ(t.slice_threads, 2);
  }
  {
    // A slice wider than the machine still yields a sane topology.
    ServerOptions s;
    s.slice_threads = 16;
    const auto t = InferenceServer::derive_topology(s, 8);
    EXPECT_EQ(t.replicas, 1);
    EXPECT_EQ(t.slice_threads, 16);
  }
  {
    // Both explicit: taken as given, even oversubscribed (opt-in).
    ServerOptions b;
    b.replicas = 3;
    b.slice_threads = 5;
    const auto t = InferenceServer::derive_topology(b, 4);
    EXPECT_EQ(t.replicas, 3);
    EXPECT_EQ(t.slice_threads, 5);
  }
  // The derived default always fits: replicas * slice <= hw.
  for (unsigned hw = 1; hw <= 64; ++hw) {
    const auto t = InferenceServer::derive_topology(o, hw);
    EXPECT_GE(t.replicas, 1);
    EXPECT_GE(t.slice_threads, 1);
    EXPECT_LE(static_cast<unsigned>(t.replicas * t.slice_threads), hw)
        << "hw=" << hw;
  }
}

// Serving across explicit per-replica pool slices — with work stealing on
// and with slices pinned — stays bit-exact vs sequential batch-1 runs. Runs
// under TSan in CI, so this also drives the slice/steal/pin machinery
// through the race detector with real sessions on top.
TEST(ServerTopology, SlicedStolenAndPinnedServingStaysBitExact) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 640);
  net.calibrate(random_input(2, m, 641));

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 2;
  constexpr int kTotal = kClients * kRequestsPerClient;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < kTotal; ++i) {
      samples.push_back(random_input(1, m, 642 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }

  ServerOptions base;
  base.replicas = 2;
  base.slice_threads = 2;
  base.max_batch = 4;
  base.batch_window = std::chrono::microseconds(200);

  ServerOptions no_steal = base;
  no_steal.work_stealing = false;
  ServerOptions pinned = base;
  pinned.pin_threads = true;  // best-effort; must never change results

  for (const ServerOptions& opts : {base, no_steal, pinned}) {
    InferenceServer server(net, dev(), opts);
    ASSERT_EQ(server.replicas(), 2);
    ASSERT_EQ(server.slice_threads(), 2);
    std::vector<Tensor<std::int32_t>> got(kTotal);
    {
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          for (int r = 0; r < kRequestsPerClient; ++r) {
            const int i = c * kRequestsPerClient + r;
            got[static_cast<std::size_t>(i)] =
                server.infer(samples[static_cast<std::size_t>(i)]);
          }
        });
      }
      for (auto& t : clients) t.join();
    }
    for (int i = 0; i < kTotal; ++i) {
      expect_same_logits(got[static_cast<std::size_t>(i)],
                         expected[static_cast<std::size_t>(i)], i);
    }
    EXPECT_EQ(server.stats().requests, kTotal);
  }
}

// An autotuned server keys its owned cache to the slice width, and the
// slice-tuned plans still serve bit-exactly.
TEST(ServerTopology, AutotunedSliceServerStaysBitExact) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 650);
  net.calibrate(random_input(2, m, 651));

  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (int i = 0; i < 4; ++i) {
      samples.push_back(random_input(1, m, 652 + static_cast<unsigned>(i)));
      expected.push_back(session.run(samples.back()));
    }
  }

  ServerOptions opts;
  opts.replicas = 2;
  opts.slice_threads = 2;
  opts.max_batch = 2;
  opts.session.autotune = true;
  InferenceServer server(net, dev(), opts);
  EXPECT_GT(server.tuning_measurements(), 0);  // cold: replica 0 measured
  for (int i = 0; i < 4; ++i) {
    expect_same_logits(server.infer(samples[static_cast<std::size_t>(i)]),
                       expected[static_cast<std::size_t>(i)], i);
  }
}


// --- bucketed batch formation (dynamic-shape models) ------------------------

Tensor<std::int32_t> random_tokens(std::int64_t seq, const ModelSpec& m,
                                   std::uint64_t seed) {
  Rng rng(seed);
  Tensor<std::int32_t> in({seq, std::int64_t{1}, m.input.c});
  in.randomize(rng, 0, 255);
  return in;
}

TEST(Server, BucketedMixedLengthsServeBitExact) {
  // One server, one compiled plan family, concurrent requests spanning
  // several buckets and off-bucket lengths. Every response must equal the
  // sequential batch-1 session run of the same sample — which also pins
  // that micro-batches never mix buckets: co-batching a short request with
  // a longer bucket would pad it further and shift the pooled head's
  // divisor, so a mixed batch cannot reproduce the per-bucket logits.
  const ModelSpec m = tiny_transformer();
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 700);
  Rng rng(701);
  Tensor<std::int32_t> calib({2, m.input.h, m.input.w, m.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);

  const std::vector<std::int64_t> lengths = {20, 32, 32, 50, 64,
                                             64, 100, 128, 256, 512};
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (std::size_t i = 0; i < lengths.size(); ++i) {
      samples.push_back(random_tokens(lengths[i], m,
                                      702 + static_cast<std::uint64_t>(i)));
      Tensor<std::int32_t> batched = samples.back().reshaped(
          {1, lengths[i], std::int64_t{1}, m.input.c});
      expected.push_back(session.run(batched));
    }
  }

  ServerOptions opts;
  opts.max_batch = 4;
  opts.batch_window = std::chrono::microseconds(2000);
  InferenceServer server(net, dev(), opts);
  std::vector<Tensor<std::int32_t>> got(samples.size());
  {
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      clients.emplace_back([&, i] { got[i] = server.infer(samples[i]); });
    }
    for (auto& t : clients) t.join();
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_same_logits(got[i], expected[i], static_cast<int>(i));
  }
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, static_cast<std::int64_t>(samples.size()));
}

TEST(Server, BucketedBatchesGroupByBucketNotArrival) {
  // Queue requests of two buckets while no dispatcher can run (replica
  // count 1, every sample pre-queued by parked clients), then check the
  // dispatch accounting: same-bucket requests co-batch even when they
  // interleave in arrival order, so serving 4+4 requests of two buckets
  // under max_batch 4 takes at least 2 and at most 4 batches — never 8 —
  // and each response is the per-bucket bit-exact result.
  const ModelSpec m = tiny_transformer();
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 710);
  Rng rng(711);
  Tensor<std::int32_t> calib({2, m.input.h, m.input.w, m.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);

  // Alternate buckets in submission order: 32, 64, 32, 64, ...
  std::vector<std::int64_t> lengths;
  for (int i = 0; i < 4; ++i) {
    lengths.push_back(32);
    lengths.push_back(64);
  }
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> expected;
  {
    InferenceSession session(net, dev());
    for (std::size_t i = 0; i < lengths.size(); ++i) {
      samples.push_back(random_tokens(lengths[i], m,
                                      712 + static_cast<std::uint64_t>(i)));
      Tensor<std::int32_t> batched = samples.back().reshaped(
          {1, lengths[i], std::int64_t{1}, m.input.c});
      expected.push_back(session.run(batched));
    }
  }

  ServerOptions opts;
  opts.max_batch = 4;
  opts.replicas = 1;
  opts.batch_window = std::chrono::microseconds(20000);
  InferenceServer server(net, dev(), opts);
  std::vector<Tensor<std::int32_t>> got(samples.size());
  {
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      clients.emplace_back([&, i] { got[i] = server.infer(samples[i]); });
    }
    for (auto& t : clients) t.join();
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_same_logits(got[i], expected[i], static_cast<int>(i));
  }
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, static_cast<std::int64_t>(samples.size()));
  EXPECT_GE(stats.batches, 2);
  EXPECT_LE(stats.batches, 8);  // grouping may be imperfect under timing,
                                // but mixing buckets in one batch is not
                                // possible (the responses above prove it)
}

TEST(Server, BucketedRejectsOutOfRangeSequences) {
  const ModelSpec m = tiny_transformer();
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 720);
  Rng rng(721);
  Tensor<std::int32_t> calib({1, m.input.h, m.input.w, m.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);
  InferenceServer server(net, dev());

  // Longer than the largest bucket: fails admission in its own call.
  try {
    server.infer(random_tokens(m.seq_buckets.back() + 1, m, 722));
    FAIL() << "expected kInvalidSample";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalidSample);
  }
  // Wrong feature width.
  Tensor<std::int32_t> bad({std::int64_t{32}, std::int64_t{1},
                            m.input.c + 1});
  try {
    server.infer(bad);
    FAIL() << "expected kInvalidSample";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalidSample);
  }
  // A healthy variable-length request still serves after the rejects.
  const Tensor<std::int32_t> ok = server.infer(random_tokens(48, m, 723));
  EXPECT_EQ(ok.numel(), 10);
}

}  // namespace
}  // namespace apnn::nn


#include <gtest/gtest.h>

#include <cmath>

#include "src/synth/dataset.hpp"
#include "src/train/conv_net.hpp"
#include "src/train/mlp.hpp"

namespace apnn::train {
namespace {

synth::DatasetConfig small_cfg() {
  synth::DatasetConfig cfg;
  cfg.classes = 6;
  cfg.hw = 10;
  cfg.noise = 0.4;
  return cfg;
}

TEST(SynthDataset, ShapesAndLabels) {
  const synth::Dataset ds = synth::make_dataset(120, small_cfg(), 1);
  EXPECT_EQ(ds.size(), 120);
  EXPECT_EQ(ds.features(), 100);
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 6);
  }
  // Round-robin labels are balanced.
  std::vector<int> counts(6, 0);
  for (int label : ds.labels) counts[static_cast<std::size_t>(label)]++;
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(SynthDataset, SameTaskSeedSamePrototypes) {
  synth::DatasetConfig cfg = small_cfg();
  cfg.noise = 0.0;
  cfg.max_shift = 0;
  const auto a = synth::make_dataset(6, cfg, 1);
  const auto b = synth::make_dataset(6, cfg, 999);  // different sample seed
  // With no jitter/noise the images are the pure prototypes.
  for (std::int64_t i = 0; i < a.images.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.images[i], b.images[i]);
  }
}

TEST(SynthDataset, DifferentTaskSeedDifferentTask) {
  synth::DatasetConfig a = small_cfg(), b = small_cfg();
  b.task_seed = 12345;
  a.noise = b.noise = 0;
  const auto da = synth::make_dataset(6, a, 1);
  const auto db = synth::make_dataset(6, b, 1);
  double diff = 0;
  for (std::int64_t i = 0; i < da.images.numel(); ++i) {
    diff += std::abs(da.images[i] - db.images[i]);
  }
  EXPECT_GT(diff / da.images.numel(), 0.1);
}

TEST(FakeQuant, BinaryWeightsAreSignTimesMean) {
  Tensor<float> w({4});
  w[0] = 0.5f;
  w[1] = -1.5f;
  w[2] = 2.0f;
  w[3] = -0.2f;
  const Tensor<float> q = fake_quantize_weights(w, 1);
  const float alpha = (0.5f + 1.5f + 2.0f + 0.2f) / 4;
  EXPECT_FLOAT_EQ(q[0], alpha);
  EXPECT_FLOAT_EQ(q[1], -alpha);
  EXPECT_FLOAT_EQ(q[2], alpha);
  EXPECT_FLOAT_EQ(q[3], -alpha);
}

TEST(FakeQuant, MultiBitWeightsBounded) {
  Rng rng(5);
  Tensor<float> w({1000});
  w.randomize(rng, -2.f, 2.f);
  const Tensor<float> q = fake_quantize_weights(w, 3);
  float err = 0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    err = std::max(err, std::abs(q[i] - w[i]));
  }
  EXPECT_LT(err, 2.0f / 3 + 1e-5);  // one step of the 3-bit grid
}

TEST(FakeQuant, ActivationsClipAndSnap) {
  Tensor<float> a({4});
  a[0] = -0.5f;
  a[1] = 0.49f;
  a[2] = 0.76f;
  a[3] = 2.0f;
  const Tensor<float> q = fake_quantize_activations(a, 2);
  EXPECT_FLOAT_EQ(q[0], 0.f);
  EXPECT_FLOAT_EQ(q[1], 1.f / 3);  // nearest of {0,1/3,2/3,1}
  EXPECT_FLOAT_EQ(q[2], 2.f / 3);
  EXPECT_FLOAT_EQ(q[3], 1.f);
}

TEST(Mlp, LossDecreasesDuringTraining) {
  const synth::Dataset train = synth::make_dataset(240, small_cfg(), 11);
  Mlp net({train.features(), 48, train.classes}, 1);
  Rng rng(2);
  TrainConfig cfg;
  cfg.epochs = 1;
  const double first = net.train_epoch(train, QatConfig::off(), cfg, rng);
  double last = first;
  for (int e = 0; e < 8; ++e) {
    last = net.train_epoch(train, QatConfig::off(), cfg, rng);
  }
  EXPECT_LT(last, first * 0.7);
}

TEST(Mlp, FloatLearnsTask) {
  const synth::Dataset train = synth::make_dataset(360, small_cfg(), 21);
  const synth::Dataset test = synth::make_dataset(120, small_cfg(), 22);
  TrainConfig cfg;
  cfg.epochs = 25;
  const double acc =
      train_and_evaluate(train, test, QatConfig::off(), cfg, {64});
  EXPECT_GT(acc, 0.9);
}

TEST(Mlp, QatW1A2StillLearns) {
  const synth::Dataset train = synth::make_dataset(360, small_cfg(), 31);
  const synth::Dataset test = synth::make_dataset(120, small_cfg(), 32);
  TrainConfig cfg;
  cfg.epochs = 30;
  const double acc =
      train_and_evaluate(train, test, QatConfig::wa(1, 2), cfg, {64});
  EXPECT_GT(acc, 0.7);
}

TEST(Mlp, AccuracyOrderingBinaryLeW1A2LeFloat) {
  // The Table 1 shape: binary < w1a2 <= float (with a small w1a2 gap).
  const synth::Dataset train = synth::make_dataset(480, small_cfg(), 41);
  const synth::Dataset test = synth::make_dataset(240, small_cfg(), 42);
  TrainConfig cfg;
  cfg.epochs = 30;
  const double acc_float =
      train_and_evaluate(train, test, QatConfig::off(), cfg, {64});
  const double acc_w1a2 =
      train_and_evaluate(train, test, QatConfig::wa(1, 2), cfg, {64});
  const double acc_bin =
      train_and_evaluate(train, test, QatConfig::wa(1, 1), cfg, {64});
  EXPECT_LE(acc_bin, acc_w1a2 + 0.02);
  EXPECT_LE(acc_w1a2, acc_float + 0.02);
  EXPECT_GT(acc_float, 0.9);
}

TEST(Cnn, LossDecreasesDuringTraining) {
  synth::DatasetConfig cfg = small_cfg();
  cfg.hw = 8;
  const synth::Dataset train = synth::make_dataset(120, cfg, 61);
  CnnConfig arch;
  arch.in_c = cfg.channels;
  arch.in_hw = 8;
  arch.classes = cfg.classes;
  arch.c1 = 4;
  arch.c2 = 8;
  arch.fc_hidden = 24;
  QatCnn net(arch, 3);
  Rng rng(4);
  TrainConfig tc;
  tc.lr = 0.08;
  const double first = net.train_epoch(train, QatConfig::off(), tc, rng);
  double last = first;
  for (int e = 0; e < 19; ++e) {
    last = net.train_epoch(train, QatConfig::off(), tc, rng);
  }
  EXPECT_LT(last, first * 0.8);
}

TEST(Cnn, FloatLearnsTask) {
  synth::DatasetConfig cfg = small_cfg();
  cfg.hw = 8;
  const synth::Dataset train = synth::make_dataset(240, cfg, 71);
  const synth::Dataset test = synth::make_dataset(120, cfg, 72);
  CnnConfig arch;
  arch.in_c = cfg.channels;
  arch.in_hw = 8;
  arch.classes = cfg.classes;
  arch.c1 = 6;
  arch.c2 = 12;
  arch.fc_hidden = 32;
  TrainConfig tc;
  tc.epochs = 15;
  const double acc =
      train_and_evaluate_cnn(train, test, QatConfig::off(), tc, arch);
  EXPECT_GT(acc, 0.85);
}

TEST(Cnn, QatOrderingBinaryLeW1a2LeFloat) {
  synth::DatasetConfig cfg = small_cfg();
  cfg.hw = 8;
  cfg.noise = 0.8;
  const synth::Dataset train = synth::make_dataset(300, cfg, 81);
  const synth::Dataset test = synth::make_dataset(150, cfg, 82);
  CnnConfig arch;
  arch.in_c = cfg.channels;
  arch.in_hw = 8;
  arch.classes = cfg.classes;
  arch.c1 = 6;
  arch.c2 = 12;
  arch.fc_hidden = 32;
  TrainConfig tc;
  tc.epochs = 18;
  const double acc_bin =
      train_and_evaluate_cnn(train, test, QatConfig::wa(1, 1), tc, arch);
  const double acc_w1a2 =
      train_and_evaluate_cnn(train, test, QatConfig::wa(1, 2), tc, arch);
  const double acc_fp =
      train_and_evaluate_cnn(train, test, QatConfig::off(), tc, arch);
  EXPECT_LE(acc_bin, acc_w1a2 + 0.03);
  EXPECT_LE(acc_w1a2, acc_fp + 0.03);
  EXPECT_GT(acc_fp, 0.8);
}

TEST(Cnn, RejectsBadGeometry) {
  CnnConfig arch;
  arch.in_hw = 10;  // not a multiple of 4
  EXPECT_THROW(QatCnn(arch, 1), apnn::Error);
}

TEST(Mlp, DeterministicGivenSeed) {
  const synth::Dataset train = synth::make_dataset(120, small_cfg(), 51);
  const synth::Dataset test = synth::make_dataset(60, small_cfg(), 52);
  TrainConfig cfg;
  cfg.epochs = 5;
  const double a = train_and_evaluate(train, test, QatConfig::off(), cfg, {32});
  const double b = train_and_evaluate(train, test, QatConfig::off(), cfg, {32});
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace apnn::train

#include <gtest/gtest.h>

#include <tuple>

#include "src/bitops/bit_matrix.hpp"
#include "src/bitops/bitcopy.hpp"
#include "src/bitops/decompose.hpp"
#include "src/bitops/pack.hpp"
#include "src/common/rng.hpp"

namespace apnn::bitops {
namespace {

TEST(BitMatrix, PaddedWordsAlignTo128Bits) {
  EXPECT_EQ(padded_words(1), 2);
  EXPECT_EQ(padded_words(64), 2);
  EXPECT_EQ(padded_words(128), 2);
  EXPECT_EQ(padded_words(129), 4);
  EXPECT_EQ(padded_words(256), 4);
}

TEST(BitMatrix, SetGetRoundTrip) {
  BitMatrix m(5, 200);
  m.set(0, 0, true);
  m.set(4, 199, true);
  m.set(2, 64, true);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(4, 199));
  EXPECT_TRUE(m.get(2, 64));
  EXPECT_FALSE(m.get(0, 1));
  m.set(0, 0, false);
  EXPECT_FALSE(m.get(0, 0));
}

TEST(BitMatrix, FromDense01RoundTrip) {
  Rng rng(42);
  const std::int64_t r = 7, c = 131;
  std::vector<std::int32_t> vals(static_cast<std::size_t>(r * c));
  for (auto& v : vals) v = rng.bernoulli(0.5) ? 1 : 0;
  const BitMatrix m = BitMatrix::from_dense01(vals.data(), r, c);
  EXPECT_EQ(m.to_dense01(), vals);
}

TEST(BitMatrix, RandomizeKeepsPaddingZero) {
  Rng rng(1);
  BitMatrix m(3, 100);  // 100 bits -> 2 words, 28 bits padding
  m.randomize(rng);
  for (std::int64_t r = 0; r < 3; ++r) {
    const std::uint64_t* w = m.row(r);
    // Bits 100..127 of word 1 must be zero.
    EXPECT_EQ(w[1] >> (100 - 64), 0u);
  }
}

TEST(BitMatrix, PayloadVsStorageBytes) {
  BitMatrix m(4, 100);
  EXPECT_EQ(m.payload_bytes(), 4 * 13);     // ceil(100/8) = 13
  EXPECT_EQ(m.storage_bytes(), 4 * 2 * 8);  // 2 words padded
}

TEST(BitMatrix, FromPlaneExtractsBit) {
  std::vector<std::int32_t> vals = {0, 1, 2, 3, 4, 5};
  const BitMatrix p0 = BitMatrix::from_plane(vals.data(), 2, 3, 0);
  const BitMatrix p1 = BitMatrix::from_plane(vals.data(), 2, 3, 1);
  const BitMatrix p2 = BitMatrix::from_plane(vals.data(), 2, 3, 2);
  EXPECT_EQ(p0.to_dense01(), (std::vector<std::int32_t>{0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(p1.to_dense01(), (std::vector<std::int32_t>{0, 0, 1, 1, 0, 0}));
  EXPECT_EQ(p2.to_dense01(), (std::vector<std::int32_t>{0, 0, 0, 0, 1, 1}));
}

// --- dot products -----------------------------------------------------------

class DotTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DotTest, XorPopcMatchesNaive) {
  const std::int64_t k = GetParam();
  Rng rng(k);
  BitMatrix a(1, k), b(1, k);
  a.randomize(rng);
  b.randomize(rng);
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < k; ++i) {
    expect += a.get(0, i) != b.get(0, i) ? 1 : 0;
  }
  EXPECT_EQ(dot_xor_popc(a.row(0), b.row(0), a.row_words()), expect);
}

TEST_P(DotTest, AndPopcMatchesNaive) {
  const std::int64_t k = GetParam();
  Rng rng(k + 1000);
  BitMatrix a(1, k), b(1, k);
  a.randomize(rng);
  b.randomize(rng);
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < k; ++i) {
    expect += (a.get(0, i) && b.get(0, i)) ? 1 : 0;
  }
  EXPECT_EQ(dot_and_popc(a.row(0), b.row(0), a.row_words()), expect);
}

TEST_P(DotTest, RowPopcountMatchesNaive) {
  const std::int64_t k = GetParam();
  Rng rng(k + 2000);
  BitMatrix a(1, k);
  a.randomize(rng);
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < k; ++i) expect += a.get(0, i);
  EXPECT_EQ(a.row_popcount(0), expect);
}

INSTANTIATE_TEST_SUITE_P(Widths, DotTest,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 129,
                                           200, 256, 1000));

// --- decompose / recompose ---------------------------------------------------

class DecomposeTest
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(DecomposeTest, RoundTrip) {
  const int bits = std::get<0>(GetParam());
  const std::int64_t cols = std::get<1>(GetParam());
  Rng rng(bits * 100 + cols);
  const std::int64_t rows = 9;
  std::vector<std::int32_t> vals(static_cast<std::size_t>(rows * cols));
  for (auto& v : vals) {
    v = static_cast<std::int32_t>(rng.uniform_int(0, (1 << bits) - 1));
  }
  const BitPlanes bp = decompose(vals.data(), rows, cols, bits);
  EXPECT_EQ(bp.bits, bits);
  EXPECT_EQ(static_cast<int>(bp.planes.size()), bits);
  EXPECT_EQ(recompose(bp), vals);
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndWidths, DecomposeTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8),
                       ::testing::Values<std::int64_t>(1, 17, 128, 300)));

TEST(Decompose, RejectsOutOfRange) {
  std::vector<std::int32_t> vals = {4};
#ifndef NDEBUG
  EXPECT_THROW(decompose(vals.data(), 1, 1, 2), apnn::Error);
#else
  GTEST_SKIP() << "range checks are debug-only";
#endif
}

TEST(CombinePlanes, WeightsArePowersOfTwo) {
  EXPECT_EQ(plane_weight(0, 0), 1);
  EXPECT_EQ(plane_weight(1, 0), 2);
  EXPECT_EQ(plane_weight(2, 3), 32);
  EXPECT_EQ(emulation_planes(3, 5), 15);
}

TEST(CombinePlanes, MatchesDirectSum) {
  const int p = 2, q = 3;
  const std::int64_t n = 6;
  std::vector<std::vector<std::int32_t>> partial;
  for (int s = 0; s < p; ++s) {
    for (int t = 0; t < q; ++t) {
      std::vector<std::int32_t> y(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        y[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(s * 10 + t + i);
      }
      partial.push_back(std::move(y));
    }
  }
  std::vector<std::int32_t> out(static_cast<std::size_t>(n));
  combine_planes(partial, p, q, n, out.data());
  for (std::int64_t i = 0; i < n; ++i) {
    std::int32_t expect = 0;
    for (int s = 0; s < p; ++s) {
      for (int t = 0; t < q; ++t) {
        expect += static_cast<std::int32_t>((s * 10 + t + i) << (s + t));
      }
    }
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expect);
  }
}

// --- ballot packing ----------------------------------------------------------

TEST(Pack, BallotMatchesBitLayout) {
  std::uint32_t lanes[32] = {0};
  lanes[0] = 1;
  lanes[5] = 1;
  lanes[31] = 3;  // only bit 0 participates
  EXPECT_EQ(ballot_pack(lanes, 32), (1u << 0) | (1u << 5) | (1u << 31));
}

TEST(Pack, BallotPartialWarp) {
  std::uint32_t lanes[32] = {1, 1, 1, 1};
  EXPECT_EQ(ballot_pack(lanes, 4), 0xfu);
}

class PackPlanesTest : public ::testing::TestWithParam<int> {};

TEST_P(PackPlanesTest, RoundTrip) {
  const int q = GetParam();
  Rng rng(q);
  const std::int64_t n = 77;
  std::vector<std::int32_t> vals(static_cast<std::size_t>(n));
  for (auto& v : vals) {
    v = static_cast<std::int32_t>(rng.uniform_int(0, (1 << q) - 1));
  }
  const auto planes = pack_bit_planes(vals.data(), n, q);
  EXPECT_EQ(static_cast<int>(planes.size()), q);
  EXPECT_EQ(planes[0].size(), static_cast<std::size_t>((n + 31) / 32));
  EXPECT_EQ(unpack_bit_planes(planes, n), vals);
}

INSTANTIATE_TEST_SUITE_P(Bits, PackPlanesTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

// --- bit copy ----------------------------------------------------------------

TEST(BitCopy, AlignedWordCopy) {
  std::uint64_t src[4] = {0xdeadbeefULL, 0x12345678ULL, 0, 0};
  std::uint64_t dst[4] = {0, 0, 0, 0};
  copy_bits(dst, 0, src, 0, 128);
  EXPECT_EQ(dst[0], src[0]);
  EXPECT_EQ(dst[1], src[1]);
}

TEST(BitCopy, UnalignedRandomized) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t src[8], dst[8], expect_dst[8];
    for (int i = 0; i < 8; ++i) {
      src[i] = rng.next_u64();
      dst[i] = rng.next_u64();
      expect_dst[i] = dst[i];
    }
    const std::int64_t src_bit = rng.uniform_int(0, 200);
    const std::int64_t dst_bit = rng.uniform_int(0, 200);
    const std::int64_t count = rng.uniform_int(0, 300);
    // Golden: bit-by-bit copy.
    for (std::int64_t i = 0; i < count; ++i) {
      put_bit(expect_dst, dst_bit + i, get_bit(src, src_bit + i));
    }
    copy_bits(dst, dst_bit, src, src_bit, count);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(dst[i], expect_dst[i]) << "trial " << trial << " word " << i;
    }
  }
}

TEST(BitCopy, FillSetsAndClears) {
  std::uint64_t buf[4] = {0, 0, 0, 0};
  fill_bits(buf, 10, 120, true);
  for (std::int64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(get_bit(buf, i), i >= 10 && i < 130) << "bit " << i;
  }
  fill_bits(buf, 20, 50, false);
  for (std::int64_t i = 20; i < 70; ++i) EXPECT_FALSE(get_bit(buf, i));
  EXPECT_TRUE(get_bit(buf, 19));
  EXPECT_TRUE(get_bit(buf, 70));
}

}  // namespace
}  // namespace apnn::bitops

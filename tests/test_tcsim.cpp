#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "src/bitops/bit_matrix.hpp"
#include "src/common/rng.hpp"
#include "src/tcsim/cost_model.hpp"
#include "src/tcsim/device_spec.hpp"
#include "src/tcsim/half.hpp"
#include "src/tcsim/mma.hpp"
#include "src/tcsim/trace.hpp"
#include "src/tcsim/traffic.hpp"

namespace apnn::tcsim {
namespace {

// --- bmma -------------------------------------------------------------------

TEST(Bmma, XorMatchesNaive) {
  Rng rng(1);
  bitops::BitMatrix a(8, 128), b(8, 128);
  a.randomize(rng);
  b.randomize(rng);
  std::int32_t acc[64] = {0};
  bmma_8x8x128(BitOp::kXor, a.row(0), a.row_words(), b.row(0), b.row_words(),
               acc);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::int32_t expect = 0;
      for (int k = 0; k < 128; ++k) {
        expect += a.get(i, k) != b.get(j, k) ? 1 : 0;
      }
      EXPECT_EQ(acc[i * 8 + j], expect) << i << "," << j;
    }
  }
}

TEST(Bmma, AndMatchesNaive) {
  Rng rng(2);
  bitops::BitMatrix a(8, 128), b(8, 128);
  a.randomize(rng);
  b.randomize(rng);
  std::int32_t acc[64] = {0};
  bmma_8x8x128(BitOp::kAnd, a.row(0), a.row_words(), b.row(0), b.row_words(),
               acc);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::int32_t expect = 0;
      for (int k = 0; k < 128; ++k) {
        expect += (a.get(i, k) && b.get(j, k)) ? 1 : 0;
      }
      EXPECT_EQ(acc[i * 8 + j], expect);
    }
  }
}

TEST(Bmma, Accumulates) {
  Rng rng(3);
  bitops::BitMatrix a(8, 128), b(8, 128);
  a.randomize(rng);
  b.randomize(rng);
  std::int32_t once[64] = {0}, twice[64] = {0};
  bmma_8x8x128(BitOp::kAnd, a.row(0), a.row_words(), b.row(0), b.row_words(),
               once);
  bmma_8x8x128(BitOp::kAnd, a.row(0), a.row_words(), b.row(0), b.row_words(),
               twice);
  bmma_8x8x128(BitOp::kAnd, a.row(0), a.row_words(), b.row(0), b.row_words(),
               twice);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(twice[i], 2 * once[i]);
}

TEST(Bmma, RowPointerVariantMatchesStrided) {
  Rng rng(4);
  bitops::BitMatrix a(8, 256), b(8, 256);
  a.randomize(rng);
  b.randomize(rng);
  std::int32_t strided[64] = {0}, rows[64] = {0};
  const std::uint64_t* arows[8];
  const std::uint64_t* brows[8];
  for (int i = 0; i < 8; ++i) {
    arows[i] = a.row(i);
    brows[i] = b.row(i);
  }
  // Second 128-bit slab.
  bmma_8x8x128(BitOp::kXor, a.row(0) + 2, a.row_words(), b.row(0) + 2,
               b.row_words(), strided);
  bmma_8x8x128_rows(BitOp::kXor, arows, brows, 2, rows);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(rows[i], strided[i]);
}

// --- integer / fp16 MMA -----------------------------------------------------

TEST(Imma, Int8TileMatchesNaive) {
  Rng rng(5);
  std::int8_t a[16 * 16], b[16 * 16];
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  std::int32_t acc[256] = {0};
  imma_16x16x16(a, 16, b, 16, acc);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      std::int32_t expect = 0;
      for (int k = 0; k < 16; ++k) expect += a[i * 16 + k] * b[j * 16 + k];
      EXPECT_EQ(acc[i * 16 + j], expect);
    }
  }
}

TEST(Imma, Int4TileMatchesNaive) {
  Rng rng(6);
  std::int8_t a[8 * 32], b[8 * 32];
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-8, 7));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-8, 7));
  std::int32_t acc[64] = {0};
  imma_8x8x32(a, 32, b, 32, acc);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::int32_t expect = 0;
      for (int k = 0; k < 32; ++k) expect += a[i * 32 + k] * b[j * 32 + k];
      EXPECT_EQ(acc[i * 8 + j], expect);
    }
  }
}

TEST(Hmma, Fp16TileApproximatesFloat) {
  Rng rng(7);
  half_t a[16 * 16], b[16 * 16];
  float af[16 * 16], bf[16 * 16];
  for (int i = 0; i < 256; ++i) {
    af[i] = static_cast<float>(rng.uniform(-2, 2));
    bf[i] = static_cast<float>(rng.uniform(-2, 2));
    a[i] = float_to_half(af[i]);
    b[i] = float_to_half(bf[i]);
  }
  float acc[256] = {0};
  hmma_16x16x16(a, 16, b, 16, acc);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      float expect = 0;
      for (int k = 0; k < 16; ++k) {
        expect += half_to_float(a[i * 16 + k]) * half_to_float(b[j * 16 + k]);
      }
      EXPECT_FLOAT_EQ(acc[i * 16 + j], expect);
    }
  }
}

// --- half precision -----------------------------------------------------------

TEST(Half, ExactSmallValues) {
  for (float f : {0.f, 1.f, -1.f, 0.5f, 2.f, 1024.f, -0.25f}) {
    EXPECT_EQ(half_to_float(float_to_half(f)), f);
  }
}

TEST(Half, RoundTripErrorBounded) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const float f = static_cast<float>(rng.uniform(-100, 100));
    const float r = half_to_float(float_to_half(f));
    EXPECT_NEAR(r, f, std::abs(f) * 1e-3 + 1e-4);
  }
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1e6f))));
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1e6f))));
  EXPECT_LT(half_to_float(float_to_half(-1e6f)), 0);
}

TEST(Half, SubnormalsSurvive) {
  const float tiny = 1e-5f;  // subnormal in fp16 (min normal 6.1e-5)
  const float r = half_to_float(float_to_half(tiny));
  EXPECT_GT(r, 0.f);
  EXPECT_NEAR(r, tiny, 1e-6);
}

TEST(Half, ZeroPreservesSign) {
  EXPECT_EQ(float_to_half(0.f).bits, 0);
  EXPECT_EQ(float_to_half(-0.f).bits, 0x8000);
}

// --- counters ----------------------------------------------------------------

TEST(Traffic, AdditionAggregates) {
  TrafficCounters a, b;
  a.global_load_bytes = 10;
  a.bmma_b1 = 3;
  b.global_load_bytes = 5;
  b.alu_combine_ops = 7;
  b.kernel_launches = 1;
  const TrafficCounters c = a + b;
  EXPECT_EQ(c.global_load_bytes, 15);
  EXPECT_EQ(c.bmma_b1, 3);
  EXPECT_EQ(c.alu_combine_ops, 7);
  EXPECT_EQ(c.kernel_launches, 1);
}

TEST(Traffic, OpsPerTileShape) {
  TrafficCounters c;
  c.bmma_b1 = 1;
  c.mma_i4 = 1;
  c.mma_i8 = 1;
  c.mma_f16 = 1;
  c.fma_f32 = 1;
  EXPECT_EQ(c.ops_b1(), 2 * 8 * 8 * 128);
  EXPECT_EQ(c.ops_i4(), 2 * 8 * 8 * 32);
  EXPECT_EQ(c.ops_i8(), 2 * 16 * 16 * 16);
  EXPECT_EQ(c.ops_f16(), 2 * 16 * 16 * 16);
  EXPECT_EQ(c.ops_f32(), 2);
}

// --- device specs -------------------------------------------------------------

TEST(DeviceSpec, AmpereRatiosHold) {
  const DeviceSpec& d = rtx3090();
  EXPECT_EQ(d.num_sms, 82);
  EXPECT_DOUBLE_EQ(d.peak(Precision::kInt1) / d.peak(Precision::kInt8), 4.0);
  EXPECT_DOUBLE_EQ(d.peak(Precision::kInt4) / d.peak(Precision::kInt8), 2.0);
  const DeviceSpec& a = a100();
  EXPECT_DOUBLE_EQ(a.peak(Precision::kInt1) / a.peak(Precision::kInt8), 8.0);
}

TEST(DeviceSpec, FamilyEffFallsBack) {
  const DeviceSpec& d = rtx3090();
  EXPECT_GT(d.family_eff("apnn"), 0);
  EXPECT_DOUBLE_EQ(d.family_eff("unknown-family"),
                   DeviceSpec::kDefaultEfficiency);
}

// --- cost model ----------------------------------------------------------------

KernelProfile sample_kernel(std::int64_t blocks, std::int64_t bmma,
                            std::int64_t bytes) {
  KernelProfile k;
  k.name = "sample";
  k.family = "apnn";
  k.grid_blocks = blocks;
  k.ci = 64;
  k.counters.kernel_launches = 1;
  k.counters.bmma_b1 = bmma;
  k.counters.global_load_bytes = bytes;
  return k;
}

TEST(CostModel, ParallelEfficiencySaturates) {
  DeviceSpec linear = rtx3090();
  linear.latency_hiding_alpha = 1.0;  // exact-value checks without the
                                      // latency-hiding exponent
  CostModel cm(linear);
  EXPECT_NEAR(cm.parallel_efficiency(1), 1.0 / 82, 1e-12);
  EXPECT_NEAR(cm.parallel_efficiency(41), 0.5, 1e-12);
  EXPECT_NEAR(cm.parallel_efficiency(82), 1.0, 1e-12);
  // Wave quantization: 83 blocks take two waves.
  EXPECT_NEAR(cm.parallel_efficiency(83), 83.0 / 164, 1e-12);
  EXPECT_NEAR(cm.parallel_efficiency(8200), 1.0, 1e-12);
}

TEST(CostModel, LatencyHidingSoftensLowOccupancy) {
  CostModel cm(rtx3090());  // alpha < 1
  EXPECT_GT(cm.parallel_efficiency(8), 8.0 / 82);
  EXPECT_LT(cm.parallel_efficiency(8), 1.0);
  EXPECT_NEAR(cm.parallel_efficiency(82), 1.0, 1e-12);
  // Still monotone in the block count up to saturation.
  EXPECT_LT(cm.parallel_efficiency(8), cm.parallel_efficiency(40));
}

TEST(CostModel, CiEfficiencyMonotone) {
  CostModel cm(rtx3090());
  EXPECT_LT(cm.ci_efficiency(16), cm.ci_efficiency(64));
  EXPECT_LT(cm.ci_efficiency(64), cm.ci_efficiency(128));
  EXPECT_DOUBLE_EQ(cm.ci_efficiency(0), 1.0);
}

TEST(CostModel, MoreBlocksFasterUntilSaturation) {
  CostModel cm(rtx3090());
  const auto t8 = cm.estimate(sample_kernel(8, 1 << 20, 0));
  const auto t64 = cm.estimate(sample_kernel(64, 1 << 20, 0));
  const auto t82 = cm.estimate(sample_kernel(82, 1 << 20, 0));
  EXPECT_GT(t8.compute_us, t64.compute_us);
  EXPECT_GT(t64.compute_us, t82.compute_us);
}

TEST(CostModel, MemoryBoundKernelScalesWithBytes) {
  CostModel cm(rtx3090());
  const auto t1 = cm.estimate(sample_kernel(1000, 0, 1 << 20));
  const auto t2 = cm.estimate(sample_kernel(1000, 0, 2 << 20));
  EXPECT_NEAR(t2.global_mem_us / t1.global_mem_us, 2.0, 1e-9);
  EXPECT_GT(t2.total_us, t1.total_us);
}

TEST(CostModel, LaunchOverheadAdditivePerKernel) {
  CostModel cm(rtx3090());
  SequenceProfile seq;
  seq.add(sample_kernel(82, 1000, 1000));
  seq.add(sample_kernel(82, 1000, 1000));
  seq.add(sample_kernel(82, 1000, 1000));
  const auto est = cm.estimate(seq);
  EXPECT_NEAR(est.launch_us, 3 * rtx3090().launch_overhead_us, 1e-9);
}

TEST(CostModel, ComputeAndMemoryOverlapViaMax) {
  CostModel cm(rtx3090());
  KernelProfile k = sample_kernel(82, 1 << 22, 1 << 26);
  const auto est = cm.estimate(k);
  const double body = est.total_us - est.launch_us;
  EXPECT_NEAR(body, std::max(est.compute_us + est.alu_us, est.global_mem_us),
              1e-9);
}

TEST(Trace, ChromeTraceContainsKernels) {
  CostModel cm(rtx3090());
  SequenceProfile seq;
  seq.add(sample_kernel(82, 1 << 20, 1 << 20));
  KernelProfile k2 = sample_kernel(16, 1 << 18, 1 << 16);
  k2.name = "epilogue\"quoted\"";
  seq.add(k2);
  const std::string json = to_chrome_trace(seq, cm);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"sample\""), std::string::npos);
  EXPECT_NE(json.find("launch"), std::string::npos);
  // Quotes in kernel names must be escaped.
  EXPECT_NE(json.find("epilogue\\\"quoted\\\""), std::string::npos);
  // Two kernels -> two launch slices + two kernel slices.
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\""); pos != std::string::npos;
       pos = json.find("\"ph\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 4u);
}

TEST(Trace, WriteToFile) {
  CostModel cm(rtx3090());
  SequenceProfile seq;
  seq.add(sample_kernel(8, 1024, 1024));
  const std::string path = ::testing::TempDir() + "/trace.json";
  EXPECT_TRUE(write_chrome_trace(seq, cm, path));
  std::ifstream f(path);
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, to_chrome_trace(seq, cm));
  EXPECT_FALSE(write_chrome_trace(seq, cm, "/nonexistent-dir/trace.json"));
}

TEST(CostModel, A100FasterAtSameWork) {
  CostModel c3090(rtx3090());
  CostModel ca100(a100());
  KernelProfile k = sample_kernel(1024, 1 << 22, 1 << 24);
  EXPECT_LT(ca100.estimate(k).compute_us, c3090.estimate(k).compute_us);
}

}  // namespace
}  // namespace apnn::tcsim

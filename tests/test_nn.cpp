#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/nn/apnn_network.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/model.hpp"
#include "src/nn/serialize.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn::nn {
namespace {

const tcsim::DeviceSpec& dev() { return tcsim::rtx3090(); }

// --- model zoo shapes ------------------------------------------------------------

TEST(ModelZoo, AlexNetShapes) {
  const ModelSpec m = alexnet();
  const auto shapes = propagate_shapes(m);
  EXPECT_EQ(shapes.back().c, 1000);
  // conv1 output (post fused pool): 28x28x64.
  bool found = false;
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    if (m.layers[i].name == "conv1.quant") {
      EXPECT_EQ(shapes[i].h, 28);
      EXPECT_EQ(shapes[i].c, 64);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelZoo, VggVariantShapes) {
  const ModelSpec m = vgg_variant();
  const auto shapes = propagate_shapes(m);
  EXPECT_EQ(shapes.back().c, 1000);
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    if (m.layers[i].name == "conv5_2.quant") {
      EXPECT_EQ(shapes[i].h, 7);
      EXPECT_EQ(shapes[i].c, 512);
    }
  }
}

TEST(ModelZoo, ResNet18Shapes) {
  const ModelSpec m = resnet18();
  const auto shapes = propagate_shapes(m);
  EXPECT_EQ(shapes.back().c, 1000);
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    if (m.layers[i].name == "avgpool") {
      EXPECT_EQ(shapes[i].h, 1);
      EXPECT_EQ(shapes[i].c, 512);
    }
    if (m.layers[i].name == "layer4.1.quant2") {
      EXPECT_EQ(shapes[i].h, 7);
      EXPECT_EQ(shapes[i].c, 512);
    }
  }
}

TEST(ModelZoo, MacCountsOrdering) {
  // VGG-Variant is the heaviest of the three (the paper's latency ordering).
  const std::int64_t alex = model_macs(alexnet());
  const std::int64_t vgg = model_macs(vgg_variant());
  const std::int64_t res = model_macs(resnet18());
  EXPECT_GT(vgg, res);
  EXPECT_GT(res, alex);
  EXPECT_GT(alex, std::int64_t{500} * 1000 * 1000);  // ~0.7 GMAC
}

TEST(ModelZoo, ScanTailFindsFusionRun) {
  const ModelSpec m = mini_cnn();
  // Layer 0 is conv1; tail = bn, relu, quant.
  const TailScan t0 = scan_tail(m, 0);
  EXPECT_TRUE(t0.has_bn);
  EXPECT_TRUE(t0.has_relu);
  EXPECT_TRUE(t0.has_quant);
  EXPECT_FALSE(t0.pool.active());
  EXPECT_EQ(t0.absorbed.size(), 3u);
  // conv2 (index 4) has a pooled tail.
  const TailScan t1 = scan_tail(m, 4);
  EXPECT_TRUE(t1.pool.active());
  EXPECT_EQ(t1.absorbed.size(), 4u);
}

TEST(ModelZoo, ResidualReferencesAreValid) {
  const ModelSpec m = resnet18();
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    const LayerSpec& l = m.layers[i];
    if (l.kind == LayerKind::kResidualAdd) {
      EXPECT_GE(l.residual, 0);
      EXPECT_LT(static_cast<std::size_t>(l.residual), i);
    }
  }
  EXPECT_NO_THROW(propagate_shapes(m));
}

// --- profiling engine -------------------------------------------------------------

TEST(Engine, SchemeLabels) {
  SchemeConfig apnn;
  apnn.wbits = 1;
  apnn.abits = 2;
  EXPECT_EQ(apnn.label(), "APNN-w1a2");
  SchemeConfig f32;
  f32.scheme = Scheme::kFloat32;
  EXPECT_EQ(f32.label(), "CUTLASS-Single");
}

TEST(Engine, ProfilesEveryLayer) {
  const ModelSpec m = mini_cnn();
  SchemeConfig cfg;
  const ModelProfile p = profile_model(m, 8, cfg, dev());
  // input.quant + one entry per spec layer.
  EXPECT_EQ(p.layers.size(), m.layers.size() + 1);
  EXPECT_GT(p.total_us, 0);
  EXPECT_GT(p.throughput_fps(), 0);
}

TEST(Engine, FusionReducesLatency) {
  const ModelSpec m = vgg_lite();
  SchemeConfig fused, unfused;
  unfused.fuse = false;
  const double tf = profile_model(m, 8, fused, dev()).total_us;
  const double tu = profile_model(m, 8, unfused, dev()).total_us;
  EXPECT_LT(tf, tu);
}

TEST(Engine, FusedLayersMarked) {
  const ModelSpec m = mini_cnn();
  SchemeConfig cfg;
  const ModelProfile p = profile_model(m, 8, cfg, dev());
  int fused = 0;
  for (const auto& lp : p.layers) fused += lp.fused_away ? 1 : 0;
  EXPECT_GT(fused, 0);
  for (const auto& lp : p.layers) {
    if (lp.fused_away) {
      EXPECT_EQ(lp.latency.total_us, 0.0);
    }
  }
}

TEST(Engine, SchemeOrderingOnVggLite) {
  // The Table 2/3 shape: BNN and APNN-w1a2 beat int8/half/fp32; fp32 slowest.
  const ModelSpec m = vgg_variant();
  auto total = [&](Scheme s, int wb = 1, int ab = 2) {
    SchemeConfig cfg;
    cfg.scheme = s;
    cfg.wbits = wb;
    cfg.abits = ab;
    return profile_model(m, 8, cfg, dev()).total_us;
  };
  const double t_f32 = total(Scheme::kFloat32);
  const double t_f16 = total(Scheme::kFloat16);
  const double t_i8 = total(Scheme::kInt8);
  const double t_bnn = total(Scheme::kBnn);
  const double t_apnn = total(Scheme::kApnn);
  EXPECT_LT(t_apnn, t_i8);
  EXPECT_LT(t_bnn, t_i8);
  EXPECT_LT(t_i8, t_f32);
  EXPECT_LT(t_f16, t_f32);
}

TEST(Engine, MoreActivationBitsCostMore) {
  const ModelSpec m = vgg_lite();
  auto total = [&](int wb, int ab) {
    SchemeConfig cfg;
    cfg.wbits = wb;
    cfg.abits = ab;
    return profile_model(m, 8, cfg, dev()).total_us;
  };
  EXPECT_LT(total(1, 2), total(2, 2));
  EXPECT_LT(total(2, 2), total(2, 8));
}

TEST(Engine, ThroughputScalesSublinearlyWithBatch) {
  const ModelSpec m = vgg_lite();
  SchemeConfig cfg;
  const ModelProfile p8 = profile_model(m, 8, cfg, dev());
  const ModelProfile p128 = profile_model(m, 128, cfg, dev());
  EXPECT_GT(p128.total_us, p8.total_us);               // more work
  EXPECT_GT(p128.throughput_fps(), p8.throughput_fps());  // amortized
}

TEST(Engine, FirstConvDominatesApnnLatency) {
  // Fig 9 property: the first (largest-feature-map) layer takes the
  // biggest share.
  const ModelSpec m = alexnet();
  SchemeConfig cfg;
  const ModelProfile p = profile_model(m, 8, cfg, dev());
  double first_conv = 0, max_other = 0;
  for (const auto& lp : p.layers) {
    if (lp.name == "conv1") {
      first_conv = lp.latency.total_us;
    } else if (lp.kind == LayerKind::kConv ||
               lp.kind == LayerKind::kLinear) {
      max_other = std::max(max_other, lp.latency.total_us);
    }
  }
  EXPECT_GT(first_conv, max_other);
}

// --- functional APNN network -------------------------------------------------------

TEST(ApnnNetwork, ForwardMatchesReferenceMiniCnn) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 42);
  Rng rng(1);
  Tensor<std::int32_t> input({2, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const auto ref = net.forward_reference(input);
  const auto got = net.forward(input, dev());
  EXPECT_EQ(got, ref);
}

TEST(ApnnNetwork, ForwardMatchesReferenceMultiBit) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 2, 3, 43);
  Rng rng(2);
  Tensor<std::int32_t> input({1, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  EXPECT_EQ(net.forward(input, dev()), net.forward_reference(input));
}

TEST(ApnnNetwork, LogitsShapeAndDeterminism) {
  const ModelSpec m = mini_cnn(4, 8, 7);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 44);
  Rng rng(3);
  Tensor<std::int32_t> input({3, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const auto a = net.forward(input, dev());
  const auto b = net.forward(input, dev());
  EXPECT_EQ(a.shape(), (std::vector<std::int64_t>{3, 7}));
  EXPECT_EQ(a, b);
}

TEST(ApnnNetwork, CollectsKernelProfiles) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 45);
  Rng rng(4);
  Tensor<std::int32_t> input({1, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  tcsim::SequenceProfile prof;
  net.forward(input, dev(), &prof);
  // decompose + 2 convs + 1 linear at least.
  EXPECT_GE(prof.kernels.size(), 4u);
  EXPECT_GT(prof.total_counters().bmma_b1, 0);
}

TEST(ApnnNetwork, MiniResNetForwardMatchesReference) {
  // Exercises the residual dataflow: projection shortcuts, residual adds on
  // dense int32 values, standalone ReLU/quantize after the adds, and the
  // final average pool on quantized codes.
  const ModelSpec m = mini_resnet(3, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 61);
  Rng rng(62);
  Tensor<std::int32_t> input({2, 8, 8, 3});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const auto got = net.forward(input, dev());
  EXPECT_EQ(got.shape(), (std::vector<std::int64_t>{2, 5}));
  EXPECT_EQ(got, net.forward_reference(input));
}

TEST(ApnnNetwork, MiniResNetMultiBitMatchesReference) {
  const ModelSpec m = mini_resnet(3, 8, 4);
  ApnnNetwork net = ApnnNetwork::random(m, 2, 2, 63);
  Rng rng(64);
  Tensor<std::int32_t> input({1, 8, 8, 3});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  EXPECT_EQ(net.forward(input, dev()), net.forward_reference(input));
}

TEST(ModelZoo, MiniResNetShapes) {
  const ModelSpec m = mini_resnet(3, 8, 5);
  const auto shapes = propagate_shapes(m);
  EXPECT_EQ(shapes.back().c, 5);
  bool saw_ds = false;
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    if (m.layers[i].name == "block2.downsample") {
      EXPECT_EQ(shapes[i].h, 4);  // strided projection halves the map
      EXPECT_EQ(shapes[i].c, 16);
      saw_ds = true;
    }
  }
  EXPECT_TRUE(saw_ds);
}

TEST(Engine, ProfilesResidualModels) {
  SchemeConfig cfg;
  const ModelProfile p = profile_model(mini_resnet(), 8, cfg, dev());
  EXPECT_GT(p.total_us, 0);
  // Residual adds are standalone elementwise kernels (never fused).
  bool saw_add = false;
  for (const auto& lp : p.layers) {
    if (lp.kind == LayerKind::kResidualAdd) {
      EXPECT_FALSE(lp.fused_away);
      EXPECT_GT(lp.latency.total_us, 0);
      saw_add = true;
    }
  }
  EXPECT_TRUE(saw_add);
}

TEST(BinaryNetwork, ForwardMatchesReferenceMiniCnn) {
  // End-to-end BNN: ±1 activations between layers exercise the Case II
  // XOR datapath and the §4.2b pad-1 + counter amendment inside a network.
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random_binary(m, 91);
  Rng rng(92);
  Tensor<std::int32_t> input({2, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  EXPECT_EQ(net.forward(input, dev()), net.forward_reference(input));
}

TEST(BinaryNetwork, ForwardMatchesReferenceVggLite) {
  const ModelSpec m = vgg_lite(16, 6);
  ApnnNetwork net = ApnnNetwork::random_binary(m, 93);
  Rng rng(94);
  Tensor<std::int32_t> input({1, 16, 16, 3});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  EXPECT_EQ(net.forward(input, dev()), net.forward_reference(input));
}

TEST(BinaryNetwork, RejectsStandaloneQuantize) {
  // ResNet's post-add quantize layers cannot fold into a stage tail.
  EXPECT_THROW(ApnnNetwork::random_binary(mini_resnet(), 95), apnn::Error);
}

TEST(Serialize, RoundTripPreservesLogits) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 77);
  Rng rng(78);
  Tensor<std::int32_t> input({2, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const auto before = net.forward(input, dev());

  const std::string path = ::testing::TempDir() + "/apnn_roundtrip.bin";
  ASSERT_TRUE(save_network(net, path));
  const ApnnNetwork loaded = load_network(path);
  EXPECT_EQ(loaded.spec().name, m.name);
  EXPECT_EQ(loaded.wbits(), 1);
  EXPECT_EQ(loaded.abits(), 2);
  EXPECT_EQ(loaded.forward(input, dev()), before);
  EXPECT_EQ(loaded.forward_reference(input), before);
}

TEST(Serialize, RoundTripResidualNetwork) {
  const ModelSpec m = mini_resnet(3, 8, 4);
  ApnnNetwork net = ApnnNetwork::random(m, 2, 2, 79);
  Rng rng(80);
  Tensor<std::int32_t> input({1, 8, 8, 3});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const std::string path = ::testing::TempDir() + "/apnn_resnet.bin";
  ASSERT_TRUE(save_network(net, path));
  EXPECT_EQ(load_network(path).forward(input, dev()),
            net.forward(input, dev()));
}

TEST(Serialize, RoundTripBinaryNetwork) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random_binary(m, 96);
  Rng rng(97);
  Tensor<std::int32_t> input({1, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const std::string path = ::testing::TempDir() + "/apnn_bnn.bin";
  ASSERT_TRUE(save_network(net, path));
  EXPECT_EQ(load_network(path).forward(input, dev()),
            net.forward(input, dev()));
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/apnn_garbage.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a network";
  }
  EXPECT_THROW(load_network(path), apnn::Error);
  EXPECT_THROW(load_network(::testing::TempDir() + "/does_not_exist.bin"),
               apnn::Error);
}

// --- corrupt / hostile file hardening ----------------------------------------
// Hand-assembled network files that are valid up to a poisoned field: the
// loader must throw apnn::Error at the validation, not act on the bad value
// (an unbounded Tensor allocation, byte-reversed weights, a hang on a
// truncated stream).

namespace corrupt {

template <typename T>
void put(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_string(std::ofstream& f, const std::string& s) {
  put<std::uint64_t>(f, s.size());
  f.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Serialized header: magic, version 2, byte-order marker.
void put_header(std::ofstream& f, std::uint32_t mark = 0x01020304u) {
  f.write("APNN", 4);
  put<std::uint32_t>(f, 2);
  put<std::uint32_t>(f, mark);
}

// A syntactically valid single-linear-layer spec plus the stage preamble,
// stopping right where the stage's weight tensor begins — the next bytes a
// loader reads are the tensor rank and dims under test.
void put_up_to_weight_tensor(std::ofstream& f) {
  put_string(f, "corrupt-test");               // spec.name
  put<std::int64_t>(f, 4);                     // input c
  put<std::int64_t>(f, 8);                     // input h
  put<std::int64_t>(f, 8);                     // input w
  put<std::uint64_t>(f, 1);                    // one layer
  put<std::int32_t>(f, static_cast<std::int32_t>(LayerKind::kLinear));
  put_string(f, "fc");                         // layer name
  put<std::int64_t>(f, 0);                     // conv.out_c
  put<std::int32_t>(f, 3);                     // conv.kernel
  put<std::int32_t>(f, 1);                     // conv.stride
  put<std::int32_t>(f, 1);                     // conv.pad
  put<std::int64_t>(f, 5);                     // out_features
  put<std::int32_t>(f,
                    static_cast<std::int32_t>(core::PoolSpec::Kind::kMax));
  put<std::int32_t>(f, 2);                     // pool.size
  put<std::int32_t>(f, -1);                    // input
  put<std::int32_t>(f, -1);                    // residual
  put<std::int32_t>(f, 1);                     // wbits
  put<std::int32_t>(f, 2);                     // abits
  put<std::uint8_t>(f, 1);                     // calibrated
  put<std::uint8_t>(f, 0);                     // binary
  put<std::uint64_t>(f, 1);                    // one stage
  put<std::uint64_t>(f, 0);                    // stage.layer_index
  put<std::int32_t>(f, 2);                     // stage.in_bits
}

}  // namespace corrupt

TEST(Serialize, RejectsHugeTensorDims) {
  // A corrupt dim must fail the plausibility check instead of sizing a
  // Tensor at petabyte scale (or overflowing the element count).
  const std::string path = ::testing::TempDir() + "/apnn_huge_dims.bin";
  {
    std::ofstream f(path, std::ios::binary);
    corrupt::put_header(f);
    corrupt::put_up_to_weight_tensor(f);
    corrupt::put<std::uint32_t>(f, 2);                      // rank
    corrupt::put<std::int64_t>(f, std::int64_t{1} << 40);   // dim 0
    corrupt::put<std::int64_t>(f, std::int64_t{1} << 40);   // dim 1
  }
  EXPECT_THROW(load_network(path), apnn::Error);
}

TEST(Serialize, RejectsNegativeTensorDims) {
  const std::string path = ::testing::TempDir() + "/apnn_neg_dims.bin";
  {
    std::ofstream f(path, std::ios::binary);
    corrupt::put_header(f);
    corrupt::put_up_to_weight_tensor(f);
    corrupt::put<std::uint32_t>(f, 2);        // rank
    corrupt::put<std::int64_t>(f, -1);        // dim 0: negative
    corrupt::put<std::int64_t>(f, 16);        // dim 1
  }
  EXPECT_THROW(load_network(path), apnn::Error);
}

TEST(Serialize, RejectsOverflowingElementCount) {
  // Each dim passes the per-dim cap but their product does not: the
  // running-numel check must fire before any allocation.
  const std::string path = ::testing::TempDir() + "/apnn_numel.bin";
  {
    std::ofstream f(path, std::ios::binary);
    corrupt::put_header(f);
    corrupt::put_up_to_weight_tensor(f);
    corrupt::put<std::uint32_t>(f, 3);  // rank
    for (int d = 0; d < 3; ++d) {
      corrupt::put<std::int64_t>(f, std::int64_t{1} << 20);
    }
  }
  EXPECT_THROW(load_network(path), apnn::Error);
}

TEST(Serialize, RejectsForeignByteOrder) {
  // The header carries the marker byte-for-byte; a reader of opposite
  // endianness sees it reversed and must refuse the file outright.
  const std::string path = ::testing::TempDir() + "/apnn_endian.bin";
  {
    std::ofstream f(path, std::ios::binary);
    corrupt::put_header(f, 0x04030201u);  // swapped marker, native version
  }
  EXPECT_THROW(load_network(path), apnn::Error);

  // A genuinely foreign file swaps the version word too — it must be
  // refused there (as a byte-order error, not a nonsense version number).
  const std::string path2 = ::testing::TempDir() + "/apnn_endian2.bin";
  {
    std::ofstream f(path2, std::ios::binary);
    f.write("APNN", 4);
    corrupt::put<std::uint32_t>(f, 0x02000000u);  // version 2, byte-swapped
    corrupt::put<std::uint32_t>(f, 0x04030201u);
  }
  EXPECT_THROW(load_network(path2), apnn::Error);
}

TEST(Serialize, ReadsVersion1Files) {
  // v1 is byte-identical to v2 minus the endian-marker word; files saved by
  // older builds must keep loading bit-exactly.
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 83);
  Rng rng(84);
  Tensor<std::int32_t> input({1, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const std::string v2_path = ::testing::TempDir() + "/apnn_v2.bin";
  ASSERT_TRUE(save_network(net, v2_path));

  std::ifstream in(v2_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  ASSERT_GT(bytes.size(), 12u);
  bytes.erase(8, 4);                 // drop the marker word
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, sizeof(v1));  // patch the version

  const std::string v1_path = ::testing::TempDir() + "/apnn_v1.bin";
  {
    std::ofstream f(v1_path, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(load_network(v1_path).forward(input, dev()),
            net.forward(input, dev()));
}

TEST(Serialize, RejectsTruncatedFiles) {
  // Every strict prefix of a valid file must throw (truncated stream), not
  // hang, crash, or return a half-initialized network.
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 81);
  Rng rng(82);
  Tensor<std::int32_t> input({1, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const std::string path = ::testing::TempDir() + "/apnn_full.bin";
  ASSERT_TRUE(save_network(net, path));

  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string full = buf.str();
  ASSERT_GT(full.size(), 64u);

  const std::string cut_path = ::testing::TempDir() + "/apnn_cut.bin";
  for (double frac : {0.05, 0.3, 0.6, 0.9, 0.999}) {
    const auto n = static_cast<std::size_t>(
        static_cast<double>(full.size()) * frac);
    {
      std::ofstream f(cut_path, std::ios::binary);
      f.write(full.data(), static_cast<std::streamsize>(n));
    }
    EXPECT_THROW(load_network(cut_path), apnn::Error)
        << "prefix of " << n << " bytes was accepted";
  }
}

TEST(ApnnNetwork, RequiresCalibration) {
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 46);
  Tensor<std::int32_t> input({1, 8, 8, 4});
  EXPECT_THROW(net.forward(input, dev()), apnn::Error);
}


// --- serialize v3: attention + sequence buckets ------------------------------

TEST(Serialize, RoundTripAttentionNetworkWithBuckets) {
  // v3 payload: seq buckets, per-layer attention params, per-stage Q/K/V/
  // output-projection weights and all four requantizers. The loaded network
  // must reproduce the original bit-for-bit on every bucket.
  const ModelSpec m = tiny_transformer();
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 900);
  Rng rng(901);
  Tensor<std::int32_t> calib({2, m.input.h, m.input.w, m.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);

  const std::string path = ::testing::TempDir() + "/apnn_attn.bin";
  ASSERT_TRUE(save_network(net, path));
  {
    std::ifstream f(path, std::ios::binary);
    char magic[4];
    std::uint32_t version = 0;
    f.read(magic, 4);
    f.read(reinterpret_cast<char*>(&version), sizeof(version));
    EXPECT_EQ(version, 3u);  // attention forces the v3 format
  }
  const ApnnNetwork loaded = load_network(path);
  EXPECT_EQ(loaded.spec().seq_buckets, m.seq_buckets);
  for (const std::int64_t seq : {std::int64_t{32}, std::int64_t{50},
                                 std::int64_t{64}}) {
    Tensor<std::int32_t> input({1, seq, std::int64_t{1}, m.input.c});
    input.randomize(rng, 0, 255);
    EXPECT_EQ(loaded.forward(input, dev()), net.forward(input, dev()))
        << "seq " << seq;
  }
}

TEST(Serialize, ConvOnlyModelsStayVersion2) {
  // A model with no attention layers and no buckets must still be written
  // as v2, so files produced by this build keep loading in older readers.
  const ModelSpec m = mini_cnn(4, 8, 5);
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 902);
  Rng rng(903);
  Tensor<std::int32_t> input({1, 8, 8, 4});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const std::string path = ::testing::TempDir() + "/apnn_conv_v2.bin";
  ASSERT_TRUE(save_network(net, path));
  std::ifstream f(path, std::ios::binary);
  char magic[4];
  std::uint32_t version = 0;
  f.read(magic, 4);
  f.read(reinterpret_cast<char*>(&version), sizeof(version));
  EXPECT_EQ(version, 2u);
}

TEST(Serialize, RejectsAttentionLayerInPreV3File) {
  // A pre-v3 file has no attention payload to read; a file that claims the
  // old version yet contains an attention layer is corrupt by definition.
  const ModelSpec m = tiny_transformer();
  ApnnNetwork net = ApnnNetwork::random(m, 1, 2, 904);
  Rng rng(905);
  Tensor<std::int32_t> calib({1, m.input.h, m.input.w, m.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);
  const std::string path = ::testing::TempDir() + "/apnn_attn_v3.bin";
  ASSERT_TRUE(save_network(net, path));

  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  const std::uint32_t v2 = 2;
  std::memcpy(bytes.data() + 4, &v2, sizeof(v2));  // lie about the version
  const std::string lied = ::testing::TempDir() + "/apnn_attn_lied.bin";
  {
    std::ofstream f(lied, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_network(lied), apnn::Error);
}

namespace corrupt_v3 {

// Serialized v3 header: magic, version 3, byte-order marker.
void put_header(std::ofstream& f) {
  f.write("APNN", 4);
  corrupt::put<std::uint32_t>(f, 3);
  corrupt::put<std::uint32_t>(f, 0x01020304u);
}

void put_input_dims(std::ofstream& f) {
  corrupt::put_string(f, "corrupt-v3");
  corrupt::put<std::int64_t>(f, 32);  // input c
  corrupt::put<std::int64_t>(f, 64);  // input h
  corrupt::put<std::int64_t>(f, 1);   // input w
}

}  // namespace corrupt_v3

TEST(Serialize, RejectsNonAscendingSeqBuckets) {
  const std::string path = ::testing::TempDir() + "/apnn_bad_buckets.bin";
  {
    std::ofstream f(path, std::ios::binary);
    corrupt_v3::put_header(f);
    corrupt_v3::put_input_dims(f);
    corrupt::put<std::uint64_t>(f, 2);   // two buckets...
    corrupt::put<std::int64_t>(f, 64);   // ...out of order
    corrupt::put<std::int64_t>(f, 32);
  }
  EXPECT_THROW(load_network(path), apnn::Error);
}

TEST(Serialize, RejectsImplausibleBucketCount) {
  const std::string path = ::testing::TempDir() + "/apnn_bucket_count.bin";
  {
    std::ofstream f(path, std::ios::binary);
    corrupt_v3::put_header(f);
    corrupt_v3::put_input_dims(f);
    corrupt::put<std::uint64_t>(f, std::uint64_t{1} << 32);
  }
  EXPECT_THROW(load_network(path), apnn::Error);
}

TEST(Serialize, RejectsImplausibleAttentionParams) {
  // heads = 0 on an attention layer must fail the plausibility check, not
  // build a zero-head layer (or divide by it later).
  const std::string path = ::testing::TempDir() + "/apnn_bad_heads.bin";
  {
    std::ofstream f(path, std::ios::binary);
    corrupt_v3::put_header(f);
    corrupt_v3::put_input_dims(f);
    corrupt::put<std::uint64_t>(f, 0);  // no buckets
    corrupt::put<std::uint64_t>(f, 1);  // one layer
    corrupt::put<std::int32_t>(f,
                               static_cast<std::int32_t>(
                                   LayerKind::kAttention));
    corrupt::put_string(f, "attn");
    corrupt::put<std::int64_t>(f, 0);   // conv.out_c
    corrupt::put<std::int32_t>(f, 3);   // conv.kernel
    corrupt::put<std::int32_t>(f, 1);   // conv.stride
    corrupt::put<std::int32_t>(f, 1);   // conv.pad
    corrupt::put<std::int64_t>(f, 0);   // out_features
    corrupt::put<std::int32_t>(
        f, static_cast<std::int32_t>(core::PoolSpec::Kind::kMax));
    corrupt::put<std::int32_t>(f, 2);   // pool.size
    corrupt::put<std::int32_t>(f, -1);  // input
    corrupt::put<std::int32_t>(f, -1);  // residual
    corrupt::put<std::int32_t>(f, 0);   // attn.heads: implausible
    corrupt::put<std::int64_t>(f, 16);  // attn.d_head
    corrupt::put<std::int32_t>(f, -1);  // attn.scale_shift
  }
  EXPECT_THROW(load_network(path), apnn::Error);
}

TEST(Serialize, RejectsUnknownLayerKind) {
  const std::string path = ::testing::TempDir() + "/apnn_bad_kind.bin";
  {
    std::ofstream f(path, std::ios::binary);
    corrupt_v3::put_header(f);
    corrupt_v3::put_input_dims(f);
    corrupt::put<std::uint64_t>(f, 0);   // no buckets
    corrupt::put<std::uint64_t>(f, 1);   // one layer
    corrupt::put<std::int32_t>(f, 99);   // kind beyond the enum
  }
  EXPECT_THROW(load_network(path), apnn::Error);
}

}  // namespace
}  // namespace apnn::nn


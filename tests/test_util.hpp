// Shared helpers for the test suite: naive golden models and random operand
// generators.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/core/ap_bit.hpp"
#include "src/layout/tensor.hpp"

namespace apnn::testing {

/// Naive integer GEMM on logical values: y[m][n] = sum_k a[m][k] * b[n][k].
inline Tensor<std::int32_t> naive_gemm(const Tensor<std::int32_t>& a,
                                       const Tensor<std::int32_t>& b) {
  const std::int64_t m = a.dim(0), n = b.dim(0), k = a.dim(1);
  Tensor<std::int32_t> y({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int64_t>(a(i, kk)) * b(j, kk);
      }
      y(i, j) = static_cast<std::int32_t>(acc);
    }
  }
  return y;
}

/// Random logical matrix for an encoding.
inline Tensor<std::int32_t> random_logical(Rng& rng, std::int64_t rows,
                                           std::int64_t cols,
                                           core::Encoding enc, int bits) {
  Tensor<std::int32_t> t({rows, cols});
  const core::ValueRange r = core::encoding_range(enc, bits);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (enc == core::Encoding::kSignedPM1) {
      t[i] = rng.bernoulli(0.5) ? 1 : -1;
    } else {
      t[i] = static_cast<std::int32_t>(rng.uniform_int(r.lo, r.hi));
    }
  }
  return t;
}

/// Random operand (logical values + decomposed planes).
inline core::ApOperand random_operand(Rng& rng, std::int64_t rows,
                                      std::int64_t cols, core::Encoding enc,
                                      int bits) {
  return core::make_operand(random_logical(rng, rows, cols, enc, bits), enc,
                            bits);
}

}  // namespace apnn::testing

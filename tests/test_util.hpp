// Shared helpers for the test suite: naive golden models and random operand
// generators.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/core/ap_bit.hpp"
#include "src/layout/im2col.hpp"
#include "src/layout/tensor.hpp"

namespace apnn::testing {

/// Naive integer GEMM on logical values: y[m][n] = sum_k a[m][k] * b[n][k].
inline Tensor<std::int32_t> naive_gemm(const Tensor<std::int32_t>& a,
                                       const Tensor<std::int32_t>& b) {
  const std::int64_t m = a.dim(0), n = b.dim(0), k = a.dim(1);
  Tensor<std::int32_t> y({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int64_t>(a(i, kk)) * b(j, kk);
      }
      y(i, j) = static_cast<std::int32_t>(acc);
    }
  }
  return y;
}

/// Random logical matrix for an encoding.
inline Tensor<std::int32_t> random_logical(Rng& rng, std::int64_t rows,
                                           std::int64_t cols,
                                           core::Encoding enc, int bits) {
  Tensor<std::int32_t> t({rows, cols});
  const core::ValueRange r = core::encoding_range(enc, bits);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (enc == core::Encoding::kSignedPM1) {
      t[i] = rng.bernoulli(0.5) ? 1 : -1;
    } else {
      t[i] = static_cast<std::int32_t>(rng.uniform_int(r.lo, r.hi));
    }
  }
  return t;
}

/// Random operand (logical values + decomposed planes).
inline core::ApOperand random_operand(Rng& rng, std::int64_t rows,
                                      std::int64_t cols, core::Encoding enc,
                                      int bits) {
  return core::make_operand(random_logical(rng, rows, cols, enc, bits), enc,
                            bits);
}

/// Materialized convolution golden: dense im2col patch matrix x flattened
/// OHWI weights, reshaped to NHWC. An independent lowering the fused
/// im2col-free path is differentially tested against.
inline Tensor<std::int32_t> conv_via_im2col_dense(
    const Tensor<std::int32_t>& x_nhwc, const Tensor<std::int32_t>& w_ohwi,
    const layout::ConvGeometry& g) {
  const Tensor<std::int32_t> patches = layout::im2col_dense(x_nhwc, g, 0);
  const Tensor<std::int32_t> w_flat = w_ohwi.reshaped({g.out_c, g.gemm_k()});
  Tensor<std::int32_t> y({g.batch, g.out_h(), g.out_w(), g.out_c});
  for (std::int64_t row = 0; row < patches.dim(0); ++row) {
    for (std::int64_t m = 0; m < g.out_c; ++m) {
      std::int64_t acc = 0;
      for (std::int64_t k = 0; k < g.gemm_k(); ++k) {
        acc += static_cast<std::int64_t>(patches(row, k)) * w_flat(m, k);
      }
      y[row * g.out_c + m] = static_cast<std::int32_t>(acc);
    }
  }
  return y;
}

}  // namespace apnn::testing

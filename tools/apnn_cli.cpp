// Command-line front end for the library: price arbitrary GEMM / conv /
// model configurations on the simulated devices without writing code.
//
//   apnn_cli gemm  M N K p q        [--device 3090|a100] [--trace out.json]
//   apnn_cli conv  C HW Cout k s    [--wbits p] [--abits q] [--device ...]
//   apnn_cli model alexnet|vgg|resnet18 [--scheme fp32|fp16|int8|bnn|wXaY]
//                                   [--batch N] [--device ...] [--no-fuse]
//   apnn_cli tune  mini_resnet|vgg_lite [--scheme wXaY] [--batch N]
//                                   [--cache path] [--device ...]
//   apnn_cli serve mini_resnet|vgg_lite [--scheme wXaY] [--replicas N]
//                                   [--slice-threads T] [--pin] [--clients N]
//                                   [--requests N] [--autotune]
//                                   [--cache path] [--max-batch B]
//                                   [--deadline-ms D] [--fault site:n[:mod]]
//   apnn_cli inspect --cache path
//   apnn_cli devices
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/serve_load.hpp"
#include "src/common/faultinject.hpp"
#include "src/baselines/conv.hpp"
#include "src/baselines/gemm.hpp"
#include "src/common/strings.hpp"
#include "src/common/timer.hpp"
#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"
#include "src/core/autotune.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/serialize.hpp"
#include "src/nn/server.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/cost_model.hpp"
#include "src/tcsim/trace.hpp"

using namespace apnn;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::string device = "3090";
  std::string scheme = "w1a2";
  std::string trace_path;
  std::string cache_path;
  std::int64_t batch = 8;
  int wbits = 1, abits = 2;
  int reps = 2;
  bool fuse = true;
  // serve
  int replicas = 0;       // 0 = derive jointly with slice_threads
  int slice_threads = 0;  // per-replica pool width; 0 = derive
  bool pin = false;       // pin replica slices to CPUs
  int clients = 8;
  int requests = 64;
  bool autotune = false;
  std::int64_t deadline_ms = 0;           // 0 = no per-request deadline
  std::vector<std::string> fault_specs;   // faultinject site:n[:xR|:delay=Dms]
  std::int64_t hw = 0;                    // export: input H=W override
  std::uint64_t seed = 42;                // export: weight/calibration seed
  std::string seq_buckets;                // export: CSV bucket override
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (s == "--device") {
      a.device = next("--device");
    } else if (s == "--scheme") {
      a.scheme = next("--scheme");
    } else if (s == "--trace") {
      a.trace_path = next("--trace");
    } else if (s == "--cache") {
      a.cache_path = next("--cache");
    } else if (s == "--reps") {
      a.reps = std::atoi(next("--reps").c_str());
    } else if (s == "--batch") {
      a.batch = std::atoll(next("--batch").c_str());
    } else if (s == "--max-batch") {
      a.batch = std::atoll(next("--max-batch").c_str());
    } else if (s == "--replicas") {
      a.replicas = std::atoi(next("--replicas").c_str());
    } else if (s == "--slice-threads") {
      a.slice_threads = std::atoi(next("--slice-threads").c_str());
    } else if (s == "--pin") {
      a.pin = true;
    } else if (s == "--clients") {
      a.clients = std::atoi(next("--clients").c_str());
    } else if (s == "--requests") {
      a.requests = std::atoi(next("--requests").c_str());
    } else if (s == "--autotune") {
      a.autotune = true;
    } else if (s == "--deadline-ms") {
      a.deadline_ms = std::atoll(next("--deadline-ms").c_str());
    } else if (s == "--fault") {
      a.fault_specs.push_back(next("--fault"));
    } else if (s == "--hw") {
      a.hw = std::atoll(next("--hw").c_str());
    } else if (s == "--seq-buckets") {
      a.seq_buckets = next("--seq-buckets");
    } else if (s == "--seed") {
      a.seed = static_cast<std::uint64_t>(std::atoll(next("--seed").c_str()));
    } else if (s == "--wbits") {
      a.wbits = std::atoi(next("--wbits").c_str());
    } else if (s == "--abits") {
      a.abits = std::atoi(next("--abits").c_str());
    } else if (s == "--no-fuse") {
      a.fuse = false;
    } else {
      a.positional.push_back(s);
    }
  }
  return a;
}

const tcsim::DeviceSpec& device_for(const std::string& name) {
  if (name == "a100" || name == "A100") return tcsim::a100();
  return tcsim::rtx3090();
}

// Loads a tuning cache, degrading to cold tuning on any failure. A missing
// file is the normal first run (stdout note); an existing file that fails
// to parse is data loss worth flagging (stderr warning), but never fatal —
// the entries are re-measurable.
bool load_cache_or_warn(core::TuningCache& cache, const std::string& path) {
  if (cache.load_file(path)) {
    std::printf("cache %s: %zu entries loaded (fingerprint %s)\n",
                path.c_str(), cache.size(), cache.fingerprint().c_str());
    return true;
  }
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    std::fprintf(stderr,
                 "warning: tuning cache %s exists but is corrupt, truncated, "
                 "or has a stale fingerprint — ignoring it, tuning cold\n",
                 path.c_str());
  } else {
    std::printf("cache %s: starting fresh (no existing file)\n", path.c_str());
  }
  return false;
}

nn::SchemeConfig scheme_for(const Args& a) {
  nn::SchemeConfig cfg;
  cfg.fuse = a.fuse;
  if (a.scheme == "fp32") {
    cfg.scheme = nn::Scheme::kFloat32;
  } else if (a.scheme == "fp16") {
    cfg.scheme = nn::Scheme::kFloat16;
  } else if (a.scheme == "int8") {
    cfg.scheme = nn::Scheme::kInt8;
  } else if (a.scheme == "bnn") {
    cfg.scheme = nn::Scheme::kBnn;
  } else {
    // wXaY
    int p = 1, q = 2;
    if (std::sscanf(a.scheme.c_str(), "w%da%d", &p, &q) != 2) {
      std::fprintf(stderr, "unknown scheme '%s'\n", a.scheme.c_str());
      std::exit(2);
    }
    cfg.scheme = nn::Scheme::kApnn;
    cfg.wbits = p;
    cfg.abits = q;
  }
  return cfg;
}

int cmd_gemm(const Args& a) {
  if (a.positional.size() != 6) {
    std::fprintf(stderr, "usage: apnn_cli gemm M N K p q\n");
    return 2;
  }
  const std::int64_t m = std::atoll(a.positional[1].c_str());
  const std::int64_t n = std::atoll(a.positional[2].c_str());
  const std::int64_t k = std::atoll(a.positional[3].c_str());
  const int p = std::atoi(a.positional[4].c_str());
  const int q = std::atoi(a.positional[5].c_str());
  const auto& dev = device_for(a.device);
  const tcsim::CostModel cm(dev);
  const core::EncodingConfig enc{
      p == 1 ? core::Encoding::kSignedPM1 : core::Encoding::kUnsigned01,
      core::Encoding::kUnsigned01};
  const auto prof = core::apmm_profile(m, n, k, p, q, enc, dev);
  const auto est = cm.estimate(prof);
  std::printf("APMM-w%da%d %ldx%ldx%ld on %s\n", p, q, m, n, k,
              dev.name.c_str());
  std::printf("  modeled latency : %.2f us (compute %.2f, mem %.2f, "
              "launch %.2f)\n",
              est.total_us, est.compute_us, est.global_mem_us,
              est.launch_us);
  const auto c = prof.total_counters();
  std::printf("  traffic         : %s global, %s shared, %lld bmma tiles\n",
              format_bytes(static_cast<double>(c.total_global_bytes())).c_str(),
              format_bytes(static_cast<double>(c.total_shared_bytes())).c_str(),
              static_cast<long long>(c.bmma_b1));
  for (auto prec : {tcsim::Precision::kInt4, tcsim::Precision::kInt8,
                    tcsim::Precision::kFp16}) {
    const double t =
        cm.estimate(baselines::cutlass_gemm_profile(prec, m, n, k)).total_us;
    std::printf("  vs cutlass-%-5s: %.2f us (%.2fx)\n",
                tcsim::precision_name(prec), t, t / est.total_us);
  }
  if (!a.trace_path.empty() &&
      tcsim::write_chrome_trace(prof, cm, a.trace_path)) {
    std::printf("  trace written to %s\n", a.trace_path.c_str());
  }
  return 0;
}

int cmd_conv(const Args& a) {
  if (a.positional.size() != 6) {
    std::fprintf(stderr, "usage: apnn_cli conv Cin HW Cout k s\n");
    return 2;
  }
  layout::ConvGeometry g;
  g.in_c = std::atoll(a.positional[1].c_str());
  g.in_h = g.in_w = std::atoll(a.positional[2].c_str());
  g.out_c = std::atoll(a.positional[3].c_str());
  g.kernel = std::atoi(a.positional[4].c_str());
  g.stride = std::atoi(a.positional[5].c_str());
  g.pad = g.kernel / 2;
  g.batch = a.batch;
  const auto& dev = device_for(a.device);
  const tcsim::CostModel cm(dev);
  const core::EncodingConfig enc{
      a.wbits == 1 ? core::Encoding::kSignedPM1 : core::Encoding::kUnsigned01,
      core::Encoding::kUnsigned01};
  const auto prof =
      core::apconv_profile(g, a.wbits, a.abits, enc, dev);
  const auto est = cm.estimate(prof);
  std::printf("APConv-w%da%d %ldx%ldx%ld -> %ld (k=%d s=%d batch=%ld) on "
              "%s\n",
              a.wbits, a.abits, g.in_c, g.in_h, g.in_w, g.out_c, g.kernel,
              g.stride, g.batch, dev.name.c_str());
  std::printf("  lowered GEMM    : %ldx%ldx%ld\n", g.gemm_m(), g.gemm_n(),
              g.gemm_k());
  std::printf("  modeled latency : %.2f us\n", est.total_us);
  for (auto prec : {tcsim::Precision::kInt4, tcsim::Precision::kInt8}) {
    const double t =
        cm.estimate(baselines::cutlass_conv_profile(prec, g)).total_us;
    std::printf("  vs cutlass-conv-%-5s: %.2f us (%.2fx)\n",
                tcsim::precision_name(prec), t, t / est.total_us);
  }
  if (!a.trace_path.empty() &&
      tcsim::write_chrome_trace(prof, cm, a.trace_path)) {
    std::printf("  trace written to %s\n", a.trace_path.c_str());
  }
  return 0;
}

int cmd_model(const Args& a) {
  if (a.positional.size() != 2) {
    std::fprintf(stderr, "usage: apnn_cli model alexnet|vgg|resnet18\n");
    return 2;
  }
  const std::string& name = a.positional[1];
  nn::ModelSpec spec;
  if (name == "alexnet") {
    spec = nn::alexnet();
  } else if (name == "vgg") {
    spec = nn::vgg_variant();
  } else if (name == "resnet18") {
    spec = nn::resnet18();
  } else if (name == "vgg_lite") {
    spec = nn::vgg_lite();
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
    return 2;
  }
  const auto& dev = device_for(a.device);
  const nn::SchemeConfig cfg = scheme_for(a);
  const nn::ModelProfile p = nn::profile_model(spec, a.batch, cfg, dev);
  std::printf("%s under %s on %s, batch %ld\n", spec.name.c_str(),
              cfg.label().c_str(), dev.name.c_str(), a.batch);
  std::printf("  total latency   : %.3f ms  (%.1f fps)\n", p.latency_ms(),
              p.throughput_fps());
  std::printf("  %.2f GMACs/sample\n",
              static_cast<double>(nn::model_macs(spec)) / 1e9);
  std::printf("\n  %-22s %12s %8s\n", "layer", "latency", "share");
  for (const auto& lp : p.layers) {
    if (lp.fused_away) continue;
    const double share = 100.0 * lp.latency.total_us / p.total_us;
    if (share < 0.5) continue;
    std::printf("  %-22s %12s %7.1f%%\n", lp.name.c_str(),
                format_time_us(lp.latency.total_us).c_str(), share);
  }
  return 0;
}

std::string kernel_desc(const core::TunedKernel& k) {
  std::string s = strf(
      "bm=%-3d bn=%-3d strip=%-2lld staging=%d sparse=%d fast=%d", k.tile.bm,
      k.tile.bn, static_cast<long long>(k.micro.effective_strip()),
      static_cast<int>(k.micro.staging),
      static_cast<int>(k.micro.sparse_staging), k.combine_fast ? 1 : 0);
  if (k.measured) s += strf("  %8.3f ms", k.measured_ms);
  return s;
}

int cmd_tune(const Args& a) {
  if (a.positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: apnn_cli tune mini_resnet|vgg_lite [--scheme wXaY] "
                 "[--batch N] [--cache path] [--reps R] [--device ...]\n");
    return 2;
  }
  const std::string& name = a.positional[1];
  nn::ModelSpec spec;
  if (name == "mini_resnet") {
    spec = nn::mini_resnet(8, 32, 10);  // the serving-size bench workload
  } else if (name == "vgg_lite") {
    spec = nn::vgg_lite();
  } else {
    std::fprintf(stderr,
                 "tune runs real kernels and supports the executable zoo "
                 "specs: mini_resnet, vgg_lite\n");
    return 2;
  }
  int p = 1, q = 2;
  if (std::sscanf(a.scheme.c_str(), "w%da%d", &p, &q) != 2) {
    std::fprintf(stderr, "tune needs a wXaY scheme, got '%s'\n",
                 a.scheme.c_str());
    return 2;
  }
  if (a.reps < 1 || a.batch < 1) {
    std::fprintf(stderr, "--reps and --batch must be >= 1\n");
    return 2;
  }
  const auto& dev = device_for(a.device);

  core::TuningCache cache;
  if (!a.cache_path.empty()) {
    load_cache_or_warn(cache, a.cache_path);
  }

  nn::ApnnNetwork net = nn::ApnnNetwork::random(spec, p, q, 42);
  Rng rng(43);
  Tensor<std::int32_t> input(
      {a.batch, spec.input.h, spec.input.w, spec.input.c});
  input.randomize(rng, 0, 255);
  net.calibrate(input);

  nn::SessionOptions opts;
  opts.autotune = true;
  opts.cache = &cache;
  opts.tune_batch = a.batch;
  opts.tuner.reps = a.reps;
  WallTimer timer;
  nn::InferenceSession session(net, dev, opts);
  const double tune_ms = timer.millis();

  std::printf("%s w%da%d, batch %lld, device %s\n", spec.name.c_str(), p, q,
              static_cast<long long>(a.batch), dev.name.c_str());
  const std::vector<core::TunedKernel> kernels =
      session.stage_kernels(a.batch);
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    if (!kernels[i].measured) continue;  // glue steps carry no kernel
    std::printf("  step %2zu : %s\n", i, kernel_desc(kernels[i]).c_str());
  }
  std::printf("  tuned in %.1f ms (%lld measurement runs; cache now holds "
              "%zu entries)\n",
              tune_ms, static_cast<long long>(session.tuning_measurements()),
              cache.size());

  if (!a.cache_path.empty()) {
    if (!cache.save_file(a.cache_path)) {
      std::fprintf(stderr, "cannot write %s\n", a.cache_path.c_str());
      return 3;
    }
    std::printf("  cache saved to %s (%zu entries)\n", a.cache_path.c_str(),
                cache.size());
  }
  return 0;
}

int cmd_serve(const Args& a) {
  if (a.positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: apnn_cli serve mini_resnet|vgg_lite [--scheme wXaY] "
                 "[--replicas N] [--slice-threads T] [--pin] [--clients N] "
                 "[--requests N] [--autotune] [--cache path] [--max-batch B] "
                 "[--deadline-ms D] "
                 "[--fault site:n[:xR|:delay=Dms]] [--device ...]\n");
    return 2;
  }
  const std::string& name = a.positional[1];
  nn::ModelSpec spec;
  if (name == "mini_resnet") {
    spec = nn::mini_resnet(8, 32, 10);  // the serving-size bench workload
  } else if (name == "vgg_lite") {
    spec = nn::vgg_lite();
  } else {
    std::fprintf(stderr,
                 "serve runs real kernels and supports the executable zoo "
                 "specs: mini_resnet, vgg_lite\n");
    return 2;
  }
  int p = 1, q = 2;
  if (std::sscanf(a.scheme.c_str(), "w%da%d", &p, &q) != 2) {
    std::fprintf(stderr, "serve needs a wXaY scheme, got '%s'\n",
                 a.scheme.c_str());
    return 2;
  }
  if (a.clients < 1 || a.requests < 1 || a.batch < 1 || a.replicas < 0 ||
      a.slice_threads < 0) {
    std::fprintf(stderr,
                 "--clients/--requests/--max-batch must be >= 1, "
                 "--replicas/--slice-threads >= 0 (0 derives from hardware "
                 "width)\n");
    return 2;
  }
  if (a.deadline_ms < 0) {
    std::fprintf(stderr, "--deadline-ms must be >= 0 (0 = no deadline)\n");
    return 2;
  }
  const auto& dev = device_for(a.device);

  // A cache only means something to a tuned plan; honor --cache instead of
  // silently serving untuned.
  bool autotune = a.autotune;
  if (!autotune && !a.cache_path.empty()) {
    std::printf("--cache given: enabling --autotune\n");
    autotune = true;
  }

  // The server options shape the execution topology, and the topology
  // shapes the cache: replica sessions measure on slice-wide pools, so the
  // cache fingerprint must carry the resolved slice width — a cache
  // recorded under a different topology would silently replay mismatched
  // winners. Resolve the topology first, then build the cache around it.
  nn::ServerOptions opts;
  opts.max_batch = a.batch;
  opts.replicas = a.replicas;
  opts.slice_threads = a.slice_threads;
  opts.pin_threads = a.pin;
  const nn::InferenceServer::Topology topo =
      nn::InferenceServer::derive_topology(
          opts, std::thread::hardware_concurrency());
  core::TuningCache cache(static_cast<unsigned>(topo.slice_threads));
  if (autotune && !a.cache_path.empty()) {
    load_cache_or_warn(cache, a.cache_path);
  }

  nn::ApnnNetwork net = nn::ApnnNetwork::random(spec, p, q, 42);
  Rng rng(43);
  Tensor<std::int32_t> calib(
      {a.batch, spec.input.h, spec.input.w, spec.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);

  // Golden answers from sequential batch-1 session runs: every served
  // response is bit-compared below, so a run that prints throughput has
  // also proven exactness under whatever batch mix the traffic produced.
  const int distinct = std::min(a.requests, 32);
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> golden;
  {
    nn::InferenceSession session(net, dev);
    for (int i = 0; i < distinct; ++i) {
      Tensor<std::int32_t> s({1, spec.input.h, spec.input.w, spec.input.c});
      s.randomize(rng, 0, 255);
      golden.push_back(session.run(s));
      samples.push_back(std::move(s));
    }
  }

  // Faults arm only now — after the golden runs — so a --fault trigger
  // ordinal counts traversals from server startup on, not from whatever the
  // golden generation happened to execute.
  for (const std::string& spec : a.fault_specs) {
    std::string err;
    if (!faultinject::parse_and_arm(spec, &err)) {
      std::fprintf(stderr, "--fault %s: %s\n", spec.c_str(), err.c_str());
      return 2;
    }
    std::printf("fault armed: %s\n", spec.c_str());
  }

  opts.session.autotune = autotune;
  if (autotune) opts.session.cache = &cache;

  WallTimer start_timer;
  nn::InferenceServer server(net, dev, opts);
  const double start_ms = start_timer.millis();
  std::printf("%s w%da%d on %s: %d replicas x %d-wide slices%s up in "
              "%.1f ms",
              spec.name.c_str(), p, q, dev.name.c_str(), server.replicas(),
              server.slice_threads(), a.pin ? " (pinned)" : "", start_ms);
  if (autotune) {
    std::printf(" (%lld tuning runs, cache %zu entries)",
                static_cast<long long>(server.tuning_measurements()),
                cache.size());
  }
  std::printf("\n");

  bench::LoadOptions lopts;
  lopts.deadline = std::chrono::milliseconds(a.deadline_ms);
  if (a.deadline_ms > 0) {
    std::printf("per-request deadline: %lld ms\n",
                static_cast<long long>(a.deadline_ms));
  }
  const bench::LoadResult load =
      bench::serve_load(server, samples, golden, a.clients, a.requests, lopts);
  const double ms = load.wall_ms;
  const std::int64_t bad = load.mismatches;
  const nn::InferenceServer::Stats& st = load.stats;
  std::printf("served %lld requests from %d clients in %.1f ms "
              "(%.1f req/s)\n",
              static_cast<long long>(st.requests), a.clients, ms,
              1000.0 * static_cast<double>(st.requests) / ms);
  std::printf("  batches   : %lld (largest %lld, peak queue %lld)\n",
              static_cast<long long>(st.batches),
              static_cast<long long>(st.max_batch),
              static_cast<long long>(st.peak_queue_depth));
  std::printf("  replicas  :");
  for (std::size_t r = 0; r < st.replica_batches.size(); ++r) {
    std::printf(" #%zu=%lldb/%lldr", r,
                static_cast<long long>(st.replica_batches[r]),
                static_cast<long long>(st.replica_requests[r]));
  }
  std::printf("\n");
  std::printf("  latency   : mean %.2f ms, max %.2f ms\n",
              st.requests > 0
                  ? st.total_latency_ms / static_cast<double>(st.requests)
                  : 0.0,
              st.max_latency_ms);
  std::printf("  responses : %s\n",
              bad == 0 ? "bit-exact vs sequential batch-1 runs"
                       : "MISMATCH vs sequential batch-1 runs");
  if (load.failed > 0 || load.injected > 0) {
    std::printf("  failed    : %lld typed",
                static_cast<long long>(load.failed));
    for (std::size_t k = 0; k < nn::kErrorKindCount; ++k) {
      if (load.error_counts[k] == 0) continue;
      std::printf(" %s=%lld",
                  nn::error_kind_name(static_cast<nn::ErrorKind>(k)),
                  static_cast<long long>(load.error_counts[k]));
    }
    if (load.injected > 0) {
      std::printf(", %lld raw injected",
                  static_cast<long long>(load.injected));
    }
    std::printf("\n");
  }
  if (st.replica_restarts > 0 || !a.fault_specs.empty()) {
    std::printf("  health    : %lld restarts;",
                static_cast<long long>(st.replica_restarts));
    for (std::size_t r = 0; r < st.replica_health.size(); ++r) {
      std::printf(" #%zu=%s", r,
                  nn::replica_health_name(st.replica_health[r]));
    }
    std::printf("\n");
  }

  if (autotune && !a.cache_path.empty()) {
    if (!cache.save_file(a.cache_path)) {
      std::fprintf(stderr, "cannot write %s\n", a.cache_path.c_str());
      return 3;
    }
    std::printf("  cache saved to %s (%zu entries)\n", a.cache_path.c_str(),
                cache.size());
  }

  // Distinct exit codes so CI smoke runs can tell the failure modes apart:
  //   0  drained, responses bit-exact (typed failures allowed only under an
  //      armed fault or an explicit deadline — they are the drill)
  //   1  a served response differed from the sequential golden run
  //   2  usage error (bad flags, bad --fault spec)
  //   3  tuning-cache write failure
  //   4  requests failed with nothing armed to explain it
  if (bad != 0) return 1;
  const bool failures_expected = !a.fault_specs.empty() || a.deadline_ms > 0;
  if ((load.failed > 0 || load.injected > 0) && !failures_expected) return 4;
  return 0;
}

/// `inspect <model>`: run one profiled forward pass and print the per-stage
/// occupancy the sparse fast path actually saw — zero-word share at staging
/// time, sparse-vs-dense strip decisions, and elided bit-planes — so an
/// operator can tell whether the sparse path engages on production data.
int cmd_inspect_model(const Args& a) {
  const std::string& name = a.positional[1];
  nn::ModelSpec spec;
  if (name == "mini_resnet") {
    spec = nn::mini_resnet(8, 32, 10);
  } else if (name == "vgg_lite") {
    spec = nn::vgg_lite();
  } else {
    std::fprintf(stderr,
                 "inspect runs real kernels and supports the executable zoo "
                 "specs: mini_resnet, vgg_lite\n");
    return 2;
  }
  int p = 1, q = 2;
  if (std::sscanf(a.scheme.c_str(), "w%da%d", &p, &q) != 2) {
    std::fprintf(stderr, "inspect needs a wXaY scheme, got '%s'\n",
                 a.scheme.c_str());
    return 2;
  }
  const auto& dev = device_for(a.device);
  nn::ApnnNetwork net = nn::ApnnNetwork::random(spec, p, q, 42);
  Rng rng(43);
  Tensor<std::int32_t> input(
      {a.batch, spec.input.h, spec.input.w, spec.input.c});
  input.randomize(rng, 0, 255);
  net.calibrate(input);

  nn::SessionOptions opts;
  core::TuningCache cache;
  if (!a.cache_path.empty()) {
    load_cache_or_warn(cache, a.cache_path);
    opts.autotune = true;
    opts.cache = &cache;
    opts.tune_batch = a.batch;
  }
  nn::InferenceSession session(net, dev, opts);
  Tensor<std::int32_t> logits;
  tcsim::SequenceProfile prof;
  session.run(input, &logits, &prof);

  std::printf("%s w%da%d, batch %lld, device %s — per-stage occupancy\n",
              spec.name.c_str(), p, q, static_cast<long long>(a.batch),
              dev.name.c_str());
  std::printf("  %-24s %10s %8s %8s %s\n", "kernel", "zero-words",
              "sparse", "dense", "planes elided");
  for (const auto& k : prof.kernels) {
    if (k.sparsity_sparse_strips == 0 && k.sparsity_dense_strips == 0 &&
        k.sparsity_planes == 0) {
      continue;  // glue kernels never stage panels
    }
    const std::string zw =
        k.sparsity_zero_word_fraction < 0.0
            ? std::string("   n/a")
            : strf("%5.1f%%", 100.0 * k.sparsity_zero_word_fraction);
    std::printf("  %-24s %10s %8lld %8lld %lld/%lld\n", k.name.c_str(),
                zw.c_str(),
                static_cast<long long>(k.sparsity_sparse_strips),
                static_cast<long long>(k.sparsity_dense_strips),
                static_cast<long long>(k.sparsity_planes_elided),
                static_cast<long long>(k.sparsity_planes));
  }
  return 0;
}

int cmd_inspect(const Args& a) {
  if (a.positional.size() >= 2) return cmd_inspect_model(a);
  if (a.cache_path.empty()) {
    std::fprintf(stderr,
                 "usage: apnn_cli inspect --cache path\n"
                 "       apnn_cli inspect mini_resnet|vgg_lite [--scheme "
                 "wXaY] [--batch N] [--cache path]\n");
    return 2;
  }
  core::TuningCache cache;
  if (!cache.load_file(a.cache_path, /*any_fingerprint=*/true)) {
    std::fprintf(stderr, "%s: unreadable or malformed tuning cache\n",
                 a.cache_path.c_str());
    return 1;
  }
  const std::string current = core::TuningCache::hardware_fingerprint();
  const bool stale = cache.fingerprint() != current;
  std::printf("tuning cache %s: %zu entries\n", a.cache_path.c_str(),
              cache.size());
  std::printf("  fingerprint : %s%s\n", cache.fingerprint().c_str(),
              stale ? "  [STALE — this binary would ignore it]" : "");
  if (stale) std::printf("  this binary : %s\n", current.c_str());
  for (const auto& [key, k] : cache.entries()) {
    std::printf("  %-60s %s\n", key.c_str(), kernel_desc(k).c_str());
  }
  return 0;
}

int cmd_devices() {
  for (const auto* d : {&tcsim::rtx3090(), &tcsim::a100()}) {
    std::printf("%s: %d SMs @ %.2f GHz, %.0f GB/s, peaks int1/int4/int8/"
                "fp16 = %.0f/%.0f/%.0f/%.0f TOPS\n",
                d->name.c_str(), d->num_sms, d->clock_ghz, d->mem_bw_gbps,
                d->peak(tcsim::Precision::kInt1),
                d->peak(tcsim::Precision::kInt4),
                d->peak(tcsim::Precision::kInt8),
                d->peak(tcsim::Precision::kFp16));
  }
  return 0;
}

// Writes a calibrated zoo network to a serialized file — the format the
// gateway's ModelRegistry loads (v2 for conv-only models, v3 when the
// model carries attention layers or sequence buckets). The CI gateway
// smoke and operators standing up a test gateway use this instead of
// shipping binary fixtures.
int cmd_export(const Args& a) {
  if (a.positional.size() != 3) {
    std::fprintf(stderr,
                 "usage: apnn_cli export "
                 "mini_resnet|vgg_lite|tiny_transformer <out.apnn> "
                 "[--scheme wXaY] [--hw N] [--seq-buckets 32,64,...] "
                 "[--seed S]\n");
    return 2;
  }
  const std::string& name = a.positional[1];
  const std::string& out = a.positional[2];
  nn::ModelSpec spec;
  if (name == "mini_resnet") {
    spec = nn::mini_resnet(8, a.hw > 0 ? a.hw : 32, 10);
  } else if (name == "vgg_lite") {
    spec = nn::vgg_lite(a.hw > 0 ? a.hw : 32, 10);
  } else if (name == "tiny_transformer") {
    spec = nn::tiny_transformer();
  } else {
    std::fprintf(stderr,
                 "export supports the executable zoo specs: mini_resnet, "
                 "vgg_lite, tiny_transformer\n");
    return 2;
  }
  if (!a.seq_buckets.empty()) {
    if (name != "tiny_transformer") {
      std::fprintf(stderr,
                   "--seq-buckets only applies to dynamic-shape models "
                   "(tiny_transformer)\n");
      return 2;
    }
    spec.seq_buckets.clear();
    const char* s = a.seq_buckets.c_str();
    char* end = nullptr;
    for (;;) {
      const long long b = std::strtoll(s, &end, 10);
      if (end == s || b <= 0) {
        std::fprintf(stderr, "--seq-buckets wants a CSV of positive "
                             "lengths, got '%s'\n", a.seq_buckets.c_str());
        return 2;
      }
      spec.seq_buckets.push_back(b);
      if (*end == '\0') break;
      if (*end != ',') {
        std::fprintf(stderr, "--seq-buckets wants a CSV of positive "
                             "lengths, got '%s'\n", a.seq_buckets.c_str());
        return 2;
      }
      s = end + 1;
    }
    std::sort(spec.seq_buckets.begin(), spec.seq_buckets.end());
    if (spec.input.h > spec.seq_buckets.back()) {
      // The calibration/default length must fit the largest bucket.
      spec.input.h = spec.seq_buckets.back();
    }
  }
  int p = 1, q = 2;
  if (std::sscanf(a.scheme.c_str(), "w%da%d", &p, &q) != 2) {
    std::fprintf(stderr, "export needs a wXaY scheme, got '%s'\n",
                 a.scheme.c_str());
    return 2;
  }
  nn::ApnnNetwork net =
      nn::ApnnNetwork::random(spec, p, q, static_cast<unsigned>(a.seed));
  Rng rng(a.seed + 1);
  Tensor<std::int32_t> calib({4, spec.input.h, spec.input.w, spec.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);
  if (!nn::save_network(net, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 3;
  }
  std::printf("exported %s w%da%d (input %lldx%lldx%lld, %lld classes) to "
              "%s\n",
              spec.name.c_str(), p, q, static_cast<long long>(spec.input.h),
              static_cast<long long>(spec.input.w),
              static_cast<long long>(spec.input.c),
              static_cast<long long>(spec.layers.empty()
                                         ? 0
                                         : net.shapes().back().numel()),
              out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: apnn_cli gemm|conv|model|tune|serve|export|inspect|"
                 "devices ...\n"
                 "  gemm M N K p q\n"
                 "  conv Cin HW Cout k s [--wbits p --abits q --batch N]\n"
                 "  model alexnet|vgg|resnet18|vgg_lite [--scheme wXaY|fp32|"
                 "fp16|int8|bnn] [--batch N] [--no-fuse]\n"
                 "  tune mini_resnet|vgg_lite [--scheme wXaY] [--batch N] "
                 "[--cache path] [--reps R]\n"
                 "  serve mini_resnet|vgg_lite [--scheme wXaY] [--replicas N]"
                 " [--clients N]\n"
                 "        [--slice-threads T] [--pin] [--requests N] "
                 "[--autotune] [--cache path]\n"
                 "        [--max-batch B] [--deadline-ms D] "
                 "[--fault site:n[:xR|:delay=Dms]]\n"
                 "  export mini_resnet|vgg_lite|tiny_transformer <out.apnn> "
                 "[--scheme wXaY]\n"
                 "         [--hw N] [--seq-buckets 32,64,...] [--seed S]\n"
                 "  inspect --cache path | inspect mini_resnet|vgg_lite"
                 " [--scheme wXaY] [--batch N]\n"
                 "  common: [--device 3090|a100] [--trace out.json]\n");
    return 2;
  }
  const std::string& cmd = a.positional[0];
  if (cmd == "gemm") return cmd_gemm(a);
  if (cmd == "conv") return cmd_conv(a);
  if (cmd == "model") return cmd_model(a);
  if (cmd == "tune") return cmd_tune(a);
  if (cmd == "serve") return cmd_serve(a);
  if (cmd == "export") return cmd_export(a);
  if (cmd == "inspect") return cmd_inspect(a);
  if (cmd == "devices") return cmd_devices();
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}

// The multi-model serving gateway binary (docs/OPERATIONS.md is the
// operator's manual; docs/PROTOCOL.md the wire spec):
//
//   apnn_serve serve  --config gw.ini | --model id=path ...
//                     [--port P] [--port-file F] [--device 3090|a100]
//                     [--max-frame-bytes N] [--no-admin]
//   apnn_serve client <model> --port P [--requests N] [--deadline-ms D]
//                     [--seed S]
//   apnn_serve admin  ping|list|stats|load|unload|reload [id] [path]
//                     --port P
//   apnn_serve --error-table
//
// `serve` runs until SIGINT/SIGTERM, then drains and exits 0 — a nonzero
// exit from a signaled gateway is a shutdown bug, and the CI smoke asserts
// on it. `client` drives random-sample INFER round trips over the binary
// protocol. `admin` speaks the admin ops via the reference client.
// `--error-table` prints the generated PROTOCOL.md error-code table
// (tools/check_protocol_docs.py compares it against the checked-in doc).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/strings.hpp"
#include "src/nn/gateway.hpp"
#include "src/nn/protocol.hpp"
#include "src/nn/registry.hpp"
#include "src/tcsim/cost_model.hpp"

using namespace apnn;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

const tcsim::DeviceSpec& device_for(const std::string& name) {
  if (name == "a100" || name == "A100") return tcsim::a100();
  return tcsim::rtx3090();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: apnn_serve serve --config gw.ini | --model id=path ...\n"
      "                        [--port P] [--port-file F] [--device 3090|"
      "a100]\n"
      "                        [--max-frame-bytes N] [--no-admin]\n"
      "       apnn_serve client <model> --port P [--requests N]\n"
      "                        [--deadline-ms D] [--seed S]\n"
      "       apnn_serve admin ping|list|stats|load|unload|reload [id] "
      "[path] --port P\n"
      "       apnn_serve --error-table\n");
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  std::string config_path;
  std::vector<std::string> model_flags;  // id=path
  std::string port_file;
  std::string device;  // empty = config's (or 3090)
  int port = -1;       // -1 = config's (or ephemeral)
  std::int64_t max_frame_bytes = -1;
  bool no_admin = false;
  int requests = 4;
  std::int64_t deadline_ms = 0;
  std::uint64_t seed = 1234;
  bool vary_seq = false;
  bool error_table = false;
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (s == "--config") {
      a->config_path = next("--config");
    } else if (s == "--model") {
      a->model_flags.push_back(next("--model"));
    } else if (s == "--port") {
      a->port = std::atoi(next("--port"));
    } else if (s == "--port-file") {
      a->port_file = next("--port-file");
    } else if (s == "--device") {
      a->device = next("--device");
    } else if (s == "--max-frame-bytes") {
      a->max_frame_bytes = std::atoll(next("--max-frame-bytes"));
    } else if (s == "--no-admin") {
      a->no_admin = true;
    } else if (s == "--requests") {
      a->requests = std::atoi(next("--requests"));
    } else if (s == "--deadline-ms") {
      a->deadline_ms = std::atoll(next("--deadline-ms"));
    } else if (s == "--seed") {
      a->seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (s == "--vary-seq") {
      a->vary_seq = true;
    } else if (s == "--error-table") {
      a->error_table = true;
    } else if (!s.empty() && s[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", s.c_str());
      return false;
    } else {
      a->positional.push_back(s);
    }
  }
  return true;
}

int cmd_serve(const Args& a) {
  nn::gw::GatewayConfig cfg;
  if (!a.config_path.empty()) {
    cfg = nn::gw::load_gateway_config(a.config_path);
  }
  for (const std::string& flag : a.model_flags) {
    const std::size_t eq = flag.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == flag.size()) {
      std::fprintf(stderr, "--model wants id=path, got '%s'\n", flag.c_str());
      return 2;
    }
    nn::gw::ModelConfig m;
    m.id = flag.substr(0, eq);
    m.path = flag.substr(eq + 1);
    cfg.models.push_back(std::move(m));
  }
  if (cfg.models.empty()) {
    std::fprintf(stderr,
                 "no models: give --config with [model ...] sections and/or "
                 "--model id=path\n");
    return 2;
  }
  if (a.port >= 0) cfg.port = a.port;
  if (!a.device.empty()) cfg.device = a.device;
  if (a.max_frame_bytes > 0) {
    cfg.max_frame_bytes = static_cast<std::size_t>(a.max_frame_bytes);
  }

  nn::gw::ModelRegistry registry(device_for(cfg.device), cfg.models.size());
  for (const nn::gw::ModelConfig& m : cfg.models) {
    registry.load(m);
    std::printf("loaded model '%s' from %s\n", m.id.c_str(), m.path.c_str());
  }

  nn::gw::GatewayOptions gopts;
  gopts.port = cfg.port;
  gopts.max_frame_bytes = cfg.max_frame_bytes;
  gopts.allow_admin = !a.no_admin;
  nn::gw::Gateway gateway(registry, gopts);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("APNN gateway listening on 127.0.0.1:%d (%zu models, %s)\n",
              gateway.port(), registry.size(), cfg.device.c_str());
  std::fflush(stdout);
  if (!a.port_file.empty()) {
    if (std::FILE* f = std::fopen(a.port_file.c_str(), "w")) {
      std::fprintf(f, "%d\n", gateway.port());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write --port-file %s\n",
                   a.port_file.c_str());
      return 3;
    }
  }

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("signal received: draining\n");
  gateway.shutdown();
  // The registry drains each model's pool as it destructs here.
  return 0;
}

int cmd_client(const Args& a) {
  if (a.positional.size() != 2 || a.port <= 0) {
    std::fprintf(stderr,
                 "usage: apnn_serve client <model> --port P [--requests N] "
                 "[--deadline-ms D] [--seed S] [--vary-seq]\n");
    return 2;
  }
  const std::string& model = a.positional[1];
  try {
    nn::wire::Client client(a.port);
    // Learn the model's input dims from the gateway itself.
    nn::wire::ModelDescriptor desc;
    bool found = false;
    for (const nn::wire::ModelDescriptor& m : client.list()) {
      if (m.id == model) {
        desc = m;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "gateway routes no model '%s'\n", model.c_str());
      return 1;
    }
    Rng rng(a.seed);
    for (int i = 0; i < a.requests; ++i) {
      // --vary-seq: draw a token count in [1, H] and declare it on the wire
      // (protocol v2 seq_len) so a bucketed model pads and batches it.
      const std::int64_t h =
          a.vary_seq ? rng.uniform_int(1, desc.h) : desc.h;
      Tensor<std::int32_t> sample({h, desc.w, desc.c});
      sample.randomize(rng, 0, 255);
      const Tensor<std::int32_t> logits = client.infer(
          model, sample, static_cast<std::uint32_t>(a.deadline_ms),
          a.vary_seq);
      std::int64_t checksum = 0;
      for (std::int64_t j = 0; j < logits.numel(); ++j) checksum += logits[j];
      std::printf("infer %d: %lld logits, checksum %lld\n", i,
                  static_cast<long long>(logits.numel()),
                  static_cast<long long>(checksum));
    }
    std::printf("%d round trips ok\n", a.requests);
    return 0;
  } catch (const nn::wire::RemoteError& e) {
    std::fprintf(stderr, "gateway error: %s\n", e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "client error: %s\n", e.what());
    return 1;
  }
}

int cmd_admin(const Args& a) {
  if (a.positional.size() < 2 || a.port <= 0) {
    std::fprintf(stderr,
                 "usage: apnn_serve admin ping|list|stats|load|unload|reload "
                 "[id] [path] --port P\n");
    return 2;
  }
  const std::string& op = a.positional[1];
  try {
    nn::wire::Client client(a.port);
    if (op == "ping") {
      client.ping();
      std::printf("pong\n");
    } else if (op == "list") {
      for (const nn::wire::ModelDescriptor& m : client.list()) {
        std::printf("%s: input %ux%ux%u, %u classes, generation %u\n",
                    m.id.c_str(), m.h, m.w, m.c, m.classes, m.generation);
      }
    } else if (op == "stats") {
      std::fputs(client.stats().c_str(), stdout);
    } else if (op == "load") {
      if (a.positional.size() != 4) {
        std::fprintf(stderr, "usage: apnn_serve admin load <id> <path>\n");
        return 2;
      }
      client.load(a.positional[2], a.positional[3]);
      std::printf("loaded %s\n", a.positional[2].c_str());
    } else if (op == "unload" || op == "reload") {
      if (a.positional.size() != 3) {
        std::fprintf(stderr, "usage: apnn_serve admin %s <id>\n", op.c_str());
        return 2;
      }
      if (op == "unload") {
        client.unload(a.positional[2]);
      } else {
        client.reload(a.positional[2]);
      }
      std::printf("%sed %s\n", op.c_str(), a.positional[2].c_str());
    } else {
      std::fprintf(stderr, "unknown admin op '%s'\n", op.c_str());
      return 2;
    }
    return 0;
  } catch (const nn::wire::RemoteError& e) {
    std::fprintf(stderr, "gateway error: %s\n", e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "client error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, &a)) return 2;
  if (a.error_table) {
    std::fputs(nn::wire::error_table_markdown().c_str(), stdout);
    return 0;
  }
  if (a.positional.empty()) return usage();
  const std::string& cmd = a.positional[0];
  try {
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "client") return cmd_client(a);
    if (cmd == "admin") return cmd_admin(a);
  } catch (const Error& e) {
    std::fprintf(stderr, "apnn_serve: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage();
}

#!/usr/bin/env bash
# Builds (if needed) and runs the wall-clock benchmarks:
#   * bench/micro_host_kernels     (google-benchmark host primitives)
#   * bench/apmm_hotpath           (seed loop vs microkernel pipeline)
#   * bench/apmm_sparsity_sweep    (occupancy-map skip kernels vs the dense
#                                   sweep, 0-95% activation sparsity)
#   * bench/apconv_hotpath         (materialized-im2col vs fused APConv)
#   * bench/apnn_forward_hotpath   (interpreter vs InferenceSession vs the
#                                   autotuned session plan)
#   * bench/attention_hotpath      (compiled attention plan family vs the
#                                   hand-built per-call apmm baseline, every
#                                   bucket bit-exact, mixed-length serving)
#   * bench/serving_throughput     (replicated InferenceServer pool vs the
#                                   single-replica server, shared-TuningCache
#                                   cold/warm start)
#   * bench/gateway_throughput     (two co-resident models over loopback TCP
#                                   through the apnn_serve gateway stack,
#                                   hot-reload zero-drop drill)
# and writes the BENCH_*.json files at the repo root — these are the
# checked-in baselines the CI perf gate (tools/check_bench.py) compares
# fresh runs against, so refresh them deliberately and on an otherwise idle
# machine.
#
# Usage: tools/run_bench.sh [build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target apmm_hotpath apmm_sparsity_sweep apconv_hotpath \
  apnn_forward_hotpath attention_hotpath serving_throughput \
  gateway_throughput
if cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_host_kernels \
    2>/dev/null; then
  "$BUILD_DIR/micro_host_kernels" --benchmark_min_time=0.05s || \
    "$BUILD_DIR/micro_host_kernels"
else
  echo "micro_host_kernels skipped (google-benchmark not available)"
fi

"$BUILD_DIR/apmm_hotpath" BENCH_apmm_hotpath.json
echo "BENCH_apmm_hotpath.json:"
cat BENCH_apmm_hotpath.json

"$BUILD_DIR/apmm_sparsity_sweep" BENCH_apmm_sparsity.json
echo "BENCH_apmm_sparsity.json:"
cat BENCH_apmm_sparsity.json

"$BUILD_DIR/apconv_hotpath" BENCH_apconv_hotpath.json
echo "BENCH_apconv_hotpath.json:"
cat BENCH_apconv_hotpath.json

"$BUILD_DIR/apnn_forward_hotpath" BENCH_apnn_forward_hotpath.json
echo "BENCH_apnn_forward_hotpath.json:"
cat BENCH_apnn_forward_hotpath.json

"$BUILD_DIR/attention_hotpath" BENCH_attention_hotpath.json
echo "BENCH_attention_hotpath.json:"
cat BENCH_attention_hotpath.json

"$BUILD_DIR/serving_throughput" BENCH_serving_throughput.json
echo "BENCH_serving_throughput.json:"
cat BENCH_serving_throughput.json

"$BUILD_DIR/gateway_throughput" BENCH_gateway_throughput.json
echo "BENCH_gateway_throughput.json:"
cat BENCH_gateway_throughput.json

#!/usr/bin/env python3
"""Perf-regression gate for the BENCH_*.json hot-path results.

Compares freshly produced benchmark JSONs against the checked-in baselines
and fails (exit 1) on a regression:

  * ``bit_exact`` present in the baseline must be true in the fresh run —
    a wrong result is a hard failure regardless of speed;
  * every ``*speedup*`` key (machine-relative ratios: interpreter/session,
    tuned/heuristic, ...) must not drop below baseline by more than
    ``--ratio-tol`` (these are the primary, hardware-independent gates).
    BENCH_serving_throughput.json's ``replica_scaling_x`` is deliberately
    NOT named a speedup: on hosts too narrow to run the replica pool in
    parallel the ratio measures scheduler noise around 1.0, so its binary
    hard-gates >= 2x itself — exactly where the hardware can host the pool
    (``scaling_enforced``) — and here it is only presence-checked. Its
    wall/latency figures are spelled ``*_millis`` for the same reason:
    queueing metrics of a short oversubscribed run, not best-of-reps
    compute times, so they carry the presence check but not the ceiling;
  * every ``*_ms`` key (absolute wall time) must not exceed baseline by more
    than ``--ms-tol``. Baselines are recorded on the reference container,
    so the default tolerance leaves headroom for different CI hardware —
    the ratio gates are the tight ones;
  * every numeric baseline key must exist in the fresh output (schema drift
    is a failure: a silently dropped metric would un-gate it).

Usage:
  check_bench.py --baseline-dir . --fresh-dir bench-out [names...]
  check_bench.py --baseline-dir . --fresh-dir bench-out --ms-tol -1 ...
      (inverted tolerance: forces a failure — used to verify the gate fires)

With no names, every BENCH_*.json found in the baseline dir is checked.
"""

import argparse
import json
import pathlib
import sys

# ``*overhead_speedup*`` keys (robust-vs-plain ratios measured inside one
# bench run, ideal 1.0) are gated against this absolute floor instead of the
# baseline-relative one: the serving deadline machinery may cost at most 2%.
OVERHEAD_SPEEDUP_FLOOR = 0.98

# ``--require-scaling``: the replicated serving pool must reach this many
# times the single-replica throughput, and the bench itself must have judged
# the host wide enough to enforce it (``scaling_enforced``). Used by the CI
# multicore leg; meaningless on narrow hosts, hence opt-in.
REPLICA_SCALING_FLOOR = 2.0


def load(path: pathlib.Path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL {path}: cannot read ({e})")
        return None


def check_file(name: str, base: dict, fresh: dict, ms_tol: float,
               ratio_tol: float, require_scaling: bool = False) -> list[str]:
    errors = []
    if base.get("bit_exact") is True and fresh.get("bit_exact") is not True:
        errors.append("bit_exact is not true in the fresh run")

    if require_scaling and "replica_scaling_x" in fresh:
        if fresh.get("scaling_enforced") is not True:
            errors.append(
                "--require-scaling: scaling_enforced is not true (host too "
                "narrow, or the bench ran with < 4 replicas)")
        scaling = fresh.get("replica_scaling_x")
        if not isinstance(scaling, (int, float)) or isinstance(scaling, bool):
            errors.append("--require-scaling: replica_scaling_x not numeric")
        elif scaling < REPLICA_SCALING_FLOOR:
            errors.append(
                f"--require-scaling: replica_scaling_x {scaling:.3f} < "
                f"{REPLICA_SCALING_FLOOR:.1f}")

    for key, bval in base.items():
        if not isinstance(bval, (int, float)) or isinstance(bval, bool):
            continue
        fval = fresh.get(key)
        if not isinstance(fval, (int, float)) or isinstance(fval, bool):
            errors.append(f"metric '{key}' missing from fresh output")
            continue
        if "speedup" in key:
            floor = bval * (1.0 - ratio_tol)
            if "overhead_speedup" in key:
                # Overhead ratios have an ideal of 1.0 by construction
                # (robust path vs plain path on the same machine in the same
                # run), so the floor is absolute — a lucky fast baseline must
                # not tighten the gate, and a slow one must not loosen it.
                floor = OVERHEAD_SPEEDUP_FLOOR
            if fval < floor:
                errors.append(
                    f"{key}: {fval:.3f} < {floor:.3f} "
                    f"(baseline {bval:.3f}, ratio-tol {ratio_tol:.2f})")
        elif key.endswith("_ms"):
            ceiling = bval * (1.0 + ms_tol)
            if fval > ceiling:
                errors.append(
                    f"{key}: {fval:.3f} ms > {ceiling:.3f} ms "
                    f"(baseline {bval:.3f}, ms-tol {ms_tol:.2f})")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=".", type=pathlib.Path)
    ap.add_argument("--fresh-dir", required=True, type=pathlib.Path)
    ap.add_argument("--ms-tol", type=float, default=0.60,
                    help="allowed relative slowdown of *_ms keys "
                         "(default 0.60: cross-machine headroom)")
    ap.add_argument("--ratio-tol", type=float, default=0.10,
                    help="allowed relative drop of *speedup* keys "
                         "(default 0.10: wall-clock noise)")
    ap.add_argument("--require-scaling", action="store_true",
                    help="additionally require replica_scaling_x >= "
                         f"{REPLICA_SCALING_FLOOR} with scaling_enforced "
                         "true in the fresh serving bench (multicore CI "
                         "hosts only)")
    ap.add_argument("names", nargs="*",
                    help="benchmark file names (default: BENCH_*.json in "
                         "the baseline dir)")
    args = ap.parse_args()

    names = args.names or sorted(
        p.name for p in args.baseline_dir.glob("BENCH_*.json"))
    if not names:
        print(f"FAIL: no BENCH_*.json baselines under {args.baseline_dir}")
        return 1

    failed = False
    for name in names:
        base = load(args.baseline_dir / name)
        fresh = load(args.fresh_dir / name)
        if base is None or fresh is None:
            failed = True
            continue
        errors = check_file(name, base, fresh, args.ms_tol, args.ratio_tol,
                            args.require_scaling)
        if errors:
            failed = True
            print(f"FAIL {name}:")
            for e in errors:
                print(f"  - {e}")
        else:
            print(f"OK   {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

// Activation-sparsity sweep: occupancy-map skip kernels vs the dense sweep.
//
// Packed ReLU-fed activations are sparse at 64-bit-word granularity in the
// channel-major layout — whole k-slabs go zero when the previous layer
// clips a region or a channel. This harness reproduces that structure
// synthetically: word-aligned zero chunks shared across the feature rows
// (element-wise random sparsity would almost never zero a full 64-bit word
// and would measure nothing), swept from 0% to 95% zero words at the two
// low-bit schemes the paper leads with (w1a2 Case III, w2a2 Case I).
//
// At each point the same operands run with MicroConfig::sparse_staging =
// kOff (dense baseline), kAuto (production gate), and kOn (forced sparse);
// all three must agree bit-exactly — a skipped word that mattered is a hard
// failure, not a slow run. Two ratios gate the result:
//   * sparsity_speedup_90   : kOff/kAuto at 90% zero words, >= 1.30x
//   * dense_parity_speedup_0: kOff/kAuto on dense operands, >= 0.97x —
//     the occupancy build + density gate must be ~free when there is
//     nothing to skip.
//
// Usage: apmm_sparsity_sweep [out.json] [size] [reps]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/core/apmm.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn {
namespace {

using core::ApmmOptions;
using core::ApOperand;
using core::Encoding;
using Sparse = core::microkernel::MicroConfig::Sparse;

constexpr int kPoints[] = {0, 25, 50, 75, 90, 95};

struct Scheme {
  const char* name;
  Encoding we, xe;
  int p, q;
};

constexpr Scheme kSchemes[] = {
    {"w1a2", Encoding::kSignedPM1, Encoding::kUnsigned01, 1, 2},
    {"w2a2", Encoding::kUnsigned01, Encoding::kUnsigned01, 2, 2},
};

/// Feature operand with `pct`% of its 64-bit plane words zeroed, shared
/// across rows (dead k-slabs, the channel-major shape of real ReLU
/// sparsity). The pattern is the even Bresenham spread — exact fraction at
/// every point, contiguous word runs emerging at high sparsity (e.g. 90%
/// zeroes words in runs of nine). Returns the realized zero-word share.
ApOperand sparse_features(Rng& rng, std::int64_t n, std::int64_t k,
                          Encoding enc, int q, int pct, double* realized) {
  Tensor<std::int32_t> t({n, k});
  const core::ValueRange r = core::encoding_range(enc, q);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    // Bias away from logical zero so dense words stay dense in every plane.
    t[i] = static_cast<std::int32_t>(rng.uniform_int(std::max<std::int64_t>(
                                                         r.lo, 1),
                                                     r.hi));
  }
  const std::int64_t words = (k + 63) / 64;
  std::int64_t zero_words = 0;
  for (std::int64_t w = 0; w < words; ++w) {
    if ((w + 1) * pct / 100 == w * pct / 100) continue;
    ++zero_words;
    const std::int64_t k1 = std::min(k, (w + 1) * 64);
    for (std::int64_t j = 0; j < n; ++j) {
      for (std::int64_t kk = w * 64; kk < k1; ++kk) t(j, kk) = 0;
    }
  }
  *realized = static_cast<double>(zero_words) / static_cast<double>(words);
  return core::make_operand(t, enc, q);
}

template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.millis());
  }
  return best;
}

}  // namespace
}  // namespace apnn

int main(int argc, char** argv) {
  using namespace apnn;
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_apmm_sparsity.json";
  const std::int64_t size = argc > 2 ? std::atoll(argv[2]) : 1024;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 5;

  const auto& dev = tcsim::rtx3090();
  Rng rng(42);

  const std::size_t npoints = sizeof(kPoints) / sizeof(kPoints[0]);
  const std::size_t nschemes = sizeof(kSchemes) / sizeof(kSchemes[0]);
  // [scheme][point]
  std::vector<std::vector<double>> dense_ms(nschemes),
      sparse_ms(nschemes), realized(nschemes);
  bool bit_exact = true;

  Tensor<std::int32_t> y_dense, y_sparse, y_forced;
  for (std::size_t si = 0; si < nschemes; ++si) {
    const Scheme& sc = kSchemes[si];
    Tensor<std::int32_t> wl({size, size});
    const core::ValueRange wr = core::encoding_range(sc.we, sc.p);
    for (std::int64_t i = 0; i < wl.numel(); ++i) {
      wl[i] = sc.we == Encoding::kSignedPM1
                  ? (rng.bernoulli(0.5) ? 1 : -1)
                  : static_cast<std::int32_t>(rng.uniform_int(wr.lo, wr.hi));
    }
    const ApOperand w = core::make_operand(wl, sc.we, sc.p);

    std::printf("%s %lldx%lldx%lld (p=%d q=%d)\n", sc.name,
                static_cast<long long>(size), static_cast<long long>(size),
                static_cast<long long>(size), sc.p, sc.q);
    for (std::size_t pi = 0; pi < npoints; ++pi) {
      double rz = 0.0;
      const ApOperand x = sparse_features(rng, size, size, sc.xe, sc.q,
                                          kPoints[pi], &rz);
      realized[si].push_back(rz);

      auto run = [&](Sparse mode, Tensor<std::int32_t>* y) {
        ApmmOptions o;
        o.micro.sparse_staging = mode;
        o.collect_profile = false;
        o.y_out = y;
        core::apmm(w, x, dev, o);
      };
      // Correctness gate before timing: all three modes bit-exact.
      run(Sparse::kOff, &y_dense);
      run(Sparse::kAuto, &y_sparse);
      run(Sparse::kOn, &y_forced);
      for (std::int64_t i = 0; i < y_dense.numel(); ++i) {
        if (y_dense[i] != y_sparse[i] || y_dense[i] != y_forced[i]) {
          std::fprintf(stderr,
                       "FATAL: %s @%d%%: mode mismatch at %lld: "
                       "dense %d auto %d forced %d\n",
                       sc.name, kPoints[pi], static_cast<long long>(i),
                       y_dense[i], y_sparse[i], y_forced[i]);
          bit_exact = false;
          break;
        }
      }
      if (!bit_exact) break;

      const double dms =
          best_of_ms(reps, [&] { run(Sparse::kOff, &y_dense); });
      const double sms =
          best_of_ms(reps, [&] { run(Sparse::kAuto, &y_sparse); });
      dense_ms[si].push_back(dms);
      sparse_ms[si].push_back(sms);
      std::printf(
          "  %2d%% zero words (realized %4.1f%%): dense %7.2f ms  "
          "sparse %7.2f ms  ratio %5.2fx\n",
          kPoints[pi], rz * 100.0, dms, sms, dms / sms);
    }
    if (!bit_exact) break;
  }
  if (!bit_exact) return 1;

  // Acceptance ratios: worst scheme at the 90% and 0% points.
  double speedup_90 = 1e30, parity_0 = 1e30;
  for (std::size_t si = 0; si < nschemes; ++si) {
    for (std::size_t pi = 0; pi < npoints; ++pi) {
      const double ratio = dense_ms[si][pi] / sparse_ms[si][pi];
      if (kPoints[pi] == 90) speedup_90 = std::min(speedup_90, ratio);
      if (kPoints[pi] == 0) parity_0 = std::min(parity_0, ratio);
    }
  }
  std::printf("sparsity_speedup_90    : %5.2fx (gate >= 1.30)\n", speedup_90);
  std::printf("dense_parity_speedup_0 : %5.2fx (gate >= 0.97)\n", parity_0);
  bool ok = true;
  if (speedup_90 < 1.30) {
    std::fprintf(stderr, "FATAL: 90%%-sparsity speedup %.2f < 1.30\n",
                 speedup_90);
    ok = false;
  }
  if (parity_0 < 0.97) {
    std::fprintf(stderr, "FATAL: dense-parity ratio %.2f < 0.97\n", parity_0);
    ok = false;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"apmm_sparsity_sweep\",\n"
               "  \"m\": %lld,\n  \"n\": %lld,\n  \"k\": %lld,\n"
               "  \"reps\": %d,\n"
               "  \"bit_exact\": %s,\n",
               static_cast<long long>(size), static_cast<long long>(size),
               static_cast<long long>(size), reps,
               bit_exact ? "true" : "false");
  for (std::size_t si = 0; si < nschemes; ++si) {
    for (std::size_t pi = 0; pi < npoints; ++pi) {
      // Only the acceptance points carry gated *_ms keys; the mid-sweep
      // times are informational (*_millis: presence-checked, no ceiling).
      const bool gated = kPoints[pi] == 0 || kPoints[pi] == 90;
      std::fprintf(f,
                   "  \"%s_dense_%d_%s\": %.3f,\n"
                   "  \"%s_sparse_%d_%s\": %.3f,\n"
                   "  \"%s_ratio_%d\": %.3f,\n",
                   kSchemes[si].name, kPoints[pi], gated ? "ms" : "millis",
                   dense_ms[si][pi], kSchemes[si].name, kPoints[pi],
                   gated ? "ms" : "millis", sparse_ms[si][pi],
                   kSchemes[si].name, kPoints[pi],
                   dense_ms[si][pi] / sparse_ms[si][pi]);
    }
  }
  std::fprintf(f,
               "  \"sparsity_speedup_90\": %.3f,\n"
               "  \"dense_parity_speedup_0\": %.3f\n"
               "}\n",
               speedup_90, parity_0);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}

// Reproduces paper Table 1 (accuracy under Binary / w1a2 / single precision).
//
// Substitution (DESIGN.md §1): ImageNet + trained AlexNet/VGG/ResNet
// checkpoints are unavailable, so the accuracy ordering is reproduced with
// quantization-aware training of three MLP capacities (stand-ins for the
// three networks) on the procedural synthetic dataset. The paper's claim
// under test is the *shape*: binary clearly below w1a2, w1a2 within a few
// points of float.
#include <cstdio>

#include "bench_util.hpp"
#include "src/synth/dataset.hpp"
#include "src/train/conv_net.hpp"
#include "src/train/mlp.hpp"

namespace {

using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::strf;

struct NetRow {
  const char* paper_net;
  const char* paper_vals;  // Binary / w1a2 / Single from Table 1
  apnn::train::CnnConfig arch;
  std::uint64_t seed;
};

}  // namespace

int main() {
  print_header("Table 1: model accuracy under Binary / w1a2 / Single "
               "precision (synthetic substitution)");
  std::printf("paper (ImageNet top-1): AlexNet 46.1/55.7/57.0, VGG-Variant "
              "53.4/68.8/69.8, ResNet-18 51.2/62.6/69.6\n");
  std::printf("here: QAT on the synthetic 10-class task; same precision "
              "configurations.\n\n");

  apnn::synth::DatasetConfig cfg;
  cfg.classes = 10;
  cfg.hw = 12;
  cfg.noise = 0.9;  // hard enough that precision separates
  const apnn::synth::Dataset train = apnn::synth::make_dataset(500, cfg, 101);
  const apnn::synth::Dataset test = apnn::synth::make_dataset(400, cfg, 202);

  auto arch = [&](std::int64_t c1, std::int64_t c2, std::int64_t hidden) {
    apnn::train::CnnConfig a;
    a.in_c = cfg.channels;
    a.in_hw = cfg.hw;
    a.classes = cfg.classes;
    a.c1 = c1;
    a.c2 = c2;
    a.fc_hidden = hidden;
    return a;
  };
  const std::vector<NetRow> nets = {
      {"AlexNet (stand-in CNN-S)", "46.1% / 55.7% / 57.0%", arch(6, 12, 32),
       11},
      {"VGG-Variant (stand-in CNN-M)", "53.4% / 68.8% / 69.8%",
       arch(8, 16, 48), 22},
      {"ResNet-18 (stand-in CNN-L)", "51.2% / 62.6% / 69.6%",
       arch(12, 24, 64), 33},
  };

  print_row({"network", "binary", "w1a2", "single", "paper (bin/w1a2/fp32)"},
            22);
  print_rule(5, 22);
  for (const NetRow& net : nets) {
    // Average training seeds — single QAT runs on a small task are noisy
    // at the 1-2% level.
    double acc_bin = 0, acc_w1a2 = 0, acc_fp = 0;
    const int kSeeds = 2;
    for (int rep = 0; rep < kSeeds; ++rep) {
      apnn::train::TrainConfig tc;
      tc.epochs = 25;
      tc.seed = net.seed + static_cast<std::uint64_t>(rep) * 7919;
      acc_bin += apnn::train::train_and_evaluate_cnn(
          train, test, apnn::train::QatConfig::wa(1, 1), tc, net.arch);
      acc_w1a2 += apnn::train::train_and_evaluate_cnn(
          train, test, apnn::train::QatConfig::wa(1, 2), tc, net.arch);
      acc_fp += apnn::train::train_and_evaluate_cnn(
          train, test, apnn::train::QatConfig::off(), tc, net.arch);
    }
    print_row({net.paper_net, strf("%.1f%%", 100 * acc_bin / kSeeds),
               strf("%.1f%%", 100 * acc_w1a2 / kSeeds),
               strf("%.1f%%", 100 * acc_fp / kSeeds), net.paper_vals},
              22);
  }
  std::printf("\nshape check: binary < w1a2 <= single, w1a2 close to "
              "single (paper: avg +11.67%% over binary).\n");
  return 0;
}

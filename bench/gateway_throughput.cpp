// Gateway regression gate: two co-resident models served over loopback TCP
// through tools/apnn_serve's stack (ModelRegistry + Gateway + the APGW
// binary protocol), driven by the shared closed-loop load driver with one
// wire::Client connection per client thread.
//
// Three properties are gated (hard process failure, before any JSON is
// written for CI to diff):
//
//   * serving through the gateway is exact — every response that crossed
//     the wire, for either model, under whatever batch mix the concurrent
//     traffic produced, is bit-identical to a direct sequential batch-1
//     session run of the same network;
//   * co-residency is fair — both models keep serving while loaded
//     together (each model's load completes with zero typed failures);
//   * hot reload drops nothing it shouldn't — while model A is reloaded
//     mid-traffic, the closed-loop load on model B completes with zero
//     failures and zero mismatches, and A answers with a bumped generation
//     afterwards.
//
// The wall/latency figures are queueing metrics of an oversubscribed
// loopback run, so they are spelled *_millis (presence-checked by
// tools/check_bench.py, not ceiling-gated like the compute benches'
// best-of-reps *_ms keys); exactness and the zero-drop drill are the hard
// gates.
//
// Usage: gateway_throughput [out.json] [requests_per_model] [clients_per_model]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/serve_load.hpp"
#include "src/common/rng.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/gateway.hpp"
#include "src/nn/registry.hpp"
#include "src/nn/serialize.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

namespace {

double quantile_ms(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apnn;
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_gateway_throughput.json";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 64;
  const int clients = argc > 3 ? std::atoi(argv[3]) : 4;
  if (requests < 1 || clients < 1) {
    std::fprintf(stderr, "usage: gateway_throughput [out.json] "
                         "[requests_per_model>=1] [clients_per_model>=1]\n");
    return 2;
  }
  const auto& dev = tcsim::rtx3090();

  // Two distinct zoo architectures, serialized the way production models
  // arrive (apnn_cli export writes the same format).
  struct Model {
    const char* id;
    nn::ModelSpec spec;
    std::string path;
    std::vector<Tensor<std::int32_t>> samples;
    std::vector<Tensor<std::int32_t>> golden;
  };
  Model models[2];
  models[0].id = "mini_resnet";
  models[0].spec = nn::mini_resnet(4, 16, 10);
  models[0].path = "BENCH_gateway_mini_resnet.apnn";
  models[1].id = "vgg_lite";
  models[1].spec = nn::vgg_lite(16, 10);
  models[1].path = "BENCH_gateway_vgg_lite.apnn";

  Rng rng(43);
  constexpr int kSamples = 16;
  for (int mi = 0; mi < 2; ++mi) {
    Model& m = models[mi];
    nn::ApnnNetwork net =
        nn::ApnnNetwork::random(m.spec, 1, 2, 42 + static_cast<unsigned>(mi));
    Tensor<std::int32_t> calib(
        {4, m.spec.input.h, m.spec.input.w, m.spec.input.c});
    calib.randomize(rng, 0, 255);
    net.calibrate(calib);
    if (!nn::save_network(net, m.path)) {
      std::fprintf(stderr, "cannot write %s\n", m.path.c_str());
      return 1;
    }
    // Golden answers from direct sequential batch-1 session runs — the
    // gateway round trip must change nothing.
    nn::InferenceSession session(net, dev);
    for (int i = 0; i < kSamples; ++i) {
      Tensor<std::int32_t> s(
          {1, m.spec.input.h, m.spec.input.w, m.spec.input.c});
      s.randomize(rng, 0, 255);
      m.golden.push_back(session.run(s));
      m.samples.push_back(std::move(s));
    }
  }

  nn::gw::ModelRegistry registry(dev, /*expected_models=*/2);
  for (const Model& m : models) {
    nn::gw::ModelConfig cfg;
    cfg.id = m.id;
    cfg.path = m.path;
    cfg.max_batch = 8;
    cfg.batch_window_us = 200;
    registry.load(cfg);
  }
  nn::gw::Gateway gateway(registry, {});
  const int port = gateway.port();

  auto tcp_factory = [port](const char* model_id) -> bench::IssueFactory {
    return [port, model_id](int) -> bench::IssueFn {
      auto client = std::make_shared<nn::wire::Client>(port);
      return [client, model_id](const Tensor<std::int32_t>& sample) {
        return client->infer(model_id, sample);
      };
    };
  };

  // --- co-resident throughput: both models under load at once ---------------
  bench::LoadOptions lopts;
  lopts.collect_latencies = true;
  bench::LoadResult results[2];
  {
    WallTimer warmup;  // one warm pass each, off the record
    for (int mi = 0; mi < 2; ++mi) {
      bench::drive_load(tcp_factory(models[mi].id), models[mi].samples,
                        models[mi].golden, 1, 4);
    }
    (void)warmup;
  }
  WallTimer wall;
  {
    std::vector<std::thread> drivers;
    for (int mi = 0; mi < 2; ++mi) {
      drivers.emplace_back([&, mi] {
        results[mi] =
            bench::drive_load(tcp_factory(models[mi].id), models[mi].samples,
                              models[mi].golden, clients, requests, lopts);
      });
    }
    for (auto& t : drivers) t.join();
  }
  const double wall_ms = wall.millis();

  std::int64_t mismatches = 0, failures = 0;
  for (const bench::LoadResult& r : results) {
    mismatches += r.mismatches;
    failures += r.failed + r.injected + r.other_failures;
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: %lld gateway responses mismatched the direct "
                 "session logits\n",
                 static_cast<long long>(mismatches));
    return 1;
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "FATAL: %lld requests failed under plain co-resident load\n",
                 static_cast<long long>(failures));
    return 1;
  }

  // --- hot-reload drill: reload model A under load on model B ---------------
  // The registry swaps A's entry while B's closed loop runs; B must finish
  // with zero failures and zero mismatches — reloads are per-model events.
  bench::LoadResult drill;
  std::uint32_t generation_before = 0, generation_after = 0;
  {
    nn::wire::Client admin(port);
    for (const auto& d : admin.list()) {
      if (d.id == std::string(models[0].id)) generation_before = d.generation;
    }
    std::thread traffic([&] {
      drill = bench::drive_load(tcp_factory(models[1].id), models[1].samples,
                                models[1].golden, clients, 2 * requests);
    });
    admin.reload(models[0].id);
    admin.reload(models[0].id);
    traffic.join();
    for (const auto& d : admin.list()) {
      if (d.id == std::string(models[0].id)) generation_after = d.generation;
    }
  }
  if (drill.mismatches != 0 || drill.failed != 0 || drill.injected != 0 ||
      drill.other_failures != 0) {
    std::fprintf(stderr,
                 "FATAL: reloading %s dropped traffic on %s (%lld failed, "
                 "%lld mismatched)\n",
                 models[0].id, models[1].id,
                 static_cast<long long>(drill.failed + drill.injected +
                                        drill.other_failures),
                 static_cast<long long>(drill.mismatches));
    return 1;
  }
  if (generation_after <= generation_before) {
    std::fprintf(stderr, "FATAL: reload did not bump %s's generation\n",
                 models[0].id);
    return 1;
  }
  // The reloaded model still answers, bit-exactly.
  {
    const bench::LoadResult after =
        bench::drive_load(tcp_factory(models[0].id), models[0].samples,
                          models[0].golden, 1, kSamples);
    if (after.mismatches != 0 || after.failed != 0) {
      std::fprintf(stderr, "FATAL: %s misbehaves after reload\n",
                   models[0].id);
      return 1;
    }
  }

  const double total_requests = 2.0 * requests;
  const double gateway_rps = 1000.0 * total_requests / wall_ms;
  std::printf("gateway throughput, 2 co-resident models over loopback TCP, "
              "%d requests x %d clients each\n",
              requests, clients);
  for (int mi = 0; mi < 2; ++mi) {
    std::printf("  %-12s: %8.1f req/s  p50 %.2f ms  p99 %.2f ms\n",
                models[mi].id, 1000.0 * requests / results[mi].wall_ms,
                quantile_ms(results[mi].latency_ms, 0.50),
                quantile_ms(results[mi].latency_ms, 0.99));
  }
  std::printf("  combined    : %8.1f req/s (%.1f ms wall)\n", gateway_rps,
              wall_ms);
  std::printf("  hot reload  : %s reloaded twice under %s load — 0 drops, "
              "generation %u -> %u\n",
              models[0].id, models[1].id, generation_before,
              generation_after);
  std::printf("  responses vs direct session runs: bit-exact\n");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"gateway_throughput\",\n"
               "  \"workload\": \"two_model_gateway_loopback_tcp\",\n"
               "  \"requests_per_model\": %d,\n"
               "  \"clients_per_model\": %d,\n"
               "  \"bit_exact\": true,\n"
               "  \"reload_drill_drops\": 0,\n"
               "  \"gateway_rps\": %.1f,\n"
               "  \"wall_millis\": %.3f,\n"
               "  \"model0_p50_millis\": %.3f,\n"
               "  \"model0_p99_millis\": %.3f,\n"
               "  \"model1_p50_millis\": %.3f,\n"
               "  \"model1_p99_millis\": %.3f\n"
               "}\n",
               requests, clients, gateway_rps, wall_ms,
               quantile_ms(results[0].latency_ms, 0.50),
               quantile_ms(results[0].latency_ms, 0.99),
               quantile_ms(results[1].latency_ms, 0.50),
               quantile_ms(results[1].latency_ms, 0.99));
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  std::remove(models[0].path.c_str());
  std::remove(models[1].path.c_str());
  return 0;
}

// Shared closed-loop serving load driver for the serving bench and
// `apnn_cli serve`: N client threads hammer an InferenceServer round-robin
// over a sample set, each firing its next request as soon as the previous
// response lands, and every response is bit-compared against golden batch-1
// session logits — so anything that reports a throughput number has also
// proven exactness under whatever batch mix the traffic produced.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/timer.hpp"
#include "src/nn/server.hpp"

namespace apnn::bench {

struct LoadResult {
  double wall_ms = 0.0;
  std::int64_t mismatches = 0;
  nn::InferenceServer::Stats stats;
};

/// Issues `total` single-sample requests from `clients` threads (request i
/// goes to client i % clients and uses sample i % samples.size()). Returns
/// the wall time, the number of responses that differed from `golden`, and
/// the server's stats snapshot after the load.
inline LoadResult serve_load(nn::InferenceServer& server,
                             const std::vector<Tensor<std::int32_t>>& samples,
                             const std::vector<Tensor<std::int32_t>>& golden,
                             int clients, int total) {
  std::atomic<std::int64_t> mismatches{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = c; i < total; i += clients) {
        const std::size_t s = static_cast<std::size_t>(i) % samples.size();
        const Tensor<std::int32_t> logits = server.infer(samples[s]);
        const Tensor<std::int32_t>& want = golden[s];
        if (logits.numel() != want.numel()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::int64_t j = 0; j < logits.numel(); ++j) {
          if (logits[j] != want[j]) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult r;
  r.wall_ms = timer.millis();
  r.mismatches = mismatches.load();
  r.stats = server.stats();
  return r;
}

}  // namespace apnn::bench

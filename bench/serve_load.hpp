// Shared closed-loop serving load driver for the serving bench and
// `apnn_cli serve`: N client threads hammer an InferenceServer round-robin
// over a sample set, each firing its next request as soon as the previous
// response lands, and every response is bit-compared against golden batch-1
// session logits — so anything that reports a throughput number has also
// proven exactness under whatever batch mix the traffic produced.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/faultinject.hpp"
#include "src/common/timer.hpp"
#include "src/nn/server.hpp"

namespace apnn::bench {

struct LoadOptions {
  /// Per-request deadline budget; 0 = no deadline.
  std::chrono::milliseconds deadline{0};
};

struct LoadResult {
  double wall_ms = 0.0;
  std::int64_t mismatches = 0;
  std::int64_t ok = 0;        ///< responses that came back (and were compared)
  std::int64_t failed = 0;    ///< requests that ended in a ServerError
  std::int64_t injected = 0;  ///< requests that died on a raw injected fault
                              ///< (an armed admission site throws in-caller)
  /// Client-side failure tally by ErrorKind. Only ServerError is absorbed;
  /// anything else escapes the client thread — a non-typed failure is a
  /// driver bug and should be loud.
  std::array<std::int64_t, nn::kErrorKindCount> error_counts{};
  nn::InferenceServer::Stats stats;
};

/// Issues `total` single-sample requests from `clients` threads (request i
/// goes to client i % clients and uses sample i % samples.size()). Returns
/// the wall time, the number of responses that differed from `golden`, the
/// per-kind failure tally, and the server's stats snapshot after the load.
/// Failed requests (deadline exceeded, load shed, replica died...) are
/// counted, not propagated — a robustness drill must keep the load alive.
inline LoadResult serve_load(nn::InferenceServer& server,
                             const std::vector<Tensor<std::int32_t>>& samples,
                             const std::vector<Tensor<std::int32_t>>& golden,
                             int clients, int total,
                             const LoadOptions& opts = {}) {
  std::atomic<std::int64_t> mismatches{0};
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> injected{0};
  std::array<std::atomic<std::int64_t>, nn::kErrorKindCount> kind_counts{};
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = c; i < total; i += clients) {
        const std::size_t s = static_cast<std::size_t>(i) % samples.size();
        Tensor<std::int32_t> logits;
        try {
          logits = opts.deadline.count() > 0
                       ? server.infer(samples[s], opts.deadline)
                       : server.infer(samples[s]);
        } catch (const faultinject::FaultInjected&) {
          injected.fetch_add(1);
          continue;
        } catch (const nn::ServerError& e) {
          failed.fetch_add(1);
          kind_counts[static_cast<std::size_t>(e.kind())].fetch_add(1);
          continue;
        }
        ok.fetch_add(1);
        const Tensor<std::int32_t>& want = golden[s];
        if (logits.numel() != want.numel()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::int64_t j = 0; j < logits.numel(); ++j) {
          if (logits[j] != want[j]) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult r;
  r.wall_ms = timer.millis();
  r.mismatches = mismatches.load();
  r.ok = ok.load();
  r.failed = failed.load();
  r.injected = injected.load();
  for (std::size_t k = 0; k < nn::kErrorKindCount; ++k) {
    r.error_counts[k] = kind_counts[k].load();
  }
  r.stats = server.stats();
  return r;
}

}  // namespace apnn::bench

// Shared closed-loop serving load driver for the serving bench,
// `apnn_cli serve`, the serving example, and the TCP gateway bench: N
// client threads hammer a serving endpoint round-robin over a sample set,
// each firing its next request as soon as the previous response lands, and
// every response is bit-compared against golden batch-1 session logits —
// so anything that reports a throughput number has also proven exactness
// under whatever batch mix the traffic produced.
//
// The transport is pluggable: drive_load() takes a per-client issue-
// function factory, so the same driver covers an in-process
// InferenceServer (serve_load(), the factory closes over server.infer) and
// a wire::Client speaking the binary protocol over TCP (the gateway bench
// opens one connection per client in its factory). Typed failures —
// ServerError in process, RemoteError over the wire — are tallied, not
// propagated; the wire codes that mirror ErrorKind land in the same
// error_counts slots, so a robustness drill reads identically on either
// transport.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/faultinject.hpp"
#include "src/common/timer.hpp"
#include "src/nn/protocol.hpp"
#include "src/nn/server.hpp"

namespace apnn::bench {

struct LoadOptions {
  /// Per-request deadline budget; 0 = no deadline.
  std::chrono::milliseconds deadline{0};
  /// Record every successful request's wall latency into
  /// LoadResult::latency_ms (for exact client-side percentiles).
  bool collect_latencies = false;
};

struct LoadResult {
  double wall_ms = 0.0;
  std::int64_t mismatches = 0;
  std::int64_t ok = 0;        ///< responses that came back (and were compared)
  std::int64_t failed = 0;    ///< requests that ended in a typed error
  std::int64_t injected = 0;  ///< requests that died on a raw injected fault
                              ///< (an armed admission site throws in-caller)
  /// Client-side failure tally by ErrorKind. ServerError (in process) and
  /// the RemoteError codes that mirror ErrorKind (over the wire) land
  /// here; gateway-level wire errors count under `other_failures`.
  std::array<std::int64_t, nn::kErrorKindCount> error_counts{};
  std::int64_t other_failures = 0;
  /// Per-request wall latency of successful requests, unordered
  /// (LoadOptions::collect_latencies).
  std::vector<double> latency_ms;
  nn::InferenceServer::Stats stats;  ///< filled by serve_load() only
};

/// Issues one request; returns the logits. Typed failures throw
/// (ServerError / wire::RemoteError).
using IssueFn =
    std::function<Tensor<std::int32_t>(const Tensor<std::int32_t>& sample)>;
/// Builds client `c`'s issue function — the place to open a per-client
/// connection or otherwise pin per-thread transport state.
using IssueFactory = std::function<IssueFn(int client)>;

/// Issues `total` single-sample requests from `clients` threads (request i
/// goes to client i % clients and uses sample i % samples.size()) through
/// the per-client issue functions `make_issue` builds. Returns the wall
/// time, the number of responses that differed from `golden`, and the
/// per-kind failure tally. Failed requests (deadline exceeded, load shed,
/// replica died...) are counted, not propagated — a robustness drill must
/// keep the load alive.
inline LoadResult drive_load(const IssueFactory& make_issue,
                             const std::vector<Tensor<std::int32_t>>& samples,
                             const std::vector<Tensor<std::int32_t>>& golden,
                             int clients, int total,
                             const LoadOptions& opts = {}) {
  std::atomic<std::int64_t> mismatches{0};
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> injected{0};
  std::atomic<std::int64_t> other{0};
  std::array<std::atomic<std::int64_t>, nn::kErrorKindCount> kind_counts{};
  std::mutex latency_mu;
  std::vector<double> latency_ms;
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const IssueFn issue = make_issue(c);
      std::vector<double> local_latency;
      for (int i = c; i < total; i += clients) {
        const std::size_t s = static_cast<std::size_t>(i) % samples.size();
        Tensor<std::int32_t> logits;
        WallTimer req_timer;
        try {
          logits = issue(samples[s]);
        } catch (const faultinject::FaultInjected&) {
          injected.fetch_add(1);
          continue;
        } catch (const nn::ServerError& e) {
          failed.fetch_add(1);
          kind_counts[static_cast<std::size_t>(e.kind())].fetch_add(1);
          continue;
        } catch (const nn::wire::RemoteError& e) {
          failed.fetch_add(1);
          const std::uint16_t code = static_cast<std::uint16_t>(e.code());
          if (code >= 1 && code <= nn::kErrorKindCount) {
            kind_counts[code - 1].fetch_add(1);  // mirrors ErrorKind
          } else {
            other.fetch_add(1);
          }
          continue;
        }
        if (opts.collect_latencies) local_latency.push_back(req_timer.millis());
        ok.fetch_add(1);
        const Tensor<std::int32_t>& want = golden[s];
        if (logits.numel() != want.numel()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::int64_t j = 0; j < logits.numel(); ++j) {
          if (logits[j] != want[j]) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
      if (!local_latency.empty()) {
        std::lock_guard<std::mutex> lock(latency_mu);
        latency_ms.insert(latency_ms.end(), local_latency.begin(),
                          local_latency.end());
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult r;
  r.wall_ms = timer.millis();
  r.mismatches = mismatches.load();
  r.ok = ok.load();
  r.failed = failed.load();
  r.injected = injected.load();
  r.other_failures = other.load();
  for (std::size_t k = 0; k < nn::kErrorKindCount; ++k) {
    r.error_counts[k] = kind_counts[k].load();
  }
  r.latency_ms = std::move(latency_ms);
  return r;
}

/// In-process convenience: drives `server` directly (the factory closes
/// over server.infer with the configured deadline) and attaches the
/// server's stats snapshot to the result.
inline LoadResult serve_load(nn::InferenceServer& server,
                             const std::vector<Tensor<std::int32_t>>& samples,
                             const std::vector<Tensor<std::int32_t>>& golden,
                             int clients, int total,
                             const LoadOptions& opts = {}) {
  LoadResult r = drive_load(
      [&server, &opts](int) -> IssueFn {
        return [&server, &opts](const Tensor<std::int32_t>& sample) {
          return opts.deadline.count() > 0 ? server.infer(sample, opts.deadline)
                                           : server.infer(sample);
        };
      },
      samples, golden, clients, total, opts);
  r.stats = server.stats();
  return r;
}

}  // namespace apnn::bench

// Shared driver for Figures 7 (RTX 3090) and 8 (A100): APConv speedup over
// cutlass-conv-int4 and cutlass-conv-int8 across channel counts; 16x16
// input, 3x3 kernel, stride 1, batch 1, Cin = Cout.
#pragma once

#include "bench_util.hpp"

namespace apnn::bench {

inline void run_apconv_sweep(const tcsim::DeviceSpec& dev,
                             const char* paper_note_a,
                             const char* paper_note_b) {
  print_header(strf("APConv speedup over cutlass-conv-int4 on %s  "
                    "(paper Fig. %s)",
                    dev.name.c_str(), paper_note_a));
  std::printf("paper: up to ~3.78x over int4\n\n");
  print_row({"channels", "w1a2", "w1a3", "w1a4", "w2a2", "int1"});
  print_rule(6);
  for (std::int64_t c : paper_size_sweep()) {
    const auto g = sweep_conv_geometry(c);
    const double t4 =
        baseline_conv_latency_us(dev, tcsim::Precision::kInt4, g);
    const double t1 =
        baseline_conv_latency_us(dev, tcsim::Precision::kInt1, g);
    print_row({strf("%ld", c),
               strf("%.2fx", t4 / apconv_latency_us(dev, g, 1, 2)),
               strf("%.2fx", t4 / apconv_latency_us(dev, g, 1, 3)),
               strf("%.2fx", t4 / apconv_latency_us(dev, g, 1, 4)),
               strf("%.2fx", t4 / apconv_latency_us(dev, g, 2, 2)),
               strf("%.2fx", t4 / t1)});
  }

  print_header(strf("APConv speedup over cutlass-conv-int8 on %s  "
                    "(paper Fig. %s)",
                    dev.name.c_str(), paper_note_b));
  std::printf("paper: up to ~3.08x over int8; smaller speedup at large "
              "channel counts\n\n");
  print_row({"channels", "w1a5", "w1a8", "w2a6", "w2a8", "int1"});
  print_rule(6);
  for (std::int64_t c : paper_size_sweep()) {
    const auto g = sweep_conv_geometry(c);
    const double t8 =
        baseline_conv_latency_us(dev, tcsim::Precision::kInt8, g);
    const double t1 =
        baseline_conv_latency_us(dev, tcsim::Precision::kInt1, g);
    print_row({strf("%ld", c),
               strf("%.2fx", t8 / apconv_latency_us(dev, g, 1, 5)),
               strf("%.2fx", t8 / apconv_latency_us(dev, g, 1, 8)),
               strf("%.2fx", t8 / apconv_latency_us(dev, g, 2, 6)),
               strf("%.2fx", t8 / apconv_latency_us(dev, g, 2, 8)),
               strf("%.2fx", t8 / t1)});
  }
}

}  // namespace apnn::bench

// Reproduces paper Figure 12: APMM against CUTLASS at the *same* precision —
// APMM-w4a4 vs cutlass-gemm-int4 (~1.3x, shrinking with size) and
// APMM-w1a1 vs cutlass-gemm-int1 (~1.35x from kernel-level optimizations).
#include <cstdio>

#include "bench_util.hpp"

namespace {

using apnn::bench::apmm_bnn_latency_us;
using apnn::bench::apmm_latency_us;
using apnn::bench::baseline_gemm_latency_us;
using apnn::bench::paper_size_sweep;
using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::strf;

}  // namespace

int main() {
  const auto& dev = apnn::tcsim::rtx3090();
  const std::int64_t m = 64;
  print_header("Figure 12: APMM vs CUTLASS at equal bit width (RTX 3090)");
  std::printf("paper: APMM-w4a4 ~1.3x over cutlass-int4 (shrinking with "
              "size); APMM-w1a1 ~1.35x over cutlass-int1\n\n");
  print_row({"size", "w4a4/int4", "w1a1/int1"});
  print_rule(3);
  double s44 = 0, s11 = 0;
  int count = 0;
  for (std::int64_t n : paper_size_sweep()) {
    const double t4 =
        baseline_gemm_latency_us(dev, apnn::tcsim::Precision::kInt4, m, n, n);
    const double t1 =
        baseline_gemm_latency_us(dev, apnn::tcsim::Precision::kInt1, m, n, n);
    const double r44 = t4 / apmm_latency_us(dev, m, n, n, 4, 4);
    const double r11 = t1 / apmm_bnn_latency_us(dev, m, n, n);
    s44 += r44;
    s11 += r11;
    ++count;
    print_row({strf("%ld", n), strf("%.2fx", r44), strf("%.2fx", r11)});
  }
  std::printf("\naverages: w4a4 %.2fx (paper ~1.3x), w1a1 %.2fx (paper "
              "~1.35x)\n",
              s44 / count, s11 / count);
  return 0;
}

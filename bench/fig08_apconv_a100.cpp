// Reproduces paper Figure 8: APConv performance on A100.
#include "apconv_sweep.hpp"
#include "src/tcsim/device_spec.hpp"

int main() {
  apnn::bench::run_apconv_sweep(apnn::tcsim::a100(), "8a", "8b");
  return 0;
}

// Reproduces paper Table 4: raw latency of a typical fully connected layer
// (batch M = 64, input K = 1024, output N = 1024), in microseconds.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using apnn::bench::apmm_latency_us;
using apnn::bench::baseline_gemm_latency_us;
using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::strf;

}  // namespace

int main() {
  const auto& dev = apnn::tcsim::rtx3090();
  const std::int64_t m = 64, k = 1024, n = 1024;
  print_header("Table 4: raw latency of a typical FC layer "
               "(M=64, K=N=1024), microseconds");
  std::printf("paper: w1a2 6.67, w1a3 6.81, w1a4 7.06, w2a2 7.15, "
              "cutlass-int4 15.61, cutlass-int1 7.92\n\n");
  print_row({"kernel", "latency (us)", "paper (us)"}, 18);
  print_rule(3, 18);
  print_row({"APMM-w1a2", strf("%.2f", apmm_latency_us(dev, m, n, k, 1, 2)),
             "6.67"},
            18);
  print_row({"APMM-w1a3", strf("%.2f", apmm_latency_us(dev, m, n, k, 1, 3)),
             "6.81"},
            18);
  print_row({"APMM-w1a4", strf("%.2f", apmm_latency_us(dev, m, n, k, 1, 4)),
             "7.06"},
            18);
  print_row({"APMM-w2a2", strf("%.2f", apmm_latency_us(dev, m, n, k, 2, 2)),
             "7.15"},
            18);
  print_row({"cutlass-gemm-int4",
             strf("%.2f", baseline_gemm_latency_us(
                              dev, apnn::tcsim::Precision::kInt4, m, n, k)),
             "15.61"},
            18);
  print_row({"cutlass-gemm-int1",
             strf("%.2f", baseline_gemm_latency_us(
                              dev, apnn::tcsim::Precision::kInt1, m, n, k)),
             "7.92"},
            18);
  std::printf("\nshape check: AP kernels ~2x faster than cutlass-int4 and "
              "at or below cutlass-int1.\n");
  return 0;
}

// Conv hot-path regression gate: materialized-im2col APConv (the pre-fusion
// pipeline) vs the im2col-free fused APConv.
//
// The materialized baseline is re-implemented here verbatim from the old
// apconv() functional path so later library changes cannot silently move
// it: per activation plane a full gemm_n x gemm_k patch matrix is built
// with im2col_bits, the batched GEMM runs over it, and the BN -> ReLU ->
// pool -> quantize-repack tail executes as *serial* full-output passes.
// The fused path (core::apconv) window-gathers B-panel k-strips straight
// from the packed feature map inside the microkernel staging layer and
// runs the whole tail inside each block's epilogue.
//
// Bit-exactness of the two paths is checked before any timing. Results are
// written as JSON so CI can track the conv-path speedup from PR 2 onward.
//
// Usage: apconv_hotpath [out.json] [reps]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/core/apconv.hpp"
#include "src/core/apmm_internal.hpp"
#include "src/layout/im2col.hpp"
#include "src/layout/packed_activations.hpp"
#include "src/quant/quantizer.hpp"

namespace apnn {
namespace {

using core::ApOperand;
using core::Epilogue;
using core::PoolSpec;

/// Verbatim re-implementation of the pre-fusion apconv() functional path:
/// materialized channel-major im2col, GEMM over the patch planes, then the
/// serial BN/ReLU double loop, serial pooling, and serial quantize+repack.
layout::PackedActivations materialized_apconv(
    const ApOperand& w, const layout::PackedActivations& x,
    core::Encoding x_enc, const layout::ConvGeometry& g,
    const core::TileConfig& tile, const Epilogue& epi, const PoolSpec& pool) {
  const core::OpSelection sel = core::select_operator({w.encoding, x_enc});
  const bool pad_one = sel.kind == core::EmulationCase::kCaseII;
  const core::internal::BatchedGeometry geom = core::internal::make_geometry(
      g.gemm_m(), g.gemm_n(), g.gemm_k(), w.bits(), x.bits, tile);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t win = pool.active() ? pool.size : 1;
  const std::int64_t pooled_h = oh / win, pooled_w = ow / win;

  // Channel-major lowering: one patch matrix per activation plane.
  ApOperand xop;
  xop.encoding = x_enc;
  xop.planes.rows = g.gemm_n();
  xop.planes.cols = g.gemm_k();
  xop.planes.bits = x.bits;
  for (int t = 0; t < x.bits; ++t) {
    xop.planes.planes.push_back(layout::im2col_bits(
        x.planes[static_cast<std::size_t>(t)], g, pad_one));
  }

  Tensor<std::int32_t> y32({geom.m, geom.n});
  bitops::BitPlanes unused;
  core::internal::run_batched_compute(w, xop, sel, geom, Epilogue{}, &y32,
                                      &unused);

  // §4.2b Case-II padding amendment (verbatim: the serial per-border-
  // position masked-popc pass of the pre-fusion path).
  if (sel.kind == core::EmulationCase::kCaseII) {
    const bitops::BitMatrix& w0 = w.planes.plane(0);
    const std::int64_t row_words = w0.row_words();
    std::vector<std::uint64_t> mask(static_cast<std::size_t>(row_words));
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::fill(mask.begin(), mask.end(), 0);
        std::int64_t npad = 0;
        for (int kh = 0; kh < g.kernel; ++kh) {
          for (int kw = 0; kw < g.kernel; ++kw) {
            const std::int64_t ih = oy * g.stride + kh - g.pad;
            const std::int64_t iw = ox * g.stride + kw - g.pad;
            if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) {
              const std::int64_t bit =
                  (static_cast<std::int64_t>(kh) * g.kernel + kw) * g.in_c;
              for (std::int64_t c = 0; c < g.in_c; ++c) {
                mask[static_cast<std::size_t>((bit + c) / 64)] |=
                    1ULL << ((bit + c) % 64);
              }
              npad += g.in_c;
            }
          }
        }
        if (npad == 0) continue;
        for (std::int64_t m = 0; m < g.out_c; ++m) {
          const std::int64_t ones =
              bitops::dot_and_popc(w0.row(m), mask.data(), row_words);
          const std::int32_t corr =
              static_cast<std::int32_t>(2 * ones - npad);
          for (std::int64_t n = 0; n < g.batch; ++n) {
            y32(m, (n * oh + oy) * ow + ox) -= corr;
          }
        }
      }
    }
  }

  // BN / ReLU before pooling (the serial full-output double loop).
  if (epi.has_bn || epi.has_relu) {
    Epilogue pre = epi;
    pre.has_quant = false;
    for (std::int64_t m = 0; m < geom.m; ++m) {
      for (std::int64_t col = 0; col < geom.n; ++col) {
        y32(m, col) = pre.apply(y32(m, col), m);
      }
    }
  }

  // Pooling (serial).
  Tensor<std::int32_t> pooled({geom.m, g.batch * pooled_h * pooled_w});
  if (pool.active()) {
    for (std::int64_t m = 0; m < geom.m; ++m) {
      for (std::int64_t n = 0; n < g.batch; ++n) {
        for (std::int64_t py = 0; py < pooled_h; ++py) {
          for (std::int64_t px = 0; px < pooled_w; ++px) {
            std::int64_t agg =
                pool.kind == PoolSpec::Kind::kMax ? INT64_MIN : 0;
            for (std::int64_t dy = 0; dy < win; ++dy) {
              for (std::int64_t dx = 0; dx < win; ++dx) {
                const std::int64_t col =
                    (n * oh + py * win + dy) * ow + (px * win + dx);
                const std::int32_t v = y32(m, col);
                if (pool.kind == PoolSpec::Kind::kMax) {
                  agg = std::max<std::int64_t>(agg, v);
                } else {
                  agg += v;
                }
              }
            }
            if (pool.kind == PoolSpec::Kind::kAvg) agg /= win * win;
            pooled(m, (n * pooled_h + py) * pooled_w + px) =
                static_cast<std::int32_t>(agg);
          }
        }
      }
    }
  } else {
    pooled = y32;
  }

  // Quantize + bit repack (serial).
  layout::PackedActivations out;
  out.n = g.batch;
  out.h = pooled_h;
  out.w = pooled_w;
  out.c = geom.m;
  out.bits = epi.quant.bits;
  out.planes.assign(
      static_cast<std::size_t>(epi.quant.bits),
      bitops::BitMatrix(g.batch * pooled_h * pooled_w, geom.m));
  for (std::int64_t m = 0; m < geom.m; ++m) {
    for (std::int64_t col = 0; col < g.batch * pooled_h * pooled_w; ++col) {
      const std::int32_t code = quant::quantize_value(
          static_cast<float>(pooled(m, col)), epi.quant);
      for (int bit = 0; bit < epi.quant.bits; ++bit) {
        if ((code >> bit) & 1) {
          out.planes[static_cast<std::size_t>(bit)].set(col, m, true);
        }
      }
    }
  }
  return out;
}

template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.millis());
  }
  return best;
}

}  // namespace
}  // namespace apnn

int main(int argc, char** argv) {
  using namespace apnn;
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_apconv_hotpath.json";
  const int reps = argc > 2 ? std::atoi(argv[2]) : 5;

  // Reference shape: the paper's dominant scenario — a mid-network w1a2
  // (Case III) 3x3 conv stage with the full fused tail
  // (BN -> ReLU -> 2x2 maxpool -> 2-bit quantize -> repack).
  layout::ConvGeometry g;
  g.batch = 8;
  g.in_c = 64;
  g.in_h = g.in_w = 16;
  g.out_c = 128;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;

  Rng rng(42);
  Tensor<std::int32_t> codes({g.batch, g.in_h, g.in_w, g.in_c});
  codes.randomize(rng, 0, 3);
  const layout::PackedActivations x =
      layout::pack_activations(codes, layout::DenseLayout::kNHWC, 2);

  Tensor<std::int32_t> w_ohwi({g.out_c, g.kernel, g.kernel, g.in_c});
  for (std::int64_t i = 0; i < w_ohwi.numel(); ++i) {
    w_ohwi[i] = rng.bernoulli(0.5) ? 1 : -1;
  }
  const core::ApOperand w =
      core::make_conv_weights(w_ohwi, core::Encoding::kSignedPM1, 1);

  core::Epilogue epi;
  epi.has_bn = true;
  epi.bn.scale.assign(static_cast<std::size_t>(g.out_c), 0.125f);
  epi.bn.bias.assign(static_cast<std::size_t>(g.out_c), -16.0f);
  epi.has_relu = true;
  epi.has_quant = true;
  epi.quant.bits = 2;
  epi.quant.scale = 24.0;
  core::PoolSpec pool;
  pool.kind = core::PoolSpec::Kind::kMax;
  pool.size = 2;

  const auto& dev = tcsim::rtx3090();
  const core::TileConfig tile =
      core::autotune_tile(g.gemm_m(), g.gemm_n(), g.gemm_k(), 1, 2, dev)
          .tile;
  core::ApconvOptions opts;
  opts.autotune = false;
  opts.tile = tile;

  // Correctness gate first: both paths must agree bit-exactly.
  const layout::PackedActivations ref =
      materialized_apconv(w, x, core::Encoding::kUnsigned01, g, tile, epi,
                          pool);
  const core::ApconvResult fused = core::apconv(
      w, x, core::Encoding::kUnsigned01, g, dev, opts, epi, pool);
  const Tensor<std::int32_t> ref_codes = layout::unpack_activations(ref);
  const Tensor<std::int32_t> fused_codes =
      layout::unpack_activations(fused.packed);
  if (ref_codes.numel() != fused_codes.numel()) {
    std::fprintf(stderr, "FATAL: output shape mismatch\n");
    return 1;
  }
  for (std::int64_t i = 0; i < ref_codes.numel(); ++i) {
    if (ref_codes[i] != fused_codes[i]) {
      std::fprintf(stderr, "FATAL: path mismatch at %lld: %d vs %d\n",
                   static_cast<long long>(i), ref_codes[i], fused_codes[i]);
      return 1;
    }
  }

  const double mat_ms = best_of_ms(reps, [&] {
    materialized_apconv(w, x, core::Encoding::kUnsigned01, g, tile, epi,
                        pool);
  });
  const double fused_ms = best_of_ms(reps, [&] {
    core::apconv(w, x, core::Encoding::kUnsigned01, g, dev, opts, epi, pool);
  });

  const double ops = 2.0 * static_cast<double>(g.macs());
  const double mat_gops = ops / (mat_ms * 1e6);
  const double fused_gops = ops / (fused_ms * 1e6);
  const double speedup = mat_ms / fused_ms;

  std::printf(
      "apconv hot path, w1a2 (Case III) %lldx%lldx%lldx%lld k%d s%d p%d, "
      "BN+ReLU+maxpool2+quant2\n",
      static_cast<long long>(g.batch), static_cast<long long>(g.in_h),
      static_cast<long long>(g.in_w), static_cast<long long>(g.in_c),
      g.kernel, g.stride, g.pad);
  std::printf("  gemm             : %lld x %lld x %lld\n",
              static_cast<long long>(g.gemm_m()),
              static_cast<long long>(g.gemm_n()),
              static_cast<long long>(g.gemm_k()));
  std::printf("  materialized path: %8.2f ms  (%7.2f Gop/s)\n", mat_ms,
              mat_gops);
  std::printf("  fused path       : %8.2f ms  (%7.2f Gop/s)\n", fused_ms,
              fused_gops);
  std::printf("  speedup          : %6.2fx\n", speedup);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"apconv_hotpath\",\n"
               "  \"workload\": \"w1a2_case3_conv_bn_relu_maxpool2_quant2\",\n"
               "  \"batch\": %lld,\n  \"in_c\": %lld,\n  \"hw\": %lld,\n"
               "  \"out_c\": %lld,\n  \"kernel\": %d,\n"
               "  \"gemm_m\": %lld,\n  \"gemm_n\": %lld,\n  \"gemm_k\": %lld,\n"
               "  \"tile_bm\": %d,\n  \"tile_bn\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"bit_exact\": true,\n"
               "  \"materialized_ms\": %.3f,\n"
               "  \"fused_ms\": %.3f,\n"
               "  \"materialized_gops\": %.2f,\n"
               "  \"fused_gops\": %.2f,\n"
               "  \"speedup\": %.3f\n"
               "}\n",
               static_cast<long long>(g.batch),
               static_cast<long long>(g.in_c),
               static_cast<long long>(g.in_h),
               static_cast<long long>(g.out_c), g.kernel,
               static_cast<long long>(g.gemm_m()),
               static_cast<long long>(g.gemm_n()),
               static_cast<long long>(g.gemm_k()), tile.bm, tile.bn, reps,
               mat_ms, fused_ms, mat_gops, fused_gops, speedup);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

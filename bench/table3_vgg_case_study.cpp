// Reproduces paper Table 3: the VGG case study across precision schemes,
// including the w2a8 configuration that loses to INT8 on throughput because
// it must emulate 16 one-bit planes.
#include <cstdio>

#include "bench_util.hpp"
#include "src/nn/engine.hpp"

namespace {

using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::strf;
using namespace apnn::nn;

}  // namespace

int main() {
  const auto& dev = apnn::tcsim::rtx3090();
  print_header("Table 3: case study — APNN of VGG on ImageNet (RTX 3090)");
  std::printf(
      "paper: Float 25.24ms/389fps, Half 24.19ms/466fps, INT8 25.77ms/"
      "652fps, BNN 2.17ms/3910fps,\n"
      "       APNN-w1a2 1.66ms/5320fps, APNN-w2a2 3.08ms/2590fps, "
      "APNN-w2a8 14.14ms/565fps\n\n");

  const ModelSpec m = vgg_variant();
  struct Row {
    const char* label;
    SchemeConfig cfg;
  };
  std::vector<Row> rows;
  {
    SchemeConfig c;
    c.scheme = Scheme::kFloat32;
    rows.push_back({"Float", c});
    c.scheme = Scheme::kFloat16;
    rows.push_back({"Half", c});
    c.scheme = Scheme::kInt8;
    rows.push_back({"INT8", c});
    c.scheme = Scheme::kBnn;
    rows.push_back({"BNN", c});
    c.scheme = Scheme::kApnn;
    c.wbits = 1;
    c.abits = 2;
    rows.push_back({"APNN-w1a2", c});
    c.wbits = 2;
    c.abits = 2;
    rows.push_back({"APNN-w2a2", c});
    c.wbits = 2;
    c.abits = 8;
    rows.push_back({"APNN-w2a8", c});
  }

  print_row({"scheme", "latency(8)", "throughput(128)"}, 18);
  print_rule(3, 18);
  for (const Row& r : rows) {
    const ModelProfile lat = profile_model(m, 8, r.cfg, dev);
    const ModelProfile thr = profile_model(m, 128, r.cfg, dev);
    print_row({r.label, strf("%.2fms", lat.latency_ms()),
               strf("%.3gfps", thr.throughput_fps())},
              18);
  }
  std::printf("\nshape check: w1a2 < w2a2 < w2a8 latency; w2a8 falls to "
              "roughly INT8-level throughput (16 emulation planes).\n");
  return 0;
}

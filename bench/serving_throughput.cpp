// Serving-tier regression gate: replicated InferenceServer session pool vs
// the single-replica server, under high closed-loop client concurrency.
//
// Three properties are gated (hard process failure, before any JSON is
// written for CI to diff):
//
//   * serving is exact — every response, on every replica, in every batch
//     mix, is bit-identical to a sequential batch-1 session run;
//   * a shared TuningCache warms the pool: compiling a cold autotuned
//     server, only replica 0 performs measurement runs (replicas 1..N-1
//     compile off replica 0's cache entries), and a second server sharing
//     the same cache performs zero measurement runs at start — the serving
//     cold-start path never re-measures;
//   * deadline-enforcement overhead — the same serving path with a
//     generous never-firing per-request deadline must stay within 2% of the
//     plain path's throughput (deadline_overhead_speedup >= 0.98, hard
//     gate), measured on a minimally contended single-replica loop so the
//     gate sees bookkeeping cost rather than scheduler noise; the key is
//     spelled "speedup" so tools/check_bench.py also floors it (at an
//     absolute 0.98 — the ratio's ideal is 1.0 by construction);
//   * replica scaling — aggregate throughput of the N-replica pool vs the
//     single-replica server under the same client load. The comparison is
//     topology-fair: derive_topology gives the single server one hw-wide
//     pool slice and the N-replica pool N slices of hw/N each, so both
//     sides own the same total hardware and the ratio isolates what
//     replication buys (overlap of the serial dispatch sections, no global
//     pool contention). The speedup gate (>= 2x at >= 4 replicas) is
//     enforced only where the hardware can host it
//     (hardware_concurrency >= 2x replicas); on narrower hosts
//     (e.g. a 1-core CI container, where the kernel thread pool already
//     runs inline) a replica pool measures scheduler noise around 1.0x, so
//     the scaling is recorded (replica_scaling_x, scaling_enforced=false)
//     but deliberately not spelled "speedup" — the check_bench.py ratio
//     gate would otherwise flake on a number that means nothing there.
//     The wall/latency figures are likewise queueing metrics of a ~50 ms
//     oversubscribed run, so they are spelled *_millis (presence-checked,
//     not ceiling-gated like the compute benches' best-of-reps *_ms keys).
//
// Usage: serving_throughput [out.json] [requests] [replicas]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/serve_load.hpp"
#include "src/common/timer.hpp"
#include "src/core/autotune.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/model.hpp"
#include "src/nn/server.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

int main(int argc, char** argv) {
  using namespace apnn;
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_serving_throughput.json";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 96;
  const int replicas = argc > 3 ? std::atoi(argv[3]) : 4;
  if (requests < 1 || replicas < 1) {
    std::fprintf(stderr, "usage: serving_throughput [out.json] [requests>=1] "
                         "[replicas>=1]\n");
    return 2;
  }

  // Serving workload: the residual zoo network at single-sample request
  // size — every request passes the full packed pipeline (input pack, fused
  // conv tails, residual glue, linear head).
  const std::int64_t hw = 16, in_c = 4, classes = 10;
  const nn::ModelSpec m = nn::mini_resnet(in_c, hw, classes);
  nn::ApnnNetwork net = nn::ApnnNetwork::random(m, 1, 2, 42);
  Rng rng(43);
  Tensor<std::int32_t> calib({4, hw, hw, in_c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);
  const auto& dev = tcsim::rtx3090();

  // Golden answers: sequential batch-1 session runs over the sample set.
  constexpr int kSamples = 24;
  std::vector<Tensor<std::int32_t>> samples;
  std::vector<Tensor<std::int32_t>> golden;
  {
    nn::InferenceSession session(net, dev);
    for (int i = 0; i < kSamples; ++i) {
      Tensor<std::int32_t> s({1, hw, hw, in_c});
      s.randomize(rng, 0, 255);
      golden.push_back(session.run(s));
      samples.push_back(std::move(s));
    }
  }

  const int clients = 4 * replicas;  // high concurrency: pool stays saturated
  const int hw_threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  nn::ServerOptions base;
  base.max_batch = 8;
  base.batch_window = std::chrono::microseconds(200);

  // --- throughput: single replica vs the replicated pool, same load ---------
  nn::ServerOptions single = base;
  single.replicas = 1;
  std::int64_t mismatches = 0;
  double single_ms = 1e30, replicated_ms = 1e30;
  bench::LoadResult rep_result;
  constexpr int kReps = 3;  // best-of-N: thread-churn noise
  for (int rep = 0; rep < kReps; ++rep) {
    nn::InferenceServer server(net, dev, single);
    const bench::LoadResult r =
        bench::serve_load(server, samples, golden, clients, requests);
    mismatches += r.mismatches;
    single_ms = std::min(single_ms, r.wall_ms);
  }
  nn::ServerOptions pool = base;
  pool.replicas = replicas;
  int slice_threads = 0;  // resolved per-replica pool width (topology)
  for (int rep = 0; rep < kReps; ++rep) {
    nn::InferenceServer server(net, dev, pool);
    slice_threads = server.slice_threads();
    const bench::LoadResult r =
        bench::serve_load(server, samples, golden, clients, requests);
    mismatches += r.mismatches;
    if (r.wall_ms < replicated_ms) {
      replicated_ms = r.wall_ms;
      rep_result = r;
    }
  }
  // --- deadline-enforcement overhead ----------------------------------------
  // Same server code, same samples, but every request carries a (generous,
  // never firing) deadline, so the whole robustness bookkeeping — admission
  // deadline checks, queue expiry sweeps, window clipping against the
  // earliest queued deadline, deadline-aware CV waits — runs on every
  // single request. Gated hard at 2% of the plain loop's throughput: the
  // lifecycle machinery must be effectively free when nothing goes wrong.
  //
  // Measured on a minimally contended loop (one replica, one client, zero
  // batch window) rather than the oversubscribed pool above: on a narrow
  // host the pool's wall clock is dominated by scheduler ordering noise far
  // above 2%, while the serial loop's wall clock is compute + bookkeeping —
  // exactly the quantity the gate is about. Plain and deadline passes
  // alternate on one warm server and each side keeps its floor (scheduler
  // noise is one-sided, so min-of-N converges on the true cost).
  nn::ServerOptions lean = base;
  lean.replicas = 1;
  lean.batch_window = std::chrono::microseconds(0);
  bench::LoadOptions with_deadline;
  with_deadline.deadline = std::chrono::milliseconds(60 * 1000);
  const int overhead_requests = 8 * requests;
  double plain_wall_ms = 1e30;
  double deadline_wall_ms = 1e30;
  constexpr int kOverheadReps = 12;
  {
    nn::InferenceServer server(net, dev, lean);
    // Warm-up pass: first-touch pages, allocator steady state, scheduler
    // placement — none of which either side should pay for.
    const bench::LoadResult warm = bench::serve_load(server, samples, golden,
                                                     /*clients=*/1,
                                                     overhead_requests);
    mismatches += warm.mismatches;
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      const bench::LoadResult p = bench::serve_load(server, samples, golden,
                                                    /*clients=*/1,
                                                    overhead_requests);
      mismatches += p.mismatches;
      plain_wall_ms = std::min(plain_wall_ms, p.wall_ms);
      const bench::LoadResult d = bench::serve_load(server, samples, golden,
                                                    /*clients=*/1,
                                                    overhead_requests,
                                                    with_deadline);
      mismatches += d.mismatches;
      if (d.failed != 0 || d.injected != 0) {
        std::fprintf(stderr,
                     "FATAL: %lld requests failed under a 60 s deadline\n",
                     static_cast<long long>(d.failed + d.injected));
        return 1;
      }
      deadline_wall_ms = std::min(deadline_wall_ms, d.wall_ms);
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: %lld responses mismatched the sequential batch-1 "
                 "logits\n",
                 static_cast<long long>(mismatches));
    return 1;
  }
  // Spelled "speedup" so tools/check_bench.py floors it against the checked
  // in baseline like every other ratio; >= 1.0 means deadlines cost nothing
  // measurable.
  const double deadline_overhead_speedup = plain_wall_ms / deadline_wall_ms;
  if (deadline_overhead_speedup < 0.98) {
    std::fprintf(stderr,
                 "FATAL: deadline bookkeeping cost %.1f%% of pool throughput "
                 "(gate: <= 2%%)\n",
                 100.0 * (1.0 - deadline_overhead_speedup));
    return 1;
  }

  const double single_rps = 1000.0 * requests / single_ms;
  const double replicated_rps = 1000.0 * requests / replicated_ms;
  const double speedup = replicated_rps / single_rps;

  // --- shared-TuningCache cold/warm start ------------------------------------
  core::TuningCache cache;
  nn::ServerOptions tuned = pool;
  tuned.session.autotune = true;
  tuned.session.cache = &cache;
  std::int64_t cold_runs = 0, cold_secondary = 0, warm_runs = 0;
  {
    nn::InferenceServer cold(net, dev, tuned);
    cold_runs = cold.tuning_measurements();
    for (int r = 1; r < cold.replicas(); ++r) {
      cold_secondary += cold.replica_tuning_measurements(r);
    }
  }
  if (cold_runs == 0) {
    std::fprintf(stderr, "FATAL: cold autotuned server measured nothing\n");
    return 1;
  }
  if (cold_secondary != 0) {
    std::fprintf(stderr,
                 "FATAL: replicas beyond the first performed %lld "
                 "measurement runs (shared cache should have made them "
                 "warm)\n",
                 static_cast<long long>(cold_secondary));
    return 1;
  }
  {
    nn::InferenceServer warm(net, dev, tuned);
    warm_runs = warm.tuning_measurements();
    if (warm_runs != 0) {
      std::fprintf(stderr,
                   "FATAL: warm shared cache still cost %lld measurement "
                   "runs at server start (expected 0)\n",
                   static_cast<long long>(warm_runs));
      return 1;
    }
    // Tuned-plan serving stays bit-exact.
    const bench::LoadResult r = bench::serve_load(
        warm, samples, golden, clients, std::min(requests, 2 * kSamples));
    if (r.mismatches != 0) {
      std::fprintf(stderr, "FATAL: tuned serving responses mismatched\n");
      return 1;
    }
  }

  // --- scaling gate ----------------------------------------------------------
  const bool scaling_enforced = replicas >= 4 && hw_threads >= 2 * replicas;
  if (scaling_enforced && speedup < 2.0) {
    std::fprintf(stderr,
                 "FATAL: %d replicas on %d hardware threads reached only "
                 "%.2fx the single-replica throughput (gate: 2.0x)\n",
                 replicas, hw_threads, speedup);
    return 1;
  }

  const auto& st = rep_result.stats;
  const double mean_latency_ms =
      st.requests > 0 ? st.total_latency_ms / static_cast<double>(st.requests)
                      : 0.0;
  std::printf("serving throughput, MiniResNet %lldx%lldx%lld w1a2, "
              "%d requests x %d clients\n",
              static_cast<long long>(hw), static_cast<long long>(hw),
              static_cast<long long>(in_c), requests, clients);
  std::printf("  single replica      : %8.1f req/s  (%.1f ms wall)\n",
              single_rps, single_ms);
  std::printf("  %d replicas x %d wide: %8.1f req/s  (%.1f ms wall, "
              "%.2fx)%s\n",
              replicas, slice_threads, replicated_rps, replicated_ms, speedup,
              scaling_enforced ? "" : "  [scaling not enforced: narrow host]");
  std::printf("  batches             : %lld (largest %lld, peak queue %lld)\n",
              static_cast<long long>(st.batches),
              static_cast<long long>(st.max_batch),
              static_cast<long long>(st.peak_queue_depth));
  std::printf("  latency             : mean %.2f ms, max %.2f ms\n",
              mean_latency_ms, st.max_latency_ms);
  std::printf("  with deadlines      : %8.1f req/s  (%.1f ms wall, %.3fx "
              "of the plain serial loop; gate >= 0.98x)\n",
              1000.0 * overhead_requests / deadline_wall_ms, deadline_wall_ms,
              deadline_overhead_speedup);
  std::printf("  tuning runs         : cold %lld (replicas 1.. : %lld), "
              "warm start %lld\n",
              static_cast<long long>(cold_runs),
              static_cast<long long>(cold_secondary),
              static_cast<long long>(warm_runs));
  std::printf("  responses vs sequential batch-1 runs: bit-exact\n");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving_throughput\",\n"
               "  \"workload\": \"mini_resnet_w1a2_serving_pool\",\n"
               "  \"requests\": %d,\n"
               "  \"clients\": %d,\n"
               "  \"replicas\": %d,\n"
               "  \"slice_threads\": %d,\n"
               "  \"hardware_threads\": %d,\n"
               "  \"bit_exact\": true,\n"
               "  \"single_rps\": %.1f,\n"
               "  \"replicated_rps\": %.1f,\n"
               "  \"replica_scaling_x\": %.3f,\n"
               "  \"scaling_enforced\": %s,\n"
               "  \"single_wall_millis\": %.3f,\n"
               "  \"replicated_wall_millis\": %.3f,\n"
               "  \"deadline_wall_millis\": %.3f,\n"
               "  \"deadline_overhead_speedup\": %.3f,\n"
               "  \"mean_latency_millis\": %.3f,\n"
               "  \"peak_queue_depth\": %lld,\n"
               "  \"max_batch_formed\": %lld,\n"
               "  \"cold_tuning_runs\": %lld,\n"
               "  \"cold_secondary_replica_runs\": %lld,\n"
               "  \"warm_start_tuning_runs\": %lld\n"
               "}\n",
               requests, clients, replicas, slice_threads, hw_threads,
               single_rps,
               replicated_rps, speedup, scaling_enforced ? "true" : "false",
               single_ms, replicated_ms, deadline_wall_ms,
               deadline_overhead_speedup, mean_latency_ms,
               static_cast<long long>(st.peak_queue_depth),
               static_cast<long long>(st.max_batch),
               static_cast<long long>(cold_runs),
               static_cast<long long>(cold_secondary),
               static_cast<long long>(warm_runs));
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

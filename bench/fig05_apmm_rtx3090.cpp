// Reproduces paper Figure 5: APMM performance on RTX 3090.
#include "apmm_sweep.hpp"
#include "src/tcsim/device_spec.hpp"

int main() {
  apnn::bench::run_apmm_sweep(apnn::tcsim::rtx3090(), "5a", "5b");
  return 0;
}

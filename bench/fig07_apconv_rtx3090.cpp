// Reproduces paper Figure 7: APConv performance on RTX 3090.
#include "apconv_sweep.hpp"
#include "src/tcsim/device_spec.hpp"

int main() {
  apnn::bench::run_apconv_sweep(apnn::tcsim::rtx3090(), "7a", "7b");
  return 0;
}

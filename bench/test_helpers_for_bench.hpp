// Operand generators shared by the micro-benchmarks (mirrors
// tests/test_util.hpp without depending on gtest).
#pragma once

#include "src/common/rng.hpp"
#include "src/core/ap_bit.hpp"

namespace apnn::bench_helpers {

inline core::ApOperand random_operand(Rng& rng, std::int64_t rows,
                                      std::int64_t cols, core::Encoding enc,
                                      int bits) {
  Tensor<std::int32_t> t({rows, cols});
  const core::ValueRange r = core::encoding_range(enc, bits);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (enc == core::Encoding::kSignedPM1) {
      t[i] = rng.bernoulli(0.5) ? 1 : -1;
    } else {
      t[i] = static_cast<std::int32_t>(rng.uniform_int(r.lo, r.hi));
    }
  }
  return core::make_operand(t, enc, bits);
}

}  // namespace apnn::bench_helpers

// Reproduces paper Figure 9: per-layer latency breakdown of the APNN models
// (batch 8, RTX 3090). The paper observes the first layer dominating — up
// to 80.4% for AlexNet and 47.5% for VGG-Variant — because it consumes the
// full-resolution 8-bit input feature map.
#include <cstdio>

#include "bench_util.hpp"
#include "src/nn/engine.hpp"

namespace {

using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::strf;
using namespace apnn::nn;

void breakdown(const ModelSpec& m, const apnn::tcsim::DeviceSpec& dev) {
  SchemeConfig cfg;  // APNN-w1a2
  const ModelProfile p = profile_model(m, 8, cfg, dev);
  std::printf("\n--- %s (APNN-w1a2, batch 8, total %.2fms) ---\n",
              m.name.c_str(), p.latency_ms());
  print_row({"layer", "latency", "share"}, 16);
  print_rule(3, 16);
  double first_share = 0;
  bool first_seen = false;
  for (const LayerProfile& lp : p.layers) {
    if (lp.fused_away || lp.latency.total_us == 0) continue;
    const double share = 100.0 * lp.latency.total_us / p.total_us;
    if (!first_seen &&
        (lp.kind == LayerKind::kConv || lp.kind == LayerKind::kLinear)) {
      first_share = share;
      first_seen = true;
    }
    if (share >= 1.0) {
      print_row({lp.name, apnn::format_time_us(lp.latency.total_us),
                 strf("%.1f%%", share)},
                16);
    }
  }
  std::printf("first GEMM-layer share: %.1f%%\n", first_share);
}

}  // namespace

int main() {
  const auto& dev = apnn::tcsim::rtx3090();
  print_header("Figure 9: per-layer latency breakdown of APNN models");
  std::printf("paper: first layer share up to 80.4%% (AlexNet) and 47.5%% "
              "(VGG-Variant); other layers roughly balanced\n");
  breakdown(alexnet(), dev);
  breakdown(vgg_variant(), dev);
  breakdown(resnet18(), dev);
  return 0;
}

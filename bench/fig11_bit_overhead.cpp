// Reproduces paper Figure 11: overhead of bit combination and bit
// decomposition relative to the tensor-core computation inside
// APConv-w1a2, across channel counts. The paper measures ~1.16%
// (combination) and ~2.02% (decomposition) on average, shrinking as the
// channel count grows (quadratic vs cubic work).
#include <cstdio>

#include "bench_util.hpp"

namespace {

using apnn::bench::paper_size_sweep;
using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::bench::sweep_conv_geometry;
using apnn::strf;

/// Time a counter-slice would take on its own (ALU rate of the device),
/// with no launch overhead.
double alu_time_us(const apnn::tcsim::CostModel& cm,
                   const apnn::tcsim::KernelProfile& base,
                   std::int64_t alu_ops) {
  apnn::tcsim::KernelProfile k = base;
  k.counters = {};
  k.counters.alu_other_ops = alu_ops;
  const auto est = cm.estimate(k);
  return est.alu_us;
}

}  // namespace

int main() {
  const auto& dev = apnn::tcsim::rtx3090();
  const apnn::tcsim::CostModel cm(dev);
  print_header("Figure 11: bit combination / decomposition overhead "
               "relative to TC computation (APConv-w1a2)");
  std::printf("paper: +1.16%% combination, +2.02%% decomposition on "
              "average; both shrink with channel count\n\n");
  print_row({"channels", "tc-compute", "+combine", "+decompose"});
  print_rule(4);

  const apnn::core::EncodingConfig enc{apnn::core::Encoding::kSignedPM1,
                                       apnn::core::Encoding::kUnsigned01};
  apnn::core::Epilogue epi;
  epi.has_quant = true;  // the quantizing epilogue performs the
  epi.quant.bits = 2;    // decomposition of the next layer's operands

  double sum_comb = 0, sum_dec = 0;
  int count = 0;
  for (std::int64_t c : paper_size_sweep()) {
    const auto g = sweep_conv_geometry(c);
    const auto prof = apnn::core::apconv_profile(g, 1, 2, enc, dev, {}, epi);
    const auto& kernel = prof.kernels[0];
    const auto counters = prof.total_counters();

    // TC compute time alone.
    apnn::tcsim::KernelProfile tc_only = kernel;
    tc_only.counters = {};
    tc_only.counters.bmma_b1 = counters.bmma_b1;
    const double t_tc = cm.estimate(tc_only).compute_us;
    const double t_comb = alu_time_us(cm, kernel, counters.alu_combine_ops);
    // The profiled standalone kernel (like the paper's) decomposes its
    // feature map on load — shift + mask + lane shuffle + ballot per image
    // element per plane (decomposition happens once per element in image
    // space; the patch matrix reuses the decomposed planes). The epilogue's
    // output plane split is already in the counters.
    const std::int64_t image_elems = g.batch * g.in_h * g.in_w * g.in_c;
    const std::int64_t input_decompose_ops = 4 * 2 * image_elems;
    const double t_dec = alu_time_us(
        cm, kernel, counters.alu_decompose_ops + input_decompose_ops);

    const double comb_pct = 100.0 * t_comb / t_tc;
    const double dec_pct = 100.0 * t_dec / t_tc;
    sum_comb += comb_pct;
    sum_dec += dec_pct;
    ++count;
    print_row({strf("%ld", c), strf("%.2fus", t_tc),
               strf("+%.2f%%", comb_pct), strf("+%.2f%%", dec_pct)});
  }
  std::printf("\naverage overhead: combination +%.2f%%, decomposition "
              "+%.2f%% (paper: +1.16%% / +2.02%%)\n",
              sum_comb / count, sum_dec / count);
  return 0;
}

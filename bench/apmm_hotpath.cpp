// Hot-path micro-benchmark: seed bit-GEMM block loop vs the staged,
// cache-blocked, allocation-free microkernel pipeline.
//
// The seed executed every block by (a) heap-allocating row-pointer tables
// and a raw accumulator per block, (b) dispatching each 128-bit k-slab
// through bmma_8x8x128_rows' double-indirect row pointers, reloading every
// B word 8x per 8x8 tile. This harness re-implements that loop verbatim
// (including a local copy of the seed's bmma popcount kernel, so later
// changes to the library entry points cannot silently move the baseline)
// and times it against internal::run_batched_compute, which now runs on
// src/core/microkernel.hpp. Results are written as JSON so CI can track the
// speedup from PR 1 onward.
//
// Usage: apmm_hotpath [out.json] [size] [reps]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/core/apmm.hpp"
#include "src/core/apmm_internal.hpp"
#include "src/parallel/thread_pool.hpp"
#include "test_helpers_for_bench.hpp"

namespace apnn {
namespace {

using core::ApOperand;
using core::Epilogue;
using core::OpSelection;
using core::internal::BatchedGeometry;

/// Verbatim copy of the seed's bmma_8x8x128_rows (row-pointer dispatch, B
/// words reloaded per A row) — the baseline kernel being measured against.
void seed_bmma_8x8x128_rows(tcsim::BitOp op, const std::uint64_t* const* a_rows,
                            const std::uint64_t* const* b_rows,
                            std::int64_t word_offset, std::int32_t* acc) {
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t a0 = a_rows[i][word_offset];
    const std::uint64_t a1 = a_rows[i][word_offset + 1];
    std::int32_t* arow = acc + i * 8;
    if (op == tcsim::BitOp::kXor) {
      for (int j = 0; j < 8; ++j) {
        const std::uint64_t b0 = b_rows[j][word_offset];
        const std::uint64_t b1 = b_rows[j][word_offset + 1];
        arow[j] +=
            __builtin_popcountll(a0 ^ b0) + __builtin_popcountll(a1 ^ b1);
      }
    } else {
      for (int j = 0; j < 8; ++j) {
        const std::uint64_t b0 = b_rows[j][word_offset];
        const std::uint64_t b1 = b_rows[j][word_offset + 1];
        arow[j] +=
            __builtin_popcountll(a0 & b0) + __builtin_popcountll(a1 & b1);
      }
    }
  }
}

/// Verbatim re-implementation of the seed run_batched_compute block loop
/// (non-quantized path): three heap allocations per block, per-k-tile
/// row-pointer dispatch, copy-out of each 8x8 accumulator.
void seed_run_batched_compute(const ApOperand& w, const ApOperand& x,
                              const OpSelection& sel,
                              const BatchedGeometry& g,
                              Tensor<std::int32_t>* y) {
  std::vector<std::int64_t> wmult(static_cast<std::size_t>(g.p));
  std::vector<std::int64_t> xmult(static_cast<std::size_t>(g.q));
  for (int s = 0; s < g.p; ++s) {
    wmult[static_cast<std::size_t>(s)] =
        core::plane_multiplier(w.encoding, s, g.p);
  }
  for (int t = 0; t < g.q; ++t) {
    xmult[static_cast<std::size_t>(t)] =
        core::plane_multiplier(x.encoding, t, g.q);
  }
  const std::vector<std::uint64_t> zero_row(
      static_cast<std::size_t>(g.row_words), 0);

  parallel_for(0, g.blocks, [&](std::int64_t b) {
    const std::int64_t bm_idx = b / g.grid_n;
    const std::int64_t bn_idx = b % g.grid_n;
    const std::int64_t m0 = bm_idx * g.om;
    const std::int64_t n0 = bn_idx * g.on;

    std::vector<const std::uint64_t*> wrows(static_cast<std::size_t>(g.vtm8),
                                            zero_row.data());
    std::vector<const std::uint64_t*> xrows(static_cast<std::size_t>(g.vtn8),
                                            zero_row.data());
    for (std::int64_t i = 0; i < g.vtm; ++i) {
      const std::int64_t m = m0 + i / g.p;
      const int s = static_cast<int>(i % g.p);
      if (m < g.m) {
        wrows[static_cast<std::size_t>(i)] = w.planes.plane(s).row(m);
      }
    }
    for (std::int64_t j = 0; j < g.vtn; ++j) {
      const std::int64_t n = n0 + j / g.q;
      const int t = static_cast<int>(j % g.q);
      if (n < g.n) {
        xrows[static_cast<std::size_t>(j)] = x.planes.plane(t).row(n);
      }
    }

    std::vector<std::int32_t> raw(static_cast<std::size_t>(g.vtm8 * g.vtn8),
                                  0);
    for (std::int64_t ii = 0; ii < g.vtm8; ii += 8) {
      for (std::int64_t jj = 0; jj < g.vtn8; jj += 8) {
        std::int32_t acc[64] = {0};
        for (std::int64_t kt = 0; kt < g.ktiles; ++kt) {
          seed_bmma_8x8x128_rows(sel.bit_op,
                                 &wrows[static_cast<std::size_t>(ii)],
                                 &xrows[static_cast<std::size_t>(jj)],
                                 kt * bitops::kWordsPerTile, acc);
        }
        for (int di = 0; di < 8; ++di) {
          std::int32_t* dst = raw.data() + (ii + di) * g.vtn8 + jj;
          const std::int32_t* src = acc + di * 8;
          for (int dj = 0; dj < 8; ++dj) dst[dj] = src[dj];
        }
      }
    }

    for (std::int64_t mo = 0; mo < g.om; ++mo) {
      const std::int64_t m = m0 + mo;
      if (m >= g.m) break;
      for (std::int64_t no = 0; no < g.on; ++no) {
        const std::int64_t n = n0 + no;
        if (n >= g.n) break;
        std::int64_t acc = 0;
        for (int s = 0; s < g.p; ++s) {
          for (int t = 0; t < g.q; ++t) {
            const std::int32_t rawv =
                raw[static_cast<std::size_t>((mo * g.p + s) * g.vtn8 +
                                             (no * g.q + t))];
            acc += wmult[static_cast<std::size_t>(s)] *
                   xmult[static_cast<std::size_t>(t)] *
                   core::finalize_partial(sel.kind, rawv, g.k, 0);
          }
        }
        (*y)(m, n) = static_cast<std::int32_t>(acc);
      }
    }
  });
}

template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.millis());
  }
  return best;
}

}  // namespace
}  // namespace apnn

int main(int argc, char** argv) {
  using namespace apnn;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_apmm_hotpath.json";
  const std::int64_t size = argc > 2 ? std::atoll(argv[2]) : 1024;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 5;

  // 1-bit x 1-bit (BNN / Case II, XOR datapath) at size^3 — the paper's
  // headline emulation workload and the acceptance shape of PR 1.
  Rng rng(42);
  const core::ApOperand w = bench_helpers::random_operand(
      rng, size, size, core::Encoding::kSignedPM1, 1);
  const core::ApOperand x = bench_helpers::random_operand(
      rng, size, size, core::Encoding::kSignedPM1, 1);
  const core::OpSelection sel =
      core::select_operator({w.encoding, x.encoding});

  const auto& dev = tcsim::rtx3090();
  const core::TileConfig tile =
      core::autotune_tile(size, size, size, 1, 1, dev).tile;
  const core::internal::BatchedGeometry g =
      core::internal::make_geometry(w, x, tile);

  Tensor<std::int32_t> y_seed({g.m, g.n});
  Tensor<std::int32_t> y_new({g.m, g.n});
  bitops::BitPlanes unused;

  // Correctness gate first: both paths must agree bit-exactly.
  seed_run_batched_compute(w, x, sel, g, &y_seed);
  core::internal::run_batched_compute(w, x, sel, g, core::Epilogue{}, &y_new,
                                      &unused);
  for (std::int64_t i = 0; i < y_seed.numel(); ++i) {
    if (y_seed[i] != y_new[i]) {
      std::fprintf(stderr, "FATAL: path mismatch at %lld: %d vs %d\n",
                   static_cast<long long>(i), y_seed[i], y_new[i]);
      return 1;
    }
  }

  const double seed_ms = best_of_ms(
      reps, [&] { seed_run_batched_compute(w, x, sel, g, &y_seed); });
  const double new_ms = best_of_ms(reps, [&] {
    core::internal::run_batched_compute(w, x, sel, g, core::Epilogue{},
                                        &y_new, &unused);
  });

  const double ops = 2.0 * static_cast<double>(size) * size * size;
  const double seed_gops = ops / (seed_ms * 1e6);
  const double new_gops = ops / (new_ms * 1e6);
  const double speedup = seed_ms / new_ms;

  std::printf("apmm hot path, %lldx%lldx%lld 1-bit x 1-bit (Case II)\n",
              static_cast<long long>(size), static_cast<long long>(size),
              static_cast<long long>(size));
  std::printf("  seed loop       : %8.2f ms  (%7.2f Gop/s)\n", seed_ms,
              seed_gops);
  std::printf("  microkernel path: %8.2f ms  (%7.2f Gop/s)\n", new_ms,
              new_gops);
  std::printf("  speedup         : %6.2fx\n", speedup);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"apmm_hotpath\",\n"
               "  \"workload\": \"w1a1_case2_xor\",\n"
               "  \"m\": %lld,\n  \"n\": %lld,\n  \"k\": %lld,\n"
               "  \"tile_bm\": %d,\n  \"tile_bn\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"seed_ms\": %.3f,\n"
               "  \"microkernel_ms\": %.3f,\n"
               "  \"seed_gops\": %.2f,\n"
               "  \"microkernel_gops\": %.2f,\n"
               "  \"speedup\": %.3f\n"
               "}\n",
               static_cast<long long>(size), static_cast<long long>(size),
               static_cast<long long>(size), tile.bm, tile.bn, reps, seed_ms,
               new_ms, seed_gops, new_gops, speedup);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

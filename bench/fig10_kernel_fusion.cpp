// Reproduces paper Figure 10: latency of APConv-w1a2 + 2x2 pooling +
// 2-bit quantization, with and without semantic-aware kernel fusion,
// across channel counts. The paper reports an average 1.77x reduction.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using apnn::bench::paper_size_sweep;
using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::bench::sweep_conv_geometry;
using apnn::strf;

}  // namespace

int main() {
  const auto& dev = apnn::tcsim::rtx3090();
  const apnn::tcsim::CostModel cm(dev);
  print_header("Figure 10: speedup from APNN kernel fusion "
               "(conv + pool + quantize)");
  std::printf("paper: ~1.77x average latency reduction from fusing the "
              "three kernels into one\n\n");
  print_row({"channels", "w/o fusion", "w/ fusion", "reduction"});
  print_rule(4);

  const apnn::core::EncodingConfig enc{apnn::core::Encoding::kSignedPM1,
                                       apnn::core::Encoding::kUnsigned01};
  apnn::core::Epilogue epi;
  epi.has_quant = true;
  epi.quant.bits = 2;
  apnn::core::PoolSpec pool;
  pool.kind = apnn::core::PoolSpec::Kind::kMax;
  pool.size = 2;

  double total_ratio = 0;
  int count = 0;
  for (std::int64_t c : paper_size_sweep()) {
    const auto g = sweep_conv_geometry(c);
    apnn::core::ApconvOptions fused, unfused;
    unfused.fuse_epilogue = false;
    const double tf =
        cm.estimate(apnn::core::apconv_profile(g, 1, 2, enc, dev, fused, epi,
                                               pool))
            .total_us;
    const double tu =
        cm.estimate(apnn::core::apconv_profile(g, 1, 2, enc, dev, unfused,
                                               epi, pool))
            .total_us;
    total_ratio += tu / tf;
    ++count;
    print_row({strf("%ld", c), strf("%.2fus", tu), strf("%.2fus", tf),
               strf("%.2fx", tu / tf)});
  }
  std::printf("\naverage latency reduction: %.2fx (paper: 1.77x)\n",
              total_ratio / count);
  return 0;
}

// Network-level hot-path regression gate: the pre-session interpreter
// forward (verbatim re-implementation of the old ApnnNetwork::forward) vs
// the compiled InferenceSession on a MiniResNet workload.
//
// The interpreter baseline is copied here verbatim from the pre-refactor
// code so later library changes cannot silently move it: it rebuilds the
// stage map on every call, keeps every layer's activation alive for the
// whole pass, materializes to_dense copies for the glue layers, runs
// residual adds / standalone ReLU / pool / quantize as serial dense scalar
// loops, packs dense codes bit-by-bit for the next conv, and round-trips
// the linear path through dense codes (±1 decode loop, make_operand
// re-decomposition, recompose into a vector followed by an element loop —
// the linear-stage double copy). The session compiles the network once:
// slab-owned buffers, kernels writing into caller storage, word-granular
// glue ops farmed over the thread pool.
//
// Bit-exactness of the two paths (and the dense reference model) is checked
// before any timing. Results are written as JSON so CI can track the
// end-to-end forward speedup from PR 3 onward.
//
// PR 4 adds the heuristic-vs-tuned mode: the same session compiled with
// plan-time empirical autotuning (core::Autotuner + TuningCache) runs next
// to the heuristic plan. The gate enforces that the tuned plan is bit-exact
// and never slower than the heuristic plan beyond wall-clock noise (the
// autotuner measures the heuristic config as candidate #0, so it can only
// deviate when something measured faster), and that a warm TuningCache
// makes a recompile perform zero measurement runs.
//
// Usage: apnn_forward_hotpath [out.json] [reps]
#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/timer.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/model.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn {
namespace {

using nn::ApnnNetwork;
using nn::ApnnStage;
using nn::LayerKind;
using nn::LayerSpec;
using nn::ModelSpec;

// --- verbatim pre-session interpreter ---------------------------------------

struct Value {
  std::optional<layout::PackedActivations> packed;
  std::optional<Tensor<std::int32_t>> dense;

  bool valid() const { return packed.has_value() || dense.has_value(); }
};

Tensor<std::int32_t> to_dense(const Value& v) {
  APNN_CHECK(v.valid());
  if (v.dense) return *v.dense;
  return layout::unpack_activations(*v.packed);
}

const layout::PackedActivations& to_packed(
    const Value& v, int bits, layout::PackedActivations* storage) {
  APNN_CHECK(v.valid());
  if (v.packed) return *v.packed;
  APNN_CHECK(v.dense->rank() == 4) << "cannot pack feature vectors";
  *storage =
      layout::pack_activations(*v.dense, layout::DenseLayout::kNHWC, bits);
  return *storage;
}

Tensor<std::int32_t> to_features(const Value& v, std::int64_t batch) {
  Tensor<std::int32_t> d = to_dense(v);
  return d.reshaped({batch, d.numel() / batch});
}

Tensor<std::int32_t> pool_dense(const Tensor<std::int32_t>& x,
                                const core::PoolSpec& pool) {
  const std::int64_t b = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  const std::int64_t ph = h / pool.size, pw = w / pool.size;
  Tensor<std::int32_t> y({b, ph, pw, c});
  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t py = 0; py < ph; ++py) {
      for (std::int64_t px = 0; px < pw; ++px) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
          std::int64_t agg =
              pool.kind == core::PoolSpec::Kind::kMax ? INT64_MIN : 0;
          for (int dy = 0; dy < pool.size; ++dy) {
            for (int dx = 0; dx < pool.size; ++dx) {
              const std::int32_t v =
                  x(n, py * pool.size + dy, px * pool.size + dx, ch);
              if (pool.kind == core::PoolSpec::Kind::kMax) {
                agg = std::max<std::int64_t>(agg, v);
              } else {
                agg += v;
              }
            }
          }
          if (pool.kind == core::PoolSpec::Kind::kAvg) {
            agg /= static_cast<std::int64_t>(pool.size) * pool.size;
          }
          y(n, py, px, ch) = static_cast<std::int32_t>(agg);
        }
      }
    }
  }
  return y;
}

/// The old per-call interpreter, expressed over the public ApnnNetwork API.
Tensor<std::int32_t> interpreter_forward(const ApnnNetwork& net,
                                         const Tensor<std::int32_t>& input_u8,
                                         const tcsim::DeviceSpec& dev) {
  const ModelSpec& spec = net.spec();
  const std::int64_t batch = input_u8.dim(0);
  std::map<std::size_t, const ApnnStage*> stage_at;
  for (const auto& st : net.stages()) stage_at[st.layer_index] = &st;

  std::vector<Value> vals(spec.layers.size());
  Value input_val;
  input_val.packed =
      layout::pack_activations(input_u8, layout::DenseLayout::kNHWC, 8);

  std::vector<bool> consumed(spec.layers.size(), false);
  Tensor<std::int32_t> logits;

  auto input_value = [&](std::size_t li) -> const Value& {
    const int src = spec.layers[li].input;
    if (src < 0) return li == 0 ? input_val : vals[li - 1];
    return vals[static_cast<std::size_t>(src)];
  };

  for (std::size_t li = 0; li < spec.layers.size(); ++li) {
    if (consumed[li]) continue;
    const LayerSpec& l = spec.layers[li];
    const Value& in = input_value(li);

    switch (l.kind) {
      case LayerKind::kConv: {
        const ApnnStage& st = *stage_at.at(li);
        const layout::ConvGeometry g =
            conv_geometry(spec, net.shapes(), li, batch);
        layout::PackedActivations packed_storage;
        const layout::PackedActivations& x =
            to_packed(in, st.in_bits, &packed_storage);
        core::ApconvOptions opts;
        core::ApconvResult r = core::apconv(st.weights, x, st.in_enc, g, dev,
                                            opts, st.epilogue, st.pool);
        Value out;
        if (st.epilogue.has_quant) {
          out.packed = std::move(r.packed);
        } else {
          out.dense = std::move(r.y);
        }
        vals[li] = out;
        for (std::size_t j : st.absorbed) {
          vals[j] = out;
          consumed[j] = true;
        }
        break;
      }
      case LayerKind::kLinear: {
        const ApnnStage& st = *stage_at.at(li);
        Tensor<std::int32_t> xf = to_features(in, batch);  // codes
        if (st.in_enc == core::Encoding::kSignedPM1) {
          for (std::int64_t i = 0; i < xf.numel(); ++i) {
            xf[i] = 2 * xf[i] - 1;  // decode to the ±1 logical values
          }
        }
        const core::ApOperand xop =
            core::make_operand(xf, st.in_enc, st.in_bits);
        core::ApmmOptions opts;
        core::ApmmResult r = core::apmm(st.weights, xop, dev, opts,
                                        st.epilogue);
        Value out;
        if (st.epilogue.has_quant) {
          // Unpack the N x M planes back to dense {B, F} codes (the
          // recompose-then-copy double pass the session eliminates).
          Tensor<std::int32_t> d({batch, st.weights.rows()});
          const std::vector<std::int32_t> codes = bitops::recompose(r.packed);
          for (std::int64_t i = 0; i < d.numel(); ++i) {
            d[i] = codes[static_cast<std::size_t>(i)];
          }
          out.dense = std::move(d);
        } else {
          Tensor<std::int32_t> d({batch, st.weights.rows()});
          for (std::int64_t b = 0; b < batch; ++b) {
            for (std::int64_t o = 0; o < st.weights.rows(); ++o) {
              d(b, o) = r.y(o, b);
            }
          }
          out.dense = std::move(d);
        }
        vals[li] = out;
        logits = *out.dense;
        for (std::size_t j : st.absorbed) {
          vals[j] = out;
          consumed[j] = true;
        }
        break;
      }
      case LayerKind::kBatchNorm:
        vals[li] = in;  // identity (zoo specs never hit this standalone)
        break;
      case LayerKind::kReLU: {
        Tensor<std::int32_t> y = to_dense(in);
        for (std::int64_t i = 0; i < y.numel(); ++i) y[i] = std::max(y[i], 0);
        Value v;
        v.dense = std::move(y);
        vals[li] = std::move(v);
        break;
      }
      case LayerKind::kPool: {
        Value v;
        v.dense = pool_dense(to_dense(in), l.pool);
        vals[li] = std::move(v);
        break;
      }
      case LayerKind::kQuantize: {
        const auto it = net.standalone_quant().find(li);
        APNN_CHECK(it != net.standalone_quant().end());
        Tensor<std::int32_t> y = to_dense(in);
        for (std::int64_t i = 0; i < y.numel(); ++i) {
          y[i] = quant::quantize_value(static_cast<float>(y[i]), it->second);
        }
        Value v;
        v.dense = std::move(y);
        vals[li] = std::move(v);
        break;
      }
      case LayerKind::kResidualAdd: {
        Tensor<std::int32_t> a = to_dense(in);
        const Tensor<std::int32_t> b =
            to_dense(vals[static_cast<std::size_t>(l.residual)]);
        APNN_CHECK(a.numel() == b.numel());
        for (std::int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
        Value v;
        v.dense = std::move(a);
        vals[li] = std::move(v);
        break;
      }
      case LayerKind::kSoftmax:
        vals[li] = in;
        break;
    }
  }
  APNN_CHECK(logits.numel() > 0) << "network has no linear head";
  return logits;
}

template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.millis());
  }
  return best;
}

}  // namespace
}  // namespace apnn

int main(int argc, char** argv) {
  using namespace apnn;
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_apnn_forward_hotpath.json";
  const int reps = argc > 2 ? std::atoi(argv[2]) : 5;

  // Reference workload: a residual network at serving size — every glue op
  // the session parallelized is on the path (residual adds over packed and
  // dense values, standalone ReLU/quantize, avgpool, the linear head), plus
  // the 8-bit input pack and the per-layer packed handoffs.
  const std::int64_t batch = 8, hw = 32, in_c = 8, classes = 10;
  const nn::ModelSpec m = nn::mini_resnet(in_c, hw, classes);
  nn::ApnnNetwork net = nn::ApnnNetwork::random(m, 1, 2, 42);
  Rng rng(43);
  Tensor<std::int32_t> input({batch, hw, hw, in_c});
  input.randomize(rng, 0, 255);
  net.calibrate(input);
  const auto& dev = tcsim::rtx3090();

  // Correctness gate first: interpreter, session, and the dense integer
  // reference must agree bit-exactly.
  const Tensor<std::int32_t> ref = net.forward_reference(input);
  const Tensor<std::int32_t> interp = interpreter_forward(net, input, dev);
  nn::InferenceSession session(net, dev);
  Tensor<std::int32_t> sess_logits;
  session.run(input, &sess_logits);
  if (!(interp == ref)) {
    std::fprintf(stderr, "FATAL: interpreter mismatches reference\n");
    return 1;
  }
  if (!(sess_logits == ref)) {
    std::fprintf(stderr, "FATAL: session mismatches reference\n");
    return 1;
  }

  // Tuned plan: empirical autotuning at compile time, winners persisted in
  // a TuningCache. Bit-exactness is gated like the other paths.
  core::TuningCache cache;
  nn::SessionOptions topts;
  topts.autotune = true;
  topts.cache = &cache;
  topts.tune_batch = batch;
  nn::InferenceSession tuned(net, dev, topts);
  Tensor<std::int32_t> tuned_logits;
  tuned.run(input, &tuned_logits);
  if (!(tuned_logits == ref)) {
    std::fprintf(stderr, "FATAL: tuned session mismatches reference\n");
    return 1;
  }
  const std::int64_t tuning_runs = tuned.tuning_measurements();

  // A warm cache must make a recompile skip every measurement run (the
  // CLI/server cold-start path).
  nn::InferenceSession warm(net, dev, topts);
  const std::int64_t warm_runs = warm.tuning_measurements();
  if (warm_runs != 0) {
    std::fprintf(stderr,
                 "FATAL: warm-cache compile performed %lld measurement "
                 "runs (expected 0)\n",
                 static_cast<long long>(warm_runs));
    return 1;
  }

  const double interp_ms = best_of_ms(reps, [&] {
    interpreter_forward(net, input, dev);
  });
  const double session_ms = best_of_ms(reps, [&] {
    session.run(input, &sess_logits);
  });
  const double tuned_ms = best_of_ms(reps, [&] {
    tuned.run(input, &tuned_logits);
  });
  // A fresh compile per call (what ApnnNetwork::forward does) for context.
  const double compile_run_ms = best_of_ms(reps, [&] {
    nn::InferenceSession s(net, dev);
    Tensor<std::int32_t> l;
    s.run(input, &l);
  });

  // Perf gate: the tuned plan must never lose to the heuristic plan beyond
  // measurement noise (both numbers are best-of-reps on this machine).
  const double tuned_vs_heuristic = session_ms / tuned_ms;
  if (tuned_ms > session_ms * 1.10) {
    std::fprintf(stderr,
                 "FATAL: tuned plan slower than heuristic plan: %.3f ms vs "
                 "%.3f ms\n",
                 tuned_ms, session_ms);
    return 1;
  }

  const double speedup = interp_ms / session_ms;
  const double fps_interp = 1000.0 / interp_ms * static_cast<double>(batch);
  const double fps_session = 1000.0 / session_ms * static_cast<double>(batch);

  std::printf("apnn forward hot path, MiniResNet %lldx%lldx%lld w1a2, batch %lld\n",
              static_cast<long long>(hw), static_cast<long long>(hw),
              static_cast<long long>(in_c), static_cast<long long>(batch));
  std::printf("  interpreter forward : %8.2f ms  (%8.1f samples/s)\n",
              interp_ms, fps_interp);
  std::printf("  session run         : %8.2f ms  (%8.1f samples/s)\n",
              session_ms, fps_session);
  std::printf("  tuned session run   : %8.2f ms  (%6.2fx vs heuristic, "
              "%lld tuning runs)\n",
              tuned_ms, tuned_vs_heuristic,
              static_cast<long long>(tuning_runs));
  std::printf("  compile+run         : %8.2f ms\n", compile_run_ms);
  std::printf("  speedup             : %6.2fx\n", speedup);
  std::printf("  slab footprint      : %8.1f KiB over %zu slots (%zu steps)\n",
              static_cast<double>(session.slab().capacity_bytes()) / 1024.0,
              session.slot_count(), session.step_count());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"apnn_forward_hotpath\",\n"
               "  \"workload\": \"mini_resnet_w1a2_residual_serving\",\n"
               "  \"batch\": %lld,\n  \"hw\": %lld,\n  \"in_c\": %lld,\n"
               "  \"classes\": %lld,\n"
               "  \"reps\": %d,\n"
               "  \"bit_exact\": true,\n"
               "  \"interpreter_ms\": %.3f,\n"
               "  \"session_ms\": %.3f,\n"
               "  \"tuned_session_ms\": %.3f,\n"
               "  \"compile_run_ms\": %.3f,\n"
               "  \"interpreter_fps\": %.1f,\n"
               "  \"session_fps\": %.1f,\n"
               "  \"slab_bytes\": %zu,\n"
               "  \"slots\": %zu,\n"
               "  \"steps\": %zu,\n"
               "  \"tuning_runs\": %lld,\n"
               "  \"warm_compile_runs\": %lld,\n"
               "  \"speedup\": %.3f,\n"
               "  \"tuned_speedup\": %.3f,\n"
               "  \"tuned_vs_heuristic_speedup\": %.3f\n"
               "}\n",
               static_cast<long long>(batch), static_cast<long long>(hw),
               static_cast<long long>(in_c), static_cast<long long>(classes),
               reps, interp_ms, session_ms, tuned_ms, compile_run_ms,
               fps_interp, fps_session, session.slab().capacity_bytes(),
               session.slot_count(), session.step_count(),
               static_cast<long long>(tuning_runs),
               static_cast<long long>(warm_runs), speedup,
               interp_ms / tuned_ms, tuned_vs_heuristic);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench prints (a) the paper's reported numbers for the experiment and
// (b) the numbers this reproduction produces, in the same layout, so the
// shape comparison (who wins, by what factor, where the crossover sits) is
// immediate. Absolute values are modeled latencies from the tcsim cost
// model (DESIGN.md §1).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/conv.hpp"
#include "src/baselines/gemm.hpp"
#include "src/common/strings.hpp"
#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"
#include "src/tcsim/cost_model.hpp"

namespace apnn::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  std::printf("%s\n", table_row(cells, width).c_str());
}

inline void print_rule(std::size_t ncells, int width = 12) {
  std::printf("%s\n", table_rule(ncells, width).c_str());
}

/// Modeled latency (us) of an APMM kernel for weight bits p / activation
/// bits q on the usual NN encodings (±1 weights when p == 1).
inline double apmm_latency_us(const tcsim::DeviceSpec& dev, std::int64_t m,
                              std::int64_t n, std::int64_t k, int p, int q) {
  const core::EncodingConfig enc{
      p == 1 ? core::Encoding::kSignedPM1 : core::Encoding::kUnsigned01,
      core::Encoding::kUnsigned01};
  const tcsim::CostModel cm(dev);
  return cm.estimate(core::apmm_profile(m, n, k, p, q, enc, dev)).total_us;
}

/// Modeled latency (us) of a BNN-style (±1 x ±1) APMM kernel.
inline double apmm_bnn_latency_us(const tcsim::DeviceSpec& dev,
                                  std::int64_t m, std::int64_t n,
                                  std::int64_t k) {
  const core::EncodingConfig enc{core::Encoding::kSignedPM1,
                                 core::Encoding::kSignedPM1};
  const tcsim::CostModel cm(dev);
  return cm.estimate(core::apmm_profile(m, n, k, 1, 1, enc, dev)).total_us;
}

/// Modeled latency (us) of an APConv kernel.
inline double apconv_latency_us(const tcsim::DeviceSpec& dev,
                                const layout::ConvGeometry& g, int p, int q) {
  const core::EncodingConfig enc{
      p == 1 ? core::Encoding::kSignedPM1 : core::Encoding::kUnsigned01,
      core::Encoding::kUnsigned01};
  const tcsim::CostModel cm(dev);
  return cm.estimate(core::apconv_profile(g, p, q, enc, dev)).total_us;
}

inline double baseline_gemm_latency_us(const tcsim::DeviceSpec& dev,
                                       tcsim::Precision prec, std::int64_t m,
                                       std::int64_t n, std::int64_t k,
                                       bool cublas = false) {
  const tcsim::CostModel cm(dev);
  if (cublas) {
    return cm.estimate(baselines::cublas_gemm_int8_profile(m, n, k)).total_us;
  }
  return cm.estimate(baselines::cutlass_gemm_profile(prec, m, n, k)).total_us;
}

inline double baseline_conv_latency_us(const tcsim::DeviceSpec& dev,
                                       tcsim::Precision prec,
                                       const layout::ConvGeometry& g) {
  const tcsim::CostModel cm(dev);
  return cm.estimate(baselines::cutlass_conv_profile(prec, g)).total_us;
}

/// The Fig. 7/8 convolution geometry: 16x16 input, k=3, s=1, batch 1,
/// Cin = Cout = channels.
inline layout::ConvGeometry sweep_conv_geometry(std::int64_t channels) {
  layout::ConvGeometry g;
  g.batch = 1;
  g.in_c = channels;
  g.in_h = g.in_w = 16;
  g.out_c = channels;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  return g;
}

inline std::vector<std::int64_t> paper_size_sweep() {
  return {128, 256, 384, 512, 640, 768, 896, 1024};
}

}  // namespace apnn::bench

// Shared driver for Figures 5 (RTX 3090) and 6 (A100): APMM speedup over
// cutlass-gemm-int4 and cublas-gemm-int8 across matrix sizes, M = 64,
// K = N in {128 ... 1024}.
#pragma once

#include "bench_util.hpp"

namespace apnn::bench {

inline void run_apmm_sweep(const tcsim::DeviceSpec& dev,
                           const char* paper_note_a,
                           const char* paper_note_b) {
  const std::int64_t m = 64;

  print_header(strf("APMM speedup over cutlass-gemm-int4 on %s  "
                    "(paper Fig. %s)",
                    dev.name.c_str(), paper_note_a));
  std::printf("paper: w1a2 up to ~2.35x; w1a2/w1a3/w1a4/w2a2 nearly "
              "coincide at small sizes; AP kernels edge out cutlass-int1\n\n");
  print_row({"size", "w1a2", "w1a3", "w1a4", "w2a2", "int1"});
  print_rule(6);
  for (std::int64_t n : paper_size_sweep()) {
    const double t4 =
        baseline_gemm_latency_us(dev, tcsim::Precision::kInt4, m, n, n);
    const double t1 =
        baseline_gemm_latency_us(dev, tcsim::Precision::kInt1, m, n, n);
    print_row({strf("%ld", n),
               strf("%.2fx", t4 / apmm_latency_us(dev, m, n, n, 1, 2)),
               strf("%.2fx", t4 / apmm_latency_us(dev, m, n, n, 1, 3)),
               strf("%.2fx", t4 / apmm_latency_us(dev, m, n, n, 1, 4)),
               strf("%.2fx", t4 / apmm_latency_us(dev, m, n, n, 2, 2)),
               strf("%.2fx", t4 / t1)});
  }

  print_header(strf("APMM speedup over cublas-gemm-int8 on %s  "
                    "(paper Fig. %s)",
                    dev.name.c_str(), paper_note_b));
  std::printf("paper: w5a1 up to ~3x; speedup shrinks at large sizes where "
              "peak int1 throughput saturates\n\n");
  print_row({"size", "w5a1", "w1a8", "w6a2", "w2a8", "int1"});
  print_rule(6);
  for (std::int64_t n : paper_size_sweep()) {
    const double t8 = baseline_gemm_latency_us(
        dev, tcsim::Precision::kInt8, m, n, n, /*cublas=*/true);
    const double t1 =
        baseline_gemm_latency_us(dev, tcsim::Precision::kInt1, m, n, n);
    print_row({strf("%ld", n),
               strf("%.2fx", t8 / apmm_latency_us(dev, m, n, n, 5, 1)),
               strf("%.2fx", t8 / apmm_latency_us(dev, m, n, n, 1, 8)),
               strf("%.2fx", t8 / apmm_latency_us(dev, m, n, n, 6, 2)),
               strf("%.2fx", t8 / apmm_latency_us(dev, m, n, n, 2, 8)),
               strf("%.2fx", t8 / t1)});
  }
}

}  // namespace apnn::bench

// Ablation bench for the design choices DESIGN.md calls out: each APNN-TC
// mechanism is disabled in isolation and the modeled latency re-measured on
// a representative layer (the paper motivates each design qualitatively;
// this quantifies them on the simulated device).
#include <cstdio>

#include "bench_util.hpp"

namespace {

using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::strf;
using namespace apnn::core;

double gemm_us(const apnn::tcsim::DeviceSpec& dev, const ApmmOptions& opts,
               std::int64_t m, std::int64_t n, std::int64_t k, int p, int q) {
  const EncodingConfig enc{Encoding::kSignedPM1, Encoding::kUnsigned01};
  const apnn::tcsim::CostModel cm(dev);
  return cm.estimate(apmm_profile(m, n, k, p, q, enc, dev, opts)).total_us;
}

}  // namespace

int main() {
  const auto& dev = apnn::tcsim::rtx3090();
  const std::int64_t m = 64, n = 512, k = 512;
  const int p = 1, q = 2;

  print_header(strf("Ablation: APMM-w%da%d on %ldx%ldx%ld (%s)", p, q, m, n,
                    k, dev.name.c_str()));
  ApmmOptions base;
  const double t_base = gemm_us(dev, base, m, n, k, p, q);
  print_row({"configuration", "latency", "slowdown"}, 26);
  print_rule(3, 26);
  print_row({"full APNN-TC design", strf("%.2fus", t_base), "1.00x"}, 26);

  struct Toggle {
    const char* label;
    ApmmOptions opts;
  };
  std::vector<Toggle> toggles;
  {
    ApmmOptions o;
    o.batch_planes = false;
    toggles.push_back({"- plane batching (p*q launches)", o});
  }
  {
    ApmmOptions o;
    o.double_caching = false;
    toggles.push_back({"- double caching (per-warp loads)", o});
  }
  {
    ApmmOptions o;
    o.fragment_caching = false;
    toggles.push_back({"- fragment caching (SHMEM spills)", o});
  }
  {
    ApmmOptions o;
    o.semantic_aware = false;
    toggles.push_back({"- semantic-aware combination", o});
  }
  {
    ApmmOptions o;
    o.autotune = false;
    o.tile.bm = 32;
    o.tile.bn = 32;
    toggles.push_back({"- autotuning (fixed 32x32 tiles)", o});
  }
  for (const Toggle& t : toggles) {
    const double us = gemm_us(dev, t.opts, m, n, k, p, q);
    print_row({t.label, strf("%.2fus", us), strf("%.2fx", us / t_base)}, 26);
  }

  // Tail: TLP threshold sensitivity of the autotuner (the §4.3.2 T knob).
  print_header("Autotuner TLP threshold sensitivity (same layer)");
  print_row({"threshold T", "tile", "latency"}, 18);
  print_rule(3, 18);
  for (double threshold : {8.0, 32.0, 64.0, 256.0, 1024.0}) {
    ApmmOptions o;
    o.tlp_threshold = threshold;
    const TuneResult r = autotune_tile(m, n, k, p, q, dev, threshold);
    print_row({strf("%.0f", threshold),
               strf("%dx%d", r.tile.bm, r.tile.bn),
               strf("%.2fus", gemm_us(dev, o, m, n, k, p, q))},
              18);
  }
  return 0;
}

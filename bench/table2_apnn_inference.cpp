// Reproduces paper Table 2: APNN inference latency (batch 8) and throughput
// (batch 128) for AlexNet / VGG-Variant / ResNet-18 under the five schemes.
#include <cstdio>

#include "bench_util.hpp"
#include "src/nn/engine.hpp"

namespace {

using apnn::bench::print_header;
using apnn::bench::print_row;
using apnn::bench::print_rule;
using apnn::strf;
using namespace apnn::nn;

SchemeConfig make_scheme(Scheme s, int wb = 1, int ab = 2) {
  SchemeConfig cfg;
  cfg.scheme = s;
  cfg.wbits = wb;
  cfg.abits = ab;
  return cfg;
}

}  // namespace

int main() {
  const auto& dev = apnn::tcsim::rtx3090();
  print_header("Table 2: APNN inference on RTX 3090 — latency (batch 8) and "
               "throughput (batch 128)");
  std::printf(
      "paper: AlexNet 4.43ms/3.79ms/13.10ms/0.69ms/0.36ms latency and "
      "2.89e4/3.38e4/9.77e3/1.37e4/2.85e4 fps for\n"
      "       Single/Half/INT8/BNN/APNN-w1a2; VGG 25.24/24.19/25.77/2.17/"
      "1.66 ms; ResNet-18 60.96/57.33/57.09/0.68/0.64 ms\n\n");

  const std::vector<ModelSpec> models = {alexnet(), vgg_variant(), resnet18()};
  const std::vector<SchemeConfig> schemes = {
      make_scheme(Scheme::kFloat32), make_scheme(Scheme::kFloat16),
      make_scheme(Scheme::kInt8), make_scheme(Scheme::kBnn),
      make_scheme(Scheme::kApnn, 1, 2)};

  for (const ModelSpec& m : models) {
    std::printf("\n--- %s ---\n", m.name.c_str());
    print_row({"scheme", "latency(8)", "throughput(128)"}, 18);
    print_rule(3, 18);
    for (const SchemeConfig& cfg : schemes) {
      const ModelProfile lat = profile_model(m, 8, cfg, dev);
      const ModelProfile thr = profile_model(m, 128, cfg, dev);
      print_row({cfg.label(), strf("%.2fms", lat.latency_ms()),
                 strf("%.3gfps", thr.throughput_fps())},
                18);
    }
  }
  std::printf("\nshape check: APNN-w1a2 fastest or tied-fastest on every "
              "model; BNN close; int8/half/single far behind.\n");
  return 0;
}

// Attention hot-path regression gate: the pre-session hand-built attention
// path (per-call apmm over dense-staged operands, the style of the old
// examples/nlp_attention head) vs the compiled InferenceSession plan family
// on the TinyTransformer workload, across every sequence bucket.
//
// The hand-built baseline is deliberately written the way attention ran
// before the session lowering existed: every GEMM re-packs its operands
// from dense codes with make_operand on every call, Q/K/V head windows are
// sliced out as dense copies, V is transposed element by element, the
// integer-softmax tail and every requantization run as serial dense loops,
// and each stage decodes back to dense before the next one repacks it.
// The session compiles the same arithmetic once per bucket: packed-operand
// chaining between stages, word-granular packed transpose for V, slab-owned
// buffers with zero steady-state allocation, and one plan lookup per run.
//
// Gates (tools/check_bench.py):
//   * bit_exact — hand-built, compiled, and the dense integer reference
//     agree on every bucket, and the slab's backing capacity is unchanged
//     by a second pass over all buckets (steady state allocates nothing);
//     any violation is a hard failure regardless of speed.
//   * speedup / speedup_seq* — compiled-vs-hand-built ratios per bucket
//     extreme and aggregate, gated against the checked-in baseline.
//
// The serving section drives one InferenceServer (one compiled plan family,
// never a recompile) with concurrent mixed-length requests spanning every
// bucket and verifies each response bit-exact against the padded reference.
//
// Usage: attention_hotpath [out.json] [reps]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/timer.hpp"
#include "src/core/apmm.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/attention_math.hpp"
#include "src/nn/model.hpp"
#include "src/nn/server.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn {
namespace {

using nn::ApnnNetwork;
using nn::ApnnStage;
using nn::LayerKind;
using nn::LayerSpec;
using nn::ModelSpec;

// --- hand-built per-call attention forward ----------------------------------

Tensor<std::int32_t> apmm_dense(const core::ApOperand& w,
                                const Tensor<std::int32_t>& x_codes,
                                int x_bits, const tcsim::DeviceSpec& dev) {
  const core::ApOperand x =
      core::make_operand(x_codes, core::Encoding::kUnsigned01, x_bits);
  return core::apmm(w, x, dev).y;  // y(m, n) = sum_k W(m,k) X(n,k)
}

Tensor<std::int32_t> hand_attention(const LayerSpec& l, const ApnnStage& st,
                                    const Tensor<std::int32_t>& in,
                                    int abits, const tcsim::DeviceSpec& dev) {
  const std::int64_t batch = in.dim(0);
  const std::int64_t seq = in.dim(1);
  const std::int64_t d_model = in.dim(3);
  const int heads = l.attn.heads;
  const std::int64_t dh = l.attn.d_head;
  const std::int64_t proj = heads * dh;
  const std::int64_t tokens = batch * seq;
  const int shift = nn::attn_scale_shift(l.attn);
  const Tensor<std::int32_t> xf = in.reshaped({tokens, d_model});

  // Q/K/V projections: one apmm each (operands re-packed per call), then
  // serial relu + requantize into abits codes.
  auto project = [&](const core::ApOperand& w, const quant::QuantParams& qp) {
    const Tensor<std::int32_t> y = apmm_dense(w, xf, st.in_bits, dev);
    Tensor<std::int32_t> codes({tokens, proj});
    for (std::int64_t t = 0; t < tokens; ++t) {
      for (std::int64_t o = 0; o < proj; ++o) {
        codes(t, o) = quant::quantize_value(
            static_cast<float>(std::max(y(o, t), 0)), qp);
      }
    }
    return codes;
  };
  const Tensor<std::int32_t> q = project(st.weights, st.attn_q_quant);
  const Tensor<std::int32_t> k = project(st.attn_wk, st.attn_k_quant);
  const Tensor<std::int32_t> v = project(st.attn_wv, st.attn_v_quant);

  // Per (sample, head): dense-sliced score GEMM, integer softmax, and the
  // context GEMM over an element-wise V transpose.
  Tensor<std::int32_t> ctx({tokens, proj});
  for (std::int64_t b = 0; b < batch; ++b) {
    for (int h = 0; h < heads; ++h) {
      const std::int64_t col0 = h * dh;
      Tensor<std::int32_t> qh({seq, dh}), kh({seq, dh});
      for (std::int64_t i = 0; i < seq; ++i) {
        for (std::int64_t x = 0; x < dh; ++x) {
          qh(i, x) = q(b * seq + i, col0 + x);
          kh(i, x) = k(b * seq + i, col0 + x);
        }
      }
      const core::ApOperand qop =
          core::make_operand(qh, core::Encoding::kUnsigned01, abits);
      const Tensor<std::int32_t> scores = apmm_dense(qop, kh, abits, dev);

      Tensor<std::int32_t> attn({seq, seq});
      for (std::int64_t i = 0; i < seq; ++i) {
        nn::attn_softmax_row(&scores(i, 0), seq, shift, abits, &attn(i, 0));
      }

      Tensor<std::int32_t> vt({dh, seq});  // element-wise transpose
      for (std::int64_t j = 0; j < seq; ++j) {
        for (std::int64_t x = 0; x < dh; ++x) {
          vt(x, j) = v(b * seq + j, col0 + x);
        }
      }
      const core::ApOperand aop =
          core::make_operand(attn, core::Encoding::kUnsigned01, abits);
      const Tensor<std::int32_t> ch = apmm_dense(aop, vt, abits, dev);
      for (std::int64_t i = 0; i < seq; ++i) {
        for (std::int64_t x = 0; x < dh; ++x) {
          ctx(b * seq + i, col0 + x) = std::max(ch(i, x), 0);
        }
      }
    }
  }
  Tensor<std::int32_t> ctx_codes = ctx;
  for (std::int64_t i = 0; i < ctx.numel(); ++i) {
    ctx_codes[i] = quant::quantize_value(static_cast<float>(ctx[i]),
                                         st.attn_ctx_quant);
  }

  // Output projection back to d_model with the stage epilogue.
  const Tensor<std::int32_t> o = apmm_dense(st.attn_wo, ctx_codes, abits, dev);
  Tensor<std::int32_t> out({batch, seq, std::int64_t{1}, d_model});
  Tensor<std::int32_t> of = out.reshaped({tokens, d_model});
  for (std::int64_t t = 0; t < tokens; ++t) {
    for (std::int64_t c = 0; c < d_model; ++c) {
      of(t, c) = quant::quantize_value(
          static_cast<float>(std::max(o(c, t), 0)), st.epilogue.quant);
    }
  }
  return of.reshaped({batch, seq, std::int64_t{1}, d_model});
}

Tensor<std::int32_t> hand_forward(const ApnnNetwork& net,
                                  const Tensor<std::int32_t>& input_u8,
                                  const tcsim::DeviceSpec& dev) {
  const ModelSpec& spec = net.spec();
  std::vector<const ApnnStage*> stage_at(spec.layers.size(), nullptr);
  for (const ApnnStage& st : net.stages()) {
    stage_at[st.layer_index] = &st;
  }
  Tensor<std::int32_t> cur = input_u8;
  Tensor<std::int32_t> logits;
  for (std::size_t li = 0; li < spec.layers.size(); ++li) {
    const LayerSpec& l = spec.layers[li];
    switch (l.kind) {
      case LayerKind::kAttention:
        cur = hand_attention(l, *stage_at[li], cur, net.abits(), dev);
        break;
      case LayerKind::kPool: {  // global average over the token axis
        const std::int64_t b = cur.dim(0), h = cur.dim(1) * cur.dim(2),
                           c = cur.dim(3);
        Tensor<std::int32_t> y({b, std::int64_t{1}, std::int64_t{1}, c});
        for (std::int64_t n = 0; n < b; ++n) {
          for (std::int64_t ch = 0; ch < c; ++ch) {
            std::int64_t acc = 0;
            for (std::int64_t i = 0; i < h; ++i) {
              acc += cur(n, i / cur.dim(2), i % cur.dim(2), ch);
            }
            y(n, 0, 0, ch) = static_cast<std::int32_t>(acc / h);
          }
        }
        cur = y;
        break;
      }
      case LayerKind::kLinear: {
        const ApnnStage& st = *stage_at[li];
        const std::int64_t b = cur.dim(0);
        const Tensor<std::int32_t> xf = cur.reshaped({b, cur.numel() / b});
        const Tensor<std::int32_t> y = apmm_dense(st.weights, xf,
                                                  st.in_bits, dev);
        Tensor<std::int32_t> out({b, l.out_features});
        for (std::int64_t n = 0; n < b; ++n) {
          for (std::int64_t o = 0; o < l.out_features; ++o) {
            std::int32_t val = y(o, n);
            if (st.epilogue.has_bn || st.epilogue.has_relu) {
              core::Epilogue pre = st.epilogue;
              pre.has_quant = false;
              val = pre.apply(val, o);
            }
            if (st.epilogue.has_quant) {
              val = quant::quantize_value(static_cast<float>(val),
                                          st.epilogue.quant);
            }
            out(n, o) = val;
          }
        }
        cur = out;
        logits = cur;
        break;
      }
      case LayerKind::kSoftmax:
        break;  // logits returned raw
      default:
        APNN_CHECK(false) << "hand-built path: unexpected layer kind in "
                          << spec.name;
    }
  }
  return logits;
}

template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.millis());
  }
  return best;
}

}  // namespace
}  // namespace apnn

int main(int argc, char** argv) {
  using namespace apnn;
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_attention_hotpath.json";
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;

  const nn::ModelSpec spec = nn::tiny_transformer();
  nn::ApnnNetwork net = nn::ApnnNetwork::random(spec, 1, 2, 42);
  Rng rng(43);
  Tensor<std::int32_t> calib({2, spec.input.h, spec.input.w, spec.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);
  const auto& dev = tcsim::rtx3090();

  nn::InferenceSession session(net, dev);

  // Correctness gate across every bucket: reference == hand-built ==
  // compiled, and a second full pass over the plan family must not grow the
  // slab (steady state allocates nothing).
  std::vector<Tensor<std::int32_t>> inputs;
  for (const std::int64_t seq : spec.seq_buckets) {
    Tensor<std::int32_t> in({1, seq, 1, spec.input.c});
    in.randomize(rng, 0, 255);
    inputs.push_back(std::move(in));
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tensor<std::int32_t> ref = net.forward_reference(inputs[i]);
    const Tensor<std::int32_t> hand = hand_forward(net, inputs[i], dev);
    const Tensor<std::int32_t> sess = session.run(inputs[i]);
    if (!(hand == ref)) {
      std::fprintf(stderr, "FATAL: hand-built path mismatches reference at "
                           "seq %lld\n",
                   static_cast<long long>(spec.seq_buckets[i]));
      return 1;
    }
    if (!(sess == ref)) {
      std::fprintf(stderr, "FATAL: compiled session mismatches reference at "
                           "seq %lld\n",
                   static_cast<long long>(spec.seq_buckets[i]));
      return 1;
    }
  }
  const std::size_t slab_bytes = session.slab().capacity_bytes();
  for (const auto& in : inputs) session.run(in);
  if (session.slab().capacity_bytes() != slab_bytes) {
    std::fprintf(stderr, "FATAL: slab grew across a steady-state pass "
                         "(%zu -> %zu bytes)\n",
                 slab_bytes, session.slab().capacity_bytes());
    return 1;
  }

  // Timed section: smallest and largest bucket, plus the aggregate over
  // both (one ratio that moves if either end regresses).
  const Tensor<std::int32_t>& in_small = inputs.front();
  const Tensor<std::int32_t>& in_large = inputs.back();
  const double hand_small_ms =
      best_of_ms(reps, [&] { hand_forward(net, in_small, dev); });
  const double hand_large_ms =
      best_of_ms(reps, [&] { hand_forward(net, in_large, dev); });
  const double sess_small_ms =
      best_of_ms(reps, [&] { session.run(in_small); });
  const double sess_large_ms =
      best_of_ms(reps, [&] { session.run(in_large); });
  const double speedup_small = hand_small_ms / sess_small_ms;
  const double speedup_large = hand_large_ms / sess_large_ms;
  const double speedup =
      (hand_small_ms + hand_large_ms) / (sess_small_ms + sess_large_ms);

  // Serving drill: one server (one compiled plan family), concurrent
  // requests spanning every bucket plus off-bucket lengths. Each response
  // must be bit-exact vs the reference on the same zero-padded input.
  const std::vector<std::int64_t> lengths = {20, 32, 48, 64, 100,
                                             128, 256, 300, 512};
  std::vector<Tensor<std::int32_t>> samples, expected;
  for (const std::int64_t seq : lengths) {
    Tensor<std::int32_t> s({1, seq, 1, spec.input.c});
    s.randomize(rng, 0, 255);
    std::int64_t bucket = spec.seq_buckets.back();
    for (const std::int64_t b : spec.seq_buckets) {
      if (b >= seq) { bucket = b; break; }
    }
    Tensor<std::int32_t> padded({1, bucket, 1, spec.input.c});
    padded.fill(0);
    for (std::int64_t i = 0; i < s.numel(); ++i) padded[i] = s[i];
    expected.push_back(net.forward_reference(padded));
    samples.push_back(std::move(s));
  }

  nn::ServerOptions sopts;
  sopts.max_batch = 4;
  sopts.batch_window = std::chrono::microseconds(2000);
  nn::InferenceServer server(net, dev, sopts);
  const int client_threads = 4, rounds = 2;
  std::atomic<int> serve_mismatches{0};
  WallTimer serve_timer;
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < client_threads; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < rounds; ++r) {
          for (std::size_t i = 0; i < samples.size(); ++i) {
            const std::size_t pick = (i + static_cast<std::size_t>(c)) %
                                     samples.size();
            // infer() returns {classes}; the reference returns {1, classes}.
            const Tensor<std::int32_t> got = server.infer(samples[pick]);
            const Tensor<std::int32_t>& want = expected[pick];
            bool same = got.numel() == want.numel();
            for (std::int64_t e = 0; same && e < got.numel(); ++e) {
              same = got[e] == want[e];
            }
            if (!same) ++serve_mismatches;
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double serve_ms = serve_timer.millis();
  const auto stats = server.stats();
  if (serve_mismatches.load() != 0) {
    std::fprintf(stderr, "FATAL: %d mixed-length serving responses "
                         "mismatched the padded reference\n",
                 serve_mismatches.load());
    return 1;
  }
  const double serve_rps =
      static_cast<double>(stats.requests) / (serve_ms / 1000.0);

  std::printf("attention hot path, %s w1a2, buckets %lld..%lld\n",
              spec.name.c_str(),
              static_cast<long long>(spec.seq_buckets.front()),
              static_cast<long long>(spec.seq_buckets.back()));
  std::printf("  seq %4lld: hand %8.2f ms | session %8.2f ms | %5.2fx\n",
              static_cast<long long>(spec.seq_buckets.front()),
              hand_small_ms, sess_small_ms, speedup_small);
  std::printf("  seq %4lld: hand %8.2f ms | session %8.2f ms | %5.2fx\n",
              static_cast<long long>(spec.seq_buckets.back()),
              hand_large_ms, sess_large_ms, speedup_large);
  std::printf("  aggregate speedup   : %5.2fx\n", speedup);
  std::printf("  plan family         : %zu plans, %zu slots, %.1f KiB slab\n",
              session.plan_count(), session.slot_count(),
              static_cast<double>(slab_bytes) / 1024.0);
  std::printf("  mixed-length serving: %lld requests in %lld batches "
              "(max batch %lld), %.1f req/s\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches),
              static_cast<long long>(stats.max_batch), serve_rps);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"attention_hotpath\",\n"
               "  \"workload\": \"tiny_transformer_w1a2_buckets\",\n"
               "  \"buckets\": %zu,\n"
               "  \"reps\": %d,\n"
               "  \"bit_exact\": %s,\n"
               "  \"hand_seq32_millis\": %.3f,\n"
               "  \"session_seq32_millis\": %.3f,\n"
               "  \"hand_seq512_millis\": %.3f,\n"
               "  \"session_seq512_millis\": %.3f,\n"
               "  \"speedup_seq32\": %.3f,\n"
               "  \"speedup_seq512\": %.3f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"plans\": %zu,\n"
               "  \"slots\": %zu,\n"
               "  \"slab_bytes\": %zu,\n"
               "  \"serve_requests\": %lld,\n"
               "  \"serve_batches\": %lld,\n"
               "  \"serve_max_batch\": %lld,\n"
               "  \"serve_rps\": %.1f\n"
               "}\n",
               spec.seq_buckets.size(), reps, "true", hand_small_ms,
               sess_small_ms, hand_large_ms, sess_large_ms, speedup_small,
               speedup_large, speedup, session.plan_count(),
               session.slot_count(), slab_bytes,
               static_cast<long long>(stats.requests),
               static_cast<long long>(stats.batches),
               static_cast<long long>(stats.max_batch), serve_rps);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

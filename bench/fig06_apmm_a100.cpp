// Reproduces paper Figure 6: APMM performance on A100.
#include "apmm_sweep.hpp"
#include "src/tcsim/device_spec.hpp"

int main() {
  apnn::bench::run_apmm_sweep(apnn::tcsim::a100(), "6a", "6b");
  return 0;
}

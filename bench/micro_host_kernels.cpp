// Host-side wall-clock micro-benchmarks (google-benchmark) of the bit-level
// kernels that power the simulation. These are *host* numbers — the GPU
// latencies the paper reports come from the cost model — but they document
// the emulation's own performance and catch regressions.
#include <benchmark/benchmark.h>

#include "src/bitops/bit_matrix.hpp"
#include "src/bitops/pack.hpp"
#include "src/common/rng.hpp"
#include "src/core/apmm.hpp"
#include "src/layout/im2col.hpp"
#include "src/quant/qem.hpp"
#include "src/tcsim/mma.hpp"
#include "test_helpers_for_bench.hpp"

namespace {

using apnn::Rng;
using apnn::bitops::BitMatrix;

void BM_BmmaTileXor(benchmark::State& state) {
  Rng rng(1);
  BitMatrix a(8, 128), b(8, 128);
  a.randomize(rng);
  b.randomize(rng);
  std::int32_t acc[64] = {0};
  for (auto _ : state) {
    apnn::tcsim::bmma_8x8x128(apnn::tcsim::BitOp::kXor, a.row(0),
                              a.row_words(), b.row(0), b.row_words(), acc);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 2 * 8 * 8 * 128);
}
BENCHMARK(BM_BmmaTileXor);

void BM_DotXorPopc(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  Rng rng(2);
  BitMatrix a(1, k), b(1, k);
  a.randomize(rng);
  b.randomize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apnn::bitops::dot_xor_popc(a.row(0), b.row(0), a.row_words()));
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_DotXorPopc)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ApmmW1A2Host(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  const auto w = apnn::bench_helpers::random_operand(
      rng, 64, n, apnn::core::Encoding::kSignedPM1, 1);
  const auto x = apnn::bench_helpers::random_operand(
      rng, n, n, apnn::core::Encoding::kUnsigned01, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apnn::core::apmm(w, x, apnn::tcsim::rtx3090()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 64 * n * n);
}
BENCHMARK(BM_ApmmW1A2Host)->Arg(128)->Arg(256);

void BM_Im2colBits(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(4);
  apnn::layout::ConvGeometry g;
  g.batch = 1;
  g.in_c = c;
  g.in_h = g.in_w = 16;
  g.out_c = c;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  BitMatrix plane(g.batch * g.in_h * g.in_w, g.in_c);
  plane.randomize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apnn::layout::im2col_bits(plane, g, false));
  }
  state.SetItemsProcessed(state.iterations() * g.gemm_n() * g.gemm_k());
}
BENCHMARK(BM_Im2colBits)->Arg(128)->Arg(512);

void BM_PackBitPlanes(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::int32_t> vals(4096);
  for (auto& v : vals) v = static_cast<std::int32_t>(rng.uniform_int(0, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apnn::bitops::pack_bit_planes(vals.data(), 4096, 2));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PackBitPlanes);

void BM_QemQuantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<float> xs(4096);
  for (auto& x : xs) x = static_cast<float>(rng.normal(0, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(apnn::quant::qem_quantize(xs, bits));
  }
}
BENCHMARK(BM_QemQuantize)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();

// Domain example: the §4.3 performance model as a candidate pruner for the
// real empirical autotuner.
//
// For a given GEMM problem this prints two views side by side:
//   1. the full bm x bn candidate grid with TLP (Eq. 3), CI (Eq. 4) and the
//      *modeled* device latency, marking the §4.3.2 heuristic pick;
//   2. the pruned candidate set core::Autotuner actually *measures* on this
//      host — tile + microkernel knobs with wall-clock times — and the
//      winner it would bake into an InferenceSession plan.
// Comparing the two columns shows why the plan is tuned by measurement: the
// occupancy model ranks device tiles, but host wall time also moves with
// SIMD lane utilization and k-strip cache footprint, which only a
// measurement sees.
//
//   build/examples/autotune_explorer [M N K p q]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/strings.hpp"
#include "src/core/apmm.hpp"
#include "src/core/autotune.hpp"
#include "src/core/perf_model.hpp"
#include "src/tcsim/cost_model.hpp"

using namespace apnn;

int main(int argc, char** argv) {
  std::int64_t m = 64, n = 512, k = 512;
  int p = 1, q = 2;
  if (argc == 6) {
    m = std::atoll(argv[1]);
    n = std::atoll(argv[2]);
    k = std::atoll(argv[3]);
    p = std::atoi(argv[4]);
    q = std::atoi(argv[5]);
  }
  const auto& dev = tcsim::rtx3090();
  const tcsim::CostModel cm(dev);
  const core::EncodingConfig enc{
      p == 1 ? core::Encoding::kSignedPM1 : core::Encoding::kUnsigned01,
      core::Encoding::kUnsigned01};

  std::printf("APMM-w%da%d, %ldx%ldx%ld on %s (TLP threshold 64)\n\n", p, q,
              m, n, k, dev.name.c_str());
  std::printf("-- modeled candidate grid (perf_model) --\n");
  std::printf("%-10s %10s %8s %10s %12s\n", "tile", "TLP", "CI", "shmem",
              "latency");

  const core::TuneResult chosen = core::autotune_tile(m, n, k, p, q, dev);
  for (int bm : {16, 32, 64, 128}) {
    for (int bn : {16, 32, 64, 128}) {
      core::TileConfig t;
      t.bm = bm;
      t.bn = bn;
      core::assign_warp_grid(t);
      if (t.shmem_bytes() > dev.shmem_per_sm) {
        std::printf("%-10s %10s\n", strf("%dx%d", bm, bn).c_str(),
                    "(exceeds shared memory)");
        continue;
      }
      core::ApmmOptions opts;
      opts.autotune = false;
      opts.tile = t;
      const double us =
          cm.estimate(core::apmm_profile(m, n, k, p, q, enc, dev, opts))
              .total_us;
      const bool is_chosen = bm == chosen.tile.bm && bn == chosen.tile.bn;
      std::printf("%-10s %10.1f %8.1f %9.1fK %10.2fus %s\n",
                  strf("%dx%d", bm, bn).c_str(),
                  core::tlp(m, n, p, q, t), core::compute_intensity(t),
                  t.shmem_bytes() / 1024.0, us,
                  is_chosen ? "  <-- heuristic pick" : "");
    }
  }

  // The empirical side: a real weight operand at the problem geometry, the
  // pruned candidate sweep, actual wall-clock per candidate.
  std::printf("\n-- measured candidates (core::Autotuner, this host) --\n");
  core::ApOperand w;
  w.encoding = enc.w;
  w.planes.reset_shape(m, k, p);
  Rng rng(7);
  for (int s = 0; s < p; ++s) {
    w.planes.planes[static_cast<std::size_t>(s)].randomize(rng);
  }
  core::TuningCache cache;
  core::AutotuneOptions topts;
  topts.reps = 3;
  core::Autotuner tuner(dev, &cache, topts);
  std::vector<core::Autotuner::Candidate> trace;
  const core::TunedKernel winner =
      tuner.tune_apmm(w, n, q, enc.x, core::Epilogue{}, /*seq=*/0, &trace);

  std::printf("%-10s %8s %9s %6s %12s\n", "tile", "strip", "staging", "fast",
              "wall");
  for (const auto& c : trace) {
    const char* staging =
        c.cfg.micro.staging ==
                core::microkernel::MicroConfig::Staging::kRowMajor
            ? "rowmajor"
            : "auto";
    std::printf("%-10s %8lld %9s %6d %10.3fms %s\n",
                strf("%dx%d", c.cfg.tile.bm, c.cfg.tile.bn).c_str(),
                static_cast<long long>(c.cfg.micro.effective_strip()),
                staging, c.cfg.combine_fast ? 1 : 0, c.cfg.measured_ms,
                c.cfg.same_config(winner) ? "  <-- measured winner" : "");
  }
  std::printf("\nheuristic proposes (ranked by TLP, then CI — §4.3.2); the\n"
              "autotuner measures the pruned set on the real operands and\n"
              "bakes the winner into the session plan. %lld measurement\n"
              "runs; a warm TuningCache replays the winner with zero runs.\n",
              static_cast<long long>(tuner.measurement_runs()));
  return 0;
}

// Domain example: inspecting the §4.3 performance model and autotuner.
//
// For a given GEMM problem, prints the full bm x bn candidate grid with its
// TLP (Eq. 3), CI (Eq. 4) and modeled latency, and marks the configuration
// the priority-queue heuristic selects — useful when porting APNN-TC to a
// device with different SM counts or shared-memory sizes.
//
//   build/examples/autotune_explorer [M N K p q]
#include <cstdio>
#include <cstdlib>

#include "src/common/strings.hpp"
#include "src/core/apmm.hpp"
#include "src/core/perf_model.hpp"
#include "src/tcsim/cost_model.hpp"

using namespace apnn;

int main(int argc, char** argv) {
  std::int64_t m = 64, n = 512, k = 512;
  int p = 1, q = 2;
  if (argc == 6) {
    m = std::atoll(argv[1]);
    n = std::atoll(argv[2]);
    k = std::atoll(argv[3]);
    p = std::atoi(argv[4]);
    q = std::atoi(argv[5]);
  }
  const auto& dev = tcsim::rtx3090();
  const tcsim::CostModel cm(dev);
  const core::EncodingConfig enc{
      p == 1 ? core::Encoding::kSignedPM1 : core::Encoding::kUnsigned01,
      core::Encoding::kUnsigned01};

  std::printf("APMM-w%da%d, %ldx%ldx%ld on %s (TLP threshold 64)\n\n", p, q,
              m, n, k, dev.name.c_str());
  std::printf("%-10s %10s %8s %10s %12s\n", "tile", "TLP", "CI", "shmem",
              "latency");

  const core::TuneResult chosen = core::autotune_tile(m, n, k, p, q, dev);
  for (int bm : {16, 32, 64, 128}) {
    for (int bn : {16, 32, 64, 128}) {
      core::TileConfig t;
      t.bm = bm;
      t.bn = bn;
      core::assign_warp_grid(t);
      if (t.shmem_bytes() > dev.shmem_per_sm) {
        std::printf("%-10s %10s\n", strf("%dx%d", bm, bn).c_str(),
                    "(exceeds shared memory)");
        continue;
      }
      core::ApmmOptions opts;
      opts.autotune = false;
      opts.tile = t;
      const double us =
          cm.estimate(core::apmm_profile(m, n, k, p, q, enc, dev, opts))
              .total_us;
      const bool is_chosen =
          bm == chosen.tile.bm && bn == chosen.tile.bn;
      std::printf("%-10s %10.1f %8.1f %9.1fK %10.2fus %s\n",
                  strf("%dx%d", bm, bn).c_str(),
                  core::tlp(m, n, p, q, t), core::compute_intensity(t),
                  t.shmem_bytes() / 1024.0, us,
                  is_chosen ? "  <-- autotuner pick" : "");
    }
  }
  std::printf("\nheuristic: maximize TLP; while TLP >= 64, trade up for "
              "compute intensity (paper §4.3.2).\n");
  return 0;
}

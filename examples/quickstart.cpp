// Quickstart: emulate an arbitrary-precision GEMM on the simulated Ampere
// tensor cores, verify it against a plain integer GEMM, and compare its
// modeled latency with the int4/int8 baselines.
//
//   build/examples/quickstart
#include <cstdio>

#include "src/baselines/gemm.hpp"
#include "src/common/rng.hpp"
#include "src/core/apmm.hpp"
#include "src/tcsim/cost_model.hpp"

using namespace apnn;

int main() {
  // A typical fully connected layer: batch 64, 512 -> 512 features, with
  // 1-bit (±1) weights and 2-bit activations — the paper's w1a2 setting.
  const std::int64_t m = 512, n = 64, k = 512;
  Rng rng(7);

  Tensor<std::int32_t> w_logical({m, k});  // ±1 weights
  for (std::int64_t i = 0; i < w_logical.numel(); ++i) {
    w_logical[i] = rng.bernoulli(0.5) ? 1 : -1;
  }
  Tensor<std::int32_t> x_logical({n, k});  // 2-bit activations, 0..3
  x_logical.randomize(rng, 0, 3);

  // 1. Build operands: values are encoded and decomposed into bit planes.
  const core::ApOperand w =
      core::make_operand(w_logical, core::Encoding::kSignedPM1, 1);
  const core::ApOperand x =
      core::make_operand(x_logical, core::Encoding::kUnsigned01, 2);

  // 2. Run APMM: the operator (AND + popc with the Case-III correction) is
  //    selected from the encodings; tiling is autotuned.
  const auto& dev = tcsim::rtx3090();
  const core::ApmmResult r = core::apmm(w, x, dev);

  // 3. Verify against a plain integer GEMM on the logical values.
  std::int64_t errors = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int64_t>(w_logical(i, kk)) * x_logical(j, kk);
      }
      if (r.y(i, j) != acc) ++errors;
    }
  }
  std::printf("APMM-w1a2 %ldx%ldx%ld: %ld mismatches vs integer GEMM\n", m,
              n, k, errors);

  // 4. Compare modeled latencies.
  const tcsim::CostModel cm(dev);
  const double t_ap = cm.estimate(r.profile).total_us;
  const double t_i4 =
      cm.estimate(baselines::cutlass_gemm_profile(tcsim::Precision::kInt4, m,
                                                  n, k))
          .total_us;
  const double t_i8 =
      cm.estimate(baselines::cublas_gemm_int8_profile(m, n, k)).total_us;
  std::printf("modeled latency on %s:\n", dev.name.c_str());
  std::printf("  APMM-w1a2          %6.2f us  (tile %dx%d)\n", t_ap,
              r.tile.bm, r.tile.bn);
  std::printf("  cutlass-gemm-int4  %6.2f us  (%.2fx slower)\n", t_i4,
              t_i4 / t_ap);
  std::printf("  cublas-gemm-int8   %6.2f us  (%.2fx slower)\n", t_i8,
              t_i8 / t_ap);
  std::printf("kernel traffic: %.1f KiB global, %lld bmma tile ops\n",
              static_cast<double>(
                  r.profile.total_counters().total_global_bytes()) / 1024.0,
              static_cast<long long>(r.profile.total_counters().bmma_b1));
  return errors == 0 ? 0 : 1;
}

// Domain example: end-to-end arbitrary-precision CNN inference.
//
// Builds a VGG-lite network with w1a2 quantized weights, runs a batch of
// synthetic "camera frames" through the packed-dataflow APNN executor,
// verifies the result against the dense integer reference, and prints the
// per-layer modeled latency breakdown — the workflow of a latency-sensitive
// vision deployment (the paper's motivating use case, §7).
//
//   build/examples/image_classification
#include <cstdio>

#include "src/common/rng.hpp"
#include "src/common/strings.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/engine.hpp"
#include "src/tcsim/cost_model.hpp"

using namespace apnn;

int main() {
  const auto& dev = tcsim::rtx3090();
  const nn::ModelSpec spec = nn::vgg_lite(/*in_hw=*/32, /*classes=*/10);
  nn::ApnnNetwork net = nn::ApnnNetwork::random(spec, /*wbits=*/1,
                                                /*abits=*/2, /*seed=*/2021);

  // A batch of synthetic uint8 "camera frames".
  Rng rng(5);
  Tensor<std::int32_t> frames({4, 32, 32, 3});
  frames.randomize(rng, 0, 255);

  net.calibrate(frames);

  tcsim::SequenceProfile prof;
  const Tensor<std::int32_t> logits = net.forward(frames, dev, &prof);
  const Tensor<std::int32_t> ref = net.forward_reference(frames);
  std::printf("bit-exact vs dense integer reference: %s\n",
              logits == ref ? "yes" : "NO — bug!");

  std::printf("\npredictions (argmax of int32 logits):\n");
  for (std::int64_t b = 0; b < 4; ++b) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < logits.dim(1); ++c) {
      if (logits(b, c) > logits(b, best)) best = c;
    }
    std::printf("  frame %ld -> class %ld (logit %d)\n", b, best,
                logits(b, best));
  }

  // Modeled per-layer latency (Fig. 9-style breakdown).
  const nn::SchemeConfig cfg;  // APNN-w1a2
  const nn::ModelProfile mp = nn::profile_model(spec, 4, cfg, dev);
  std::printf("\nmodeled latency on %s (batch 4): %.2f ms total\n",
              dev.name.c_str(), mp.latency_ms());
  for (const auto& lp : mp.layers) {
    if (lp.fused_away || lp.latency.total_us < 1.0) continue;
    std::printf("  %-16s %10s  (%4.1f%%)\n", lp.name.c_str(),
                format_time_us(lp.latency.total_us).c_str(),
                100.0 * lp.latency.total_us / mp.total_us);
  }
  const tcsim::CostModel cm(dev);
  std::printf("\nfunctional run issued %zu kernels, %s of global traffic\n",
              prof.kernels.size(),
              format_bytes(static_cast<double>(
                  prof.total_counters().total_global_bytes())).c_str());
  (void)cm;
  return logits == ref ? 0 : 1;
}

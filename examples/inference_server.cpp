// Serving demo: a replicated session pool with dynamic micro-batching.
//
// Spins up an nn::InferenceServer on a small VGG-Lite APNN and fires
// concurrent single-sample requests at it through the shared closed-loop
// load driver (bench/serve_load.hpp — the same driver `apnn_cli serve`,
// the serving bench, and the TCP gateway bench use). Requests pass a
// bounded admission queue and are drained by two dispatcher replicas, each
// owning a compiled InferenceSession (its own activation slab and
// gather/scatter buffers — the replicas share only the const weights and
// the admission queue). Each replica forms micro-batches inside a short
// batch window, runs its session once per batch, and scatters the logits
// back; the demo prints the batching, per-replica, and latency statistics,
// and the driver verifies every response against a sequential batch-1
// session run — serving is bit-exact no matter which replica served which
// batch mix.
//
// Autotuned serving (SessionOptions{autotune, cache} inside ServerOptions,
// shared TuningCache across replicas, warm cold-starts from a cache file)
// is exercised by `apnn_cli serve --autotune --cache plan.cache` and gated
// in bench/serving_throughput. Multi-model serving over TCP lives in
// tools/apnn_serve (docs/OPERATIONS.md).
#include <cstdio>
#include <vector>

#include "bench/serve_load.hpp"
#include "src/common/rng.hpp"
#include "src/nn/server.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

int main() {
  using namespace apnn;
  const nn::ModelSpec m = nn::vgg_lite(16, 10);
  nn::ApnnNetwork net = nn::ApnnNetwork::random(m, 1, 2, 7);
  Rng rng(8);
  Tensor<std::int32_t> calib({2, 16, 16, 3});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);
  const auto& dev = tcsim::rtx3090();

  constexpr int kClients = 8;
  constexpr int kRequests = 32;
  std::vector<Tensor<std::int32_t>> samples;
  for (int i = 0; i < kRequests; ++i) {
    Tensor<std::int32_t> s({1, 16, 16, 3});
    s.randomize(rng, 0, 255);
    samples.push_back(std::move(s));
  }

  // Golden answers from sequential batch-1 session runs.
  nn::InferenceSession session(net, dev);
  std::vector<Tensor<std::int32_t>> expected;
  for (const auto& s : samples) expected.push_back(session.run(s));

  nn::ServerOptions opts;
  opts.replicas = 2;  // the default derives from hardware width
  opts.max_batch = 8;
  opts.batch_window = std::chrono::microseconds(2000);
  nn::InferenceServer server(net, dev, opts);

  const bench::LoadResult load =
      bench::serve_load(server, samples, expected, kClients, kRequests);

  const auto& stats = load.stats;
  std::printf("served %lld requests in %.1f ms (%.1f req/s) on %d replicas\n",
              static_cast<long long>(stats.requests), load.wall_ms,
              1000.0 * static_cast<double>(stats.requests) / load.wall_ms,
              server.replicas());
  std::printf("  batches: %lld (largest micro-batch %lld, peak queue %lld)\n",
              static_cast<long long>(stats.batches),
              static_cast<long long>(stats.max_batch),
              static_cast<long long>(stats.peak_queue_depth));
  std::printf("  per replica:");
  for (std::size_t r = 0; r < stats.replica_batches.size(); ++r) {
    std::printf(" #%zu=%lld batches/%lld requests", r,
                static_cast<long long>(stats.replica_batches[r]),
                static_cast<long long>(stats.replica_requests[r]));
  }
  std::printf("\n");
  std::printf("  latency: mean %.2f ms, max %.2f ms\n",
              stats.requests > 0 ? stats.total_latency_ms /
                                       static_cast<double>(stats.requests)
                                 : 0.0,
              stats.max_latency_ms);
  std::printf("  responses vs sequential session runs: %s\n",
              load.mismatches == 0 && load.failed == 0 ? "bit-exact"
                                                       : "MISMATCH");
  return load.mismatches == 0 && load.failed == 0 ? 0 : 1;
}

// Serving demo: dynamic micro-batching over a compiled InferenceSession.
//
// Spins up an nn::InferenceServer on a small VGG-Lite APNN and fires
// concurrent single-sample requests at it from client threads — the first
// real serving scenario of the repo. The server forms micro-batches inside
// a short batch window, runs the compiled session once per batch, and
// scatters logits back; the demo prints the batching statistics and
// verifies every response against a sequential batch-1 session run.
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/nn/server.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/device_spec.hpp"

int main() {
  using namespace apnn;
  const nn::ModelSpec m = nn::vgg_lite(16, 10);
  nn::ApnnNetwork net = nn::ApnnNetwork::random(m, 1, 2, 7);
  Rng rng(8);
  Tensor<std::int32_t> calib({2, 16, 16, 3});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);
  const auto& dev = tcsim::rtx3090();

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 4;
  std::vector<Tensor<std::int32_t>> samples;
  for (int i = 0; i < kClients * kRequestsPerClient; ++i) {
    Tensor<std::int32_t> s({1, 16, 16, 3});
    s.randomize(rng, 0, 255);
    samples.push_back(std::move(s));
  }

  // Golden answers from sequential batch-1 session runs.
  nn::InferenceSession session(net, dev);
  std::vector<Tensor<std::int32_t>> expected;
  for (const auto& s : samples) expected.push_back(session.run(s));

  nn::ServerOptions opts;
  opts.max_batch = 8;
  opts.batch_window = std::chrono::microseconds(2000);
  nn::InferenceServer server(net, dev, opts);

  WallTimer timer;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int i = c * kRequestsPerClient + r;
        const Tensor<std::int32_t> logits =
            server.infer(samples[static_cast<std::size_t>(i)]);
        const auto& e = expected[static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < logits.numel(); ++j) {
          if (logits[j] != e[j]) ++mismatches[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double ms = timer.millis();

  int bad = 0;
  for (int v : mismatches) bad += v;
  const auto stats = server.stats();
  std::printf("served %lld requests in %.1f ms (%.1f req/s)\n",
              static_cast<long long>(stats.requests), ms,
              1000.0 * static_cast<double>(stats.requests) / ms);
  std::printf("  batches: %lld (largest micro-batch %lld)\n",
              static_cast<long long>(stats.batches),
              static_cast<long long>(stats.max_batch));
  std::printf("  responses vs sequential session runs: %s\n",
              bad == 0 ? "bit-exact" : "MISMATCH");
  return bad == 0 ? 0 : 1;
}

// Domain example: arbitrary-precision attention (the paper's §7 claim that
// APNN-TC generalizes beyond vision because attention and feed-forward
// layers are GEMMs and dot products).
//
// Two views of the same arithmetic:
//
//   1. A hand-built quantized self-attention head wired directly out of
//      apmm() calls — the Q/K/V projections as APMM-w1a2 with quantizing
//      epilogues, the score GEMM Q·Kᵀ over packed codes, an integer softmax
//      approximation, and the value aggregation over a word-granular packed
//      transpose (layout::transpose_planes). Every GEMM is verified against
//      the dense integer reference; this is the differential golden the
//      compiled path below must match step for step.
//   2. The compiled path: nn::tiny_transformer lowered by an
//      InferenceSession into a dynamic-shape plan family (one plan per
//      sequence bucket), serving token batches of any length in
//      [1, max bucket] with zero steady-state allocations — checked
//      bit-exact against ApnnNetwork::forward_reference per bucket.
//
//   build/examples/nlp_attention
#include <algorithm>
#include <cstdio>

#include "src/baselines/gemm.hpp"
#include "src/common/rng.hpp"
#include "src/core/apmm.hpp"
#include "src/layout/bit_transpose.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/nn/session.hpp"
#include "src/tcsim/cost_model.hpp"

using namespace apnn;

namespace {

Tensor<std::int32_t> naive_gemm(const Tensor<std::int32_t>& a,
                                const Tensor<std::int32_t>& b) {
  Tensor<std::int32_t> y({a.dim(0), b.dim(0)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(0); ++j) {
      std::int64_t acc = 0;
      for (std::int64_t k = 0; k < a.dim(1); ++k) acc += a(i, k) * b(j, k);
      y(i, j) = static_cast<std::int32_t>(acc);
    }
  }
  return y;
}

// --- 1. hand-built head (per-call apmm, the differential golden) ------------

int hand_built_head(const tcsim::DeviceSpec& dev, const tcsim::CostModel& cm) {
  const std::int64_t seq = 128, d_model = 256, d_head = 64;
  const int abits = 2;
  Rng rng(42);

  // Quantized token activations (2-bit codes) and ±1 projection weights.
  Tensor<std::int32_t> x({seq, d_model});
  x.randomize(rng, 0, (1 << abits) - 1);
  auto pm1 = [&](std::int64_t rows, std::int64_t cols) {
    Tensor<std::int32_t> w({rows, cols});
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      w[i] = rng.bernoulli(0.5) ? 1 : -1;
    }
    return w;
  };
  const Tensor<std::int32_t> wq = pm1(d_head, d_model);
  const Tensor<std::int32_t> wk = pm1(d_head, d_model);

  const core::ApOperand xop =
      core::make_operand(x, core::Encoding::kUnsigned01, abits);
  tcsim::SequenceProfile head_profile;
  int mismatches = 0;

  // Q/K projections: w1a2 APMM with a quantizing epilogue so the score GEMM
  // consumes packed planes directly (minimal-traffic dataflow).
  core::Epilogue proj_epi;
  proj_epi.has_relu = true;
  proj_epi.has_quant = true;
  proj_epi.quant.bits = abits;
  proj_epi.quant.scale = d_model / 2.0;

  auto project = [&](const Tensor<std::int32_t>& w_logical) {
    const core::ApOperand w =
        core::make_operand(w_logical, core::Encoding::kSignedPM1, 1);
    core::ApmmResult r = core::apmm(w, xop, dev, {}, proj_epi);
    head_profile.add(r.profile);
    core::ApOperand out;  // seq x d_head packed codes
    out.planes = std::move(r.packed);
    out.encoding = core::Encoding::kUnsigned01;
    // Verify against the dense pipeline.
    const Tensor<std::int32_t> dense = naive_gemm(w_logical, x);
    const auto codes = core::operand_to_logical(out);
    for (std::int64_t s = 0; s < seq; ++s) {
      for (std::int64_t h = 0; h < d_head; ++h) {
        const std::int32_t expect = quant::quantize_value(
            static_cast<float>(std::max(dense(h, s), 0)), proj_epi.quant);
        if (codes(s, h) != expect) ++mismatches;
      }
    }
    return out;
  };

  const core::ApOperand q = project(wq);
  const core::ApOperand k = project(wk);

  // Scores: S = Q Kᵀ — a q-bit x q-bit APMM (Case I) over seq x seq.
  core::ApmmResult scores = core::apmm(q, k, dev);
  head_profile.add(scores.profile);
  if (scores.y != naive_gemm(core::operand_to_logical(q),
                             core::operand_to_logical(k))) {
    ++mismatches;
  }

  // Integer "softmax": shift-based normalization + re-quantization to
  // abits codes (row-wise max-normalized), then V aggregation as APMM.
  Tensor<std::int32_t> attn({seq, seq});
  for (std::int64_t i = 0; i < seq; ++i) {
    std::int32_t row_max = scores.y(i, 0);
    for (std::int64_t j = 1; j < seq; ++j) {
      row_max = std::max(row_max, scores.y(i, j));
    }
    const std::int32_t span = std::max(1, row_max);
    for (std::int64_t j = 0; j < seq; ++j) {
      const std::int32_t v = std::max(scores.y(i, j), 0);
      attn(i, j) = std::min<std::int32_t>(
          (1 << abits) - 1,
          v * (1 << abits) / (span + 1));
    }
  }
  const core::ApOperand attn_op =
      core::make_operand(attn, core::Encoding::kUnsigned01, abits);
  const Tensor<std::int32_t> wv_logical = pm1(d_head, d_model);
  const core::ApOperand wv =
      core::make_operand(wv_logical, core::Encoding::kSignedPM1, 1);
  core::ApmmResult v = core::apmm(wv, xop, dev, {}, proj_epi);
  head_profile.add(v.profile);
  core::ApOperand v_op;
  v_op.planes = std::move(v.packed);
  v_op.encoding = core::Encoding::kUnsigned01;
  // Context = Attn · V: apmm contracts both operands along their column
  // (K) dimension, so V's seq x d_head packed planes become the d_head x
  // seq operand via the word-granular packed transpose — no decode to
  // dense codes, no bit-by-bit get/set loop.
  core::ApOperand vt_op;
  vt_op.encoding = core::Encoding::kUnsigned01;
  layout::transpose_planes(v_op.planes, vt_op.planes);
  const Tensor<std::int32_t> v_t = core::operand_to_logical(vt_op);
  core::ApmmResult context = core::apmm(attn_op, vt_op, dev);
  head_profile.add(context.profile);
  if (context.y != naive_gemm(attn, v_t)) ++mismatches;

  std::printf("hand-built attention head (seq=%ld, d_model=%ld, d_head=%ld, "
              "w1a%d): %d mismatches vs integer reference\n",
              seq, d_model, d_head, abits, mismatches);

  // Price against fp16 / int8 heads (same four projections + two GEMMs).
  const double t_ap = cm.estimate(head_profile).total_us;
  auto baseline_head = [&](tcsim::Precision prec, bool cublas) {
    tcsim::SequenceProfile p;
    for (int i = 0; i < 3; ++i) {  // Q, K, V projections
      p.add(cublas ? baselines::cublas_gemm_int8_profile(d_head, seq, d_model)
                   : baselines::cutlass_gemm_profile(prec, d_head, seq,
                                                     d_model));
    }
    p.add(cublas ? baselines::cublas_gemm_int8_profile(seq, seq, d_head)
                 : baselines::cutlass_gemm_profile(prec, seq, seq, d_head));
    p.add(cublas ? baselines::cublas_gemm_int8_profile(seq, d_head, seq)
                 : baselines::cutlass_gemm_profile(prec, seq, d_head, seq));
    return cm.estimate(p).total_us;
  };
  const double t_fp16 = baseline_head(tcsim::Precision::kFp16, false);
  const double t_int8 = baseline_head(tcsim::Precision::kInt8, true);
  std::printf("modeled head latency on %s:\n", dev.name.c_str());
  std::printf("  APNN-w1a2  %7.2f us\n", t_ap);
  std::printf("  fp16       %7.2f us  (%.2fx slower)\n", t_fp16,
              t_fp16 / t_ap);
  std::printf("  int8       %7.2f us  (%.2fx slower)\n", t_int8,
              t_int8 / t_ap);
  return mismatches;
}

// --- 2. compiled plan family (tiny_transformer through a session) -----------

int compiled_transformer(const tcsim::DeviceSpec& dev) {
  const nn::ModelSpec spec = nn::tiny_transformer();
  nn::ApnnNetwork net = nn::ApnnNetwork::random(spec, 1, 2, /*seed=*/7);
  Rng rng(11);
  Tensor<std::int32_t> calib(
      {2, spec.input.h, spec.input.w, spec.input.c});
  calib.randomize(rng, 0, 255);
  net.calibrate(calib);

  nn::InferenceSession session(net, dev);
  std::printf("\ncompiled %s: %zu plans (one per bucket), %zu slab slots, "
              "%zu steps in the default plan\n",
              spec.name.c_str(), session.plan_count(), session.slot_count(),
              session.step_count());

  // Serve one request per bucket plus two off-bucket lengths (padded up by
  // the session) and check each against the dense integer reference on the
  // same padded input.
  int mismatches = 0;
  std::vector<std::int64_t> lengths = spec.seq_buckets;
  lengths.push_back(20);   // pads up to 32
  lengths.push_back(100);  // pads up to 128
  for (const std::int64_t seq : lengths) {
    Tensor<std::int32_t> tokens({1, seq, 1, spec.input.c});
    tokens.randomize(rng, 0, 255);
    const Tensor<std::int32_t> got = session.run(tokens);

    std::int64_t bucket = spec.seq_buckets.back();
    for (const std::int64_t b : spec.seq_buckets) {
      if (b >= seq) {
        bucket = b;
        break;
      }
    }
    Tensor<std::int32_t> padded({1, bucket, 1, spec.input.c});
    padded.fill(0);
    for (std::int64_t i = 0; i < tokens.numel(); ++i) padded[i] = tokens[i];
    const Tensor<std::int32_t> want = net.forward_reference(padded);
    const bool ok = got == want;
    if (!ok) ++mismatches;
    std::printf("  seq %4ld -> bucket %4ld: %s\n", seq, bucket,
                ok ? "bit-exact vs reference" : "MISMATCH");
  }
  return mismatches;
}

}  // namespace

int main() {
  const auto& dev = tcsim::rtx3090();
  const tcsim::CostModel cm(dev);
  int mismatches = hand_built_head(dev, cm);
  mismatches += compiled_transformer(dev);
  return mismatches == 0 ? 0 : 1;
}

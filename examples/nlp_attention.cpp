// Domain example: arbitrary-precision attention (the paper's §7 claim that
// APNN-TC generalizes beyond vision because attention and feed-forward
// layers are GEMMs and dot products).
//
// Builds one quantized self-attention head: the four projection GEMMs
// (Q, K, V, output) run as APMM-w1a2, the score GEMM Q·Kᵀ as an integer
// APMM over quantized activations, and the value aggregation after an
// integer softmax approximation. Verifies every emulated GEMM against the
// dense integer reference and prices the whole head against fp16 and int8
// baselines.
//
//   build/examples/nlp_attention
#include <algorithm>
#include <cstdio>

#include "src/baselines/gemm.hpp"
#include "src/common/rng.hpp"
#include "src/core/apmm.hpp"
#include "src/tcsim/cost_model.hpp"

using namespace apnn;

namespace {

Tensor<std::int32_t> naive_gemm(const Tensor<std::int32_t>& a,
                                const Tensor<std::int32_t>& b) {
  Tensor<std::int32_t> y({a.dim(0), b.dim(0)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(0); ++j) {
      std::int64_t acc = 0;
      for (std::int64_t k = 0; k < a.dim(1); ++k) acc += a(i, k) * b(j, k);
      y(i, j) = static_cast<std::int32_t>(acc);
    }
  }
  return y;
}

}  // namespace

int main() {
  const auto& dev = tcsim::rtx3090();
  const tcsim::CostModel cm(dev);
  const std::int64_t seq = 128, d_model = 256, d_head = 64;
  const int abits = 2;
  Rng rng(42);

  // Quantized token activations (2-bit codes) and ±1 projection weights.
  Tensor<std::int32_t> x({seq, d_model});
  x.randomize(rng, 0, (1 << abits) - 1);
  auto pm1 = [&](std::int64_t rows, std::int64_t cols) {
    Tensor<std::int32_t> w({rows, cols});
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      w[i] = rng.bernoulli(0.5) ? 1 : -1;
    }
    return w;
  };
  const Tensor<std::int32_t> wq = pm1(d_head, d_model);
  const Tensor<std::int32_t> wk = pm1(d_head, d_model);

  const core::ApOperand xop =
      core::make_operand(x, core::Encoding::kUnsigned01, abits);
  tcsim::SequenceProfile head_profile;
  int mismatches = 0;

  // Q/K projections: w1a2 APMM with a quantizing epilogue so the score GEMM
  // consumes packed planes directly (minimal-traffic dataflow).
  core::Epilogue proj_epi;
  proj_epi.has_relu = true;
  proj_epi.has_quant = true;
  proj_epi.quant.bits = abits;
  proj_epi.quant.scale = d_model / 2.0;

  auto project = [&](const Tensor<std::int32_t>& w_logical) {
    const core::ApOperand w =
        core::make_operand(w_logical, core::Encoding::kSignedPM1, 1);
    core::ApmmResult r = core::apmm(w, xop, dev, {}, proj_epi);
    head_profile.add(r.profile);
    core::ApOperand out;  // seq x d_head packed codes
    out.planes = std::move(r.packed);
    out.encoding = core::Encoding::kUnsigned01;
    // Verify against the dense pipeline.
    const Tensor<std::int32_t> dense = naive_gemm(w_logical, x);
    const auto codes = core::operand_to_logical(out);
    for (std::int64_t s = 0; s < seq; ++s) {
      for (std::int64_t h = 0; h < d_head; ++h) {
        const std::int32_t expect = quant::quantize_value(
            static_cast<float>(std::max(dense(h, s), 0)), proj_epi.quant);
        if (codes(s, h) != expect) ++mismatches;
      }
    }
    return out;
  };

  const core::ApOperand q = project(wq);
  const core::ApOperand k = project(wk);

  // Scores: S = Q Kᵀ — a q-bit x q-bit APMM (Case I) over seq x seq.
  core::ApmmResult scores = core::apmm(q, k, dev);
  head_profile.add(scores.profile);
  if (scores.y != naive_gemm(core::operand_to_logical(q),
                             core::operand_to_logical(k))) {
    ++mismatches;
  }

  // Integer "softmax": shift-based normalization + re-quantization to
  // abits codes (row-wise max-normalized), then V aggregation as APMM.
  Tensor<std::int32_t> attn({seq, seq});
  for (std::int64_t i = 0; i < seq; ++i) {
    std::int32_t row_max = scores.y(i, 0);
    for (std::int64_t j = 1; j < seq; ++j) {
      row_max = std::max(row_max, scores.y(i, j));
    }
    const std::int32_t span = std::max(1, row_max);
    for (std::int64_t j = 0; j < seq; ++j) {
      const std::int32_t v = std::max(scores.y(i, j), 0);
      attn(i, j) = std::min<std::int32_t>(
          (1 << abits) - 1,
          v * (1 << abits) / (span + 1));
    }
  }
  const core::ApOperand attn_op =
      core::make_operand(attn, core::Encoding::kUnsigned01, abits);
  const Tensor<std::int32_t> wv_logical = pm1(d_head, d_model);
  const core::ApOperand wv =
      core::make_operand(wv_logical, core::Encoding::kSignedPM1, 1);
  core::ApmmResult v = core::apmm(wv, xop, dev, {}, proj_epi);
  head_profile.add(v.profile);
  core::ApOperand v_op;
  v_op.planes = std::move(v.packed);
  v_op.encoding = core::Encoding::kUnsigned01;
  // Context = Attn · V  (seq x seq times seq x d_head).
  // APMM computes W Xᵀ with both operands row-major K-dim; V already has
  // rows = seq? No: v_op rows = seq (tokens), cols = d_head; we need
  // context[i][h] = sum_j attn[i][j] * V[j][h] — so treat attn rows as W
  // (K = seq) and Vᵀ as X. Transpose V's packed codes.
  const Tensor<std::int32_t> v_codes = core::operand_to_logical(v_op);
  Tensor<std::int32_t> v_t({d_head, seq});
  for (std::int64_t j = 0; j < seq; ++j) {
    for (std::int64_t h = 0; h < d_head; ++h) v_t(h, j) = v_codes(j, h);
  }
  const core::ApOperand vt_op =
      core::make_operand(v_t, core::Encoding::kUnsigned01, abits);
  core::ApmmResult context = core::apmm(attn_op, vt_op, dev);
  head_profile.add(context.profile);
  if (context.y != naive_gemm(attn, v_t)) ++mismatches;

  std::printf("quantized attention head (seq=%ld, d_model=%ld, d_head=%ld, "
              "w1a%d): %d mismatches vs integer reference\n",
              seq, d_model, d_head, abits, mismatches);

  // Price against fp16 / int8 heads (same four projections + two GEMMs).
  const double t_ap = cm.estimate(head_profile).total_us;
  auto baseline_head = [&](tcsim::Precision prec, bool cublas) {
    tcsim::SequenceProfile p;
    for (int i = 0; i < 3; ++i) {  // Q, K, V projections
      p.add(cublas ? baselines::cublas_gemm_int8_profile(d_head, seq, d_model)
                   : baselines::cutlass_gemm_profile(prec, d_head, seq,
                                                     d_model));
    }
    p.add(cublas ? baselines::cublas_gemm_int8_profile(seq, seq, d_head)
                 : baselines::cutlass_gemm_profile(prec, seq, seq, d_head));
    p.add(cublas ? baselines::cublas_gemm_int8_profile(seq, d_head, seq)
                 : baselines::cutlass_gemm_profile(prec, seq, d_head, seq));
    return cm.estimate(p).total_us;
  };
  const double t_fp16 = baseline_head(tcsim::Precision::kFp16, false);
  const double t_int8 = baseline_head(tcsim::Precision::kInt8, true);
  std::printf("modeled head latency on %s:\n", dev.name.c_str());
  std::printf("  APNN-w1a2  %7.2f us\n", t_ap);
  std::printf("  fp16       %7.2f us  (%.2fx slower)\n", t_fp16,
              t_fp16 / t_ap);
  std::printf("  int8       %7.2f us  (%.2fx slower)\n", t_int8,
              t_int8 / t_ap);
  return mismatches == 0 ? 0 : 1;
}

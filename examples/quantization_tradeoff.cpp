// Domain example: choosing a precision point on the accuracy/latency curve.
//
// Trains one classifier at several (wbits, abits) settings with
// quantization-aware training, then prints accuracy next to the modeled
// inference latency of the corresponding APNN — the trade-off table a
// deployment engineer would use to pick a configuration (the paper's
// "balancing NN model accuracy and runtime performance", §6.2).
//
//   build/examples/quantization_tradeoff
#include <cstdio>

#include "src/nn/engine.hpp"
#include "src/synth/dataset.hpp"
#include "src/tcsim/cost_model.hpp"
#include "src/train/mlp.hpp"

using namespace apnn;

int main() {
  synth::DatasetConfig dcfg;
  dcfg.classes = 10;
  dcfg.hw = 12;
  dcfg.noise = 0.5;
  const synth::Dataset train_set = synth::make_dataset(600, dcfg, 1);
  const synth::Dataset test_set = synth::make_dataset(300, dcfg, 2);

  train::TrainConfig tcfg;
  tcfg.epochs = 30;

  // Latency proxy: VGG-lite at each precision on the simulated RTX 3090.
  const auto& dev = tcsim::rtx3090();
  const nn::ModelSpec proxy = nn::vgg_lite();
  auto latency_ms = [&](int wb, int ab) {
    nn::SchemeConfig cfg;
    cfg.wbits = wb;
    cfg.abits = ab;
    return nn::profile_model(proxy, 8, cfg, dev).latency_ms();
  };

  struct Point {
    const char* label;
    train::QatConfig qat;
    int wb, ab;
  };
  const Point points[] = {
      {"binary (w1a1)", train::QatConfig::wa(1, 1), 1, 1},
      {"w1a2", train::QatConfig::wa(1, 2), 1, 2},
      {"w1a4", train::QatConfig::wa(1, 4), 1, 4},
      {"w2a2", train::QatConfig::wa(2, 2), 2, 2},
      {"w2a4", train::QatConfig::wa(2, 4), 2, 4},
      {"w4a4", train::QatConfig::wa(4, 4), 4, 4},
  };

  std::printf("precision      accuracy    modeled VGG-lite latency "
              "(batch 8)\n");
  std::printf("---------------------------------------------------------\n");
  // Float reference first.
  const double acc_float = train::train_and_evaluate(
      train_set, test_set, train::QatConfig::off(), tcfg, {96, 64});
  nn::SchemeConfig f32;
  f32.scheme = nn::Scheme::kFloat32;
  std::printf("%-14s %6.1f%%     %8.3f ms (CUTLASS fp32)\n", "float",
              100 * acc_float,
              nn::profile_model(proxy, 8, f32, dev).latency_ms());
  for (const Point& pt : points) {
    const double acc = train::train_and_evaluate(train_set, test_set, pt.qat,
                                                 tcfg, {96, 64});
    std::printf("%-14s %6.1f%%     %8.3f ms (APNN-w%da%d)\n", pt.label,
                100 * acc, latency_ms(pt.wb, pt.ab), pt.wb, pt.ab);
  }
  std::printf("\nReading: pick the lowest-latency row whose accuracy "
              "clears your application's bar.\n");
  return 0;
}

// Procedural synthetic image-classification dataset.
//
// Substitutes ImageNet for the Table 1 accuracy experiment (DESIGN.md §1):
// each class has a fixed random prototype pattern; samples are the prototype
// under a random sub-pixel shift plus Gaussian noise. The task is easy for a
// float network, solidly learnable at w1a2, and measurably harder for a
// binary network — reproducing the accuracy *ordering* the paper reports.
#pragma once

#include <cstdint>
#include <vector>

#include "src/layout/tensor.hpp"

namespace apnn::synth {

struct Dataset {
  Tensor<float> images;     ///< {N, H, W, C}, values roughly in [-1, 1]
  std::vector<int> labels;  ///< size N, in [0, classes)
  int classes = 0;

  std::int64_t size() const { return images.dim(0); }
  std::int64_t features() const {
    return images.dim(1) * images.dim(2) * images.dim(3);
  }
};

struct DatasetConfig {
  int classes = 10;
  std::int64_t hw = 12;    ///< image height == width
  std::int64_t channels = 1;
  double noise = 0.45;     ///< additive Gaussian noise sigma
  int max_shift = 1;       ///< uniform spatial jitter in pixels
  /// Seed for the class prototypes. Train and test sets must share it so
  /// they describe the same underlying task.
  std::uint64_t task_seed = 2021;
};

/// Draws n samples (with labels balanced round-robin). `sample_seed`
/// controls jitter/noise only; use different seeds for train and test.
Dataset make_dataset(std::int64_t n, const DatasetConfig& cfg,
                     std::uint64_t sample_seed);

}  // namespace apnn::synth

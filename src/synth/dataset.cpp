#include "src/synth/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace apnn::synth {

Dataset make_dataset(std::int64_t n, const DatasetConfig& cfg,
                     std::uint64_t sample_seed) {
  APNN_CHECK(n > 0 && cfg.classes > 1 && cfg.hw >= 4);
  const std::int64_t hw = cfg.hw, ch = cfg.channels;

  // Class prototypes: smooth random fields (low-frequency sinusoid mix) so
  // that shifts change them gradually.
  Rng proto_rng(cfg.task_seed);
  std::vector<Tensor<float>> protos;
  protos.reserve(static_cast<std::size_t>(cfg.classes));
  for (int c = 0; c < cfg.classes; ++c) {
    Tensor<float> p({hw, hw, ch});
    // Each prototype is a sum of a few random 2D waves.
    struct Wave {
      double fx, fy, phase, amp;
    };
    std::vector<Wave> waves(4);
    for (auto& w : waves) {
      w.fx = proto_rng.uniform(0.5, 2.5);
      w.fy = proto_rng.uniform(0.5, 2.5);
      w.phase = proto_rng.uniform(0.0, 2.0 * M_PI);
      w.amp = proto_rng.uniform(0.3, 1.0);
    }
    for (std::int64_t y = 0; y < hw; ++y) {
      for (std::int64_t x = 0; x < hw; ++x) {
        double v = 0;
        for (const auto& w : waves) {
          v += w.amp * std::sin(2.0 * M_PI *
                                    (w.fx * x / static_cast<double>(hw) +
                                     w.fy * y / static_cast<double>(hw)) +
                                w.phase);
        }
        for (std::int64_t cc = 0; cc < ch; ++cc) {
          p(y, x, cc) = static_cast<float>(std::tanh(v));
        }
      }
    }
    protos.push_back(std::move(p));
  }

  Rng rng(sample_seed);
  Dataset ds;
  ds.classes = cfg.classes;
  ds.images = Tensor<float>({n, hw, hw, ch});
  ds.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % cfg.classes);
    ds.labels[static_cast<std::size_t>(i)] = label;
    const Tensor<float>& p = protos[static_cast<std::size_t>(label)];
    const std::int64_t dy = rng.uniform_int(-cfg.max_shift, cfg.max_shift);
    const std::int64_t dx = rng.uniform_int(-cfg.max_shift, cfg.max_shift);
    for (std::int64_t y = 0; y < hw; ++y) {
      for (std::int64_t x = 0; x < hw; ++x) {
        const std::int64_t sy = std::clamp<std::int64_t>(y + dy, 0, hw - 1);
        const std::int64_t sx = std::clamp<std::int64_t>(x + dx, 0, hw - 1);
        for (std::int64_t cc = 0; cc < ch; ++cc) {
          ds.images(i, y, x, cc) =
              p(sy, sx, cc) + static_cast<float>(rng.normal(0, cfg.noise));
        }
      }
    }
  }
  return ds;
}

}  // namespace apnn::synth

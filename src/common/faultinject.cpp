#include "src/common/faultinject.hpp"

#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

namespace apnn::faultinject {

namespace {

struct SiteState {
  std::int64_t trigger_at = 0;  // 1-based traversal ordinal of the first fire
  int repeat = 1;               // fires on [trigger_at, trigger_at + repeat)
  std::chrono::milliseconds delay{0};
  std::int64_t traversals = 0;
  std::int64_t fires = 0;
};

std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, SiteState>& registry() {
  static std::map<std::string, SiteState> sites;
  return sites;
}

bool is_known(const std::string& site) {
  for (const std::string& s : known_sites()) {
    if (s == site) return true;
  }
  return false;
}

}  // namespace

namespace detail {

std::atomic<int> g_armed_sites{0};

void point_slow(const char* site) {
  std::chrono::milliseconds delay{0};
  {
    std::lock_guard<std::mutex> lock(registry_mu());
    auto it = registry().find(site);
    if (it == registry().end()) return;
    SiteState& s = it->second;
    ++s.traversals;
    const bool fire =
        s.traversals >= s.trigger_at &&
        (s.repeat < 0 || s.traversals < s.trigger_at + s.repeat);
    if (!fire) return;
    ++s.fires;
    if (s.delay.count() == 0) {
      throw FaultInjected(std::string("fault injected at ") + site +
                          " (traversal " + std::to_string(s.traversals) +
                          ")");
    }
    delay = s.delay;  // sleep outside the lock: a stall must not serialize
                      // other sites' traversals
  }
  std::this_thread::sleep_for(delay);
}

}  // namespace detail

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      kSessionRun, kReplicaDispatch, kAdmission, kCacheSave};
  return sites;
}

void arm(const std::string& site, std::int64_t trigger_at, int repeat,
         std::chrono::milliseconds delay) {
  APNN_CHECK(is_known(site)) << "unknown fault site '" << site << "'";
  APNN_CHECK(trigger_at >= 1) << "trigger ordinal is 1-based";
  APNN_CHECK(repeat == -1 || repeat >= 1);
  std::lock_guard<std::mutex> lock(registry_mu());
  const bool fresh = registry().find(site) == registry().end();
  SiteState s;
  s.trigger_at = trigger_at;
  s.repeat = repeat;
  s.delay = delay;
  registry()[site] = s;
  if (fresh) detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mu());
  if (registry().erase(site) > 0) {
    detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mu());
  detail::g_armed_sites.fetch_sub(static_cast<int>(registry().size()),
                                  std::memory_order_relaxed);
  registry().clear();
}

std::int64_t traversals(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mu());
  auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.traversals;
}

std::int64_t fires(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mu());
  auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.fires;
}

bool parse_and_arm(const std::string& spec, std::string* err) {
  // site:n[:xR|:delay=Dms]
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    if (err) *err = "expected site:<n>, got '" + spec + "'";
    return false;
  }
  const std::string site = spec.substr(0, colon);
  if (!is_known(site)) {
    if (err) {
      *err = "unknown fault site '" + site + "' (known:";
      for (const std::string& s : known_sites()) *err += " " + s;
      *err += ")";
    }
    return false;
  }
  std::string rest = spec.substr(colon + 1);
  std::string extra;
  const std::size_t colon2 = rest.find(':');
  if (colon2 != std::string::npos) {
    extra = rest.substr(colon2 + 1);
    rest = rest.substr(0, colon2);
  }
  char* end = nullptr;
  const long long n = std::strtoll(rest.c_str(), &end, 10);
  if (end == rest.c_str() || *end != '\0' || n < 1) {
    if (err) *err = "bad trigger ordinal '" + rest + "' (need an int >= 1)";
    return false;
  }
  int repeat = 1;
  std::chrono::milliseconds delay{0};
  if (!extra.empty()) {
    if (extra[0] == 'x') {
      const std::string r = extra.substr(1);
      const long long rv = std::strtoll(r.c_str(), &end, 10);
      if (end == r.c_str() || *end != '\0' || (rv != -1 && rv < 1)) {
        if (err) *err = "bad repeat '" + extra + "' (xR, R >= 1 or -1)";
        return false;
      }
      repeat = static_cast<int>(rv);
    } else if (extra.rfind("delay=", 0) == 0 && extra.size() > 8 &&
               extra.compare(extra.size() - 2, 2, "ms") == 0) {
      const std::string d = extra.substr(6, extra.size() - 8);
      const long long dv = std::strtoll(d.c_str(), &end, 10);
      if (end == d.c_str() || *end != '\0' || dv < 1) {
        if (err) *err = "bad delay '" + extra + "' (delay=Dms, D >= 1)";
        return false;
      }
      delay = std::chrono::milliseconds(dv);
    } else {
      if (err) *err = "bad fault modifier '" + extra + "' (xR or delay=Dms)";
      return false;
    }
  }
  arm(site, n, repeat, delay);
  return true;
}

}  // namespace apnn::faultinject

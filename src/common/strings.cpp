#include "src/common/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace apnn {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args2);
    out.resize(static_cast<std::size_t>(n));
  }
  va_end(args2);
  return out;
}

std::string table_row(const std::vector<std::string>& cells, int width) {
  std::string row;
  for (const auto& c : cells) {
    std::string cell = c;
    if (static_cast<int>(cell.size()) < width) {
      cell.append(static_cast<std::size_t>(width) - cell.size(), ' ');
    }
    row += cell;
    row += ' ';
  }
  return row;
}

std::string table_rule(std::size_t ncells, int width) {
  return std::string(ncells * (static_cast<std::size_t>(width) + 1), '-');
}

std::string format_time_us(double us) {
  if (us < 1e3) return strf("%.2fus", us);
  if (us < 1e6) return strf("%.2fms", us / 1e3);
  return strf("%.2fs", us / 1e6);
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return strf("%.2f %s", bytes, units[u]);
}

}  // namespace apnn

// Minimal JSON parsing/emission for the gateway's debug line protocol.
//
// Scope is deliberately small: objects, arrays, strings (with the standard
// escapes; \uXXXX is accepted for ASCII code points only), numbers, bools,
// null. Numbers are held as double — every integer the wire protocol cares
// about (dims, sample codes, logits) is far below 2^53, and the parser
// rejects nothing a strict reader would accept. Parse errors throw
// apnn::Error with a byte offset; input depth is capped so hostile nesting
// cannot exhaust the stack.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace apnn::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;

  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

  /// The number as an integer; throws apnn::Error if this is not a number
  /// or not integral.
  std::int64_t as_int64() const;
};

/// Parses one JSON document (leading/trailing whitespace allowed; anything
/// else after the value is an error). Throws apnn::Error on malformed input.
Value parse(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string escape(std::string_view s);

}  // namespace apnn::json

#include "src/common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "src/common/check.hpp"
#include "src/common/strings.hpp"

namespace apnn::json {

namespace {

constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    APNN_CHECK(pos_ == text_.size())
        << "trailing bytes after JSON value at offset " << pos_;
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(strf("malformed JSON at offset %zu: %s", pos_, why.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(strf("expected '%c'", c));
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Value v;
    if (c == '{') {
      v.kind = Value::Kind::kObject;
      take();
      skip_ws();
      if (peek() == '}') {
        take();
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string_body();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        const char sep = take();
        if (sep == '}') break;
        if (sep != ',') {
          --pos_;
          fail("expected ',' or '}'");
        }
      }
    } else if (c == '[') {
      v.kind = Value::Kind::kArray;
      take();
      skip_ws();
      if (peek() == ']') {
        take();
        return v;
      }
      while (true) {
        v.array.push_back(parse_value(depth + 1));
        skip_ws();
        const char sep = take();
        if (sep == ']') break;
        if (sep != ',') {
          --pos_;
          fail("expected ',' or ']'");
        }
      }
    } else if (c == '"') {
      v.kind = Value::Kind::kString;
      v.str = parse_string_body();
    } else if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      v.kind = Value::Kind::kBool;
      v.boolean = true;
    } else if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      v.kind = Value::Kind::kBool;
      v.boolean = false;
    } else if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      v.kind = Value::Kind::kNumber;
      v.number = parse_number();
    } else {
      fail(strf("unexpected character '%c'", c));
    }
    return v;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code > 0x7f) fail("\\u escape beyond ASCII unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size() || num.empty() || !std::isfinite(v)) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t Value::as_int64() const {
  APNN_CHECK(kind == Kind::kNumber) << "JSON value is not a number";
  APNN_CHECK(number == std::floor(number) && std::abs(number) < 9.0e15)
      << "JSON number " << number << " is not an exact integer";
  return static_cast<std::int64_t>(number);
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace apnn::json

// Thin POSIX TCP helpers for the serving gateway: an RAII socket with
// exact-length framed I/O, loopback/any-interface listeners, and blocking
// connects. Deliberately minimal — no readiness multiplexing, no TLS, no
// non-blocking modes. The gateway runs one handler thread per connection and
// every protocol above this layer is length-delimited, so blocking
// read_exact/write_all is the whole I/O story.
//
// Error contract: every helper throws apnn::Error on an OS-level failure
// (errno text included). read_exact distinguishes the one non-error case a
// framed protocol needs: a clean EOF on a frame boundary returns false
// instead of throwing, while an EOF mid-frame (the peer died between
// header and payload) throws — a truncated frame is never silently
// mistaken for a closed connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace apnn::net {

/// Move-only owner of one socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `n` bytes. Returns false on a clean EOF before the first
  /// byte; throws apnn::Error on EOF mid-read or any OS error. n == 0
  /// returns true without touching the descriptor.
  bool read_exact(void* buf, std::size_t n);

  /// Reads up to `n` bytes (at least 1 unless EOF). Returns the count read;
  /// 0 means EOF. Throws apnn::Error on OS errors.
  std::size_t read_some(void* buf, std::size_t n);

  /// Writes all `n` bytes (SIGPIPE suppressed; a closed peer throws).
  void write_all(const void* buf, std::size_t n);
  void write_all(const std::string& s) { write_all(s.data(), s.size()); }

  /// Peeks at the next byte without consuming it; -1 on EOF.
  int peek_byte();

  /// Disables further sends and receives (unblocks a reader in another
  /// thread). Safe on an already-closed socket.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (port 0 picks an ephemeral port).
/// The resolved port is written to `*bound_port` when non-null.
Socket listen_loopback(int port, int backlog = 64, int* bound_port = nullptr);

/// Accepts one connection. Returns an invalid Socket when the listener has
/// been closed/shut down (the server's shutdown path), throws on other
/// errors.
Socket accept_conn(Socket& listener);

/// Connects to 127.0.0.1:`port`. Throws on refusal/timeouts.
Socket connect_loopback(int port);

}  // namespace apnn::net

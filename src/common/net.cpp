#include "src/common/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/check.hpp"

namespace apnn::net {

namespace {

[[noreturn]] void fail_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::read_exact(void* buf, std::size_t n) {
  APNN_CHECK(valid()) << "read on a closed socket";
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF on a frame boundary
      throw Error("connection closed mid-frame (" + std::to_string(got) +
                  " of " + std::to_string(n) + " bytes)");
    }
    if (errno == EINTR) continue;
    fail_errno("recv");
  }
  return true;
}

std::size_t Socket::read_some(void* buf, std::size_t n) {
  APNN_CHECK(valid()) << "read on a closed socket";
  while (true) {
    const ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    fail_errno("recv");
  }
}

void Socket::write_all(const void* buf, std::size_t n) {
  APNN_CHECK(valid()) << "write on a closed socket";
  const char* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    fail_errno("send");
  }
}

int Socket::peek_byte() {
  APNN_CHECK(valid()) << "peek on a closed socket";
  char c;
  while (true) {
    const ssize_t r = ::recv(fd_, &c, 1, MSG_PEEK);
    if (r > 0) return static_cast<unsigned char>(c);
    if (r == 0) return -1;
    if (errno == EINTR) continue;
    fail_errno("recv(MSG_PEEK)");
  }
}

void Socket::shutdown_both() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_loopback(int port, int backlog, int* bound_port) {
  APNN_CHECK(port >= 0 && port <= 65535) << "port " << port;
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno("socket");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fail_errno("bind");
  }
  if (::listen(s.fd(), backlog) < 0) fail_errno("listen");
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      fail_errno("getsockname");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return s;
}

Socket accept_conn(Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return s;
    }
    if (errno == EINTR) continue;
    // The shutdown path closes the listener out from under accept();
    // report that as "no more connections", not an error.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return Socket();
    }
    fail_errno("accept");
  }
}

Socket connect_loopback(int port) {
  APNN_CHECK(port > 0 && port <= 65535) << "port " << port;
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno("socket");
  sockaddr_in addr = loopback_addr(port);
  while (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    fail_errno("connect");
  }
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

}  // namespace apnn::net

// Error-handling primitives used across the APNN-TC library.
//
// Library code validates preconditions with APNN_CHECK (always on) and uses
// APNN_DCHECK for invariants that are cheap to state but expensive to verify
// (compiled out in release builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace apnn {

/// Exception type thrown on all precondition / invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* cond, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "APNN_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Streams extra context into the failure message: APNN_CHECK(x) << "detail".
class CheckStream {
 public:
  CheckStream(const char* cond, const char* file, int line)
      : cond_(cond), file_(file), line_(line) {}
  template <typename T>
  CheckStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  [[noreturn]] ~CheckStream() noexcept(false) {
    fail_check(cond_, file_, line_, os_.str());
  }

 private:
  const char* cond_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace apnn

/// Always-on precondition check. Usage:
///   APNN_CHECK(rows > 0) << "rows=" << rows;
#define APNN_CHECK(cond)                                       \
  if (cond) {                                                  \
  } else                                                       \
    ::apnn::detail::CheckStream(#cond, __FILE__, __LINE__)

#ifdef NDEBUG
#define APNN_DCHECK(cond) APNN_CHECK(true)
#else
#define APNN_DCHECK(cond) APNN_CHECK(cond)
#endif

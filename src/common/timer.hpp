// Wall-clock timing helper used by the host micro-benchmarks and examples.
#pragma once

#include <chrono>

namespace apnn {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace apnn

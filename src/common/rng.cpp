#include "src/common/rng.hpp"

#include <cmath>

#include "src/common/check.hpp"

namespace apnn {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands one seed into the four xoshiro state words.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  APNN_CHECK(lo <= hi) << "lo=" << lo << " hi=" << hi;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::int64_t> Rng::uniform_ints(std::size_t n, std::int64_t lo,
                                            std::int64_t hi) {
  std::vector<std::int64_t> out(n);
  for (auto& v : out) v = uniform_int(lo, hi);
  return out;
}

}  // namespace apnn

// Deterministic fault injection for robustness tests and chaos drills.
//
// Production code marks its interesting failure points with
// `faultinject::point(kSomeSite)`. Unarmed — the normal state — a point is
// one relaxed atomic load and a predictable branch; no lock, no allocation,
// no per-site counter, so the hooks may sit on serving hot paths (the
// serving bench gates their cost). Tests and `apnn_cli serve --fault` arm a
// site by name with a 1-based trigger ordinal: the nth traversal of that
// site then either throws FaultInjected (simulating a crash at exactly that
// point) or sleeps (simulating a stall), deterministically — the same
// arming against the same single-threaded traversal order always fires at
// the same place, which is what lets tests/test_chaos.cpp assert that every
// *non*-injected request still completes bit-exactly.
//
// Sites are a closed registry (known_sites()) so a typo in `--fault` is an
// error instead of a silently-armed nothing. The registry is global and
// process-wide: arm/disarm from one controlling thread (tests, CLI setup);
// traversals from any number of threads are safe.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.hpp"

namespace apnn::faultinject {

/// Thrown by an armed site (distinct type so tests can tell an injected
/// fault from an organic failure; still an apnn::Error so production
/// catch-paths need no special case).
class FaultInjected : public Error {
 public:
  explicit FaultInjected(const std::string& what) : Error(what) {}
};

// The site registry. Adding a site means: a constant here, its name in
// known_sites() (faultinject.cpp), a point() call at the marked code path,
// and a drill in tests/test_chaos.cpp.
inline constexpr const char* kSessionRun = "session.run";
inline constexpr const char* kReplicaDispatch = "replica.dispatch";
inline constexpr const char* kAdmission = "server.admission";
inline constexpr const char* kCacheSave = "tuningcache.save";

/// Every armable site name.
const std::vector<std::string>& known_sites();

/// Arms `site` (must be a known site) to fire on its `trigger_at`-th
/// traversal, 1-based, counted from this call. `repeat` controls how many
/// consecutive traversals fire from there on: 1 (default) fires exactly
/// once, -1 fires on every traversal from trigger_at onward (used to drive
/// a replica into quarantine). A zero `delay` means the firing traversal
/// throws FaultInjected; a positive delay means it sleeps that long instead
/// (a stall, not a crash — the stuck-replica drill). Re-arming a site
/// replaces its spec and resets its traversal count.
void arm(const std::string& site, std::int64_t trigger_at, int repeat = 1,
         std::chrono::milliseconds delay = std::chrono::milliseconds(0));

/// Disarms one site / every site. Counters for the site(s) are discarded.
void disarm(const std::string& site);
void disarm_all();

/// Traversals and fires observed for `site` since it was armed (0 when it
/// is not armed — unarmed traversals are deliberately not counted, that is
/// what keeps the unarmed hook free).
std::int64_t traversals(const std::string& site);
std::int64_t fires(const std::string& site);

/// Parses a CLI arming spec, "site:n", "site:n:xR" (repeat) or
/// "site:n:delay=Dms" — e.g. "replica.dispatch:3", "session.run:2:x-1",
/// "session.run:1:delay=3000ms". Returns false and fills *err on a malformed
/// spec or unknown site.
bool parse_and_arm(const std::string& spec, std::string* err);

namespace detail {
extern std::atomic<int> g_armed_sites;  ///< fast unarmed gate
void point_slow(const char* site);
}  // namespace detail

/// A fault-injection site. Free when nothing is armed anywhere in the
/// process; with any site armed, takes the registry lock and fires when
/// this site's spec says so.
inline void point(const char* site) {
  if (detail::g_armed_sites.load(std::memory_order_relaxed) == 0) return;
  detail::point_slow(site);
}

}  // namespace apnn::faultinject

// Small string/format helpers (gcc 12 lacks std::format) used mainly by the
// benchmark harnesses to print paper-style tables.
#pragma once

#include <string>
#include <vector>

namespace apnn {

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render one row of a fixed-width table: each cell right-padded to width.
std::string table_row(const std::vector<std::string>& cells, int width = 14);

/// Horizontal rule matching table_row width.
std::string table_rule(std::size_t ncells, int width = 14);

/// Human-readable microseconds (e.g. "6.67us", "1.66ms").
std::string format_time_us(double us);

/// Human-readable byte count (e.g. "1.5 KiB").
std::string format_bytes(double bytes);

}  // namespace apnn

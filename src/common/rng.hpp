// Deterministic, fast random number generation (xoshiro256**).
//
// All randomized tests, workload generators and synthetic datasets in this
// repository draw from this generator so that every experiment is exactly
// reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace apnn {

/// xoshiro256** by Blackman & Vigna: small, fast, high-quality, and — unlike
/// std::mt19937 — identical across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Vector of n uniform integers in [lo, hi].
  std::vector<std::int64_t> uniform_ints(std::size_t n, std::int64_t lo,
                                         std::int64_t hi);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace apnn

#include "src/bitops/decompose.hpp"

namespace apnn::bitops {

BitPlanes decompose(const std::int32_t* vals, std::int64_t rows,
                    std::int64_t cols, int bits) {
  APNN_CHECK(bits >= 1 && bits <= 16) << "bits=" << bits;
  for (std::int64_t i = 0; i < rows * cols; ++i) {
    APNN_DCHECK(vals[i] >= 0 && vals[i] < (1 << bits))
        << "value " << vals[i] << " out of range for " << bits << " bits";
  }
  BitPlanes bp;
  bp.rows = rows;
  bp.cols = cols;
  bp.bits = bits;
  bp.planes.reserve(static_cast<std::size_t>(bits));
  for (int s = 0; s < bits; ++s) {
    bp.planes.push_back(BitMatrix::from_plane(vals, rows, cols, s));
  }
  return bp;
}

std::vector<std::int32_t> recompose(const BitPlanes& bp) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(bp.rows * bp.cols), 0);
  for (int s = 0; s < bp.bits; ++s) {
    const BitMatrix& m = bp.plane(s);
    for (std::int64_t r = 0; r < bp.rows; ++r) {
      for (std::int64_t c = 0; c < bp.cols; ++c) {
        out[static_cast<std::size_t>(r * bp.cols + c)] |=
            (m.get(r, c) ? 1 : 0) << s;
      }
    }
  }
  return out;
}

void combine_planes(const std::vector<std::vector<std::int32_t>>& partial,
                    int p, int q, std::int64_t n, std::int32_t* out) {
  APNN_CHECK(static_cast<int>(partial.size()) == p * q)
      << "expected " << p * q << " partial planes, got " << partial.size();
  for (std::int64_t i = 0; i < n; ++i) out[i] = 0;
  for (int s = 0; s < p; ++s) {
    for (int t = 0; t < q; ++t) {
      const auto& y = partial[static_cast<std::size_t>(s * q + t)];
      APNN_CHECK(static_cast<std::int64_t>(y.size()) == n);
      const std::int32_t w = static_cast<std::int32_t>(plane_weight(s, t));
      for (std::int64_t i = 0; i < n; ++i) out[i] += y[i] * w;
    }
  }
}

}  // namespace apnn::bitops

#include "src/bitops/bit_matrix.hpp"

namespace apnn::bitops {

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), row_words_(padded_words(cols)) {
  APNN_CHECK(rows >= 0 && cols >= 0) << "rows=" << rows << " cols=" << cols;
  data_.assign(static_cast<std::size_t>(rows_ * row_words_), 0);
}

void BitMatrix::reset_shape(std::int64_t rows, std::int64_t cols,
                            bool zero_fill) {
  APNN_CHECK(rows >= 0 && cols >= 0) << "rows=" << rows << " cols=" << cols;
  rows_ = rows;
  cols_ = cols;
  row_words_ = padded_words(cols);
  const auto words = static_cast<std::size_t>(rows_ * row_words_);
  if (zero_fill) {
    // assign() reuses capacity when it suffices; the zero fill restores the
    // padding invariant and the all-zero state the OR-merge kernels assume.
    data_.assign(words, 0);
  } else {
    // resize() leaves existing words untouched (only growth zero-fills);
    // the caller overwrites every word of every padded row.
    data_.resize(words);
  }
}

BitMatrix BitMatrix::from_dense01(const std::int32_t* vals, std::int64_t rows,
                                  std::int64_t cols) {
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint64_t* w = m.row(r);
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int32_t v = vals[r * cols + c];
      APNN_DCHECK(v == 0 || v == 1) << "value " << v << " is not a bit";
      if (v) w[c / kWordBits] |= 1ULL << (c % kWordBits);
    }
  }
  return m;
}

BitMatrix BitMatrix::from_plane(const std::int32_t* vals, std::int64_t rows,
                                std::int64_t cols, int s) {
  APNN_CHECK(s >= 0 && s < 31) << "plane index " << s;
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint64_t* w = m.row(r);
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::uint64_t bit = (static_cast<std::uint32_t>(vals[r * cols + c]) >> s) & 1u;
      w[c / kWordBits] |= bit << (c % kWordBits);
    }
  }
  return m;
}

void BitMatrix::randomize(Rng& rng) {
  for (std::int64_t r = 0; r < rows_; ++r) {
    std::uint64_t* w = row(r);
    for (std::int64_t i = 0; i < row_words_; ++i) w[i] = rng.next_u64();
    // Clear padding bits beyond cols_ to preserve the zero-padding invariant.
    const std::int64_t full_words = cols_ / kWordBits;
    const int rem = static_cast<int>(cols_ % kWordBits);
    if (rem != 0) w[full_words] &= (1ULL << rem) - 1;
    for (std::int64_t i = full_words + (rem != 0 ? 1 : 0); i < row_words_; ++i) {
      w[i] = 0;
    }
  }
}

std::vector<std::int32_t> BitMatrix::to_dense01() const {
  std::vector<std::int32_t> out(static_cast<std::size_t>(rows_ * cols_));
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      out[static_cast<std::size_t>(r * cols_ + c)] = get(r, c) ? 1 : 0;
    }
  }
  return out;
}

std::int64_t BitMatrix::row_popcount(std::int64_t r) const {
  return popc_words(row(r), row_words_);
}

}  // namespace apnn::bitops

// Unaligned bit-range copy / fill over packed 64-bit words.
//
// The channel-major im2col (§4.2a) assembles convolution patch rows by
// copying C-bit channel slabs at arbitrary bit offsets; these helpers do the
// word-level shifting.
#pragma once

#include <cstdint>

namespace apnn::bitops {

/// Copies `count` bits from (src, src_bit) to (dst, dst_bit). Ranges must not
/// overlap. Bits are little-endian within each 64-bit word.
void copy_bits(std::uint64_t* dst, std::int64_t dst_bit,
               const std::uint64_t* src, std::int64_t src_bit,
               std::int64_t count);

/// Sets `count` bits starting at (dst, dst_bit) to `value`.
void fill_bits(std::uint64_t* dst, std::int64_t dst_bit, std::int64_t count,
               bool value);

/// Reads a single bit.
inline bool get_bit(const std::uint64_t* p, std::int64_t bit) {
  return (p[bit / 64] >> (bit % 64)) & 1ULL;
}

/// Writes a single bit.
inline void put_bit(std::uint64_t* p, std::int64_t bit, bool v) {
  const std::uint64_t mask = 1ULL << (bit % 64);
  if (v) {
    p[bit / 64] |= mask;
  } else {
    p[bit / 64] &= ~mask;
  }
}

}  // namespace apnn::bitops

// Packed 1-bit matrices.
//
// A BitMatrix stores an R x C binary matrix row-major, one bit per element,
// packed little-endian into 64-bit words. Rows are padded to a multiple of
// 128 bits so that an Ampere bmma tile (k = 128) never straddles a row
// boundary, mirroring the device-side alignment requirement the paper's
// channel-major layout provides (§4.2a). Padding bits are always zero — an
// invariant the XOR/AND dot-product kernels rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"

namespace apnn::bitops {

inline constexpr int kWordBits = 64;
/// bmma granularity: rows are padded to multiples of 128 bits (2 words).
inline constexpr int kTileBits = 128;
inline constexpr int kWordsPerTile = kTileBits / kWordBits;

/// Number of 64-bit words needed to hold `bits` bits at 128-bit alignment.
constexpr std::int64_t padded_words(std::int64_t bits) {
  const std::int64_t tiles = (bits + kTileBits - 1) / kTileBits;
  return tiles * kWordsPerTile;
}

class BitMatrix {
 public:
  BitMatrix() = default;

  /// R x C all-zero matrix.
  BitMatrix(std::int64_t rows, std::int64_t cols);

  /// Reshapes in place to an R x C matrix, reusing the existing heap buffer
  /// whenever its capacity suffices (the session slab relies on this for
  /// zero steady-state allocations). With `zero_fill` (the default) every
  /// word is cleared — required by OR-merge writers and the padding
  /// invariant. Writers that overwrite every word of every padded row
  /// (e.g. the session's word-wise packers) pass false to skip the extra
  /// pass; payload words then hold stale values until written.
  void reset_shape(std::int64_t rows, std::int64_t cols,
                   bool zero_fill = true);

  /// Bytes of backing storage currently reserved (>= storage_bytes()).
  std::size_t capacity_bytes() const { return data_.capacity() * 8; }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  /// Words per (padded) row.
  std::int64_t row_words() const { return row_words_; }
  /// Total backing storage in bytes (includes padding).
  std::int64_t storage_bytes() const {
    return static_cast<std::int64_t>(data_.size()) * 8;
  }
  /// Payload size in bytes: the bits that would move over a real bus
  /// (rows * cols / 8, fractional bytes rounded up per row).
  std::int64_t payload_bytes() const { return rows_ * ((cols_ + 7) / 8); }

  bool get(std::int64_t r, std::int64_t c) const {
    APNN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return (row(r)[c / kWordBits] >> (c % kWordBits)) & 1ULL;
  }

  void set(std::int64_t r, std::int64_t c, bool v) {
    APNN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    std::uint64_t& w = row(r)[c / kWordBits];
    const std::uint64_t mask = 1ULL << (c % kWordBits);
    w = v ? (w | mask) : (w & ~mask);
  }

  const std::uint64_t* row(std::int64_t r) const {
    return data_.data() + r * row_words_;
  }
  std::uint64_t* row(std::int64_t r) { return data_.data() + r * row_words_; }

  const std::uint64_t* data() const { return data_.data(); }
  std::uint64_t* data() { return data_.data(); }

  /// Sets every payload bit from a dense 0/1 row-major array.
  static BitMatrix from_dense01(const std::int32_t* vals, std::int64_t rows,
                                std::int64_t cols);

  /// Extracts bit-plane `s` of a dense non-negative integer matrix:
  /// out[r][c] = (vals[r*cols + c] >> s) & 1   (paper Eq. 2).
  static BitMatrix from_plane(const std::int32_t* vals, std::int64_t rows,
                              std::int64_t cols, int s);

  /// Random fill of the payload bits (padding stays zero).
  void randomize(Rng& rng);

  /// Expands back to a dense 0/1 matrix (row-major).
  std::vector<std::int32_t> to_dense01() const;

  /// popcount of one row's payload.
  std::int64_t row_popcount(std::int64_t r) const;

  bool operator==(const BitMatrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t row_words_ = 0;
  std::vector<std::uint64_t> data_;
};

/// XOR+popc dot product over `words` packed words:
/// returns popc(a ^ b). For ±1-encoded vectors of true length n the integer
/// dot product is n - 2 * dot_xor_popc (§3.2 Case II).
inline std::int64_t dot_xor_popc(const std::uint64_t* a, const std::uint64_t* b,
                                 std::int64_t words) {
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < words; ++i) {
    acc += __builtin_popcountll(a[i] ^ b[i]);
  }
  return acc;
}

/// AND+popc dot product: popc(a & b) — the integer dot product of two
/// 0/1-encoded vectors (§3.2 Case I).
inline std::int64_t dot_and_popc(const std::uint64_t* a, const std::uint64_t* b,
                                 std::int64_t words) {
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < words; ++i) {
    acc += __builtin_popcountll(a[i] & b[i]);
  }
  return acc;
}

/// popc(b) over `words` words — used for the J·X correction of Case III.
inline std::int64_t popc_words(const std::uint64_t* b, std::int64_t words) {
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < words; ++i) acc += __builtin_popcountll(b[i]);
  return acc;
}

}  // namespace apnn::bitops

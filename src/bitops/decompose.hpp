// Bit decomposition (paper Eq. 2) and bit combination (paper Eq. 1).
//
// A p-bit integer matrix is decomposed into p 1-bit planes; after the batched
// 1-bit tensor-core computation, the p*q int32 partial products Y^(s,t) are
// recombined with weights 2^(s+t).
#pragma once

#include <cstdint>
#include <vector>

#include "src/bitops/bit_matrix.hpp"

namespace apnn::bitops {

/// A matrix decomposed into bit planes: plane s holds bit s of every element.
/// Plane 0 is the least-significant bit.
struct BitPlanes {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  int bits = 0;
  std::vector<BitMatrix> planes;

  const BitMatrix& plane(int s) const { return planes[static_cast<std::size_t>(s)]; }

  /// Payload bytes of the active planes (what moves over the simulated
  /// bus). Slab-recycled operands may retain spare planes beyond `bits`.
  std::int64_t payload_bytes() const {
    std::int64_t total = 0;
    for (int t = 0; t < bits; ++t) {
      total += planes[static_cast<std::size_t>(t)].payload_bytes();
    }
    return total;
  }

  /// Reshapes in place to `bits` rows x cols planes, reusing existing plane
  /// storage whenever capacity suffices. The planes vector never shrinks
  /// (spare matrices keep their buffers). `zero_fill` as in
  /// BitMatrix::reset_shape.
  void reset_shape(std::int64_t rows_, std::int64_t cols_, int bits_,
                   bool zero_fill = true) {
    rows = rows_;
    cols = cols_;
    bits = bits_;
    if (static_cast<int>(planes.size()) < bits) {
      planes.resize(static_cast<std::size_t>(bits));
    }
    for (int t = 0; t < bits; ++t) {
      planes[static_cast<std::size_t>(t)].reset_shape(rows, cols, zero_fill);
    }
  }
};

/// Decomposes a dense non-negative matrix (row-major, values < 2^bits) into
/// `bits` 1-bit planes: plane[s][r][c] = (vals[r][c] >> s) & 1.
BitPlanes decompose(const std::int32_t* vals, std::int64_t rows,
                    std::int64_t cols, int bits);

/// Reconstructs the dense matrix from its planes (inverse of decompose).
std::vector<std::int32_t> recompose(const BitPlanes& bp);

/// Bit combination (Eq. 1 generalized): given per-(s,t)-plane partial
/// products partial[s * q + t] (each rows*cols int32, row-major), computes
///   out[i] = sum_{s,t} partial[s*q+t][i] * 2^(s+t).
void combine_planes(const std::vector<std::vector<std::int32_t>>& partial,
                    int p, int q, std::int64_t n, std::int32_t* out);

/// Scalar helper: the combination weight 2^(s+t).
constexpr std::int64_t plane_weight(int s, int t) {
  return std::int64_t{1} << (s + t);
}

/// Number of 1-bit MMA planes an (p, q) emulated product requires.
constexpr int emulation_planes(int p, int q) { return p * q; }

}  // namespace apnn::bitops

#include "src/bitops/bitcopy.hpp"

namespace apnn::bitops {

void copy_bits(std::uint64_t* dst, std::int64_t dst_bit,
               const std::uint64_t* src, std::int64_t src_bit,
               std::int64_t count) {
  // Fast path: both offsets word-aligned.
  if (count >= 64 && (dst_bit % 64) == 0 && (src_bit % 64) == 0) {
    std::int64_t words = count / 64;
    std::uint64_t* d = dst + dst_bit / 64;
    const std::uint64_t* s = src + src_bit / 64;
    for (std::int64_t i = 0; i < words; ++i) d[i] = s[i];
    dst_bit += words * 64;
    src_bit += words * 64;
    count -= words * 64;
  }
  // General path: move up to 64 bits at a time with shifts.
  while (count > 0) {
    const int d_off = static_cast<int>(dst_bit % 64);
    const int s_off = static_cast<int>(src_bit % 64);
    const int chunk = static_cast<int>(
        count < 64 - (d_off > s_off ? d_off : s_off)
            ? count
            : 64 - (d_off > s_off ? d_off : s_off));
    // Extract `chunk` bits from src.
    const std::uint64_t bits = (src[src_bit / 64] >> s_off) &
                               (chunk == 64 ? ~0ULL : ((1ULL << chunk) - 1));
    // Merge into dst.
    const std::uint64_t mask =
        (chunk == 64 ? ~0ULL : ((1ULL << chunk) - 1)) << d_off;
    std::uint64_t& w = dst[dst_bit / 64];
    w = (w & ~mask) | (bits << d_off);
    dst_bit += chunk;
    src_bit += chunk;
    count -= chunk;
  }
}

void fill_bits(std::uint64_t* dst, std::int64_t dst_bit, std::int64_t count,
               bool value) {
  while (count > 0) {
    const int off = static_cast<int>(dst_bit % 64);
    const int chunk = static_cast<int>(count < 64 - off ? count : 64 - off);
    const std::uint64_t mask =
        (chunk == 64 ? ~0ULL : ((1ULL << chunk) - 1)) << off;
    std::uint64_t& w = dst[dst_bit / 64];
    w = value ? (w | mask) : (w & ~mask);
    dst_bit += chunk;
    count -= chunk;
  }
}

}  // namespace apnn::bitops

#include "src/bitops/pack.hpp"

#include "src/common/check.hpp"

namespace apnn::bitops {

std::uint32_t ballot_pack(const std::uint32_t* lane_bits, int lanes) {
  APNN_CHECK(lanes >= 0 && lanes <= 32) << "lanes=" << lanes;
  std::uint32_t ballot = 0;
  for (int i = 0; i < lanes; ++i) {
    ballot |= (lane_bits[i] & 1u) << i;
  }
  return ballot;
}

std::vector<std::vector<std::uint32_t>> pack_bit_planes(
    const std::int32_t* values, std::int64_t n, int q) {
  APNN_CHECK(q >= 1 && q <= 16) << "q=" << q;
  const std::int64_t words = (n + 31) / 32;
  std::vector<std::vector<std::uint32_t>> planes(
      static_cast<std::size_t>(q),
      std::vector<std::uint32_t>(static_cast<std::size_t>(words), 0));
  // Warp-granular: process 32 "lanes" at a time and ballot each bit plane.
  for (std::int64_t w = 0; w < words; ++w) {
    std::uint32_t lane_vals[32] = {0};
    const std::int64_t base = w * 32;
    const int active = static_cast<int>(n - base < 32 ? n - base : 32);
    for (int i = 0; i < active; ++i) {
      lane_vals[i] = static_cast<std::uint32_t>(values[base + i]);
    }
    for (int t = 0; t < q; ++t) {
      std::uint32_t shifted[32];
      for (int i = 0; i < 32; ++i) shifted[i] = lane_vals[i] >> t;
      planes[static_cast<std::size_t>(t)][static_cast<std::size_t>(w)] =
          ballot_pack(shifted, 32);
    }
  }
  return planes;
}

std::vector<std::int32_t> unpack_bit_planes(
    const std::vector<std::vector<std::uint32_t>>& planes, std::int64_t n) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(n), 0);
  for (std::size_t t = 0; t < planes.size(); ++t) {
    const auto& plane = planes[t];
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint32_t word = plane[static_cast<std::size_t>(i / 32)];
      out[static_cast<std::size_t>(i)] |=
          static_cast<std::int32_t>((word >> (i % 32)) & 1u) << t;
    }
  }
  return out;
}

}  // namespace apnn::bitops

// Bit packing utilities mirroring the device-side __ballot_sync repacking of
// §4.1(b): after quantizing 32-bit accumulators to q-bit values in registers,
// the 1-bit planes scattered across 32 lanes are packed into aligned 32-bit
// words before the global-memory store.
#pragma once

#include <cstdint>
#include <vector>

namespace apnn::bitops {

/// Simulates __ballot_sync: lane i contributes predicate bits[i] (bit 0 of
/// each entry); returns the packed 32-bit ballot word.
std::uint32_t ballot_pack(const std::uint32_t* lane_bits, int lanes = 32);

/// Packs n q-bit values (each < 2^q) into q separate bit-plane streams of
/// 32-bit words: plane t, word w holds bits t of values [32w, 32w+31].
/// This is the "element-wise routine + inter-thread communication" path of
/// memory-efficient bit combination.
std::vector<std::vector<std::uint32_t>> pack_bit_planes(
    const std::int32_t* values, std::int64_t n, int q);

/// Inverse of pack_bit_planes (for testing / unpacking activations).
std::vector<std::int32_t> unpack_bit_planes(
    const std::vector<std::vector<std::uint32_t>>& planes, std::int64_t n);

}  // namespace apnn::bitops

#include "src/quant/qem.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace apnn::quant {

namespace {

// Solves the p x p symmetric system A v = b by Gaussian elimination with
// partial pivoting (p <= 8, so no numerics library needed).
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 int p) {
  for (int col = 0; col < p; ++col) {
    int pivot = col;
    for (int r = col + 1; r < p; ++r) {
      if (std::abs(a[r * p + col]) > std::abs(a[pivot * p + col])) pivot = r;
    }
    if (std::abs(a[pivot * p + col]) < 1e-12) {
      // Degenerate direction (e.g. all codes identical): leave v_col as is.
      a[col * p + col] = 1.0;
      b[col] = 0.0;
      continue;
    }
    if (pivot != col) {
      for (int c = 0; c < p; ++c) std::swap(a[col * p + c], a[pivot * p + c]);
      std::swap(b[col], b[pivot]);
    }
    for (int r = col + 1; r < p; ++r) {
      const double f = a[r * p + col] / a[col * p + col];
      for (int c = col; c < p; ++c) a[r * p + c] -= f * a[col * p + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> v(static_cast<std::size_t>(p), 0.0);
  for (int r = p - 1; r >= 0; --r) {
    double s = b[r];
    for (int c = r + 1; c < p; ++c) s -= a[r * p + c] * v[static_cast<std::size_t>(c)];
    v[static_cast<std::size_t>(r)] = s / a[r * p + r];
  }
  return v;
}

}  // namespace

double qem_reconstruct(std::uint32_t code, std::span<const double> basis) {
  double v = 0.0;
  for (std::size_t s = 0; s < basis.size(); ++s) {
    v += ((code >> s) & 1u) ? basis[s] : -basis[s];
  }
  return v;
}

QemResult qem_quantize(std::span<const float> xs, int bits, int max_iters) {
  APNN_CHECK(bits >= 1 && bits <= 8) << "bits=" << bits;
  const int p = bits;
  const std::size_t n = xs.size();
  QemResult r;
  r.codes.assign(n, 0);

  // Initialize with a power-of-two basis scaled to the data (BWN-style
  // alpha = E|w| for the leading bit).
  double mean_abs = 0.0;
  for (float x : xs) mean_abs += std::abs(x);
  mean_abs = n > 0 ? mean_abs / static_cast<double>(n) : 1.0;
  if (mean_abs == 0.0) mean_abs = 1.0;
  r.basis.resize(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    r.basis[static_cast<std::size_t>(s)] =
        mean_abs * std::pow(0.5, p - 1 - s);
  }

  const int ncodes = 1 << p;
  double prev_mse = -1.0;
  for (int iter = 0; iter < max_iters; ++iter) {
    // (1) Encode: nearest representable value (enumerate all 2^p codes —
    // p <= 8 keeps this tiny).
    std::vector<double> values(static_cast<std::size_t>(ncodes));
    for (int code = 0; code < ncodes; ++code) {
      values[static_cast<std::size_t>(code)] =
          qem_reconstruct(static_cast<std::uint32_t>(code), r.basis);
    }
    double se = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::abs(xs[i] - values[0]);
      for (int code = 1; code < ncodes; ++code) {
        const double d = std::abs(xs[i] - values[static_cast<std::size_t>(code)]);
        if (d < best_d) {
          best_d = d;
          best = code;
        }
      }
      r.codes[i] = static_cast<std::uint32_t>(best);
      se += best_d * best_d;
    }
    r.mse = n > 0 ? se / static_cast<double>(n) : 0.0;
    r.iterations = iter + 1;
    if (prev_mse >= 0.0 && prev_mse - r.mse < 1e-12) break;
    prev_mse = r.mse;

    // (2) Basis update: least squares v = (B'B)^-1 B'w with B in {-1,+1}.
    std::vector<double> btb(static_cast<std::size_t>(p * p), 0.0);
    std::vector<double> btw(static_cast<std::size_t>(p), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double bi[8];
      for (int s = 0; s < p; ++s) bi[s] = ((r.codes[i] >> s) & 1u) ? 1.0 : -1.0;
      for (int s = 0; s < p; ++s) {
        btw[static_cast<std::size_t>(s)] += bi[s] * xs[i];
        for (int t = 0; t < p; ++t) {
          btb[static_cast<std::size_t>(s * p + t)] += bi[s] * bi[t];
        }
      }
    }
    r.basis = solve_linear(std::move(btb), std::move(btw), p);
    // Keep basis positive and sorted ascending for a canonical form
    // (sign flips are absorbed into the codes on the next encode pass).
    for (auto& v : r.basis) v = std::abs(v);
    std::sort(r.basis.begin(), r.basis.end());
  }
  return r;
}

std::vector<float> qem_reconstruct_all(const QemResult& r) {
  std::vector<float> out(r.codes.size());
  for (std::size_t i = 0; i < r.codes.size(); ++i) {
    out[i] = static_cast<float>(qem_reconstruct(r.codes[i], r.basis));
  }
  return out;
}

}  // namespace apnn::quant

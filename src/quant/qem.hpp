// Quantization-error-minimization (QEM) weight quantizer, following the
// LQ-Nets strategy the paper adopts (§2.1): weights are approximated as
//   w ~ sum_{s=0}^{p-1} v_s * b_s,   b_s in {-1, +1}
// with the basis v learned by alternating minimization:
//   (1) given v, encode each weight to its nearest representable value;
//   (2) given the codes B, solve the least-squares basis v = (B'B)^-1 B'w.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace apnn::quant {

struct QemResult {
  /// Learned basis, one coefficient per bit (size p).
  std::vector<double> basis;
  /// Codes: for weight i, bit s of codes[i] is 1 when b_s = +1.
  std::vector<std::uint32_t> codes;
  /// Final mean squared reconstruction error.
  double mse = 0.0;
  int iterations = 0;
};

/// Runs QEM for `bits`-bit quantization of xs. `max_iters` alternating steps
/// (converges in a handful).
QemResult qem_quantize(std::span<const float> xs, int bits,
                       int max_iters = 20);

/// Reconstructs weight i from its code and the basis.
double qem_reconstruct(std::uint32_t code, std::span<const double> basis);

/// Reconstructs the full vector.
std::vector<float> qem_reconstruct_all(const QemResult& r);

}  // namespace apnn::quant

#include "src/quant/quantizer.hpp"

#include <algorithm>
#include <cmath>

namespace apnn::quant {

std::int32_t quantize_value(float x, const QuantParams& p) {
  const double q = std::floor((static_cast<double>(x) - p.zero_point) / p.scale);
  return static_cast<std::int32_t>(
      std::clamp<double>(q, 0.0, static_cast<double>(p.qmax())));
}

float dequantize_value(std::int32_t code, const QuantParams& p) {
  return static_cast<float>(p.zero_point + (code + 0.5) * p.scale);
}

QuantParams choose_uniform_params(std::span<const float> xs, int bits) {
  APNN_CHECK(bits >= 1 && bits <= 16) << "bits=" << bits;
  QuantParams p;
  p.bits = bits;
  if (xs.empty()) return p;
  float lo = xs[0], hi = xs[0];
  for (float x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (hi <= lo) {
    p.zero_point = lo;
    p.scale = 1.0;
    return p;
  }
  const int levels = 1 << bits;
  p.zero_point = lo;
  // Slightly inflate the range so hi itself floors into the top bucket.
  p.scale = (static_cast<double>(hi) - lo) / levels * (1.0 + 1e-6);
  return p;
}

QuantParams choose_symmetric_params(std::span<const float> xs, int bits) {
  APNN_CHECK(bits >= 1 && bits <= 16) << "bits=" << bits;
  QuantParams p;
  p.bits = bits;
  float amax = 0.f;
  for (float x : xs) amax = std::max(amax, std::abs(x));
  if (amax == 0.f) amax = 1.f;
  const int levels = 1 << bits;
  p.scale = 2.0 * amax / levels * (1.0 + 1e-6);
  p.zero_point = -static_cast<double>(amax) * (1.0 + 1e-6);
  return p;
}

Tensor<std::int32_t> quantize_tensor(const Tensor<float>& x,
                                     const QuantParams& p) {
  Tensor<std::int32_t> q(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    q[i] = quantize_value(x[i], p);
  }
  return q;
}

Tensor<float> dequantize_tensor(const Tensor<std::int32_t>& q,
                                const QuantParams& p) {
  Tensor<float> x(q.shape());
  for (std::int64_t i = 0; i < q.numel(); ++i) {
    x[i] = dequantize_value(q[i], p);
  }
  return x;
}

double quantization_mse(std::span<const float> xs, const QuantParams& p) {
  if (xs.empty()) return 0.0;
  double se = 0.0;
  for (float x : xs) {
    const float r = dequantize_value(quantize_value(x, p), p);
    se += static_cast<double>(x - r) * (x - r);
  }
  return se / static_cast<double>(xs.size());
}

}  // namespace apnn::quant

// Uniform affine quantization (the paper's quantization layer, §5.2):
//   code = clamp(floor((x - z) / s), 0, 2^bits - 1)
// plus symmetric signed helpers for weights.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/layout/tensor.hpp"

namespace apnn::quant {

struct QuantParams {
  double scale = 1.0;
  double zero_point = 0.0;  ///< the paper's z_i (float offset)
  int bits = 8;

  std::int32_t qmax() const { return (1 << bits) - 1; }
};

/// Quantizes one value with floor semantics (paper §5.2).
std::int32_t quantize_value(float x, const QuantParams& p);

/// Midpoint dequantization: code -> z + (code + 0.5) * s.
float dequantize_value(std::int32_t code, const QuantParams& p);

/// Chooses (scale, zero_point) covering [min(xs), max(xs)] with 2^bits
/// uniform buckets. Degenerate (constant) inputs get scale 1.
QuantParams choose_uniform_params(std::span<const float> xs, int bits);

/// Chooses symmetric parameters for signed data: zero_point = -A with
/// A = max|x|, so codes span [0, 2^bits) around zero. With bits = 1 this is
/// the classic sign(x) binarization onto {0, 1} codes encoding {-1, +1}.
QuantParams choose_symmetric_params(std::span<const float> xs, int bits);

/// Elementwise quantization of a tensor.
Tensor<std::int32_t> quantize_tensor(const Tensor<float>& x,
                                     const QuantParams& p);

/// Elementwise dequantization.
Tensor<float> dequantize_tensor(const Tensor<std::int32_t>& q,
                                const QuantParams& p);

/// Mean squared error between x and its quantize->dequantize round trip —
/// the objective the QEM quantizer minimizes.
double quantization_mse(std::span<const float> xs, const QuantParams& p);

}  // namespace apnn::quant

// Precision taxonomy of the simulated device.
#pragma once

#include <string>

namespace apnn::tcsim {

/// Precisions with native MMA support on the simulated Ampere device.
enum class Precision {
  kInt1,  ///< 1-bit (bmma, XOR/AND + popc), Turing/Ampere
  kInt4,  ///< 4-bit integer MMA
  kInt8,  ///< 8-bit integer MMA
  kFp16,  ///< half-precision MMA
  kFp32,  ///< CUDA-core single precision (no tensor core)
};

inline const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kInt1: return "int1";
    case Precision::kInt4: return "int4";
    case Precision::kInt8: return "int8";
    case Precision::kFp16: return "fp16";
    case Precision::kFp32: return "fp32";
  }
  return "?";
}

/// Storage footprint of one element, in bytes (sub-byte precisions pack).
inline double precision_bytes(Precision p) {
  switch (p) {
    case Precision::kInt1: return 1.0 / 8.0;
    case Precision::kInt4: return 0.5;
    case Precision::kInt8: return 1.0;
    case Precision::kFp16: return 2.0;
    case Precision::kFp32: return 4.0;
  }
  return 4.0;
}

}  // namespace apnn::tcsim

#include "src/tcsim/half.hpp"

#include <cstring>

namespace apnn::tcsim {

half_t float_to_half(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, 4);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xff) - 127;
  std::uint32_t mant = x & 0x7fffffu;

  half_t out;
  if (exp == 128) {  // inf / nan
    out.bits = static_cast<std::uint16_t>(sign | 0x7c00u | (mant ? 0x200u : 0));
    return out;
  }
  if (exp > 15) {  // overflow -> inf
    out.bits = static_cast<std::uint16_t>(sign | 0x7c00u);
    return out;
  }
  if (exp >= -14) {  // normal range
    // 13 mantissa bits are dropped; round to nearest even.
    std::uint32_t half_mant = mant >> 13;
    const std::uint32_t rem = mant & 0x1fffu;
    std::uint32_t bits = sign | (static_cast<std::uint32_t>(exp + 15) << 10) |
                         half_mant;
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) bits += 1;
    out.bits = static_cast<std::uint16_t>(bits);
    return out;
  }
  if (exp >= -25) {  // subnormal half
    mant |= 0x800000u;  // implicit leading 1
    const int shift = -exp - 14 + 13;  // 13 = fp32->fp16 mantissa shift
    std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) half_mant += 1;
    out.bits = static_cast<std::uint16_t>(sign | half_mant);
    return out;
  }
  out.bits = static_cast<std::uint16_t>(sign);  // underflow -> signed zero
  return out;
}

float half_to_float(half_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h.bits) & 0x8000u) << 16;
  const std::uint32_t exp = (h.bits >> 10) & 0x1fu;
  std::uint32_t mant = h.bits & 0x3ffu;
  std::uint32_t out;
  if (exp == 0x1f) {  // inf / nan
    out = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {  // normal
    out = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant != 0) {  // subnormal: normalize
    int e = -1;
    do {
      mant <<= 1;
      ++e;
    } while ((mant & 0x400u) == 0);
    out = sign | ((113u - static_cast<std::uint32_t>(e) - 1u) << 23) |
          ((mant & 0x3ffu) << 13);
  } else {
    out = sign;  // zero
  }
  float f;
  std::memcpy(&f, &out, 4);
  return f;
}

}  // namespace apnn::tcsim

// Functional emulation of Ampere tensor-core MMA tile primitives.
//
// Shapes follow the CUDA WMMA sub-byte / integer fragments:
//   b1   : m8 n8 k128, XOR or AND bit op + popc, int32 accumulate
//   int4 : m8 n8 k32, int32 accumulate
//   int8 : m16 n16 k16, int32 accumulate
//   fp16 : m16 n16 k16, fp32 accumulate
// A is row-major (m x k), B is column-major presented as rows of B^T
// (n x k), acc is row-major m x n — exactly the bmma operand layout the
// paper uses (8x128 W rows against 8x128 X rows producing 8x8).
#pragma once

#include <cstdint>

#include "src/tcsim/half.hpp"

namespace apnn::tcsim {

/// Bit-level op selected on the b1 tensor core (§2.3: XOR since Turing,
/// AND added in Ampere).
enum class BitOp { kXor, kAnd };

/// b1 MMA tile: for each (i, j), acc[i*8+j] += popc(op(a_row_i, b_row_j))
/// over the 128-bit k-slab. `a`/`b` point at the first row's 2 words;
/// strides are in 64-bit words.
void bmma_8x8x128(BitOp op, const std::uint64_t* a, std::int64_t a_stride,
                  const std::uint64_t* b, std::int64_t b_stride,
                  std::int32_t* acc);

/// Row-pointer variant used by the virtually batched APMM: the 8 A rows and
/// 8 B rows may live in different bit planes (the batching of §4.1a), so
/// each is addressed through its own pointer. `word_offset` selects the
/// 128-bit k-slab (2 words) within every row.
void bmma_8x8x128_rows(BitOp op, const std::uint64_t* const* a_rows,
                       const std::uint64_t* const* b_rows,
                       std::int64_t word_offset, std::int32_t* acc);

/// int4 MMA tile (values stored one per int8, range [-8, 7] signed or
/// [0, 15] unsigned — the emulation just multiplies the int8 payloads):
/// acc[i*8+j] += sum_k a[i][k] * b[j][k], k = 32.
void imma_8x8x32(const std::int8_t* a, std::int64_t a_stride,
                 const std::int8_t* b, std::int64_t b_stride,
                 std::int32_t* acc);

/// int8 MMA tile m16n16k16: acc[i*16+j] += sum_k a[i][k] * b[j][k].
void imma_16x16x16(const std::int8_t* a, std::int64_t a_stride,
                   const std::int8_t* b, std::int64_t b_stride,
                   std::int32_t* acc);

/// fp16 MMA tile m16n16k16 with fp32 accumulate. Inputs are IEEE binary16
/// payloads; products are computed in fp32 like the hardware does.
void hmma_16x16x16(const half_t* a, std::int64_t a_stride, const half_t* b,
                   std::int64_t b_stride, float* acc);

}  // namespace apnn::tcsim

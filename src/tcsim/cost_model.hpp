// Analytic latency model for the simulated Ampere device.
//
// The model converts a KernelProfile's counters into time:
//
//   total = launch + max(compute + alu, global_memory, shared_memory)
//
//   compute    = sum_p ops_p / (peak_p * family_eff * ci_eff * parallel_eff)
//   alu        = alu_ops / (int_alu_peak * parallel_eff)
//   global mem = bytes / (bw * mem_eff)
//   shared mem = bytes / (shmem_bw * parallel_eff)
//
//   parallel_eff = B / (ceil(B / SMs) * SMs)  — the fraction of the device a
//     B-block grid keeps busy, including wave quantization. This is what the
//     paper's TLP knob (Eq. 3) controls: more (smaller) blocks -> higher
//     parallel_eff until the device saturates.
//   ci_eff = ci / (ci + ci_half)              — the paper's CI knob (Eq. 4):
//     larger tiles amortize memory ops and pipeline better.
//
// The absolute anchor points are calibrated to the paper's measurements
// (DESIGN.md §4); shapes (who wins, crossovers) follow from the structure.
#pragma once

#include "src/tcsim/device_spec.hpp"
#include "src/tcsim/kernel.hpp"

namespace apnn::tcsim {

struct LatencyEstimate {
  double launch_us = 0;
  double compute_us = 0;  ///< MMA pipeline time
  double alu_us = 0;      ///< CUDA-core ALU time (decompose/combine/epilogue)
  double global_mem_us = 0;
  double shared_mem_us = 0;
  double total_us = 0;

  LatencyEstimate& operator+=(const LatencyEstimate& o) {
    launch_us += o.launch_us;
    compute_us += o.compute_us;
    alu_us += o.alu_us;
    global_mem_us += o.global_mem_us;
    shared_mem_us += o.shared_mem_us;
    total_us += o.total_us;
    return *this;
  }
};

class CostModel {
 public:
  explicit CostModel(const DeviceSpec& spec) : spec_(&spec) {}

  const DeviceSpec& device() const { return *spec_; }

  /// Fraction of the device a B-block grid utilizes (wave-quantized).
  double parallel_efficiency(std::int64_t blocks) const;

  /// Tile efficiency from compute intensity (0 ci means elementwise: 1.0
  /// since such kernels are bandwidth-bound anyway).
  double ci_efficiency(double ci) const;

  /// Latency of one kernel launch.
  LatencyEstimate estimate(const KernelProfile& k) const;

  /// Latency of a kernel sequence (per-launch overheads accumulate — this is
  /// exactly what kernel fusion removes).
  LatencyEstimate estimate(const SequenceProfile& s) const;

 private:
  const DeviceSpec* spec_;
};

}  // namespace apnn::tcsim

// Byte-accurate traffic and instruction counters.
//
// Kernels written against the simulator count, at tile granularity, exactly
// the bytes a real Ampere kernel with the same loop structure would move
// between global memory, shared memory and registers, plus the MMA / ALU
// instructions it would issue. The cost model converts these counters into a
// modeled latency. Counting at tile granularity (instead of per scalar) keeps
// the host emulation fast while remaining exact: every tile move has a known
// byte size.
#pragma once

#include <cstdint>

namespace apnn::tcsim {

struct TrafficCounters {
  // Memory traffic in bytes.
  std::int64_t global_load_bytes = 0;
  std::int64_t global_store_bytes = 0;
  std::int64_t shared_load_bytes = 0;
  std::int64_t shared_store_bytes = 0;

  // MMA tile issues, by precision (tile shapes are fixed per precision:
  // b1 8x8x128, i4 8x8x32, i8 16x16x16, f16 16x16x16).
  std::int64_t bmma_b1 = 0;
  std::int64_t mma_i4 = 0;
  std::int64_t mma_i8 = 0;
  std::int64_t mma_f16 = 0;
  std::int64_t fma_f32 = 0;  ///< CUDA-core fused multiply-adds (fp32 path)

  // CUDA-core integer/ALU work, split by phase so the bit-decomposition /
  // bit-combination overhead study (paper Fig. 11) can be reproduced.
  std::int64_t alu_decompose_ops = 0;
  std::int64_t alu_combine_ops = 0;
  std::int64_t alu_epilogue_ops = 0;
  std::int64_t alu_other_ops = 0;

  std::int64_t kernel_launches = 0;

  TrafficCounters& operator+=(const TrafficCounters& o) {
    global_load_bytes += o.global_load_bytes;
    global_store_bytes += o.global_store_bytes;
    shared_load_bytes += o.shared_load_bytes;
    shared_store_bytes += o.shared_store_bytes;
    bmma_b1 += o.bmma_b1;
    mma_i4 += o.mma_i4;
    mma_i8 += o.mma_i8;
    mma_f16 += o.mma_f16;
    fma_f32 += o.fma_f32;
    alu_decompose_ops += o.alu_decompose_ops;
    alu_combine_ops += o.alu_combine_ops;
    alu_epilogue_ops += o.alu_epilogue_ops;
    alu_other_ops += o.alu_other_ops;
    kernel_launches += o.kernel_launches;
    return *this;
  }

  std::int64_t total_global_bytes() const {
    return global_load_bytes + global_store_bytes;
  }
  std::int64_t total_shared_bytes() const {
    return shared_load_bytes + shared_store_bytes;
  }
  std::int64_t total_alu_ops() const {
    return alu_decompose_ops + alu_combine_ops + alu_epilogue_ops +
           alu_other_ops;
  }

  /// Multiply-accumulate operation counts implied by the MMA tile issues
  /// (2 ops per MAC), per precision.
  std::int64_t ops_b1() const { return bmma_b1 * 2 * 8 * 8 * 128; }
  std::int64_t ops_i4() const { return mma_i4 * 2 * 8 * 8 * 32; }
  std::int64_t ops_i8() const { return mma_i8 * 2 * 16 * 16 * 16; }
  std::int64_t ops_f16() const { return mma_f16 * 2 * 16 * 16 * 16; }
  std::int64_t ops_f32() const { return fma_f32 * 2; }
};

inline TrafficCounters operator+(TrafficCounters a, const TrafficCounters& b) {
  a += b;
  return a;
}

}  // namespace apnn::tcsim

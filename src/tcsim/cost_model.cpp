#include "src/tcsim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"

namespace apnn::tcsim {

double CostModel::parallel_efficiency(std::int64_t blocks) const {
  if (blocks <= 0) return 1.0;
  const std::int64_t sms = spec_->num_sms;
  const std::int64_t waves = (blocks + sms - 1) / sms;
  const double busy =
      static_cast<double>(blocks) / static_cast<double>(waves * sms);
  return std::pow(busy, spec_->latency_hiding_alpha);
}

double CostModel::ci_efficiency(double ci) const {
  if (ci <= 0) return 1.0;
  return ci / (ci + spec_->ci_half);
}

LatencyEstimate CostModel::estimate(const KernelProfile& k) const {
  LatencyEstimate e;
  e.launch_us =
      spec_->launch_overhead_us * static_cast<double>(
          std::max<std::int64_t>(k.counters.kernel_launches, 1));

  const double par = parallel_efficiency(k.grid_blocks);
  const double ci_eff = ci_efficiency(k.ci);
  const double fam = spec_->family_eff(k.family);

  // MMA pipeline time, per precision (a kernel normally uses one).
  const TrafficCounters& c = k.counters;
  auto mma_time_us = [&](std::int64_t ops, Precision p) -> double {
    if (ops == 0) return 0.0;
    const double eff_tops = spec_->peak(p) * fam * ci_eff * par;
    return static_cast<double>(ops) / (eff_tops * 1e12) * 1e6;
  };
  e.compute_us += mma_time_us(c.ops_b1(), Precision::kInt1);
  e.compute_us += mma_time_us(c.ops_i4(), Precision::kInt4);
  e.compute_us += mma_time_us(c.ops_i8(), Precision::kInt8);
  e.compute_us += mma_time_us(c.ops_f16(), Precision::kFp16);
  e.compute_us += mma_time_us(c.ops_f32(), Precision::kFp32);

  if (c.total_alu_ops() > 0) {
    e.alu_us = static_cast<double>(c.total_alu_ops()) /
               (spec_->int_alu_tops * 1e12 * par) * 1e6;
  }

  e.global_mem_us = static_cast<double>(c.total_global_bytes()) /
                    (spec_->mem_bw_gbps * 1e9 * spec_->mem_efficiency) * 1e6;
  if (c.total_shared_bytes() > 0) {
    e.shared_mem_us = static_cast<double>(c.total_shared_bytes()) /
                      (spec_->shmem_bw_gbps * 1e9 * par) * 1e6;
  }

  e.total_us = e.launch_us + std::max({e.compute_us + e.alu_us,
                                       e.global_mem_us, e.shared_mem_us});
  return e;
}

LatencyEstimate CostModel::estimate(const SequenceProfile& s) const {
  LatencyEstimate sum;
  for (const auto& k : s.kernels) sum += estimate(k);
  return sum;
}

}  // namespace apnn::tcsim

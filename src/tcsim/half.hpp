// Software IEEE binary16 (half precision) — storage type plus conversions.
// Used by the fp16 baseline kernels; conversion is round-to-nearest-even.
#pragma once

#include <cstdint>

namespace apnn::tcsim {

/// Opaque binary16 payload.
struct half_t {
  std::uint16_t bits = 0;
};

/// fp32 -> binary16 with round-to-nearest-even, overflow to infinity,
/// gradual underflow to subnormals.
half_t float_to_half(float f);

/// binary16 -> fp32 (exact).
float half_to_float(half_t h);

}  // namespace apnn::tcsim

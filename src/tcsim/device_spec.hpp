// Simulated Ampere device descriptions and calibration parameters.
//
// Peak throughputs come from the GA102 / GA100 whitepapers; the per-kernel-
// family base efficiencies are calibrated against the measured anchors the
// paper reports (DESIGN.md §4), e.g. "cutlass-gemm-int1 is only 5.9x faster
// than cublas-gemm-int8 on RTX 3090".
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/tcsim/precision.hpp"

namespace apnn::tcsim {

struct DeviceSpec {
  std::string name;

  int num_sms = 0;
  double clock_ghz = 0;

  /// Peak dense MMA throughput in TOPS (tera-ops, 2 ops per MAC), per
  /// precision. fp32 entry is the CUDA-core FMA peak.
  std::map<Precision, double> peak_tops;

  /// CUDA-core integer ALU peak in TOPS (bit decompose/combine, epilogues).
  double int_alu_tops = 0;

  double mem_bw_gbps = 0;        ///< global memory bandwidth, GB/s
  double shmem_bw_gbps = 0;      ///< aggregate shared-memory bandwidth, GB/s
  std::int64_t shmem_per_sm = 0; ///< usable shared memory per SM, bytes
  int max_blocks_per_sm = 16;

  double launch_overhead_us = 0; ///< fixed cost per kernel launch

  /// Base efficiency (fraction of peak reachable at full occupancy) per
  /// kernel family: "cutlass-gemm", "cublas-gemm", "cutlass-conv",
  /// "apnn", "bnn". Unknown families fall back to kDefaultEfficiency.
  std::map<std::string, double> family_efficiency;

  /// Compute-intensity half-saturation constant: tile efficiency is
  /// ci / (ci + ci_half) with ci = 2*bm*bn/(bm+bn) (paper Eq. 4).
  double ci_half = 0;

  /// Fraction of peak DRAM bandwidth streaming kernels achieve.
  double mem_efficiency = 0.8;

  /// Latency-hiding exponent: a grid keeping fraction x of the SMs busy
  /// achieves x^alpha of peak (alpha < 1 because co-resident warps hide
  /// pipeline latency, so low occupancy hurts sub-linearly).
  double latency_hiding_alpha = 0.7;

  double family_eff(const std::string& family) const;

  double peak(Precision p) const;

  static constexpr double kDefaultEfficiency = 0.5;
};

/// NVIDIA GeForce RTX 3090 (GA102), the paper's primary platform.
const DeviceSpec& rtx3090();

/// NVIDIA A100 (GA100), the paper's second platform.
const DeviceSpec& a100();

}  // namespace apnn::tcsim

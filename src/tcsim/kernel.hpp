// Kernel launch records consumed by the cost model.
//
// Every simulated kernel (APNN-TC or baseline) produces a KernelProfile:
// its grid shape, resource usage, tile compute intensity, and the traffic
// counters gathered while the host emulation executed the same loop
// structure the device kernel would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/tcsim/traffic.hpp"

namespace apnn::tcsim {

struct KernelProfile {
  std::string name;    ///< e.g. "apmm-w1a2"
  std::string family;  ///< efficiency family ("apnn", "cutlass-gemm", ...)

  std::int64_t grid_blocks = 0;
  int threads_per_block = 256;  ///< paper uses 8 warps per block
  std::int64_t shmem_per_block = 0;

  /// Compute intensity of the block tile, CI = 2*bm*bn/(bm+bn) (Eq. 4);
  /// 0 means "not tile-structured" (elementwise kernels).
  double ci = 0;

  /// Measured data-sparsity of the stage's staged operands (host sparse
  /// fast path): share of all-zero 64-bit words seen at panel-staging time,
  /// k-strips taken sparse vs dense, and whole bit-planes elided from the
  /// combine. -1 / 0 defaults mean "not measured" (profile-only runs, or
  /// sparse_staging = kOff).
  double sparsity_zero_word_fraction = -1.0;
  std::int64_t sparsity_sparse_strips = 0;
  std::int64_t sparsity_dense_strips = 0;
  std::int64_t sparsity_planes = 0;
  std::int64_t sparsity_planes_elided = 0;

  TrafficCounters counters;
};

/// A sequence of kernel launches (e.g. one NN layer or one whole model).
struct SequenceProfile {
  std::vector<KernelProfile> kernels;

  void add(KernelProfile k) { kernels.push_back(std::move(k)); }
  void add(const SequenceProfile& s) {
    kernels.insert(kernels.end(), s.kernels.begin(), s.kernels.end());
  }

  TrafficCounters total_counters() const {
    TrafficCounters t;
    for (const auto& k : kernels) t += k.counters;
    return t;
  }
};

}  // namespace apnn::tcsim

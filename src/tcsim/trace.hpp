// Chrome-trace export of kernel launch sequences.
//
// Writes a SequenceProfile as a chrome://tracing / Perfetto JSON file so the
// modeled execution of a network can be inspected visually: one lane for
// kernel execution, with launch overheads and per-kernel counters attached
// as arguments.
#pragma once

#include <string>

#include "src/tcsim/cost_model.hpp"
#include "src/tcsim/kernel.hpp"

namespace apnn::tcsim {

/// Renders the sequence as Chrome trace-event JSON (returned as a string).
/// Kernels execute back to back on one timeline; each event carries the
/// kernel's grid size, traffic counters and latency components.
std::string to_chrome_trace(const SequenceProfile& seq, const CostModel& cm);

/// Convenience: writes the trace to `path`. Returns false on I/O failure.
bool write_chrome_trace(const SequenceProfile& seq, const CostModel& cm,
                        const std::string& path);

}  // namespace apnn::tcsim

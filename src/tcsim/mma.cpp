#include "src/tcsim/mma.hpp"

#include "src/core/microkernel.hpp"

namespace apnn::tcsim {

// The b1 tile primitives are thin adapters over the shared 8x8 k-strip
// microkernel (src/core/microkernel.hpp): one 128-bit slab is a 2-word
// strip. Keeping a single implementation means the tile entry points and
// the batched block driver cannot drift apart numerically.

void bmma_8x8x128(BitOp op, const std::uint64_t* a, std::int64_t a_stride,
                  const std::uint64_t* b, std::int64_t b_stride,
                  std::int32_t* acc) {
  core::microkernel::tile_8x8_strip(op, a, a_stride, b, b_stride,
                                    /*words=*/2, acc, /*ldacc=*/8);
}

void bmma_8x8x128_rows(BitOp op, const std::uint64_t* const* a_rows,
                       const std::uint64_t* const* b_rows,
                       std::int64_t word_offset, std::int32_t* acc) {
  // Gather the slab through the row pointers once, then run the dense
  // microkernel — the double indirection is paid 16 times instead of 72.
  std::uint64_t a_buf[16], b_buf[16];
  for (int i = 0; i < 8; ++i) {
    a_buf[2 * i] = a_rows[i][word_offset];
    a_buf[2 * i + 1] = a_rows[i][word_offset + 1];
    b_buf[2 * i] = b_rows[i][word_offset];
    b_buf[2 * i + 1] = b_rows[i][word_offset + 1];
  }
  core::microkernel::tile_8x8_strip(op, a_buf, 2, b_buf, 2, /*words=*/2, acc,
                                    /*ldacc=*/8);
}

void imma_8x8x32(const std::int8_t* a, std::int64_t a_stride,
                 const std::int8_t* b, std::int64_t b_stride,
                 std::int32_t* acc) {
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::int32_t sum = 0;
      for (int k = 0; k < 32; ++k) {
        sum += static_cast<std::int32_t>(a[i * a_stride + k]) *
               static_cast<std::int32_t>(b[j * b_stride + k]);
      }
      acc[i * 8 + j] += sum;
    }
  }
}

void imma_16x16x16(const std::int8_t* a, std::int64_t a_stride,
                   const std::int8_t* b, std::int64_t b_stride,
                   std::int32_t* acc) {
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      std::int32_t sum = 0;
      for (int k = 0; k < 16; ++k) {
        sum += static_cast<std::int32_t>(a[i * a_stride + k]) *
               static_cast<std::int32_t>(b[j * b_stride + k]);
      }
      acc[i * 16 + j] += sum;
    }
  }
}

void hmma_16x16x16(const half_t* a, std::int64_t a_stride, const half_t* b,
                   std::int64_t b_stride, float* acc) {
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      float sum = 0.f;
      for (int k = 0; k < 16; ++k) {
        sum += half_to_float(a[i * a_stride + k]) *
               half_to_float(b[j * b_stride + k]);
      }
      acc[i * 16 + j] += sum;
    }
  }
}

}  // namespace apnn::tcsim

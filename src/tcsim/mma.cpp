#include "src/tcsim/mma.hpp"

namespace apnn::tcsim {

void bmma_8x8x128(BitOp op, const std::uint64_t* a, std::int64_t a_stride,
                  const std::uint64_t* b, std::int64_t b_stride,
                  std::int32_t* acc) {
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t a0 = a[i * a_stride];
    const std::uint64_t a1 = a[i * a_stride + 1];
    std::int32_t* arow = acc + i * 8;
    if (op == BitOp::kXor) {
      for (int j = 0; j < 8; ++j) {
        const std::uint64_t b0 = b[j * b_stride];
        const std::uint64_t b1 = b[j * b_stride + 1];
        arow[j] += __builtin_popcountll(a0 ^ b0) + __builtin_popcountll(a1 ^ b1);
      }
    } else {
      for (int j = 0; j < 8; ++j) {
        const std::uint64_t b0 = b[j * b_stride];
        const std::uint64_t b1 = b[j * b_stride + 1];
        arow[j] += __builtin_popcountll(a0 & b0) + __builtin_popcountll(a1 & b1);
      }
    }
  }
}

void bmma_8x8x128_rows(BitOp op, const std::uint64_t* const* a_rows,
                       const std::uint64_t* const* b_rows,
                       std::int64_t word_offset, std::int32_t* acc) {
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t a0 = a_rows[i][word_offset];
    const std::uint64_t a1 = a_rows[i][word_offset + 1];
    std::int32_t* arow = acc + i * 8;
    if (op == BitOp::kXor) {
      for (int j = 0; j < 8; ++j) {
        const std::uint64_t b0 = b_rows[j][word_offset];
        const std::uint64_t b1 = b_rows[j][word_offset + 1];
        arow[j] += __builtin_popcountll(a0 ^ b0) + __builtin_popcountll(a1 ^ b1);
      }
    } else {
      for (int j = 0; j < 8; ++j) {
        const std::uint64_t b0 = b_rows[j][word_offset];
        const std::uint64_t b1 = b_rows[j][word_offset + 1];
        arow[j] += __builtin_popcountll(a0 & b0) + __builtin_popcountll(a1 & b1);
      }
    }
  }
}

void imma_8x8x32(const std::int8_t* a, std::int64_t a_stride,
                 const std::int8_t* b, std::int64_t b_stride,
                 std::int32_t* acc) {
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::int32_t sum = 0;
      for (int k = 0; k < 32; ++k) {
        sum += static_cast<std::int32_t>(a[i * a_stride + k]) *
               static_cast<std::int32_t>(b[j * b_stride + k]);
      }
      acc[i * 8 + j] += sum;
    }
  }
}

void imma_16x16x16(const std::int8_t* a, std::int64_t a_stride,
                   const std::int8_t* b, std::int64_t b_stride,
                   std::int32_t* acc) {
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      std::int32_t sum = 0;
      for (int k = 0; k < 16; ++k) {
        sum += static_cast<std::int32_t>(a[i * a_stride + k]) *
               static_cast<std::int32_t>(b[j * b_stride + k]);
      }
      acc[i * 16 + j] += sum;
    }
  }
}

void hmma_16x16x16(const half_t* a, std::int64_t a_stride, const half_t* b,
                   std::int64_t b_stride, float* acc) {
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      float sum = 0.f;
      for (int k = 0; k < 16; ++k) {
        sum += half_to_float(a[i * a_stride + k]) *
               half_to_float(b[j * b_stride + k]);
      }
      acc[i * 16 + j] += sum;
    }
  }
}

}  // namespace apnn::tcsim

#include "src/tcsim/trace.hpp"

#include <fstream>
#include <sstream>

namespace apnn::tcsim {

namespace {

/// Minimal JSON string escaping (kernel names are ASCII identifiers, but be
/// safe about quotes/backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const SequenceProfile& seq, const CostModel& cm) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  double t = 0.0;  // microseconds
  bool first = true;
  for (const auto& k : seq.kernels) {
    const LatencyEstimate est = cm.estimate(k);
    if (!first) os << ",";
    first = false;
    // Launch overhead as its own slice, then the kernel body.
    os << "{\"name\":\"launch\",\"cat\":\"driver\",\"ph\":\"X\",\"pid\":1,"
       << "\"tid\":1,\"ts\":" << t << ",\"dur\":" << est.launch_us << "},";
    t += est.launch_us;
    const double body = est.total_us - est.launch_us;
    os << "{\"name\":\"" << json_escape(k.name)
       << "\",\"cat\":\"kernel\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":"
       << t << ",\"dur\":" << body << ",\"args\":{"
       << "\"family\":\"" << json_escape(k.family) << "\","
       << "\"grid_blocks\":" << k.grid_blocks << ","
       << "\"ci\":" << k.ci << ","
       << "\"compute_us\":" << est.compute_us << ","
       << "\"alu_us\":" << est.alu_us << ","
       << "\"global_mem_us\":" << est.global_mem_us << ","
       << "\"shared_mem_us\":" << est.shared_mem_us << ","
       << "\"global_bytes\":" << k.counters.total_global_bytes() << ","
       << "\"shared_bytes\":" << k.counters.total_shared_bytes() << ","
       << "\"bmma_b1\":" << k.counters.bmma_b1 << "}}";
    t += body;
  }
  os << "]}";
  return os.str();
}

bool write_chrome_trace(const SequenceProfile& seq, const CostModel& cm,
                        const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_trace(seq, cm);
  return static_cast<bool>(f);
}

}  // namespace apnn::tcsim

#include "src/tcsim/device_spec.hpp"

#include "src/common/check.hpp"

namespace apnn::tcsim {

double DeviceSpec::family_eff(const std::string& family) const {
  auto it = family_efficiency.find(family);
  return it == family_efficiency.end() ? kDefaultEfficiency : it->second;
}

double DeviceSpec::peak(Precision p) const {
  auto it = peak_tops.find(p);
  APNN_CHECK(it != peak_tops.end())
      << "device " << name << " has no peak for " << precision_name(p);
  return it->second;
}

const DeviceSpec& rtx3090() {
  static const DeviceSpec spec = [] {
    DeviceSpec d;
    d.name = "RTX 3090";
    d.num_sms = 82;
    d.clock_ghz = 1.695;
    // GA102 whitepaper dense tensor TOPS (no sparsity): int1 is 4x int8.
    d.peak_tops = {
        {Precision::kInt1, 1136.0}, {Precision::kInt4, 568.0},
        {Precision::kInt8, 284.0},  {Precision::kFp16, 142.0},
        {Precision::kFp32, 35.6},
    };
    d.int_alu_tops = 17.8;
    d.mem_bw_gbps = 936.0;
    // ~128 B/clk/SM aggregate shared-memory bandwidth.
    d.shmem_bw_gbps = 82 * 128.0 * 1.695;  // ~17.8 TB/s
    d.shmem_per_sm = 100 * 1024;
    d.max_blocks_per_sm = 16;
    d.launch_overhead_us = 2.2;
    // Calibrated so cutlass-gemm-int1 / cublas-gemm-int8 ~ 5.9x effective
    // (paper §6.1.1): 4x peak ratio * (0.62 / 0.42) ~ 5.9x.
    d.family_efficiency = {
        {"cutlass-gemm", 0.52}, {"cublas-gemm", 0.42},
        {"cutlass-conv", 0.48}, {"apnn", 0.62},
        {"cutlass-gemm-int1", 0.62}, {"cutlass-conv-int1", 0.62},
        {"bnn", 0.55},
    };
    d.ci_half = 24.0;
    d.mem_efficiency = 0.78;
    return d;
  }();
  return spec;
}

const DeviceSpec& a100() {
  static const DeviceSpec spec = [] {
    DeviceSpec d;
    d.name = "A100";
    d.num_sms = 108;
    d.clock_ghz = 1.41;
    // GA100 whitepaper dense tensor TOPS: int1 is 8x int8.
    d.peak_tops = {
        {Precision::kInt1, 4992.0}, {Precision::kInt4, 1248.0},
        {Precision::kInt8, 624.0},  {Precision::kFp16, 312.0},
        {Precision::kFp32, 19.5},
    };
    d.int_alu_tops = 19.5;
    d.mem_bw_gbps = 1555.0;
    d.shmem_bw_gbps = 108 * 128.0 * 1.41;  // ~19.5 TB/s
    d.shmem_per_sm = 164 * 1024;
    d.max_blocks_per_sm = 16;
    d.launch_overhead_us = 2.5;
    // On A100 the b1 peak is so high that bandwidth limits the int1 kernels
    // well before compute; base efficiencies matter less but keep the same
    // family ordering as the 3090.
    d.family_efficiency = {
        {"cutlass-gemm", 0.50}, {"cublas-gemm", 0.44},
        {"cutlass-conv", 0.46}, {"apnn", 0.58},
        {"cutlass-gemm-int1", 0.55}, {"cutlass-conv-int1", 0.55},
        {"bnn", 0.50},
    };
    d.ci_half = 24.0;
    d.mem_efficiency = 0.80;
    return d;
  }();
  return spec;
}

}  // namespace apnn::tcsim

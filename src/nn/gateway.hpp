// The serving gateway: one loopback TCP listener multiplexing three
// protocols onto a ModelRegistry, sniffed from the first byte of each
// connection (none of the three can start with another's byte):
//
//   'A' (0x41)  the APGW binary protocol (src/nn/protocol.hpp) — INFER,
//               LIST, STATS, PING, and the admin ops LOAD/UNLOAD/RELOAD.
//               Persistent: one connection serves any number of frames.
//   '{' (0x7b)  the JSON line protocol — one request object per line, one
//               response object per line. Same operations, for humans and
//               scripts without a frame encoder (docs/PROTOCOL.md §6).
//   'G'/'H'     HTTP/1.x GET — /stats (Prometheus text), /healthz.
//               One request per connection, closed after the response.
//
// Threading: one accept loop, one thread per connection (loopback serving
// for a handful of bench/operator clients; finished connection slots are
// reaped on each accept). Request concurrency comes from connections — the
// per-model micro-batching and replica parallelism live in the registry's
// InferenceServers, not here.
//
// Error discipline: serving failures (deadline, queue full, unknown model,
// bad sample dims) answer an ERROR frame / {"ok":false} line and keep the
// connection; framing failures (bad magic, foreign version, oversized or
// truncated frame) answer when possible and then close — a peer that
// cannot frame cannot be resynchronized.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/net.hpp"
#include "src/nn/registry.hpp"

namespace apnn::nn::gw {

/// Fixed log-spaced latency histogram (sub-microsecond to ~an hour in
/// half-power-of-two steps). quantile() returns the upper bound of the
/// bucket holding the q-th sample — an overestimate by at most one bucket
/// width (~41%), stable regardless of request count.
class LatencyHistogram {
 public:
  void record(double ms);
  double quantile(double q) const;  ///< q in [0, 1]; 0 when empty
  std::int64_t count() const { return count_; }
  double sum_ms() const { return sum_ms_; }
  double max_ms() const { return max_ms_; }

  static constexpr int kBuckets = 64;

 private:
  std::int64_t counts_[kBuckets] = {};
  std::int64_t count_ = 0;
  double sum_ms_ = 0.0;
  double max_ms_ = 0.0;
};

struct GatewayOptions {
  int port = 0;  ///< 0 = ephemeral; the bound port is Gateway::port()
  std::size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  /// Accept LOAD/UNLOAD/RELOAD over the wire. Off turns them into
  /// UNSUPPORTED_TYPE errors (a gateway whose model set is fixed at boot).
  bool allow_admin = true;
};

class Gateway {
 public:
  /// Binds the listener and starts the accept loop. `registry` must
  /// outlive the gateway.
  Gateway(ModelRegistry& registry, GatewayOptions opts = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// The bound TCP port (resolved when options asked for 0).
  int port() const { return port_; }

  /// Stops accepting, shuts every open connection, joins all threads.
  /// In-flight requests inside the registry's servers still complete — the
  /// registry owns draining. Idempotent; the destructor calls it.
  void shutdown();

  /// The /stats document: every model's serving stats plus gateway-level
  /// connection/frame/error counters, in Prometheus text exposition format.
  std::string prometheus_text() const;

  /// Gateway-level counters (connections accepted, frames served, wire
  /// errors sent by code) — exported in prometheus_text(), exposed for
  /// tests.
  struct Counters {
    std::int64_t connections = 0;
    std::int64_t frames = 0;       ///< binary frames answered
    std::int64_t json_lines = 0;   ///< JSON requests answered
    std::int64_t http_requests = 0;
    std::map<std::uint16_t, std::int64_t> wire_errors;  ///< code -> sent
  };
  Counters counters() const;

 private:
  struct Conn {
    net::Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Conn* conn);
  void serve_binary(net::Socket& sock);
  void serve_json(net::Socket& sock);
  void serve_http(net::Socket& sock);
  void reap_finished_locked();

  /// Runs one decoded INFER against the registry, recording per-model
  /// gateway latency. Throws wire::RemoteError / ServerError upward.
  wire::InferResponse run_infer(const wire::InferRequest& req);

  void count_wire_error(wire::WireError code);

  ModelRegistry& registry_;
  const GatewayOptions opts_;
  int port_ = 0;
  net::Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;

  mutable std::mutex stats_mu_;
  Counters counters_;
  std::map<std::string, LatencyHistogram> latency_;  ///< by model id
};

}  // namespace apnn::nn::gw

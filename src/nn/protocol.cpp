#include "src/nn/protocol.hpp"

#include <cstring>

#include "src/common/strings.hpp"

namespace apnn::nn::wire {

namespace {

/// One row of the error-code table: the single source of truth for the
/// WireError <-> ErrorKind mapping, wire_error_name(), and the generated
/// PROTOCOL.md table. Append rows; never renumber.
struct ErrorRow {
  WireError code;
  const char* name;
  const char* mirrors;  ///< ErrorKind enumerator name, or nullptr
  const char* meaning;
};

constexpr ErrorRow kErrorRows[] = {
    {WireError::kDeadlineExceeded, "DEADLINE_EXCEEDED", "kDeadlineExceeded",
     "the request's deadline passed before a replica dispatched it"},
    {WireError::kQueueFull, "QUEUE_FULL", "kQueueFull",
     "admission control rejected or shed the request (queue at capacity)"},
    {WireError::kShuttingDown, "SHUTTING_DOWN", "kShuttingDown",
     "the model's server (or the gateway) is draining for shutdown"},
    {WireError::kInvalidSample, "INVALID_SAMPLE", "kInvalidSample",
     "sample failed admission validation (wrong dims, or a code outside "
     "[0, 255])"},
    {WireError::kReplicaFailed, "REPLICA_FAILED", "kReplicaFailed",
     "the dispatcher replica holding the request died"},
    {WireError::kUnknownModel, "UNKNOWN_MODEL", nullptr,
     "no model is registered under the requested id"},
    {WireError::kMalformedFrame, "MALFORMED_FRAME", nullptr,
     "frame header or payload failed to parse; the connection is closed"},
    {WireError::kUnsupportedVersion, "UNSUPPORTED_VERSION", nullptr,
     "frame version differs from the gateway's protocol version"},
    {WireError::kFrameTooLarge, "FRAME_TOO_LARGE", nullptr,
     "payload length exceeds the gateway's frame bound"},
    {WireError::kUnsupportedType, "UNSUPPORTED_TYPE", nullptr,
     "unknown message type, or a response type sent as a request"},
    {WireError::kModelLoadFailed, "MODEL_LOAD_FAILED", nullptr,
     "load/reload could not read, parse, or compile the network file"},
    {WireError::kInternal, "INTERNAL", nullptr,
     "unexpected gateway-side failure (bug; see the gateway log)"},
};

// Every ErrorKind must have a mirror row; adding a kind without extending
// kErrorRows (and PROTOCOL.md via the docs lint) fails here.
static_assert(kErrorKindCount == 5,
              "ErrorKind grew: add the mirror row to kErrorRows, bump the "
              "mapping in wire_error_for, and regenerate the PROTOCOL.md "
              "error table");

}  // namespace

const char* wire_error_name(WireError e) {
  for (const ErrorRow& r : kErrorRows) {
    if (r.code == e) return r.name;
  }
  return "UNKNOWN";
}

WireError wire_error_for(ErrorKind kind) {
  // Wire value = ErrorKind value + 1 by construction (0 is reserved).
  return static_cast<WireError>(static_cast<std::uint16_t>(kind) + 1);
}

std::string error_table_markdown() {
  std::string out;
  out += "| code | name | mirrors `ErrorKind` | meaning |\n";
  out += "|-----:|------|---------------------|---------|\n";
  for (const ErrorRow& r : kErrorRows) {
    const std::string mirrors =
        r.mirrors != nullptr ? strf("`%s`", r.mirrors) : std::string("—");
    out += strf("| %u | `%s` | %s | %s |\n", static_cast<unsigned>(r.code),
                r.name, mirrors.c_str(), r.meaning);
  }
  return out;
}

// --- little-endian primitives -----------------------------------------------

void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v) { b.push_back(v); }

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  b.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  b.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_i32(std::vector<std::uint8_t>& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}

void put_str(std::vector<std::uint8_t>& b, const std::string& s) {
  APNN_CHECK(s.size() <= 0xffff) << "wire string too long";
  put_u16(b, static_cast<std::uint16_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

std::uint8_t Reader::u8() {
  if (pos_ + 1 > size_) {
    throw WireFormatError(WireError::kMalformedFrame, "payload truncated");
  }
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (pos_ + 2 > size_) {
    throw WireFormatError(WireError::kMalformedFrame, "payload truncated");
  }
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (pos_ + 4 > size_) {
    throw WireFormatError(WireError::kMalformedFrame, "payload truncated");
  }
  const std::uint32_t v =
      static_cast<std::uint32_t>(data_[pos_]) |
      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
      (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

std::string Reader::str() {
  const std::uint16_t n = u16();
  const std::uint8_t* p = bytes(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

const std::uint8_t* Reader::bytes(std::size_t n) {
  if (pos_ + n > size_) {
    throw WireFormatError(WireError::kMalformedFrame, "payload truncated");
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

void Reader::expect_end() const {
  if (pos_ != size_) {
    throw WireFormatError(
        WireError::kMalformedFrame,
        strf("%zu trailing bytes after the last payload field", size_ - pos_));
  }
}

// --- frames -----------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::size_t decode_header(const std::uint8_t header[kHeaderBytes],
                          MsgType* type, std::size_t max_payload_bytes) {
  if (std::memcmp(header, kMagic, 4) != 0) {
    throw WireFormatError(WireError::kMalformedFrame,
                          "bad frame magic (expected \"APGW\")");
  }
  const std::uint8_t version = header[4];
  if (version != kProtocolVersion) {
    throw WireFormatError(
        WireError::kUnsupportedVersion,
        strf("frame version %u; this gateway speaks version %u",
             version, kProtocolVersion));
  }
  if (header[6] != 0 || header[7] != 0) {
    throw WireFormatError(WireError::kMalformedFrame,
                          "reserved header bytes must be 0");
  }
  const std::size_t payload_len =
      static_cast<std::size_t>(header[8]) |
      (static_cast<std::size_t>(header[9]) << 8) |
      (static_cast<std::size_t>(header[10]) << 16) |
      (static_cast<std::size_t>(header[11]) << 24);
  if (payload_len > max_payload_bytes) {
    throw WireFormatError(
        WireError::kFrameTooLarge,
        strf("payload of %zu bytes exceeds the %zu-byte frame bound",
             payload_len, max_payload_bytes));
  }
  *type = static_cast<MsgType>(header[5]);
  return payload_len;
}

bool read_frame(net::Socket& sock, Frame* out, std::size_t max_payload_bytes) {
  std::uint8_t header[kHeaderBytes];
  if (!sock.read_exact(header, kHeaderBytes)) return false;
  MsgType type;
  const std::size_t payload_len =
      decode_header(header, &type, max_payload_bytes);
  out->type = type;
  out->payload.resize(payload_len);
  if (payload_len > 0 && !sock.read_exact(out->payload.data(), payload_len)) {
    throw Error("connection closed between frame header and payload");
  }
  return true;
}

void write_frame(net::Socket& sock, MsgType type,
                 std::vector<std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame =
      encode_frame(type, std::move(payload));
  sock.write_all(frame.data(), frame.size());
}

// --- payloads ---------------------------------------------------------------

std::vector<std::uint8_t> encode_infer_request(const InferRequest& req) {
  APNN_CHECK(req.count >= 1 && req.count <= kMaxFrameSamples)
      << "frame sample count " << req.count;
  const std::size_t expect = static_cast<std::size_t>(req.count) * req.h *
                             req.w * req.c;
  APNN_CHECK(req.samples.size() == expect)
      << "sample bytes " << req.samples.size() << " != count*h*w*c "
      << expect;
  std::vector<std::uint8_t> b;
  b.reserve(16 + req.model.size() + req.samples.size());
  APNN_CHECK(req.seq_len == 0 || req.seq_len == req.h)
      << "seq_len " << req.seq_len << " != sample token count " << req.h;
  put_str(b, req.model);
  put_u32(b, req.deadline_ms);
  put_u16(b, req.count);
  put_u16(b, req.h);
  put_u16(b, req.w);
  put_u16(b, req.c);
  put_u16(b, req.seq_len);
  b.insert(b.end(), req.samples.begin(), req.samples.end());
  return b;
}

InferRequest decode_infer_request(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  InferRequest req;
  req.model = r.str();
  req.deadline_ms = r.u32();
  req.count = r.u16();
  req.h = r.u16();
  req.w = r.u16();
  req.c = r.u16();
  req.seq_len = r.u16();
  if (req.seq_len != 0 && req.seq_len != req.h) {
    throw WireFormatError(
        WireError::kMalformedFrame,
        strf("seq_len %u does not match the sample token count %u",
             req.seq_len, req.h));
  }
  if (req.count < 1 || req.count > kMaxFrameSamples) {
    throw WireFormatError(
        WireError::kMalformedFrame,
        strf("sample count %u outside [1, %u]", req.count, kMaxFrameSamples));
  }
  if (req.h == 0 || req.w == 0 || req.c == 0) {
    throw WireFormatError(WireError::kMalformedFrame,
                          "zero sample dimension");
  }
  const std::size_t n =
      static_cast<std::size_t>(req.count) * req.h * req.w * req.c;
  const std::uint8_t* p = r.bytes(n);
  req.samples.assign(p, p + n);
  r.expect_end();
  return req;
}

std::vector<std::uint8_t> encode_infer_response(const InferResponse& resp) {
  APNN_CHECK(resp.logits.size() ==
             static_cast<std::size_t>(resp.count) * resp.classes)
      << "logit count mismatch";
  std::vector<std::uint8_t> b;
  b.reserve(8 + resp.logits.size() * 4);
  put_u16(b, resp.count);
  put_u32(b, resp.classes);
  for (const std::int32_t v : resp.logits) put_i32(b, v);
  return b;
}

InferResponse decode_infer_response(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  InferResponse resp;
  resp.count = r.u16();
  resp.classes = r.u32();
  const std::size_t n =
      static_cast<std::size_t>(resp.count) * resp.classes;
  if (n > (64u << 20)) {
    throw WireFormatError(WireError::kMalformedFrame,
                          "implausible logit count");
  }
  resp.logits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) resp.logits.push_back(r.i32());
  r.expect_end();
  return resp;
}

std::vector<std::uint8_t> encode_error_response(const ErrorResponse& resp) {
  std::vector<std::uint8_t> b;
  put_u16(b, static_cast<std::uint16_t>(resp.code));
  put_str(b, resp.message);
  return b;
}

ErrorResponse decode_error_response(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  ErrorResponse resp;
  resp.code = static_cast<WireError>(r.u16());
  resp.message = r.str();
  r.expect_end();
  return resp;
}

std::vector<std::uint8_t> encode_list_response(
    const std::vector<ModelDescriptor>& models) {
  APNN_CHECK(models.size() <= 0xffff) << "model count";
  std::vector<std::uint8_t> b;
  put_u16(b, static_cast<std::uint16_t>(models.size()));
  for (const ModelDescriptor& m : models) {
    put_str(b, m.id);
    put_u16(b, m.h);
    put_u16(b, m.w);
    put_u16(b, m.c);
    put_u32(b, m.classes);
    put_u32(b, m.generation);
  }
  return b;
}

std::vector<ModelDescriptor> decode_list_response(
    const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  const std::uint16_t n = r.u16();
  std::vector<ModelDescriptor> models;
  models.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    ModelDescriptor m;
    m.id = r.str();
    m.h = r.u16();
    m.w = r.u16();
    m.c = r.u16();
    m.classes = r.u32();
    m.generation = r.u32();
    models.push_back(std::move(m));
  }
  r.expect_end();
  return models;
}

// --- reference client -------------------------------------------------------

std::vector<std::uint8_t> pack_sample_u8(const Tensor<std::int32_t>& sample) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(static_cast<std::size_t>(sample.numel()));
  for (std::int64_t i = 0; i < sample.numel(); ++i) {
    const std::int32_t v = sample[i];
    APNN_CHECK(v >= 0 && v <= 255)
        << "sample value " << v << " at " << i << " is not an 8-bit code";
    bytes.push_back(static_cast<std::uint8_t>(v));
  }
  return bytes;
}

Client::Client(int port) : sock_(net::connect_loopback(port)) {}

Frame Client::round_trip(MsgType type, std::vector<std::uint8_t> payload,
                         MsgType expect) {
  write_frame(sock_, type, std::move(payload));
  Frame reply;
  if (!read_frame(sock_, &reply, kDefaultMaxFrameBytes)) {
    throw Error("gateway closed the connection without replying");
  }
  if (reply.type == MsgType::kError) {
    const ErrorResponse err = decode_error_response(reply.payload);
    throw RemoteError(err.code, strf("[%s] %s", wire_error_name(err.code),
                                     err.message.c_str()));
  }
  if (reply.type != expect) {
    throw WireFormatError(
        WireError::kUnsupportedType,
        strf("expected reply type %u, got %u", static_cast<unsigned>(expect),
             static_cast<unsigned>(reply.type)));
  }
  return reply;
}

Tensor<std::int32_t> Client::infer(const std::string& model,
                                   const Tensor<std::int32_t>& sample_u8,
                                   std::uint32_t deadline_ms,
                                   bool variable_seq) {
  const int rank = sample_u8.rank();
  APNN_CHECK(rank == 3 || (rank == 4 && sample_u8.dim(0) == 1))
      << "sample must be {H, W, C} or {1, H, W, C}";
  const int base = rank == 4 ? 1 : 0;
  InferRequest req;
  req.model = model;
  req.deadline_ms = deadline_ms;
  req.count = 1;
  req.h = static_cast<std::uint16_t>(sample_u8.dim(base + 0));
  req.w = static_cast<std::uint16_t>(sample_u8.dim(base + 1));
  req.c = static_cast<std::uint16_t>(sample_u8.dim(base + 2));
  if (variable_seq) req.seq_len = req.h;
  req.samples = pack_sample_u8(sample_u8);
  const InferResponse resp = infer_batch(req);
  Tensor<std::int32_t> logits({static_cast<std::int64_t>(resp.classes)});
  for (std::uint32_t i = 0; i < resp.classes; ++i) {
    logits[i] = resp.logits[i];
  }
  return logits;
}

InferResponse Client::infer_batch(const InferRequest& req) {
  const Frame reply =
      round_trip(MsgType::kInfer, encode_infer_request(req), MsgType::kInferOk);
  const InferResponse resp = decode_infer_response(reply.payload);
  if (resp.count != req.count) {
    throw WireFormatError(
        WireError::kMalformedFrame,
        strf("response carries %u samples for a %u-sample request",
             resp.count, req.count));
  }
  return resp;
}

std::vector<ModelDescriptor> Client::list() {
  const Frame reply = round_trip(MsgType::kList, {}, MsgType::kListOk);
  return decode_list_response(reply.payload);
}

std::string Client::stats() {
  const Frame reply = round_trip(MsgType::kStats, {}, MsgType::kStatsOk);
  return std::string(reply.payload.begin(), reply.payload.end());
}

void Client::load(const std::string& id, const std::string& path) {
  std::vector<std::uint8_t> b;
  put_str(b, id);
  put_str(b, path);
  round_trip(MsgType::kLoad, std::move(b), MsgType::kAdminOk);
}

void Client::unload(const std::string& id) {
  std::vector<std::uint8_t> b;
  put_str(b, id);
  round_trip(MsgType::kUnload, std::move(b), MsgType::kAdminOk);
}

void Client::reload(const std::string& id) {
  std::vector<std::uint8_t> b;
  put_str(b, id);
  round_trip(MsgType::kReload, std::move(b), MsgType::kAdminOk);
}

void Client::ping() { round_trip(MsgType::kPing, {}, MsgType::kPong); }

}  // namespace apnn::nn::wire

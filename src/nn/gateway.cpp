#include "src/nn/gateway.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/json.hpp"
#include "src/common/strings.hpp"
#include "src/common/timer.hpp"

namespace apnn::nn::gw {

// --- LatencyHistogram -------------------------------------------------------

namespace {

/// Bucket i spans (kBase * 2^((i-1)/2), kBase * 2^(i/2)] milliseconds.
constexpr double kHistBaseMs = 0.001;

int bucket_for(double ms) {
  if (!(ms > kHistBaseMs)) return 0;
  const int i = static_cast<int>(std::ceil(2.0 * std::log2(ms / kHistBaseMs)));
  return std::min(i, LatencyHistogram::kBuckets - 1);
}

double bucket_upper_ms(int i) {
  return kHistBaseMs * std::pow(2.0, static_cast<double>(i) / 2.0);
}

}  // namespace

void LatencyHistogram::record(double ms) {
  counts_[bucket_for(ms)] += 1;
  count_ += 1;
  sum_ms_ += ms;
  max_ms_ = std::max(max_ms_, ms);
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th sample, 1-based: ceil(q * count), at least 1.
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(clamped * static_cast<double>(count_))));
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) return std::min(bucket_upper_ms(i), max_ms_);
  }
  return max_ms_;
}

// --- Gateway ----------------------------------------------------------------

Gateway::Gateway(ModelRegistry& registry, GatewayOptions opts)
    : registry_(registry), opts_(opts) {
  listener_ = net::listen_loopback(opts_.port, /*backlog=*/64, &port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Gateway::~Gateway() { shutdown(); }

void Gateway::shutdown() {
  if (stopping_.exchange(true)) return;
  // Unblock accept() first (shutdown, not close: closing the fd while
  // accept() sleeps on it would race fd reuse), then every open connection.
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->sock.shutdown_both();
  }
  // No new conns_ entries can appear (the accept loop is dead); joining
  // without the lock keeps connection exits from deadlocking against us.
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
}

void Gateway::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Gateway::accept_loop() {
  while (!stopping_.load()) {
    net::Socket sock = net::accept_conn(listener_);
    if (!sock.valid()) return;  // listener shut down
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      reap_finished_locked();
      conns_.push_back(std::move(conn));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      counters_.connections += 1;
    }
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
}

void Gateway::serve_connection(Conn* conn) {
  try {
    const int first = conn->sock.peek_byte();
    if (first == 'A') {
      serve_binary(conn->sock);
    } else if (first == '{') {
      serve_json(conn->sock);
    } else if (first == 'G' || first == 'H') {
      serve_http(conn->sock);
    } else if (first >= 0) {
      // Unrecognizable first byte: answer on the one protocol whose
      // decoder tolerates garbage (binary ERROR frame), then close.
      count_wire_error(wire::WireError::kMalformedFrame);
      wire::write_frame(
          conn->sock, wire::MsgType::kError,
          wire::encode_error_response(
              {wire::WireError::kMalformedFrame,
               strf("unrecognized protocol (first byte 0x%02x)", first)}));
    }
    // first < 0: the peer connected and left; nothing to do.
  } catch (...) {
    // Transport failures on a dying connection are the peer's problem;
    // the gateway must outlive every misbehaving client.
  }
  conn->sock.shutdown_both();
  conn->done.store(true);
}

void Gateway::count_wire_error(wire::WireError code) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.wire_errors[static_cast<std::uint16_t>(code)] += 1;
}

wire::InferResponse Gateway::run_infer(const wire::InferRequest& req) {
  const InferenceServer::Deadline deadline =
      req.deadline_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(req.deadline_ms)
          : InferenceServer::kNoDeadline;
  const std::size_t per_sample =
      static_cast<std::size_t>(req.h) * req.w * req.c;
  Tensor<std::int32_t> sample({req.h, req.w, req.c});
  wire::InferResponse resp;
  resp.count = req.count;
  for (std::uint16_t s = 0; s < req.count; ++s) {
    const std::uint8_t* src = req.samples.data() + s * per_sample;
    for (std::size_t i = 0; i < per_sample; ++i) {
      sample[static_cast<std::int64_t>(i)] = src[i];
    }
    WallTimer timer;
    // A failed sample fails the whole frame: the client sees one ERROR for
    // the batch, never a partial response (PROTOCOL.md §4.1).
    const Tensor<std::int32_t> logits =
        registry_.infer(req.model, sample, deadline, req.seq_len);
    const double ms = timer.millis();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      latency_[req.model].record(ms);
    }
    if (s == 0) {
      resp.classes = static_cast<std::uint32_t>(logits.numel());
      resp.logits.reserve(static_cast<std::size_t>(req.count) * resp.classes);
    }
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
      resp.logits.push_back(logits[i]);
    }
  }
  return resp;
}

void Gateway::serve_binary(net::Socket& sock) {
  wire::Frame frame;
  while (true) {
    try {
      if (!wire::read_frame(sock, &frame, opts_.max_frame_bytes)) return;
    } catch (const wire::WireFormatError& e) {
      count_wire_error(e.code());
      try {
        wire::write_frame(sock, wire::MsgType::kError,
                          wire::encode_error_response({e.code(), e.what()}));
      } catch (...) {
      }
      return;  // framing is broken; no resynchronization
    } catch (const Error&) {
      return;  // transport died (EOF mid-frame, reset)
    }

    bool close_after_error = false;
    try {
      switch (frame.type) {
        case wire::MsgType::kInfer: {
          const wire::InferRequest req =
              wire::decode_infer_request(frame.payload);
          const wire::InferResponse resp = run_infer(req);
          wire::write_frame(sock, wire::MsgType::kInferOk,
                            wire::encode_infer_response(resp));
          break;
        }
        case wire::MsgType::kStats: {
          wire::Reader(frame.payload).expect_end();
          const std::string text = prometheus_text();
          wire::write_frame(
              sock, wire::MsgType::kStatsOk,
              std::vector<std::uint8_t>(text.begin(), text.end()));
          break;
        }
        case wire::MsgType::kList: {
          wire::Reader(frame.payload).expect_end();
          wire::write_frame(sock, wire::MsgType::kListOk,
                            wire::encode_list_response(registry_.list()));
          break;
        }
        case wire::MsgType::kLoad: {
          wire::Reader r(frame.payload);
          ModelConfig cfg;
          cfg.id = r.str();
          cfg.path = r.str();
          r.expect_end();
          if (!opts_.allow_admin) {
            throw wire::RemoteError(wire::WireError::kUnsupportedType,
                                    "admin operations are disabled");
          }
          registry_.load(cfg);
          wire::write_frame(sock, wire::MsgType::kAdminOk, {});
          break;
        }
        case wire::MsgType::kUnload:
        case wire::MsgType::kReload: {
          wire::Reader r(frame.payload);
          const std::string id = r.str();
          r.expect_end();
          if (!opts_.allow_admin) {
            throw wire::RemoteError(wire::WireError::kUnsupportedType,
                                    "admin operations are disabled");
          }
          if (frame.type == wire::MsgType::kUnload) {
            registry_.unload(id);
          } else {
            registry_.reload(id);
          }
          wire::write_frame(sock, wire::MsgType::kAdminOk, {});
          break;
        }
        case wire::MsgType::kPing: {
          wire::Reader(frame.payload).expect_end();
          wire::write_frame(sock, wire::MsgType::kPong, {});
          break;
        }
        default:
          // Reply types (and unknown types) are not requests; this peer
          // is confused, so answer and close.
          close_after_error = true;
          throw wire::RemoteError(
              wire::WireError::kUnsupportedType,
              strf("message type 0x%02x is not a request",
                   static_cast<unsigned>(frame.type)));
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      counters_.frames += 1;
    } catch (const wire::WireFormatError& e) {
      // Malformed payload inside a well-framed message: answer, close.
      count_wire_error(e.code());
      try {
        wire::write_frame(sock, wire::MsgType::kError,
                          wire::encode_error_response({e.code(), e.what()}));
      } catch (...) {
      }
      return;
    } catch (const wire::RemoteError& e) {
      count_wire_error(e.code());
      try {
        wire::write_frame(sock, wire::MsgType::kError,
                          wire::encode_error_response({e.code(), e.what()}));
      } catch (...) {
        return;
      }
      if (close_after_error) return;
    } catch (const ServerError& e) {
      const wire::WireError code = wire::wire_error_for(e.kind());
      count_wire_error(code);
      try {
        wire::write_frame(sock, wire::MsgType::kError,
                          wire::encode_error_response({code, e.what()}));
      } catch (...) {
        return;
      }
    } catch (const Error& e) {
      count_wire_error(wire::WireError::kInternal);
      try {
        wire::write_frame(
            sock, wire::MsgType::kError,
            wire::encode_error_response({wire::WireError::kInternal,
                                         e.what()}));
      } catch (...) {
        return;
      }
    }
  }
}

// --- JSON line protocol -----------------------------------------------------

namespace {

std::string json_error_line(wire::WireError code, const std::string& msg) {
  return strf("{\"ok\":false,\"code\":\"%s\",\"error\":\"%s\"}\n",
              wire_error_name(code), json::escape(msg).c_str());
}

/// Required string member, or a malformed-frame error naming the key.
std::string need_str(const json::Value& v, const char* key) {
  const json::Value* m = v.find(key);
  if (m == nullptr || !m->is_string()) {
    throw wire::RemoteError(wire::WireError::kMalformedFrame,
                            strf("missing string field \"%s\"", key));
  }
  return m->str;
}

std::int64_t opt_int(const json::Value& v, const char* key,
                     std::int64_t fallback) {
  const json::Value* m = v.find(key);
  if (m == nullptr) return fallback;
  if (!m->is_number()) {
    throw wire::RemoteError(wire::WireError::kMalformedFrame,
                            strf("field \"%s\" is not a number", key));
  }
  return m->as_int64();
}

}  // namespace

void Gateway::serve_json(net::Socket& sock) {
  std::string buf;
  char chunk[4096];
  while (true) {
    // Pull complete lines out of the buffer; refill from the socket when
    // none remains.
    const std::size_t nl = buf.find('\n');
    if (nl == std::string::npos) {
      if (buf.size() > opts_.max_frame_bytes) {
        const std::string err = json_error_line(
            wire::WireError::kFrameTooLarge,
            "JSON line exceeds the frame bound");
        count_wire_error(wire::WireError::kFrameTooLarge);
        sock.write_all(err.data(), err.size());
        return;
      }
      const std::size_t got = sock.read_some(chunk, sizeof(chunk));
      if (got == 0) return;  // EOF
      buf.append(chunk, got);
      continue;
    }
    const std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::string reply;
    try {
      const json::Value req = json::parse(line);
      if (!req.is_object()) {
        throw wire::RemoteError(wire::WireError::kMalformedFrame,
                                "request is not a JSON object");
      }
      const std::string op = need_str(req, "op");
      if (op == "infer") {
        wire::InferRequest ireq;
        ireq.model = need_str(req, "model");
        ireq.deadline_ms =
            static_cast<std::uint32_t>(opt_int(req, "deadline_ms", 0));
        ireq.count = 1;
        ireq.h = static_cast<std::uint16_t>(opt_int(req, "h", 0));
        ireq.w = static_cast<std::uint16_t>(opt_int(req, "w", 0));
        ireq.c = static_cast<std::uint16_t>(opt_int(req, "c", 0));
        ireq.seq_len =
            static_cast<std::uint16_t>(opt_int(req, "seq_len", 0));
        if (ireq.seq_len != 0 && ireq.seq_len != ireq.h) {
          throw wire::RemoteError(
              wire::WireError::kMalformedFrame,
              strf("seq_len %u does not match h %u", ireq.seq_len, ireq.h));
        }
        const json::Value* sample = req.find("sample");
        if (sample == nullptr || !sample->is_array()) {
          throw wire::RemoteError(wire::WireError::kMalformedFrame,
                                  "missing array field \"sample\"");
        }
        const std::size_t expect =
            static_cast<std::size_t>(ireq.h) * ireq.w * ireq.c;
        if (ireq.h == 0 || ireq.w == 0 || ireq.c == 0 ||
            sample->array.size() != expect) {
          throw wire::RemoteError(
              wire::WireError::kMalformedFrame,
              strf("sample has %zu values; h*w*c = %zu", sample->array.size(),
                   expect));
        }
        ireq.samples.reserve(expect);
        for (const json::Value& v : sample->array) {
          const std::int64_t code = v.as_int64();
          if (code < 0 || code > 255) {
            throw wire::RemoteError(
                wire::WireError::kInvalidSample,
                strf("sample value %lld is not an 8-bit code",
                     static_cast<long long>(code)));
          }
          ireq.samples.push_back(static_cast<std::uint8_t>(code));
        }
        const wire::InferResponse resp = run_infer(ireq);
        reply = strf("{\"ok\":true,\"classes\":%u,\"logits\":[",
                     resp.classes);
        for (std::size_t i = 0; i < resp.logits.size(); ++i) {
          reply += strf(i == 0 ? "%d" : ",%d", resp.logits[i]);
        }
        reply += "]}\n";
      } else if (op == "list") {
        reply = "{\"ok\":true,\"models\":[";
        bool first = true;
        for (const wire::ModelDescriptor& m : registry_.list()) {
          reply += strf(
              "%s{\"id\":\"%s\",\"h\":%u,\"w\":%u,\"c\":%u,\"classes\":%u,"
              "\"generation\":%u}",
              first ? "" : ",", json::escape(m.id).c_str(), m.h, m.w, m.c,
              m.classes, m.generation);
          first = false;
        }
        reply += "]}\n";
      } else if (op == "stats") {
        reply = strf("{\"ok\":true,\"stats\":\"%s\"}\n",
                     json::escape(prometheus_text()).c_str());
      } else if (op == "ping") {
        reply = "{\"ok\":true}\n";
      } else if (op == "load" || op == "unload" || op == "reload") {
        if (!opts_.allow_admin) {
          throw wire::RemoteError(wire::WireError::kUnsupportedType,
                                  "admin operations are disabled");
        }
        const std::string id = need_str(req, "model");
        if (op == "load") {
          ModelConfig cfg;
          cfg.id = id;
          cfg.path = need_str(req, "path");
          registry_.load(cfg);
        } else if (op == "unload") {
          registry_.unload(id);
        } else {
          registry_.reload(id);
        }
        reply = "{\"ok\":true}\n";
      } else {
        throw wire::RemoteError(wire::WireError::kUnsupportedType,
                                strf("unknown op \"%s\"", op.c_str()));
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      counters_.json_lines += 1;
    } catch (const wire::RemoteError& e) {
      count_wire_error(e.code());
      reply = json_error_line(e.code(), e.what());
    } catch (const ServerError& e) {
      const wire::WireError code = wire::wire_error_for(e.kind());
      count_wire_error(code);
      reply = json_error_line(code, e.what());
    } catch (const Error& e) {
      // json::parse failures land here: malformed request line.
      count_wire_error(wire::WireError::kMalformedFrame);
      reply = json_error_line(wire::WireError::kMalformedFrame, e.what());
    }
    sock.write_all(reply.data(), reply.size());
  }
}

// --- HTTP (GET /stats, /healthz) --------------------------------------------

void Gateway::serve_http(net::Socket& sock) {
  std::string req;
  char chunk[2048];
  while (req.find("\r\n\r\n") == std::string::npos) {
    if (req.size() > 16384) return;  // header flood; drop
    const std::size_t got = sock.read_some(chunk, sizeof(chunk));
    if (got == 0) break;
    req.append(chunk, got);
  }
  const std::size_t line_end = req.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? req : req.substr(0, line_end);

  std::string body;
  const char* status = "200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (request_line.rfind("GET /stats", 0) == 0) {
    body = prometheus_text();
  } else if (request_line.rfind("GET /healthz", 0) == 0) {
    content_type = "text/plain; charset=utf-8";
    body = "ok\n";
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "only GET /stats and GET /healthz are served\n";
  }
  const std::string response = strf(
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n%s",
      status, content_type, body.size(), body.c_str());
  sock.write_all(response.data(), response.size());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.http_requests += 1;
  }
}

// --- /stats document --------------------------------------------------------

namespace {

void metric_header(std::string& out, const char* name, const char* help,
                   const char* type) {
  out += strf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
}

}  // namespace

std::string Gateway::prometheus_text() const {
  const std::vector<ModelRegistry::ModelStats> models = registry_.stats();
  Counters counters;
  std::map<std::string, LatencyHistogram> latency;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters = counters_;
    latency = latency_;
  }

  std::string out;
  metric_header(out, "apnn_gateway_connections_total",
                "Connections accepted by the gateway listener.", "counter");
  out += strf("apnn_gateway_connections_total %lld\n",
              static_cast<long long>(counters.connections));
  metric_header(out, "apnn_gateway_requests_total",
                "Requests answered, by protocol.", "counter");
  out += strf("apnn_gateway_requests_total{protocol=\"binary\"} %lld\n",
              static_cast<long long>(counters.frames));
  out += strf("apnn_gateway_requests_total{protocol=\"json\"} %lld\n",
              static_cast<long long>(counters.json_lines));
  out += strf("apnn_gateway_requests_total{protocol=\"http\"} %lld\n",
              static_cast<long long>(counters.http_requests));
  metric_header(out, "apnn_gateway_wire_errors_total",
                "ERROR responses sent, by wire error code.", "counter");
  for (const auto& [code, count] : counters.wire_errors) {
    out += strf(
        "apnn_gateway_wire_errors_total{code=\"%u\",name=\"%s\"} %lld\n",
        code, wire::wire_error_name(static_cast<wire::WireError>(code)),
        static_cast<long long>(count));
  }
  metric_header(out, "apnn_gateway_models", "Models currently routed.",
                "gauge");
  out += strf("apnn_gateway_models %zu\n", models.size());

  metric_header(out, "apnn_model_generation",
                "Load generation of the routed model (bumps on reload).",
                "gauge");
  for (const auto& m : models) {
    out += strf("apnn_model_generation{model=\"%s\"} %u\n", m.id.c_str(),
                m.generation);
  }
  metric_header(out, "apnn_model_topology",
                "Resolved serving topology of the model's pool.", "gauge");
  for (const auto& m : models) {
    out += strf("apnn_model_topology{model=\"%s\",dim=\"replicas\"} %d\n",
                m.id.c_str(), m.replicas);
    out += strf(
        "apnn_model_topology{model=\"%s\",dim=\"slice_threads\"} %d\n",
        m.id.c_str(), m.slice_threads);
  }
  metric_header(out, "apnn_model_requests_total",
                "Samples served successfully.", "counter");
  for (const auto& m : models) {
    out += strf("apnn_model_requests_total{model=\"%s\"} %lld\n",
                m.id.c_str(), static_cast<long long>(m.stats.requests));
  }
  metric_header(out, "apnn_model_batches_total",
                "Micro-batches dispatched across all replicas.", "counter");
  for (const auto& m : models) {
    out += strf("apnn_model_batches_total{model=\"%s\"} %lld\n",
                m.id.c_str(), static_cast<long long>(m.stats.batches));
  }
  metric_header(out, "apnn_model_max_batch",
                "Largest micro-batch formed so far.", "gauge");
  for (const auto& m : models) {
    out += strf("apnn_model_max_batch{model=\"%s\"} %lld\n", m.id.c_str(),
                static_cast<long long>(m.stats.max_batch));
  }
  metric_header(out, "apnn_model_queue_depth",
                "Requests in the admission queue right now.", "gauge");
  for (const auto& m : models) {
    out += strf("apnn_model_queue_depth{model=\"%s\"} %lld\n", m.id.c_str(),
                static_cast<long long>(m.stats.queue_depth));
  }
  metric_header(out, "apnn_model_peak_queue_depth",
                "High-water mark of the admission queue.", "gauge");
  for (const auto& m : models) {
    out += strf("apnn_model_peak_queue_depth{model=\"%s\"} %lld\n",
                m.id.c_str(),
                static_cast<long long>(m.stats.peak_queue_depth));
  }
  metric_header(out, "apnn_model_errors_total",
                "Failed requests, by ErrorKind.", "counter");
  for (const auto& m : models) {
    for (std::size_t k = 0; k < kErrorKindCount; ++k) {
      out += strf("apnn_model_errors_total{model=\"%s\",kind=\"%s\"} %lld\n",
                  m.id.c_str(),
                  error_kind_name(static_cast<ErrorKind>(k)),
                  static_cast<long long>(m.stats.error_counts[k]));
    }
  }
  metric_header(out, "apnn_model_degraded",
                "1 while the queue is over the degrade high-water mark.",
                "gauge");
  for (const auto& m : models) {
    out += strf("apnn_model_degraded{model=\"%s\"} %d\n", m.id.c_str(),
                m.stats.degraded ? 1 : 0);
  }
  metric_header(out, "apnn_model_shed_total",
                "Requests shed by drop-head degradation.", "counter");
  for (const auto& m : models) {
    out += strf("apnn_model_shed_total{model=\"%s\"} %lld\n", m.id.c_str(),
                static_cast<long long>(m.stats.shed));
  }
  metric_header(out, "apnn_model_replica_restarts_total",
                "Replica self-healing restarts.", "counter");
  for (const auto& m : models) {
    out += strf("apnn_model_replica_restarts_total{model=\"%s\"} %lld\n",
                m.id.c_str(),
                static_cast<long long>(m.stats.replica_restarts));
  }
  metric_header(
      out, "apnn_model_replica_health",
      "Replica health (0 healthy, 1 restarting, 2 quarantined).", "gauge");
  for (const auto& m : models) {
    for (std::size_t r = 0; r < m.stats.replica_health.size(); ++r) {
      out += strf(
          "apnn_model_replica_health{model=\"%s\",replica=\"%zu\","
          "state=\"%s\"} %d\n",
          m.id.c_str(), r, replica_health_name(m.stats.replica_health[r]),
          static_cast<int>(m.stats.replica_health[r]));
    }
  }
  metric_header(out, "apnn_model_replica_batches_total",
                "Micro-batches dispatched, per replica.", "counter");
  for (const auto& m : models) {
    for (std::size_t r = 0; r < m.stats.replica_batches.size(); ++r) {
      out += strf(
          "apnn_model_replica_batches_total{model=\"%s\",replica=\"%zu\"} "
          "%lld\n",
          m.id.c_str(), r,
          static_cast<long long>(m.stats.replica_batches[r]));
    }
  }
  metric_header(out, "apnn_model_latency_ms",
                "Gateway-measured per-sample serving latency quantiles "
                "(log-bucket upper bounds).",
                "summary");
  for (const auto& m : models) {
    const auto it = latency.find(m.id);
    if (it == latency.end()) continue;
    const LatencyHistogram& h = it->second;
    for (const double q : {0.5, 0.9, 0.99}) {
      out += strf("apnn_model_latency_ms{model=\"%s\",quantile=\"%g\"} %.3f\n",
                  m.id.c_str(), q, h.quantile(q));
    }
    out += strf("apnn_model_latency_ms_sum{model=\"%s\"} %.3f\n",
                m.id.c_str(), h.sum_ms());
    out += strf("apnn_model_latency_ms_count{model=\"%s\"} %lld\n",
                m.id.c_str(), static_cast<long long>(h.count()));
    out += strf("apnn_model_latency_ms_max{model=\"%s\"} %.3f\n",
                m.id.c_str(), h.max_ms());
  }
  return out;
}

Gateway::Counters Gateway::counters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

}  // namespace apnn::nn::gw

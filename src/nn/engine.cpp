#include "src/nn/engine.hpp"

#include <cmath>

#include "src/baselines/bnn.hpp"
#include "src/baselines/conv.hpp"
#include "src/baselines/gemm.hpp"
#include "src/common/check.hpp"
#include "src/common/strings.hpp"
#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"

namespace apnn::nn {

namespace {

using core::Encoding;
using core::EncodingConfig;
using core::Epilogue;
using core::PoolSpec;

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

tcsim::Precision scheme_precision(Scheme s) {
  switch (s) {
    case Scheme::kFloat32: return tcsim::Precision::kFp32;
    case Scheme::kFloat16: return tcsim::Precision::kFp16;
    case Scheme::kInt8: return tcsim::Precision::kInt8;
    case Scheme::kBnn: return tcsim::Precision::kInt1;
    case Scheme::kApnn: return tcsim::Precision::kInt1;
  }
  return tcsim::Precision::kFp32;
}

/// Bytes per activation element as it crosses layer boundaries.
double act_bytes(const SchemeConfig& cfg) {
  switch (cfg.scheme) {
    case Scheme::kFloat32: return 4.0;
    case Scheme::kFloat16: return 2.0;
    case Scheme::kInt8: return 1.0;
    case Scheme::kBnn: return 1.0 / 8.0;
    case Scheme::kApnn: return cfg.abits / 8.0;
  }
  return 4.0;
}

/// Generic elementwise kernel profile (BN / ReLU / pool / quantize /
/// residual add when not fused).
tcsim::KernelProfile elementwise_profile(const std::string& name,
                                         std::int64_t elems, double in_bytes,
                                         double out_bytes,
                                         std::int64_t alu_per_elem) {
  tcsim::KernelProfile prof;
  prof.name = name;
  prof.family = "apnn";
  prof.grid_blocks = ceil_div(elems, 4096);
  prof.threads_per_block = 256;
  prof.ci = 0;
  auto& c = prof.counters;
  c.kernel_launches = 1;
  c.global_load_bytes =
      static_cast<std::int64_t>(std::ceil(static_cast<double>(elems) * in_bytes));
  c.global_store_bytes =
      static_cast<std::int64_t>(std::ceil(static_cast<double>(elems) * out_bytes));
  c.alu_epilogue_ops = elems * alu_per_elem;
  return prof;
}

Epilogue tail_epilogue(const TailScan& t, std::int64_t channels, int abits) {
  Epilogue epi;
  if (t.has_bn) {
    epi.has_bn = true;
    epi.bn.scale.assign(static_cast<std::size_t>(channels), 1.0f);
    epi.bn.bias.assign(static_cast<std::size_t>(channels), 0.0f);
  }
  epi.has_relu = t.has_relu;
  if (t.has_quant) {
    epi.has_quant = true;
    epi.quant.bits = abits;
    epi.quant.scale = 1.0;  // parameters are irrelevant for profiling
  }
  return epi;
}

}  // namespace

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kFloat32: return "CUTLASS-Single";
    case Scheme::kFloat16: return "CUTLASS-Half-TC";
    case Scheme::kInt8: return "CUTLASS-INT8-TC";
    case Scheme::kBnn: return "BNN";
    case Scheme::kApnn: return "APNN";
  }
  return "?";
}

std::string SchemeConfig::label() const {
  if (scheme == Scheme::kApnn) {
    return strf("APNN-w%da%d", wbits, abits);
  }
  return scheme_name(scheme);
}

ModelProfile profile_model(const ModelSpec& m, std::int64_t batch,
                           const SchemeConfig& cfg,
                           const tcsim::DeviceSpec& dev) {
  APNN_CHECK(batch >= 1);
  const auto shapes = propagate_shapes(m);
  const tcsim::CostModel cm(dev);
  ModelProfile mp;
  mp.model = m.name;
  mp.scheme = cfg.label();
  mp.batch = batch;

  const bool bitwise =
      cfg.scheme == Scheme::kApnn || cfg.scheme == Scheme::kBnn;
  const int p = cfg.scheme == Scheme::kBnn ? 1 : cfg.wbits;
  const int q = cfg.scheme == Scheme::kBnn ? 1 : cfg.abits;
  const EncodingConfig enc{
      p == 1 ? Encoding::kSignedPM1 : Encoding::kUnsigned01,
      cfg.scheme == Scheme::kBnn ? Encoding::kSignedPM1
                                 : Encoding::kUnsigned01};

  auto add_layer = [&](const std::string& name, LayerKind kind,
                       const tcsim::SequenceProfile& seq) {
    LayerProfile lp;
    lp.name = name;
    lp.kind = kind;
    lp.latency = cm.estimate(seq);
    lp.counters = seq.total_counters();
    mp.total_us += lp.latency.total_us;
    mp.layers.push_back(std::move(lp));
  };
  auto add_fused = [&](const std::string& name, LayerKind kind) {
    LayerProfile lp;
    lp.name = name;
    lp.kind = kind;
    lp.fused_away = true;
    mp.layers.push_back(std::move(lp));
  };

  // §5.1: the int8 image is decomposed into bit planes; the first
  // conv/linear layer consumes all 8 of them (its epilogue quantizes down to
  // q bits for the intermediate layers). This is why the first layer
  // dominates the Fig. 9 breakdown.
  const int input_bits = cfg.scheme == Scheme::kBnn ? 1 : 8;
  if (bitwise) {
    tcsim::SequenceProfile seq;
    seq.add(core::decompose_profile(batch * m.input.h * m.input.w, m.input.c,
                                    input_bits, 1.0));
    add_layer("input.quant", LayerKind::kQuantize, seq);
  }

  std::vector<bool> consumed(m.layers.size(), false);
  bool first_gemm_seen = false;

  for (std::size_t li = 0; li < m.layers.size(); ++li) {
    const LayerSpec& l = m.layers[li];
    if (consumed[li]) {
      add_fused(l.name, l.kind);
      continue;
    }
    const ActShape in_shape =
        l.input >= 0 ? shapes[static_cast<std::size_t>(l.input)]
                     : (li == 0 ? m.input : shapes[li - 1]);
    const ActShape out_shape = shapes[li];
    const std::int64_t out_elems = batch * out_shape.numel();

    switch (l.kind) {
      case LayerKind::kConv: {
        const layout::ConvGeometry g = conv_geometry(m, shapes, li, batch);
        tcsim::SequenceProfile seq;
        if (cfg.scheme == Scheme::kApnn) {
          TailScan tail = scan_tail(m, li);
          if (!cfg.fuse) tail.absorbed.clear();  // priced as separate kernels
          core::ApconvOptions opts;
          opts.fuse_epilogue = cfg.fuse;
          const int q_in = first_gemm_seen ? q : 8;
          seq = core::apconv_profile(g, p, q_in, enc, dev, opts,
                                     tail_epilogue(tail, g.out_c, q),
                                     cfg.fuse ? tail.pool : PoolSpec{});
          add_layer(l.name, l.kind, seq);
          for (std::size_t j : tail.absorbed) consumed[j] = true;
        } else if (cfg.scheme == Scheme::kBnn) {
          seq.add(baselines::bnn_conv_profile(g));
          add_layer(l.name, l.kind, seq);
        } else {
          seq.add(baselines::cutlass_conv_profile(scheme_precision(cfg.scheme),
                                                  g));
          add_layer(l.name, l.kind, seq);
        }
        first_gemm_seen = true;
        break;
      }
      case LayerKind::kLinear: {
        const std::int64_t in_features = in_shape.numel();
        tcsim::SequenceProfile seq;
        if (cfg.scheme == Scheme::kApnn) {
          TailScan tail = scan_tail(m, li);
          if (!cfg.fuse) tail.absorbed.clear();
          core::ApmmOptions opts;
          const int q_in = first_gemm_seen ? q : 8;
          seq = core::apmm_profile(l.out_features, batch, in_features, p,
                                   q_in, enc, dev, opts,
                                   tail_epilogue(tail, l.out_features, q));
          add_layer(l.name, l.kind, seq);
          for (std::size_t j : tail.absorbed) consumed[j] = true;
        } else if (cfg.scheme == Scheme::kBnn) {
          seq.add(baselines::bnn_gemm_profile(l.out_features, batch,
                                              in_features));
          add_layer(l.name, l.kind, seq);
        } else if (cfg.scheme == Scheme::kInt8) {
          seq.add(baselines::cublas_gemm_int8_profile(l.out_features, batch,
                                                      in_features));
          add_layer(l.name, l.kind, seq);
        } else {
          seq.add(baselines::cutlass_gemm_profile(
              scheme_precision(cfg.scheme), l.out_features, batch,
              in_features));
          add_layer(l.name, l.kind, seq);
        }
        first_gemm_seen = true;
        break;
      }
      case LayerKind::kAttention: {
        // Attention lowers to GEMMs — Q/K/V projections, per-(sample, head)
        // QK^T and attn x V, and the output projection — plus an
        // elementwise integer-softmax tail over the score matrices.
        const std::int64_t seq_len = in_shape.h;
        const std::int64_t d_model = in_shape.c;
        const std::int64_t dh = l.attn.d_head;
        const std::int64_t heads = l.attn.heads;
        const std::int64_t proj = heads * dh;
        const std::int64_t tokens = batch * seq_len;
        tcsim::SequenceProfile seq;
        auto add_gemm = [&](std::int64_t gm, std::int64_t gn,
                            std::int64_t gk, int q_act,
                            std::int64_t count) {
          tcsim::SequenceProfile one;
          if (cfg.scheme == Scheme::kApnn) {
            core::ApmmOptions opts;
            Epilogue epi;
            epi.has_relu = true;
            epi.has_quant = true;
            epi.quant.bits = q;
            epi.quant.scale = 1.0;
            one = core::apmm_profile(gm, gn, gk, p, q_act, enc, dev, opts,
                                     epi);
          } else if (cfg.scheme == Scheme::kBnn) {
            one.add(baselines::bnn_gemm_profile(gm, gn, gk));
          } else if (cfg.scheme == Scheme::kInt8) {
            one.add(baselines::cublas_gemm_int8_profile(gm, gn, gk));
          } else {
            one.add(baselines::cutlass_gemm_profile(
                scheme_precision(cfg.scheme), gm, gn, gk));
          }
          for (std::int64_t i = 0; i < count; ++i) {
            for (const auto& kp : one.kernels) seq.add(kp);
          }
        };
        const int q_in = first_gemm_seen ? q : 8;
        add_gemm(proj, tokens, d_model, q_in, 3);           // Q/K/V
        add_gemm(seq_len, seq_len, dh, q, batch * heads);   // QK^T
        add_gemm(seq_len, dh, seq_len, q, batch * heads);   // attn x V
        add_gemm(d_model, tokens, proj, q, 1);              // output proj
        seq.add(elementwise_profile(l.name + ".softmax",
                                    batch * heads * seq_len * seq_len, 4.0,
                                    act_bytes(cfg), 4));
        add_layer(l.name, l.kind, seq);
        first_gemm_seen = true;
        break;
      }
      case LayerKind::kBatchNorm:
      case LayerKind::kReLU: {
        tcsim::SequenceProfile seq;
        // Pre-quantization activations are 32-bit accumulators for the
        // integer schemes; float schemes stay at their native width.
        const double w = cfg.scheme == Scheme::kFloat16 ? 2.0 : 4.0;
        seq.add(elementwise_profile(l.name, out_elems, w, w,
                                    l.kind == LayerKind::kBatchNorm ? 2 : 1));
        add_layer(l.name, l.kind, seq);
        break;
      }
      case LayerKind::kPool: {
        tcsim::SequenceProfile seq;
        const double w = cfg.scheme == Scheme::kFloat16 ? 2.0 : 4.0;
        const std::int64_t in_elems = batch * in_shape.numel();
        const double win =
            l.pool.size == 0
                ? static_cast<double>(in_shape.h * in_shape.w)  // global
                : static_cast<double>(l.pool.size * l.pool.size);
        seq.add(elementwise_profile(l.name, in_elems, w, w / win, 1));
        add_layer(l.name, l.kind, seq);
        break;
      }
      case LayerKind::kQuantize: {
        if (cfg.scheme == Scheme::kFloat32 ||
            cfg.scheme == Scheme::kFloat16) {
          add_fused(l.name, l.kind);  // no quantization in float schemes
          break;
        }
        tcsim::SequenceProfile seq;
        seq.add(elementwise_profile(l.name, out_elems, 4.0, act_bytes(cfg),
                                    2 + (bitwise ? q : 0)));
        add_layer(l.name, l.kind, seq);
        break;
      }
      case LayerKind::kResidualAdd: {
        tcsim::SequenceProfile seq;
        const double w = cfg.scheme == Scheme::kFloat16 ? 2.0 : 4.0;
        seq.add(elementwise_profile(l.name, out_elems, 2.0 * w, w, 1));
        add_layer(l.name, l.kind, seq);
        break;
      }
      case LayerKind::kSoftmax: {
        tcsim::SequenceProfile seq;
        seq.add(elementwise_profile(l.name, out_elems, 4.0, 4.0, 4));
        add_layer(l.name, l.kind, seq);
        break;
      }
    }
  }
  return mp;
}

}  // namespace apnn::nn

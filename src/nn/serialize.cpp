#include "src/nn/serialize.hpp"

#include <cstring>
#include <fstream>

#include "src/common/check.hpp"

namespace apnn::nn {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'N', 'N'};
// v2: explicit byte-order marker after the version word; tensor dims are
// bounds-checked on load (a corrupt file must fail, not allocate wild).
// v1 files (identical layout, no marker word) still load.
// v3: sequence-length buckets after the input dims, per-layer attention
// params, and per-stage attention projection weights + quantizers. A model
// with no attention layers and no buckets is still written as v2, so
// conv-only exports stay readable by v2-era binaries.
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kOldestReadableVersion = 1;

// Written in host byte order; a reader whose endianness differs sees the
// byte-reversed value and fails loudly instead of decoding garbage weights.
constexpr std::uint32_t kEndianMark = 0x01020304u;
constexpr std::uint32_t kEndianMarkSwapped = 0x04030201u;

// Bounds for read_tensor: no single dim nor total element count from a
// corrupt or hostile file may drive an unbounded Tensor allocation. The
// largest legitimate payload (a linear stage's logical weights) is
// out_features x features; 2^24 per dim / 2^28 elements (1 GiB of int32)
// leaves generous headroom over every zoo model.
constexpr std::int64_t kMaxTensorDim = std::int64_t{1} << 24;
constexpr std::int64_t kMaxTensorElems = std::int64_t{1} << 28;

// --- primitive writers/readers (host byte order, marker-checked) ------------

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  APNN_CHECK(static_cast<bool>(is)) << "truncated network file";
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  APNN_CHECK(n < (1u << 20)) << "implausible string length";
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  APNN_CHECK(static_cast<bool>(is)) << "truncated network file";
  return s;
}

template <typename T>
void write_tensor(std::ostream& os, const Tensor<T>& t) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.rank()));
  for (int d = 0; d < t.rank(); ++d) write_pod<std::int64_t>(os, t.dim(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(T)));
}

template <typename T>
Tensor<T> read_tensor(std::istream& is) {
  const auto rank = read_pod<std::uint32_t>(is);
  APNN_CHECK(rank <= 8) << "implausible tensor rank";
  std::vector<std::int64_t> shape(rank);
  std::int64_t numel = 1;
  for (auto& d : shape) {
    d = read_pod<std::int64_t>(is);
    APNN_CHECK(d >= 0 && d <= kMaxTensorDim)
        << "implausible tensor dim " << d;
    numel *= d;  // bounded: each factor <= 2^24, running product <= 2^28
    APNN_CHECK(numel <= kMaxTensorElems)
        << "implausible tensor element count";
  }
  Tensor<T> t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(T)));
  APNN_CHECK(static_cast<bool>(is)) << "truncated network file";
  return t;
}

void write_floats(std::ostream& os, const std::vector<float>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  APNN_CHECK(n < (1u << 28)) << "implausible vector length";
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  APNN_CHECK(static_cast<bool>(is)) << "truncated network file";
  return v;
}

void write_quant(std::ostream& os, const quant::QuantParams& p) {
  write_pod<double>(os, p.scale);
  write_pod<double>(os, p.zero_point);
  write_pod<std::int32_t>(os, p.bits);
}

quant::QuantParams read_quant(std::istream& is) {
  quant::QuantParams p;
  p.scale = read_pod<double>(is);
  p.zero_point = read_pod<double>(is);
  p.bits = read_pod<std::int32_t>(is);
  return p;
}

void write_spec(std::ostream& os, const ModelSpec& m, std::uint32_t version) {
  write_string(os, m.name);
  write_pod<std::int64_t>(os, m.input.c);
  write_pod<std::int64_t>(os, m.input.h);
  write_pod<std::int64_t>(os, m.input.w);
  if (version >= 3) {
    write_pod<std::uint64_t>(os, m.seq_buckets.size());
    for (std::int64_t b : m.seq_buckets) write_pod<std::int64_t>(os, b);
  }
  write_pod<std::uint64_t>(os, m.layers.size());
  for (const LayerSpec& l : m.layers) {
    write_pod<std::int32_t>(os, static_cast<std::int32_t>(l.kind));
    write_string(os, l.name);
    write_pod<std::int64_t>(os, l.conv.out_c);
    write_pod<std::int32_t>(os, l.conv.kernel);
    write_pod<std::int32_t>(os, l.conv.stride);
    write_pod<std::int32_t>(os, l.conv.pad);
    write_pod<std::int64_t>(os, l.out_features);
    write_pod<std::int32_t>(os, static_cast<std::int32_t>(l.pool.kind));
    write_pod<std::int32_t>(os, l.pool.size);
    write_pod<std::int32_t>(os, l.input);
    write_pod<std::int32_t>(os, l.residual);
    if (version >= 3) {
      write_pod<std::int32_t>(os, l.attn.heads);
      write_pod<std::int64_t>(os, l.attn.d_head);
      write_pod<std::int32_t>(os, l.attn.scale_shift);
    }
  }
}

ModelSpec read_spec(std::istream& is, std::uint32_t version) {
  ModelSpec m;
  m.name = read_string(is);
  m.input.c = read_pod<std::int64_t>(is);
  m.input.h = read_pod<std::int64_t>(is);
  m.input.w = read_pod<std::int64_t>(is);
  if (version >= 3) {
    const auto nb = read_pod<std::uint64_t>(is);
    APNN_CHECK(nb < (1u << 10)) << "implausible bucket count";
    m.seq_buckets.resize(nb);
    std::int64_t prev = 0;
    for (auto& b : m.seq_buckets) {
      b = read_pod<std::int64_t>(is);
      APNN_CHECK(b > prev && b <= kMaxTensorDim)
          << "sequence buckets must be ascending positive, got " << b;
      prev = b;
    }
  }
  const auto n = read_pod<std::uint64_t>(is);
  APNN_CHECK(n < (1u << 16)) << "implausible layer count";
  m.layers.resize(n);
  for (LayerSpec& l : m.layers) {
    const auto kind = read_pod<std::int32_t>(is);
    APNN_CHECK(kind >= 0 && kind <= static_cast<std::int32_t>(
                                        LayerKind::kAttention))
        << "unknown layer kind " << kind;
    l.kind = static_cast<LayerKind>(kind);
    l.name = read_string(is);
    l.conv.out_c = read_pod<std::int64_t>(is);
    l.conv.kernel = read_pod<std::int32_t>(is);
    l.conv.stride = read_pod<std::int32_t>(is);
    l.conv.pad = read_pod<std::int32_t>(is);
    l.out_features = read_pod<std::int64_t>(is);
    l.pool.kind = static_cast<core::PoolSpec::Kind>(read_pod<std::int32_t>(is));
    l.pool.size = read_pod<std::int32_t>(is);
    l.input = read_pod<std::int32_t>(is);
    l.residual = read_pod<std::int32_t>(is);
    if (version >= 3) {
      l.attn.heads = read_pod<std::int32_t>(is);
      l.attn.d_head = read_pod<std::int64_t>(is);
      l.attn.scale_shift = read_pod<std::int32_t>(is);
      if (l.kind == LayerKind::kAttention) {
        APNN_CHECK(l.attn.heads > 0 && l.attn.heads < (1 << 12))
            << "implausible attention head count " << l.attn.heads;
        APNN_CHECK(l.attn.d_head > 0 && l.attn.d_head <= kMaxTensorDim)
            << "implausible attention head width " << l.attn.d_head;
      }
    } else {
      APNN_CHECK(l.kind != LayerKind::kAttention)
          << "attention layers require a v3 network file";
    }
  }
  return m;
}

/// v3 payloads exist only for attention stages; the flag is derived from
/// the spec, never stored.
bool stage_has_attention(const ModelSpec& spec, const ApnnStage& st) {
  return st.layer_index < spec.layers.size() &&
         spec.layers[st.layer_index].kind == LayerKind::kAttention;
}

}  // namespace

bool save_network(const ApnnNetwork& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  // Conv-only, bucketless models carry no v3 payload; write them as v2 so
  // older readers keep loading them.
  bool needs_v3 = !net.spec_.seq_buckets.empty();
  for (const LayerSpec& l : net.spec_.layers) {
    needs_v3 = needs_v3 || l.kind == LayerKind::kAttention;
  }
  const std::uint32_t version = needs_v3 ? kVersion : 2;
  os.write(kMagic, 4);
  write_pod<std::uint32_t>(os, version);
  write_pod<std::uint32_t>(os, kEndianMark);
  write_spec(os, net.spec_, version);
  write_pod<std::int32_t>(os, net.wbits_);
  write_pod<std::int32_t>(os, net.abits_);
  write_pod<std::uint8_t>(os, net.calibrated_ ? 1 : 0);
  write_pod<std::uint8_t>(os, net.binary_ ? 1 : 0);

  write_pod<std::uint64_t>(os, net.stages_.size());
  for (const ApnnStage& st : net.stages_) {
    write_pod<std::uint64_t>(os, st.layer_index);
    write_pod<std::int32_t>(os, st.in_bits);
    write_tensor(os, st.weights_logical);
    write_pod<std::uint8_t>(os, st.epilogue.has_bn ? 1 : 0);
    if (st.epilogue.has_bn) {
      write_floats(os, st.epilogue.bn.scale);
      write_floats(os, st.epilogue.bn.bias);
    }
    write_pod<std::uint8_t>(os, st.epilogue.has_relu ? 1 : 0);
    write_pod<std::uint8_t>(os, st.epilogue.has_quant ? 1 : 0);
    write_quant(os, st.epilogue.quant);
    if (version >= 3 && stage_has_attention(net.spec_, st)) {
      write_tensor(os, st.attn_wk_logical);
      write_tensor(os, st.attn_wv_logical);
      write_tensor(os, st.attn_wo_logical);
      write_quant(os, st.attn_q_quant);
      write_quant(os, st.attn_k_quant);
      write_quant(os, st.attn_v_quant);
      write_quant(os, st.attn_ctx_quant);
    }
  }

  write_pod<std::uint64_t>(os, net.standalone_quant_.size());
  for (const auto& [li, qp] : net.standalone_quant_) {
    write_pod<std::uint64_t>(os, li);
    write_quant(os, qp);
  }
  return static_cast<bool>(os);
}

ApnnNetwork load_network(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  APNN_CHECK(static_cast<bool>(is)) << "cannot open " << path;
  char magic[4];
  is.read(magic, 4);
  APNN_CHECK(is && std::memcmp(magic, kMagic, 4) == 0)
      << path << " is not an APNN network file";
  const auto version = read_pod<std::uint32_t>(is);
  // A genuinely foreign-endian file byte-swaps every word, the version
  // included — diagnose it here, before the version check would report a
  // nonsense version number. Any real version is a small integer, so a
  // swapped one has its payload in the top byte and zeros below.
  APNN_CHECK(version == 0 || (version & 0x00ffffffu) != 0)
      << path << " was written on a host of opposite byte order — refusing "
      << "to decode byte-reversed weights";
  APNN_CHECK(version >= kOldestReadableVersion && version <= kVersion)
      << "unsupported network file version " << version;
  if (version >= 2) {  // v1 predates the byte-order marker
    const auto mark = read_pod<std::uint32_t>(is);
    APNN_CHECK(mark != kEndianMarkSwapped)
        << path << " was written on a host of opposite byte order — "
        << "refusing to decode byte-reversed weights";
    APNN_CHECK(mark == kEndianMark) << path << " has a corrupt header";
  }

  ApnnNetwork net;
  net.spec_ = read_spec(is, version);
  net.shapes_ = propagate_shapes(net.spec_);
  net.wbits_ = read_pod<std::int32_t>(is);
  net.abits_ = read_pod<std::int32_t>(is);
  net.calibrated_ = read_pod<std::uint8_t>(is) != 0;
  net.binary_ = read_pod<std::uint8_t>(is) != 0;

  const core::Encoding w_enc = net.wbits_ == 1
                                   ? core::Encoding::kSignedPM1
                                   : core::Encoding::kUnsigned01;
  const auto nstages = read_pod<std::uint64_t>(is);
  APNN_CHECK(nstages < (1u << 16)) << "implausible stage count";
  net.stages_.resize(nstages);
  for (ApnnStage& st : net.stages_) {
    st.layer_index = read_pod<std::uint64_t>(is);
    APNN_CHECK(st.layer_index < net.spec_.layers.size())
        << "stage references a missing layer";
    st.in_bits = read_pod<std::int32_t>(is);
    if (net.binary_ && &st != &net.stages_.front()) {
      st.in_enc = core::Encoding::kSignedPM1;
    }
    st.weights_logical = read_tensor<std::int32_t>(is);
    st.weights = core::make_operand(st.weights_logical, w_enc, net.wbits_);
    if (read_pod<std::uint8_t>(is)) {
      st.epilogue.has_bn = true;
      st.epilogue.bn.scale = read_floats(is);
      st.epilogue.bn.bias = read_floats(is);
    }
    st.epilogue.has_relu = read_pod<std::uint8_t>(is) != 0;
    st.epilogue.has_quant = read_pod<std::uint8_t>(is) != 0;
    st.epilogue.quant = read_quant(is);
    if (version >= 3 && stage_has_attention(net.spec_, st)) {
      st.attn_wk_logical = read_tensor<std::int32_t>(is);
      st.attn_wv_logical = read_tensor<std::int32_t>(is);
      st.attn_wo_logical = read_tensor<std::int32_t>(is);
      st.attn_wk = core::make_operand(st.attn_wk_logical, w_enc, net.wbits_);
      st.attn_wv = core::make_operand(st.attn_wv_logical, w_enc, net.wbits_);
      st.attn_wo = core::make_operand(st.attn_wo_logical, w_enc, net.wbits_);
      st.attn_q_quant = read_quant(is);
      st.attn_k_quant = read_quant(is);
      st.attn_v_quant = read_quant(is);
      st.attn_ctx_quant = read_quant(is);
    }
    // Derived fields come from the spec, not the file.
    const TailScan tail = scan_tail(net.spec_, st.layer_index);
    st.absorbed = tail.absorbed;
    st.pool = tail.pool;
  }

  const auto nquant = read_pod<std::uint64_t>(is);
  APNN_CHECK(nquant < (1u << 16)) << "implausible quant map size";
  for (std::uint64_t i = 0; i < nquant; ++i) {
    const auto li = read_pod<std::uint64_t>(is);
    net.standalone_quant_[li] = read_quant(is);
  }
  return net;
}

}  // namespace apnn::nn

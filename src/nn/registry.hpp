// Multi-model registry behind the gateway: loads serialized networks
// (nn/serialize.hpp, v2 conv-only or v3 attention/bucketed) into per-model
// InferenceServer pools and routes requests by model id.
//
// Co-residency without oversubscription: a machine serving M models cannot
// give each model's server the full hardware width — M servers each sized
// for the whole machine would run M× more kernel threads than cores, the
// exact topology bug DESIGN.md §10 removed for replicas within one server.
// The registry therefore resolves each model's topology through
// InferenceServer::derive_topology against a per-model thread budget of
// hw_threads / expected_models (floor 1), then passes the resolved
// replicas × slice_threads explicitly, so the sum across co-resident models
// stays within the machine and the tuning-cache fingerprint carries the
// slice width the sessions actually execute with.
//
// Hot lifecycle: load/unload/reload swap a shared_ptr<Entry> under a small
// lock; in-flight infer() calls hold a snapshot of the entry they routed
// to, so a swapped-out entry keeps serving its in-flight requests and is
// destroyed — draining its InferenceServer — only when the last holder
// releases it. Traffic on *other* models never crosses the lock for more
// than the map lookup, so reloading model A drops zero requests on model B
// (tests/test_gateway.cpp pins this; the CI gateway smoke drills it over
// TCP).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/autotune.hpp"
#include "src/nn/protocol.hpp"
#include "src/nn/server.hpp"

namespace apnn::nn::gw {

/// One model's serving configuration (an ini section, or admin-op fields).
struct ModelConfig {
  std::string id;
  std::string path;  ///< v2-serialized network file (nn/serialize.hpp)

  std::int64_t max_batch = 8;
  /// 0 = derive via derive_topology against the registry's per-model budget.
  int replicas = 0;
  int slice_threads = 0;
  std::int64_t max_queue = 0;          ///< 0 = server default
  std::string admission = "block";     ///< block | reject | degrade
  std::int64_t batch_window_us = 500;  ///< micro-batch formation window

  bool autotune = false;
  std::string cache_path;  ///< optional persistent TuningCache
};

/// Top-level gateway configuration (the ini file's unsectioned keys plus
/// one ModelConfig per [model <id>] section).
struct GatewayConfig {
  int port = 0;  ///< 0 = ephemeral (the bound port is printed/exported)
  std::size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  std::string device = "3090";  ///< 3090 | a100
  std::vector<ModelConfig> models;
};

/// Parses the gateway ini dialect:
///
///   # comment (';' also starts one); blank lines ignored
///   port = 7070
///   [model mini]
///   path = models/mini.apnn
///   max_batch = 8
///
/// Unsectioned keys configure the gateway; each `[model <id>]` section
/// opens a ModelConfig. Unknown keys and malformed lines throw apnn::Error
/// with the line number — a typo'd knob must not silently become a default.
GatewayConfig parse_gateway_config(const std::string& text);

/// Reads `path` and parses it. Throws apnn::Error on I/O failure.
GatewayConfig load_gateway_config(const std::string& path);

/// Thread-safe model table: id -> loaded network + its serving pool.
class ModelRegistry {
 public:
  /// `expected_models` sizes the per-model thread budget (see the header
  /// comment); pass the config's model count. Loading more models than
  /// expected is allowed — they just share budgets sized for fewer.
  ModelRegistry(const tcsim::DeviceSpec& dev, std::size_t expected_models,
                unsigned hw_threads = 0);  ///< 0 = hardware_concurrency()
  /// Unloads every model (each server drains its queue before dying).
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads `cfg.path` and starts its serving pool. Throws
  /// wire::RemoteError(kModelLoadFailed) when the file cannot be read or
  /// the network is not calibrated, and kInternal on a duplicate id.
  void load(const ModelConfig& cfg);

  /// Removes the model from routing. Requests already inside its server
  /// finish; the pool drains and dies when the last in-flight reference
  /// releases. Throws wire::RemoteError(kUnknownModel) on a miss.
  void unload(const std::string& id);

  /// Rebuilds the model from its configured file (picking up a rewritten
  /// network) and swaps it into routing with a bumped generation. The old
  /// pool serves its in-flight requests to completion; requests admitted
  /// after the swap land on the new pool. Other models are untouched.
  void reload(const std::string& id);

  /// Routes one sample to `id`'s pool. `seq_len` is the wire-level
  /// variable-length declaration: 0 means the sample must match the model's
  /// input dims exactly (even for a dynamic-shape model); nonzero means
  /// "this is a seq_len-token batch" and is only legal for a model with
  /// sequence buckets (kMalformedFrame otherwise). Throws
  /// wire::RemoteError(kUnknownModel) when no such model is routed, and
  /// ServerError (the gateway maps its kind onto the wire) on serving
  /// failures.
  Tensor<std::int32_t> infer(const std::string& id,
                             const Tensor<std::int32_t>& sample_u8,
                             InferenceServer::Deadline deadline,
                             std::int64_t seq_len = 0);

  /// Expected input dims + classes per routed model, in load order.
  std::vector<wire::ModelDescriptor> list() const;

  /// One model's serving stats snapshot, with identity attached.
  struct ModelStats {
    std::string id;
    std::uint32_t generation = 0;
    int replicas = 0;
    int slice_threads = 0;
    InferenceServer::Stats stats;
  };
  std::vector<ModelStats> stats() const;

  std::size_t size() const;

 private:
  /// A loaded model. Member order is destruction order in reverse: the
  /// server dies first (drains, joins its replicas), then the network it
  /// reads, then the tuning cache its sessions may still consult while
  /// draining.
  struct Entry {
    ModelConfig cfg;
    std::uint32_t generation = 0;
    ActShape input;
    std::uint32_t classes = 0;
    /// Largest sequence bucket (0 = shape-static model).
    std::int64_t max_seq_bucket = 0;
    std::unique_ptr<core::TuningCache> cache;
    std::unique_ptr<ApnnNetwork> net;
    std::unique_ptr<InferenceServer> server;
  };

  std::shared_ptr<Entry> find(const std::string& id) const;
  /// Builds a ready-to-route entry (file load, calibrated check, topology
  /// resolution, server start). Called outside mu_ — compilation is slow.
  std::shared_ptr<Entry> make_entry(ModelConfig cfg,
                                    std::uint32_t generation) const;

  const tcsim::DeviceSpec& dev_;
  const unsigned hw_threads_;
  const std::size_t expected_models_;

  mutable std::mutex mu_;
  /// Insertion-ordered so list()/stats() are stable for operators.
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> models_;
  std::uint32_t next_generation_ = 1;
};

}  // namespace apnn::nn::gw

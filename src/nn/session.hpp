// Compiled network execution: InferenceSession (§5 network-level designs as
// a compile-once / run-many pipeline).
//
// ApnnNetwork::forward() used to interpret the layer list on every call:
// rebuild the stage map, keep every layer's activation alive for the whole
// pass, run residual adds / standalone ReLU / pool / quantize as serial
// dense scalar loops, and round-trip packed planes through dense codes on
// the linear path. An InferenceSession compiles the network once into an
// ExecutionPlan:
//
//  * resolved stage/tail structure — one step list, no per-call spec walk;
//  * buffer-lifetime analysis — every intermediate value gets a slot in a
//    reusable parallel::ActivationSlab (liveness-based slot reuse), and the
//    apconv/apmm kernels write straight into the slab (y_out / packed_out),
//    so steady-state forward passes perform zero heap allocations;
//  * pre-resolved glue ops — residual add, standalone ReLU / pool /
//    quantize, packing and linear-operand assembly run as word-granular
//    blocked kernels farmed over the thread pool, operating directly on the
//    packed/dense slab buffers (no to_dense copy churn, no packed -> dense
//    recompose round trip on the linear path).
//
// The plan is batch-agnostic: per-batch conv geometries and tiles are
// resolved lazily and cached, so one session serves any request size (the
// dynamic-batching nn::InferenceServer relies on this). Results are
// bit-exact with ApnnNetwork::forward_reference().
//
// Dynamic sequence lengths (ModelSpec::seq_buckets) compile a plan *family*:
// one plan per bucket, sharing the network's weights and a single
// session-owned slab sized to the largest plan's slot count. run() picks the
// smallest bucket that fits the request's token count and zero-pads up to
// it, so serving mixed-length attention traffic never recompiles.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/autotune.hpp"
#include "src/nn/apnn_network.hpp"
#include "src/parallel/slab.hpp"
#include "src/tcsim/device_spec.hpp"
#include "src/tcsim/trace.hpp"

namespace apnn::nn {

/// Compile-time behavior of an InferenceSession.
struct SessionOptions {
  /// Empirical plan-time autotuning (core::Autotuner): per-stage kernel
  /// geometries are measured on the real operand shapes instead of trusting
  /// the §4.3.2 heuristic. Off by default — tuning costs a burst of
  /// measurement runs per (stage, batch) unless `cache` already holds the
  /// winners.
  bool autotune = false;

  /// Optional persistent tuning cache, shared across sessions/processes via
  /// TuningCache::{load,save}_file. Non-owning; must outlive the session.
  /// When null and autotune is on, the session keeps a private cache (warm
  /// within the session only).
  core::TuningCache* cache = nullptr;

  /// When > 0 (and autotune is on), the constructor eagerly resolves — and
  /// tunes — this batch size, so the first run() at that size pays no
  /// tuning latency. Other batch sizes tune lazily on first use.
  std::int64_t tune_batch = 0;

  core::AutotuneOptions tuner;

  /// Pool every kernel and glue loop of this session runs on; nullptr =
  /// ThreadPool::global(). Non-owning — must outlive the session. The
  /// replicated InferenceServer gives each replica's session a private pool
  /// slice so N replicas never oversubscribe the global pool N×; autotune
  /// measurements run on the same pool so tuned winners reflect the slice
  /// width the session actually executes with.
  ThreadPool* pool = nullptr;
};

class InferenceSession {
 public:
  /// Compiles `net` (must be calibrated) for `dev`. The network must
  /// outlive the session; recompile after re-calibrating.
  InferenceSession(const ApnnNetwork& net, const tcsim::DeviceSpec& dev,
                   const SessionOptions& opts = {});
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Runs one forward pass. `input_u8` is NHWC uint8 codes {B, H, W, C};
  /// logits land in `*logits` ({B, classes}), which is reshaped in place so
  /// a reused tensor costs no allocation. Appends kernel launch records to
  /// `prof` when given (the steady-state path skips record-keeping
  /// entirely when it is null). Not thread-safe: one run at a time per
  /// session. Distinct sessions over the same (const) network may run
  /// concurrently — they share only their execution pool (the global pool,
  /// or per-session slices via SessionOptions::pool) and, when configured, a
  /// TuningCache, both of which tolerate concurrent callers; the replicated
  /// InferenceServer relies on this.
  void run(const Tensor<std::int32_t>& input_u8, Tensor<std::int32_t>* logits,
           tcsim::SequenceProfile* prof = nullptr);

  /// Convenience overload returning the logits by value.
  Tensor<std::int32_t> run(const Tensor<std::int32_t>& input_u8,
                           tcsim::SequenceProfile* prof = nullptr);

  const ApnnNetwork& network() const { return net_; }

  /// Per-sample admission check for serving front-ends: `sample` must be
  /// {H, W, C} or {1, H, W, C} matching `shape`, with every value a valid
  /// 8-bit input code in [0, 255]. Throws apnn::Error naming the offending
  /// dimension or value. Validating at admission keeps one bad sample from
  /// poisoning the micro-batch it would have joined: the error surfaces in
  /// the offending caller's infer(), never inside a shared batched run.
  static void validate_sample(const ActShape& shape,
                              const Tensor<std::int32_t>& sample);

  /// Bucketed-sequence variant: with `seq_buckets` non-empty (sorted
  /// ascending, as ModelSpec carries them) the sample's leading dimension is
  /// a token count and may be any value in [1, seq_buckets.back()]; the
  /// trailing dims must still match {shape.w, shape.c}. With empty buckets
  /// this forwards to the fixed-shape overload.
  static void validate_sample(const ActShape& shape,
                              const std::vector<std::int64_t>& seq_buckets,
                              const Tensor<std::int32_t>& sample);

  /// Opaque compiled plan (defined in session.cpp).
  struct Plan;

  /// The session-owned activation slab (footprint inspection).
  const parallel::ActivationSlab& slab() const;

  /// Compiled plan shape of the *default* plan (the bucket serving the
  /// spec's calibration length; the only plan for fixed-shape models):
  /// executable steps and distinct slab slots. The slot count is below the
  /// value count whenever liveness found reuse.
  std::size_t step_count() const;
  std::size_t slot_count() const;

  /// Number of compiled plans (1 for fixed-shape models, one per sequence
  /// bucket otherwise).
  std::size_t plan_count() const;

  /// Candidate measurement executions this session's autotuner has
  /// performed (0 with autotuning off, or when every stage resolution hit
  /// the TuningCache — the warm-cache fast path the tests pin).
  std::int64_t tuning_measurements() const;

  /// Resolved per-step kernel choices for `batch` (tuning it first if that
  /// batch has not been seen): one entry per plan step; steps that are not
  /// conv/linear stages carry default-constructed entries.
  std::vector<core::TunedKernel> stage_kernels(std::int64_t batch);

 private:
  /// The plan serving `seq_len` tokens: smallest bucket >= seq_len. Throws
  /// when seq_len exceeds the largest bucket.
  Plan& plan_for(std::int64_t seq_len) const;
  Plan& default_plan() const;

  /// Executes one compiled plan; `input` rows must match the plan's bucket.
  void run_plan(Plan& plan, const Tensor<std::int32_t>& input,
                Tensor<std::int32_t>* logits, tcsim::SequenceProfile* prof);

  const ApnnNetwork& net_;
  tcsim::DeviceSpec dev_;
  SessionOptions opts_;
  std::unique_ptr<core::TuningCache> owned_cache_;
  std::unique_ptr<core::Autotuner> tuner_;
  /// Plan family, ascending by bucket (a single entry for fixed shapes).
  std::vector<std::unique_ptr<Plan>> plans_;
  /// One slab shared by every plan (slots sized to the largest plan).
  parallel::ActivationSlab slab_;
  /// Reusable zero-padded staging input for sub-bucket requests.
  Tensor<std::int32_t> padded_;
};

}  // namespace apnn::nn

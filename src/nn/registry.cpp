#include "src/nn/registry.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/common/check.hpp"
#include "src/common/strings.hpp"
#include "src/nn/serialize.hpp"

namespace apnn::nn::gw {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::int64_t parse_int(const std::string& v, int lineno, const char* key) {
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  APNN_CHECK(end == v.c_str() + v.size() && !v.empty())
      << "config line " << lineno << ": " << key << " = '" << v
      << "' is not an integer";
  return x;
}

bool parse_bool(const std::string& v, int lineno, const char* key) {
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error(strf("config line %d: %s = '%s' is not a boolean", lineno, key,
                   v.c_str()));
}

ServerOptions::Admission admission_for(const std::string& s) {
  if (s == "block") return ServerOptions::Admission::kBlock;
  if (s == "reject") return ServerOptions::Admission::kReject;
  if (s == "degrade") return ServerOptions::Admission::kDegrade;
  throw Error(strf("admission '%s' is not block|reject|degrade", s.c_str()));
}

}  // namespace

GatewayConfig parse_gateway_config(const std::string& text) {
  GatewayConfig cfg;
  ModelConfig* cur = nullptr;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find_first_of("#;");
    std::string line = trim(hash == std::string::npos ? raw
                                                      : raw.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      APNN_CHECK(line.back() == ']')
          << "config line " << lineno << ": unterminated section header";
      const std::string inner = trim(line.substr(1, line.size() - 2));
      APNN_CHECK(inner.rfind("model ", 0) == 0)
          << "config line " << lineno << ": only [model <id>] sections are "
          << "recognized, got [" << inner << "]";
      const std::string id = trim(inner.substr(6));
      APNN_CHECK(!id.empty())
          << "config line " << lineno << ": [model] needs an id";
      for (const ModelConfig& m : cfg.models) {
        APNN_CHECK(m.id != id) << "config line " << lineno
                               << ": duplicate model id '" << id << "'";
      }
      cfg.models.emplace_back();
      cur = &cfg.models.back();
      cur->id = id;
      continue;
    }

    const std::size_t eq = line.find('=');
    APNN_CHECK(eq != std::string::npos)
        << "config line " << lineno << ": expected key = value, got '" << line
        << "'";
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    APNN_CHECK(!key.empty() && !value.empty())
        << "config line " << lineno << ": empty key or value";

    if (cur == nullptr) {
      if (key == "port") {
        const std::int64_t p = parse_int(value, lineno, "port");
        APNN_CHECK(p >= 0 && p <= 65535)
            << "config line " << lineno << ": port " << p << " out of range";
        cfg.port = static_cast<int>(p);
      } else if (key == "max_frame_bytes") {
        const std::int64_t b = parse_int(value, lineno, "max_frame_bytes");
        APNN_CHECK(b >= static_cast<std::int64_t>(wire::kHeaderBytes))
            << "config line " << lineno << ": max_frame_bytes too small";
        cfg.max_frame_bytes = static_cast<std::size_t>(b);
      } else if (key == "device") {
        APNN_CHECK(value == "3090" || value == "a100")
            << "config line " << lineno << ": device must be 3090|a100";
        cfg.device = value;
      } else {
        throw Error(strf("config line %d: unknown gateway key '%s'", lineno,
                         key.c_str()));
      }
      continue;
    }

    if (key == "path") {
      cur->path = value;
    } else if (key == "max_batch") {
      cur->max_batch = parse_int(value, lineno, "max_batch");
      APNN_CHECK(cur->max_batch >= 1)
          << "config line " << lineno << ": max_batch must be >= 1";
    } else if (key == "replicas") {
      cur->replicas = static_cast<int>(parse_int(value, lineno, "replicas"));
      APNN_CHECK(cur->replicas >= 0)
          << "config line " << lineno << ": replicas must be >= 0";
    } else if (key == "slice_threads") {
      cur->slice_threads =
          static_cast<int>(parse_int(value, lineno, "slice_threads"));
      APNN_CHECK(cur->slice_threads >= 0)
          << "config line " << lineno << ": slice_threads must be >= 0";
    } else if (key == "max_queue") {
      cur->max_queue = parse_int(value, lineno, "max_queue");
      APNN_CHECK(cur->max_queue >= 0)
          << "config line " << lineno << ": max_queue must be >= 0";
    } else if (key == "admission") {
      admission_for(value);  // validate here, with the line number
      cur->admission = value;
    } else if (key == "batch_window_us") {
      cur->batch_window_us = parse_int(value, lineno, "batch_window_us");
      APNN_CHECK(cur->batch_window_us >= 0)
          << "config line " << lineno << ": batch_window_us must be >= 0";
    } else if (key == "autotune") {
      cur->autotune = parse_bool(value, lineno, "autotune");
    } else if (key == "cache_path") {
      cur->cache_path = value;
    } else {
      throw Error(
          strf("config line %d: unknown model key '%s'", lineno, key.c_str()));
    }
  }

  for (const ModelConfig& m : cfg.models) {
    APNN_CHECK(!m.path.empty())
        << "config: [model " << m.id << "] has no path";
  }
  return cfg;
}

GatewayConfig load_gateway_config(const std::string& path) {
  std::ifstream in(path);
  APNN_CHECK(in.good()) << "cannot read gateway config " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return parse_gateway_config(text.str());
}

ModelRegistry::ModelRegistry(const tcsim::DeviceSpec& dev,
                             std::size_t expected_models, unsigned hw_threads)
    : dev_(dev),
      hw_threads_(hw_threads != 0 ? hw_threads
                                  : std::thread::hardware_concurrency()),
      expected_models_(expected_models == 0 ? 1 : expected_models) {}

ModelRegistry::~ModelRegistry() {
  // Drop routing first, then drain each pool outside the lock — the same
  // discipline unload() follows, so destruction cannot deadlock with a
  // stats() scrape racing shutdown.
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> dying;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dying.swap(models_);
  }
}

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [mid, entry] : models_) {
    if (mid == id) return entry;
  }
  return nullptr;
}

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::make_entry(
    ModelConfig cfg, std::uint32_t generation) const {
  auto entry = std::make_shared<Entry>();
  entry->cfg = std::move(cfg);
  entry->generation = generation;
  const ModelConfig& c = entry->cfg;
  try {
    entry->net = std::make_unique<ApnnNetwork>(load_network(c.path));
    APNN_CHECK(entry->net->calibrated())
        << c.path << " holds an uncalibrated network — run calibrate() "
        << "before save_network() (apnn_cli export does)";
    entry->input = entry->net->spec().input;
    entry->classes =
        static_cast<std::uint32_t>(entry->net->shapes().back().numel());
    for (const std::int64_t b : entry->net->spec().seq_buckets) {
      entry->max_seq_bucket = std::max(entry->max_seq_bucket, b);
    }

    ServerOptions opts;
    opts.max_batch = c.max_batch;
    opts.batch_window = std::chrono::microseconds(c.batch_window_us);
    opts.max_queue = c.max_queue;
    opts.admission = admission_for(c.admission);
    opts.replicas = c.replicas;
    opts.slice_threads = c.slice_threads;

    // Resolve the topology against this model's share of the machine, not
    // the whole machine: co-resident pools must sum within the hardware.
    const unsigned budget = std::max<unsigned>(
        1, hw_threads_ / static_cast<unsigned>(expected_models_));
    const InferenceServer::Topology topo =
        InferenceServer::derive_topology(opts, budget);
    opts.replicas = topo.replicas;
    opts.slice_threads = topo.slice_threads;

    if (c.autotune) {
      // The cache fingerprint carries the slice width the replica sessions
      // measure on, so it must be built after the topology is resolved.
      entry->cache = std::make_unique<core::TuningCache>(
          static_cast<unsigned>(topo.slice_threads));
      if (!c.cache_path.empty()) {
        entry->cache->load_file(c.cache_path);  // cold tuning on any failure
      }
      opts.session.autotune = true;
      opts.session.cache = entry->cache.get();
    }

    entry->server = std::make_unique<InferenceServer>(*entry->net, dev_, opts);
  } catch (const wire::RemoteError&) {
    throw;
  } catch (const Error& e) {
    throw wire::RemoteError(
        wire::WireError::kModelLoadFailed,
        strf("model '%s' from %s: %s", c.id.c_str(), c.path.c_str(),
             e.what()));
  }
  if (c.autotune && !c.cache_path.empty()) {
    entry->cache->save_file(c.cache_path);  // best-effort persistence
  }
  return entry;
}

void ModelRegistry::load(const ModelConfig& cfg) {
  std::uint32_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [mid, entry] : models_) {
      if (mid == cfg.id) {
        throw wire::RemoteError(
            wire::WireError::kInternal,
            strf("model '%s' is already loaded (reload to replace it)",
                 cfg.id.c_str()));
      }
    }
    generation = next_generation_++;
  }
  // Build outside the lock — compiles replicas, possibly tunes.
  std::shared_ptr<Entry> entry = make_entry(cfg, generation);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [mid, existing] : models_) {
    if (mid == cfg.id) {
      throw wire::RemoteError(
          wire::WireError::kInternal,
          strf("model '%s' was loaded concurrently", cfg.id.c_str()));
    }
  }
  models_.emplace_back(cfg.id, std::move(entry));
}

void ModelRegistry::unload(const std::string& id) {
  std::shared_ptr<Entry> dying;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = models_.begin(); it != models_.end(); ++it) {
      if (it->first == id) {
        dying = std::move(it->second);
        models_.erase(it);
        break;
      }
    }
  }
  if (dying == nullptr) {
    throw wire::RemoteError(wire::WireError::kUnknownModel,
                            strf("no model '%s' to unload", id.c_str()));
  }
  // `dying` drains here (or on the last in-flight infer thread) — outside
  // mu_, so other models' routing never blocks on the drain.
}

void ModelRegistry::reload(const std::string& id) {
  ModelConfig cfg;
  std::uint32_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto* found = static_cast<const std::shared_ptr<Entry>*>(nullptr);
    for (const auto& [mid, entry] : models_) {
      if (mid == id) {
        found = &entry;
        break;
      }
    }
    if (found == nullptr) {
      throw wire::RemoteError(wire::WireError::kUnknownModel,
                              strf("no model '%s' to reload", id.c_str()));
    }
    cfg = (*found)->cfg;
    generation = next_generation_++;
  }
  std::shared_ptr<Entry> fresh = make_entry(std::move(cfg), generation);
  std::shared_ptr<Entry> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [mid, entry] : models_) {
      if (mid == id) {
        old = std::move(entry);
        entry = std::move(fresh);
        break;
      }
    }
  }
  if (old == nullptr) {
    // Unloaded while we were rebuilding; `fresh` drains and dies here.
    throw wire::RemoteError(
        wire::WireError::kUnknownModel,
        strf("model '%s' was unloaded during reload", id.c_str()));
  }
  // `old` keeps serving its in-flight requests and drains on release.
}

Tensor<std::int32_t> ModelRegistry::infer(
    const std::string& id, const Tensor<std::int32_t>& sample_u8,
    InferenceServer::Deadline deadline, std::int64_t seq_len) {
  // Snapshot the entry: a concurrent unload/reload cannot destroy the pool
  // under this request, and the route costs one lock'd list walk.
  std::shared_ptr<Entry> entry = find(id);
  if (entry == nullptr) {
    throw wire::RemoteError(wire::WireError::kUnknownModel,
                            strf("unknown model '%s'", id.c_str()));
  }
  const std::int64_t sample_h =
      sample_u8.rank() == 4 ? sample_u8.dim(1) : sample_u8.dim(0);
  if (seq_len > 0) {
    if (entry->max_seq_bucket == 0) {
      throw wire::RemoteError(
          wire::WireError::kMalformedFrame,
          strf("model '%s' is shape-static; seq_len is not supported",
               id.c_str()));
    }
    if (seq_len != sample_h) {
      throw wire::RemoteError(
          wire::WireError::kMalformedFrame,
          strf("seq_len %lld does not match the sample's %lld tokens",
               static_cast<long long>(seq_len),
               static_cast<long long>(sample_h)));
    }
  } else if (entry->max_seq_bucket > 0 && sample_h != entry->input.h) {
    // No seq_len declaration: even a dynamic-shape model demands the exact
    // calibration shape, so a v1-style client can never pad wrong silently.
    throw wire::RemoteError(
        wire::WireError::kMalformedFrame,
        strf("model '%s' expects %lld tokens without seq_len; got %lld",
             id.c_str(), static_cast<long long>(entry->input.h),
             static_cast<long long>(sample_h)));
  }
  return entry->server->infer(sample_u8, deadline);
}

std::vector<wire::ModelDescriptor> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<wire::ModelDescriptor> out;
  out.reserve(models_.size());
  for (const auto& [mid, entry] : models_) {
    wire::ModelDescriptor d;
    d.id = mid;
    d.h = static_cast<std::uint16_t>(entry->input.h);
    d.w = static_cast<std::uint16_t>(entry->input.w);
    d.c = static_cast<std::uint16_t>(entry->input.c);
    d.classes = entry->classes;
    d.generation = entry->generation;
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<ModelRegistry::ModelStats> ModelRegistry::stats() const {
  // Snapshot the entries, then scrape outside mu_ — each server's stats()
  // takes that server's own lock, and a slow scrape must not stall routing.
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = models_;
  }
  std::vector<ModelStats> out;
  out.reserve(snapshot.size());
  for (const auto& [mid, entry] : snapshot) {
    ModelStats s;
    s.id = mid;
    s.generation = entry->generation;
    s.replicas = entry->server->replicas();
    s.slice_threads = entry->server->slice_threads();
    s.stats = entry->server->stats();
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace apnn::nn::gw

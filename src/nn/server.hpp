// Dynamic-batching serving front-end over an InferenceSession.
//
// An InferenceServer accepts concurrent single-sample requests (blocking
// infer() calls from any number of client threads) and micro-batches them
// into session runs: a dispatcher thread takes the first queued request,
// waits up to `batch_window` for more to arrive (up to `max_batch`), gathers
// the samples into one batch tensor, runs the compiled session once, and
// scatters the logits back to the waiting clients. Because one batched
// forward amortizes kernel launches, operand staging, and the packed-domain
// glue across requests, throughput under concurrent load approaches the
// session's batch throughput while isolated requests still see at most one
// batch-window of added latency.
//
// Batching is exact: the session's logits are bit-identical whether a
// sample runs alone or inside a batch, so serving results never depend on
// traffic (tests/test_session.cpp pins this).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "src/nn/session.hpp"

namespace apnn::nn {

struct ServerOptions {
  /// Largest batch one session run may serve.
  std::int64_t max_batch = 8;
  /// How long the dispatcher holds an open batch waiting for more requests.
  std::chrono::microseconds batch_window{500};
};

class InferenceServer {
 public:
  /// Compiles a session for `net` (must be calibrated and outlive the
  /// server) and starts the dispatcher thread.
  InferenceServer(const ApnnNetwork& net, const tcsim::DeviceSpec& dev,
                  ServerOptions opts = {});
  /// Drains queued requests, then stops the dispatcher.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Serves one sample — HWC uint8 codes {H, W, C} (or {1, H, W, C}) —
  /// blocking until its micro-batch has run. Returns the logits {classes}.
  /// Thread-safe; any number of callers may be in flight.
  Tensor<std::int32_t> infer(const Tensor<std::int32_t>& sample_u8);

  struct Stats {
    std::int64_t requests = 0;  ///< samples served
    std::int64_t batches = 0;   ///< session runs dispatched
    std::int64_t max_batch = 0; ///< largest micro-batch formed
  };
  Stats stats() const;

 private:
  struct Request {
    const Tensor<std::int32_t>* sample = nullptr;
    Tensor<std::int32_t> logits;
    std::exception_ptr error;
    bool done = false;
  };

  void dispatch_loop();

  InferenceSession session_;
  const ActShape input_shape_;
  const ServerOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< dispatcher wakeups
  std::condition_variable done_cv_;   ///< client wakeups
  std::deque<Request*> queue_;
  bool stop_ = false;
  Stats stats_;

  // Dispatcher-owned, reused across batches (steady-state zero allocation).
  Tensor<std::int32_t> batch_input_;
  Tensor<std::int32_t> batch_logits_;

  std::thread dispatcher_;
};

}  // namespace apnn::nn

// Replicated dynamic-batching serving front-end over compiled
// InferenceSessions, with a deadline-aware request lifecycle and
// self-healing replicas.
//
// An InferenceServer accepts concurrent single-sample requests (blocking
// infer() calls from any number of client threads) and micro-batches them
// into session runs. Requests pass a bounded admission queue (backpressure:
// block until space frees, reject immediately, or degrade — see
// ServerOptions::admission) and are drained by N dispatcher replicas. Each
// replica owns a compiled InferenceSession — its own ActivationSlab, batch
// gather/scatter tensors, and a private ThreadPool slice of the hardware
// (DESIGN.md §10), so replicas never share mutable kernel state and never
// oversubscribe a global pool N×; the only cross-replica state is the
// admission queue, the WorkStealGroup that lets idle slices absorb a
// sibling's queued loop chunks, the (thread-safe) TuningCache when
// autotuning is on, and the const network weights.
//
// Request lifecycle (DESIGN.md §9 has the full state machine):
//
//   admitted -> queued -> batched -> done(logits)
//                              \-> done(ServerError)
//
// Every way a request can fail is a typed ServerError whose ErrorKind the
// Stats count per kind: the sample is malformed (kInvalidSample, failed at
// admission so it never joins a batch), the queue is full under kReject
// (kQueueFull), the server is stopping (kShuttingDown), the request's
// deadline expired (kDeadlineExceeded — checked at admission, while blocked
// on backpressure, and at dequeue before the request occupies a batch
// slot; batch formation is never held open past the earliest deadline in
// the queue), or the replica holding the request died (kReplicaFailed — a
// dispatcher never strands its dequeued clients).
//
// Replica self-healing: a monitor thread watches every dispatcher. A
// replica whose cycle throws (any escaped exception) fails its in-flight
// requests with kReplicaFailed and exits; a replica whose dispatch cycle
// exceeds ServerOptions::stuck_threshold has its in-flight requests failed
// immediately (clients unblock long before the stall resolves) and is
// retired when the stalled cycle finally returns. Either way the monitor
// joins the dead thread, recompiles the replica's session and restarts it —
// until the replica has crashed more than max_replica_restarts times, at
// which point it is quarantined. Per-replica health (kHealthy, kRestarting,
// kQuarantined) is exported in Stats; when every replica is quarantined the
// server fails queued and future requests with kReplicaFailed instead of
// stranding them.
//
// Graceful degradation: Admission::kDegrade never blocks a new caller.
// While the queue sits above a high-water mark the server is "degraded":
// dispatchers shrink the batch window to degrade_window (default 0 — drain
// at full tilt), and when the queue is hard-full the oldest queued request
// is shed (failed kQueueFull) to admit the newest — drop-head, because the
// oldest request is the one most likely already past its caller's patience.
// Degradation exits once the queue falls back under half the high-water
// mark.
//
// Batching is exact: the session's logits are bit-identical whether a
// sample runs alone or inside any batch on any replica, so serving results
// never depend on traffic (tests/test_server.cpp pins this; the fault
// drills in tests/test_chaos.cpp pin that injected crashes never corrupt a
// non-injected response).
//
// Dynamic-shape models (ModelSpec::seq_buckets nonempty) add bucketed batch
// formation: each request's token count is resolved at admission to the
// smallest covering sequence bucket, and a micro-batch only ever contains
// requests of one bucket — the dispatcher takes the head request's bucket
// and gathers matching requests from anywhere in the queue (FIFO within the
// bucket), zero-padding each sample up to the bucket length. The session's
// compiled plan family serves every bucket without recompiling, so mixed
// sequence lengths cost one plan lookup per batch, never a compile.
//
// Shutdown drains: ~InferenceServer stops admission (late infer() callers
// get kShuttingDown), lets the replicas finish every queued request, joins
// the monitor and the dispatchers, fails any request left queued when no
// dispatcher survived, then waits for the last in-flight client to leave.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/nn/session.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn::nn {

/// Why a request failed. Every failure path out of InferenceServer::infer()
/// carries exactly one of these (Stats::error_counts indexes by it).
enum class ErrorKind {
  kDeadlineExceeded = 0,  ///< the request's deadline passed before dispatch
  kQueueFull,             ///< rejected or shed by admission control
  kShuttingDown,          ///< admission after shutdown began
  kInvalidSample,         ///< malformed sample (failed admission validation)
  kReplicaFailed,         ///< the dispatcher holding the request died
};
inline constexpr std::size_t kErrorKindCount = 5;
const char* error_kind_name(ErrorKind kind);

/// Typed serving failure. Still an apnn::Error, so callers that only care
/// that a request failed need no new catch; callers that route on the
/// failure (retry vs shed vs alert) switch on kind().
class ServerError : public Error {
 public:
  ServerError(ErrorKind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Dispatcher replica health as exported in Stats.
enum class ReplicaHealth {
  kHealthy = 0,  ///< dispatching (or idle, waiting for work)
  kRestarting,   ///< crashed/stuck; the monitor is recompiling it
  kQuarantined,  ///< crashed too often; permanently out of rotation
};
const char* replica_health_name(ReplicaHealth health);

struct ServerOptions {
  /// Largest batch one session run may serve.
  std::int64_t max_batch = 8;
  /// How long a dispatcher holds an open batch waiting for more requests.
  /// Never held past the earliest deadline among the queued requests.
  std::chrono::microseconds batch_window{500};

  /// Dispatcher replicas, each owning a compiled InferenceSession and a
  /// private ThreadPool slice. 0 derives jointly with `slice_threads` (see
  /// derive_topology) so replicas × slice never exceeds the hardware width.
  int replicas = 0;

  /// Logical width (participating dispatcher + workers) of each replica's
  /// private kernel pool. 0 derives jointly with `replicas` so the total
  /// replicas × slice_threads stays within hardware_concurrency() — the fix
  /// for the old topology where N replicas shared one hardware-wide global
  /// pool and a busy server ran ~N× more runnable threads than cores.
  int slice_threads = 0;

  /// Pin each replica's slice (dispatcher + pool workers) to a distinct
  /// contiguous CPU range via pthread_setaffinity (Linux; elsewhere the
  /// flag is accepted and ignored). Off by default: pinning helps when the
  /// server owns the machine and hurts when it shares it.
  bool pin_threads = false;

  /// Let idle slice workers steal queued loop chunks from sibling replicas
  /// (bounded work stealing, DESIGN.md §10). Keeps the hardware busy when
  /// load is imbalanced — one replica running a big batch while others sit
  /// idle — without re-introducing oversubscription: a stolen chunk runs on
  /// a thread that would otherwise sleep.
  bool work_stealing = true;

  /// Admission-queue bound (queued requests, not counting the batches
  /// already inside the replicas). 0 derives as replicas * max_batch * 4.
  std::int64_t max_queue = 0;

  /// What infer() does when the admission queue is full.
  enum class Admission {
    kBlock,    ///< wait until a dispatcher frees space (backpressure)
    kReject,   ///< throw kQueueFull immediately (load shedding)
    kDegrade,  ///< shed the oldest queued request to admit the newest, and
               ///< shrink the batch window while over the high-water mark
  };
  Admission admission = Admission::kBlock;

  /// kDegrade: queue depth at/above which the server enters degraded mode
  /// (shrunk batch window). 0 derives as max_queue / 2 (at least 1).
  /// Degradation exits when the depth falls to high_water / 2.
  std::int64_t degrade_high_water = 0;
  /// kDegrade: the batch window used while degraded. The default (0) makes
  /// dispatchers take whatever is queued immediately — larger effective
  /// batches purely from backlog, no added waiting.
  std::chrono::microseconds degrade_window{0};

  /// Self-healing watchdog: a dispatch cycle still running after this long
  /// is declared stuck — its requests fail with kReplicaFailed and the
  /// replica is restarted once the stalled cycle returns. Generous default:
  /// a healthy micro-batch runs in milliseconds even under sanitizers.
  std::chrono::milliseconds stuck_threshold{10000};
  /// Crashes (escaped dispatch exceptions or stuck declarations) a replica
  /// may accumulate before it is quarantined instead of restarted.
  int max_replica_restarts = 2;

  /// Compile options applied to every replica's session. When
  /// `session.autotune` is set and `session.cache` is null the server owns
  /// one TuningCache shared across replicas (first replica measures, the
  /// rest compile warm); when `session.tune_batch` is 0 it defaults to
  /// max_batch so the full-batch plan is tuned before serving starts.
  /// Replica restarts recompile with the same options, so a restart with a
  /// warm cache never re-measures.
  SessionOptions session;
};

class InferenceServer {
 public:
  /// A request deadline: a steady-clock instant after which the server
  /// stops spending resources on the request. kNoDeadline means "wait
  /// however long serving takes".
  using Deadline = std::chrono::steady_clock::time_point;
  static constexpr Deadline kNoDeadline = Deadline::max();

  /// Compiles one session per replica for `net` (must be calibrated and
  /// outlive the server) and starts the dispatcher threads plus the health
  /// monitor. Replicas are compiled sequentially so a shared TuningCache is
  /// warm from the second replica on.
  InferenceServer(const ApnnNetwork& net, const tcsim::DeviceSpec& dev,
                  ServerOptions opts = {});
  /// Stops admission, drains queued requests, then stops the dispatchers.
  ~InferenceServer();

  /// Graceful drain: stops admission (every later infer() call throws
  /// kShuttingDown), lets the replicas finish all queued requests, and
  /// joins the monitor and dispatcher threads. Requests still queued after
  /// the join (possible only when every dispatcher died) fail with
  /// kShuttingDown rather than strand. Idempotent; the destructor calls it.
  /// Must not race itself — call from one controlling thread (concurrent
  /// infer() calls are fine).
  void shutdown();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Serves one sample — HWC uint8 codes {H, W, C} (or {1, H, W, C}) —
  /// blocking until its micro-batch has run. For dynamic-shape models the
  /// sample's H (token count) may be any length in [1, largest bucket];
  /// it batches with same-bucket requests only. Returns the logits
  /// {classes}.
  /// Thread-safe; any number of callers may be in flight. Throws ServerError
  /// on every failure path (see ErrorKind); the optional deadline bounds
  /// admission, backpressure waiting, and queue residency — a request that
  /// reaches a batch slot before its deadline completes normally.
  Tensor<std::int32_t> infer(const Tensor<std::int32_t>& sample_u8,
                             Deadline deadline = kNoDeadline);
  /// Deadline convenience: now() + budget.
  Tensor<std::int32_t> infer(const Tensor<std::int32_t>& sample_u8,
                             std::chrono::milliseconds budget);

  struct Stats {
    std::int64_t requests = 0;   ///< samples served successfully
    std::int64_t batches = 0;    ///< session runs dispatched (all replicas)
    std::int64_t max_batch = 0;  ///< largest micro-batch formed
    std::int64_t rejected = 0;   ///< admissions refused (kReject only)

    std::int64_t queue_depth = 0;       ///< queued right now
    std::int64_t peak_queue_depth = 0;  ///< high-water of queue_depth

    /// Failed requests by ErrorKind (shed requests count under kQueueFull).
    std::array<std::int64_t, kErrorKindCount> error_counts{};
    std::int64_t errors(ErrorKind k) const {
      return error_counts[static_cast<std::size_t>(k)];
    }

    /// Graceful degradation (Admission::kDegrade only).
    bool degraded = false;            ///< over the high-water mark right now
    std::int64_t degrade_entries = 0; ///< times degraded mode was entered
    std::int64_t shed = 0;            ///< oldest-first drop-head victims

    /// Self-healing.
    std::int64_t replica_restarts = 0;  ///< successful monitor restarts
    std::vector<ReplicaHealth> replica_health;  ///< index = replica

    /// Latency accounting over completed requests (admission to response).
    double total_latency_ms = 0.0;  ///< sum; mean = total / requests
    double max_latency_ms = 0.0;
    /// Wall time spent inside dispatch cycles (gather + run + scatter),
    /// summed across replicas; batches/total_batch_ms is the service rate.
    double total_batch_ms = 0.0;

    /// Per-replica dispatch counts (index = replica); the spread shows
    /// whether load actually fans out across the pool.
    std::vector<std::int64_t> replica_batches;
    std::vector<std::int64_t> replica_requests;
  };
  Stats stats() const;

  /// Resolved replica count (after the hardware-width derivation).
  int replicas() const { return static_cast<int>(replicas_.size()); }
  /// Resolved per-replica pool width (after derive_topology).
  int slice_threads() const { return opts_.slice_threads; }

  /// Resolved execution topology: how many replicas, each how wide.
  struct Topology {
    int replicas = 1;
    int slice_threads = 1;
  };
  /// The joint replica-count / slice-width derivation, exposed for tests
  /// and the CLI (which needs the slice width before constructing a
  /// TuningCache). Rules, with hw = max(1, hw_threads):
  ///   both 0        -> replicas = clamp(hw/2, 1, 8), slice = hw/replicas
  ///   replicas set  -> slice = max(1, hw/replicas)
  ///   slice set     -> replicas = clamp(hw/slice, 1, 8)
  ///   both set      -> taken as given (the caller opted out of the guard)
  /// Every derived combination satisfies replicas * slice <= hw (explicit
  /// settings may exceed it — oversubscription becomes opt-in, not the
  /// default).
  static Topology derive_topology(const ServerOptions& opts,
                                  unsigned hw_threads);

  /// Measurement runs the pool performed, total and per replica. With a
  /// warm shared cache every entry is 0; cold, only replica 0's is not.
  std::int64_t tuning_measurements() const;
  std::int64_t replica_tuning_measurements(int replica) const;

 private:
  /// One in-flight request. Shared between the admitting client, the queue,
  /// the dispatching replica and the monitor: any of them may complete it
  /// (under mu_, exactly once — `done` guards), and shared ownership means
  /// a request failed early (deadline, stuck replica) cannot dangle under a
  /// dispatcher that still holds it.
  struct Request {
    const Tensor<std::int32_t>* sample = nullptr;  ///< valid while queued
    Tensor<std::int32_t> logits;
    /// Failure outcome as plain data, not an exception_ptr: the ServerError
    /// is constructed in the *caller's* thread at rethrow time. A shared
    /// exception object's lifetime would otherwise end on whichever thread
    /// drops the last Request reference — a cross-thread free that TSan
    /// cannot see through libsupc++'s uninstrumented refcount.
    bool failed = false;
    ErrorKind error_kind = ErrorKind::kReplicaFailed;
    std::string error_message;
    bool done = false;
    Deadline deadline = kNoDeadline;
    std::chrono::steady_clock::time_point enqueued;
    /// Dynamic-shape models only: the sample's token count and the sequence
    /// bucket it was resolved to at admission (samples of one bucket batch
    /// together; the gather zero-pads seq up to bucket). Both 0 when the
    /// model is shape-static.
    std::int64_t seq = 0;
    std::int64_t bucket = 0;
  };
  using RequestPtr = std::shared_ptr<Request>;

  /// One dispatcher worker: session + reusable gather/scatter tensors
  /// (steady-state zero allocation, per replica), plus the health state the
  /// monitor drives (all guarded by mu_ except the running session).
  struct Replica {
    /// Private kernel pool slice. Declared before `session` so the session
    /// (which runs loops on the pool) is destroyed first; the pool itself
    /// deregisters from steal_group_ (declared before replicas_) on
    /// destruction. Never reassigned after construction, so the monitor may
    /// read `pool.get()` for a restart recompile without the lock.
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<InferenceSession> session;
    Tensor<std::int32_t> batch_input;
    Tensor<std::int32_t> batch_logits;
    std::thread thread;

    ReplicaHealth health = ReplicaHealth::kHealthy;
    std::vector<RequestPtr> in_flight;  ///< current batch (dequeued)
    bool in_cycle = false;
    std::chrono::steady_clock::time_point cycle_start;
    bool declared_stuck = false;  ///< monitor verdict; thread must retire
    bool exited = false;          ///< thread returned; monitor must join
    int crashes = 0;
  };

  /// opts_.session with `pool` pointed at replica_index's private slice —
  /// used for the initial compiles and every monitor restart recompile, so
  /// a restarted replica always lands back on its own pool.
  SessionOptions session_options_for(std::size_t replica_index) const;

  void dispatch_loop(std::size_t replica_index);
  bool dispatch_cycle(std::size_t replica_index,
                      std::vector<RequestPtr>& batch);
  void monitor_loop();

  // All helpers below require mu_ held.
  [[noreturn]] void fail_caller_locked(ErrorKind kind, const std::string& msg);
  void complete_with_error_locked(const RequestPtr& req, ErrorKind kind,
                                  const std::string& msg);
  void expire_queued_locked(std::chrono::steady_clock::time_point now);
  void shed_oldest_locked();
  std::chrono::microseconds effective_window_locked() const;
  Deadline earliest_queued_deadline_locked() const;
  void quarantine_locked(std::size_t replica_index);

  const ApnnNetwork& net_;  ///< for replica recompiles on restart
  const tcsim::DeviceSpec dev_;
  const ActShape input_shape_;
  /// Ascending sequence buckets (empty = shape-static model). Mirrors the
  /// session's plan family so admission can resolve a request's bucket
  /// without touching a replica.
  std::vector<std::int64_t> seq_buckets_;
  ServerOptions opts_;  ///< resolved: replicas/max_queue/tune_batch filled in
  std::unique_ptr<core::TuningCache> owned_cache_;  ///< see ServerOptions
  /// Stealing membership for the replica pools. Declared before replicas_
  /// so it outlives every pool (a destructing pool deregisters itself).
  WorkStealGroup steal_group_;
  std::vector<Replica> replicas_;
  std::thread monitor_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    ///< dispatcher wakeups
  std::condition_variable done_cv_;     ///< client wakeups
  std::condition_variable space_cv_;    ///< admission backpressure wakeups
  std::condition_variable idle_cv_;     ///< destructor waits for clients
  std::condition_variable monitor_cv_;  ///< monitor wakeups (exit, crash)
  std::deque<RequestPtr> queue_;
  bool stop_ = false;
  bool degraded_ = false;      ///< kDegrade: over the high-water mark
  bool no_replicas_ = false;   ///< every replica quarantined
  std::int64_t active_clients_ = 0;  ///< infer() calls inside the monitor
  Stats stats_;
};

}  // namespace apnn::nn

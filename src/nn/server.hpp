// Replicated dynamic-batching serving front-end over compiled
// InferenceSessions.
//
// An InferenceServer accepts concurrent single-sample requests (blocking
// infer() calls from any number of client threads) and micro-batches them
// into session runs. Requests pass a bounded admission queue (backpressure:
// block until space frees, or reject immediately — ServerOptions::admission)
// and are drained by N dispatcher replicas. Each replica owns a compiled
// InferenceSession — its own ActivationSlab and batch gather/scatter
// tensors, so replicas never share mutable kernel state — and runs batches
// concurrently with the others; the only cross-replica state is the
// admission queue, the (thread-safe) TuningCache when autotuning is on, and
// the const network weights. One replica's dispatch cycle: take the first
// queued request, hold the batch open up to `batch_window` for more to
// arrive (up to `max_batch`), gather the samples into one batch tensor, run
// the session once, and scatter the logits back to the waiting clients.
//
// Replication raises aggregate throughput past the single-session ceiling:
// one dispatcher serializes [gather -> run -> scatter] cycles, leaving the
// machine idle during the serial sections of each cycle (client wakeups,
// admission handoff, short glue steps that cannot fill every core), while N
// replicas overlap whole cycles. With a shared TuningCache only the first
// replica pays measurement runs — every later replica compiles warm
// (bench/serving_throughput gates this and the scaling curve).
//
// Samples are validated per-request at admission (shape and 8-bit code
// range), so a malformed sample throws in its own infer() call and can
// never poison the micro-batch it would have joined. Batching is exact: the
// session's logits are bit-identical whether a sample runs alone or inside
// any batch on any replica, so serving results never depend on traffic
// (tests/test_server.cpp pins this).
//
// Shutdown drains: ~InferenceServer stops admission (late infer() callers
// get a "shutting down" error), lets the replicas finish every queued
// request, then joins them and waits for the last in-flight client to leave.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/nn/session.hpp"

namespace apnn::nn {

struct ServerOptions {
  /// Largest batch one session run may serve.
  std::int64_t max_batch = 8;
  /// How long a dispatcher holds an open batch waiting for more requests.
  std::chrono::microseconds batch_window{500};

  /// Dispatcher replicas, each owning a compiled InferenceSession. 0 derives
  /// from hardware width: half the hardware threads, clamped to [1, 8] —
  /// enough replicas to overlap the serial sections of a dispatch cycle
  /// without drowning the shared kernel thread pool.
  int replicas = 0;

  /// Admission-queue bound (queued requests, not counting the batches
  /// already inside the replicas). 0 derives as replicas * max_batch * 4.
  std::int64_t max_queue = 0;

  /// What infer() does when the admission queue is full.
  enum class Admission {
    kBlock,   ///< wait until a dispatcher frees space (backpressure)
    kReject,  ///< throw "admission queue full" immediately (load shedding)
  };
  Admission admission = Admission::kBlock;

  /// Compile options applied to every replica's session. When
  /// `session.autotune` is set and `session.cache` is null the server owns
  /// one TuningCache shared across replicas (first replica measures, the
  /// rest compile warm); when `session.tune_batch` is 0 it defaults to
  /// max_batch so the full-batch plan is tuned before serving starts.
  SessionOptions session;
};

class InferenceServer {
 public:
  /// Compiles one session per replica for `net` (must be calibrated and
  /// outlive the server) and starts the dispatcher threads. Replicas are
  /// compiled sequentially so a shared TuningCache is warm from the second
  /// replica on.
  InferenceServer(const ApnnNetwork& net, const tcsim::DeviceSpec& dev,
                  ServerOptions opts = {});
  /// Stops admission, drains queued requests, then stops the dispatchers.
  ~InferenceServer();

  /// Graceful drain: stops admission (every later infer() call throws
  /// "shutting down"), lets the replicas finish all queued requests, and
  /// joins the dispatcher threads. Returns once the queue is empty.
  /// Idempotent; the destructor calls it. Must not race itself — call from
  /// one controlling thread (concurrent infer() calls are fine).
  void shutdown();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Serves one sample — HWC uint8 codes {H, W, C} (or {1, H, W, C}) —
  /// blocking until its micro-batch has run. Returns the logits {classes}.
  /// Thread-safe; any number of callers may be in flight. Throws on a
  /// malformed sample (validated before admission — co-batched requests
  /// are unaffected), on a full queue under Admission::kReject, and after
  /// shutdown has begun.
  Tensor<std::int32_t> infer(const Tensor<std::int32_t>& sample_u8);

  struct Stats {
    std::int64_t requests = 0;   ///< samples served (failures included)
    std::int64_t batches = 0;    ///< session runs dispatched (all replicas)
    std::int64_t max_batch = 0;  ///< largest micro-batch formed
    std::int64_t rejected = 0;   ///< admissions refused (kReject only)

    std::int64_t queue_depth = 0;       ///< queued right now
    std::int64_t peak_queue_depth = 0;  ///< high-water of queue_depth

    /// Latency accounting over completed requests (admission to response).
    double total_latency_ms = 0.0;  ///< sum; mean = total / requests
    double max_latency_ms = 0.0;
    /// Wall time spent inside dispatch cycles (gather + run + scatter),
    /// summed across replicas; batches/total_batch_ms is the service rate.
    double total_batch_ms = 0.0;

    /// Per-replica dispatch counts (index = replica); the spread shows
    /// whether load actually fans out across the pool.
    std::vector<std::int64_t> replica_batches;
    std::vector<std::int64_t> replica_requests;
  };
  Stats stats() const;

  /// Resolved replica count (after the hardware-width derivation).
  int replicas() const { return static_cast<int>(replicas_.size()); }

  /// Measurement runs the pool performed, total and per replica. With a
  /// warm shared cache every entry is 0; cold, only replica 0's is not.
  std::int64_t tuning_measurements() const;
  std::int64_t replica_tuning_measurements(int replica) const;

 private:
  struct Request {
    const Tensor<std::int32_t>* sample = nullptr;
    Tensor<std::int32_t> logits;
    std::exception_ptr error;
    bool done = false;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One dispatcher worker: session + reusable gather/scatter tensors
  /// (steady-state zero allocation, per replica).
  struct Replica {
    std::unique_ptr<InferenceSession> session;
    Tensor<std::int32_t> batch_input;
    Tensor<std::int32_t> batch_logits;
    std::thread thread;
  };

  void dispatch_loop(std::size_t replica_index);

  const ActShape input_shape_;
  ServerOptions opts_;  ///< resolved: replicas/max_queue/tune_batch filled in
  std::unique_ptr<core::TuningCache> owned_cache_;  ///< see ServerOptions
  std::vector<Replica> replicas_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< dispatcher wakeups
  std::condition_variable done_cv_;   ///< client wakeups
  std::condition_variable space_cv_;  ///< admission backpressure wakeups
  std::condition_variable idle_cv_;   ///< destructor waits for clients
  std::deque<Request*> queue_;
  bool stop_ = false;
  std::int64_t active_clients_ = 0;  ///< infer() calls inside the monitor
  Stats stats_;
};

}  // namespace apnn::nn

// Binary serialization of instantiated APNN networks.
//
// Format (versioned, host byte order with an explicit byte-order marker in
// the header — a reader of opposite endianness fails loudly instead of
// decoding byte-reversed weights): the model spec (layer list), the
// quantized logical weights of every stage, the epilogue parameters (BN
// scale/bias, quantization scale/zero-point) and the standalone-quantize
// calibration — everything needed to reload a calibrated network and get
// bit-identical logits. Every variable-length field (strings, vectors,
// tensor dims and element counts) is bounds-checked on load, so a corrupt
// or truncated file throws apnn::Error rather than driving an unbounded
// allocation.
#pragma once

#include <string>

#include "src/nn/apnn_network.hpp"

namespace apnn::nn {

/// Serializes a calibrated (or uncalibrated) network to `path`.
/// Returns false on I/O failure.
bool save_network(const ApnnNetwork& net, const std::string& path);

/// Loads a network saved by save_network. Throws apnn::Error on a missing
/// file, bad magic, or version mismatch.
ApnnNetwork load_network(const std::string& path);

}  // namespace apnn::nn

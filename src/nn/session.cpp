#include "src/nn/session.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "src/bitops/bitcopy.hpp"
#include "src/common/check.hpp"
#include "src/common/faultinject.hpp"
#include "src/core/perf_model.hpp"
#include "src/layout/bit_transpose.hpp"
#include "src/nn/attention_math.hpp"
#include "src/parallel/thread_pool.hpp"
#include "src/quant/quantizer.hpp"

namespace apnn::nn {

namespace {

using core::Encoding;
using core::PoolSpec;

constexpr std::size_t kNoLayer = std::numeric_limits<std::size_t>::max();

/// How a plan value is materialized in its slab slot.
enum class ValueFormat {
  kDense,         ///< SlabSlot::dense — NHWC {B,H,W,C} or features {B,F}
  kPackedConv,    ///< SlabSlot::packed — channel-major packed activations
  kPackedLinear,  ///< SlabSlot::planes — N x M planes from a quantizing apmm
  kPackedTokens,  ///< SlabSlot::planes — (B*seq) x C token-major planes
};

enum class StepKind {
  kPackInput,     ///< dense uint8 image -> 8-bit packed planes
  kConv,          ///< apconv stage (fused tail)
  kLinear,        ///< apmm stage (operand assembly fused in)
  kResidualAdd,   ///< dense/packed + dense/packed -> dense
  kRelu,          ///< dense -> dense
  kPool,          ///< dense -> dense
  kQuantize,      ///< dense -> dense codes or packed planes (fused repack)
  kPack,          ///< dense codes -> packed conv planes
  kUnpack,        ///< packed conv planes -> dense codes
  kUnpackLinear,  ///< N x M feature planes -> dense {B, F} codes
  kAttnProj,      ///< Q/K/V projection apmm (aux = 0/1/2), quantizing tail
  kAttnScores,    ///< per-head QK^T + integer softmax -> attn codes (aux=head)
  kAttnContext,   ///< per-head attn x V via packed transpose (aux = head)
  kAttnOut,       ///< concat heads (extra_in) + output projection apmm
  kUnpackTokens,  ///< token-major planes -> dense NHWC {B, seq, 1, C} codes
};

// --- glue kernels -----------------------------------------------------------
//
// The word-granular blocked bodies of the plan's glue ops. Each parallel_for
// task owns whole packed rows (or disjoint dense ranges), so tasks never
// share a 64-bit word and the kernels are race-free by construction.

constexpr int kMaxBits = 16;  // plane-count ceiling of pack_activations
constexpr std::int64_t kRowGrain = 64;

/// Shared word-granular bit-plane transpose: for each of `rows` rows of `c`
/// elements, `code_of(v)` yields the code whose bits land in the planes
/// starting at plane row `row_off`. Every word of every written padded row
/// is overwritten (zeros beyond column c), so destinations may skip the
/// reset_shape zero fill — the bit-packed output needs no second pass.
template <typename CodeFn>
void pack_rows(ThreadPool& tp, const std::int32_t* src, std::int64_t rows,
               std::int64_t c, int bits,
               std::vector<bitops::BitMatrix>& planes, std::int64_t grain,
               std::int64_t row_off, CodeFn&& code_of) {
  APNN_CHECK(bits >= 1 && bits <= kMaxBits);
  const std::int64_t row_words = planes[0].row_words();
  tp.parallel_for(0, rows, [&](std::int64_t r) {
    const std::int32_t* s = src + r * c;
    for (std::int64_t w = 0; w < row_words; ++w) {
      const std::int64_t w0 = w * 64;
      const int jmax = static_cast<int>(
          std::clamp<std::int64_t>(c - w0, 0, 64));
      std::uint64_t acc[kMaxBits] = {};
      for (int j = 0; j < jmax; ++j) {
        const std::int32_t code = code_of(s[w0 + j]);
        for (int t = 0; t < bits; ++t) {
          acc[t] |= static_cast<std::uint64_t>((code >> t) & 1) << j;
        }
      }
      for (int t = 0; t < bits; ++t) {
        planes[static_cast<std::size_t>(t)].row(row_off + r)[w] = acc[t];
      }
    }
  }, grain);
}

/// Packs `rows` x `c` non-negative codes (row-major, values < 2^bits).
/// Throws on out-of-range values.
void pack_codes(ThreadPool& tp, const std::int32_t* src, std::int64_t rows,
                std::int64_t c, int bits,
                std::vector<bitops::BitMatrix>& planes,
                std::int64_t grain = kRowGrain, std::int64_t row_off = 0) {
  const std::int32_t hi = static_cast<std::int32_t>(1u << bits);
  pack_rows(tp, src, rows, c, bits, planes, grain, row_off,
            [&](std::int32_t v) {
    APNN_CHECK(v >= 0 && v < hi)
        << "activation " << v << " out of range for " << bits << " bits";
    return v;
  });
}

/// Decodes packed planes back to dense codes; `accumulate` adds instead of
/// overwriting (the packed-input side of a residual add).
void decode_planes(ThreadPool& tp,
                   const std::vector<bitops::BitMatrix>& planes, int bits,
                   std::int64_t rows, std::int64_t c, std::int32_t* dst,
                   bool accumulate) {
  tp.parallel_for(0, rows, [&](std::int64_t r) {
    std::int32_t* d = dst + r * c;
    for (std::int64_t w0 = 0; w0 < c; w0 += 64) {
      const int jmax = static_cast<int>(std::min<std::int64_t>(64, c - w0));
      std::uint64_t wt[kMaxBits];
      for (int t = 0; t < bits; ++t) {
        wt[t] = planes[static_cast<std::size_t>(t)].row(r)[w0 / 64];
      }
      for (int j = 0; j < jmax; ++j) {
        std::int32_t v = 0;
        for (int t = 0; t < bits; ++t) {
          v |= static_cast<std::int32_t>((wt[t] >> j) & 1) << t;
        }
        if (accumulate) {
          d[w0 + j] += v;
        } else {
          d[w0 + j] = v;
        }
      }
    }
  }, kRowGrain);
}

void add_dense(ThreadPool& tp, const std::int32_t* src, std::int32_t* dst,
               std::int64_t n) {
  tp.parallel_for(0, (n + 4095) / 4096, [&](std::int64_t blk) {
    const std::int64_t lo = blk * 4096;
    const std::int64_t hi = std::min(n, lo + 4096);
    for (std::int64_t i = lo; i < hi; ++i) dst[i] += src[i];
  });
}

void relu_dense(ThreadPool& tp, const std::int32_t* src, std::int32_t* dst,
                std::int64_t n) {
  tp.parallel_for(0, (n + 4095) / 4096, [&](std::int64_t blk) {
    const std::int64_t lo = blk * 4096;
    const std::int64_t hi = std::min(n, lo + 4096);
    for (std::int64_t i = lo; i < hi; ++i) dst[i] = std::max(src[i], 0);
  });
}

void quantize_dense(ThreadPool& tp, const std::int32_t* src,
                    std::int32_t* dst, std::int64_t n,
                    const quant::QuantParams& p) {
  tp.parallel_for(0, (n + 4095) / 4096, [&](std::int64_t blk) {
    const std::int64_t lo = blk * 4096;
    const std::int64_t hi = std::min(n, lo + 4096);
    for (std::int64_t i = lo; i < hi; ++i) {
      dst[i] = quant::quantize_value(static_cast<float>(src[i]), p);
    }
  });
}

/// Fused standalone quantize + bit repack: dense pre-quant values straight
/// into packed planes — the dense code tensor never exists.
void quantize_pack(ThreadPool& tp, const std::int32_t* src,
                   std::int64_t rows, std::int64_t c,
                   const quant::QuantParams& p,
                   std::vector<bitops::BitMatrix>& planes,
                   std::int64_t row_off = 0) {
  pack_rows(tp, src, rows, c, p.bits, planes, kRowGrain, row_off,
            [&](std::int32_t v) {
    return quant::quantize_value(static_cast<float>(v), p);
  });
}

/// ReLU + quantize + repack in one pass — the attention context tail. The
/// ReLU must run before quantization (a negative zero-point would otherwise
/// map negative accumulators to nonzero codes).
void relu_quantize_pack(ThreadPool& tp, const std::int32_t* src,
                        std::int64_t rows, std::int64_t c,
                        const quant::QuantParams& p,
                        std::vector<bitops::BitMatrix>& planes,
                        std::int64_t row_off) {
  pack_rows(tp, src, rows, c, p.bits, planes, kRowGrain, row_off,
            [&](std::int32_t v) {
    return quant::quantize_value(static_cast<float>(std::max(v, 0)), p);
  });
}

/// Integer max/avg pooling, NHWC, identical arithmetic to the reference
/// walker's pool_dense (int64 aggregate, truncating average). size == 0 is
/// the global-pool convention: one window covering the whole spatial map.
void pool_nhwc(ThreadPool& tp, const std::int32_t* src, std::int64_t b,
               std::int64_t h, std::int64_t w, std::int64_t c,
               const PoolSpec& pool, std::int32_t* dst) {
  const std::int64_t win_h = pool.size == 0 ? h : pool.size;
  const std::int64_t win_w = pool.size == 0 ? w : pool.size;
  const std::int64_t ph = h / win_h, pw = w / win_w;
  tp.parallel_for(0, b * ph, [&](std::int64_t row) {
    const std::int64_t n = row / ph, py = row % ph;
    for (std::int64_t px = 0; px < pw; ++px) {
      for (std::int64_t ch = 0; ch < c; ++ch) {
        std::int64_t agg = pool.kind == PoolSpec::Kind::kMax ? INT64_MIN : 0;
        for (std::int64_t dy = 0; dy < win_h; ++dy) {
          for (std::int64_t dx = 0; dx < win_w; ++dx) {
            const std::int32_t v =
                src[(((n * h) + py * win_h + dy) * w + px * win_w +
                     dx) * c + ch];
            if (pool.kind == PoolSpec::Kind::kMax) {
              agg = std::max<std::int64_t>(agg, v);
            } else {
              agg += v;
            }
          }
        }
        if (pool.kind == PoolSpec::Kind::kAvg) {
          agg /= win_h * win_w;
        }
        dst[((n * ph + py) * pw + px) * c + ch] =
            static_cast<std::int32_t>(agg);
      }
    }
  });
}

/// Assembles the linear-stage feature operand straight from packed
/// channel-major activations: sample b's operand row is the concatenation
/// of its h*w C-bit channel slabs, copied at word granularity — the packed
/// planes never round-trip through dense codes.
void gather_linear_operand(ThreadPool& tp,
                           const layout::PackedActivations& x,
                           bitops::BitPlanes& dst) {
  const std::int64_t per_sample = x.h * x.w;
  tp.parallel_for(0, x.n * x.bits, [&](std::int64_t task) {
    const std::int64_t b = task / x.bits;
    const int t = static_cast<int>(task % x.bits);
    const bitops::BitMatrix& plane = x.planes[static_cast<std::size_t>(t)];
    std::uint64_t* out = dst.planes[static_cast<std::size_t>(t)].row(b);
    for (std::int64_t r = 0; r < per_sample; ++r) {
      bitops::copy_bits(out, r * x.c, plane.row(b * per_sample + r), 0, x.c);
    }
  });
}

/// Decomposes dense codes ({B, F} row-major) into operand planes. The
/// range check mirrors what make_operand/encode_value enforced on the old
/// linear path: an un-quantized value reaching a narrow operand must fail
/// loudly, not truncate to its low bits.
void decompose_linear_operand(ThreadPool& tp, const std::int32_t* src,
                              std::int64_t batch, std::int64_t feat, int bits,
                              bitops::BitPlanes& dst) {
  pack_codes(tp, src, batch, feat, bits, dst.planes, /*grain=*/1);
}

/// M x N -> {N, M} transpose (apmm emits out_features x batch).
void transpose_mn(ThreadPool& tp, const std::int32_t* src, std::int64_t m,
                  std::int64_t n, std::int32_t* dst) {
  tp.parallel_for(0, n, [&](std::int64_t j) {
    for (std::int64_t i = 0; i < m; ++i) dst[j * m + i] = src[i * n + j];
  }, kRowGrain);
}

// --- attention staging ------------------------------------------------------
//
// Per-(sample, head) operand slices for the score/context GEMMs. Both
// helpers reshape scratch planes in place, so steady-state reuse allocates
// nothing once each scratch slot reached its high-water capacity.

/// Copies the column window [col0, col0 + ncols) of token rows
/// [row0, row0 + nrows) from token-major planes into a compact
/// nrows x ncols operand (one head's Q/K/V slice).
void stage_col_slice(ThreadPool& tp, const bitops::BitPlanes& src,
                     std::int64_t row0, std::int64_t nrows, std::int64_t col0,
                     std::int64_t ncols, bitops::BitPlanes& dst) {
  // copy_bits only touches [0, ncols); the zero fill keeps the word padding
  // beyond it honest.
  dst.reset_shape(nrows, ncols, src.bits, /*zero_fill=*/true);
  tp.parallel_for(0, nrows * src.bits, [&](std::int64_t task) {
    const std::int64_t r = task / src.bits;
    const int t = static_cast<int>(task % src.bits);
    bitops::copy_bits(dst.planes[static_cast<std::size_t>(t)].row(r), 0,
                      src.planes[static_cast<std::size_t>(t)].row(row0 + r),
                      col0, ncols);
  }, kRowGrain);
}

/// Copies whole token rows [row0, row0 + nrows) (all columns) — word-aligned
/// memcpy per plane, used to slice one sample's attention-code block.
void stage_row_block(const bitops::BitPlanes& src, std::int64_t row0,
                     std::int64_t nrows, bitops::BitPlanes& dst) {
  dst.reset_shape(nrows, src.cols, src.bits, /*zero_fill=*/false);
  const std::int64_t row_words = src.planes[0].row_words();
  for (int t = 0; t < src.bits; ++t) {
    std::memcpy(dst.planes[static_cast<std::size_t>(t)].row(0),
                src.planes[static_cast<std::size_t>(t)].row(row0),
                sizeof(std::uint64_t) *
                    static_cast<std::size_t>(nrows * row_words));
  }
}

/// The projection operand/quantizer a kAttnProj step's aux index selects.
const core::ApOperand& attn_proj_weights(const ApnnStage& st, int aux) {
  return aux == 0 ? st.weights : aux == 1 ? st.attn_wk : st.attn_wv;
}
const quant::QuantParams& attn_proj_quant(const ApnnStage& st, int aux) {
  return aux == 0 ? st.attn_q_quant
                  : aux == 1 ? st.attn_k_quant : st.attn_v_quant;
}

/// Scratch slots an attention step needs beyond its output slot.
int attn_scratch_count(StepKind k) {
  switch (k) {
    case StepKind::kAttnScores:
      return 2;  // Q-head + K-head slices (scores reuse the Q slot's dense)
    case StepKind::kAttnContext:
      return 3;  // attn block, V-head slice, transposed V-head
    case StepKind::kAttnOut:
      return 1;  // concatenated head operand
    default:
      return 0;
  }
}

}  // namespace

// --- the compiled plan ------------------------------------------------------

struct InferenceSession::Plan {
  struct Value {
    ValueFormat format = ValueFormat::kDense;
    std::int64_t c = 0, h = 1, w = 1;  ///< per-sample dims (features in c)
    bool spatial = false;              ///< dense values: NHWC vs {B, F}
    int bits = 0;                      ///< code bits of packed formats
    std::size_t last_use = 0;          ///< step index of the last read
    int slot = -1;

    std::int64_t per_sample() const { return c * h * w; }
  };

  struct Step {
    StepKind kind;
    std::size_t layer = kNoLayer;  ///< spec layer (diagnostics)
    std::size_t stage = kNoLayer;  ///< index into net.stages()
    int in = -1, in2 = -1, out = -1;
    quant::QuantParams quant;  ///< kQuantize
    PoolSpec pool;             ///< kPool
    int operand_slot = -1, scratch_slot = -1;  ///< kLinear temporaries
    /// kAttnProj: projection index (0/1/2 = Q/K/V);
    /// kAttnScores/kAttnContext: head index.
    int aux = 0;
    std::vector<int> extra_in;       ///< kAttnOut: per-head context values
    std::vector<int> scratch_slots;  ///< attention staging slots
  };

  /// Batch-dependent step state, resolved once per distinct batch size and
  /// cached (the dynamic-batching server alternates sizes every run; a
  /// single-entry cache would re-run autotune — and allocate — each time).
  struct ResolvedBatch {
    std::vector<layout::ConvGeometry> geom;  ///< per step (kConv only)
    std::vector<core::TunedKernel> kern;     ///< per step (kConv/kLinear)
  };

  /// This plan's bucketed view of the network: the spec with input.h set to
  /// the plan's sequence bucket, plus the shapes propagated from it. Conv
  /// geometry, attention lowering, and batch resolution all read these —
  /// never the network's calibration-length spec — so one network compiles
  /// into a family of shape-specialized plans over shared weights.
  ModelSpec spec;
  std::vector<ActShape> shapes;
  std::int64_t bucket = 0;  ///< tokens per sample this plan serves

  std::vector<Value> values;
  std::vector<Step> steps;
  int input_value = -1;
  int logits_value = -1;
  std::size_t num_slots = 0;
  std::map<std::int64_t, ResolvedBatch> resolved;  ///< keyed by batch

  // Reads of compile-time network state (stages are referenced by index so
  // the plan stays valid if the stage vector reallocates). The activation
  // slab lives on the session, shared by every plan of the family.
};

namespace {

/// Plan builder: mirrors the old interpreter's layer walk once, at compile
/// time, producing the step list, value formats, and slot assignment.
class Compiler {
 public:
  /// `plan.spec` and `plan.shapes` must already carry the plan's bucketed
  /// view (InferenceSession's constructor sets them before compiling).
  Compiler(const ApnnNetwork& net, InferenceSession::Plan& plan)
      : net_(net), spec_(plan.spec), plan_(plan) {}

  void compile() {
    index_stages();
    scan_consumers();
    build_steps();
    assign_slots();
  }

 private:
  using Value = InferenceSession::Plan::Value;
  using Step = InferenceSession::Plan::Step;

  void index_stages() {
    consumed_.assign(spec_.layers.size(), false);
    stage_of_.assign(spec_.layers.size(), kNoLayer);
    for (std::size_t si = 0; si < net_.stages().size(); ++si) {
      const ApnnStage& st = net_.stages()[si];
      stage_of_[st.layer_index] = si;
      for (std::size_t j : st.absorbed) consumed_[j] = true;
    }
  }

  /// Canonical producer layer of the value layer `li` outputs (resolves
  /// stage absorption and pass-through layers). spec_.layers.size() denotes
  /// the network input.
  std::size_t canon(std::size_t li) const { return canon_[li]; }

  std::size_t input_layer_of(std::size_t li) const {
    const int src = spec_.layers[li].input;
    if (src >= 0) return static_cast<std::size_t>(src);
    return li == 0 ? spec_.layers.size() : li - 1;
  }

  /// Pass 1: which executed layer kinds read each canonical producer.
  void scan_consumers() {
    const std::size_t n = spec_.layers.size();
    canon_.assign(n + 1, n);
    canon_[n] = n;  // network input
    consumers_.assign(n + 1, std::vector<LayerKind>{});
    auto resolve = [&](std::size_t li) {
      return li == n ? n : canon_[li];
    };
    for (std::size_t li = 0; li < n; ++li) {
      const LayerSpec& l = spec_.layers[li];
      if (consumed_[li]) {
        // Absorbed tail layers alias their stage's output.
        canon_[li] = canon_[input_layer_of(li)];
        continue;
      }
      switch (l.kind) {
        case LayerKind::kConv:
        case LayerKind::kLinear:
          consumers_[resolve(input_layer_of(li))].push_back(l.kind);
          canon_[li] = li;
          break;
        case LayerKind::kResidualAdd:
          consumers_[resolve(input_layer_of(li))].push_back(l.kind);
          consumers_[resolve(static_cast<std::size_t>(l.residual))].push_back(
              l.kind);
          canon_[li] = li;
          break;
        case LayerKind::kSoftmax:
          canon_[li] = canon_[input_layer_of(li)];
          break;
        case LayerKind::kBatchNorm:
          APNN_CHECK(false)
              << "standalone BatchNorm layer '" << l.name
              << "' is not executable: it has no parameters outside a "
                 "conv/linear epilogue — restructure the spec so the BN "
                 "directly follows a conv/linear (where it fuses into the "
                 "stage tail)";
          break;
        default:
          consumers_[resolve(input_layer_of(li))].push_back(l.kind);
          canon_[li] = li;
          break;
      }
    }
  }

  bool all_conv_consumers(std::size_t li) const {
    const auto& cs = consumers_[li];
    if (cs.empty()) return false;
    for (LayerKind k : cs) {
      if (k != LayerKind::kConv) return false;
    }
    return true;
  }

  int new_value(ValueFormat fmt, std::int64_t c, std::int64_t h,
                std::int64_t w, bool spatial, int bits) {
    Value v;
    v.format = fmt;
    v.c = c;
    v.h = h;
    v.w = w;
    v.spatial = spatial;
    v.bits = bits;
    plan_.values.push_back(v);
    return static_cast<int>(plan_.values.size() - 1);
  }

  Step& add_step(StepKind kind, std::size_t layer) {
    Step s;
    s.kind = kind;
    s.layer = layer;
    plan_.steps.push_back(s);
    return plan_.steps.back();
  }

  /// Value id holding layer `li`'s output (network input for li == size).
  int value_of(std::size_t li) {
    const std::size_t producer = li == spec_.layers.size()
                                     ? spec_.layers.size()
                                     : canon_[li];
    if (producer == spec_.layers.size()) return plan_.input_value;
    const int v = val_of_layer_[producer];
    APNN_CHECK(v >= 0) << "layer " << spec_.layers[producer].name
                       << " has no materialized value";
    return v;
  }

  /// Dense view of `vid`, inserting a decode step at most once per value.
  int ensure_dense(int vid) {
    Value& v = plan_.values[static_cast<std::size_t>(vid)];
    if (v.format == ValueFormat::kDense) return vid;
    if (dense_shadow_.count(vid) != 0) return dense_shadow_[vid];
    const bool spatial = v.format == ValueFormat::kPackedConv ||
                         v.format == ValueFormat::kPackedTokens;
    const int dv = new_value(ValueFormat::kDense, v.c, v.h, v.w, spatial, 0);
    const StepKind kind = v.format == ValueFormat::kPackedConv
                              ? StepKind::kUnpack
                              : v.format == ValueFormat::kPackedTokens
                                    ? StepKind::kUnpackTokens
                                    : StepKind::kUnpackLinear;
    Step& s = add_step(kind, kNoLayer);
    s.in = vid;
    s.out = dv;
    dense_shadow_[vid] = dv;
    return dv;
  }

  /// Packed channel-major view of `vid` with `bits` code planes, inserting
  /// a pack step at most once per value.
  int ensure_packed(int vid, int bits) {
    Value& v = plan_.values[static_cast<std::size_t>(vid)];
    if (v.format == ValueFormat::kPackedConv) {
      APNN_CHECK(v.bits == bits)
          << "packed value carries " << v.bits << " bits, stage wants "
          << bits;
      return vid;
    }
    if (v.format == ValueFormat::kPackedLinear ||
        v.format == ValueFormat::kPackedTokens) {
      vid = ensure_dense(vid);
    }
    if (packed_shadow_.count(vid) != 0) return packed_shadow_[vid];
    Value& dv = plan_.values[static_cast<std::size_t>(vid)];
    APNN_CHECK(dv.spatial) << "cannot pack feature vectors";
    const int pv =
        new_value(ValueFormat::kPackedConv, dv.c, dv.h, dv.w, true, bits);
    Step& s = add_step(StepKind::kPack, kNoLayer);
    s.in = vid;
    s.out = pv;
    packed_shadow_[vid] = pv;
    return pv;
  }

  /// Pass 2: the step list.
  void build_steps() {
    const std::size_t n = spec_.layers.size();
    val_of_layer_.assign(n, -1);

    // Input image: 8-bit packed planes (§5.1 — the uint8 codes are the
    // first stage's activations).
    plan_.input_value =
        new_value(ValueFormat::kPackedConv, spec_.input.c, spec_.input.h,
                  spec_.input.w, true, 8);
    Step& pack_in = add_step(StepKind::kPackInput, kNoLayer);
    pack_in.out = plan_.input_value;

    const auto& shapes = plan_.shapes;
    for (std::size_t li = 0; li < n; ++li) {
      if (consumed_[li]) continue;
      const LayerSpec& l = spec_.layers[li];
      switch (l.kind) {
        case LayerKind::kConv: {
          const std::size_t si = stage_of_[li];
          const ApnnStage& st = net_.stages()[si];
          const int in_v = ensure_packed(value_of(input_layer_of(li)),
                                         st.in_bits);
          const std::size_t out_layer =
              st.absorbed.empty() ? li : st.absorbed.back();
          const ActShape& os = shapes[out_layer];
          const int out_v =
              st.epilogue.has_quant
                  ? new_value(ValueFormat::kPackedConv, os.c, os.h, os.w,
                              true, st.epilogue.quant.bits)
                  : new_value(ValueFormat::kDense, os.c, os.h, os.w, true, 0);
          Step& s = add_step(StepKind::kConv, li);
          s.stage = si;
          s.in = in_v;
          s.out = out_v;
          val_of_layer_[li] = out_v;
          break;
        }
        case LayerKind::kLinear: {
          const std::size_t si = stage_of_[li];
          const ApnnStage& st = net_.stages()[si];
          int in_v = value_of(input_layer_of(li));
          // Token-major planes have no per-sample row layout a linear
          // operand can borrow; take the dense shadow and decompose.
          if (plan_.values[static_cast<std::size_t>(in_v)].format ==
              ValueFormat::kPackedTokens) {
            in_v = ensure_dense(in_v);
          }
          {
            const Value& v = plan_.values[static_cast<std::size_t>(in_v)];
            if (v.format == ValueFormat::kPackedConv ||
                v.format == ValueFormat::kPackedLinear) {
              APNN_CHECK(v.bits == st.in_bits)
                  << "linear stage wants " << st.in_bits
                  << "-bit features, producer emits " << v.bits;
            }
          }
          const std::size_t out_layer =
              st.absorbed.empty() ? li : st.absorbed.back();
          const std::int64_t out_f = shapes[out_layer].c;
          const int out_v =
              st.epilogue.has_quant
                  ? new_value(ValueFormat::kPackedLinear, out_f, 1, 1, false,
                              st.epilogue.quant.bits)
                  : new_value(ValueFormat::kDense, out_f, 1, 1, false, 0);
          Step& s = add_step(StepKind::kLinear, li);
          s.stage = si;
          s.in = in_v;
          s.out = out_v;
          val_of_layer_[li] = out_v;
          plan_.logits_value = out_v;
          break;
        }
        case LayerKind::kResidualAdd: {
          int a = value_of(input_layer_of(li));
          int b = value_of(static_cast<std::size_t>(l.residual));
          // Feature/token planes can't be decoded by the packed-conv side
          // helper; take the dense shadow. Channel-major packed inputs
          // decode inline.
          auto densify_planes = [&](int vid) {
            const ValueFormat f =
                plan_.values[static_cast<std::size_t>(vid)].format;
            return f == ValueFormat::kPackedLinear ||
                           f == ValueFormat::kPackedTokens
                       ? ensure_dense(vid)
                       : vid;
          };
          a = densify_planes(a);
          b = densify_planes(b);
          const Value& av = plan_.values[static_cast<std::size_t>(a)];
          const int out_v = new_value(ValueFormat::kDense, av.c, av.h, av.w,
                                      av.spatial, 0);
          Step& s = add_step(StepKind::kResidualAdd, li);
          s.in = a;
          s.in2 = b;
          s.out = out_v;
          val_of_layer_[li] = out_v;
          break;
        }
        case LayerKind::kReLU: {
          const int in_v = ensure_dense(value_of(input_layer_of(li)));
          const Value& iv = plan_.values[static_cast<std::size_t>(in_v)];
          const int out_v = new_value(ValueFormat::kDense, iv.c, iv.h, iv.w,
                                      iv.spatial, 0);
          Step& s = add_step(StepKind::kRelu, li);
          s.in = in_v;
          s.out = out_v;
          val_of_layer_[li] = out_v;
          break;
        }
        case LayerKind::kPool: {
          const int in_v = ensure_dense(value_of(input_layer_of(li)));
          const Value& iv = plan_.values[static_cast<std::size_t>(in_v)];
          APNN_CHECK(iv.spatial) << "pool needs a spatial input";
          const std::int64_t oh = l.pool.size == 0 ? 1 : iv.h / l.pool.size;
          const std::int64_t ow = l.pool.size == 0 ? 1 : iv.w / l.pool.size;
          const int out_v = new_value(ValueFormat::kDense, iv.c, oh, ow,
                                      true, 0);
          Step& s = add_step(StepKind::kPool, li);
          s.in = in_v;
          s.out = out_v;
          s.pool = l.pool;
          val_of_layer_[li] = out_v;
          break;
        }
        case LayerKind::kQuantize: {
          const auto it = net_.standalone_quant().find(li);
          APNN_CHECK(it != net_.standalone_quant().end())
              << "standalone quantize layer " << l.name << " not calibrated";
          const int in_v = ensure_dense(value_of(input_layer_of(li)));
          const Value& iv = plan_.values[static_cast<std::size_t>(in_v)];
          // When every consumer is a conv the quantize emits packed planes
          // directly (fused repack — the dense code tensor never exists).
          const bool to_packed = iv.spatial && all_conv_consumers(li);
          const int out_v =
              to_packed ? new_value(ValueFormat::kPackedConv, iv.c, iv.h,
                                    iv.w, true, it->second.bits)
                        : new_value(ValueFormat::kDense, iv.c, iv.h, iv.w,
                                    iv.spatial, it->second.bits);
          Step& s = add_step(StepKind::kQuantize, li);
          s.in = in_v;
          s.out = out_v;
          s.quant = it->second;
          val_of_layer_[li] = out_v;
          break;
        }
        case LayerKind::kAttention: {
          // Lowering (§5 extended to attention): three quantizing bit-GEMM
          // projections over the token operand, per-head QK^T with the
          // fused integer-softmax tail, per-head attn x V through a packed
          // word-granular transpose of the V slice, then the quantizing
          // output projection over the concatenated heads.
          const std::size_t si = stage_of_[li];
          const ApnnStage& st = net_.stages()[si];
          int in_v = value_of(input_layer_of(li));
          if (plan_.values[static_cast<std::size_t>(in_v)].format ==
              ValueFormat::kDense) {
            in_v = ensure_packed(in_v, st.in_bits);
          }
          const Value& iv = plan_.values[static_cast<std::size_t>(in_v)];
          APNN_CHECK(iv.format == ValueFormat::kPackedConv ||
                     iv.format == ValueFormat::kPackedTokens)
              << "attention layer '" << l.name << "' needs packed tokens";
          APNN_CHECK(iv.w == 1)
              << "attention tokens run along H; W must be 1";
          APNN_CHECK(iv.bits == st.in_bits)
              << "attention stage wants " << st.in_bits
              << "-bit tokens, producer emits " << iv.bits;
          const std::int64_t seq = iv.h;
          const std::int64_t d_model = iv.c;
          const int heads = l.attn.heads;
          const std::int64_t dh = l.attn.d_head;
          const std::int64_t proj = heads * dh;
          const int abits = st.epilogue.quant.bits;
          APNN_CHECK(st.epilogue.has_quant)
              << "attention output projection must quantize";

          // Q/K/V projections (aux picks the weight/requantizer triple).
          int qkv[3];
          for (int p = 0; p < 3; ++p) {
            qkv[p] = new_value(ValueFormat::kPackedTokens, proj, seq, 1,
                               true, abits);
            Step& s = add_step(StepKind::kAttnProj, li);
            s.stage = si;
            s.aux = p;
            s.in = in_v;
            s.out = qkv[p];
          }

          // Per-head score/context chains.
          std::vector<int> ctx;
          for (int h = 0; h < heads; ++h) {
            const int sv = new_value(ValueFormat::kPackedTokens, seq, seq, 1,
                                     true, abits);
            Step& ss = add_step(StepKind::kAttnScores, li);
            ss.stage = si;
            ss.aux = h;
            ss.in = qkv[0];
            ss.in2 = qkv[1];
            ss.out = sv;
            const int cv = new_value(ValueFormat::kPackedTokens, dh, seq, 1,
                                     true, abits);
            Step& cs = add_step(StepKind::kAttnContext, li);
            cs.stage = si;
            cs.aux = h;
            cs.in = sv;
            cs.in2 = qkv[2];
            cs.out = cv;
            ctx.push_back(cv);
          }

          // Output projection over the head concatenation.
          const int out_v = new_value(ValueFormat::kPackedTokens, d_model,
                                      seq, 1, true, abits);
          Step& os = add_step(StepKind::kAttnOut, li);
          os.stage = si;
          os.extra_in = ctx;
          os.out = out_v;
          val_of_layer_[li] = out_v;
          break;
        }
        case LayerKind::kSoftmax:
          // Logits are returned raw (softmax is monotonic); the value
          // aliases through canon_.
          break;
        case LayerKind::kBatchNorm:
          break;  // scan_consumers() already hard-errored
      }
    }
    APNN_CHECK(plan_.logits_value >= 0) << "network has no linear head";

    // The returned logits must be dense codes; recompose feature planes
    // straight into the destination tensor (no intermediate code vector).
    if (plan_.values[static_cast<std::size_t>(plan_.logits_value)].format !=
        ValueFormat::kDense) {
      plan_.logits_value = ensure_dense(plan_.logits_value);
    }
  }

  /// Pass 3: liveness + greedy slot reuse. Values with disjoint live ranges
  /// share a slot; the logits value survives the whole plan.
  void assign_slots() {
    const std::size_t nsteps = plan_.steps.size();
    for (auto& v : plan_.values) v.last_use = 0;
    for (std::size_t s = 0; s < nsteps; ++s) {
      const Step& st = plan_.steps[s];
      for (int vid : {st.in, st.in2}) {
        if (vid >= 0) plan_.values[static_cast<std::size_t>(vid)].last_use = s;
      }
      for (int vid : st.extra_in) {
        plan_.values[static_cast<std::size_t>(vid)].last_use = s;
      }
    }
    plan_.values[static_cast<std::size_t>(plan_.logits_value)].last_use =
        nsteps;  // survives

    std::vector<int> free;
    int next = 0;
    auto acquire = [&]() {
      if (!free.empty()) {
        const int s = free.back();
        free.pop_back();
        return s;
      }
      return next++;
    };
    auto release_inputs = [&](const Step& st, std::size_t s) {
      // A step reading the same value twice (x + x) must free it once.
      std::vector<int> seen;
      auto release = [&](int vid) {
        if (vid < 0) return;
        if (std::find(seen.begin(), seen.end(), vid) != seen.end()) return;
        seen.push_back(vid);
        Value& v = plan_.values[static_cast<std::size_t>(vid)];
        // v.slot stays recorded — the step executing at v.last_use still
        // reads through it; only *later* outputs may take the slot over.
        if (v.last_use == s && v.slot >= 0) free.push_back(v.slot);
      };
      release(st.in);
      release(st.in2);
      for (int vid : st.extra_in) release(vid);
    };

    for (std::size_t s = 0; s < nsteps; ++s) {
      Step& st = plan_.steps[s];
      const bool elementwise = st.kind == StepKind::kRelu ||
                               st.kind == StepKind::kQuantize ||
                               st.kind == StepKind::kResidualAdd;
      if (elementwise) {
        // Same-index reads and writes (and packed/dense buffers of one slot
        // are distinct), so an input slot freed here can carry the output —
        // the in-place steady state of a residual/ReLU/quantize chain.
        release_inputs(st, s);
        plan_.values[static_cast<std::size_t>(st.out)].slot = acquire();
      } else {
        plan_.values[static_cast<std::size_t>(st.out)].slot = acquire();
        if (st.kind == StepKind::kLinear) {
          const Value& in = plan_.values[static_cast<std::size_t>(st.in)];
          if (in.format != ValueFormat::kPackedLinear) {
            st.operand_slot = acquire();
          }
          const ApnnStage& stage = net_.stages()[st.stage];
          if (!stage.epilogue.has_quant) st.scratch_slot = acquire();
        }
        for (int i = 0; i < attn_scratch_count(st.kind); ++i) {
          st.scratch_slots.push_back(acquire());
        }
        release_inputs(st, s);
        if (st.operand_slot >= 0) free.push_back(st.operand_slot);
        if (st.scratch_slot >= 0) free.push_back(st.scratch_slot);
        for (int slot : st.scratch_slots) free.push_back(slot);
      }
    }
    plan_.num_slots = static_cast<std::size_t>(next);
  }

  const ApnnNetwork& net_;
  const ModelSpec& spec_;
  InferenceSession::Plan& plan_;

  std::vector<bool> consumed_;
  std::vector<std::size_t> stage_of_;
  std::vector<std::size_t> canon_;
  std::vector<std::vector<LayerKind>> consumers_;
  std::vector<int> val_of_layer_;
  std::map<int, int> dense_shadow_;
  std::map<int, int> packed_shadow_;
};

}  // namespace

// --- session ---------------------------------------------------------------

InferenceSession::~InferenceSession() = default;

const parallel::ActivationSlab& InferenceSession::slab() const {
  return slab_;
}
std::size_t InferenceSession::step_count() const {
  return default_plan().steps.size();
}
std::size_t InferenceSession::slot_count() const {
  return default_plan().num_slots;
}
std::size_t InferenceSession::plan_count() const { return plans_.size(); }

InferenceSession::Plan& InferenceSession::plan_for(
    std::int64_t seq_len) const {
  for (const auto& p : plans_) {
    if (p->bucket >= seq_len) return *p;
  }
  APNN_CHECK(false) << "sequence length " << seq_len
                    << " exceeds the largest compiled bucket "
                    << plans_.back()->bucket;
  return *plans_.back();  // unreachable
}

InferenceSession::Plan& InferenceSession::default_plan() const {
  return plan_for(net_.spec().input.h);
}

namespace {

/// Resolves the batch-dependent step state (conv geometries, per-stage
/// kernel configs) once per distinct batch size; later runs at an
/// already-seen batch are pure map lookups (no tuning, no allocations).
///
/// With `tuner` set, each stage's config comes from an empirical
/// measurement sweep (core::Autotuner) — or straight from its TuningCache
/// when the stage signature was measured before. Without a tuner this is
/// the heuristic plan: the §4.3.2 pick with bm clamped to the stage's
/// virtual row count (short-M stages stop staging padded zero A-rows —
/// e.g. the 8-channel stem, a small classifier head; the kernel result is
/// bit-exact for any tile).
const InferenceSession::Plan::ResolvedBatch& resolve_batch(
    const ApnnNetwork& net, const tcsim::DeviceSpec& dev,
    InferenceSession::Plan& plan, std::int64_t batch,
    core::Autotuner* tuner) {
  const auto it = plan.resolved.find(batch);
  if (it != plan.resolved.end()) return it->second;

  InferenceSession::Plan::ResolvedBatch rb;
  rb.geom.resize(plan.steps.size());
  rb.kern.resize(plan.steps.size());
  const auto heuristic = [&](std::int64_t m, std::int64_t n, std::int64_t k,
                             int p, int q) {
    core::TunedKernel kern;
    kern.tile = core::clamp_tile_rows(
        core::autotune_tile(m, n, k, p, q, dev).tile, m, p);
    return kern;
  };
  for (std::size_t si = 0; si < plan.steps.size(); ++si) {
    const auto& s = plan.steps[si];
    if (s.kind == StepKind::kConv) {
      const ApnnStage& st = net.stages()[s.stage];
      rb.geom[si] = conv_geometry(plan.spec, plan.shapes, s.layer, batch);
      if (tuner != nullptr) {
        rb.kern[si] =
            tuner->tune_apconv(st.weights, rb.geom[si], st.in_bits,
                               st.in_enc, st.epilogue, st.pool);
      } else {
        rb.kern[si].tile = core::clamp_tile_rows(
            core::autotune_tile(rb.geom[si].gemm_m(), rb.geom[si].gemm_n(),
                                rb.geom[si].gemm_k(), st.weights.bits(),
                                st.in_bits, dev)
                .tile,
            rb.geom[si].gemm_m(), st.weights.bits());
      }
    } else if (s.kind == StepKind::kLinear) {
      const ApnnStage& st = net.stages()[s.stage];
      if (tuner != nullptr) {
        rb.kern[si] = tuner->tune_apmm(st.weights, batch, st.in_bits,
                                       st.in_enc, st.epilogue);
      } else {
        rb.kern[si] = heuristic(st.weights.rows(), batch, st.weights.cols(),
                                st.weights.bits(), st.in_bits);
      }
    } else if (s.kind == StepKind::kAttnProj ||
               s.kind == StepKind::kAttnOut) {
      // Token-count GEMMs: N is batch * bucket, so the tuning key carries
      // the plan's bucket — each bucket of the family tunes (and caches)
      // independently.
      const ApnnStage& st = net.stages()[s.stage];
      const bool is_out = s.kind == StepKind::kAttnOut;
      const core::ApOperand& w =
          is_out ? st.attn_wo : attn_proj_weights(st, s.aux);
      core::Epilogue epi;
      if (is_out) {
        epi = st.epilogue;
      } else {
        epi.has_relu = true;
        epi.has_quant = true;
        epi.quant = attn_proj_quant(st, s.aux);
      }
      const int in_bits = is_out ? st.epilogue.quant.bits : st.in_bits;
      const std::int64_t n =
          batch * plan.values[static_cast<std::size_t>(s.out)].h;
      if (tuner != nullptr) {
        rb.kern[si] = tuner->tune_apmm(w, n, in_bits, Encoding::kUnsigned01,
                                       epi, /*seq=*/plan.bucket);
      } else {
        rb.kern[si] = heuristic(w.rows(), n, w.cols(), w.bits(), in_bits);
      }
    } else if (s.kind == StepKind::kAttnScores ||
               s.kind == StepKind::kAttnContext) {
      // Per-(sample, head) GEMMs on freshly staged operands: heuristic
      // tiles only — empirical measurement would key on staging scratch,
      // not a stage weight operand.
      const auto& out = plan.values[static_cast<std::size_t>(s.out)];
      const std::int64_t seq = out.h;
      const std::int64_t dh =
          plan.spec.layers[s.layer].attn.d_head;
      const int abits = out.bits;
      if (s.kind == StepKind::kAttnScores) {
        rb.kern[si] = heuristic(seq, seq, dh, abits, abits);
      } else {
        rb.kern[si] = heuristic(seq, dh, seq, abits, abits);
      }
    }
  }
  return plan.resolved.emplace(batch, std::move(rb)).first->second;
}

}  // namespace

InferenceSession::InferenceSession(const ApnnNetwork& net,
                                   const tcsim::DeviceSpec& dev,
                                   const SessionOptions& opts)
    : net_(net), dev_(dev), opts_(opts) {
  APNN_CHECK(net.calibrated()) << "call calibrate() before compiling";

  // One plan per sequence bucket (a single plan at the spec's input length
  // for fixed-shape models), all sharing the network's weights and the
  // session's slab.
  std::vector<std::int64_t> buckets = net.spec().seq_buckets;
  if (buckets.empty()) {
    buckets.push_back(net.spec().input.h);
  } else {
    std::sort(buckets.begin(), buckets.end());
    buckets.erase(std::unique(buckets.begin(), buckets.end()), buckets.end());
    APNN_CHECK(buckets.front() >= 1) << "sequence buckets must be positive";
    APNN_CHECK(net.spec().input.h <= buckets.back())
        << "calibration length " << net.spec().input.h
        << " exceeds the largest bucket " << buckets.back();
  }
  std::size_t max_slots = 0;
  for (std::int64_t b : buckets) {
    auto plan = std::make_unique<Plan>();
    plan->bucket = b;
    plan->spec = net.spec();
    plan->spec.input.h = b;
    plan->shapes = propagate_shapes(plan->spec);
    Compiler(net, *plan).compile();
    max_slots = std::max(max_slots, plan->num_slots);
    plans_.push_back(std::move(plan));
  }
  slab_.require(max_slots);

  if (opts_.autotune) {
    core::TuningCache* cache = opts_.cache;
    if (cache == nullptr) {
      owned_cache_ = std::make_unique<core::TuningCache>();
      cache = owned_cache_.get();
    }
    tuner_ = std::make_unique<core::Autotuner>(dev_, cache, opts_.tuner,
                                               opts_.pool);
    if (opts_.tune_batch > 0) {
      // Warm every plan of the family: serving mixed-length traffic must
      // never pay a tuning burst per request.
      for (const auto& plan : plans_) {
        resolve_batch(net_, dev_, *plan, opts_.tune_batch, tuner_.get());
      }
    }
  }
}

std::int64_t InferenceSession::tuning_measurements() const {
  return tuner_ != nullptr ? tuner_->measurement_runs() : 0;
}

std::vector<core::TunedKernel> InferenceSession::stage_kernels(
    std::int64_t batch) {
  return resolve_batch(net_, dev_, default_plan(), batch, tuner_.get()).kern;
}

void InferenceSession::validate_sample(const ActShape& shape,
                                       const Tensor<std::int32_t>& sample) {
  const bool batched_rank = sample.rank() == 4;
  APNN_CHECK((sample.rank() == 3 || batched_rank) &&
             (!batched_rank || sample.dim(0) == 1))
      << "sample must be one image: {H, W, C} or {1, H, W, C}";
  const int off = batched_rank ? 1 : 0;
  APNN_CHECK(sample.dim(off) == shape.h && sample.dim(off + 1) == shape.w &&
             sample.dim(off + 2) == shape.c)
      << "sample must be {" << shape.h << ", " << shape.w << ", " << shape.c
      << "}, got {" << sample.dim(off) << ", " << sample.dim(off + 1) << ", "
      << sample.dim(off + 2) << "}";
  const std::int32_t* s = sample.data();
  for (std::int64_t i = 0; i < sample.numel(); ++i) {
    APNN_CHECK(s[i] >= 0 && s[i] <= 255)
        << "sample value " << s[i] << " at index " << i
        << " is not an 8-bit input code";
  }
}

void InferenceSession::validate_sample(
    const ActShape& shape, const std::vector<std::int64_t>& seq_buckets,
    const Tensor<std::int32_t>& sample) {
  if (seq_buckets.empty()) {
    validate_sample(shape, sample);
    return;
  }
  const bool batched_rank = sample.rank() == 4;
  APNN_CHECK((sample.rank() == 3 || batched_rank) &&
             (!batched_rank || sample.dim(0) == 1))
      << "sample must be one sequence: {S, W, C} or {1, S, W, C}";
  const int off = batched_rank ? 1 : 0;
  const std::int64_t s_len = sample.dim(off);
  const std::int64_t max_bucket = seq_buckets.back();
  APNN_CHECK(s_len >= 1 && s_len <= max_bucket)
      << "sequence length " << s_len << " outside the bucket range [1, "
      << max_bucket << "]";
  APNN_CHECK(sample.dim(off + 1) == shape.w &&
             sample.dim(off + 2) == shape.c)
      << "sample must be {seq, " << shape.w << ", " << shape.c << "}, got {"
      << s_len << ", " << sample.dim(off + 1) << ", " << sample.dim(off + 2)
      << "}";
  const std::int32_t* s = sample.data();
  for (std::int64_t i = 0; i < sample.numel(); ++i) {
    APNN_CHECK(s[i] >= 0 && s[i] <= 255)
        << "sample value " << s[i] << " at index " << i
        << " is not an 8-bit input code";
  }
}

namespace {

/// Stamps the occupancy counters a step collected onto the launch records
/// that step just appended ([first, end) of the sequence). A step that
/// never staged a panel (kOff, or profile-only) leaves the -1 "not
/// measured" default in place.
void annotate_sparsity(tcsim::SequenceProfile* prof, std::size_t first,
                       const core::microkernel::SparsityStats& st) {
  const std::int64_t staged =
      st.staged_words.load(std::memory_order_relaxed);
  for (std::size_t i = first; i < prof->kernels.size(); ++i) {
    tcsim::KernelProfile& k = prof->kernels[i];
    if (staged > 0) k.sparsity_zero_word_fraction = st.zero_word_fraction();
    k.sparsity_sparse_strips =
        st.sparse_strips.load(std::memory_order_relaxed);
    k.sparsity_dense_strips =
        st.dense_strips.load(std::memory_order_relaxed);
    k.sparsity_planes = st.planes.load(std::memory_order_relaxed);
    k.sparsity_planes_elided =
        st.planes_elided.load(std::memory_order_relaxed);
  }
}

}  // namespace

void InferenceSession::run(const Tensor<std::int32_t>& input_u8,
                           Tensor<std::int32_t>* logits,
                           tcsim::SequenceProfile* prof) {
  // Chaos drill: an injected throw here exercises every caller's "the
  // compiled forward pass itself failed" path (the server treats it as a
  // replica failure).
  faultinject::point(faultinject::kSessionRun);
  const ModelSpec& spec = net_.spec();
  APNN_CHECK(input_u8.rank() == 4) << "input must be NHWC {B, S, W, C}";
  const std::int64_t batch = input_u8.dim(0);
  APNN_CHECK(batch >= 1);
  if (spec.seq_buckets.empty()) {
    APNN_CHECK(input_u8.dim(1) == spec.input.h &&
               input_u8.dim(2) == spec.input.w &&
               input_u8.dim(3) == spec.input.c)
        << "input must be NHWC {B, " << spec.input.h << ", " << spec.input.w
        << ", " << spec.input.c << "}";
    run_plan(*plans_.front(), input_u8, logits, prof);
    return;
  }

  // Bucketed sequences: pick the smallest plan that fits and zero-pad the
  // token tail up to its bucket (padded tokens are all-zero codes; their
  // rows never feed back into real tokens' logits through the pooled head).
  APNN_CHECK(input_u8.dim(2) == spec.input.w &&
             input_u8.dim(3) == spec.input.c)
      << "input must be NHWC {B, seq, " << spec.input.w << ", "
      << spec.input.c << "}";
  const std::int64_t seq = input_u8.dim(1);
  APNN_CHECK(seq >= 1) << "input has no tokens";
  Plan& plan = plan_for(seq);
  if (seq == plan.bucket) {
    run_plan(plan, input_u8, logits, prof);
    return;
  }
  const std::int64_t per_tok = spec.input.w * spec.input.c;
  const std::int64_t in_per = seq * per_tok;
  const std::int64_t out_per = plan.bucket * per_tok;
  padded_.reset_shape({batch, plan.bucket, spec.input.w, spec.input.c});
  for (std::int64_t b = 0; b < batch; ++b) {
    std::memcpy(padded_.data() + b * out_per, input_u8.data() + b * in_per,
                sizeof(std::int32_t) * static_cast<std::size_t>(in_per));
    std::memset(padded_.data() + b * out_per + in_per, 0,
                sizeof(std::int32_t) *
                    static_cast<std::size_t>(out_per - in_per));
  }
  run_plan(plan, padded_, logits, prof);
}

void InferenceSession::run_plan(Plan& plan,
                                const Tensor<std::int32_t>& input_u8,
                                Tensor<std::int32_t>* logits,
                                tcsim::SequenceProfile* prof) {
  const std::int64_t batch = input_u8.dim(0);
  // Every kernel and glue loop of this pass runs on the session's pool (a
  // replica's private slice under the server; the global pool otherwise).
  ThreadPool& tp = opts_.pool != nullptr ? *opts_.pool : ThreadPool::global();
  const Plan::ResolvedBatch& rb =
      resolve_batch(net_, dev_, plan, batch, tuner_.get());

  auto slot_of = [&](int vid) -> parallel::SlabSlot& {
    const auto& v = plan.values[static_cast<std::size_t>(vid)];
    APNN_DCHECK(v.slot >= 0);
    return slab_.slot(static_cast<std::size_t>(v.slot));
  };
  auto value = [&](int vid) -> const Plan::Value& {
    return plan.values[static_cast<std::size_t>(vid)];
  };

  for (std::size_t si = 0; si < plan.steps.size(); ++si) {
    const auto& step = plan.steps[si];
    switch (step.kind) {
      case StepKind::kPackInput: {
        const Plan::Value& out = value(step.out);
        parallel::SlabSlot& dst = slot_of(step.out);
        // pack_rows overwrites every padded word — no zero-fill pass.
        dst.packed.reset_shape(batch, out.h, out.w, out.c, 8,
                               /*zero_fill=*/false);
        pack_codes(tp, input_u8.data(), batch * out.h * out.w, out.c, 8,
                   dst.packed.planes);
        if (prof != nullptr) {
          prof->add(core::decompose_profile(batch * out.h * out.w, out.c, 8,
                                            1.0));
        }
        break;
      }
      case StepKind::kConv: {
        const ApnnStage& st = net_.stages()[step.stage];
        core::ApconvOptions o;
        o.autotune = false;
        o.tile = rb.kern[si].tile;
        o.micro = rb.kern[si].micro;
        o.combine_fast = rb.kern[si].combine_fast;
        o.collect_profile = prof != nullptr;
        o.pool = opts_.pool;
        core::microkernel::SparsityStats sstats;
        o.sparsity_stats = prof != nullptr ? &sstats : nullptr;
        parallel::SlabSlot& dst = slot_of(step.out);
        if (st.epilogue.has_quant) {
          o.packed_out = &dst.packed;
        } else {
          o.y_out = &dst.dense;
        }
        const std::size_t first = prof != nullptr ? prof->kernels.size() : 0;
        core::ApconvResult r =
            core::apconv(st.weights, slot_of(step.in).packed, st.in_enc,
                         rb.geom[si], dev_, o, st.epilogue, st.pool);
        if (prof != nullptr) {
          prof->add(r.profile);
          annotate_sparsity(prof, first, sstats);
        }
        break;
      }
      case StepKind::kLinear: {
        const ApnnStage& st = net_.stages()[step.stage];
        const Plan::Value& in = value(step.in);
        const std::int64_t feat = st.weights.cols();

        // Feature operand: lend the kernel existing plane storage — either
        // the producer's own planes (a quantizing apmm upstream) or the
        // step's operand slot filled by the word-granular gather/decompose.
        core::ApOperand xop;
        xop.encoding = st.in_enc;
        bitops::BitPlanes* lender = nullptr;
        if (in.format == ValueFormat::kPackedLinear) {
          APNN_CHECK(in.per_sample() == feat) << "feature count mismatch";
          lender = &slot_of(step.in).planes;
        } else {
          lender = &slab_.slot(static_cast<std::size_t>(step.operand_slot))
                        .planes;
          // The gather writes C-bit slabs into otherwise-untouched rows and
          // needs the zeroed padding; the decompose overwrites every word.
          const bool gather = in.format == ValueFormat::kPackedConv;
          lender->reset_shape(batch, feat, st.in_bits, /*zero_fill=*/gather);
          if (gather) {
            const layout::PackedActivations& x = slot_of(step.in).packed;
            APNN_CHECK(x.h * x.w * x.c == feat) << "feature count mismatch";
            gather_linear_operand(tp, x, *lender);
          } else {
            APNN_CHECK(in.per_sample() == feat) << "feature count mismatch";
            decompose_linear_operand(tp, slot_of(step.in).dense.data(),
                                     batch, feat, st.in_bits, *lender);
          }
        }
        xop.planes = std::move(*lender);

        core::ApmmOptions o;
        o.autotune = false;
        o.tile = rb.kern[si].tile;
        o.micro = rb.kern[si].micro;
        o.combine_fast = rb.kern[si].combine_fast;
        o.collect_profile = prof != nullptr;
        o.pool = opts_.pool;
        core::microkernel::SparsityStats sstats;
        o.sparsity_stats = prof != nullptr ? &sstats : nullptr;
        parallel::SlabSlot& dst = slot_of(step.out);
        Tensor<std::int32_t>* raw = nullptr;
        if (st.epilogue.has_quant) {
          o.packed_out = &dst.planes;
        } else {
          raw = &slab_.slot(static_cast<std::size_t>(step.scratch_slot))
                     .dense;
          o.y_out = raw;
        }
        const std::size_t first = prof != nullptr ? prof->kernels.size() : 0;
        core::ApmmResult r = core::apmm(st.weights, xop, dev_, o,
                                        st.epilogue);
        if (prof != nullptr) {
          prof->add(r.profile);
          annotate_sparsity(prof, first, sstats);
        }
        *lender = std::move(xop.planes);

        if (!st.epilogue.has_quant) {
          // apmm emits M x N; the dense value is {B, F}.
          const Plan::Value& out = value(step.out);
          dst.dense.reset_shape({batch, out.c});
          transpose_mn(tp, raw->data(), out.c, batch, dst.dense.data());
        }
        break;
      }
      case StepKind::kResidualAdd: {
        const Plan::Value& out = value(step.out);
        const std::int64_t rows = batch * out.h * out.w;
        const std::int64_t n = rows * out.c;
        parallel::SlabSlot& ds = slot_of(step.out);
        struct Side {
          const std::int32_t* dense;               // null when packed
          const layout::PackedActivations* packed;
        };
        auto side = [&](int vid) -> Side {
          if (value(vid).format == ValueFormat::kDense) {
            return {slot_of(vid).dense.data(), nullptr};
          }
          return {nullptr, &slot_of(vid).packed};
        };
        // Reshape the destination before capturing input pointers: when the
        // output slot aliases an input (same shape) this is a no-op, and
        // otherwise a first-run growth must not invalidate captured data().
        ds.dense.reset_shape({batch, out.h, out.w, out.c});
        Side a = side(step.in), b = side(step.in2);
        std::int32_t* d = ds.dense.data();
        // The output slot may alias either dense input (elementwise slot
        // reuse); materialize the aliasing side first so nothing is
        // clobbered, then accumulate the other (packed sides decode
        // word-wise on the fly — no to_dense copy ever happens).
        if (b.dense == d && b.dense != nullptr) std::swap(a, b);
        if (a.dense != nullptr) {
          if (a.dense != d) {
            std::memcpy(d, a.dense,
                        sizeof(std::int32_t) * static_cast<std::size_t>(n));
          }
        } else {
          decode_planes(tp, a.packed->planes, a.packed->bits, rows, out.c,
                        d, false);
        }
        if (b.dense != nullptr) {
          add_dense(tp, b.dense, d, n);
        } else {
          decode_planes(tp, b.packed->planes, b.packed->bits, rows, out.c,
                        d, true);
        }
        break;
      }
      case StepKind::kRelu: {
        const Plan::Value& out = value(step.out);
        const std::int64_t n = batch * out.per_sample();
        const Tensor<std::int32_t>& src = slot_of(step.in).dense;
        parallel::SlabSlot& ds = slot_of(step.out);
        const std::int32_t* s = src.data();
        if (&ds.dense != &src) {  // in-place when the slot was reused
          if (out.spatial) {
            ds.dense.reset_shape({batch, out.h, out.w, out.c});
          } else {
            ds.dense.reset_shape({batch, out.c});
          }
        }
        relu_dense(tp, s, ds.dense.data(), n);
        break;
      }
      case StepKind::kPool: {
        const Plan::Value& in = value(step.in);
        const Plan::Value& out = value(step.out);
        parallel::SlabSlot& ds = slot_of(step.out);
        ds.dense.reset_shape({batch, out.h, out.w, out.c});
        pool_nhwc(tp, slot_of(step.in).dense.data(), batch, in.h, in.w,
                  in.c, step.pool, ds.dense.data());
        break;
      }
      case StepKind::kQuantize: {
        const Plan::Value& out = value(step.out);
        const std::int64_t rows = batch * out.h * out.w;
        const Tensor<std::int32_t>& src = slot_of(step.in).dense;
        parallel::SlabSlot& ds = slot_of(step.out);
        if (out.format == ValueFormat::kPackedConv) {
          ds.packed.reset_shape(batch, out.h, out.w, out.c, out.bits,
                                /*zero_fill=*/false);
          quantize_pack(tp, src.data(), rows, out.c, step.quant,
                        ds.packed.planes);
        } else {
          const std::int32_t* s = src.data();
          if (&ds.dense != &src) {  // in-place when the slot was reused
            if (out.spatial) {
              ds.dense.reset_shape({batch, out.h, out.w, out.c});
            } else {
              ds.dense.reset_shape({batch, out.c});
            }
          }
          quantize_dense(tp, s, ds.dense.data(), rows * out.c, step.quant);
        }
        break;
      }
      case StepKind::kPack: {
        const Plan::Value& out = value(step.out);
        parallel::SlabSlot& ds = slot_of(step.out);
        ds.packed.reset_shape(batch, out.h, out.w, out.c, out.bits,
                              /*zero_fill=*/false);
        pack_codes(tp, slot_of(step.in).dense.data(),
                   batch * out.h * out.w, out.c, out.bits, ds.packed.planes);
        break;
      }
      case StepKind::kUnpack: {
        const Plan::Value& out = value(step.out);
        const layout::PackedActivations& src = slot_of(step.in).packed;
        parallel::SlabSlot& ds = slot_of(step.out);
        ds.dense.reset_shape({batch, out.h, out.w, out.c});
        decode_planes(tp, src.planes, src.bits, batch * out.h * out.w,
                      out.c, ds.dense.data(), false);
        break;
      }
      case StepKind::kUnpackLinear: {
        const Plan::Value& out = value(step.out);
        const bitops::BitPlanes& src = slot_of(step.in).planes;
        parallel::SlabSlot& ds = slot_of(step.out);
        ds.dense.reset_shape({batch, out.c});
        decode_planes(tp, src.planes, src.bits, batch, out.c,
                      ds.dense.data(), false);
        break;
      }
      case StepKind::kAttnProj: {
        const ApnnStage& st = net_.stages()[step.stage];
        const Plan::Value& in = value(step.in);
        const std::int64_t tokens = batch * in.h * in.w;
        // Lend the producer's plane storage (the input pack, or a previous
        // attention layer's token planes) to the kernel as the N x K token
        // operand — no copy, restored after the call.
        std::vector<bitops::BitMatrix>* lender =
            in.format == ValueFormat::kPackedConv
                ? &slot_of(step.in).packed.planes
                : &slot_of(step.in).planes.planes;
        core::ApOperand xop;
        xop.encoding = st.in_enc;
        xop.planes.rows = tokens;
        xop.planes.cols = in.c;
        xop.planes.bits = in.bits;
        xop.planes.planes = std::move(*lender);

        core::Epilogue epi;
        epi.has_relu = true;
        epi.has_quant = true;
        epi.quant = attn_proj_quant(st, step.aux);

        core::ApmmOptions o;
        o.autotune = false;
        o.tile = rb.kern[si].tile;
        o.micro = rb.kern[si].micro;
        o.combine_fast = rb.kern[si].combine_fast;
        o.collect_profile = prof != nullptr;
        o.pool = opts_.pool;
        o.packed_out = &slot_of(step.out).planes;
        core::ApmmResult r =
            core::apmm(attn_proj_weights(st, step.aux), xop, dev_, o, epi);
        if (prof != nullptr) prof->add(r.profile);
        *lender = std::move(xop.planes.planes);
        break;
      }
      case StepKind::kAttnScores: {
        const AttentionParams& ap = plan.spec.layers[step.layer].attn;
        const Plan::Value& out = value(step.out);
        const std::int64_t seq = out.h;
        const std::int64_t dh = ap.d_head;
        const std::int64_t col0 = static_cast<std::int64_t>(step.aux) * dh;
        const int shift = attn_scale_shift(ap);
        const int abits = out.bits;
        parallel::SlabSlot& s0 =
            slab_.slot(static_cast<std::size_t>(step.scratch_slots[0]));
        parallel::SlabSlot& s1 =
            slab_.slot(static_cast<std::size_t>(step.scratch_slots[1]));
        parallel::SlabSlot& dst = slot_of(step.out);
        // pack_codes overwrites every padded word of the rows it writes.
        dst.planes.reset_shape(batch * seq, seq, abits, /*zero_fill=*/false);
        const bitops::BitPlanes& q = slot_of(step.in).planes;
        const bitops::BitPlanes& k = slot_of(step.in2).planes;
        for (std::int64_t b = 0; b < batch; ++b) {
          stage_col_slice(tp, q, b * seq, seq, col0, dh, s0.planes);
          stage_col_slice(tp, k, b * seq, seq, col0, dh, s1.planes);
          core::ApOperand qop, kop;
          qop.encoding = Encoding::kUnsigned01;
          kop.encoding = Encoding::kUnsigned01;
          qop.planes = std::move(s0.planes);
          kop.planes = std::move(s1.planes);
          core::ApmmOptions o;
          o.autotune = false;
          o.tile = rb.kern[si].tile;
          o.collect_profile = prof != nullptr;
          o.pool = opts_.pool;
          o.y_out = &s0.dense;  // raw seq x seq scores
          core::ApmmResult r =
              core::apmm(qop, kop, dev_, o, core::Epilogue{});
          if (prof != nullptr) prof->add(r.profile);
          s0.planes = std::move(qop.planes);
          s1.planes = std::move(kop.planes);
          // Scale -> integer softmax -> requantize, in place on the raw
          // scores (row max is read out before any write), then pack the
          // sample's row block of the output planes.
          std::int32_t* scores = s0.dense.data();
          tp.parallel_for(0, seq, [&](std::int64_t i) {
            attn_softmax_row(scores + i * seq, seq, shift, abits,
                             scores + i * seq);
          }, kRowGrain);
          pack_codes(tp, scores, seq, seq, abits, dst.planes.planes,
                     kRowGrain, b * seq);
        }
        break;
      }
      case StepKind::kAttnContext: {
        const ApnnStage& st = net_.stages()[step.stage];
        const AttentionParams& ap = plan.spec.layers[step.layer].attn;
        const Plan::Value& out = value(step.out);
        const std::int64_t seq = out.h;
        const std::int64_t dh = ap.d_head;
        const std::int64_t col0 = static_cast<std::int64_t>(step.aux) * dh;
        const int abits = out.bits;
        parallel::SlabSlot& s0 =
            slab_.slot(static_cast<std::size_t>(step.scratch_slots[0]));
        parallel::SlabSlot& s1 =
            slab_.slot(static_cast<std::size_t>(step.scratch_slots[1]));
        parallel::SlabSlot& s2 =
            slab_.slot(static_cast<std::size_t>(step.scratch_slots[2]));
        parallel::SlabSlot& dst = slot_of(step.out);
        dst.planes.reset_shape(batch * seq, dh, abits, /*zero_fill=*/false);
        const bitops::BitPlanes& attn = slot_of(step.in).planes;
        const bitops::BitPlanes& v = slot_of(step.in2).planes;
        for (std::int64_t b = 0; b < batch; ++b) {
          stage_row_block(attn, b * seq, seq, s0.planes);
          stage_col_slice(tp, v, b * seq, seq, col0, dh, s1.planes);
          // Word-granular packed transpose: V_h -> V_h^T is the K-major
          // feature operand of attn x V (replaces the example's old
          // element-wise transpose loop).
          layout::transpose_planes(s1.planes, s2.planes);
          core::ApOperand wop, xop;
          wop.encoding = Encoding::kUnsigned01;
          xop.encoding = Encoding::kUnsigned01;
          wop.planes = std::move(s0.planes);
          xop.planes = std::move(s2.planes);
          core::ApmmOptions o;
          o.autotune = false;
          o.tile = rb.kern[si].tile;
          o.collect_profile = prof != nullptr;
          o.pool = opts_.pool;
          o.y_out = &s1.dense;  // raw seq x d_head context
          core::ApmmResult r =
              core::apmm(wop, xop, dev_, o, core::Epilogue{});
          if (prof != nullptr) prof->add(r.profile);
          s0.planes = std::move(wop.planes);
          s2.planes = std::move(xop.planes);
          relu_quantize_pack(tp, s1.dense.data(), seq, dh,
                             st.attn_ctx_quant, dst.planes.planes, b * seq);
        }
        break;
      }
      case StepKind::kAttnOut: {
        const ApnnStage& st = net_.stages()[step.stage];
        const Plan::Value& out = value(step.out);
        const std::int64_t tokens = batch * out.h;
        const std::int64_t dh =
            plan.spec.layers[step.layer].attn.d_head;
        const int heads = static_cast<int>(step.extra_in.size());
        const int abits = value(step.extra_in[0]).bits;
        parallel::SlabSlot& s0 =
            slab_.slot(static_cast<std::size_t>(step.scratch_slots[0]));
        // Concatenate the heads' context planes into one token-major
        // operand (zero fill keeps the word padding honest; copy_bits
        // writes only each head's column window).
        s0.planes.reset_shape(tokens, static_cast<std::int64_t>(heads) * dh,
                              abits, /*zero_fill=*/true);
        tp.parallel_for(0, tokens, [&](std::int64_t r) {
          for (int h = 0; h < heads; ++h) {
            const bitops::BitPlanes& c = slot_of(step.extra_in[h]).planes;
            for (int t = 0; t < abits; ++t) {
              bitops::copy_bits(
                  s0.planes.planes[static_cast<std::size_t>(t)].row(r),
                  h * dh, c.planes[static_cast<std::size_t>(t)].row(r), 0,
                  dh);
            }
          }
        }, kRowGrain);
        core::ApOperand xop;
        xop.encoding = Encoding::kUnsigned01;
        xop.planes = std::move(s0.planes);
        core::ApmmOptions o;
        o.autotune = false;
        o.tile = rb.kern[si].tile;
        o.micro = rb.kern[si].micro;
        o.combine_fast = rb.kern[si].combine_fast;
        o.collect_profile = prof != nullptr;
        o.pool = opts_.pool;
        o.packed_out = &slot_of(step.out).planes;
        core::ApmmResult r =
            core::apmm(st.attn_wo, xop, dev_, o, st.epilogue);
        if (prof != nullptr) prof->add(r.profile);
        s0.planes = std::move(xop.planes);
        break;
      }
      case StepKind::kUnpackTokens: {
        const Plan::Value& out = value(step.out);
        const bitops::BitPlanes& src = slot_of(step.in).planes;
        parallel::SlabSlot& ds = slot_of(step.out);
        ds.dense.reset_shape({batch, out.h, out.w, out.c});
        decode_planes(tp, src.planes, src.bits, batch * out.h * out.w,
                      out.c, ds.dense.data(), false);
        break;
      }
    }
  }

  // Copy the logits out (the slab keeps ownership of every intermediate).
  const Plan::Value& lv = value(plan.logits_value);
  const Tensor<std::int32_t>& ld = slot_of(plan.logits_value).dense;
  logits->reset_shape({batch, lv.c});
  std::memcpy(logits->data(), ld.data(),
              sizeof(std::int32_t) * static_cast<std::size_t>(batch * lv.c));
  slab_.note_high_water();
}

Tensor<std::int32_t> InferenceSession::run(const Tensor<std::int32_t>& input_u8,
                                           tcsim::SequenceProfile* prof) {
  Tensor<std::int32_t> logits;
  run(input_u8, &logits, prof);
  return logits;
}

}  // namespace apnn::nn

#include "src/nn/server.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/check.hpp"
#include "src/common/faultinject.hpp"

namespace apnn::nn {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(const ApnnNetwork& net,
                                 const tcsim::DeviceSpec& dev,
                                 ServerOptions opts)
    : input_shape_(net.spec().input), opts_(opts) {
  APNN_CHECK(opts_.max_batch >= 1);
  if (opts_.replicas <= 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    opts_.replicas = static_cast<int>(std::clamp(hw / 2, 1u, 8u));
  }
  if (opts_.max_queue <= 0) {
    opts_.max_queue = opts_.replicas * opts_.max_batch * 4;
  }
  if (opts_.session.autotune) {
    if (opts_.session.cache == nullptr) {
      // One server-owned cache shared by every replica: without it each
      // session would keep a private cache and re-measure the same stages.
      owned_cache_ = std::make_unique<core::TuningCache>();
      opts_.session.cache = owned_cache_.get();
    }
    if (opts_.session.tune_batch == 0) {
      opts_.session.tune_batch = opts_.max_batch;
    }
  }

  stats_.replica_batches.assign(static_cast<std::size_t>(opts_.replicas), 0);
  stats_.replica_requests.assign(static_cast<std::size_t>(opts_.replicas), 0);

  // Compile sequentially — with a shared TuningCache, replica 0's eager
  // tune_batch measurements make replicas 1..N-1 compile warm — then start
  // the dispatchers only once the replica vector is final.
  replicas_.resize(static_cast<std::size_t>(opts_.replicas));
  for (Replica& r : replicas_) {
    r.session = std::make_unique<InferenceSession>(net, dev, opts_.session);
  }
  try {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      replicas_[i].thread = std::thread([this, i] { dispatch_loop(i); });
    }
  } catch (...) {
    // A failed std::thread spawn (e.g. EAGAIN) must not unwind past
    // running dispatchers — destroying a joinable thread terminates the
    // process. Stop and join what started, then let the caller see it.
    shutdown();
    throw;
  }
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();  // dispatchers: drain, then exit
  space_cv_.notify_all();  // blocked admissions: fail with "shutting down"
  for (Replica& r : replicas_) {
    if (r.thread.joinable()) r.thread.join();
  }
}

InferenceServer::~InferenceServer() {
  shutdown();
  // Every queued request has completed; wait for the last in-flight infer()
  // to leave the monitor before the mutex and cvs are destroyed.
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return active_clients_ == 0; });
}

Tensor<std::int32_t> InferenceServer::infer(
    const Tensor<std::int32_t>& sample_u8) {
  // Admission validation: a malformed sample (wrong shape, out-of-range
  // code) throws here, in its own caller, and never joins a micro-batch.
  InferenceSession::validate_sample(input_shape_, sample_u8);

  Request req;
  req.sample = &sample_u8;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++active_clients_;
    struct ClientGuard {  // leaves the monitor on every path, throws included
      InferenceServer* s;
      ~ClientGuard() {
        if (--s->active_clients_ == 0 && s->stop_) s->idle_cv_.notify_all();
      }
    } guard{this};
    APNN_CHECK(!stop_) << "server is shutting down";
    // Latency accounting starts at admission — backpressure time spent
    // waiting for queue space below is part of the latency the bound
    // creates, not overhead to hide.
    req.enqueued = std::chrono::steady_clock::now();
    if (static_cast<std::int64_t>(queue_.size()) >= opts_.max_queue) {
      if (opts_.admission == ServerOptions::Admission::kReject) {
        ++stats_.rejected;
        APNN_CHECK(false) << "admission queue full (" << opts_.max_queue
                          << " requests queued)";
      }
      space_cv_.wait(lock, [&] {
        return stop_ ||
               static_cast<std::int64_t>(queue_.size()) < opts_.max_queue;
      });
      APNN_CHECK(!stop_) << "server is shutting down";
    }
    queue_.push_back(&req);
    // stats().queue_depth is computed live from queue_.size(); only the
    // peak needs recording here.
    stats_.peak_queue_depth = std::max(
        stats_.peak_queue_depth, static_cast<std::int64_t>(queue_.size()));
    queue_cv_.notify_one();
    done_cv_.wait(lock, [&] { return req.done; });
  }
  if (req.error) std::rethrow_exception(req.error);
  return std::move(req.logits);
}

void InferenceServer::dispatch_loop(std::size_t replica_index) {
  Replica& rep = replicas_[replica_index];
  std::vector<Request*> batch;
  batch.reserve(static_cast<std::size_t>(opts_.max_batch));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      // Hold the batch open up to batch_window for more requests (unless
      // shutdown wants the queue drained as fast as possible). Requests
      // stay queued during the window, so another replica may legitimately
      // take them — a zero take just re-enters the outer wait.
      if (!stop_ &&
          static_cast<std::int64_t>(queue_.size()) < opts_.max_batch) {
        const auto deadline =
            std::chrono::steady_clock::now() + opts_.batch_window;
        while (!stop_ &&
               static_cast<std::int64_t>(queue_.size()) < opts_.max_batch) {
          if (queue_cv_.wait_until(lock, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      const std::int64_t take = std::min<std::int64_t>(
          opts_.max_batch, static_cast<std::int64_t>(queue_.size()));
      if (take == 0) continue;
      batch.clear();
      for (std::int64_t i = 0; i < take; ++i) {
        batch.push_back(queue_.front());
        queue_.pop_front();
      }
      // The queue may still hold a batch's worth for an idle replica, and
      // admission backpressure has space again.
      if (!queue_.empty()) queue_cv_.notify_one();
      space_cv_.notify_all();
    }

    // An exception escaping the rest of this cycle — anywhere outside the
    // per-batch handler below — used to unwind out of the dispatcher thread
    // with `batch` already dequeued: those clients waited on done_cv_
    // forever. Fail them explicitly and retire the thread instead; the
    // faultinject site drills exactly that path.
    std::exception_ptr cycle_failure;
    try {
    const auto batch_start = std::chrono::steady_clock::now();
    const std::int64_t b = static_cast<std::int64_t>(batch.size());
    const std::int64_t sample_elems = input_shape_.numel();
    faultinject::point(faultinject::kReplicaDispatch);
    std::exception_ptr failure;
    try {
      // Gather: each sample's HWC block is contiguous in the NHWC batch.
      rep.batch_input.reset_shape(
          {b, input_shape_.h, input_shape_.w, input_shape_.c});
      for (std::int64_t i = 0; i < b; ++i) {
        std::memcpy(rep.batch_input.data() + i * sample_elems,
                    batch[static_cast<std::size_t>(i)]->sample->data(),
                    sizeof(std::int32_t) *
                        static_cast<std::size_t>(sample_elems));
      }
      rep.session->run(rep.batch_input, &rep.batch_logits);
      const std::int64_t classes = rep.batch_logits.dim(1);
      for (std::int64_t i = 0; i < b; ++i) {
        Request* r = batch[static_cast<std::size_t>(i)];
        r->logits.reset_shape({classes});
        std::memcpy(r->logits.data(), rep.batch_logits.data() + i * classes,
                    sizeof(std::int32_t) * static_cast<std::size_t>(classes));
      }
    } catch (...) {
      // Samples are validated at admission, so this is a systemic failure
      // (not one bad sample); report it to the batch and keep dispatching.
      failure = std::current_exception();
    }
    const auto batch_end = std::chrono::steady_clock::now();

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Request* r : batch) {
        r->error = failure;
        r->done = true;
        const double latency = elapsed_ms(r->enqueued, batch_end);
        stats_.total_latency_ms += latency;
        stats_.max_latency_ms = std::max(stats_.max_latency_ms, latency);
      }
      stats_.requests += b;
      stats_.batches += 1;
      stats_.max_batch = std::max(stats_.max_batch, b);
      stats_.total_batch_ms += elapsed_ms(batch_start, batch_end);
      stats_.replica_batches[replica_index] += 1;
      stats_.replica_requests[replica_index] += b;
    }
    done_cv_.notify_all();
    } catch (...) {
      cycle_failure = std::current_exception();
    }
    if (cycle_failure) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (Request* r : batch) {
          if (!r->done) {
            r->error = cycle_failure;
            r->done = true;
          }
        }
      }
      done_cv_.notify_all();
      return;  // this dispatcher is compromised; retire rather than guess
    }
  }
}

InferenceServer::Stats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.queue_depth = static_cast<std::int64_t>(queue_.size());
  return s;
}

std::int64_t InferenceServer::tuning_measurements() const {
  std::int64_t total = 0;
  for (const Replica& r : replicas_) total += r.session->tuning_measurements();
  return total;
}

std::int64_t InferenceServer::replica_tuning_measurements(int replica) const {
  APNN_CHECK(replica >= 0 && replica < replicas());
  return replicas_[static_cast<std::size_t>(replica)]
      .session->tuning_measurements();
}

}  // namespace apnn::nn

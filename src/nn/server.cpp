#include "src/nn/server.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/check.hpp"

namespace apnn::nn {

InferenceServer::InferenceServer(const ApnnNetwork& net,
                                 const tcsim::DeviceSpec& dev,
                                 ServerOptions opts)
    : session_(net, dev), input_shape_(net.spec().input), opts_(opts) {
  APNN_CHECK(opts_.max_batch >= 1);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceServer::~InferenceServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

Tensor<std::int32_t> InferenceServer::infer(
    const Tensor<std::int32_t>& sample_u8) {
  const bool batched_rank = sample_u8.rank() == 4;
  APNN_CHECK((sample_u8.rank() == 3 || batched_rank) &&
             (!batched_rank || sample_u8.dim(0) == 1))
      << "infer() takes one sample: {H, W, C} or {1, H, W, C}";
  const int off = batched_rank ? 1 : 0;
  APNN_CHECK(sample_u8.dim(off) == input_shape_.h &&
             sample_u8.dim(off + 1) == input_shape_.w &&
             sample_u8.dim(off + 2) == input_shape_.c)
      << "sample must be {" << input_shape_.h << ", " << input_shape_.w
      << ", " << input_shape_.c << "}";

  Request req;
  req.sample = &sample_u8;
  {
    std::unique_lock<std::mutex> lock(mu_);
    APNN_CHECK(!stop_) << "server is shutting down";
    queue_.push_back(&req);
    queue_cv_.notify_one();
    done_cv_.wait(lock, [&] { return req.done; });
  }
  if (req.error) std::rethrow_exception(req.error);
  return std::move(req.logits);
}

void InferenceServer::dispatch_loop() {
  std::vector<Request*> batch;
  batch.reserve(static_cast<std::size_t>(opts_.max_batch));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      // Hold the batch open up to batch_window for more requests (unless
      // shutdown wants the queue drained as fast as possible).
      const auto deadline =
          std::chrono::steady_clock::now() + opts_.batch_window;
      while (!stop_ &&
             static_cast<std::int64_t>(queue_.size()) < opts_.max_batch) {
        if (queue_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      const std::int64_t take = std::min<std::int64_t>(
          opts_.max_batch, static_cast<std::int64_t>(queue_.size()));
      batch.clear();
      for (std::int64_t i = 0; i < take; ++i) {
        batch.push_back(queue_.front());
        queue_.pop_front();
      }
    }

    const std::int64_t b = static_cast<std::int64_t>(batch.size());
    const std::int64_t sample_elems = input_shape_.numel();
    std::exception_ptr failure;
    try {
      // Gather: each sample's HWC block is contiguous in the NHWC batch.
      batch_input_.reset_shape(
          {b, input_shape_.h, input_shape_.w, input_shape_.c});
      for (std::int64_t i = 0; i < b; ++i) {
        std::memcpy(batch_input_.data() + i * sample_elems,
                    batch[static_cast<std::size_t>(i)]->sample->data(),
                    sizeof(std::int32_t) *
                        static_cast<std::size_t>(sample_elems));
      }
      session_.run(batch_input_, &batch_logits_);
      const std::int64_t classes = batch_logits_.dim(1);
      for (std::int64_t i = 0; i < b; ++i) {
        Request* r = batch[static_cast<std::size_t>(i)];
        r->logits.reset_shape({classes});
        std::memcpy(r->logits.data(), batch_logits_.data() + i * classes,
                    sizeof(std::int32_t) * static_cast<std::size_t>(classes));
      }
    } catch (...) {
      failure = std::current_exception();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Request* r : batch) {
        r->error = failure;
        r->done = true;
      }
      stats_.requests += b;
      stats_.batches += 1;
      stats_.max_batch = std::max(stats_.max_batch, b);
    }
    done_cv_.notify_all();
  }
}

InferenceServer::Stats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace apnn::nn

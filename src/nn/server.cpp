#include "src/nn/server.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/common/check.hpp"
#include "src/common/faultinject.hpp"

namespace apnn::nn {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorKind::kQueueFull: return "queue_full";
    case ErrorKind::kShuttingDown: return "shutting_down";
    case ErrorKind::kInvalidSample: return "invalid_sample";
    case ErrorKind::kReplicaFailed: return "replica_failed";
  }
  return "unknown";
}

const char* replica_health_name(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kRestarting: return "restarting";
    case ReplicaHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

InferenceServer::Topology InferenceServer::derive_topology(
    const ServerOptions& opts, unsigned hw_threads) {
  const int hw = static_cast<int>(std::max(1u, hw_threads));
  Topology t{opts.replicas, opts.slice_threads};
  if (t.replicas <= 0 && t.slice_threads <= 0) {
    // Half the hardware as replicas (clamped to [1, 8]) — enough to overlap
    // the serial sections of a dispatch cycle — and the rest of the width
    // split evenly among them. Total = replicas * slice <= hw, which the
    // old derivation (hw/2 replicas, each on an hw-wide global pool,
    // ~hw^2/2 runnable threads under load) badly violated.
    t.replicas = std::clamp(hw / 2, 1, 8);
    t.slice_threads = std::max(1, hw / t.replicas);
  } else if (t.replicas > 0 && t.slice_threads <= 0) {
    t.slice_threads = std::max(1, hw / t.replicas);
  } else if (t.replicas <= 0) {
    t.replicas = std::clamp(hw / t.slice_threads, 1, 8);
  }
  return t;
}

InferenceServer::InferenceServer(const ApnnNetwork& net,
                                 const tcsim::DeviceSpec& dev,
                                 ServerOptions opts)
    : net_(net), dev_(dev), input_shape_(net.spec().input), opts_(opts) {
  seq_buckets_ = net.spec().seq_buckets;
  std::sort(seq_buckets_.begin(), seq_buckets_.end());
  seq_buckets_.erase(
      std::unique(seq_buckets_.begin(), seq_buckets_.end()),
      seq_buckets_.end());
  APNN_CHECK(opts_.max_batch >= 1);
  APNN_CHECK(opts_.max_replica_restarts >= 0);
  APNN_CHECK(opts_.stuck_threshold.count() > 0);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const Topology topo = derive_topology(opts_, hw);
  opts_.replicas = topo.replicas;
  opts_.slice_threads = topo.slice_threads;
  if (opts_.max_queue <= 0) {
    opts_.max_queue = opts_.replicas * opts_.max_batch * 4;
  }
  if (opts_.degrade_high_water <= 0) {
    opts_.degrade_high_water = std::max<std::int64_t>(1, opts_.max_queue / 2);
  }
  opts_.degrade_high_water =
      std::min(opts_.degrade_high_water, opts_.max_queue);
  if (opts_.session.autotune) {
    if (opts_.session.cache == nullptr) {
      // One server-owned cache shared by every replica: without it each
      // session would keep a private cache and re-measure the same stages —
      // and every replica restart would re-tune from scratch. Keyed to the
      // slice width: measurements run on slice-wide pools, so the cache
      // fingerprint must say t<slice>, not the global pool's width.
      owned_cache_ = std::make_unique<core::TuningCache>(
          static_cast<unsigned>(opts_.slice_threads));
      opts_.session.cache = owned_cache_.get();
    }
    if (opts_.session.tune_batch == 0) {
      opts_.session.tune_batch = opts_.max_batch;
    }
  }

  stats_.replica_batches.assign(static_cast<std::size_t>(opts_.replicas), 0);
  stats_.replica_requests.assign(static_cast<std::size_t>(opts_.replicas), 0);

  // Build each replica's private pool slice, then compile its session on
  // that slice. Compilation is sequential — with a shared TuningCache,
  // replica 0's eager tune_batch measurements make replicas 1..N-1 compile
  // warm — and the dispatchers and monitor start only once the replica
  // vector is final.
  replicas_.resize(static_cast<std::size_t>(opts_.replicas));
  const int slice = opts_.slice_threads;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    ThreadPoolOptions po;
    po.num_threads = static_cast<unsigned>(slice);
    // A dispatcher's nested wait must stay bounded by its own batch — no
    // absorbing a sibling's chunks while a deadline clock runs (§10).
    po.help_foreign = false;
    po.pin_threads = opts_.pin_threads;
    if (opts_.pin_threads) {
      // Contiguous CPU ranges: replica r owns [r*slice, (r+1)*slice), slot
      // 0 being the dispatcher itself (pinned in dispatch_loop). Modulo hw
      // keeps explicit oversubscribed topologies legal.
      po.cpus.resize(static_cast<std::size_t>(slice));
      for (int t = 0; t < slice; ++t) {
        po.cpus[static_cast<std::size_t>(t)] = static_cast<int>(
            (r * static_cast<std::size_t>(slice) + static_cast<std::size_t>(t)) %
            hw);
      }
    }
    if (opts_.work_stealing && replicas_.size() > 1) {
      po.steal_group = &steal_group_;
    }
    replicas_[r].pool = std::make_unique<ThreadPool>(po);
    replicas_[r].session =
        std::make_unique<InferenceSession>(net, dev, session_options_for(r));
  }
  try {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      replicas_[i].thread = std::thread([this, i] { dispatch_loop(i); });
    }
    monitor_ = std::thread([this] { monitor_loop(); });
  } catch (...) {
    // A failed std::thread spawn (e.g. EAGAIN) must not unwind past
    // running dispatchers — destroying a joinable thread terminates the
    // process. Stop and join what started, then let the caller see it.
    shutdown();
    throw;
  }
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();    // dispatchers: drain, then exit
  space_cv_.notify_all();    // blocked admissions: fail with kShuttingDown
  monitor_cv_.notify_all();  // monitor: exit (no restarts during shutdown)
  if (monitor_.joinable()) monitor_.join();
  for (Replica& r : replicas_) {
    if (r.thread.joinable()) r.thread.join();
  }
  // The dispatchers drain the queue before exiting, so anything still
  // queued here means no dispatcher survived shutdown (crashed or
  // quarantined). Those clients must fail, not strand.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const RequestPtr& r : queue_) {
      if (!r->done) {
        complete_with_error_locked(
            r, ErrorKind::kShuttingDown,
            "server shut down before the request could be dispatched");
      }
    }
    queue_.clear();
  }
  done_cv_.notify_all();
}

InferenceServer::~InferenceServer() {
  shutdown();
  // Every queued request has completed; wait for the last in-flight infer()
  // to leave the monitor before the mutex and cvs are destroyed.
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return active_clients_ == 0; });
}

void InferenceServer::fail_caller_locked(ErrorKind kind,
                                         const std::string& msg) {
  ++stats_.error_counts[static_cast<std::size_t>(kind)];
  throw ServerError(kind, msg);
}

void InferenceServer::complete_with_error_locked(const RequestPtr& req,
                                                 ErrorKind kind,
                                                 const std::string& msg) {
  req->failed = true;
  req->error_kind = kind;
  req->error_message = msg;
  req->done = true;
  ++stats_.error_counts[static_cast<std::size_t>(kind)];
}

void InferenceServer::expire_queued_locked(
    std::chrono::steady_clock::time_point now) {
  bool removed = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if ((*it)->deadline != kNoDeadline && now >= (*it)->deadline) {
      complete_with_error_locked(
          *it, ErrorKind::kDeadlineExceeded,
          "deadline expired while queued (never occupied a batch slot)");
      it = queue_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  if (removed) {
    done_cv_.notify_all();
    space_cv_.notify_all();
  }
}

void InferenceServer::shed_oldest_locked() {
  const RequestPtr oldest = queue_.front();
  queue_.pop_front();
  complete_with_error_locked(
      oldest, ErrorKind::kQueueFull,
      "shed by degraded admission (queue full; oldest request dropped)");
  ++stats_.shed;
  done_cv_.notify_all();
}

std::chrono::microseconds InferenceServer::effective_window_locked() const {
  if (stop_) return std::chrono::microseconds(0);  // drain at full tilt
  if (degraded_ && opts_.admission == ServerOptions::Admission::kDegrade) {
    return opts_.degrade_window;
  }
  return opts_.batch_window;
}

InferenceServer::Deadline InferenceServer::earliest_queued_deadline_locked()
    const {
  Deadline earliest = kNoDeadline;
  for (const RequestPtr& r : queue_) {
    earliest = std::min(earliest, r->deadline);
  }
  return earliest;
}

Tensor<std::int32_t> InferenceServer::infer(
    const Tensor<std::int32_t>& sample_u8, std::chrono::milliseconds budget) {
  return infer(sample_u8, std::chrono::steady_clock::now() + budget);
}

Tensor<std::int32_t> InferenceServer::infer(
    const Tensor<std::int32_t>& sample_u8, Deadline deadline) {
  // Admission validation: a malformed sample (wrong shape, out-of-range
  // code) throws here, in its own caller, and never joins a micro-batch.
  try {
    if (seq_buckets_.empty()) {
      InferenceSession::validate_sample(input_shape_, sample_u8);
    } else {
      InferenceSession::validate_sample(input_shape_, seq_buckets_,
                                        sample_u8);
    }
  } catch (const Error& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.error_counts[static_cast<std::size_t>(
          ErrorKind::kInvalidSample)];
    }
    throw ServerError(ErrorKind::kInvalidSample, e.what());
  }
  faultinject::point(faultinject::kAdmission);

  // Shared ownership: the queue, a dispatching replica and the monitor may
  // all still hold the request after this caller has been failed out of it
  // (deadline, stuck replica) — the control block keeps their pointers
  // valid. The sample tensor itself stays caller-owned: it is only read
  // under mu_ while the request is queued, and a queued request's client is
  // by definition still parked below.
  auto req = std::make_shared<Request>();
  req->sample = &sample_u8;
  req->deadline = deadline;
  if (!seq_buckets_.empty()) {
    // Resolve the bucket once, at admission — dispatchers group by it.
    req->seq = sample_u8.dim(sample_u8.rank() == 4 ? 1 : 0);
    for (std::int64_t b : seq_buckets_) {
      if (b >= req->seq) {
        req->bucket = b;
        break;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++active_clients_;
    struct ClientGuard {  // leaves the monitor on every path, throws included
      InferenceServer* s;
      ~ClientGuard() {
        if (--s->active_clients_ == 0 && s->stop_) s->idle_cv_.notify_all();
      }
    } guard{this};
    if (stop_) {
      fail_caller_locked(ErrorKind::kShuttingDown, "server is shutting down");
    }
    if (no_replicas_) {
      fail_caller_locked(ErrorKind::kReplicaFailed,
                         "every replica is quarantined");
    }
    // Latency accounting starts at admission — backpressure time spent
    // waiting for queue space below is part of the latency the bound
    // creates, not overhead to hide.
    req->enqueued = std::chrono::steady_clock::now();
    if (deadline != kNoDeadline && req->enqueued >= deadline) {
      fail_caller_locked(ErrorKind::kDeadlineExceeded,
                         "deadline expired before admission");
    }
    if (static_cast<std::int64_t>(queue_.size()) >= opts_.max_queue) {
      switch (opts_.admission) {
        case ServerOptions::Admission::kReject: {
          ++stats_.rejected;
          std::ostringstream os;
          os << "admission queue full (" << opts_.max_queue
             << " requests queued)";
          fail_caller_locked(ErrorKind::kQueueFull, os.str());
          break;
        }
        case ServerOptions::Admission::kDegrade:
          // Never block the newest caller: drop-head the oldest queued
          // request to free its slot.
          shed_oldest_locked();
          break;
        case ServerOptions::Admission::kBlock: {
          while (static_cast<std::int64_t>(queue_.size()) >=
                 opts_.max_queue) {
            if (stop_) {
              fail_caller_locked(ErrorKind::kShuttingDown,
                                 "server is shutting down");
            }
            if (no_replicas_) {
              fail_caller_locked(ErrorKind::kReplicaFailed,
                                 "every replica is quarantined");
            }
            if (deadline != kNoDeadline) {
              if (std::chrono::steady_clock::now() >= deadline) {
                fail_caller_locked(ErrorKind::kDeadlineExceeded,
                                   "deadline expired while blocked on "
                                   "admission backpressure");
              }
              space_cv_.wait_until(lock, deadline);
            } else {
              space_cv_.wait(lock);
            }
          }
          if (stop_) {
            fail_caller_locked(ErrorKind::kShuttingDown,
                               "server is shutting down");
          }
          if (no_replicas_) {
            fail_caller_locked(ErrorKind::kReplicaFailed,
                               "every replica is quarantined");
          }
          break;
        }
      }
    }
    queue_.push_back(req);
    // stats().queue_depth is computed live from queue_.size(); only the
    // peak needs recording here.
    stats_.peak_queue_depth = std::max(
        stats_.peak_queue_depth, static_cast<std::int64_t>(queue_.size()));
    if (opts_.admission == ServerOptions::Admission::kDegrade && !degraded_ &&
        static_cast<std::int64_t>(queue_.size()) >= opts_.degrade_high_water) {
      degraded_ = true;
      ++stats_.degrade_entries;
    }
    queue_cv_.notify_one();
    done_cv_.wait(lock, [&] { return req->done; });
  }
  if (req->failed) throw ServerError(req->error_kind, req->error_message);
  return std::move(req->logits);
}

SessionOptions InferenceServer::session_options_for(
    std::size_t replica_index) const {
  SessionOptions so = opts_.session;
  so.pool = replicas_[replica_index].pool.get();
  return so;
}

void InferenceServer::dispatch_loop(std::size_t replica_index) {
  if (opts_.pin_threads) {
    // The dispatcher is its pool's participating caller — pin it to slot 0
    // of the replica's CPU range (the pool's workers took slots 1..).
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    ThreadPool::pin_current_thread(static_cast<int>(
        (replica_index * static_cast<std::size_t>(opts_.slice_threads)) % hw));
  }
  // An exception escaping the cycle below — the session run, the injected
  // replica.dispatch fault, anything outside a per-request path — is a
  // replica failure. Requests the replica holds are its responsibility:
  // fail them explicitly (never strand a waiting client), then retire the
  // thread and let the monitor decide between restart and quarantine.
  std::vector<RequestPtr> batch;
  batch.reserve(static_cast<std::size_t>(opts_.max_batch));
  for (;;) {
    batch.clear();
    bool keep_going = false;
    try {
      keep_going = dispatch_cycle(replica_index, batch);
    } catch (...) {
      std::string what = "unknown failure";
      try {
        throw;
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        Replica& rep = replicas_[replica_index];
        for (const RequestPtr& r : batch) {
          if (!r->done) {
            complete_with_error_locked(
                r, ErrorKind::kReplicaFailed,
                "replica " + std::to_string(replica_index) +
                    " failed mid-dispatch: " + what);
          }
        }
        rep.in_flight.clear();
        rep.in_cycle = false;
        rep.declared_stuck = false;
        rep.exited = true;  // monitor: join me, then restart or quarantine
      }
      done_cv_.notify_all();
      monitor_cv_.notify_all();
      return;
    }
    if (!keep_going) return;
  }
}

// One dispatch cycle: dequeue a batch (blocking), run it, respond. Leaves
// the dequeued requests in `batch` so dispatch_loop can fail them if the
// cycle throws between dequeue and response. Returns false when the thread
// should exit: shutdown has drained the queue, or the monitor declared this
// replica stuck while the cycle ran (the replica retires so a fresh thread
// can take its slot).
bool InferenceServer::dispatch_cycle(std::size_t replica_index,
                                     std::vector<RequestPtr>& batch) {
  Replica& rep = replicas_[replica_index];
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // stop requested and fully drained
    // Expired requests fail at dequeue — before occupying a batch slot.
    expire_queued_locked(std::chrono::steady_clock::now());
    // Hold the batch open up to the effective window for more requests
    // (unless shutdown wants the queue drained as fast as possible) — but
    // never past the earliest deadline among the queued requests: the
    // window is clipped to just short of that deadline so the batch forms
    // while its most urgent member can still be served. Requests stay
    // queued during the window, so another replica may legitimately take
    // them — a zero take just re-enters the outer wait.
    if (!stop_ && !queue_.empty() &&
        static_cast<std::int64_t>(queue_.size()) < opts_.max_batch) {
      const Deadline window_end =
          std::chrono::steady_clock::now() + effective_window_locked();
      while (!stop_ &&
             static_cast<std::int64_t>(queue_.size()) < opts_.max_batch) {
        Deadline limit = window_end;
        const Deadline urgent = earliest_queued_deadline_locked();
        if (urgent != kNoDeadline) {
          limit = std::min(limit, urgent - std::chrono::milliseconds(1));
        }
        if (queue_cv_.wait_until(lock, limit) == std::cv_status::timeout) {
          break;
        }
      }
      expire_queued_locked(std::chrono::steady_clock::now());
    }
    if (queue_.empty()) return true;
    // Dequeue and gather in one critical section: a queued request's
    // client is parked in infer() (queued implies not done), so its
    // caller-owned sample tensor is alive exactly here and only here.
    //
    // Dynamic-shape models batch by bucket: the head request picks the
    // bucket and the scan takes only same-bucket requests (FIFO within the
    // bucket, head-of-line for the rest) — one micro-batch never mixes
    // sequence buckets, so one session run serves it from one family plan.
    const std::int64_t bucket = queue_.front()->bucket;
    const std::int64_t rows =
        seq_buckets_.empty() ? input_shape_.h : bucket;
    const std::int64_t row_elems = input_shape_.w * input_shape_.c;
    for (auto it = queue_.begin();
         it != queue_.end() &&
         static_cast<std::int64_t>(batch.size()) < opts_.max_batch;) {
      if ((*it)->bucket == bucket) {
        batch.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    const std::int64_t take = static_cast<std::int64_t>(batch.size());
    rep.batch_input.reset_shape(
        {take, rows, input_shape_.w, input_shape_.c});
    for (std::int64_t i = 0; i < take; ++i) {
      const RequestPtr& r = batch[static_cast<std::size_t>(i)];
      const std::int64_t in_elems =
          (seq_buckets_.empty() ? rows : r->seq) * row_elems;
      std::int32_t* dst = rep.batch_input.data() + i * rows * row_elems;
      std::memcpy(dst, r->sample->data(),
                  sizeof(std::int32_t) * static_cast<std::size_t>(in_elems));
      if (in_elems < rows * row_elems) {
        std::memset(dst + in_elems, 0,
                    sizeof(std::int32_t) *
                        static_cast<std::size_t>(rows * row_elems - in_elems));
      }
    }
    rep.in_flight = batch;
    rep.in_cycle = true;
    rep.cycle_start = std::chrono::steady_clock::now();
    if (degraded_ &&
        static_cast<std::int64_t>(queue_.size()) * 2 <=
            opts_.degrade_high_water) {
      degraded_ = false;  // backlog drained below half the high-water mark
    }
    // The queue may still hold a batch's worth for an idle replica, and
    // admission backpressure has space again.
    if (!queue_.empty()) queue_cv_.notify_one();
    space_cv_.notify_all();
  }

  // Chaos drill for the dequeued-then-died path: the requests in `batch`
  // are no longer queued, so only the dispatch_loop catch can save them.
  faultinject::point(faultinject::kReplicaDispatch);

  const auto batch_start = std::chrono::steady_clock::now();
  const std::int64_t b = static_cast<std::int64_t>(batch.size());
  // A throw from the session run escapes to dispatch_loop: the batch fails
  // with kReplicaFailed and this replica retires. Per-sample validation at
  // admission means a well-formed batch never organically throws here —
  // anything that does is a replica-level defect, not a request-level one.
  rep.session->run(rep.batch_input, &rep.batch_logits);
  const auto batch_end = std::chrono::steady_clock::now();

  bool retire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t classes = rep.batch_logits.dim(1);
    std::int64_t served = 0;
    for (std::int64_t i = 0; i < b; ++i) {
      const RequestPtr& r = batch[static_cast<std::size_t>(i)];
      if (r->done) continue;  // the monitor already failed it (stuck cycle)
      r->logits.reset_shape({classes});
      std::memcpy(r->logits.data(), rep.batch_logits.data() + i * classes,
                  sizeof(std::int32_t) * static_cast<std::size_t>(classes));
      r->done = true;
      ++served;
      const double latency = elapsed_ms(r->enqueued, batch_end);
      stats_.total_latency_ms += latency;
      stats_.max_latency_ms = std::max(stats_.max_latency_ms, latency);
    }
    stats_.requests += served;
    stats_.batches += 1;
    stats_.max_batch = std::max(stats_.max_batch, b);
    stats_.total_batch_ms += elapsed_ms(batch_start, batch_end);
    stats_.replica_batches[replica_index] += 1;
    stats_.replica_requests[replica_index] += served;
    rep.in_flight.clear();
    rep.in_cycle = false;
    if (rep.declared_stuck) {
      // The monitor gave up on this cycle while it ran: its requests were
      // already failed (skipped above). Retire so the monitor can join and
      // restart this replica with a fresh session.
      rep.declared_stuck = false;
      rep.exited = true;
      retire = true;
    }
  }
  batch.clear();  // responded: nothing left for the dispatch_loop catch
  done_cv_.notify_all();
  if (retire) monitor_cv_.notify_all();
  return !retire;
}

void InferenceServer::monitor_loop() {
  // Poll often enough to catch a stuck cycle promptly but stay invisible
  // next to real dispatch work; crash notifications arrive via monitor_cv_
  // without waiting out the poll.
  const auto poll = std::clamp(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          opts_.stuck_threshold / 4),
      std::chrono::milliseconds(1), std::chrono::milliseconds(200));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    monitor_cv_.wait_for(lock, poll, [&] {
      if (stop_) return true;
      for (const Replica& r : replicas_) {
        if (r.exited) return true;
      }
      return false;
    });
    if (stop_) return;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      Replica& rep = replicas_[i];
      if (rep.health == ReplicaHealth::kQuarantined) continue;

      if (rep.exited) {
        // The dispatcher retired (crash, or stuck-then-completed). Join it
        // and recompile outside the lock — a restart must not stall
        // admission or the other replicas. A shared warm TuningCache makes
        // the recompile measurement-free.
        rep.exited = false;
        rep.health = ReplicaHealth::kRestarting;
        ++rep.crashes;
        std::thread dead = std::move(rep.thread);
        const bool too_many = rep.crashes > opts_.max_replica_restarts;
        lock.unlock();
        if (dead.joinable()) dead.join();
        std::unique_ptr<InferenceSession> fresh;
        if (!too_many) {
          try {
            // session_options_for: the fresh session lands back on the
            // replica's own pool slice (rep.pool is never reassigned, so
            // reading it without the lock is safe).
            fresh = std::make_unique<InferenceSession>(
                net_, dev_, session_options_for(i));
          } catch (...) {
            // Recompile failed — quarantine below.
          }
        }
        lock.lock();
        bool started = false;
        if (fresh != nullptr && !stop_) {
          rep.session = std::move(fresh);
          try {
            rep.thread = std::thread([this, i] { dispatch_loop(i); });
            started = true;
          } catch (...) {
            // Spawn failed — quarantine below.
          }
        }
        if (started) {
          rep.health = ReplicaHealth::kHealthy;
          ++stats_.replica_restarts;
        } else {
          quarantine_locked(i);
        }
        continue;
      }

      if (rep.in_cycle && !rep.declared_stuck &&
          now - rep.cycle_start > opts_.stuck_threshold) {
        // The cycle has been running past the watchdog: fail its requests
        // now — the waiting clients get kReplicaFailed immediately instead
        // of riding out the stall — and let the thread retire itself when
        // (if) the stalled cycle returns; the exited branch above then
        // restarts it. A thread wedged forever cannot be restarted safely
        // (killing it would corrupt shared kernel state), but its clients
        // are never stranded.
        rep.declared_stuck = true;
        const auto stuck_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - rep.cycle_start)
                .count();
        for (const RequestPtr& r : rep.in_flight) {
          if (!r->done) {
            complete_with_error_locked(
                r, ErrorKind::kReplicaFailed,
                "replica " + std::to_string(i) + " stuck in dispatch for " +
                    std::to_string(stuck_ms) + " ms; request abandoned");
          }
        }
        done_cv_.notify_all();
      }
    }
  }
}

void InferenceServer::quarantine_locked(std::size_t replica_index) {
  replicas_[replica_index].health = ReplicaHealth::kQuarantined;
  for (const Replica& r : replicas_) {
    if (r.health != ReplicaHealth::kQuarantined) return;
  }
  // The last replica just left rotation: nothing will ever drain the queue
  // again. Fail everything queued and every future admission instead of
  // stranding clients.
  no_replicas_ = true;
  for (const RequestPtr& r : queue_) {
    if (!r->done) {
      complete_with_error_locked(r, ErrorKind::kReplicaFailed,
                                 "every replica is quarantined");
    }
  }
  queue_.clear();
  done_cv_.notify_all();
  space_cv_.notify_all();
}

InferenceServer::Stats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.queue_depth = static_cast<std::int64_t>(queue_.size());
  s.degraded = degraded_;
  s.replica_health.reserve(replicas_.size());
  for (const Replica& r : replicas_) {
    s.replica_health.push_back(r.health);
  }
  return s;
}

std::int64_t InferenceServer::tuning_measurements() const {
  std::int64_t total = 0;
  for (const Replica& r : replicas_) total += r.session->tuning_measurements();
  return total;
}

std::int64_t InferenceServer::replica_tuning_measurements(int replica) const {
  APNN_CHECK(replica >= 0 && replica < replicas());
  return replicas_[static_cast<std::size_t>(replica)]
      .session->tuning_measurements();
}

}  // namespace apnn::nn

// The integer attention tail shared by every attention execution path.
//
// The reference walker (ApnnNetwork), the compiled session steps, and the
// hand-built example head all funnel raw QK^T scores through these exact
// functions, so bit-exactness between the paths holds by construction
// rather than by parallel reimplementation.
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/nn/model.hpp"

namespace apnn::nn {

/// Effective score shift for an attention layer: the explicit spec value,
/// or floor(log2(d_head)) / 2 — the integer analogue of 1/sqrt(d_head).
inline int attn_scale_shift(const AttentionParams& p) {
  if (p.scale_shift >= 0) return p.scale_shift;
  int lg = 0;
  while ((std::int64_t{1} << (lg + 1)) <= p.d_head) ++lg;
  return lg / 2;
}

/// Scale -> integer softmax -> requantize for one row of raw QK^T scores.
/// Scores are arithmetic-shifted right by `shift`, clamped at zero, and
/// renormalized against the row maximum into [0, 2^abits - 1] codes:
/// rows dominated by one key saturate near qmax while flat rows spread
/// their mass — a monotone, overflow-free stand-in for softmax that stays
/// in integer arithmetic end to end.
inline void attn_softmax_row(const std::int32_t* scores, std::int64_t n,
                             int shift, int abits, std::int32_t* codes) {
  std::int64_t row_max = 0;
  for (std::int64_t j = 0; j < n; ++j) {
    row_max = std::max<std::int64_t>(row_max, scores[j] >> shift);
  }
  const std::int64_t span = std::max<std::int64_t>(1, row_max);
  const std::int64_t levels = std::int64_t{1} << abits;
  const std::int64_t qmax = levels - 1;
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int64_t s =
        std::max<std::int64_t>(0, scores[j] >> shift);
    codes[j] = static_cast<std::int32_t>(
        std::min<std::int64_t>(qmax, s * levels / (span + 1)));
  }
}

}  // namespace apnn::nn

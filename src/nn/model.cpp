#include "src/nn/model.hpp"

#include "src/common/check.hpp"

namespace apnn::nn {

namespace {

LayerSpec conv(std::string name, std::int64_t out_c, int kernel, int stride,
               int pad) {
  LayerSpec l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.conv = {out_c, kernel, stride, pad};
  return l;
}

LayerSpec linear(std::string name, std::int64_t out_features) {
  LayerSpec l;
  l.kind = LayerKind::kLinear;
  l.name = std::move(name);
  l.out_features = out_features;
  return l;
}

LayerSpec simple(LayerKind kind, std::string name) {
  LayerSpec l;
  l.kind = kind;
  l.name = std::move(name);
  return l;
}

LayerSpec pool(std::string name, core::PoolSpec::Kind kind, int size) {
  LayerSpec l;
  l.kind = LayerKind::kPool;
  l.name = std::move(name);
  l.pool.kind = kind;
  l.pool.size = size;
  return l;
}

LayerSpec attention(std::string name, int heads, std::int64_t d_head) {
  LayerSpec l;
  l.kind = LayerKind::kAttention;
  l.name = std::move(name);
  l.attn.heads = heads;
  l.attn.d_head = d_head;
  return l;
}

/// conv + BN + ReLU [+ pool] + quantize, the standard APNN stage; pooling
/// precedes quantization so the whole tail fuses into the conv epilogue
/// (the order Fig. 10 fuses).
void conv_block(ModelSpec& m, const std::string& name, std::int64_t out_c,
                int kernel = 3, int stride = 1, int pad = 1,
                int pool_size = 0) {
  m.layers.push_back(conv(name, out_c, kernel, stride, pad));
  m.layers.push_back(simple(LayerKind::kBatchNorm, name + ".bn"));
  m.layers.push_back(simple(LayerKind::kReLU, name + ".relu"));
  if (pool_size > 0) {
    m.layers.push_back(pool(name + ".pool", core::PoolSpec::Kind::kMax,
                            pool_size));
  }
  m.layers.push_back(simple(LayerKind::kQuantize, name + ".quant"));
}

}  // namespace

std::vector<ActShape> propagate_shapes(const ModelSpec& m) {
  std::vector<ActShape> shapes(m.layers.size());
  auto input_shape = [&](std::size_t li) -> ActShape {
    const int src = m.layers[li].input;
    if (src < 0) {
      return li == 0 ? m.input : shapes[li - 1];
    }
    APNN_CHECK(static_cast<std::size_t>(src) < li) << "bad layer reference";
    return shapes[static_cast<std::size_t>(src)];
  };
  for (std::size_t li = 0; li < m.layers.size(); ++li) {
    const LayerSpec& l = m.layers[li];
    const ActShape in = input_shape(li);
    ActShape out = in;
    switch (l.kind) {
      case LayerKind::kConv: {
        layout::ConvGeometry g;
        g.batch = 1;
        g.in_c = in.c;
        g.in_h = in.h;
        g.in_w = in.w;
        g.out_c = l.conv.out_c;
        g.kernel = l.conv.kernel;
        g.stride = l.conv.stride;
        g.pad = l.conv.pad;
        out = {l.conv.out_c, g.out_h(), g.out_w()};
        break;
      }
      case LayerKind::kLinear:
        out = {l.out_features, 1, 1};
        break;
      case LayerKind::kPool:
        if (l.pool.size == 0) {
          // Global pool: one value per channel regardless of the spatial
          // extent (the seq-independent head of bucketed token models).
          out = {in.c, 1, 1};
          break;
        }
        APNN_CHECK(in.h % l.pool.size == 0 && in.w % l.pool.size == 0)
            << "pool " << l.pool.size << " does not tile " << in.h << "x"
            << in.w << " at layer " << l.name;
        out = {in.c, in.h / l.pool.size, in.w / l.pool.size};
        break;
      case LayerKind::kAttention:
        APNN_CHECK(in.w == 1) << "attention tokens run along h (w must be 1) "
                              << "at layer " << l.name;
        APNN_CHECK(l.attn.heads > 0 && l.attn.d_head > 0)
            << "attention heads/d_head unset at layer " << l.name;
        out = in;  // output projection maps heads*d_head back to d_model
        break;
      case LayerKind::kResidualAdd: {
        APNN_CHECK(l.residual >= 0 &&
                   static_cast<std::size_t>(l.residual) < li);
        const ActShape other = shapes[static_cast<std::size_t>(l.residual)];
        APNN_CHECK(other.c == in.c && other.h == in.h && other.w == in.w)
            << "residual shape mismatch at " << l.name;
        break;
      }
      case LayerKind::kBatchNorm:
      case LayerKind::kReLU:
      case LayerKind::kQuantize:
      case LayerKind::kSoftmax:
        break;
    }
    shapes[li] = out;
  }
  return shapes;
}

layout::ConvGeometry conv_geometry(const ModelSpec& m,
                                   const std::vector<ActShape>& shapes,
                                   std::size_t li, std::int64_t batch) {
  const LayerSpec& l = m.layers[li];
  APNN_CHECK(l.kind == LayerKind::kConv);
  const ActShape in =
      l.input < 0 ? (li == 0 ? m.input : shapes[li - 1])
                  : shapes[static_cast<std::size_t>(l.input)];
  layout::ConvGeometry g;
  g.batch = batch;
  g.in_c = in.c;
  g.in_h = in.h;
  g.in_w = in.w;
  g.out_c = l.conv.out_c;
  g.kernel = l.conv.kernel;
  g.stride = l.conv.stride;
  g.pad = l.conv.pad;
  return g;
}

std::int64_t model_macs(const ModelSpec& m) {
  const auto shapes = propagate_shapes(m);
  std::int64_t macs = 0;
  for (std::size_t li = 0; li < m.layers.size(); ++li) {
    const LayerSpec& l = m.layers[li];
    if (l.kind == LayerKind::kConv) {
      macs += conv_geometry(m, shapes, li, 1).macs();
    } else if (l.kind == LayerKind::kLinear) {
      const ActShape in = li == 0 ? m.input : shapes[li - 1];
      macs += in.numel() * l.out_features;
    } else if (l.kind == LayerKind::kAttention) {
      const ActShape in = li == 0 ? m.input : shapes[li - 1];
      const std::int64_t seq = in.h;
      const std::int64_t d_model = in.c;
      const std::int64_t proj = l.attn.heads * l.attn.d_head;
      macs += 3 * seq * d_model * proj;              // Q/K/V projections
      macs += 2 * l.attn.heads * seq * seq * l.attn.d_head;  // QK^T + AV
      macs += seq * proj * d_model;                  // output projection
    }
  }
  return macs;
}

TailScan scan_tail(const ModelSpec& m, std::size_t li) {
  TailScan t;
  for (std::size_t j = li + 1; j < m.layers.size(); ++j) {
    const LayerSpec& l = m.layers[j];
    if (l.input >= 0) break;  // reads another layer: cannot fold
    if (l.kind == LayerKind::kBatchNorm && !t.has_bn) {
      t.has_bn = true;
    } else if (l.kind == LayerKind::kReLU && !t.has_relu) {
      t.has_relu = true;
    } else if (l.kind == LayerKind::kPool && !t.pool.active() &&
               l.pool.kind != core::PoolSpec::Kind::kNone &&
               l.pool.size > 0) {  // global pools never fuse into a tail
      t.pool = l.pool;
    } else if (l.kind == LayerKind::kQuantize && !t.has_quant) {
      t.has_quant = true;
      t.absorbed.push_back(j);
      break;  // quantize ends the tail (its output feeds the next layer)
    } else {
      break;
    }
    t.absorbed.push_back(j);
  }
  return t;
}

ModelSpec alexnet() {
  ModelSpec m;
  m.name = "AlexNet";
  m.input = {3, 224, 224};
  // AlexNet's 11x11/4 conv yields 55x55; pooling with size==stride needs
  // even dims, so the zoo pads to 56 (one extra border column/row).
  conv_block(m, "conv1", 64, 11, 4, 4, 2);  // (224+8-11)/4+1 = 56 -> pool 28
  conv_block(m, "conv2", 192, 5, 1, 2, 2);  // -> 14
  conv_block(m, "conv3", 384, 3, 1, 1);
  conv_block(m, "conv4", 256, 3, 1, 1);
  conv_block(m, "conv5", 256, 3, 1, 1, 2);  // -> 7
  m.layers.push_back(linear("fc6", 4096));
  m.layers.push_back(simple(LayerKind::kReLU, "fc6.relu"));
  m.layers.push_back(simple(LayerKind::kQuantize, "fc6.quant"));
  m.layers.push_back(linear("fc7", 4096));
  m.layers.push_back(simple(LayerKind::kReLU, "fc7.relu"));
  m.layers.push_back(simple(LayerKind::kQuantize, "fc7.quant"));
  m.layers.push_back(linear("fc8", 1000));
  m.layers.push_back(simple(LayerKind::kSoftmax, "softmax"));
  return m;
}

ModelSpec vgg_variant() {
  ModelSpec m;
  m.name = "VGG-Variant";
  m.input = {3, 224, 224};
  conv_block(m, "conv1_1", 64);
  conv_block(m, "conv1_2", 64, 3, 1, 1, 2);   // -> 112
  conv_block(m, "conv2_1", 128);
  conv_block(m, "conv2_2", 128, 3, 1, 1, 2);  // -> 56
  conv_block(m, "conv3_1", 256);
  conv_block(m, "conv3_2", 256, 3, 1, 1, 2);  // -> 28
  conv_block(m, "conv4_1", 512);
  conv_block(m, "conv4_2", 512, 3, 1, 1, 2);  // -> 14
  conv_block(m, "conv5_1", 512);
  conv_block(m, "conv5_2", 512, 3, 1, 1, 2);  // -> 7
  m.layers.push_back(linear("fc6", 4096));
  m.layers.push_back(simple(LayerKind::kReLU, "fc6.relu"));
  m.layers.push_back(simple(LayerKind::kQuantize, "fc6.quant"));
  m.layers.push_back(linear("fc7", 1000));
  m.layers.push_back(simple(LayerKind::kSoftmax, "softmax"));
  return m;
}

ModelSpec resnet18() {
  ModelSpec m;
  m.name = "ResNet-18";
  m.input = {3, 224, 224};
  conv_block(m, "conv1", 64, 7, 2, 3, 2);  // 112 -> pool 56

  auto basic_block = [&m](const std::string& name, std::int64_t channels,
                          int stride) {
    // Index of the block input (last layer so far).
    const int block_in = static_cast<int>(m.layers.size()) - 1;
    m.layers.push_back(conv(name + ".conv1", channels, 3, stride, 1));
    m.layers.push_back(simple(LayerKind::kBatchNorm, name + ".bn1"));
    m.layers.push_back(simple(LayerKind::kReLU, name + ".relu1"));
    m.layers.push_back(simple(LayerKind::kQuantize, name + ".quant1"));
    m.layers.push_back(conv(name + ".conv2", channels, 3, 1, 1));
    m.layers.push_back(simple(LayerKind::kBatchNorm, name + ".bn2"));
    int shortcut = block_in;
    if (stride != 1) {
      // Projection shortcut: 1x1 stride-2 conv reading the block input.
      LayerSpec ds = conv(name + ".downsample", channels, 1, stride, 0);
      ds.input = block_in;
      m.layers.push_back(ds);
      m.layers.push_back(simple(LayerKind::kBatchNorm, name + ".dsbn"));
      shortcut = static_cast<int>(m.layers.size()) - 1;
      // The add reads the main path (bn2) as primary input.
      LayerSpec add = simple(LayerKind::kResidualAdd, name + ".add");
      add.input = static_cast<int>(m.layers.size()) - 3;  // bn2
      add.residual = shortcut;
      m.layers.push_back(add);
    } else {
      LayerSpec add = simple(LayerKind::kResidualAdd, name + ".add");
      add.residual = shortcut;
      m.layers.push_back(add);
    }
    m.layers.push_back(simple(LayerKind::kReLU, name + ".relu2"));
    m.layers.push_back(simple(LayerKind::kQuantize, name + ".quant2"));
  };

  basic_block("layer1.0", 64, 1);
  basic_block("layer1.1", 64, 1);
  basic_block("layer2.0", 128, 2);
  basic_block("layer2.1", 128, 1);
  basic_block("layer3.0", 256, 2);
  basic_block("layer3.1", 256, 1);
  basic_block("layer4.0", 512, 2);
  basic_block("layer4.1", 512, 1);
  m.layers.push_back(pool("avgpool", core::PoolSpec::Kind::kAvg, 7));  // 1x1
  m.layers.push_back(linear("fc", 1000));
  m.layers.push_back(simple(LayerKind::kSoftmax, "softmax"));
  return m;
}

ModelSpec mini_resnet(std::int64_t in_c, std::int64_t in_hw,
                      std::int64_t classes) {
  ModelSpec m;
  m.name = "MiniResNet";
  m.input = {in_c, in_hw, in_hw};
  conv_block(m, "stem", 8, 3, 1, 1);

  auto basic_block = [&m](const std::string& name, std::int64_t channels,
                          int stride) {
    const int block_in = static_cast<int>(m.layers.size()) - 1;
    m.layers.push_back(conv(name + ".conv1", channels, 3, stride, 1));
    m.layers.push_back(simple(LayerKind::kBatchNorm, name + ".bn1"));
    m.layers.push_back(simple(LayerKind::kReLU, name + ".relu1"));
    m.layers.push_back(simple(LayerKind::kQuantize, name + ".quant1"));
    m.layers.push_back(conv(name + ".conv2", channels, 3, 1, 1));
    m.layers.push_back(simple(LayerKind::kBatchNorm, name + ".bn2"));
    if (stride != 1) {
      LayerSpec ds = conv(name + ".downsample", channels, 1, stride, 0);
      ds.input = block_in;
      m.layers.push_back(ds);
      m.layers.push_back(simple(LayerKind::kBatchNorm, name + ".dsbn"));
      LayerSpec add = simple(LayerKind::kResidualAdd, name + ".add");
      add.input = static_cast<int>(m.layers.size()) - 3;  // bn2
      add.residual = static_cast<int>(m.layers.size()) - 1;
      m.layers.push_back(add);
    } else {
      LayerSpec add = simple(LayerKind::kResidualAdd, name + ".add");
      add.residual = block_in;
      m.layers.push_back(add);
    }
    m.layers.push_back(simple(LayerKind::kReLU, name + ".relu2"));
    m.layers.push_back(simple(LayerKind::kQuantize, name + ".quant2"));
  };
  basic_block("block1", 8, 1);
  basic_block("block2", 16, 2);
  m.layers.push_back(pool("avgpool", core::PoolSpec::Kind::kAvg,
                          static_cast<int>(in_hw / 2)));
  m.layers.push_back(linear("fc", classes));
  m.layers.push_back(simple(LayerKind::kSoftmax, "softmax"));
  return m;
}

ModelSpec mini_cnn(std::int64_t in_c, std::int64_t in_hw,
                   std::int64_t classes) {
  ModelSpec m;
  m.name = "MiniCNN";
  m.input = {in_c, in_hw, in_hw};
  conv_block(m, "conv1", 16);
  conv_block(m, "conv2", 32, 3, 1, 1, 2);
  m.layers.push_back(linear("fc", classes));
  m.layers.push_back(simple(LayerKind::kSoftmax, "softmax"));
  return m;
}

ModelSpec tiny_transformer(std::int64_t d_model, std::int64_t seq, int heads,
                           std::int64_t d_head, std::int64_t classes) {
  ModelSpec m;
  m.name = "TinyTransformer";
  m.input = {d_model, seq, 1};
  m.layers.push_back(attention("attn1", heads, d_head));
  m.layers.push_back(attention("attn2", heads, d_head));
  m.layers.push_back(pool("pool", core::PoolSpec::Kind::kAvg, 0));
  m.layers.push_back(linear("fc", classes));
  m.layers.push_back(simple(LayerKind::kSoftmax, "softmax"));
  m.seq_buckets = {32, 64, 128, 256, 512};
  return m;
}

ModelSpec vgg_lite(std::int64_t in_hw, std::int64_t classes) {
  ModelSpec m;
  m.name = "VGG-Lite";
  m.input = {3, in_hw, in_hw};
  conv_block(m, "conv1_1", 32);
  conv_block(m, "conv1_2", 32, 3, 1, 1, 2);
  conv_block(m, "conv2_1", 64);
  conv_block(m, "conv2_2", 64, 3, 1, 1, 2);
  conv_block(m, "conv3_1", 128, 3, 1, 1, 2);
  m.layers.push_back(linear("fc1", 256));
  m.layers.push_back(simple(LayerKind::kReLU, "fc1.relu"));
  m.layers.push_back(simple(LayerKind::kQuantize, "fc1.quant"));
  m.layers.push_back(linear("fc2", classes));
  m.layers.push_back(simple(LayerKind::kSoftmax, "softmax"));
  return m;
}

}  // namespace apnn::nn

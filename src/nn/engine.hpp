// Network-level execution schemes and the latency-profiling engine (§5).
//
// One ModelSpec can be profiled under any of the paper's five schemes
// (Table 2): CUTLASS fp32 on CUDA cores, CUTLASS fp16 / int8 on tensor
// cores, the BSTC/BTC-style BNN, and APNN-TC with arbitrary (p, q). The
// engine walks the layer list, maps each layer to the appropriate kernel
// profiles — applying the minimal-traffic dataflow (§5.1: activations move
// as packed q-bit planes) and semantic-aware kernel fusion (§5.2: the
// elementwise tail of each conv/linear is absorbed into its epilogue) — and
// prices the launch sequence with the tcsim cost model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/model.hpp"
#include "src/tcsim/cost_model.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn::nn {

enum class Scheme {
  kFloat32,  ///< CUTLASS single precision, CUDA cores
  kFloat16,  ///< CUTLASS half, tensor cores
  kInt8,     ///< CUTLASS/cuBLAS int8, tensor cores
  kBnn,      ///< 1-bit BSTC/BTC-style binary network
  kApnn,     ///< APNN-TC, arbitrary (wbits, abits)
};

const char* scheme_name(Scheme s);

struct SchemeConfig {
  Scheme scheme = Scheme::kApnn;
  int wbits = 1;  ///< APNN weight bits
  int abits = 2;  ///< APNN activation bits
  /// Semantic-aware kernel fusion (APNN only; baselines run layer-by-layer).
  bool fuse = true;

  std::string label() const;
};

struct LayerProfile {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  /// True when the layer was fused into the preceding conv/linear epilogue
  /// (its cost is accounted there and `latency` is zero).
  bool fused_away = false;
  tcsim::LatencyEstimate latency;
  tcsim::TrafficCounters counters;
};

struct ModelProfile {
  std::string model;
  std::string scheme;
  std::int64_t batch = 0;
  std::vector<LayerProfile> layers;
  double total_us = 0;

  double latency_ms() const { return total_us / 1e3; }
  double throughput_fps() const {
    return static_cast<double>(batch) / (total_us * 1e-6);
  }
};

/// Prices one forward pass of `m` at the given batch size under `cfg`.
ModelProfile profile_model(const ModelSpec& m, std::int64_t batch,
                           const SchemeConfig& cfg,
                           const tcsim::DeviceSpec& dev);

}  // namespace apnn::nn

// The APNN gateway wire protocol ("APGW"), v2 — length-prefixed binary
// frames over TCP. docs/PROTOCOL.md is the normative byte-level spec; this
// header is its executable counterpart: the frame codec, the typed error
// codes (the serving-side nn::ErrorKind taxonomy mirrored onto stable wire
// values plus gateway-level codes), the request/response payload
// marshallers, and the reference client. tests/test_gateway.cpp round-trips
// every encoder through every decoder, and the checked-in error-code table
// in PROTOCOL.md is lint-gated against error_table_markdown() in CI, so the
// three representations (docs, codec, server) cannot drift silently.
//
// Frame layout (all integers little-endian on the wire, regardless of host):
//
//   offset  size  field
//   0       4     magic "APGW" (0x41 0x50 0x47 0x57)
//   4       1     protocol version (kProtocolVersion)
//   5       1     message type (MsgType)
//   6       2     reserved, must be 0
//   8       4     payload length in bytes (u32; bounded by the receiver)
//   12      ...   payload
//
// A receiver that sees a bad magic, an unknown version, a nonzero reserved
// word, or a payload length over its bound fails loudly (WireFormatError
// with the matching WireError) — framing errors are never resynchronized,
// the connection is closed after an ERROR frame is sent where possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/net.hpp"
#include "src/layout/tensor.hpp"
#include "src/nn/server.hpp"

namespace apnn::nn::wire {

inline constexpr unsigned char kMagic[4] = {'A', 'P', 'G', 'W'};
/// v2: INFER carries a per-request seq_len field (0 = shape-static sample)
/// so dynamic-shape models can serve variable-length token batches. The
/// version is a frame-level handshake: a v1 peer rejects v2 frames with
/// UNSUPPORTED_VERSION rather than misparsing the widened payload.
inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::size_t kHeaderBytes = 12;
/// Default receiver-side payload bound; GatewayOptions can lower/raise it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;
/// Samples one INFER frame may carry (server-side micro-batching still
/// applies; the frame batch only amortizes round trips).
inline constexpr std::uint16_t kMaxFrameSamples = 64;

enum class MsgType : std::uint8_t {
  kInfer = 0x01,     ///< client -> gateway: batch of packed u8 samples
  kInferOk = 0x02,   ///< gateway -> client: int32 logits per sample
  kError = 0x03,     ///< gateway -> client: WireError + message
  kStats = 0x04,     ///< client -> gateway: scrape request (empty payload)
  kStatsOk = 0x05,   ///< gateway -> client: Prometheus text payload
  kList = 0x06,      ///< client -> gateway: model inventory (empty payload)
  kListOk = 0x07,    ///< gateway -> client: model descriptors
  kLoad = 0x08,      ///< admin: load a model (id + serialized-network path)
  kUnload = 0x09,    ///< admin: unload a model (id)
  kReload = 0x0a,    ///< admin: reload a model from its file (id)
  kAdminOk = 0x0b,   ///< gateway -> client: admin op succeeded
  kPing = 0x0c,      ///< liveness probe (empty payload)
  kPong = 0x0d,      ///< liveness reply (empty payload)
};

/// Typed wire error codes. Values 1..kErrorKindCount mirror nn::ErrorKind
/// (wire value = ErrorKind value + 1; 0 is reserved so an accidental
/// zeroed field never reads as a real error). Values >= 100 are
/// gateway-level failures that no in-process ErrorKind describes. Stable:
/// codes are append-only, never renumbered.
enum class WireError : std::uint16_t {
  kNone = 0,  ///< reserved (never sent)

  kDeadlineExceeded = 1,  ///< mirrors ErrorKind::kDeadlineExceeded
  kQueueFull = 2,         ///< mirrors ErrorKind::kQueueFull
  kShuttingDown = 3,      ///< mirrors ErrorKind::kShuttingDown
  kInvalidSample = 4,     ///< mirrors ErrorKind::kInvalidSample
  kReplicaFailed = 5,     ///< mirrors ErrorKind::kReplicaFailed

  kUnknownModel = 100,       ///< no model under the requested id
  kMalformedFrame = 101,     ///< header/payload failed to parse
  kUnsupportedVersion = 102, ///< frame version != kProtocolVersion
  kFrameTooLarge = 103,      ///< payload length over the receiver's bound
  kUnsupportedType = 104,    ///< unknown MsgType, or a reply type sent as a
                             ///< request
  kModelLoadFailed = 105,    ///< load/reload could not build the model
  kInternal = 106,           ///< unexpected server-side failure
};

/// Stable UPPER_SNAKE name for a wire error (also the JSON "code" field).
const char* wire_error_name(WireError e);

/// The wire code that mirrors a serving-side ErrorKind.
WireError wire_error_for(ErrorKind kind);

/// The checked-in PROTOCOL.md error-code table, regenerated from the same
/// static mapping wire_error_for() uses. tools/check_protocol_docs.py
/// compares this output against the doc's generated block in CI.
std::string error_table_markdown();

/// Framing/marshalling failure. `code()` is what the peer should be told.
class WireFormatError : public Error {
 public:
  WireFormatError(WireError code, const std::string& what)
      : Error(what), code_(code) {}
  WireError code() const { return code_; }

 private:
  WireError code_;
};

/// Gateway-side failure relayed to a client (an ERROR frame decoded by the
/// reference client, or raised directly by gateway internals).
class RemoteError : public Error {
 public:
  RemoteError(WireError code, const std::string& what)
      : Error(what), code_(code) {}
  WireError code() const { return code_; }

 private:
  WireError code_;
};

// --- little-endian byte readers/writers (payload building blocks) -----------

void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v);
void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v);
void put_i32(std::vector<std::uint8_t>& b, std::int32_t v);
void put_str(std::vector<std::uint8_t>& b, const std::string& s);  ///< u16 len

/// Bounds-checked little-endian reader over a payload; any overrun throws
/// WireFormatError(kMalformedFrame).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& v)
      : Reader(v.data(), v.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::int32_t i32();
  std::string str();  ///< u16 length prefix
  /// Raw byte run (no copy; pointer valid while the payload lives).
  const std::uint8_t* bytes(std::size_t n);
  std::size_t remaining() const { return size_ - pos_; }
  /// Trailing bytes after the last field are a malformed frame.
  void expect_end() const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- frames -----------------------------------------------------------------

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Serializes a complete frame (header + payload).
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::vector<std::uint8_t> payload);

/// Parses a frame header (exactly kHeaderBytes bytes). Returns the payload
/// length; throws WireFormatError on bad magic/version/reserved/length.
std::size_t decode_header(const std::uint8_t header[kHeaderBytes],
                          MsgType* type, std::size_t max_payload_bytes);

/// Reads one frame off a socket. Returns false on clean EOF between frames.
/// Throws WireFormatError on protocol garbage and apnn::Error on transport
/// failures (including EOF mid-frame).
bool read_frame(net::Socket& sock, Frame* out, std::size_t max_payload_bytes);

/// Writes one frame to a socket.
void write_frame(net::Socket& sock, MsgType type,
                 std::vector<std::uint8_t> payload);

// --- payloads ---------------------------------------------------------------

/// kInfer: a batch of `count` packed u8 samples of identical dims.
struct InferRequest {
  std::string model;
  std::uint32_t deadline_ms = 0;  ///< 0 = no per-request deadline
  std::uint16_t count = 0;
  std::uint16_t h = 0, w = 0, c = 0;
  /// Token count for dynamic-shape (sequence-bucketed) models; 0 means the
  /// sample is shape-static and must match the model's input dims exactly.
  /// When nonzero it must equal `h` (the samples really carry seq_len
  /// tokens) and the model decides whether the length is admissible — the
  /// gateway forwards it and the server buckets on it.
  std::uint16_t seq_len = 0;
  std::vector<std::uint8_t> samples;  ///< count * h * w * c bytes, row-major
};
std::vector<std::uint8_t> encode_infer_request(const InferRequest& req);
InferRequest decode_infer_request(const std::vector<std::uint8_t>& payload);

/// kInferOk: logits per sample, in request order.
struct InferResponse {
  std::uint16_t count = 0;
  std::uint32_t classes = 0;
  std::vector<std::int32_t> logits;  ///< count * classes values
};
std::vector<std::uint8_t> encode_infer_response(const InferResponse& resp);
InferResponse decode_infer_response(const std::vector<std::uint8_t>& payload);

/// kError.
struct ErrorResponse {
  WireError code = WireError::kInternal;
  std::string message;
};
std::vector<std::uint8_t> encode_error_response(const ErrorResponse& resp);
ErrorResponse decode_error_response(const std::vector<std::uint8_t>& payload);

/// kListOk entry.
struct ModelDescriptor {
  std::string id;
  std::uint16_t h = 0, w = 0, c = 0;  ///< expected sample dims
  std::uint32_t classes = 0;
  std::uint32_t generation = 0;  ///< bumps on every (re)load
};
std::vector<std::uint8_t> encode_list_response(
    const std::vector<ModelDescriptor>& models);
std::vector<ModelDescriptor> decode_list_response(
    const std::vector<std::uint8_t>& payload);

// --- reference client -------------------------------------------------------

/// Blocking single-connection client for the binary protocol; the loadgen,
/// the admin CLI, the gateway bench, and the tests all speak through this.
/// Not thread-safe — one Client per client thread.
class Client {
 public:
  /// Connects to a gateway on 127.0.0.1:`port`.
  explicit Client(int port);

  /// Round-trips one single-sample INFER. `sample_u8` is {H, W, C} or
  /// {1, H, W, C} int32 codes in [0, 255]; returns the logits {classes}.
  /// `variable_seq` marks the sample as a variable-length token batch for
  /// a dynamic-shape model (the frame's seq_len is set to the sample's H).
  /// Throws RemoteError when the gateway answers with an ERROR frame.
  Tensor<std::int32_t> infer(const std::string& model,
                             const Tensor<std::int32_t>& sample_u8,
                             std::uint32_t deadline_ms = 0,
                             bool variable_seq = false);

  /// Batched INFER: all samples share one frame (and one deadline).
  InferResponse infer_batch(const InferRequest& req);

  std::vector<ModelDescriptor> list();
  std::string stats();  ///< Prometheus text, as served on /stats
  void load(const std::string& id, const std::string& path);
  void unload(const std::string& id);
  void reload(const std::string& id);
  void ping();

 private:
  Frame round_trip(MsgType type, std::vector<std::uint8_t> payload,
                   MsgType expect);

  net::Socket sock_;
};

/// Flattens a {H,W,C} / {1,H,W,C} int32 code tensor into wire u8 bytes.
/// Throws apnn::Error on values outside [0, 255].
std::vector<std::uint8_t> pack_sample_u8(const Tensor<std::int32_t>& sample);

}  // namespace apnn::nn::wire

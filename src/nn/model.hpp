// Network architecture descriptions and the model zoo.
//
// A ModelSpec is a flat layer list with optional cross references (residual
// connections), enough to express the paper's three evaluation networks
// (AlexNet, VGG-Variant, ResNet-18) plus the small test networks. Layer
// shapes are propagated from the input; the spec is independent of precision
// scheme — the engine decides how each layer executes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/apconv.hpp"
#include "src/layout/im2col.hpp"

namespace apnn::nn {

enum class LayerKind {
  kConv,
  kLinear,
  kBatchNorm,
  kReLU,
  kPool,
  kQuantize,      ///< re-quantize activations to the scheme's a-bits
  kResidualAdd,   ///< elementwise add with the output of another layer
  kSoftmax,
  kAttention,     ///< quantized multi-head self-attention over tokens
};

struct ConvParams {
  std::int64_t out_c = 0;
  int kernel = 3;
  int stride = 1;
  int pad = 1;
};

/// Multi-head self-attention. Tokens run along the activation h axis
/// (w must be 1); d_model is the input channel count. The output
/// projection maps heads*d_head back to d_model, so the layer is
/// shape-preserving and stackable.
struct AttentionParams {
  int heads = 0;
  std::int64_t d_head = 0;
  /// Raw QK^T scores are arithmetic-shifted right by this much before the
  /// integer softmax (the 1/sqrt(d_head) analogue). -1 derives
  /// floor(log2(d_head))/2 at execution time.
  int scale_shift = -1;
};

struct LayerSpec {
  LayerKind kind = LayerKind::kConv;
  std::string name;

  ConvParams conv;                 ///< kConv
  std::int64_t out_features = 0;   ///< kLinear
  core::PoolSpec pool;             ///< kPool (size 0 = global average/max)
  AttentionParams attn;            ///< kAttention

  /// Index of the producing layer (-1 = previous layer / network input).
  int input = -1;
  /// Second input for kResidualAdd.
  int residual = -1;
};

/// Per-sample activation shape.
struct ActShape {
  std::int64_t c = 0, h = 0, w = 0;
  std::int64_t numel() const { return c * h * w; }
};

struct ModelSpec {
  std::string name;
  ActShape input;
  std::vector<LayerSpec> layers;
  /// Sequence-length buckets (ascending) for dynamic-shape models. Empty =
  /// static shapes. When set, the session compiles one plan per bucket
  /// (input.h is the calibration/default length and must fit the largest
  /// bucket) and requests are padded up to the smallest covering bucket.
  std::vector<std::int64_t> seq_buckets;
};

/// Output shape of every layer (index i -> output of layers[i]).
std::vector<ActShape> propagate_shapes(const ModelSpec& m);

/// Conv geometry of layer `li` given the propagated shapes and a batch.
layout::ConvGeometry conv_geometry(const ModelSpec& m,
                                   const std::vector<ActShape>& shapes,
                                   std::size_t li, std::int64_t batch);

/// Total multiply-accumulates of one forward pass (batch 1).
std::int64_t model_macs(const ModelSpec& m);

/// The elementwise tail (BN / ReLU / pool / quantize, in any order, one
/// each, quantize last) that follows layer `li` and can fuse into its
/// epilogue. A layer reading a non-default input terminates the tail.
struct TailScan {
  bool has_bn = false;
  bool has_relu = false;
  bool has_quant = false;
  core::PoolSpec pool;
  std::vector<std::size_t> absorbed;  ///< layer indices consumed
};
TailScan scan_tail(const ModelSpec& m, std::size_t li);

// --- Model zoo (the paper's Table 1 networks) -------------------------------

/// AlexNet for 224x224x3 inputs. Pooling layers are 2x2/stride-2 (the
/// original's overlapping 3x3/2 pools are not expressible with the
/// size==stride pooling this library models; spatial dims match).
ModelSpec alexnet();

/// The VGG-Variant of Cai et al. (HWGQ), 224x224x3: a slimmed VGG with
/// 2-conv stages.
ModelSpec vgg_variant();

/// ResNet-18 with standard basic blocks and 1x1 downsample shortcuts.
ModelSpec resnet18();

/// Small CNN for functional tests/examples (in_hw x in_hw x in_c input,
/// two conv stages + classifier head).
ModelSpec mini_cnn(std::int64_t in_c = 8, std::int64_t in_hw = 16,
                   std::int64_t classes = 10);

/// Reduced VGG (used by examples where full ImageNet scale is unnecessary).
ModelSpec vgg_lite(std::int64_t in_hw = 32, std::int64_t classes = 10);

/// Tiny two-stage residual network (basic blocks with a strided projection
/// shortcut) for functional tests of the residual dataflow.
ModelSpec mini_resnet(std::int64_t in_c = 3, std::int64_t in_hw = 8,
                      std::int64_t classes = 5);

/// Two-layer transformer encoder (multi-head self-attention stacks) with a
/// global-average-pool + linear classifier head. Input is {d_model, seq, 1}
/// token codes; seq_buckets defaults to {32, 64, 128, 256, 512} so one
/// compiled plan family serves variable-length requests.
ModelSpec tiny_transformer(std::int64_t d_model = 32, std::int64_t seq = 64,
                           int heads = 2, std::int64_t d_head = 16,
                           std::int64_t classes = 10);

}  // namespace apnn::nn

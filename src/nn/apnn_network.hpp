// Functional APNN inference (§5): an instantiated network with quantized
// weights that executes end to end through the APNN-TC kernels, keeping
// activations as packed q-bit planes between layers (minimal-traffic
// dataflow) and fusing each conv/linear's elementwise tail into its epilogue
// (semantic-aware kernel fusion).
//
// A bit-exact dense integer reference (conv2d_reference + the same epilogue
// arithmetic) is provided for validation: forward() and forward_reference()
// must agree exactly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"
#include "src/nn/model.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tcsim/device_spec.hpp"

namespace apnn::nn {

/// One executable stage: a conv/linear layer with its fused tail.
struct ApnnStage {
  std::size_t layer_index = 0;        ///< index of the conv/linear in the spec
  core::ApOperand weights;            ///< conv: Cout x KKC; linear: out x in
  Tensor<std::int32_t> weights_logical;  ///< logical values (reference path)
  core::Epilogue epilogue;
  core::PoolSpec pool;
  std::vector<std::size_t> absorbed;  ///< tail layer indices fused away
  /// Activation bits this stage consumes: 8 for the first stage (the int8
  /// image is used directly, §5.1), abits elsewhere.
  int in_bits = 2;
  /// What the incoming activation bits encode: kUnsigned01 for APNN codes,
  /// kSignedPM1 for binary (±1) networks past the first stage.
  core::Encoding in_enc = core::Encoding::kUnsigned01;

  // kAttention extras (defaulted/ignored for conv and linear stages).
  // `weights`/`weights_logical` above hold the Q projection; K/V/output
  // projections and the per-stage requantizers ride alongside. `epilogue`
  // is the output-projection tail (ReLU + quantize, set by calibrate()).
  core::ApOperand attn_wk, attn_wv, attn_wo;
  Tensor<std::int32_t> attn_wk_logical, attn_wv_logical, attn_wo_logical;
  quant::QuantParams attn_q_quant, attn_k_quant, attn_v_quant, attn_ctx_quant;
};

class ApnnNetwork {
 public:
  /// Instantiates `spec` with random logical weights for the given
  /// precision: wbits == 1 uses ±1 weights (Case III datapath), wbits > 1
  /// unsigned multi-bit (Case I). Activations are abits unsigned.
  static ApnnNetwork random(const ModelSpec& spec, int wbits, int abits,
                            std::uint64_t seed);

  /// Instantiates a binary (BNN) network: ±1 weights everywhere, ±1
  /// activations past the first stage (which consumes the 8-bit image via
  /// Case III). Intermediate convolutions run the XOR datapath with the
  /// §4.2b pad-1 + counter amendment. Supported for fully fused sequential
  /// models (every quantize folds into a conv/linear tail).
  static ApnnNetwork random_binary(const ModelSpec& spec,
                                   std::uint64_t seed);

  /// Sets each stage's quantization scale from the activation ranges a
  /// reference forward pass over `input` observes (simple min/max
  /// calibration). Must be called once before forward().
  void calibrate(const Tensor<std::int32_t>& input_u8);

  /// Runs the packed-dataflow APNN forward pass through apconv()/apmm().
  /// `input_u8` is NHWC uint8 codes {B, H, W, C}; returns int32 logits
  /// {B, classes}. Appends kernel launch records to `prof` when given.
  ///
  /// This is a convenience wrapper that compiles an nn::InferenceSession
  /// and runs it once; callers with repeated traffic should hold a session
  /// (src/nn/session.hpp) so the compiled plan and activation slab are
  /// reused across calls.
  Tensor<std::int32_t> forward(const Tensor<std::int32_t>& input_u8,
                               const tcsim::DeviceSpec& dev,
                               tcsim::SequenceProfile* prof = nullptr) const;

  /// Dense integer golden model with identical arithmetic.
  Tensor<std::int32_t> forward_reference(
      const Tensor<std::int32_t>& input_u8) const;

  const ModelSpec& spec() const { return spec_; }
  int wbits() const { return wbits_; }
  int abits() const { return abits_; }
  const std::vector<ApnnStage>& stages() const { return stages_; }
  const std::vector<ActShape>& shapes() const { return shapes_; }
  /// Quantization parameters of quantize layers that are not fused into a
  /// conv/linear epilogue, keyed by layer index (set by calibrate()).
  const std::map<std::size_t, quant::QuantParams>& standalone_quant() const {
    return standalone_quant_;
  }
  bool calibrated() const { return calibrated_; }
  /// Binary (±1 activation) network: quantized codes decode to -1/+1.
  bool is_binary() const { return binary_; }

 private:
  // Serialization (nn/serialize.hpp) reads/writes the private state.
  friend bool save_network(const ApnnNetwork& net, const std::string& path);
  friend ApnnNetwork load_network(const std::string& path);

  /// Validates the uint8 input image (used as 8-bit activations directly).
  Tensor<std::int32_t> quantize_input(const Tensor<std::int32_t>& u8) const;

  ModelSpec spec_;
  std::vector<ActShape> shapes_;
  int wbits_ = 1;
  int abits_ = 2;
  std::vector<ApnnStage> stages_;
  /// Quantization parameters of quantize layers that are not fused into a
  /// conv/linear epilogue (e.g. after residual adds), keyed by layer index.
  std::map<std::size_t, quant::QuantParams> standalone_quant_;
  bool calibrated_ = false;
  /// Binary (±1 activation) network: quantized codes decode to -1/+1.
  bool binary_ = false;
};

}  // namespace apnn::nn

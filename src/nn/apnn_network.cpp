#include "src/nn/apnn_network.hpp"

#include <algorithm>
#include <map>

#include "src/common/check.hpp"
#include "src/nn/attention_math.hpp"
#include "src/nn/session.hpp"
#include "src/quant/quantizer.hpp"

namespace apnn::nn {

namespace {

using core::Encoding;
using core::Epilogue;
using core::PoolSpec;

/// Integer max/avg pooling on a dense NHWC tensor. size == 0 pools the
/// whole spatial extent down to 1x1 (global pooling).
Tensor<std::int32_t> pool_dense(const Tensor<std::int32_t>& x,
                                const PoolSpec& pool) {
  const std::int64_t b = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  const std::int64_t win_h = pool.size == 0 ? h : pool.size;
  const std::int64_t win_w = pool.size == 0 ? w : pool.size;
  const std::int64_t ph = h / win_h, pw = w / win_w;
  Tensor<std::int32_t> y({b, ph, pw, c});
  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t py = 0; py < ph; ++py) {
      for (std::int64_t px = 0; px < pw; ++px) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
          std::int64_t agg =
              pool.kind == PoolSpec::Kind::kMax ? INT64_MIN : 0;
          for (std::int64_t dy = 0; dy < win_h; ++dy) {
            for (std::int64_t dx = 0; dx < win_w; ++dx) {
              const std::int32_t v =
                  x(n, py * win_h + dy, px * win_w + dx, ch);
              if (pool.kind == PoolSpec::Kind::kMax) {
                agg = std::max<std::int64_t>(agg, v);
              } else {
                agg += v;
              }
            }
          }
          if (pool.kind == PoolSpec::Kind::kAvg) {
            agg /= win_h * win_w;
          }
          y(n, py, px, ch) = static_cast<std::int32_t>(agg);
        }
      }
    }
  }
  return y;
}

}  // namespace

ApnnNetwork ApnnNetwork::random_binary(const ModelSpec& spec,
                                       std::uint64_t seed) {
  for (const auto& l : spec.layers) {
    APNN_CHECK(l.kind != LayerKind::kAttention)
        << "binary (±1 activation) networks do not support attention";
  }
  ApnnNetwork net = random(spec, 1, 1, seed);
  net.binary_ = true;
  for (std::size_t si = 1; si < net.stages_.size(); ++si) {
    net.stages_[si].in_enc = Encoding::kSignedPM1;
    APNN_CHECK(net.stages_[si].in_bits == 1);
  }
  // Every quantize must fold into a stage tail (values between stages stay
  // packed ±1 codes; dense binary intermediates are not supported).
  for (std::size_t li = 0; li < spec.layers.size(); ++li) {
    if (spec.layers[li].kind != LayerKind::kQuantize) continue;
    bool absorbed = false;
    for (const auto& st : net.stages_) {
      for (std::size_t j : st.absorbed) absorbed |= j == li;
    }
    APNN_CHECK(absorbed) << "binary networks need fully fused tails ("
                         << spec.layers[li].name << " is standalone)";
  }
  return net;
}

ApnnNetwork ApnnNetwork::random(const ModelSpec& spec, int wbits, int abits,
                                std::uint64_t seed) {
  APNN_CHECK(wbits >= 1 && wbits <= 8 && abits >= 1 && abits <= 8);
  ApnnNetwork net;
  net.spec_ = spec;
  net.shapes_ = propagate_shapes(spec);
  net.wbits_ = wbits;
  net.abits_ = abits;
  Rng rng(seed);

  const Encoding w_enc =
      wbits == 1 ? Encoding::kSignedPM1 : Encoding::kUnsigned01;
  auto random_weights = [&](Tensor<std::int32_t>& t, std::int64_t rows,
                            std::int64_t cols) {
    t = Tensor<std::int32_t>({rows, cols});
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      t[i] = wbits == 1 ? (rng.bernoulli(0.5) ? 1 : -1)
                        : static_cast<std::int32_t>(
                              rng.uniform_int(0, (1 << wbits) - 1));
    }
  };

  for (std::size_t li = 0; li < spec.layers.size(); ++li) {
    const LayerSpec& l = spec.layers[li];
    if (l.kind == LayerKind::kAttention) {
      const ActShape in = li == 0 ? spec.input : net.shapes_[li - 1];
      const std::int64_t d_model = in.c;
      const std::int64_t proj = l.attn.heads * l.attn.d_head;
      ApnnStage st;
      st.layer_index = li;
      random_weights(st.weights_logical, proj, d_model);  // Q
      random_weights(st.attn_wk_logical, proj, d_model);
      random_weights(st.attn_wv_logical, proj, d_model);
      random_weights(st.attn_wo_logical, d_model, proj);
      st.weights = core::make_operand(st.weights_logical, w_enc, wbits);
      st.attn_wk = core::make_operand(st.attn_wk_logical, w_enc, wbits);
      st.attn_wv = core::make_operand(st.attn_wv_logical, w_enc, wbits);
      st.attn_wo = core::make_operand(st.attn_wo_logical, w_enc, wbits);
      // Attention stages always emit abits codes (the internal stages need
      // packed operands); calibrate() fills in the five quantizer scales.
      st.epilogue.has_relu = true;
      st.epilogue.has_quant = true;
      st.epilogue.quant.bits = abits;
      st.attn_q_quant.bits = abits;
      st.attn_k_quant.bits = abits;
      st.attn_v_quant.bits = abits;
      st.attn_ctx_quant.bits = abits;
      st.in_bits = net.stages_.empty() ? 8 : abits;
      net.stages_.push_back(std::move(st));
      continue;
    }
    if (l.kind != LayerKind::kConv && l.kind != LayerKind::kLinear) continue;
    ApnnStage st;
    st.layer_index = li;
    const TailScan tail = scan_tail(spec, li);
    st.absorbed = tail.absorbed;
    st.pool = tail.pool;

    // Logical weights.
    std::int64_t rows, cols;
    if (l.kind == LayerKind::kConv) {
      const layout::ConvGeometry g = conv_geometry(spec, net.shapes_, li, 1);
      rows = g.out_c;
      cols = g.gemm_k();
    } else {
      const ActShape in =
          li == 0 ? spec.input : net.shapes_[li - 1];
      rows = l.out_features;
      cols = in.numel();
    }
    st.weights_logical = Tensor<std::int32_t>({rows, cols});
    for (std::int64_t i = 0; i < st.weights_logical.numel(); ++i) {
      st.weights_logical[i] =
          wbits == 1 ? (rng.bernoulli(0.5) ? 1 : -1)
                     : static_cast<std::int32_t>(
                           rng.uniform_int(0, (1 << wbits) - 1));
    }
    st.weights = core::make_operand(st.weights_logical, w_enc, wbits);

    // Epilogue skeleton; quantization scales are set by calibrate().
    if (tail.has_bn) {
      st.epilogue.has_bn = true;
      st.epilogue.bn.scale.resize(static_cast<std::size_t>(rows));
      st.epilogue.bn.bias.resize(static_cast<std::size_t>(rows));
      for (std::int64_t c = 0; c < rows; ++c) {
        st.epilogue.bn.scale[static_cast<std::size_t>(c)] =
            static_cast<float>(rng.uniform(0.5, 1.5));
        st.epilogue.bn.bias[static_cast<std::size_t>(c)] =
            static_cast<float>(rng.uniform(-4.0, 4.0));
      }
    }
    st.epilogue.has_relu = tail.has_relu;
    st.epilogue.has_quant = tail.has_quant;
    st.epilogue.quant.bits = abits;
    st.in_bits = net.stages_.empty() ? 8 : abits;
    net.stages_.push_back(std::move(st));
  }
  return net;
}

Tensor<std::int32_t> ApnnNetwork::quantize_input(
    const Tensor<std::int32_t>& u8) const {
  // The int8 image feeds the first layer directly as 8-bit activations
  // (§5.1): the first stage's epilogue produces the abits-quantized feature
  // map for the intermediate layers.
  for (std::int64_t i = 0; i < u8.numel(); ++i) {
    APNN_CHECK(u8[i] >= 0 && u8[i] <= 255) << "input must be uint8 codes";
  }
  return u8;
}

namespace {

/// Shared walk used by forward_reference() and calibrate(). When
/// `calibrating` is set, quantization parameters are (re)derived from the
/// observed pre-quantization value range at each quantize point.
struct ReferenceWalker {
  const ModelSpec& spec;
  const std::vector<ActShape>& shapes;
  std::vector<ApnnStage>& stages;  // mutated when calibrating
  int abits;
  bool calibrating;
  std::map<std::size_t, quant::QuantParams>& standalone_quant;
  bool binary = false;  ///< ±1 networks: decode codes to -1/+1 post-quant

  quant::QuantParams derive_params(const Tensor<std::int32_t>& x) const {
    std::vector<float> vals(static_cast<std::size_t>(x.numel()));
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      vals[static_cast<std::size_t>(i)] = static_cast<float>(x[i]);
    }
    return quant::choose_uniform_params(vals, abits);
  }

  Tensor<std::int32_t> run(const Tensor<std::int32_t>& input_codes) {
    std::vector<Tensor<std::int32_t>> vals(spec.layers.size());
    std::map<std::size_t, const ApnnStage*> stage_at;
    std::map<std::size_t, std::size_t> stage_idx_at;
    for (std::size_t si = 0; si < stages.size(); ++si) {
      stage_at[stages[si].layer_index] = &stages[si];
      stage_idx_at[stages[si].layer_index] = si;
    }
    std::vector<bool> consumed(spec.layers.size(), false);
    Tensor<std::int32_t> logits;

    for (std::size_t li = 0; li < spec.layers.size(); ++li) {
      if (consumed[li]) continue;
      const LayerSpec& l = spec.layers[li];
      const Tensor<std::int32_t>& in =
          l.input >= 0 ? vals[static_cast<std::size_t>(l.input)]
                       : (li == 0 ? input_codes : vals[li - 1]);

      switch (l.kind) {
        case LayerKind::kConv: {
          ApnnStage& st = stages[stage_idx_at.at(li)];
          const layout::ConvGeometry g =
              conv_geometry(spec, shapes, li, in.dim(0));
          const Tensor<std::int32_t> w_ohwi = st.weights_logical.reshaped(
              {g.out_c, g.kernel, g.kernel, g.in_c});
          Tensor<std::int32_t> y = core::conv2d_reference(in, w_ohwi, g);
          // BN / ReLU (identical float arithmetic to Epilogue::apply).
          if (st.epilogue.has_bn || st.epilogue.has_relu) {
            Epilogue pre = st.epilogue;
            pre.has_quant = false;
            for (std::int64_t i = 0; i < y.numel(); ++i) {
              y[i] = pre.apply(y[i], i % g.out_c);
            }
          }
          if (st.pool.active()) y = pool_dense(y, st.pool);
          Tensor<std::int32_t> out = y;
          if (st.epilogue.has_quant) {
            if (calibrating) st.epilogue.quant = derive_params(y);
            for (std::int64_t i = 0; i < y.numel(); ++i) {
              const std::int32_t code = quant::quantize_value(
                  static_cast<float>(y[i]), st.epilogue.quant);
              out[i] = binary ? 2 * code - 1 : code;
            }
          }
          vals[li] = out;
          for (std::size_t j : st.absorbed) {
            vals[j] = out;
            consumed[j] = true;
          }
          break;
        }
        case LayerKind::kLinear: {
          ApnnStage& st = stages[stage_idx_at.at(li)];
          const std::int64_t batch = in.dim(0);
          const Tensor<std::int32_t> xf =
              in.reshaped({batch, in.numel() / batch});
          const std::int64_t out_f = l.out_features;
          Tensor<std::int32_t> y({batch, out_f});
          for (std::int64_t b = 0; b < batch; ++b) {
            for (std::int64_t o = 0; o < out_f; ++o) {
              std::int64_t acc = 0;
              for (std::int64_t f = 0; f < xf.dim(1); ++f) {
                acc += static_cast<std::int64_t>(xf(b, f)) *
                       st.weights_logical(o, f);
              }
              y(b, o) = static_cast<std::int32_t>(acc);
            }
          }
          if (st.epilogue.has_bn || st.epilogue.has_relu) {
            Epilogue pre = st.epilogue;
            pre.has_quant = false;
            for (std::int64_t b = 0; b < batch; ++b) {
              for (std::int64_t o = 0; o < out_f; ++o) {
                y(b, o) = pre.apply(y(b, o), o);
              }
            }
          }
          Tensor<std::int32_t> out = y;
          if (st.epilogue.has_quant) {
            if (calibrating) st.epilogue.quant = derive_params(y);
            for (std::int64_t i = 0; i < y.numel(); ++i) {
              const std::int32_t code = quant::quantize_value(
                  static_cast<float>(y[i]), st.epilogue.quant);
              out[i] = binary ? 2 * code - 1 : code;
            }
          }
          vals[li] = out;
          for (std::size_t j : st.absorbed) {
            vals[j] = out;
            consumed[j] = true;
          }
          logits = out;
          break;
        }
        case LayerKind::kBatchNorm:
          // A BN that did not fuse into a conv/linear tail has no
          // parameters anywhere — treating it as identity would silently
          // produce wrong numbers on non-zoo specs.
          APNN_CHECK(false)
              << "standalone BatchNorm layer '" << l.name
              << "' is not executable: it has no parameters outside a "
                 "conv/linear epilogue — restructure the spec so the BN "
                 "directly follows a conv/linear (where it fuses into the "
                 "stage tail)";
          break;
        case LayerKind::kReLU: {
          Tensor<std::int32_t> y = in;
          for (std::int64_t i = 0; i < y.numel(); ++i) {
            y[i] = std::max(y[i], 0);
          }
          vals[li] = std::move(y);
          break;
        }
        case LayerKind::kPool:
          vals[li] = pool_dense(in, l.pool);
          break;
        case LayerKind::kQuantize: {
          if (calibrating) standalone_quant[li] = derive_params(in);
          const auto it = standalone_quant.find(li);
          APNN_CHECK(it != standalone_quant.end())
              << "standalone quantize layer " << l.name << " not calibrated";
          Tensor<std::int32_t> y = in;
          for (std::int64_t i = 0; i < y.numel(); ++i) {
            y[i] = quant::quantize_value(static_cast<float>(in[i]),
                                         it->second);
          }
          vals[li] = std::move(y);
          break;
        }
        case LayerKind::kResidualAdd: {
          const Tensor<std::int32_t>& other =
              vals[static_cast<std::size_t>(l.residual)];
          APNN_CHECK(other.numel() == in.numel());
          Tensor<std::int32_t> y = in;
          for (std::int64_t i = 0; i < y.numel(); ++i) y[i] += other[i];
          vals[li] = std::move(y);
          break;
        }
        case LayerKind::kSoftmax:
          vals[li] = in;  // logits are returned raw (softmax is monotonic)
          break;
        case LayerKind::kAttention: {
          ApnnStage& st = stages[stage_idx_at.at(li)];
          const std::int64_t batch = in.dim(0);
          const std::int64_t seq = in.dim(1);  // {B, seq, 1, d_model}
          const std::int64_t d_model = in.dim(3);
          const int heads = l.attn.heads;
          const std::int64_t dh = l.attn.d_head;
          const std::int64_t proj = heads * dh;
          const std::int64_t tokens = batch * seq;
          const int shift = attn_scale_shift(l.attn);
          const Tensor<std::int32_t> xf = in.reshaped({tokens, d_model});

          // ReLU + quantize to abits codes, identical to the apmm epilogue.
          auto project = [&](const Tensor<std::int32_t>& w,
                             quant::QuantParams& qp) {
            Tensor<std::int32_t> y({tokens, proj});
            for (std::int64_t t = 0; t < tokens; ++t) {
              for (std::int64_t o = 0; o < proj; ++o) {
                std::int64_t acc = 0;
                for (std::int64_t f = 0; f < d_model; ++f) {
                  acc += static_cast<std::int64_t>(xf(t, f)) * w(o, f);
                }
                y(t, o) = std::max<std::int32_t>(
                    0, static_cast<std::int32_t>(acc));
              }
            }
            if (calibrating) qp = derive_params(y);
            for (std::int64_t i = 0; i < y.numel(); ++i) {
              y[i] = quant::quantize_value(static_cast<float>(y[i]), qp);
            }
            return y;
          };
          const Tensor<std::int32_t> q =
              project(st.weights_logical, st.attn_q_quant);
          const Tensor<std::int32_t> k =
              project(st.attn_wk_logical, st.attn_k_quant);
          const Tensor<std::int32_t> v =
              project(st.attn_wv_logical, st.attn_v_quant);

          // Per (sample, head): scores, the shared integer-softmax tail,
          // and the attn-weighted value sum.
          Tensor<std::int32_t> ctx({tokens, proj});
          std::vector<std::int32_t> scores(static_cast<std::size_t>(seq));
          std::vector<std::int32_t> attn(static_cast<std::size_t>(seq));
          for (std::int64_t b = 0; b < batch; ++b) {
            for (int h = 0; h < heads; ++h) {
              const std::int64_t col0 = h * dh;
              for (std::int64_t i = 0; i < seq; ++i) {
                const std::int64_t ti = b * seq + i;
                for (std::int64_t j = 0; j < seq; ++j) {
                  std::int64_t acc = 0;
                  for (std::int64_t x = 0; x < dh; ++x) {
                    acc += static_cast<std::int64_t>(q(ti, col0 + x)) *
                           k(b * seq + j, col0 + x);
                  }
                  scores[static_cast<std::size_t>(j)] =
                      static_cast<std::int32_t>(acc);
                }
                attn_softmax_row(scores.data(), seq, shift, abits,
                                 attn.data());
                for (std::int64_t x = 0; x < dh; ++x) {
                  std::int64_t acc = 0;
                  for (std::int64_t j = 0; j < seq; ++j) {
                    acc += static_cast<std::int64_t>(
                               attn[static_cast<std::size_t>(j)]) *
                           v(b * seq + j, col0 + x);
                  }
                  ctx(ti, col0 + x) = std::max<std::int32_t>(
                      0, static_cast<std::int32_t>(acc));
                }
              }
            }
          }
          if (calibrating) st.attn_ctx_quant = derive_params(ctx);
          for (std::int64_t i = 0; i < ctx.numel(); ++i) {
            ctx[i] = quant::quantize_value(static_cast<float>(ctx[i]),
                                           st.attn_ctx_quant);
          }

          // Output projection back to d_model, with the stage epilogue.
          Tensor<std::int32_t> out({tokens, d_model});
          for (std::int64_t t = 0; t < tokens; ++t) {
            for (std::int64_t o = 0; o < d_model; ++o) {
              std::int64_t acc = 0;
              for (std::int64_t p = 0; p < proj; ++p) {
                acc += static_cast<std::int64_t>(ctx(t, p)) *
                       st.attn_wo_logical(o, p);
              }
              out(t, o) =
                  std::max<std::int32_t>(0, static_cast<std::int32_t>(acc));
            }
          }
          if (calibrating) st.epilogue.quant = derive_params(out);
          for (std::int64_t i = 0; i < out.numel(); ++i) {
            out[i] = quant::quantize_value(static_cast<float>(out[i]),
                                           st.epilogue.quant);
          }
          vals[li] = out.reshaped({batch, seq, std::int64_t{1}, d_model});
          break;
        }
      }
      if (l.kind == LayerKind::kLinear) logits = vals[li];
    }
    return logits;
  }
};

}  // namespace

void ApnnNetwork::calibrate(const Tensor<std::int32_t>& input_u8) {
  standalone_quant_.clear();
  ReferenceWalker walker{spec_, shapes_, stages_, abits_, true,
                         standalone_quant_, binary_};
  walker.run(quantize_input(input_u8));
  calibrated_ = true;
}

Tensor<std::int32_t> ApnnNetwork::forward_reference(
    const Tensor<std::int32_t>& input_u8) const {
  APNN_CHECK(calibrated_) << "call calibrate() first";
  auto stages_copy = stages_;  // run() mutates only when calibrating
  auto quant_copy = standalone_quant_;
  ReferenceWalker walker{spec_, shapes_, stages_copy, abits_, false,
                         quant_copy, binary_};
  return walker.run(quantize_input(input_u8));
}

Tensor<std::int32_t> ApnnNetwork::forward(
    const Tensor<std::int32_t>& input_u8, const tcsim::DeviceSpec& dev,
    tcsim::SequenceProfile* prof) const {
  APNN_CHECK(calibrated_) << "call calibrate() first";
  // One-shot convenience: compile a session and run it once. The compiled
  // plan (slot assignment, glue kernels, slab) lives in InferenceSession;
  // hold one of those to amortize compilation over repeated traffic.
  InferenceSession session(*this, dev);
  return session.run(input_u8, prof);  // the pack step range-checks codes
}

}  // namespace apnn::nn

#include "src/core/autotune.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "src/common/faultinject.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn::core {

namespace {

/// Bump whenever the serialized layout, the StageKey schema, or the meaning
/// of any knob changes — a stale schema must drop entries, not misread them.
// v2: t<threads> became the logical pool width (workers + caller) of the
// pool measurements run on — per-replica slices tune at their own width —
// where v1 recorded the global pool's worker count.
// v3: entries gained MicroConfig::sparse_staging (the data-sparsity fast
// path), and the kAuto default means v2 winners were measured on a kernel
// that no longer exists — they must invalidate, not misread.
// v4: StageKey gained the sequence-bucket dimension (|sq) for attention
// GEMMs of dynamic-shape plan families.
constexpr int kSchemaVersion = 4;

constexpr const char* kMagic = "apnn-tuning-cache";

/// Zeroes ~`frac` of each row's 64-bit payload words of a synthetic operand
/// plane. Word-granular (not bit-granular) on purpose: this is the shape
/// ReLU + quantize actually produces in packed activations, and it is the
/// granularity the occupancy maps can exploit.
void sparsify_plane(bitops::BitMatrix& pm, double frac, Rng& rng) {
  if (frac <= 0.0) return;
  for (std::int64_t r = 0; r < pm.rows(); ++r) {
    std::uint64_t* row = pm.row(r);
    for (std::int64_t w = 0; w < pm.row_words(); ++w) {
      if (rng.uniform() < frac) row[w] = 0;
    }
  }
}

}  // namespace

std::string StageKey::canonical() const {
  std::ostringstream os;
  os << kind << "|m" << m << "|n" << n << "|k" << k << "|p" << p << "|q" << q
     << "|case" << emulation_case_name(ecase) << "|bn" << (has_bn ? 1 : 0)
     << "|relu" << (has_relu ? 1 : 0) << "|qb" << qbits << "|pw" << pool_win
     << "|sq" << seq;
  if (kind == "conv") {
    os << "|c" << in_c << "|kk" << kernel << "|s" << stride << "|pd" << pad
       << "|pk" << pool_kind;
  }
  return os.str();
}

StageKey make_mm_key(const ApOperand& w, std::int64_t n, int q_bits,
                     Encoding x_enc, const Epilogue& epi, std::int64_t seq) {
  StageKey key;
  key.kind = "mm";
  key.m = w.rows();
  key.n = n;
  key.k = w.cols();
  key.p = w.bits();
  key.q = q_bits;
  key.ecase = select_operator({w.encoding, x_enc}).kind;
  key.has_bn = epi.has_bn;
  key.has_relu = epi.has_relu;
  key.qbits = epi.has_quant ? epi.quant.bits : 0;
  key.seq = seq;
  return key;
}

StageKey make_conv_key(const ApOperand& w, const layout::ConvGeometry& g,
                       int q_bits, Encoding x_enc, const Epilogue& epi,
                       const PoolSpec& pool) {
  StageKey key;
  key.kind = "conv";
  key.m = g.gemm_m();
  key.n = g.gemm_n();
  key.k = g.gemm_k();
  key.p = w.bits();
  key.q = q_bits;
  key.ecase = select_operator({w.encoding, x_enc}).kind;
  key.has_bn = epi.has_bn;
  key.has_relu = epi.has_relu;
  key.qbits = epi.has_quant ? epi.quant.bits : 0;
  key.pool_win = pool.active() ? pool.size : 1;
  key.pool_kind = static_cast<int>(pool.kind);
  key.in_c = g.in_c;
  key.kernel = g.kernel;
  key.stride = g.stride;
  key.pad = g.pad;
  return key;
}

// --- TuningCache ------------------------------------------------------------

TuningCache::TuningCache(unsigned pool_threads)
    : fingerprint_(hardware_fingerprint(pool_threads)),
      pool_threads_(pool_threads) {}

std::string TuningCache::hardware_fingerprint(unsigned pool_threads) {
  const unsigned width =
      pool_threads != 0 ? pool_threads : ThreadPool::global().size() + 1;
  std::ostringstream os;
  os << "v" << kSchemaVersion << ":" << microkernel::kSimdFlavor << ":t"
     << width;
  return os.str();
}

bool TuningCache::lookup(const StageKey& key, TunedKernel* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key.canonical());
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

void TuningCache::insert(const StageKey& key, const TunedKernel& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key.canonical()] = cfg;
}

std::string TuningCache::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << kMagic << " " << kSchemaVersion << "\n";
  os << "fingerprint " << fingerprint_ << "\n";
  for (const auto& [key, c] : entries_) {
    os << "entry " << key << " " << c.tile.bm << " " << c.tile.bn << " "
       << c.tile.bk << " " << c.tile.warp_rows << " " << c.tile.warp_cols
       << " " << c.micro.strip_words << " "
       << static_cast<int>(c.micro.staging) << " "
       << static_cast<int>(c.micro.sparse_staging) << " "
       << (c.combine_fast ? 1 : 0) << " " << (c.measured ? 1 : 0) << " "
       << c.measured_ms << "\n";
  }
  return os.str();
}

bool TuningCache::deserialize(const std::string& text, bool any_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  fingerprint_ = hardware_fingerprint(pool_threads_);
  std::istringstream is(text);

  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic ||
      version != kSchemaVersion) {
    return false;
  }
  std::string tag, fp;
  if (!(is >> tag >> fp) || tag != "fingerprint") return false;
  if (!any_fingerprint && fp != hardware_fingerprint(pool_threads_)) {
    return false;
  }
  fingerprint_ = fp;

  std::map<std::string, TunedKernel> loaded;
  while (is >> tag) {
    if (tag != "entry") {
      entries_.clear();
      return false;
    }
    std::string key;
    TunedKernel c;
    int staging = 0, sparse = 0, fast = 0, measured = 0;
    if (!(is >> key >> c.tile.bm >> c.tile.bn >> c.tile.bk >>
          c.tile.warp_rows >> c.tile.warp_cols >> c.micro.strip_words >>
          staging >> sparse >> fast >> measured >> c.measured_ms)) {
      entries_.clear();
      return false;
    }
    // A corrupt or hand-edited entry must be rejected here, not discovered
    // as a SIGFPE (warp_rows=0 in the profile math) or a silently
    // pathological tiling at run time.
    const bool sane =
        c.tile.bm >= 1 && c.tile.bm <= 4096 && c.tile.bn >= 1 &&
        c.tile.bn <= 4096 && c.tile.bk >= 1 && c.tile.bk <= 4096 &&
        c.tile.warp_rows >= 1 && c.tile.warp_rows <= 64 &&
        c.tile.warp_cols >= 1 && c.tile.warp_cols <= 64 &&
        c.micro.strip_words >= 0 && c.micro.strip_words <= (1 << 20) &&
        staging >= 0 &&
        staging <=
            static_cast<int>(microkernel::MicroConfig::Staging::kRowMajor) &&
        sparse >= 0 &&
        sparse <= static_cast<int>(microkernel::MicroConfig::Sparse::kOff);
    if (!sane) {
      entries_.clear();
      return false;
    }
    c.micro.staging =
        static_cast<microkernel::MicroConfig::Staging>(staging);
    c.micro.sparse_staging =
        static_cast<microkernel::MicroConfig::Sparse>(sparse);
    c.combine_fast = fast != 0;
    c.measured = measured != 0;
    loaded[key] = c;
  }
  entries_ = std::move(loaded);
  return true;
}

bool TuningCache::load_file(const std::string& path, bool any_fingerprint) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream os;
  os << f.rdbuf();
  return deserialize(os.str(), any_fingerprint);
}

bool TuningCache::save_file(const std::string& path) const {
  // Write-temp-then-rename: a crash (or injected fault) mid-write can only
  // ever leave a stray .tmp behind, never a truncated cache at `path` — and
  // a truncated cache would silently cost a full cold re-tune on next load.
  // rename(2) is atomic within a filesystem, and the temp lives next to the
  // destination precisely so it is on the same filesystem.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp);
    if (!f) return false;
    f << serialize();
    if (!f) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  try {
    faultinject::point(faultinject::kCacheSave);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// --- Autotuner --------------------------------------------------------------

Autotuner::Autotuner(const tcsim::DeviceSpec& dev, TuningCache* cache,
                     const AutotuneOptions& opts, ThreadPool* pool)
    : dev_(dev), cache_(cache), opts_(opts), pool_(pool) {
  APNN_CHECK(opts_.reps >= 1);
  APNN_CHECK(opts_.max_tile_candidates >= 1);
}

std::vector<TunedKernel> Autotuner::candidates(std::int64_t m, std::int64_t n,
                                               std::int64_t k, int p, int q,
                                               bool fast_eligible) const {
  const std::vector<TileConfig> tiles =
      ranked_tiles(m, n, k, p, q, dev_, opts_.max_tile_candidates);
  std::vector<TunedKernel> out;
  out.reserve(tiles.size() + 6);
  for (const TileConfig& t : tiles) {
    TunedKernel c;
    c.tile = t;
    out.push_back(c);
  }
  if (opts_.explore_micro) {
    // Micro variants of the heuristic tile. Strip depths that the k extent
    // collapses to the default are skipped (identical execution). Copied by
    // value: the push_backs below may reallocate `out`.
    const TileConfig head = out.front().tile;
    const std::int64_t row_words = bitops::padded_words(k);
    if (row_words > 16) {
      TunedKernel c;
      c.tile = head;
      c.micro.strip_words = 16;
      out.push_back(c);
    }
    if (row_words > microkernel::kStripWords) {
      TunedKernel c;
      c.tile = head;
      c.micro.strip_words = 2 * microkernel::kStripWords;
      out.push_back(c);
    }
    if (microkernel::kHasRowBlockKernel) {
      TunedKernel c;
      c.tile = head;
      c.micro.staging = microkernel::MicroConfig::Staging::kRowMajor;
      out.push_back(c);
    }
    if (fast_eligible) {
      TunedKernel c;
      c.tile = head;
      c.combine_fast = false;
      out.push_back(c);
    }
    // Sparse-staging variants of the heuristic tile: kOff strips the
    // occupancy build entirely, kOn forces the skip kernels past the
    // density gate. The head candidate's kAuto default sits between them,
    // so the measurement decides per stage whether occupancy pays.
    {
      TunedKernel c;
      c.tile = head;
      c.micro.sparse_staging = microkernel::MicroConfig::Sparse::kOff;
      out.push_back(c);
    }
    {
      TunedKernel c;
      c.tile = head;
      c.micro.sparse_staging = microkernel::MicroConfig::Sparse::kOn;
      out.push_back(c);
    }
  }
  return out;
}

template <typename RunFn>
TunedKernel Autotuner::measure(const StageKey& key,
                               std::vector<TunedKernel> cands, RunFn&& run,
                               std::vector<Candidate>* trace) {
  TunedKernel best;
  double best_ms = std::numeric_limits<double>::infinity();
  for (TunedKernel& c : cands) {
    run(c);  // warm-up: grows arenas and sinks so timed reps are steady-state
    ++measurement_runs_;
    double ms = std::numeric_limits<double>::infinity();
    for (int r = 0; r < opts_.reps; ++r) {
      WallTimer t;
      run(c);
      ms = std::min(ms, t.millis());
      ++measurement_runs_;
    }
    c.measured_ms = ms;
    c.measured = true;
    if (trace != nullptr) trace->push_back({c});
    // Strict < : ties keep the earlier (more heuristic-preferred) candidate,
    // so a tuned plan is never a lateral move away from the heuristic.
    if (ms < best_ms) {
      best_ms = ms;
      best = c;
    }
  }
  if (cache_ != nullptr) cache_->insert(key, best);
  return best;
}

TunedKernel Autotuner::tune_apmm(const ApOperand& w, std::int64_t n,
                                 int q_bits, Encoding x_enc,
                                 const Epilogue& epi, std::int64_t seq,
                                 std::vector<Candidate>* trace) {
  const StageKey key = make_mm_key(w, n, q_bits, x_enc, epi, seq);
  TunedKernel cached;
  if (cache_ != nullptr && cache_->lookup(key, &cached)) {
    ++cache_hits_;
    if (trace != nullptr) trace->push_back({cached});
    return cached;
  }

  // Synthetic feature operand at the stage's exact geometry: the weight
  // operand is the real one, so staging, window shapes, and combine cost are
  // what the plan will actually run. Values are irrelevant to wall time
  // (branch-free kernels); the seed is fixed for reproducibility.
  ApOperand x;
  x.encoding = x_enc;
  x.planes.reset_shape(n, w.cols(), q_bits);
  Rng rng(0x9e3779b97f4a7c15ull);
  for (int t = 0; t < q_bits; ++t) {
    x.planes.planes[static_cast<std::size_t>(t)].randomize(rng);
    sparsify_plane(x.planes.planes[static_cast<std::size_t>(t)],
                   opts_.synth_zero_frac, rng);
  }

  const bool fast_eligible = w.bits() == 1 && q_bits == 1 && epi.identity();
  return measure(
      key, candidates(w.rows(), n, w.cols(), w.bits(), q_bits, fast_eligible),
      [&](const TunedKernel& c) {
        ApmmOptions o;
        o.autotune = false;
        o.tile = c.tile;
        o.micro = c.micro;
        o.combine_fast = c.combine_fast;
        o.collect_profile = false;
        o.pool = pool_;
        if (epi.has_quant) {
          o.packed_out = &scratch_planes_;
        } else {
          o.y_out = &scratch_y_;
        }
        apmm(w, x, dev_, o, epi);
      },
      trace);
}

TunedKernel Autotuner::tune_apconv(const ApOperand& w,
                                   const layout::ConvGeometry& g, int q_bits,
                                   Encoding x_enc, const Epilogue& epi,
                                   const PoolSpec& pool,
                                   std::vector<Candidate>* trace) {
  const StageKey key = make_conv_key(w, g, q_bits, x_enc, epi, pool);
  TunedKernel cached;
  if (cache_ != nullptr && cache_->lookup(key, &cached)) {
    ++cache_hits_;
    if (trace != nullptr) trace->push_back({cached});
    return cached;
  }

  layout::PackedActivations x;
  x.reset_shape(g.batch, g.in_h, g.in_w, g.in_c, q_bits);
  Rng rng(0xbf58476d1ce4e5b9ull);
  for (int t = 0; t < q_bits; ++t) {
    x.planes[static_cast<std::size_t>(t)].randomize(rng);
    sparsify_plane(x.planes[static_cast<std::size_t>(t)],
                   opts_.synth_zero_frac, rng);
  }

  // The conv path always runs the fused tail, so the p=q=1 identity combine
  // fast path never engages — no fast-off candidate.
  return measure(
      key,
      candidates(g.gemm_m(), g.gemm_n(), g.gemm_k(), w.bits(), q_bits,
                 /*fast_eligible=*/false),
      [&](const TunedKernel& c) {
        ApconvOptions o;
        o.autotune = false;
        o.tile = c.tile;
        o.micro = c.micro;
        o.combine_fast = c.combine_fast;
        o.collect_profile = false;
        o.pool = pool_;
        if (epi.has_quant) {
          o.packed_out = &scratch_packed_;
        } else {
          o.y_out = &scratch_y_;
        }
        apconv(w, x, x_enc, g, dev_, o, epi, pool);
      },
      trace);
}

}  // namespace apnn::core

// Arbitrary-Precision Convolution (APConv, paper §4.2).
//
// Convolution of a p-bit weight tensor (Cout x KH x KW x Cin) with a q-bit
// activation tensor (channel-major NPHWC) is lowered to the virtually
// batched bit-GEMM of apmm_internal, with three conv-specific designs:
//
//  * Channel-major data organization (§4.2a): activations arrive as
//    layout::PackedActivations; each (kh, kw) tap of the patch matrix is a
//    contiguous C-bit slab, so loads are aligned and coalesced.
//  * Input-aware padding (§4.2b): the out-of-image padding bit depends on
//    the encoding — 0/1 features pad 0; ±1 features pad 1 and the result is
//    amended with a popc-mask counter correction; Case III pads 0. All three
//    reproduce the zero-pad semantics of standard convolution.
//  * Fused epilogue (§5.2, Fig. 10): BN -> ReLU -> pooling -> quantize ->
//    bit-plane repacking can run inside the conv kernel; with fusion off the
//    pipeline issues separate pool / quantize kernels (global round trips).
#pragma once

#include <cstdint>

#include "src/core/apmm.hpp"
#include "src/layout/im2col.hpp"
#include "src/layout/packed_activations.hpp"

namespace apnn::core {

struct PoolSpec {
  enum class Kind { kNone, kMax, kAvg };
  Kind kind = Kind::kNone;
  int size = 2;  ///< pooling window and stride (paper uses 2x2)

  bool active() const { return kind != Kind::kNone; }
};

struct ApconvOptions {
  bool autotune = true;
  TileConfig tile;
  double tlp_threshold = 64.0;

  /// Host-microkernel execution knobs; see ApmmOptions::micro.
  microkernel::MicroConfig micro;
  bool combine_fast = true;

  bool batch_planes = true;
  bool double_caching = true;
  bool fragment_caching = true;
  bool semantic_aware = true;

  /// Fuse BN/ReLU/pool/quantize into the conv kernel (true) or launch them
  /// as separate kernels (false) — the Fig. 10 comparison.
  bool fuse_epilogue = true;

  ExecMode mode = ExecMode::kFull;

  /// Caller-provided output storage (e.g. an InferenceSession slab slot):
  /// when set, the corresponding result is written here — the buffer is
  /// reshaped in place, reusing its capacity, so steady-state reuse performs
  /// zero heap allocations — and the matching ApconvResult field stays
  /// empty. y_out receives the dense post-pool NHWC output (non-quantizing
  /// epilogue); packed_out the channel-major planes of a quantizing one.
  Tensor<std::int32_t>* y_out = nullptr;
  layout::PackedActivations* packed_out = nullptr;

  /// Build launch records in the result (true) or leave the profile empty —
  /// the steady-state serving path skips the per-call record churn.
  bool collect_profile = true;

  /// Pool the block loops run on; nullptr = ThreadPool::global(). Non-owning
  /// — must outlive the call. See ApmmOptions::pool.
  ThreadPool* pool = nullptr;

  /// Occupancy/elision counters; see ApmmOptions::sparsity_stats.
  microkernel::SparsityStats* sparsity_stats = nullptr;
};

struct ApconvResult {
  /// Post-pool NHWC int32 output {N, OH', OW', Cout}; empty when the
  /// epilogue quantizes (then `packed` is set) or in profile-only mode.
  Tensor<std::int32_t> y;

  /// Quantized output as channel-major packed activations, ready for the
  /// next APConv (minimal-traffic dataflow).
  layout::PackedActivations packed;

  tcsim::SequenceProfile profile;
  TileConfig tile;
};

/// Builds the weight operand from logical values in OHWI order
/// ({Cout, KH, KW, Cin}) — the tap order the channel-major patch matrix
/// uses.
ApOperand make_conv_weights(const Tensor<std::int32_t>& ohwi, Encoding enc,
                            int bits);

/// Runs APConv. `x_enc` declares what the activation bits encode; `pool`
/// optionally fuses a pool.size x pool.size pooling stage (output spatial
/// dims must divide evenly).
ApconvResult apconv(const ApOperand& w, const layout::PackedActivations& x,
                    Encoding x_enc, const layout::ConvGeometry& g,
                    const tcsim::DeviceSpec& dev,
                    const ApconvOptions& opts = {}, const Epilogue& epi = {},
                    const PoolSpec& pool = {});

/// Launch records only, from the convolution geometry (no operand data) —
/// identical to the profile apconv() returns for the same problem.
tcsim::SequenceProfile apconv_profile(const layout::ConvGeometry& g, int p,
                                      int q, const EncodingConfig& enc,
                                      const tcsim::DeviceSpec& dev,
                                      const ApconvOptions& opts = {},
                                      const Epilogue& epi = {},
                                      const PoolSpec& pool = {});

/// Golden-model direct convolution on logical values: x is NHWC
/// ({N, H, W, C}) logical activations, w is OHWI logical weights; standard
/// zero padding. Returns NHWC {N, OH, OW, Cout}. Every input-aware padding
/// strategy must reproduce exactly this.
Tensor<std::int32_t> conv2d_reference(const Tensor<std::int32_t>& x_nhwc,
                                      const Tensor<std::int32_t>& w_ohwi,
                                      const layout::ConvGeometry& g);

}  // namespace apnn::core
